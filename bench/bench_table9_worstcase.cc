// Table 9 — Worst-case performance tests (paper §6.4): operations that cross
// coffers must call into the kernel and move page ownership.
//
//   chmod:  files start in one coffer; changing a random file's permission
//           group forces ZoFS to split its pages into a new coffer.
//   rename: files live in two coffers (two permission groups for ZoFS, two
//           directories otherwise); renaming into the other directory moves
//           the file's pages across coffers.
//
// Compared: NOVA (kernel chmod/rename), ZoFS (coffer split / page moves),
// ZoFS-1coffer (pure user-space metadata updates).

#include <cstdio>
#include <vector>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace {

using harness::FsKind;

const vfs::Cred kCred{0, 0};

double MeasureChmod(FsKind kind, uint64_t nfiles, uint64_t file_bytes) {
  harness::FsLab lab(kind, {.dev_bytes = 1ull << 30});
  vfs::FileSystem* fs = lab.View(0);
  std::vector<uint8_t> data(file_bytes, 0x11);
  fs->Mkdir(kCred, "/dir", 0755);
  for (uint64_t i = 0; i < nfiles; i++) {
    auto fd = fs->Open(kCred, "/dir/f" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0644);
    fs->Pwrite(*fd, data.data(), data.size(), 0);
    fs->Close(*fd);
  }
  // Change the permission group of every file, one by one.
  common::Stopwatch sw;
  for (uint64_t i = 0; i < nfiles; i++) {
    auto st = fs->Chmod(kCred, "/dir/f" + std::to_string(i), 0600);
    if (!st.ok()) {
      fprintf(stderr, "chmod failed: %s\n", common::ErrName(st.error()));
      return 0;
    }
  }
  return static_cast<double>(sw.ElapsedNs()) / nfiles;
}

double MeasureRename(FsKind kind, uint64_t nfiles, uint64_t file_bytes) {
  harness::FsLab lab(kind, {.dev_bytes = 1ull << 30});
  vfs::FileSystem* fs = lab.View(0);
  std::vector<uint8_t> data(file_bytes, 0x22);
  // Two directories with different permission groups: for ZoFS these are two
  // coffers (0666-effective vs 0600-effective); the files match their dir.
  fs->Mkdir(kCred, "/a", 0644);
  fs->Mkdir(kCred, "/b", 0600);
  for (uint64_t i = 0; i < nfiles / 2; i++) {
    auto fd = fs->Open(kCred, "/a/f" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0644);
    fs->Pwrite(*fd, data.data(), data.size(), 0);
    fs->Close(*fd);
    auto fd2 = fs->Open(kCred, "/b/g" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0600);
    fs->Pwrite(*fd2, data.data(), data.size(), 0);
    fs->Close(*fd2);
  }
  // Rename files into the *other* directory (cross-coffer for ZoFS).
  common::Stopwatch sw;
  uint64_t ops = 0;
  for (uint64_t i = 0; i < nfiles / 2; i++) {
    auto s1 = fs->Rename(kCred, "/a/f" + std::to_string(i), "/b/f" + std::to_string(i));
    auto s2 = fs->Rename(kCred, "/b/g" + std::to_string(i), "/a/g" + std::to_string(i));
    if (!s1.ok() || !s2.ok()) {
      fprintf(stderr, "rename failed: %s/%s\n",
              common::ErrName(s1.ok() ? common::Err::kOk : s1.error()),
              common::ErrName(s2.ok() ? common::Err::kOk : s2.error()));
      return 0;
    }
    ops += 2;
  }
  return static_cast<double>(sw.ElapsedNs()) / ops;
}

}  // namespace

int main() {
  const uint64_t nfiles = harness::EnvOr("TABLE9_FILES", 1000);
  const uint64_t fbytes = harness::EnvOr("TABLE9_FILE_BYTES", 8192);

  const FsKind kinds[] = {FsKind::kNova, FsKind::kZofs, FsKind::kZofsOneCoffer};
  printf("Table 9: worst-case cross-coffer operations (ns/op), %lu files of %lu bytes\n\n",
         (unsigned long)nfiles, (unsigned long)fbytes);

  common::TextTable t({"Latency/ns", "NOVA", "ZoFS", "ZoFS-1coffer"});
  char buf[32];
  std::vector<std::string> chmod_row = {"chmod"}, rename_row = {"rename"};
  for (FsKind k : kinds) {
    snprintf(buf, sizeof(buf), "%.0f", MeasureChmod(k, nfiles, fbytes));
    chmod_row.push_back(buf);
  }
  for (FsKind k : kinds) {
    snprintf(buf, sizeof(buf), "%.0f", MeasureRename(k, nfiles, fbytes));
    rename_row.push_back(buf);
  }
  t.AddRow(chmod_row);
  t.AddRow(rename_row);
  printf("%s\n", t.ToString().c_str());

  printf("Paper (Table 9): chmod 1,830 / 23,342 / 675; rename 6,261 / 28,264 / 1,681.\n");
  printf("Shape: ZoFS-1coffer fastest (pure user space), NOVA in between (one kernel\n");
  printf("call), ZoFS an order of magnitude slower (page-by-page ownership rewrite).\n");
  return 0;
}
