// Figure 10 — Filebench with customised configurations (paper §6.2):
//   (a) fileserver with one thread (bar chart across the five systems)
//   (b) varmail with dir-width = 20 (thread sweep)

#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/filebench.h"

int main() {
  using harness::FbWorkload;
  using harness::FsKind;

  const uint64_t iters = harness::EnvOr("FB_ITERS", 300);
  const double scale = harness::EnvOr("FB_SCALE_PCT", 10) / 100.0;
  const uint64_t dev_mb = harness::EnvOr("FB_DEV_MB", 2048);
  const uint64_t max_threads = harness::EnvOr("FB_THREADS", 10);

  const FsKind kinds[] = {FsKind::kExtDax, FsKind::kPmfs, FsKind::kNova, FsKind::kStrata,
                          FsKind::kZofs};

  // (a) fileserver, one thread.
  {
    printf("Figure 10(a): fileserver with one thread (Kops/s)\n\n");
    common::TextTable table({"FS", "Kops/s"});
    harness::FbOptions fb;
    fb.iterations_per_thread = iters;
    fb.scale = scale;  // fileserver's 1.28 GB data set is the one that needs scaling
    const uint64_t reps = harness::EnvOr("FB_REPS", 2);
    for (FsKind k : kinds) {
      double best = 0;
      for (uint64_t rep = 0; rep < reps; rep++) {
        harness::FsLab lab(k, {.dev_bytes = dev_mb << 20});
        best = std::max(best,
                        harness::RunFilebench(lab, FbWorkload::kFileserver, 1, fb).ops_per_sec);
      }
      char buf[32];
      snprintf(buf, sizeof(buf), "%.2f", best / 1e3);
      table.AddRow({FsKindName(k), buf});
    }
    printf("%s\n", table.ToString().c_str());
    printf("Paper: ZoFS beats NOVA by 30%%, PMFS by 16%%, Strata by 5%% at one thread.\n\n");
  }

  // (b) varmail with dir-width = 20.
  {
    printf("Figure 10(b): varmail with dir-width=20 (Kops/s) vs threads\n\n");
    std::vector<int> threads;
    for (int t = 1; t <= static_cast<int>(max_threads); t *= 2) {
      threads.push_back(t);
    }
    if (threads.back() != static_cast<int>(max_threads)) {
      threads.push_back(static_cast<int>(max_threads));
    }
    std::vector<std::string> header = {"threads"};
    for (FsKind k : kinds) {
      header.push_back(FsKindName(k));
    }
    common::TextTable table(header);
    for (int t : threads) {
      std::vector<std::string> row = {std::to_string(t)};
      const uint64_t reps = harness::EnvOr("FB_REPS", 2);
      for (FsKind k : kinds) {
        harness::FbOptions fb;
        fb.iterations_per_thread = iters;
        fb.scale = 1.0;  // full 1,000-file varmail: width 20 => depth-3 paths
        fb.dir_width = 20;
        double best = 0;
        for (uint64_t rep = 0; rep < reps; rep++) {
          harness::FsLab lab(k, {.dev_bytes = dev_mb << 20});
          best = std::max(best, harness::RunFilebench(lab, FbWorkload::kVarmail, t, fb).ops_per_sec);
        }
        char buf[32];
        snprintf(buf, sizeof(buf), "%.2f", best / 1e3);
        row.push_back(buf);
      }
      table.AddRow(row);
      fflush(stdout);
    }
    printf("%s\n", table.ToString().c_str());
    printf("Paper: all systems scale; ZoFS still ahead of PMFS (up to 13%%) and NOVA\n");
    printf("(up to 46%%), but slower than its own wide-directory configuration.\n");
  }
  return 0;
}
