// Table 1 — DRAM vs Optane DC PM latency and bandwidth (paper §2.1).
//
// Reproduced on the simulated device: two NvmDevice instances, one with the
// DRAM-like media profile and one with the Optane-like profile (both scaled
// 100x down in absolute bandwidth; the reproduced quantity is the read/write
// asymmetry — Optane reads ~3x slower than DRAM with ~3.7x higher latency,
// writes bandwidth-limited at ~1/5 of DRAM).

#include <cstdio>
#include <vector>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/harness/runner.h"
#include "src/nvm/nvm.h"

namespace {

struct MediaResult {
  double read_gbps, write_gbps;
  double read_ns, write_ns;
};

MediaResult Measure(const nvm::MediaProfile& profile, size_t dev_bytes, uint64_t touch_bytes) {
  nvm::Options opts;
  opts.size_bytes = dev_bytes;
  opts.media = profile;
  nvm::NvmDevice dev(opts);

  std::vector<uint8_t> buf(1 << 20, 0x5c);
  MediaResult r{};

  // Sequential write bandwidth (streaming non-temporal stores).
  {
    common::Stopwatch sw;
    uint64_t done = 0;
    while (done < touch_bytes) {
      uint64_t off = done % (dev_bytes - buf.size());
      dev.NtStoreBytes(off, buf.data(), buf.size());
      done += buf.size();
    }
    dev.Sfence();
    r.write_gbps = static_cast<double>(done) / sw.ElapsedNs();
  }
  // Sequential read bandwidth.
  {
    common::Stopwatch sw;
    uint64_t done = 0;
    while (done < touch_bytes) {
      uint64_t off = done % (dev_bytes - buf.size());
      dev.LoadBytes(off, buf.data(), buf.size());
      done += buf.size();
    }
    r.read_gbps = static_cast<double>(done) / sw.ElapsedNs();
  }
  // Access latency: dependent 64-byte accesses.
  {
    const int kOps = 20000;
    common::Stopwatch sw;
    uint8_t line[64];
    for (int i = 0; i < kOps; i++) {
      dev.LoadBytes((i * 4096) % (dev_bytes - 64), line, 64);
    }
    r.read_ns = static_cast<double>(sw.ElapsedNs()) / kOps;
    sw.Restart();
    for (int i = 0; i < kOps; i++) {
      dev.NtStoreBytes((i * 4096) % (dev_bytes - 64), line, 64);
      dev.Sfence();
    }
    r.write_ns = static_cast<double>(sw.ElapsedNs()) / kOps;
  }
  return r;
}

}  // namespace

int main() {
  const uint64_t touch = harness::EnvOr("TABLE1_MB", 256) << 20;
  const size_t dev_bytes = 64ull << 20;

  MediaResult dram = Measure(nvm::MediaProfile::DramLike(), dev_bytes, touch);
  MediaResult nv = Measure(nvm::MediaProfile::OptaneLike(), dev_bytes, touch);

  printf("Table 1: media latency and bandwidth (simulated; profiles scaled 100x down)\n\n");
  common::TextTable t({"Memory", "Operation", "Bandwidth", "Latency"});
  char b1[64], b2[64];
  auto row = [&](const char* mem, const char* op, double gbps, double ns) {
    snprintf(b1, sizeof(b1), "%.2f GB/s", gbps);
    snprintf(b2, sizeof(b2), "%.0f ns", ns);
    t.AddRow({mem, op, b1, b2});
  };
  row("DRAM-like", "read", dram.read_gbps, dram.read_ns);
  row("", "write", dram.write_gbps, dram.write_ns);
  row("Optane-like", "read", nv.read_gbps, nv.read_ns);
  row("", "write", nv.write_gbps, nv.write_ns);
  printf("%s\n", t.ToString().c_str());

  printf("Paper (Table 1): DRAM read 115 GB/s @ 81ns, write 79 GB/s @ 86ns;\n");
  printf("                 Optane read 39 GB/s @ 305ns, write 14 GB/s @ 94ns.\n");
  printf("Reproduced shape: read/write bandwidth asymmetry %.1fx (paper 2.8x), "
         "NVM/DRAM read latency ratio %.1fx (paper 3.8x).\n",
         nv.read_gbps / nv.write_gbps, nv.read_ns / dram.read_ns);
  return 0;
}
