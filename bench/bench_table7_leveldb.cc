// Table 7 — LevelDB db_bench latencies across Ext4-DAX / PMFS / NOVA / ZoFS
// (paper §6.3), using the LSM key-value store in src/apps/kvstore.
//
// Operations mirror db_bench: write sync / write seq / write rand /
// overwrite / read seq / read rand / read hot / delete rand, with LevelDB's
// default record shape (16-byte keys, 100-byte values).

#include <cstdio>
#include <vector>

#include "src/apps/kvstore/kvstore.h"
#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace {

using harness::FsKind;

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%016lu", (unsigned long)i);
  return buf;
}

struct Latencies {
  double write_sync, write_seq, write_rand, overwrite;
  double read_seq, read_rand, read_hot, delete_rand;
};

Latencies RunDbBench(FsKind kind, uint64_t n) {
  harness::FsLab lab(kind, {.dev_bytes = 2ull << 30});
  vfs::FileSystem* fs = lab.View(0);
  common::Rng rng(99);
  std::string value(100, 'v');
  Latencies lat{};
  common::Stopwatch sw;

  // Warm up the device memory and caches before measuring (the first
  // freshly-allocated multi-GB buffer otherwise penalises whichever file
  // system happens to run first).
  {
    auto db = kvstore::Db::Open(fs, "/dbwarm");
    for (uint64_t i = 0; i < n / 4; i++) {
      (*db)->Put(Key(i), value);
      (*db)->Get(Key(i / 2));
    }
  }

  // write sync: a fresh DB with fsync-per-write, fewer ops (as db_bench).
  {
    auto db = kvstore::Db::Open(fs, "/dbsync", kvstore::DbOptions{.sync_writes = true});
    const uint64_t ops = n / 10;
    sw.Restart();
    for (uint64_t i = 0; i < ops; i++) {
      (*db)->Put(Key(i), value);
    }
    lat.write_sync = static_cast<double>(sw.ElapsedNs()) / ops;
  }

  auto db_res = kvstore::Db::Open(fs, "/db");
  auto& db = *db_res;

  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Put(Key(i), value);
  }
  lat.write_seq = static_cast<double>(sw.ElapsedNs()) / n;

  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Put(Key(rng.Below(n)), value);
  }
  lat.write_rand = static_cast<double>(sw.ElapsedNs()) / n;

  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Put(Key(i), value);
  }
  lat.overwrite = static_cast<double>(sw.ElapsedNs()) / n;

  {
    sw.Restart();
    auto iter = db->NewIterator();
    uint64_t cnt = 0;
    for (; iter->Valid(); iter->Next()) {
      cnt++;
    }
    lat.read_seq = cnt ? static_cast<double>(sw.ElapsedNs()) / cnt : 0;
  }

  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Get(Key(rng.Below(n)));
  }
  lat.read_rand = static_cast<double>(sw.ElapsedNs()) / n;

  // read hot: confine reads to 1% of the key space (db_bench readhot).
  const uint64_t hot = std::max<uint64_t>(1, n / 100);
  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Get(Key(rng.Below(hot)));
  }
  lat.read_hot = static_cast<double>(sw.ElapsedNs()) / n;

  sw.Restart();
  for (uint64_t i = 0; i < n; i++) {
    db->Delete(Key(rng.Below(n)));
  }
  lat.delete_rand = static_cast<double>(sw.ElapsedNs()) / n;
  return lat;
}

}  // namespace

int main() {
  const uint64_t n = harness::EnvOr("TABLE7_N", 50000);
  const FsKind kinds[] = {FsKind::kExtDax, FsKind::kPmfs, FsKind::kNova, FsKind::kZofs};

  printf("Table 7: LevelDB-like db_bench latency (us/op), %lu ops\n\n", (unsigned long)n);
  std::vector<Latencies> all;
  for (FsKind k : kinds) {
    all.push_back(RunDbBench(k, n));
  }

  common::TextTable t({"Latency/us", "Ext4-DAX", "PMFS", "NOVA", "ZoFS"});
  auto row = [&](const char* name, auto sel) {
    std::vector<std::string> cells = {name};
    char buf[32];
    for (const Latencies& l : all) {
      snprintf(buf, sizeof(buf), "%.3f", sel(l) / 1000.0);
      cells.push_back(buf);
    }
    t.AddRow(cells);
  };
  row("Write sync.", [](const Latencies& l) { return l.write_sync; });
  row("Write seq.", [](const Latencies& l) { return l.write_seq; });
  row("Write rand.", [](const Latencies& l) { return l.write_rand; });
  row("Overwrite", [](const Latencies& l) { return l.overwrite; });
  row("Read seq.", [](const Latencies& l) { return l.read_seq; });
  row("Read rand.", [](const Latencies& l) { return l.read_rand; });
  row("Read hot.", [](const Latencies& l) { return l.read_hot; });
  row("Delete rand.", [](const Latencies& l) { return l.delete_rand; });
  printf("%s\n", t.ToString().c_str());

  printf("Paper (Table 7, us): write sync 58.1/23.5/29.1/21.1; write seq 7.6/5.0/10.1/3.7;\n");
  printf("write rand 20.1/11.6/19.9/10.3; overwrite 30.5/18.2/30.3/16.8; read seq\n");
  printf("1.39/1.08/1.22/1.07; read rand 4.47/3.55/3.99/3.52; read hot 1.19/1.16/1.19/1.15;\n");
  printf("delete rand 3.91/2.81/9.42/1.72. Shape: ZoFS lowest everywhere; NOVA's COW\n");
  printf("hurts writes/deletes; Ext4-DAX slowest on writes.\n");
  return 0;
}
