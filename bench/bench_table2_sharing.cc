// Table 2 — Latency of operations on a file/directory shared by multiple
// processes (paper §2.2).
//
//   append: 4 KB appends to one shared file, 1 vs 2 processes
//   create: empty-file creates in one shared directory, 1 vs 2 processes
//
// Processes alternate strictly (a turn counter), the worst case for shared
// access: Strata's lease must ping-pong and digest on every handoff, while
// NOVA pays lock contention and ZoFS only inode-lease arbitration. Reported
// latency is the mean per operation, excluding the wait for the turn.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace {

using harness::FsKind;
using harness::FsLab;

const vfs::Cred kCred{0, 0};

struct Sample {
  double append_1p, append_2p, create_1p, create_2p;
};

// Runs `op(proc, i)` for `total_ops` strictly alternating between `procs`
// simulated processes; returns mean latency per op in ns.
double RunAlternating(int procs, uint64_t total_ops,
                      const std::function<void(int, uint64_t)>& op) {
  std::atomic<uint64_t> turn{0};
  std::vector<uint64_t> ns(procs, 0);
  std::vector<uint64_t> count(procs, 0);
  std::vector<std::thread> threads;
  for (int p = 0; p < procs; p++) {
    threads.emplace_back([&, p]() {
      for (;;) {
        uint64_t t = turn.load(std::memory_order_acquire);
        if (t >= total_ops) {
          return;
        }
        if (static_cast<int>(t % procs) != p) {
          std::this_thread::yield();
          continue;
        }
        common::Stopwatch sw;
        op(p, t);
        ns[p] += sw.ElapsedNs();
        count[p]++;
        turn.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t total_ns = 0, total = 0;
  for (int p = 0; p < procs; p++) {
    total_ns += ns[p];
    total += count[p];
  }
  return total > 0 ? static_cast<double>(total_ns) / total : 0;
}

double MeasureAppend(FsKind kind, int procs, uint64_t ops) {
  FsLab lab(kind, {.dev_bytes = 1ull << 30});
  std::vector<vfs::Fd> fds(procs);
  for (int p = 0; p < procs; p++) {
    auto fd = lab.View(p)->Open(kCred, "/shared", vfs::kCreate | vfs::kWrite | vfs::kAppend,
                                0644);
    fds[p] = *fd;
  }
  static std::vector<uint8_t> buf(4096, 0xcd);
  return RunAlternating(procs, ops, [&](int p, uint64_t) {
    auto r = lab.View(p)->Write(fds[p], buf.data(), buf.size());
    (void)r;
  });
}

double MeasureCreate(FsKind kind, int procs, uint64_t ops) {
  FsLab lab(kind, {.dev_bytes = 1ull << 30});
  for (int p = 0; p < procs; p++) {
    lab.View(p);  // pre-create views
  }
  lab.View(0)->Mkdir(kCred, "/shared_dir", 0755);
  return RunAlternating(procs, ops, [&](int p, uint64_t i) {
    std::string path = "/shared_dir/f_" + std::to_string(p) + "_" + std::to_string(i);
    auto fd = lab.View(p)->Open(kCred, path, vfs::kCreate | vfs::kWrite, 0644);
    if (fd.ok()) {
      lab.View(p)->Close(*fd);
    }
  });
}

}  // namespace

int main() {
  const uint64_t ops = harness::EnvOr("TABLE2_OPS", 8000);
  const FsKind kinds[] = {FsKind::kStrata, FsKind::kNova, FsKind::kZofs};

  printf("Table 2: latency (ns) of operations on a shared file/directory\n");
  printf("(paper: Strata/NOVA/ZoFS; append 4KB, create empty files; %lu ops)\n\n",
         (unsigned long)ops);
  common::TextTable table({"Operation", "# Processes", "Strata", "NOVA", "ZoFS"});

  double append[2][3], create[2][3];
  for (int k = 0; k < 3; k++) {
    for (int procs = 1; procs <= 2; procs++) {
      append[procs - 1][k] = MeasureAppend(kinds[k], procs, ops);
      create[procs - 1][k] = MeasureCreate(kinds[k], procs, ops);
    }
  }
  char buf[64];
  for (int procs = 1; procs <= 2; procs++) {
    std::vector<std::string> row = {procs == 1 ? "append" : "", std::to_string(procs)};
    for (int k = 0; k < 3; k++) {
      snprintf(buf, sizeof(buf), "%.0f", append[procs - 1][k]);
      row.push_back(buf);
    }
    table.AddRow(row);
  }
  for (int procs = 1; procs <= 2; procs++) {
    std::vector<std::string> row = {procs == 1 ? "create" : "", std::to_string(procs)};
    for (int k = 0; k < 3; k++) {
      snprintf(buf, sizeof(buf), "%.0f", create[procs - 1][k]);
      row.push_back(buf);
    }
    table.AddRow(row);
  }
  printf("%s\n", table.ToString().c_str());
  printf("Paper (Table 2), for shape comparison:\n");
  printf("  append 1p: 1,653 / 2,172 / 1,147    append 2p: 34,551 / 3,882 / 1,703\n");
  printf("  create 1p: 4,195 / 3,534 / 2,494    create 2p: 283,972 / 6,167 / 3,459\n");
  return 0;
}
