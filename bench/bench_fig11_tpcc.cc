// Figure 11 (+ Table 8) — TPC-C over the embedded database (paper §6.3).
//
// One thread, 1 warehouse, 10 districts, secondary indexes on customer and
// orders, foreign-key-ish reads — the four workloads of Figure 11:
//   mixed (Table 8 ratios: NEW 44 / PAY 44 / OS 4 / DLY 4 / SL 4),
//   NEW-only, OS-only, PAY-only.

#include <cstdio>
#include <vector>

#include "src/apps/minidb/tpcc.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace {

using harness::FsKind;

struct TpccResult {
  double mixed_tps, new_tps, os_tps, pay_tps;
};

TpccResult RunTpcc(FsKind kind, uint64_t txns, const minidb::TpccConfig& cfg) {
  harness::FsLab lab(kind, {.dev_bytes = 2ull << 30});
  vfs::FileSystem* fs = lab.View(0);

  auto db = minidb::MiniDb::Open(fs, "/tpcc.db");
  if (!db.ok()) {
    return {};
  }
  minidb::Tpcc tpcc(db->get(), cfg);
  auto st = tpcc.Load();
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", common::ErrName(st.error()));
    return {};
  }

  TpccResult r{};
  common::Stopwatch sw;
  auto run = [&](auto&& txn_fn, uint64_t count) -> double {
    for (uint64_t i = 0; i < count / 10; i++) {
      txn_fn();  // warmup: touch the code paths and pages before timing
    }
    sw.Restart();
    uint64_t ok = 0;
    for (uint64_t i = 0; i < count; i++) {
      if (txn_fn().ok()) {
        ok++;
      }
    }
    double secs = sw.ElapsedNs() / 1e9;
    return secs > 0 ? ok / secs : 0;
  };

  r.mixed_tps = run([&]() { return tpcc.Mixed(); }, txns);
  r.new_tps = run([&]() { return tpcc.NewOrder(); }, txns);
  r.os_tps = run([&]() { return tpcc.OrderStatus(); }, txns);
  r.pay_tps = run([&]() { return tpcc.Payment(); }, txns);
  return r;
}

}  // namespace

int main() {
  const uint64_t txns = harness::EnvOr("TPCC_TXNS", 2000);
  minidb::TpccConfig cfg;
  cfg.customers_per_district = static_cast<uint32_t>(harness::EnvOr("TPCC_CUSTOMERS", 300));
  cfg.items = static_cast<uint32_t>(harness::EnvOr("TPCC_ITEMS", 10000));

  const FsKind kinds[] = {FsKind::kExtDax, FsKind::kPmfs, FsKind::kNova, FsKind::kZofs};

  printf("Figure 11: TPC-C throughput (K txns/s), 1 warehouse, 10 districts,\n");
  printf("%u customers/district, %u items, %lu txns per workload\n",
         cfg.customers_per_district, cfg.items, (unsigned long)txns);
  printf("Mix (Table 8): NEW 44%% / PAY 44%% / OS 4%% / DLY 4%% / SL 4%%\n\n");

  common::TextTable t({"Workload", "Ext4-DAX", "PMFS", "NOVA", "ZoFS"});
  std::vector<TpccResult> all;
  for (FsKind k : kinds) {
    all.push_back(RunTpcc(k, txns, cfg));
  }
  auto row = [&](const char* name, auto sel) {
    std::vector<std::string> cells = {name};
    char buf[32];
    for (const TpccResult& r : all) {
      snprintf(buf, sizeof(buf), "%.2f", sel(r) / 1e3);
      cells.push_back(buf);
    }
    t.AddRow(cells);
  };
  row("mixed", [](const TpccResult& r) { return r.mixed_tps; });
  row("NEW", [](const TpccResult& r) { return r.new_tps; });
  row("OS", [](const TpccResult& r) { return r.os_tps; });
  row("PAY", [](const TpccResult& r) { return r.pay_tps; });
  printf("%s\n", t.ToString().c_str());

  printf("Paper shape: ZoFS highest in the mixed workload (+9%% over PMFS, +31%% over\n");
  printf("NOVA); PAY much faster than NEW; OS (read-only) fastest; NOVA trails PMFS\n");
  printf("because of copy-on-write.\n");
  return 0;
}
