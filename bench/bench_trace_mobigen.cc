// §2.3 MobiGen trace analysis — how often applications change permissions.
//
// The paper examines two 2-minute smartphone I/O traces: the Facebook trace
// has no chmod/chown among 64,282 system calls; the Twitter trace has 16
// chmods (no chowns) in 25,306 calls, every one of them part of the fixed
// shadow-file pattern (create 0600, write, chmod 0660, rename over the real
// file). This binary regenerates traces with those properties and runs the
// analysis — the evidence that "changes to permissions are infrequent".

#include <cstdio>

#include "src/analysis/survey.h"
#include "src/common/stats.h"

int main() {
  printf("MobiGen trace analysis (paper §2.3)\n\n");
  common::TextTable t({"Trace", "# Syscalls", "chmod", "chown", "shadow-file chmods"});
  struct Row {
    const char* name;
    analysis::SyscallTrace trace;
  };
  Row rows[] = {
      {"Facebook", analysis::GenMobiGenFacebook(11)},
      {"Twitter", analysis::GenMobiGenTwitter(12)},
  };
  for (const Row& row : rows) {
    analysis::TraceStats st = analysis::AnalyzeTrace(row.trace);
    t.AddRow({row.name, std::to_string(st.total), std::to_string(st.chmods),
              std::to_string(st.chowns), std::to_string(st.shadow_pattern_chmods)});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Paper: Facebook 64,282 syscalls, no chmod/chown; Twitter 25,306 syscalls,\n");
  printf("16 chmods, all in the shadow-file pattern. Permission changes are rare\n");
  printf("and ritualised — the observation that justifies coarse, coffer-granular\n");
  printf("permission enforcement.\n");
  return 0;
}
