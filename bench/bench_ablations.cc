// Ablation studies for the design choices DESIGN.md calls out.
//
//   A. coffer_enlarge batch size — the user/kernel allocation split (§6.1
//      blames enlarge contention for ZoFS's MWCL/DWAL flattening; batch size
//      is the knob that trades kernel crossings against space slack).
//   B. MPK protection overhead — the paper claims protection is nearly free
//      (a WRPKRU is ~16 cycles). Compare ZoFS with enforcement on and off.
//   C. Inline small-file data (§5.1 future work) — small-file create+write+
//      read throughput with and without embedding data in the inode page.
//   D. Atomic (COW) data updates — the data-atomicity ZoFS omits "for
//      simplicity"; measures what it would have cost.
//   E. Directory scaling — ops/s vs directory size, the two-level hash that
//      wins webproxy/varmail in Figure 9.

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/harness/fslab.h"
#include "src/harness/fxmark.h"
#include "src/harness/runner.h"

namespace {

using harness::FsKind;
using harness::FsLab;
using harness::LabOptions;

const vfs::Cred kCred{0, 0};

void AblationEnlargeBatch() {
  printf("[A] coffer_enlarge batch size vs append throughput (DWAL, 4 threads)\n\n");
  const uint64_t ops = harness::EnvOr("ABL_OPS", 10000);
  common::TextTable t({"batch (pages)", "Mops/s", "kernel crossings/op"});
  for (uint64_t batch : {4, 16, 64, 256}) {
    LabOptions lo;
    lo.dev_bytes = 1ull << 30;
    lo.zofs_enlarge_batch = batch;
    FsLab lab(FsKind::kZofs, lo);
    harness::FxOptions fx;
    fx.ops_per_thread = ops;
    auto r = harness::RunFxmark(lab, harness::FxWorkload::kDWAL, 4, fx);
    char b1[32], b2[32];
    snprintf(b1, sizeof(b1), "%.3f", r.ops_per_sec / 1e6);
    snprintf(b2, sizeof(b2), "%.4f", 1.0 / batch);
    t.AddRow({std::to_string(batch), b1, b2});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: small batches pay a kernel crossing every few appends;\n");
  printf("large batches amortise it away (the paper's per-thread lists + batch\n");
  printf("enlarge design). Diminishing returns past ~64 pages.\n\n");
}

void AblationMpk() {
  printf("[B] MPK protection overhead (DWOL overwrites + creates, 1 thread)\n\n");
  const uint64_t ops = harness::EnvOr("ABL_OPS", 10000);
  common::TextTable t({"configuration", "overwrite Mops/s", "create Kops/s"});
  for (bool disabled : {false, true}) {
    LabOptions lo;
    lo.dev_bytes = 1ull << 30;
    lo.disable_mpk = disabled;
    double over, create;
    {
      FsLab lab(FsKind::kZofs, lo);
      harness::FxOptions fx;
      fx.ops_per_thread = ops;
      over = harness::RunFxmark(lab, harness::FxWorkload::kDWOL, 1, fx).ops_per_sec;
    }
    {
      FsLab lab(FsKind::kZofs, lo);
      harness::FxOptions fx;
      fx.ops_per_thread = ops / 2;
      create = harness::RunFxmark(lab, harness::FxWorkload::kMWCL, 1, fx).ops_per_sec;
    }
    char b1[32], b2[32];
    snprintf(b1, sizeof(b1), "%.3f", over / 1e6);
    snprintf(b2, sizeof(b2), "%.1f", create / 1e3);
    t.AddRow({disabled ? "MPK off" : "MPK enforced", b1, b2});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: single-digit %% overhead — window switches are one register\n");
  printf("write and the per-access check is a table lookup (paper: WRPKRU ~16\n");
  printf("cycles, \"little overhead\").\n\n");
}

void AblationInline() {
  printf("[C] inline small-file data (create+write 256B+read, flat directory)\n\n");
  const uint64_t files = harness::EnvOr("ABL_FILES", 5000);
  common::TextTable t({"configuration", "files/s", "NVM pages used"});
  for (bool inline_on : {false, true}) {
    LabOptions lo;
    lo.dev_bytes = 1ull << 30;
    lo.zofs_inline_data = inline_on;
    FsLab lab(FsKind::kZofs, lo);
    vfs::FileSystem* fs = lab.View(0);
    fs->Mkdir(kCred, "/small", 0755);
    std::string payload(256, 's');
    char buf[256];
    common::Stopwatch sw;
    for (uint64_t i = 0; i < files; i++) {
      std::string p = "/small/f" + std::to_string(i);
      auto fd = fs->Open(kCred, p, vfs::kCreate | vfs::kRdWr, 0644);
      fs->Write(*fd, payload.data(), payload.size());
      fs->Pread(*fd, buf, sizeof(buf), 0);
      fs->Close(*fd);
    }
    double rate = files / (sw.ElapsedNs() / 1e9);
    uint64_t pages = lab.dev()->num_pages() - lab.kernfs()->FreePages();
    char b1[32];
    snprintf(b1, sizeof(b1), "%.0f", rate);
    t.AddRow({inline_on ? "inline data" : "4KB blocks", b1, std::to_string(pages)});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: inline mode skips one page allocation + pointer install per\n");
  printf("small file and halves the pages consumed (inode only vs inode+data).\n\n");
}

void AblationAtomic() {
  printf("[D] atomic (COW) data updates: 4KB and 512B overwrites, 1 thread\n\n");
  const uint64_t ops = harness::EnvOr("ABL_OPS", 10000);
  common::TextTable t({"configuration", "4KB overwrite Mops/s", "512B overwrite Mops/s"});
  for (bool atomic : {false, true}) {
    LabOptions lo;
    lo.dev_bytes = 1ull << 30;
    lo.zofs_atomic_data = atomic;
    FsLab lab(FsKind::kZofs, lo);
    vfs::FileSystem* fs = lab.View(0);
    auto fd = fs->Open(kCred, "/f", vfs::kCreate | vfs::kRdWr, 0644);
    std::vector<uint8_t> page(4096, 1);
    fs->Pwrite(*fd, page.data(), page.size(), 0);
    common::Stopwatch sw;
    for (uint64_t i = 0; i < ops; i++) {
      fs->Pwrite(*fd, page.data(), 4096, 0);
    }
    double full = ops / (sw.ElapsedNs() / 1e9);
    sw.Restart();
    for (uint64_t i = 0; i < ops; i++) {
      fs->Pwrite(*fd, page.data(), 512, 1024);
    }
    double part = ops / (sw.ElapsedNs() / 1e9);
    char b1[32], b2[32];
    snprintf(b1, sizeof(b1), "%.3f", full / 1e6);
    snprintf(b2, sizeof(b2), "%.3f", part / 1e6);
    t.AddRow({atomic ? "COW (atomic)" : "in-place", b1, b2});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: aligned 4KB COW costs one extra alloc+swap (modest); partial\n");
  printf("COW pays a full read-modify-write of the page — the same trade that makes\n");
  printf("NOVA's copy-on-write lose to in-place designs in Table 7.\n\n");
}

void AblationDirScale() {
  printf("[E] directory lookup scaling (two-level hash, paper §5.1)\n\n");
  common::TextTable t({"entries in dir", "lookup ns", "create ns"});
  for (uint64_t n : {100, 1000, 10000, 50000}) {
    LabOptions lo;
    lo.dev_bytes = 2ull << 30;
    FsLab lab(FsKind::kZofs, lo);
    vfs::FileSystem* fs = lab.View(0);
    fs->Mkdir(kCred, "/wide", 0755);
    common::Stopwatch sw;
    for (uint64_t i = 0; i < n; i++) {
      auto fd = fs->Open(kCred, "/wide/f" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0644);
      fs->Close(*fd);
    }
    double create_ns = static_cast<double>(sw.ElapsedNs()) / n;
    const uint64_t probes = 20000;
    common::Rng rng(3);
    sw.Restart();
    for (uint64_t i = 0; i < probes; i++) {
      fs->Stat(kCred, "/wide/f" + std::to_string(rng.Below(n)));
    }
    double lookup_ns = static_cast<double>(sw.ElapsedNs()) / probes;
    char b1[32], b2[32];
    snprintf(b1, sizeof(b1), "%.0f", lookup_ns);
    snprintf(b2, sizeof(b2), "%.0f", create_ns);
    t.AddRow({std::to_string(n), b1, b2});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: near-flat lookup latency out to tens of thousands of entries\n");
  printf("— the property that wins webproxy/varmail (dir-width 1,000,000) in Fig. 9.\n");
}

void AblationMicroFs() {
  printf("[F] two µFS designs on one Treasury (paper §5.3): ZoFS vs LogFS\n\n");
  const uint64_t ops = harness::EnvOr("ABL_OPS", 10000);
  common::TextTable t(
      {"µFS", "append Kops/s", "overwrite Kops/s", "create Kops/s", "read Kops/s"});
  for (FsKind kind : {FsKind::kZofs, FsKind::kLogFs}) {
    LabOptions lo;
    lo.dev_bytes = 2ull << 30;
    FsLab lab(kind, lo);
    vfs::FileSystem* fs = lab.View(0);
    std::vector<uint8_t> block(4096, 0x1f);
    common::Stopwatch sw;
    double append, over, create, read;
    {
      auto fd = fs->Open(kCred, "/a", vfs::kCreate | vfs::kWrite | vfs::kAppend, 0644);
      sw.Restart();
      for (uint64_t i = 0; i < ops; i++) {
        fs->Write(*fd, block.data(), block.size());
      }
      append = ops / (sw.ElapsedNs() / 1e9);
      fs->Close(*fd);
    }
    {
      auto fd = fs->Open(kCred, "/o", vfs::kCreate | vfs::kRdWr, 0644);
      fs->Pwrite(*fd, block.data(), block.size(), 0);
      sw.Restart();
      for (uint64_t i = 0; i < ops; i++) {
        fs->Pwrite(*fd, block.data(), block.size(), 0);
      }
      over = ops / (sw.ElapsedNs() / 1e9);
      sw.Restart();
      for (uint64_t i = 0; i < ops; i++) {
        fs->Pread(*fd, block.data(), block.size(), 0);
      }
      read = ops / (sw.ElapsedNs() / 1e9);
      fs->Close(*fd);
    }
    {
      fs->Mkdir(kCred, "/dir", 0755);
      sw.Restart();
      for (uint64_t i = 0; i < ops / 2; i++) {
        auto fd = fs->Open(kCred, "/dir/f" + std::to_string(i), vfs::kCreate | vfs::kWrite,
                           0644);
        fs->Close(*fd);
      }
      create = (ops / 2) / (sw.ElapsedNs() / 1e9);
    }
    char b1[32], b2[32], b3[32], b4[32];
    snprintf(b1, sizeof(b1), "%.1f", append / 1e3);
    snprintf(b2, sizeof(b2), "%.1f", over / 1e3);
    snprintf(b3, sizeof(b3), "%.1f", create / 1e3);
    snprintf(b4, sizeof(b4), "%.1f", read / 1e3);
    t.AddRow({FsKindName(kind), b1, b2, b3, b4});
  }
  printf("%s\n", t.ToString().c_str());
  printf("Expectation: LogFS overwrites go out of place (COW + one record per\n");
  printf("block) and trail ZoFS's in-place writes; creates are one small log\n");
  printf("append vs ZoFS's inode+dentry writes (comparable); reads are volatile\n");
  printf("index lookups for both. Same Treasury underneath — the coffer\n");
  printf("abstraction does not dictate the µFS design (paper §5.3).\n");
}

}  // namespace

int main(int argc, char** argv) {
  printf("Ablation studies (DESIGN.md design choices)\n\n");
  std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "enlarge") AblationEnlargeBatch();
  if (only.empty() || only == "mpk") AblationMpk();
  if (only.empty() || only == "inline") AblationInline();
  if (only.empty() || only == "atomic") AblationAtomic();
  if (only.empty() || only == "dirscale") AblationDirScale();
  if (only.empty() || only == "microfs") AblationMicroFs();
  return 0;
}
