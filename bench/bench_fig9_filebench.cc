// Figure 9 — Filebench personalities: throughput vs thread count across the
// five file systems (paper §6.2, Table 6), plus the ZoFS-20dirwidth lines
// for webproxy and varmail (the deep-path penalty discussed in §6.2).
//
// Env overrides: ZR_FB_ITERS, ZR_FB_SCALE_PCT, ZR_FB_THREADS, ZR_FB_DEV_MB.

#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/filebench.h"

int main(int argc, char** argv) {
  using harness::FbWorkload;
  using harness::FsKind;

  const uint64_t iters = harness::EnvOr("FB_ITERS", 300);
  const uint64_t reps = harness::EnvOr("FB_REPS", 2);  // best-of-N vs VM noise
  const double scale = harness::EnvOr("FB_SCALE_PCT", 10) / 100.0;
  const uint64_t max_threads = harness::EnvOr("FB_THREADS", 10);
  const uint64_t dev_mb = harness::EnvOr("FB_DEV_MB", 2048);

  std::vector<int> threads;
  for (int t = 1; t <= static_cast<int>(max_threads); t *= 2) {
    threads.push_back(t);
  }
  if (threads.back() != static_cast<int>(max_threads)) {
    threads.push_back(static_cast<int>(max_threads));
  }

  const FsKind kinds[] = {FsKind::kExtDax, FsKind::kPmfs, FsKind::kNova, FsKind::kStrata,
                          FsKind::kZofs};
  std::vector<FbWorkload> workloads = {FbWorkload::kFileserver, FbWorkload::kWebserver,
                                       FbWorkload::kWebproxy, FbWorkload::kVarmail};
  if (argc > 1) {
    FbWorkload w;
    if (harness::ParseFbWorkload(argv[1], &w)) {
      workloads = {w};
    }
  }

  printf("Figure 9: Filebench throughput (Kops/s) vs threads\n");
  printf("(fileserver scaled to %.0f%%, others full Table 6 size; %lu iterations/thread)\n\n",
         scale * 100, (unsigned long)iters);

  for (FbWorkload w : workloads) {
    harness::FbOptions fb;
    fb.iterations_per_thread = iters;
    // Only fileserver's data set (10,000 x 128 KB = 1.28 GB) needs scaling
    // on this host; the other personalities run at full Table 6 size, which
    // the dir-width comparison depends on (depth = log_width(nfiles)).
    fb.scale = w == FbWorkload::kFileserver ? scale : 1.0;
    const bool has_20dw_line = w == FbWorkload::kWebproxy || w == FbWorkload::kVarmail;

    std::vector<std::string> header = {std::string(FbName(w)) + " thr"};
    for (FsKind k : kinds) {
      header.push_back(FsKindName(k));
    }
    if (has_20dw_line) {
      header.push_back("ZoFS-20dirwidth");
    }
    common::TextTable table(header);

    for (int t : threads) {
      std::vector<std::string> row = {std::to_string(t)};
      char buf[32];
      auto best_of = [&](FsKind k, const harness::FbOptions& o) {
        double best = 0;
        for (uint64_t rep = 0; rep < reps; rep++) {
          harness::FsLab lab(k, {.dev_bytes = dev_mb << 20});
          best = std::max(best, harness::RunFilebench(lab, w, t, o).ops_per_sec);
        }
        return best;
      };
      for (FsKind k : kinds) {
        snprintf(buf, sizeof(buf), "%.2f", best_of(k, fb) / 1e3);
        row.push_back(buf);
      }
      if (has_20dw_line) {
        harness::FbOptions fb20 = fb;
        fb20.dir_width = 20;
        snprintf(buf, sizeof(buf), "%.2f", best_of(FsKind::kZofs, fb20) / 1e3);
        row.push_back(buf);
      }
      table.AddRow(row);
      fflush(stdout);
    }
    printf("%s\n", table.ToString().c_str());
  }
  printf("Paper shape: ZoFS best in all four personalities; gaps grow with threads in\n");
  printf("webproxy/varmail (wide flat directories favour ZoFS's two-level hash);\n");
  printf("reducing varmail dir-width to 20 costs ZoFS 10-30%% (deep paths).\n");
  return 0;
}
