// Figure 7 — FxMark microbenchmarks: throughput vs. thread count for the
// nine workload panels, across Ext4-DAX / PMFS / NOVA / Strata / ZoFS
// (paper §6.1).
//
// Each datapoint runs on a freshly formatted device. Note the host is
// single-core: the sweep exercises contention behaviour (locks, allocator,
// kernel crossings), which is what separates the systems in the paper.
//
// Env overrides: ZR_FX_OPS (ops/thread), ZR_FX_META_OPS, ZR_FX_THREADS
// (max), ZR_FX_DEV_MB.

#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/fxmark.h"

int main(int argc, char** argv) {
  using harness::FsKind;
  using harness::FxWorkload;

  const uint64_t data_ops = harness::EnvOr("FX_OPS", 20000);
  const uint64_t meta_ops = harness::EnvOr("FX_META_OPS", 8000);
  const uint64_t max_threads = harness::EnvOr("FX_THREADS", 10);
  const uint64_t dev_mb = harness::EnvOr("FX_DEV_MB", 1536);

  std::vector<int> threads;
  for (int t = 1; t <= static_cast<int>(max_threads); t *= 2) {
    threads.push_back(t);
  }
  if (threads.back() != static_cast<int>(max_threads)) {
    threads.push_back(static_cast<int>(max_threads));
  }

  const FsKind kinds[] = {FsKind::kExtDax, FsKind::kPmfs, FsKind::kNova, FsKind::kStrata,
                          FsKind::kZofs};

  // Optional filter: argv[1] = workload name.
  std::vector<FxWorkload> workloads(std::begin(harness::kAllFxWorkloads),
                                    std::end(harness::kAllFxWorkloads));
  if (argc > 1) {
    FxWorkload w;
    if (harness::ParseFxWorkload(argv[1], &w)) {
      workloads = {w};
    }
  }

  printf("Figure 7: FxMark throughput (Mops/s) vs threads\n");
  printf("(ops/thread: data=%lu meta=%lu; single-core host: thread sweep measures "
         "contention)\n\n",
         (unsigned long)data_ops, (unsigned long)meta_ops);

  for (FxWorkload w : workloads) {
    const bool is_meta = w == FxWorkload::kMWCL || w == FxWorkload::kMWUL ||
                         w == FxWorkload::kMWRL;
    harness::FxOptions fx;
    fx.ops_per_thread = is_meta ? meta_ops : data_ops;

    std::vector<std::string> header = {std::string(FxName(w)) + " thr"};
    for (const FsKind k : kinds) {
      header.push_back(FsKindName(k));
    }
    common::TextTable table(header);
    for (int t : threads) {
      std::vector<std::string> row = {std::to_string(t)};
      for (const FsKind k : kinds) {
        harness::LabOptions lo;
        lo.dev_bytes = dev_mb << 20;
        harness::FsLab lab(k, lo);
        auto r = harness::RunFxmark(lab, w, t, fx);
        char buf[32];
        snprintf(buf, sizeof(buf), "%.3f", r.ops_per_sec / 1e6);
        row.push_back(buf);
      }
      table.AddRow(row);
      fflush(stdout);
    }
    printf("%s\n", table.ToString().c_str());
  }
  printf("Paper shape: ZoFS leads most panels; PMFS's global allocator flattens after\n");
  printf("4 threads (DWAL/MWCL); ZoFS's coffer_enlarge contends in MWCL; NOVA's\n");
  printf("per-core allocator keeps scaling; all systems scale on reads.\n");
  return 0;
}
