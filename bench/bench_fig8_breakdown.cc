// Figure 8 — Throughput breakdown of DWOL (paper §6.1).
//
// Runs the DWOL workload (private-file 4 KB overwrites) on the nine variants
// of Figure 8, isolating where ZoFS's advantage comes from:
//   ZoFS            — the full user-space path
//   ZoFS-sysempty   — plus an empty system call per write
//   ZoFS-kwrite     — write path executed "in the kernel"
//   NOVA / NOVA-noindex / NOVAi / NOVAi-noindex — COW vs in-place, with and
//                     without index maintenance
//   PMFS / PMFS-nocache — store+clwb vs non-temporal data writes

#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/fxmark.h"

int main() {
  using harness::FsKind;

  const uint64_t ops = harness::EnvOr("FIG8_OPS", 30000);
  const uint64_t max_threads = harness::EnvOr("FIG8_THREADS", 10);

  const FsKind kinds[] = {
      FsKind::kZofs,          FsKind::kZofsSysEmpty, FsKind::kZofsKWrite,
      FsKind::kNova,          FsKind::kNovaNoIndex,  FsKind::kNovaInplace,
      FsKind::kNovaInplaceNoIndex, FsKind::kPmfs,    FsKind::kPmfsNocache,
  };

  std::vector<int> threads;
  for (int t = 1; t <= static_cast<int>(max_threads); t *= 2) {
    threads.push_back(t);
  }
  if (threads.back() != static_cast<int>(max_threads)) {
    threads.push_back(static_cast<int>(max_threads));
  }

  const uint64_t reps = harness::EnvOr("FIG8_REPS", 2);
  {
    // Throwaway warmup lab: the process's first multi-GB device otherwise
    // penalises whichever variant runs first.
    harness::FsLab lab(FsKind::kZofs, {.dev_bytes = 1ull << 30});
    harness::FxOptions warm;
    warm.ops_per_thread = 2000;
    harness::RunFxmark(lab, harness::FxWorkload::kDWOL, 1, warm);
  }
  printf("Figure 8: DWOL throughput breakdown (Mops/s), %lu ops/thread\n\n",
         (unsigned long)ops);
  std::vector<std::string> header = {"threads"};
  for (FsKind k : kinds) {
    header.push_back(FsKindName(k));
  }
  common::TextTable table(header);
  harness::FxOptions fx;
  fx.ops_per_thread = ops;
  for (int t : threads) {
    std::vector<std::string> row = {std::to_string(t)};
    for (FsKind k : kinds) {
      double best = 0;
      for (uint64_t rep = 0; rep < reps; rep++) {
        harness::FsLab lab(k, {.dev_bytes = 1ull << 30});
        best = std::max(best, harness::RunFxmark(lab, harness::FxWorkload::kDWOL, t, fx).ops_per_sec);
      }
      char buf[32];
      snprintf(buf, sizeof(buf), "%.3f", best / 1e6);
      row.push_back(buf);
    }
    table.AddRow(row);
  }
  printf("%s\n", table.ToString().c_str());
  printf("Paper shape: three groups — {ZoFS, ZoFS-sysempty} fastest;\n");
  printf("{NOVA-noindex, PMFS-nocache, ZoFS-kwrite, NOVAi-noindex} second;\n");
  printf("{PMFS, NOVA, NOVAi} slowest. Index maintenance dominates NOVA's cost;\n");
  printf("flush-per-line dominates PMFS's.\n");
  return 0;
}
