// §6.5 — Safety and recovery tests.
//
// Test 1 (buggy code): process P1 sprays stray writes at coffer memory while
//   P2 accesses files in the shared coffer. With PKRU closed (guideline G1),
//   every stray write faults; P2 is never affected. When P1 corrupts coffer
//   metadata through a legitimately open window, P2 receives graceful errors
//   instead of crashing (§3.4.2).
// Test 2 (malicious metadata): P1 rewrites a cross-coffer dentry in the
//   shared coffer C1 to point into C2; P2's G3 validation rejects it.
// Test 3 (recovery): time recovering a coffer holding 1,000 2 MB files,
//   split into user and kernel time (paper: 20,748 us total; 5,386 us user,
//   15,362 us kernel).

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/fslib/fslib.h"
#include "src/harness/runner.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"

namespace {

const vfs::Cred kAlice{1000, 1000};
const vfs::Cred kBob{1000, 1000};  // same uid: shares Alice's coffers

struct Stack {
  std::unique_ptr<nvm::NvmDevice> dev;
  std::unique_ptr<kernfs::KernFs> kfs;
};

Stack MakeStack(size_t bytes) {
  Stack s;
  nvm::Options nopts;
  nopts.size_bytes = bytes;
  s.dev = std::make_unique<nvm::NvmDevice>(nopts);
  mpk::InstallDeviceHook(s.dev.get());
  kernfs::FormatOptions fopts;
  fopts.root_mode = 0777;
  fopts.root_uid = 1000;
  fopts.root_gid = 1000;
  s.kfs = std::make_unique<kernfs::KernFs>(s.dev.get(), fopts);
  s.kfs->set_kernel_crossing_ns(400);
  return s;
}

void TestStrayWrites() {
  printf("[test 1] stray writes vs MPK protection\n");
  Stack s = MakeStack(256ull << 20);
  fslib::FsLib p1(s.kfs.get(), kAlice);
  fslib::FsLib p2(s.kfs.get(), kBob);

  // P2's working file in the shared coffer C1.
  auto fd = p2.Open(kBob, "/c1file", vfs::kCreate | vfs::kRdWr, 0666);
  std::vector<uint8_t> payload(4096, 0xee);
  p2.Pwrite(*fd, payload.data(), payload.size(), 0);

  // P1 maps C1 too (open gives its FSLibs a mapping), then "goes haywire":
  // application code (coffer windows closed, G1) sprays stores at random NVM
  // addresses.
  auto f1 = p1.Open(kAlice, "/c1file", vfs::kRead, 0);
  (void)f1;
  p1.BindThread();
  common::Rng rng(5);
  uint64_t faults = 0, landed = 0;
  const uint64_t attempts = harness::EnvOr("SAFETY_STRAY_WRITES", 20000);
  for (uint64_t i = 0; i < attempts; i++) {
    uint64_t off = rng.Below(s.dev->size() - 8) & ~7ull;
    try {
      s.dev->Store64(off, 0xdeadbeefdeadbeefULL);
      landed++;
    } catch (const mpk::ViolationError&) {
      faults++;
    }
  }
  printf("  stray stores attempted: %lu, blocked by MPK/page faults: %lu, landed: %lu\n",
         (unsigned long)attempts, (unsigned long)faults, (unsigned long)landed);

  // P2 still reads its file intact.
  std::vector<uint8_t> check(4096);
  p2.BindThread();
  auto r = p2.Pread(*fd, check.data(), check.size(), 0);
  bool intact = r.ok() && *r == check.size() && memcmp(check.data(), payload.data(), 4096) == 0;
  printf("  P2 file intact after P1's stray writes: %s\n", intact ? "YES" : "NO");

  // Now P1 corrupts C1 metadata through a *legitimately open* window (bug in
  // µFS code, §6.5): P2 must see graceful errors, not a crash.
  {
    auto node = p1.zofs().Lookup("/c1file", true);
    auto info = p1.zofs().EnsureMappedForTest(node->coffer_id, true);
    mpk::AccessWindow w(info->key, true);
    // Smash the inode magic.
    s.dev->Store64(node->inode_off, 0x4141414141414141ULL);
    s.dev->PersistRange(node->inode_off, 8);
  }
  p2.BindThread();
  auto r2 = p2.Pread(*fd, check.data(), check.size(), 0);
  printf("  P2 after metadata corruption: graceful error %s (process alive)\n",
         r2.ok() ? "MISSING!" : common::ErrName(r2.error()));
}

void TestMetadataAttack() {
  printf("[test 2] manipulated cross-coffer metadata (G3)\n");
  Stack s = MakeStack(256ull << 20);
  fslib::FsLib p1(s.kfs.get(), kAlice);  // attacker
  fslib::FsLib p2(s.kfs.get(), kBob);    // victim

  // C1: the shared coffer (root). C2: a private coffer (different perm).
  auto secret = p1.Open(kAlice, "/c2secret", vfs::kCreate | vfs::kWrite, 0600);
  std::vector<uint8_t> sec(64, 0x55);
  p1.Pwrite(*secret, sec.data(), sec.size(), 0);
  auto shared = p1.Open(kAlice, "/c1shared", vfs::kCreate | vfs::kWrite, 0666);
  (void)shared;

  // The attacker rewrites /c1shared's dentry in C1 to reference C2's root
  // inode (a cross-coffer reference with a mismatched path).
  auto c2node = p1.zofs().Lookup("/c2secret", true);
  {
    p1.BindThread();
    auto rootinfo = p1.zofs().EnsureMappedForTest(s.kfs->root_coffer_id(), true);
    mpk::AccessWindow w(rootinfo->key, true);
    // Find the dentry for "c1shared" by scanning the root directory pages.
    // (The attacker has full write access to C1, so this is legitimate for
    // it; the question is whether the victim follows the lie.)
    zofs::Inode* rootino = p1.zofs().InodeForTest(
        zofs::NodeRef{s.kfs->root_coffer_id(), rootinfo->root_inode_off});
    const uint64_t* l1 = s.dev->As<uint64_t>(rootino->l1_dir);
    for (uint64_t slot = 0; slot < zofs::kL1Slots; slot++) {
      if (l1[slot] == 0) {
        continue;
      }
      auto* l2 = s.dev->As<zofs::L2Page>(l1[slot]);
      for (zofs::Dentry& d : l2->embedded) {
        if (d.in_use() && strcmp(d.name, "c1shared") == 0) {
          uint64_t off = s.dev->OffsetOf(&d);
          s.dev->Store32(off + offsetof(zofs::Dentry, coffer_id), c2node->coffer_id);
          s.dev->Store64(off + offsetof(zofs::Dentry, inode_off), c2node->inode_off);
          s.dev->PersistRange(off, sizeof(zofs::Dentry));
        }
      }
    }
  }

  // The victim opens the shared file: G3 validation must reject the
  // manipulated reference (path mismatch), never touching C2.
  p2.BindThread();
  auto vfd = p2.Open(kBob, "/c1shared", vfs::kRead, 0);
  printf("  victim open of manipulated dentry: %s (expected EUCLEAN/EACCES)\n",
         vfd.ok() ? "SUCCEEDED (BAD)" : common::ErrName(vfd.error()));
}

void TestRecovery() {
  const uint64_t nfiles = harness::EnvOr("RECOVERY_FILES", 1000);
  const uint64_t fbytes = harness::EnvOr("RECOVERY_FILE_MB", 2) << 20;
  printf("[test 3] coffer recovery: %lu files x %s\n", (unsigned long)nfiles,
         common::HumanBytes(fbytes).c_str());
  Stack s = MakeStack((nfiles * fbytes) + (1ull << 30));
  fslib::FsLib p(s.kfs.get(), kAlice);

  std::vector<uint8_t> chunk(1 << 20, 0x99);
  for (uint64_t i = 0; i < nfiles; i++) {
    auto fd = p.Open(kAlice, "/f" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0666);
    for (uint64_t off = 0; off < fbytes; off += chunk.size()) {
      p.Pwrite(*fd, chunk.data(), chunk.size(), off);
    }
    p.Close(*fd);
  }

  p.BindThread();
  auto stats = p.zofs().RecoverAll();
  if (!stats.ok()) {
    printf("  recovery failed: %s\n", common::ErrName(stats.error()));
    return;
  }
  printf("  recovery: total %.0f us (user %.0f us, kernel %.0f us)\n",
         (stats->user_ns + stats->kernel_ns) / 1e3, stats->user_ns / 1e3,
         stats->kernel_ns / 1e3);
  printf("  pages in use %lu, reclaimed %lu, dentries cleared %lu\n",
         (unsigned long)stats->pages_in_use, (unsigned long)stats->pages_reclaimed,
         (unsigned long)stats->dentries_cleared);
  printf("  paper: 20,748 us total = 5,386 us user + 15,362 us kernel\n");
}

}  // namespace

int main() {
  printf("Section 6.5: safety and recovery tests\n\n");
  TestStrayWrites();
  printf("\n");
  TestMetadataAttack();
  printf("\n");
  TestRecovery();
  return 0;
}
