// Table 4 — File statistics and permission grouping on an FSL-Homes-like
// snapshot (paper §2.3).
//
// Regenerates a 726,751-file home-directory snapshot with the published
// per-permission counts, then runs the paper's top-down grouping algorithm
// (same (perm-sans-exec, uid, gid) as parent => same group) and reports the
// group structure — the analysis that motivates coffers.

#include <cstdio>
#include <map>

#include "src/analysis/survey.h"
#include "src/common/stats.h"

int main() {
  analysis::Tree tree = analysis::GenFslHomes(42);

  // Top half of Table 4: counts by type and permission.
  std::map<uint16_t, uint64_t> reg, sym, dir;
  uint64_t total = 0;
  for (const auto& f : tree.nodes) {
    total++;
    switch (f.type) {
      case analysis::FType::kRegular:
        reg[f.perm]++;
        break;
      case analysis::FType::kSymlink:
        sym[f.perm]++;
        break;
      case analysis::FType::kDirectory:
        dir[f.perm]++;
        break;
    }
  }

  const uint16_t kPerms[] = {0644, 0600, 0666, 0444, 0660, 0640, 0664, 0440};
  common::TextTable t({"Type", "# Files", "644", "600", "666", "444", "660", "640", "664",
                       "440"});
  auto row = [&](const char* name, std::map<uint16_t, uint64_t>& m) {
    uint64_t sum = 0;
    for (auto& [p, c] : m) {
      sum += c;
    }
    std::vector<std::string> cells = {name, std::to_string(sum)};
    for (uint16_t p : kPerms) {
      cells.push_back(std::to_string(m.count(p) ? m[p] : 0));
    }
    t.AddRow(cells);
  };
  row("Regular", reg);
  row("Symlink", sym);
  row("Directory", dir);
  std::map<uint16_t, uint64_t> all;
  for (auto* m : {&reg, &sym, &dir}) {
    for (auto& [p, c] : *m) {
      all[p] += c;
    }
  }
  row("All Files", all);

  // Bottom half: the grouping pass.
  analysis::GroupStats gs = analysis::GroupByPermission(tree);
  {
    std::vector<std::string> cells = {"# Groups", std::to_string(gs.num_groups)};
    for (uint16_t p : kPerms) {
      auto it = gs.per_perm.find(p & 0666);
      cells.push_back(std::to_string(it == gs.per_perm.end() ? 0 : it->second.groups));
    }
    t.AddRow(cells);
  }
  auto size_row = [&](const char* label, auto select) {
    std::vector<std::string> cells = {label, ""};
    for (uint16_t p : kPerms) {
      auto it = gs.per_perm.find(p & 0666);
      cells.push_back(it == gs.per_perm.end() ? "-" : common::HumanBytes(select(it->second)));
    }
    t.AddRow(cells);
  };
  size_row("Min Size", [](const analysis::GroupStats::PerPerm& pp) {
    return static_cast<double>(pp.min_bytes);
  });
  size_row("Avg Size",
           [](const analysis::GroupStats::PerPerm& pp) { return pp.avg_bytes; });
  size_row("Max Size", [](const analysis::GroupStats::PerPerm& pp) {
    return static_cast<double>(pp.max_bytes);
  });
  printf("Table 4: FSL-Homes-like snapshot, grouped by permission (paper §2.3)\n\n%s\n",
         t.ToString().c_str());

  printf("Grouping summary:\n");
  printf("  total files                 %lu (paper: 726,751)\n", (unsigned long)total);
  printf("  groups formed               %lu (paper: 4,449)\n", (unsigned long)gs.num_groups);
  printf("  largest group               %lu files = %.1f%% of all (paper: ~1/3)\n",
         (unsigned long)gs.largest_group_files,
         100.0 * gs.largest_group_files / gs.total_files);
  printf("  single-file groups          %lu (paper: 3,795), holding %.1f%% of files "
         "(paper: 0.6%%)\n",
         (unsigned long)gs.single_file_groups,
         100.0 * gs.single_file_group_files / gs.total_files);
  printf("  avg group size              %s (paper: 79.7MB)\n",
         common::HumanBytes(gs.avg_bytes).c_str());
  printf("  max group size              %s (paper: 52.0GB)\n",
         common::HumanBytes(gs.max_bytes).c_str());
  return 0;
}
