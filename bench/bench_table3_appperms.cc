// Table 3 — File permissions in databases and web servers (paper §2.3).
//
// Regenerates the surveyed trees (MySQL, PostgreSQL, DokuWiki data
// directories with the published distributions) and summarises them by
// (type, permission, uid/gid), reproducing the table plus the §2.3
// observation that per-application permissions are highly concentrated.

#include <cstdio>

#include "src/analysis/survey.h"
#include "src/common/stats.h"

namespace {

const char* TypeName(analysis::FType t) {
  switch (t) {
    case analysis::FType::kRegular:
      return "Regular";
    case analysis::FType::kSymlink:
      return "Symlink";
    case analysis::FType::kDirectory:
      return "Directory";
  }
  return "?";
}

void PrintSystem(const char* name, const analysis::Tree& tree) {
  auto rows = analysis::SummarizeByPermission(tree);
  common::TextTable t({"System", "Type", "Perm.", "Uid/Gid", "# Files", "Size"});
  bool first = true;
  char perm[8], ug[32], cnt[16];
  for (const auto& r : rows) {
    snprintf(perm, sizeof(perm), "%o", r.perm);
    snprintf(ug, sizeof(ug), "%u/%u", r.uid, r.gid);
    snprintf(cnt, sizeof(cnt), "%lu", (unsigned long)r.count);
    t.AddRow({first ? name : "", TypeName(r.type), perm, ug, cnt, common::HumanBytes(r.bytes)});
    first = false;
  }
  printf("%s\n", t.ToString().c_str());

  // The motivating observation: how concentrated are regular-file perms?
  uint64_t reg_total = 0, reg_top = 0;
  for (const auto& r : rows) {
    if (r.type == analysis::FType::kRegular) {
      reg_total += r.count;
      reg_top = std::max(reg_top, r.count);
    }
  }
  if (reg_total > 0) {
    printf("  -> %.1f%% of regular files share one permission/owner\n\n",
           100.0 * reg_top / reg_total);
  }
}

}  // namespace

int main() {
  printf("Table 3: file permissions in databases and web servers (regenerated trees)\n\n");
  PrintSystem("MySQL", analysis::GenMySql(1));
  PrintSystem("PostgreSQL", analysis::GenPostgres(2));
  PrintSystem("DokuWiki", analysis::GenDokuwiki(3));
  printf("Paper (Table 3): MySQL 6 dirs 750 + 358 reg 640 (399MB) + 1 reg 644;\n");
  printf("PostgreSQL 28 dirs 700 + 1,807 reg 600 (99MB); DokuWiki 1,035 dirs 755 +\n");
  printf("19,941 reg 644 (452MB).\n");
  return 0;
}
