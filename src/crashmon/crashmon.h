// Crashmon — systematic crash-state exploration for recovery correctness.
//
// A deterministic single-threaded workload is recorded against a fresh ZoFS
// stack with NVM crash capture on: every syscall's begin/end fence sequence
// numbers are logged together with its arguments, and the device journals one
// CrashEpoch per sfence (src/nvm). The explorer then enumerates crash points:
//
//   * one per persistence boundary — the on-media state immediately after
//     every recorded fence;
//   * configurable mid-epoch points — the post-fence state plus a
//     deterministic subset of the *next* epoch's pending cachelines, each at
//     its fence-time content. Under the x86 persistence model any such subset
//     is a legal crash state (lines evict independently between fences).
//
// Each crash image is materialized incrementally (nvm::CrashImageBuilder),
// loaded into a recycled per-worker device, remounted (KernFs + FsLib),
// recovered (MicroFs::RecoverAll), and checked against two oracles:
//
//   fsck oracle        recovery succeeds, the kernel allocation table is
//                      consistent (no double-owned or leaked pages), and a
//                      full tree walk touches only valid, reachable nodes
//                      (cross-coffer references resolve).
//   durability oracle  every operation that returned before the crash is
//                      fully visible, and the at-most-one in-flight operation
//                      is atomic: entirely absent, entirely applied, or — for
//                      data writes, which ZoFS does not make atomic — torn
//                      only byte-wise between old and new content.
//
// Exploration fans out across worker threads over a deterministic work queue
// (contiguous epoch ranges), and the report is byte-stable: two runs of the
// same configuration produce identical text and JSON.

#ifndef SRC_CRASHMON_CRASHMON_H_
#define SRC_CRASHMON_CRASHMON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crashmon {

// Recorded workloads. Named after the FxMark kernels they mirror
// (tools/pmem_audit uses the same names): DWOL overwrites blocks of a
// pre-sized file (Figure 8's flagship data workload), MWCL creates, MWUL
// unlinks, MWRL renames — half of them over existing destinations, the case
// the rename intent protects. kMixed interleaves all of the above plus
// mkdir/rmdir and private-permission (cross-coffer) files. kDWAL appends
// through the staged fast path with periodic fsyncs: its durability oracle
// is POSIX-weak (content is guaranteed only up to the last completed fsync;
// un-synced appends may be wholly or partially absent), which is exactly the
// contract the epoch batcher trades fences for — the crash sweep covers
// mid-epoch and mid-relink images of the staged-append intent protocol.
// kChurn is an open/create/delete storm recorded with the per-thread
// submission channels enabled and the pinned clock stepped between ops: the
// async refill prefetch keeps the (volatile) submission/completion rings
// partially drained at most crash points, and the stepped clock lapses
// allocator leases so persisted fast-path renewals land mid-run — the sweep
// covers every image between a renewal and its next durability point.
enum class Workload { kDWOL, kMWCL, kMWUL, kMWRL, kMixed, kDWAL, kChurn };

inline constexpr Workload kAllWorkloads[] = {
    Workload::kDWOL, Workload::kMWCL,  Workload::kMWUL, Workload::kMWRL,
    Workload::kMixed, Workload::kDWAL, Workload::kChurn,
};

const char* WorkloadName(Workload w);
bool ParseWorkload(const std::string& s, Workload* out);

struct ExploreOptions {
  Workload workload = Workload::kDWOL;
  uint64_t ops = 400;             // operations recorded under crash capture
  uint64_t seed = 42;             // workload + mid-epoch subset seed
  size_t dev_bytes = 32ull << 20;
  // Crash points per fence beyond the post-fence state itself: deterministic
  // pending-line subsets of the following epoch. 0 disables mid-epoch states.
  uint32_t mid_epoch_per_fence = 2;
  // Hard cap on explored states (0 = all); states are cut in enumeration
  // order, so a capped run explores a prefix of the uncapped run.
  uint64_t max_points = 0;
  int threads = 4;
  // Planted-bug regression hook: replay the workload with the pre-fix rename
  // that removed an existing destination before moving the source (recovery
  // itself always runs the fixed code). The explorer must report violations.
  bool legacy_rename_overwrite = false;
};

struct Violation {
  uint64_t state_id = 0;   // index in deterministic enumeration order
  int64_t epoch = -1;      // base epoch of the crash image (-1 = snapshot)
  uint64_t fence_seq = 0;  // fence of the base epoch
  int mid_variant = -1;    // -1 = post-fence state, else mid-epoch subset id
  std::string kind;        // recovery-failed | fsck-alloc | walk-failed |
                           // durability-lost | atomicity | unexpected-path
  std::string detail;
};

struct ExploreReport {
  std::string fs;
  std::string workload;
  uint64_t seed = 0;
  uint64_t ops_recorded = 0;
  uint64_t ops_failed = 0;      // ops that returned an error while recording
  uint64_t epochs = 0;          // fences journaled during the recording
  uint64_t states_explored = 0;
  uint64_t mid_epoch_states = 0;  // subset of states_explored
  uint64_t violation_count = 0;
  std::vector<Violation> violations;  // first kMaxViolationDetails, in order

  static constexpr size_t kMaxViolationDetails = 50;

  std::string ToText() const;
  // Byte-stable: no timestamps, no thread-dependent content.
  std::string ToJson() const;
};

// Records the workload, enumerates crash states, recovers and checks each.
// Deterministic: the report depends only on `opts` (not on opts.threads).
ExploreReport Explore(const ExploreOptions& opts);

}  // namespace crashmon

#endif  // SRC_CRASHMON_CRASHMON_H_
