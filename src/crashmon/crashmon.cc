#include "src/crashmon/crashmon.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"
#include "src/vfs/vfs.h"

namespace crashmon {
namespace {

using common::Err;

const vfs::Cred kCred{0, 0};

// ---------------------------------------------------------------------------
// Recorded operations and the in-memory model file system

struct OpRecord {
  enum class Kind { kCreate, kWrite, kUnlink, kMkdir, kRmdir, kRename, kAppend, kFsync };
  Kind kind;
  std::string path;
  std::string path2;  // rename destination
  uint16_t mode = 0644;
  uint64_t off = 0;
  std::string data;  // write payload
  bool ok = false;
  // Device fence sequence numbers bracketing the operation: fences in
  // (begin_fence, end_fence] were emitted by this operation. The workload is
  // single-threaded, so at most one operation spans any given fence.
  uint64_t begin_fence = 0;
  uint64_t end_fence = 0;
};

// What the durability oracle compares the recovered tree against: the exact
// semantic state after a prefix of completed operations. Advisory fields
// (mtimes, directory entry counts) are deliberately not modelled — ZoFS
// persists them lazily.
struct ModelState {
  std::map<std::string, std::string> files;  // path -> content
  std::set<std::string> dirs;
  // Files written through the staged-append fast path get POSIX-weak
  // durability: `synced` is the content guaranteed durable (the last
  // completed fsync's watermark), `written` everything appended so far.
  struct AppendState {
    std::string synced;
    std::string written;
  };
  std::map<std::string, AppendState> appends;
  // Content after the whole recording (including never-fsynced tails): the
  // upper bound a crash image may expose, since mid-epoch images materialize
  // pending lines at their *next-fence* content.
  std::map<std::string, std::string> append_final;
};

void Apply(ModelState* m, const OpRecord& op) {
  switch (op.kind) {
    case OpRecord::Kind::kCreate:
      m->files.emplace(op.path, std::string());
      break;
    case OpRecord::Kind::kWrite: {
      std::string& f = m->files[op.path];
      if (f.size() < op.off + op.data.size()) {
        f.resize(op.off + op.data.size(), '\0');
      }
      f.replace(op.off, op.data.size(), op.data);
      break;
    }
    case OpRecord::Kind::kUnlink:
      m->files.erase(op.path);
      break;
    case OpRecord::Kind::kMkdir:
      m->dirs.insert(op.path);
      break;
    case OpRecord::Kind::kRmdir:
      m->dirs.erase(op.path);
      break;
    case OpRecord::Kind::kRename: {
      auto it = m->files.find(op.path);
      if (it != m->files.end()) {
        m->files[op.path2] = it->second;
        m->files.erase(op.path);
      }
      break;
    }
    case OpRecord::Kind::kAppend:
      m->appends[op.path].written += op.data;
      break;
    case OpRecord::Kind::kFsync: {
      auto it = m->appends.find(op.path);
      if (it != m->appends.end()) {
        it->second.synced = it->second.written;
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload plans

struct Plan {
  std::vector<OpRecord> setup;  // executed before crash capture starts
  std::vector<OpRecord> run;    // executed under crash capture
  // Advance Explore's pinned clock by this much between recorded ops (0 =
  // frozen). kChurn uses it to lapse allocator leases deterministically so
  // fast-path renewals fire — and persist — during the capture.
  uint64_t clock_step_ns = 0;
};

std::string Nm(const char* prefix, uint64_t i) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%s%04llu", prefix, static_cast<unsigned long long>(i));
  return buf;
}

std::string RandData(common::Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (char& c : s) {
    c = static_cast<char>('a' + rng->Below(26));
  }
  return s;
}

void AddCreate(std::vector<OpRecord>* v, std::string path, uint16_t mode) {
  OpRecord op;
  op.kind = OpRecord::Kind::kCreate;
  op.path = std::move(path);
  op.mode = mode;
  v->push_back(std::move(op));
}

void AddWrite(std::vector<OpRecord>* v, std::string path, uint64_t off, std::string data) {
  OpRecord op;
  op.kind = OpRecord::Kind::kWrite;
  op.path = std::move(path);
  op.off = off;
  op.data = std::move(data);
  v->push_back(std::move(op));
}

void AddSimple(std::vector<OpRecord>* v, OpRecord::Kind kind, std::string path) {
  OpRecord op;
  op.kind = kind;
  op.path = std::move(path);
  v->push_back(std::move(op));
}

void AddAppend(std::vector<OpRecord>* v, std::string path, std::string data) {
  OpRecord op;
  op.kind = OpRecord::Kind::kAppend;
  op.path = std::move(path);
  op.data = std::move(data);
  v->push_back(std::move(op));
}

void AddRename(std::vector<OpRecord>* v, std::string from, std::string to) {
  OpRecord op;
  op.kind = OpRecord::Kind::kRename;
  op.path = std::move(from);
  op.path2 = std::move(to);
  v->push_back(std::move(op));
}

Plan BuildPlan(Workload w, uint64_t ops, uint64_t seed) {
  common::Rng rng(seed);
  Plan p;
  switch (w) {
    case Workload::kDWOL: {
      // Figure 8's flagship data workload: overwrite random 4 KB blocks of a
      // pre-sized private file.
      const uint64_t blocks = 8;
      AddCreate(&p.setup, "/f0", 0644);
      AddWrite(&p.setup, "/f0", 0, RandData(&rng, blocks * 4096));
      for (uint64_t i = 0; i < ops; i++) {
        AddWrite(&p.run, "/f0", 4096 * rng.Below(blocks), RandData(&rng, 4096));
      }
      break;
    }
    case Workload::kDWAL: {
      // Append workload over the staged fast path. /a0 gets a periodic fsync
      // (the durability watermark the weak oracle anchors on); /a1 is never
      // synced during capture, so its stage stays live across most crash
      // points — including mid-relink images where the intent record is
      // published but the epoch's durability fence has not landed. Sizes mix
      // sub-page tail appends with multi-page ones, and the page budget
      // forces periodic epoch-overflow flushes mid-run.
      AddCreate(&p.setup, "/a0", 0644);
      AddWrite(&p.setup, "/a0", 0, RandData(&rng, 100));
      AddCreate(&p.setup, "/a1", 0644);
      for (uint64_t i = 0; i < ops; i++) {
        if (i % 16 == 15) {
          AddSimple(&p.run, OpRecord::Kind::kFsync, "/a0");
        } else if (i % 3 == 2) {
          AddAppend(&p.run, "/a1", RandData(&rng, 48 + 16 * rng.Below(8)));
        } else {
          AddAppend(&p.run, "/a0", RandData(&rng, 256 + 512 * rng.Below(9)));
        }
      }
      break;
    }
    case Workload::kMWCL: {
      AddSimple(&p.setup, OpRecord::Kind::kMkdir, "/c");
      for (uint64_t i = 0; i < ops; i++) {
        // Every 8th file gets owner-only permissions: ZoFS places it in its
        // own coffer, covering mid-coffer-creation crash states.
        AddCreate(&p.run, "/c/" + Nm("f", i), i % 8 == 7 ? 0600 : 0644);
      }
      break;
    }
    case Workload::kMWUL: {
      AddSimple(&p.setup, OpRecord::Kind::kMkdir, "/u");
      for (uint64_t i = 0; i < ops; i++) {
        AddCreate(&p.setup, "/u/" + Nm("f", i), i % 8 == 7 ? 0600 : 0644);
        AddWrite(&p.setup, "/u/" + Nm("f", i), 0, RandData(&rng, 128));
      }
      for (uint64_t i = 0; i < ops; i++) {
        AddSimple(&p.run, OpRecord::Kind::kUnlink, "/u/" + Nm("f", i));
      }
      break;
    }
    case Workload::kMWRL: {
      // Pairs of renames per slot: a fresh-destination rename followed by a
      // rename over an existing destination — the path the rename intent
      // protects. Some sources/victims are coffer roots (0600).
      AddSimple(&p.setup, OpRecord::Kind::kMkdir, "/r");
      const uint64_t pairs = (ops + 1) / 2;
      for (uint64_t k = 0; k < pairs; k++) {
        AddCreate(&p.setup, "/r/" + Nm("a", k), k % 4 == 0 ? 0600 : 0644);
        AddWrite(&p.setup, "/r/" + Nm("a", k), 0, RandData(&rng, 128));
        AddCreate(&p.setup, "/r/" + Nm("b", k), k % 4 == 2 ? 0600 : 0644);
        AddWrite(&p.setup, "/r/" + Nm("b", k), 0, RandData(&rng, 96));
      }
      for (uint64_t i = 0; i < ops; i++) {
        const uint64_t k = i / 2;
        if (i % 2 == 0) {
          AddRename(&p.run, "/r/" + Nm("a", k), "/r/" + Nm("t", k));
        } else {
          AddRename(&p.run, "/r/" + Nm("t", k), "/r/" + Nm("b", k));
        }
      }
      break;
    }
    case Workload::kMixed: {
      AddSimple(&p.setup, OpRecord::Kind::kMkdir, "/m");
      for (uint64_t j = 0; j < 20; j++) {
        AddCreate(&p.setup, "/m/" + Nm("f", j), j % 5 == 0 ? 0600 : 0644);
        AddWrite(&p.setup, "/m/" + Nm("f", j), 0, RandData(&rng, 160));
      }
      for (uint64_t i = 0; i < ops; i++) {
        const uint64_t c = rng.Below(10);
        std::string f = "/m/" + Nm("f", rng.Below(40));
        if (c <= 1) {
          AddCreate(&p.run, f, rng.Below(8) == 0 ? 0600 : 0644);
        } else if (c <= 4) {
          AddWrite(&p.run, f, 64 * rng.Below(6), RandData(&rng, 64 + 64 * rng.Below(7)));
        } else if (c <= 6) {
          AddSimple(&p.run, OpRecord::Kind::kUnlink, f);
        } else if (c == 7) {
          std::string to = "/m/" + Nm("f", rng.Below(40));
          if (to != f) {
            AddRename(&p.run, f, to);
          } else {
            AddSimple(&p.run, OpRecord::Kind::kUnlink, f);
          }
        } else if (c == 8) {
          AddSimple(&p.run, OpRecord::Kind::kMkdir, "/m/" + Nm("d", rng.Below(6)));
        } else {
          AddSimple(&p.run, OpRecord::Kind::kRmdir, "/m/" + Nm("d", rng.Below(6)));
        }
      }
      break;
    }
    case Workload::kChurn: {
      // Open/create/delete storm (the channel benchmarks' churn kernel):
      // creates pull allocator refills through the async submission ring, so
      // most crash points land on a partially drained ring — queued requests
      // the kernel never saw plus completed grants no free list linked yet.
      // The stepped clock lapses leases past the renewal threshold, covering
      // crashes between a persisted fast-path renewal and the next
      // durability point.
      AddSimple(&p.setup, OpRecord::Kind::kMkdir, "/ch");
      for (uint64_t i = 0; i < ops; i++) {
        AddCreate(&p.run, "/ch/" + Nm("f", i), i % 8 == 7 ? 0600 : 0644);
        AddWrite(&p.run, "/ch/" + Nm("f", i), 0, RandData(&rng, 96 + 32 * rng.Below(4)));
        if (i % 4 == 3) {
          AddSimple(&p.run, OpRecord::Kind::kUnlink, "/ch/" + Nm("f", i - 3));
        }
      }
      p.clock_step_ns = 150'000;  // lease_ns/2 is 1 ms: a renewal every ~7 ops
      break;
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Recording

struct Recording {
  std::vector<uint8_t> snapshot;         // device image at capture start
  std::vector<nvm::CrashEpoch> journal;  // one entry per non-empty fence
  std::vector<OpRecord> ops;             // the captured operations
  ModelState base_model;                 // semantic state at capture start
  uint64_t capture_fence = 0;            // fence count at capture start
  uint64_t ops_failed = 0;
};

// Open files kept across operations (appends must reuse one descriptor:
// FsLib::Close is itself a durability point and would drain the stage the
// workload is trying to keep open).
using FdCache = std::map<std::string, vfs::Fd>;

void Exec(fslib::FsLib* fs, nvm::NvmDevice* dev, OpRecord* op, FdCache* cache) {
  op->begin_fence = dev->sfence_count();
  switch (op->kind) {
    case OpRecord::Kind::kCreate: {
      auto fd = fs->Open(kCred, op->path, vfs::kCreate | vfs::kWrite, op->mode);
      op->ok = fd.ok();
      if (fd.ok()) {
        fs->Close(*fd);
      }
      break;
    }
    case OpRecord::Kind::kWrite: {
      auto fd = fs->Open(kCred, op->path, vfs::kWrite, 0);
      if (fd.ok()) {
        auto r = fs->Pwrite(*fd, op->data.data(), op->data.size(), op->off);
        op->ok = r.ok() && *r == op->data.size();
        fs->Close(*fd);
      }
      break;
    }
    case OpRecord::Kind::kUnlink:
      op->ok = fs->Unlink(kCred, op->path).ok();
      break;
    case OpRecord::Kind::kMkdir:
      op->ok = fs->Mkdir(kCred, op->path, 0755).ok();
      break;
    case OpRecord::Kind::kRmdir:
      op->ok = fs->Rmdir(kCred, op->path).ok();
      break;
    case OpRecord::Kind::kRename:
      op->ok = fs->Rename(kCred, op->path, op->path2).ok();
      break;
    case OpRecord::Kind::kAppend: {
      auto it = cache->find(op->path);
      if (it == cache->end()) {
        auto fd = fs->Open(kCred, op->path, vfs::kWrite | vfs::kAppend, 0);
        if (!fd.ok()) {
          break;
        }
        it = cache->emplace(op->path, *fd).first;
      }
      auto r = fs->Write(it->second, op->data.data(), op->data.size());
      op->ok = r.ok() && *r == op->data.size();
      break;
    }
    case OpRecord::Kind::kFsync: {
      auto it = cache->find(op->path);
      op->ok = it != cache->end() && fs->Fsync(it->second).ok();
      break;
    }
  }
  op->end_fence = dev->sfence_count();
}

Recording Record(const ExploreOptions& opts) {
  Recording rec;
  nvm::Options no;
  no.size_bytes = opts.dev_bytes;
  no.crash_tracking = true;
  nvm::NvmDevice dev(no);
  mpk::InstallDeviceHook(&dev);

  kernfs::FormatOptions fo;
  fo.root_mode = 0755;
  auto kfs = std::make_unique<kernfs::KernFs>(&dev, fo);
  kfs->set_kernel_crossing_ns(0);
  zofs::Options zo;
  zo.legacy_rename_overwrite = opts.legacy_rename_overwrite;
  // Short lease so locks held in a crash image have expired by the time the
  // exploration workers recover it (leases store wall-clock deadlines).
  zo.lease_ns = 2'000'000;
  auto fs = std::make_unique<fslib::FsLib>(kfs.get(), kCred, zo);

  Plan plan = BuildPlan(opts.workload, opts.ops, opts.seed);
  FdCache cache;
  for (OpRecord& op : plan.setup) {
    Exec(fs.get(), &dev, &op, &cache);
    if (op.ok) {
      Apply(&rec.base_model, op);
    }
  }

  // Files the run will append to get weak-durability accounting: move their
  // setup content from the strict map into the append model. This must
  // happen before capture, because staged effects of *unapplied* appends
  // (size/pointer lines at fence-time content) can leak into mid-epoch
  // images and would trip the strict content check.
  for (const OpRecord& op : plan.run) {
    if (op.kind != OpRecord::Kind::kAppend) {
      continue;
    }
    auto& as = rec.base_model.appends[op.path];
    auto it = rec.base_model.files.find(op.path);
    if (it != rec.base_model.files.end()) {
      as.synced = it->second;
      as.written = it->second;
      rec.base_model.files.erase(it);
    }
  }

  dev.StartCrashCapture();
  rec.capture_fence = dev.sfence_count();
  dev.SnapshotTo(&rec.snapshot);

  for (OpRecord& op : plan.run) {
    if (plan.clock_step_ns != 0) {
      common::AdvanceNowNsForTest(plan.clock_step_ns);
    }
    Exec(fs.get(), &dev, &op, &cache);
    if (!op.ok) {
      rec.ops_failed++;
    }
  }
  // Closing a written descriptor is a durability point: the trailing drain's
  // fences land in the journal, so the sweep also covers post-final-drain
  // images.
  for (const auto& [path, fd] : cache) {
    fs->Close(fd);
  }

  // The upper bound any crash image may expose per append file.
  {
    ModelState fin = rec.base_model;
    for (const OpRecord& op : plan.run) {
      if (op.ok) {
        Apply(&fin, op);
      }
    }
    for (const auto& [p, as] : fin.appends) {
      rec.base_model.append_final[p] = as.written;
    }
  }

  rec.journal = dev.crash_journal();
  rec.ops = std::move(plan.run);

  fs.reset();
  kfs.reset();
  mpk::BindThreadToProcess(nullptr);
  return rec;
}

// ---------------------------------------------------------------------------
// Oracles

struct StateCtx {
  uint64_t id = 0;
  int64_t epoch = -1;
  uint64_t fence = 0;
  int variant = -1;
};

void AddViolation(std::vector<Violation>* out, const StateCtx& sc, const char* kind,
                  std::string detail) {
  Violation v;
  v.state_id = sc.id;
  v.epoch = sc.epoch;
  v.fence_seq = sc.fence;
  v.mid_variant = sc.variant;
  v.kind = kind;
  v.detail = std::move(detail);
  out->push_back(std::move(v));
}

bool Walk(vfs::FileSystem* fs, const std::string& dir, std::set<std::string>* files,
          std::set<std::string>* dirs, std::string* err) {
  auto es = fs->ReadDir(kCred, dir);
  if (!es.ok()) {
    *err = "readdir " + dir + ": " + common::ErrName(es.error());
    return false;
  }
  for (const vfs::DirEntry& e : *es) {
    if (e.name == "." || e.name == "..") {
      continue;
    }
    std::string p = (dir == "/") ? "/" + e.name : dir + "/" + e.name;
    if (e.type == vfs::FileType::kDirectory) {
      dirs->insert(p);
      if (!Walk(fs, p, files, dirs, err)) {
        return false;
      }
    } else {
      files->insert(p);
    }
  }
  return true;
}

// Reads a whole file. Returns 1 if present (content in *out), 0 if absent,
// -1 on any other error.
int ReadAll(vfs::FileSystem* fs, const std::string& p, std::string* out) {
  auto fd = fs->Open(kCred, p, vfs::kRead, 0);
  if (!fd.ok()) {
    return fd.error() == Err::kNoEnt ? 0 : -1;
  }
  auto st = fs->Fstat(*fd);
  if (!st.ok()) {
    fs->Close(*fd);
    return -1;
  }
  out->assign(st->size, '\0');
  size_t got = 0;
  while (got < out->size()) {
    auto r = fs->Pread(*fd, out->data() + got, out->size() - got, got);
    if (!r.ok() || *r == 0) {
      break;
    }
    got += *r;
  }
  fs->Close(*fd);
  return got == out->size() ? 1 : -1;
}

std::string DescribeDiff(const std::string& want, const std::string& got) {
  std::ostringstream os;
  os << " (model " << want.size() << "B, found " << got.size() << "B";
  size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; i++) {
    if (want[i] != got[i]) {
      os << ", first diff at byte " << i;
      break;
    }
  }
  os << ")";
  return os.str();
}

// An in-flight data write may be torn, but only line-wise between old and new
// content: ZoFS writes in place (no data atomicity, as the paper's design
// states), so each byte in the written range reads as old or new. Bytes
// outside the range must be untouched; bytes beyond the old size live on
// freshly allocated pages whose prior content is legal to observe.
void CheckTornWrite(vfs::FileSystem* fs, const std::string& p, const std::string& old,
                    const OpRecord& op, const StateCtx& sc, std::vector<Violation>* out) {
  std::string got;
  int r = ReadAll(fs, p, &got);
  if (r < 0) {
    AddViolation(out, sc, "walk-failed", "read failed during in-flight write check: " + p);
    return;
  }
  if (r == 0) {
    AddViolation(out, sc, "durability-lost", "file vanished during in-flight write: " + p);
    return;
  }
  const size_t new_size = std::max<size_t>(old.size(), op.off + op.data.size());
  if (got.size() < std::min<size_t>(old.size(), new_size) || got.size() > new_size) {
    AddViolation(out, sc, "atomicity",
                 "in-flight write left illegal size on " + p + ": " + std::to_string(got.size()) +
                     "B (old " + std::to_string(old.size()) + "B, new " +
                     std::to_string(new_size) + "B)");
    return;
  }
  const size_t n = std::min(got.size(), old.size());
  for (size_t i = 0; i < n; i++) {
    const bool in_range = i >= op.off && i < op.off + op.data.size();
    if (in_range) {
      if (got[i] != old[i] && got[i] != op.data[i - op.off]) {
        AddViolation(out, sc, "atomicity",
                     "torn write byte neither old nor new on " + p + " at byte " +
                         std::to_string(i));
        return;
      }
    } else if (got[i] != old[i]) {
      AddViolation(out, sc, "atomicity",
                   "in-flight write changed byte outside its range on " + p + " at byte " +
                       std::to_string(i));
      return;
    }
  }
}

void CheckState(vfs::FileSystem* fs, const ModelState& m, const OpRecord* infl,
                const StateCtx& sc, std::vector<Violation>* out) {
  std::set<std::string> rfiles;
  std::set<std::string> rdirs;
  std::string err;
  if (!Walk(fs, "/", &rfiles, &rdirs, &err)) {
    AddViolation(out, sc, "walk-failed", err);
    return;
  }
  // An in-flight operation that eventually returned an error must have no
  // visible effect (operations validate before mutating), so it earns no
  // tolerance.
  const bool active = infl != nullptr && infl->ok;
  using K = OpRecord::Kind;

  for (const std::string& d : m.dirs) {
    if (rdirs.count(d) != 0 || (active && infl->kind == K::kRmdir && infl->path == d)) {
      continue;
    }
    AddViolation(out, sc, "durability-lost", "directory missing: " + d);
  }
  for (const std::string& d : rdirs) {
    if (m.dirs.count(d) != 0 || (active && infl->kind == K::kMkdir && infl->path == d)) {
      continue;
    }
    AddViolation(out, sc, "unexpected-path", "directory not in model: " + d);
  }

  // In-flight rename: the namespace must be in exactly the pre- or the
  // post-rename state — this is the oracle the rename intent exists for.
  std::set<std::string> skip;
  if (active && infl->kind == K::kRename) {
    skip.insert(infl->path);
    skip.insert(infl->path2);
    auto src = m.files.find(infl->path);
    if (src != m.files.end()) {
      auto dst = m.files.find(infl->path2);
      std::string f_cont;
      std::string t_cont;
      int rf = ReadAll(fs, infl->path, &f_cont);
      int rt = ReadAll(fs, infl->path2, &t_cont);
      if (rf < 0 || rt < 0) {
        AddViolation(out, sc, "walk-failed",
                     "read failed during rename check: " + infl->path + " -> " + infl->path2);
      } else {
        const bool pre =
            rf == 1 && f_cont == src->second &&
            (dst != m.files.end() ? (rt == 1 && t_cont == dst->second) : rt == 0);
        const bool post = rf == 0 && rt == 1 && t_cont == src->second;
        if (!pre && !post) {
          AddViolation(out, sc, "atomicity",
                       "rename " + infl->path + " -> " + infl->path2 + " torn: source " +
                           (rf == 1 ? "present" : "absent") + ", destination " +
                           (rt == 1 ? "present" : "absent") +
                           (rt == 1 ? DescribeDiff(src->second, t_cont) : ""));
        }
      }
    }
  }

  for (const auto& [p, content] : m.files) {
    if (skip.count(p) != 0) {
      continue;
    }
    if (active && infl->kind == K::kWrite && infl->path == p) {
      CheckTornWrite(fs, p, content, *infl, sc, out);
      continue;
    }
    std::string got;
    int r = ReadAll(fs, p, &got);
    if (r < 0) {
      AddViolation(out, sc, "walk-failed", "read failed: " + p);
      continue;
    }
    if (r == 0) {
      if (active && infl->kind == K::kUnlink && infl->path == p) {
        continue;
      }
      AddViolation(out, sc, "durability-lost", "file missing: " + p);
      continue;
    }
    if (got != content) {
      AddViolation(out, sc, "durability-lost", "content mismatch: " + p + DescribeDiff(content, got));
    }
  }

  // Staged-append files: POSIX-weak durability, the contract the epoch
  // batcher trades per-op fences for. Content up to the last completed
  // fsync's watermark must be intact; beyond it nothing is promised — the
  // size may land anywhere between the watermark and the final recorded
  // content (mid-epoch images materialize pending lines at next-fence
  // content, which can run ahead of the crash fence), and un-synced bytes
  // are unconstrained (a persisted size line does not imply the data or
  // pointer lines underneath it persisted).
  for (const auto& [p, as] : m.appends) {
    std::string got;
    int r = ReadAll(fs, p, &got);
    if (r < 0) {
      AddViolation(out, sc, "walk-failed", "read failed: " + p);
      continue;
    }
    if (r == 0) {
      AddViolation(out, sc, "durability-lost", "append file missing: " + p);
      continue;
    }
    auto fit = m.append_final.find(p);
    const size_t max_size = fit != m.append_final.end() ? fit->second.size() : as.written.size();
    if (got.size() < as.synced.size() || got.size() > max_size) {
      AddViolation(out, sc, "durability-lost",
                   "append file size out of range on " + p + ": " + std::to_string(got.size()) +
                       "B (fsync watermark " + std::to_string(as.synced.size()) + "B, max " +
                       std::to_string(max_size) + "B)");
      continue;
    }
    if (got.compare(0, as.synced.size(), as.synced) != 0) {
      AddViolation(out, sc, "durability-lost",
                   "fsynced prefix lost on " + p + DescribeDiff(as.synced, got));
    }
  }

  for (const std::string& p : rfiles) {
    if (m.files.count(p) != 0 || m.appends.count(p) != 0 || skip.count(p) != 0) {
      continue;
    }
    if (active && infl->kind == K::kCreate && infl->path == p) {
      std::string got;
      if (ReadAll(fs, p, &got) == 1 && !got.empty()) {
        AddViolation(out, sc, "atomicity",
                     "in-flight create visible with nonzero size: " + p);
      }
      continue;
    }
    AddViolation(out, sc, "unexpected-path", "file not in model: " + p);
  }
}

// ---------------------------------------------------------------------------
// Exploration

struct WorkItem {
  uint64_t state_id = 0;
  int64_t base_epoch = -1;  // crash image baseline (-1 = capture snapshot)
  int variant = -1;         // -1 = post-fence state, else mid-epoch subset id
};

std::vector<bool> PickSubset(uint64_t seed, int64_t base, int variant, size_t n) {
  common::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(base + 2)) ^
                  (0x517cc1b727220a95ULL * static_cast<uint64_t>(variant + 1)));
  std::vector<bool> pick(n);
  bool any = false;
  for (size_t i = 0; i < n; i++) {
    pick[i] = (rng.Next() & 1) != 0;
    any = any || pick[i];
  }
  if (!any && n != 0) {
    pick[static_cast<size_t>(base + 2 + variant) % n] = true;
  }
  return pick;
}

std::string DescribeFault(const mpk::ViolationError& e) {
  std::ostringstream os;
  os << "mpk fault: " << (e.is_write ? "write" : "read") << " off=0x" << std::hex << e.off
     << std::dec << " key=" << static_cast<int>(e.key);
  return os.str();
}

void RecoverAndCheck(nvm::NvmDevice* dev, const ModelState& m, const OpRecord* infl,
                     const StateCtx& sc, std::vector<Violation>* out) {
  auto kfs = std::make_unique<kernfs::KernFs>(dev);
  kfs->set_kernel_crossing_ns(0);
  auto fs = std::make_unique<fslib::FsLib>(kfs.get(), kCred);
  fs->BindThread();
  // Recovery must never fault, whatever the crash image looks like — an
  // escaped simulated page fault on a torn image is itself a finding.
  try {
    auto stats = fs->ufs().RecoverAll();
    if (!stats.ok()) {
      AddViolation(out, sc, "recovery-failed", common::ErrName(stats.error()));
    } else {
      std::string alloc = kfs->CheckAllocTableForTest();
      if (!alloc.empty()) {
        AddViolation(out, sc, "fsck-alloc", alloc.substr(0, alloc.find('\n')));
      }
      CheckState(fs.get(), m, infl, sc, out);
    }
  } catch (const mpk::ViolationError& e) {
    AddViolation(out, sc, "recovery-failed", DescribeFault(e));
  }
  fs.reset();
  kfs.reset();
  mpk::BindThreadToProcess(nullptr);
}

void Worker(const Recording& rec, const ExploreOptions& opts, const WorkItem* items, size_t n,
            std::vector<Violation>* out) {
  nvm::Options no;
  no.size_bytes = opts.dev_bytes;
  nvm::NvmDevice dev(no);
  mpk::InstallDeviceHook(&dev);
  nvm::CrashImageBuilder builder(rec.snapshot, &rec.journal);

  // Items arrive in non-decreasing base_epoch order, so the model advances
  // incrementally in lockstep with the image builder.
  ModelState model = rec.base_model;
  size_t applied = 0;
  std::vector<uint8_t> scratch;

  for (size_t i = 0; i < n; i++) {
    const WorkItem& it = items[i];
    builder.AdvanceTo(it.base_epoch);
    const uint64_t f =
        it.base_epoch < 0 ? rec.capture_fence : rec.journal[it.base_epoch].fence_seq;

    const std::vector<uint8_t>* img = &builder.image();
    if (it.variant >= 0) {
      std::vector<bool> pick =
          PickSubset(opts.seed, it.base_epoch, it.variant, builder.NextEpochLineCount());
      if (!builder.MaterializeMidEpoch(pick, &scratch)) {
        continue;
      }
      img = &scratch;
    }

    while (applied < rec.ops.size() && rec.ops[applied].end_fence <= f) {
      if (rec.ops[applied].ok) {
        Apply(&model, rec.ops[applied]);
      }
      applied++;
    }
    const OpRecord* infl = nullptr;
    if (it.variant < 0) {
      if (applied < rec.ops.size() && rec.ops[applied].begin_fence < f) {
        infl = &rec.ops[applied];
      }
    } else {
      const uint64_t f2 = rec.journal[it.base_epoch + 1].fence_seq;
      size_t j = applied;
      while (j < rec.ops.size() && rec.ops[j].end_fence < f2) {
        j++;
      }
      if (j < rec.ops.size() && rec.ops[j].begin_fence < f2) {
        infl = &rec.ops[j];
      }
    }

    dev.RestoreFrom(img->data(), img->size());
    StateCtx sc{it.state_id, it.base_epoch, f, it.variant};
    RecoverAndCheck(&dev, model, infl, sc, out);
  }
  mpk::BindThreadToProcess(nullptr);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kDWOL:
      return "DWOL";
    case Workload::kMWCL:
      return "MWCL";
    case Workload::kMWUL:
      return "MWUL";
    case Workload::kMWRL:
      return "MWRL";
    case Workload::kMixed:
      return "MIXED";
    case Workload::kDWAL:
      return "DWAL";
    case Workload::kChurn:
      return "CHURN";
  }
  return "?";
}

bool ParseWorkload(const std::string& s, Workload* out) {
  for (Workload w : kAllWorkloads) {
    if (s == WorkloadName(w)) {
      *out = w;
      return true;
    }
  }
  return false;
}

ExploreReport Explore(const ExploreOptions& opts) {
  // Pin the logical clock for the whole record/replay/recover cycle: a
  // free-list lease lapsing mid-recording (possible whenever the host is
  // slow enough, e.g. under sanitizers) adds an extra persist epoch and
  // breaks the report's run-to-run determinism contract.
  common::ScopedClockPin pin(1'000'000'000ull + opts.seed);
  Recording rec = Record(opts);

  ExploreReport rep;
  rep.fs = "zofs";
  rep.workload = WorkloadName(opts.workload);
  rep.seed = opts.seed;
  rep.ops_recorded = rec.ops.size();
  rep.ops_failed = rec.ops_failed;
  rep.epochs = rec.journal.size();

  // Deterministic enumeration: for each baseline (the capture snapshot, then
  // every post-fence state) the baseline itself, then its mid-epoch variants
  // drawn from the following epoch. A cap keeps a prefix of this order.
  std::vector<WorkItem> items;
  const int64_t epochs = static_cast<int64_t>(rec.journal.size());
  uint64_t id = 0;
  for (int64_t base = -1; base < epochs; base++) {
    items.push_back({id++, base, -1});
    if (base + 1 < epochs) {
      for (uint32_t k = 0; k < opts.mid_epoch_per_fence; k++) {
        items.push_back({id++, base, static_cast<int>(k)});
      }
    }
    if (opts.max_points != 0 && items.size() >= opts.max_points) {
      items.resize(opts.max_points);
      break;
    }
  }
  rep.states_explored = items.size();
  for (const WorkItem& it : items) {
    if (it.variant >= 0) {
      rep.mid_epoch_states++;
    }
  }

  int threads = std::max(1, opts.threads);
  threads = static_cast<int>(std::min<size_t>(threads, items.empty() ? 1 : items.size()));
  const size_t chunk = (items.size() + threads - 1) / threads;
  std::vector<std::vector<Violation>> per(threads);
  std::vector<std::thread> pool;
  for (int w = 0; w < threads; w++) {
    const size_t lo = w * chunk;
    const size_t hi = std::min(items.size(), lo + chunk);
    if (lo >= hi) {
      break;
    }
    pool.emplace_back(Worker, std::cref(rec), std::cref(opts), items.data() + lo, hi - lo,
                      &per[w]);
  }
  for (std::thread& t : pool) {
    t.join();
  }

  // Chunks are contiguous in enumeration order, so concatenation restores the
  // global deterministic order regardless of the thread count.
  for (const std::vector<Violation>& v : per) {
    rep.violation_count += v.size();
    for (const Violation& x : v) {
      if (rep.violations.size() < ExploreReport::kMaxViolationDetails) {
        rep.violations.push_back(x);
      }
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Reports

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExploreReport::ToText() const {
  std::ostringstream os;
  os << "crash_explore: " << workload << " on " << fs << ", " << ops_recorded
     << " ops recorded (" << ops_failed << " failed), " << epochs << " persistence epochs\n";
  os << "  explored " << states_explored << " crash states (" << mid_epoch_states
     << " mid-epoch), " << violation_count << " violation(s)\n";
  for (const Violation& v : violations) {
    os << "  [" << v.kind << "] state " << v.state_id << " epoch " << v.epoch << " fence "
       << v.fence_seq;
    if (v.mid_variant >= 0) {
      os << " mid#" << v.mid_variant;
    }
    os << ": " << v.detail << "\n";
  }
  if (violation_count > violations.size()) {
    os << "  ... " << (violation_count - violations.size()) << " more violation(s) elided\n";
  }
  return os.str();
}

std::string ExploreReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fs\": \"" << JsonEscape(fs) << "\",\n";
  os << "  \"workload\": \"" << JsonEscape(workload) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"ops_recorded\": " << ops_recorded << ",\n";
  os << "  \"ops_failed\": " << ops_failed << ",\n";
  os << "  \"epochs\": " << epochs << ",\n";
  os << "  \"states_explored\": " << states_explored << ",\n";
  os << "  \"mid_epoch_states\": " << mid_epoch_states << ",\n";
  os << "  \"violation_count\": " << violation_count << ",\n";
  os << "  \"violations\": [";
  for (size_t i = 0; i < violations.size(); i++) {
    const Violation& v = violations[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"state_id\": " << v.state_id << ", \"epoch\": " << v.epoch
       << ", \"fence_seq\": " << v.fence_seq << ", \"mid_variant\": " << v.mid_variant
       << ", \"kind\": \"" << JsonEscape(v.kind) << "\", \"detail\": \"" << JsonEscape(v.detail)
       << "\"}";
  }
  os << (violations.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace crashmon
