// Persistence-ordering and protection auditor (pmemcheck/XFDetector-style).
//
// The auditor piggybacks on the per-cacheline state machine the NVM device
// already implements for crash injection (dirty -> written back -> fenced)
// and on the MPK access hook, and checks — per run — that the file systems
// above use those primitives correctly:
//
//   * unflushed-at-durability-point (error): an annotated commit site
//     declared a range durable (audit::DurabilityPoint) while some of its
//     cachelines were still dirty or written back but unfenced;
//   * ordering violation (error): a commit/flag store became persistent at a
//     fence while stores it is annotated to depend on (audit::OrderAfter)
//     were still volatile — the classic "commit before payload" PM bug;
//   * protection-window leak (error): an FSLib entry point returned with a
//     PKRU window still open, or with PKRU differing from its value at entry
//     (guideline G1 violation);
//   * over-wide protection window (warn): an AccessWindow opened writable
//     performed no write — read-only would have sufficed (guideline G2
//     least-privilege lint);
//   * redundant flush (perf lint): Clwb covering only clean lines, or Sfence
//     with no write-backs pending — correct but wasted persistence traffic,
//     reported with per-call-site counts;
//   * duplicate epoch flush (perf lint): the same cacheline written back
//     more than once within a single fence epoch — each repeat is a wasted
//     write-back the epoch batcher's FlushSet exists to coalesce (N dirty
//     stores to one line should cost one clwb per durability epoch).
//
// The auditor is opt-in and zero-cost when detached (a null observer check
// per store). Three front doors:
//   * ZOFS_AUDIT=1 — every NvmDevice created by the process is audited and
//     the process exits nonzero if any severity-error finding accumulated;
//   * tools/pmem_audit — replays a named bench workload audited and emits a
//     text/JSON report;
//   * explicit Auditor instances in tests (tests/audit_test.cc).

#ifndef SRC_AUDIT_AUDIT_H_
#define SRC_AUDIT_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/nvm/nvm.h"

namespace audit {

enum class Severity { kError = 0, kWarn = 1, kPerf = 2 };
const char* SeverityName(Severity s);

enum class FindingKind {
  kUnflushedAtDurability,  // error
  kOrderingViolation,      // error
  kWindowLeak,             // error
  kWindowOverWritable,     // warn
  kRedundantClwb,          // perf
  kRedundantSfence,        // perf
  kDuplicateEpochClwb,     // perf
};
const char* KindName(FindingKind k);
Severity KindSeverity(FindingKind k);

// One aggregated finding: everything observed for (kind, call site).
struct Finding {
  FindingKind kind;
  std::string site;    // "file.cc:123" or a scope tag; "(untagged)" if none
  uint64_t count = 0;  // occurrences
  std::string detail;  // first occurrence's specifics (offsets etc.)

  Severity severity() const { return KindSeverity(kind); }
};

struct Report {
  std::vector<Finding> findings;  // sorted: severity, kind, site
  uint64_t errors = 0;            // total error-severity occurrences
  uint64_t warnings = 0;
  uint64_t perf_lints = 0;
  // Traffic totals (context for the perf lints).
  uint64_t stores = 0;
  uint64_t clwb_calls = 0;
  uint64_t clwb_lines = 0;
  uint64_t redundant_clwb_lines = 0;
  uint64_t sfences = 0;
  uint64_t redundant_sfences = 0;
  uint64_t duplicate_epoch_clwb_lines = 0;

  std::string ToText() const;
  std::string ToJson() const;  // deterministic: sorted, no timestamps
};

// Static identity of an annotation/scope site. The macros below create one
// static instance per call site, so pointer identity == site identity.
struct SiteTag {
  const char* name;  // optional human label; may be nullptr
  const char* file;
  int line;
  std::string ToString() const;
};

class Auditor final : public nvm::PersistObserver {
 public:
  Auditor();
  ~Auditor() override;
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // Installs this auditor as `dev`'s persistence observer and makes it the
  // process-current auditor that annotations and MPK hooks report to
  // (previous current is restored by Detach). One auditor can watch several
  // devices; shadow state is kept per device.
  void Attach(nvm::NvmDevice* dev);
  void Detach();

  Report Snapshot() const;
  uint64_t ErrorCount() const;
  void ResetFindings();

  // ---- nvm::PersistObserver ----
  void OnStore(const nvm::NvmDevice* dev, uint64_t off, size_t len, bool nontemporal) override;
  void OnClwb(const nvm::NvmDevice* dev, uint64_t off, size_t len) override;
  void OnSfence(const nvm::NvmDevice* dev) override;
  void OnPersistEpoch(const nvm::NvmDevice* dev) override;
  void OnDeviceGone(const nvm::NvmDevice* dev) override;

  // ---- annotation entry points (used via the macros below) ----
  void CheckDurable(const nvm::NvmDevice* dev, uint64_t off, size_t len, const SiteTag* site);
  void AddOrderDep(const nvm::NvmDevice* dev, uint64_t commit_off, size_t commit_len,
                   uint64_t payload_off, size_t payload_len, const SiteTag* site);
  // Drops every pending order dependency registered by the calling thread.
  // For the tenant-death harness: an operation killed mid-flight never
  // returned, so it promised no durability ordering — its abandoned
  // annotations must not fire when a survivor later persists the shared
  // commit lines (or a stray burst re-dirties the dead payload).
  void AbandonThreadDeps();

  // ---- protection lints (fed by src/mpk and ApiGuard) ----
  void RecordWindowClose(const SiteTag* scope, bool writable, uint64_t accesses,
                         uint64_t writes);
  void RecordWindowLeak(const char* api, int open_windows, uint32_t entry_pkru,
                        uint32_t exit_pkru);

 private:
  // Per-cacheline shadow state. kDirty: stored, not written back. kWritten-
  // Back: Clwb'd or NT-stored, persistent at the next Sfence.
  enum class LineState : uint8_t { kDirty, kWrittenBack };

  struct OrderDep {
    uint64_t commit_first, commit_last;    // line numbers, inclusive
    uint64_t payload_first, payload_last;  // line numbers, inclusive
    uint64_t tid;                          // registering thread (AbandonThreadDeps)
    const SiteTag* site;
  };

  struct Shadow {
    std::unordered_map<uint64_t, LineState> lines;
    uint64_t wb_pending = 0;  // lines awaiting the next fence
    std::vector<OrderDep> deps;
    // Lines Clwb'd since the last fence, for the duplicate-epoch-flush lint.
    std::unordered_map<uint64_t, uint32_t> epoch_clwb;
  };

  struct FlushSiteCounts {
    uint64_t clwb_calls = 0;
    uint64_t clwb_redundant_calls = 0;  // every covered line was clean
    uint64_t clwb_redundant_lines = 0;
    uint64_t sfence_calls = 0;
    uint64_t sfence_redundant = 0;
    uint64_t clwb_duplicate_lines = 0;  // line re-flushed within one epoch
  };

  Shadow& ShadowFor(const nvm::NvmDevice* dev) REQUIRES(mu_);
  void AddFinding(FindingKind kind, const std::string& site, const std::string& detail,
                  uint64_t count = 1) REQUIRES(mu_);
  void ResolveDepsAtFence(Shadow& sh) REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::unordered_map<const nvm::NvmDevice*, Shadow> shadows_ GUARDED_BY(mu_);
  std::map<std::pair<FindingKind, std::string>, Finding> findings_ GUARDED_BY(mu_);
  // nullptr = untagged
  std::map<const SiteTag*, FlushSiteCounts> flush_sites_ GUARDED_BY(mu_);
  uint64_t stores_ GUARDED_BY(mu_) = 0;
  uint64_t clwb_calls_ GUARDED_BY(mu_) = 0;
  uint64_t clwb_lines_ GUARDED_BY(mu_) = 0;
  uint64_t redundant_clwb_lines_ GUARDED_BY(mu_) = 0;
  uint64_t sfences_ GUARDED_BY(mu_) = 0;
  uint64_t redundant_sfences_ GUARDED_BY(mu_) = 0;
  uint64_t duplicate_epoch_clwb_lines_ GUARDED_BY(mu_) = 0;
  uint64_t errors_ GUARDED_BY(mu_) = 0;
  uint64_t warnings_ GUARDED_BY(mu_) = 0;
  uint64_t perf_lints_ GUARDED_BY(mu_) = 0;

  std::vector<std::pair<nvm::NvmDevice*, nvm::PersistObserver*>> attached_ GUARDED_BY(mu_);
  // Attach/Detach run on the owning thread before/after the observed phase;
  // the current-auditor handoff is not part of the mu_ domain.
  Auditor* prev_current_ = nullptr;
  bool is_current_ = false;
};

// The auditor annotations and MPK hooks report to; nullptr when auditing is
// off (every hook below is then a no-op).
Auditor* Current();

// ---- scope attribution ------------------------------------------------

// Pushes a call-site tag for the current thread; flush lints and window
// lints occurring under it are attributed to the innermost tag.
class ScopeGuard {
 public:
  explicit ScopeGuard(const SiteTag* tag);
  ~ScopeGuard();
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
};
const SiteTag* CurrentScope();

// ---- MPK integration (called from src/mpk; cheap when Current()==null) --

void NoteWindowOpen(int key, bool writable);
void NoteWindowClose(int key, bool writable);
void NoteAccess(uint64_t off, size_t len, bool is_write);
void NoteWrPkru(uint32_t pkru);
// Open-window depth and last PKRU of the calling thread (for ApiGuard).
int ThreadWindowDepth();
uint32_t ThreadPkru();

// RAII guard for an FSLib API boundary: on destruction, reports a window
// leak if the thread still holds AccessWindows it did not hold at entry or
// its PKRU changed across the call (guideline G1).
class ApiGuard {
 public:
  explicit ApiGuard(const char* api);
  ~ApiGuard();
  ApiGuard(const ApiGuard&) = delete;
  ApiGuard& operator=(const ApiGuard&) = delete;

 private:
  const char* api_;
  int entry_depth_;
  uint32_t entry_pkru_;
};

// ---- annotations -------------------------------------------------------

void DurabilityPoint(const nvm::NvmDevice* dev, uint64_t off, size_t len, const SiteTag* site);
void OrderAfter(const nvm::NvmDevice* dev, uint64_t commit_off, size_t commit_len,
                uint64_t payload_off, size_t payload_len, const SiteTag* site);
// Voids the calling thread's pending OrderAfter annotations on the current
// auditor (no-op when none is attached). Called by the kill harness after a
// ProcessKilledError unwinds: the dead operation's ordering contract died
// with it.
void AbandonThreadOrderDeps();

// ---- ZOFS_AUDIT=1 integration ------------------------------------------

bool EnvEnabled();
// Registers the device-init hook that attaches the process-wide env auditor
// to every new device when ZOFS_AUDIT=1; also arranges an atexit report +
// nonzero exit on errors. Ran once from a static initializer in audit.cc.
void InstallEnvHook();
// The env auditor (created on first audited device), or nullptr.
Auditor* EnvAuditor();

#define AUDIT_SITE_TAG(tag_name)                                        \
  static const ::audit::SiteTag tag_name { nullptr, __FILE__, __LINE__ }

// Attributes flush/window lints in the enclosing scope to this call site.
#define AUDIT_SCOPE(label)                                                   \
  static const ::audit::SiteTag _audit_scope_tag{label, __FILE__, __LINE__}; \
  ::audit::ScopeGuard _audit_scope_guard {&_audit_scope_tag}

// Declares that [off, off+len) must be persistent here (a durability point).
#define AUDIT_DURABILITY_POINT(dev, off, len)                       \
  do {                                                              \
    if (::audit::Current() != nullptr) {                            \
      AUDIT_SITE_TAG(_audit_dp_tag);                                \
      ::audit::DurabilityPoint((dev), (off), (len), &_audit_dp_tag); \
    }                                                               \
  } while (0)

// Declares that the commit range must not become persistent before the
// payload range does (checked at the fence that persists the commit).
#define AUDIT_ORDER_AFTER(dev, commit_off, commit_len, payload_off, payload_len) \
  do {                                                                           \
    if (::audit::Current() != nullptr) {                                         \
      AUDIT_SITE_TAG(_audit_oa_tag);                                             \
      ::audit::OrderAfter((dev), (commit_off), (commit_len), (payload_off),      \
                          (payload_len), &_audit_oa_tag);                        \
    }                                                                            \
  } while (0)

}  // namespace audit

#endif  // SRC_AUDIT_AUDIT_H_
