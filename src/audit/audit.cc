#include "src/audit/audit.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace audit {

namespace {

std::atomic<Auditor*> g_current{nullptr};

// Thread-local protection-window bookkeeping. Tracking is always on (a few
// branches per event) so that an auditor attached mid-run still sees a
// consistent depth/PKRU picture; findings are only recorded when an auditor
// is current.
struct WindowInfo {
  int key;
  bool writable;
  uint64_t accesses;
  uint64_t writes;
  const SiteTag* scope;
};
thread_local std::vector<const SiteTag*> t_scopes;
thread_local std::vector<WindowInfo> t_windows;
thread_local uint32_t t_pkru = 0;

// Stable per-thread id for tagging order dependencies, so a kill harness can
// void exactly the dying thread's annotations.
std::atomic<uint64_t> g_next_dep_tid{1};
thread_local uint64_t t_dep_tid = 0;
uint64_t DepTid() {
  if (t_dep_tid == 0) {
    t_dep_tid = g_next_dep_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_dep_tid;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatRange(uint64_t off, size_t len) {
  char buf[64];
  snprintf(buf, sizeof(buf), "[0x%llx, +%zu)", static_cast<unsigned long long>(off), len);
  return buf;
}

constexpr const char* kUntagged = "(untagged)";

std::string SiteString(const SiteTag* site) { return site != nullptr ? site->ToString() : kUntagged; }

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarn:
      return "warn";
    case Severity::kPerf:
      return "perf";
  }
  return "?";
}

const char* KindName(FindingKind k) {
  switch (k) {
    case FindingKind::kUnflushedAtDurability:
      return "unflushed_at_durability_point";
    case FindingKind::kOrderingViolation:
      return "ordering_violation";
    case FindingKind::kWindowLeak:
      return "window_leak";
    case FindingKind::kWindowOverWritable:
      return "window_over_writable";
    case FindingKind::kRedundantClwb:
      return "redundant_clwb";
    case FindingKind::kRedundantSfence:
      return "redundant_sfence";
    case FindingKind::kDuplicateEpochClwb:
      return "duplicate_epoch_clwb";
  }
  return "?";
}

Severity KindSeverity(FindingKind k) {
  switch (k) {
    case FindingKind::kUnflushedAtDurability:
    case FindingKind::kOrderingViolation:
    case FindingKind::kWindowLeak:
      return Severity::kError;
    case FindingKind::kWindowOverWritable:
      return Severity::kWarn;
    case FindingKind::kRedundantClwb:
    case FindingKind::kRedundantSfence:
    case FindingKind::kDuplicateEpochClwb:
      return Severity::kPerf;
  }
  return Severity::kError;
}

std::string SiteTag::ToString() const {
  const char* slash = strrchr(file, '/');
  const char* base = slash != nullptr ? slash + 1 : file;
  char buf[256];
  if (name != nullptr) {
    snprintf(buf, sizeof(buf), "%s (%s:%d)", name, base, line);
  } else {
    snprintf(buf, sizeof(buf), "%s:%d", base, line);
  }
  return buf;
}

// ---- Report ------------------------------------------------------------

std::string Report::ToText() const {
  std::ostringstream os;
  os << "pmem audit: " << errors << " error(s), " << warnings << " warning(s), " << perf_lints
     << " perf lint(s)\n";
  os << "  traffic: " << stores << " stores, " << clwb_calls << " clwb calls (" << clwb_lines
     << " lines, " << redundant_clwb_lines << " redundant, " << duplicate_epoch_clwb_lines
     << " duplicate-in-epoch), " << sfences << " sfences (" << redundant_sfences
     << " redundant)\n";
  for (const Finding& f : findings) {
    os << "  [" << SeverityName(f.severity()) << "] " << KindName(f.kind) << " x" << f.count
       << " at " << f.site;
    if (!f.detail.empty()) {
      os << ": " << f.detail;
    }
    os << "\n";
  }
  return os.str();
}

std::string Report::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"errors\": " << errors << ",\n";
  os << "  \"warnings\": " << warnings << ",\n";
  os << "  \"perf_lints\": " << perf_lints << ",\n";
  os << "  \"stores\": " << stores << ",\n";
  os << "  \"clwb_calls\": " << clwb_calls << ",\n";
  os << "  \"clwb_lines\": " << clwb_lines << ",\n";
  os << "  \"redundant_clwb_lines\": " << redundant_clwb_lines << ",\n";
  os << "  \"sfences\": " << sfences << ",\n";
  os << "  \"redundant_sfences\": " << redundant_sfences << ",\n";
  os << "  \"duplicate_epoch_clwb_lines\": " << duplicate_epoch_clwb_lines << ",\n";
  os << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); i++) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"severity\": \"" << SeverityName(f.severity()) << "\", \"kind\": \""
       << KindName(f.kind) << "\", \"site\": \"" << JsonEscape(f.site) << "\", \"count\": "
       << f.count << ", \"detail\": \"" << JsonEscape(f.detail) << "\"}";
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

// ---- Auditor -----------------------------------------------------------

Auditor::Auditor() = default;

Auditor::~Auditor() { Detach(); }

void Auditor::Attach(nvm::NvmDevice* dev) {
  {
    common::MutexLock lk(&mu_);
    attached_.emplace_back(dev, dev->persist_observer());
  }
  dev->SetPersistObserver(this);
  if (!is_current_) {
    prev_current_ = g_current.exchange(this);
    is_current_ = true;
  }
}

void Auditor::Detach() {
  common::MutexLock lk(&mu_);
  for (auto it = attached_.rbegin(); it != attached_.rend(); ++it) {
    it->first->SetPersistObserver(it->second);
  }
  attached_.clear();
  if (is_current_) {
    g_current.store(prev_current_);
    prev_current_ = nullptr;
    is_current_ = false;
  }
}

Auditor::Shadow& Auditor::ShadowFor(const nvm::NvmDevice* dev) { return shadows_[dev]; }

void Auditor::AddFinding(FindingKind kind, const std::string& site, const std::string& detail,
                         uint64_t count) {
  auto [it, inserted] = findings_.try_emplace({kind, site});
  Finding& f = it->second;
  if (inserted) {
    f.kind = kind;
    f.site = site;
    f.detail = detail;  // keep the first occurrence's specifics
  }
  f.count += count;
  switch (KindSeverity(kind)) {
    case Severity::kError:
      errors_ += count;
      break;
    case Severity::kWarn:
      warnings_ += count;
      break;
    case Severity::kPerf:
      perf_lints_ += count;
      break;
  }
}

void Auditor::OnStore(const nvm::NvmDevice* dev, uint64_t off, size_t len, bool nontemporal) {
  common::MutexLock lk(&mu_);
  stores_++;
  Shadow& sh = ShadowFor(dev);
  uint64_t first = off / nvm::kCachelineSize;
  uint64_t last = (off + len - 1) / nvm::kCachelineSize;
  for (uint64_t line = first; line <= last; line++) {
    auto [it, inserted] =
        sh.lines.try_emplace(line, nontemporal ? LineState::kWrittenBack : LineState::kDirty);
    if (inserted) {
      if (nontemporal) {
        sh.wb_pending++;
      }
    } else if (nontemporal && it->second == LineState::kDirty) {
      it->second = LineState::kWrittenBack;
      sh.wb_pending++;
    } else if (!nontemporal && it->second == LineState::kWrittenBack) {
      // Re-dirtied before the fence: the earlier write-back no longer makes
      // this line persistent.
      it->second = LineState::kDirty;
      sh.wb_pending--;
    }
  }
}

void Auditor::OnClwb(const nvm::NvmDevice* dev, uint64_t off, size_t len) {
  const SiteTag* scope = CurrentScope();
  common::MutexLock lk(&mu_);
  clwb_calls_++;
  Shadow& sh = ShadowFor(dev);
  uint64_t first = off / nvm::kCachelineSize;
  uint64_t last = (off + len - 1) / nvm::kCachelineSize;
  uint64_t covered = last - first + 1;
  uint64_t wrote_back = 0;
  uint64_t duplicates = 0;
  for (uint64_t line = first; line <= last; line++) {
    auto it = sh.lines.find(line);
    if (it != sh.lines.end() && it->second == LineState::kDirty) {
      it->second = LineState::kWrittenBack;
      sh.wb_pending++;
      wrote_back++;
    }
    if (sh.epoch_clwb[line]++ > 0) {
      duplicates++;
    }
  }
  clwb_lines_ += covered;
  redundant_clwb_lines_ += covered - wrote_back;
  duplicate_epoch_clwb_lines_ += duplicates;
  FlushSiteCounts& fc = flush_sites_[scope];
  fc.clwb_calls++;
  fc.clwb_redundant_lines += covered - wrote_back;
  fc.clwb_duplicate_lines += duplicates;
  if (wrote_back == 0) {
    // Every covered line was already clean or written back: pure waste.
    fc.clwb_redundant_calls++;
    perf_lints_++;
  }
  perf_lints_ += duplicates;
}

void Auditor::ResolveDepsAtFence(Shadow& sh) {
  for (auto it = sh.deps.begin(); it != sh.deps.end();) {
    const OrderDep& d = *it;
    bool commit_persists = true;
    for (uint64_t line = d.commit_first; line <= d.commit_last && commit_persists; line++) {
      auto lit = sh.lines.find(line);
      if (lit != sh.lines.end() && lit->second == LineState::kDirty) {
        commit_persists = false;  // commit still volatile; check at a later fence
      }
    }
    if (!commit_persists) {
      ++it;
      continue;
    }
    uint64_t volatile_payload = UINT64_MAX;
    for (uint64_t line = d.payload_first; line <= d.payload_last; line++) {
      auto lit = sh.lines.find(line);
      if (lit != sh.lines.end() && lit->second == LineState::kDirty) {
        volatile_payload = line;
        break;
      }
    }
    if (volatile_payload != UINT64_MAX) {
      char buf[160];
      snprintf(buf, sizeof(buf),
               "commit lines [%llu,%llu] persist at this fence while payload line %llu is still "
               "volatile",
               static_cast<unsigned long long>(d.commit_first),
               static_cast<unsigned long long>(d.commit_last),
               static_cast<unsigned long long>(volatile_payload));
      AddFinding(FindingKind::kOrderingViolation, SiteString(d.site), buf);
    }
    it = sh.deps.erase(it);
  }
}

void Auditor::OnSfence(const nvm::NvmDevice* dev) {
  const SiteTag* scope = CurrentScope();
  common::MutexLock lk(&mu_);
  sfences_++;
  Shadow& sh = ShadowFor(dev);
  FlushSiteCounts& fc = flush_sites_[scope];
  fc.sfence_calls++;
  if (sh.wb_pending == 0) {
    redundant_sfences_++;
    fc.sfence_redundant++;
    perf_lints_++;
  }
  ResolveDepsAtFence(sh);
  for (auto it = sh.lines.begin(); it != sh.lines.end();) {
    if (it->second == LineState::kWrittenBack) {
      it = sh.lines.erase(it);
    } else {
      ++it;
    }
  }
  sh.wb_pending = 0;
  sh.epoch_clwb.clear();  // a fence starts a fresh duplicate-flush epoch
}

void Auditor::OnPersistEpoch(const nvm::NvmDevice* dev) {
  common::MutexLock lk(&mu_);
  Shadow& sh = ShadowFor(dev);
  sh.lines.clear();
  sh.wb_pending = 0;
  sh.deps.clear();
  sh.epoch_clwb.clear();
}

void Auditor::OnDeviceGone(const nvm::NvmDevice* dev) {
  common::MutexLock lk(&mu_);
  shadows_.erase(dev);
  attached_.erase(std::remove_if(attached_.begin(), attached_.end(),
                                 [dev](const auto& p) { return p.first == dev; }),
                  attached_.end());
}

void Auditor::CheckDurable(const nvm::NvmDevice* dev, uint64_t off, size_t len,
                           const SiteTag* site) {
  if (len == 0) {
    return;
  }
  common::MutexLock lk(&mu_);
  Shadow& sh = ShadowFor(dev);
  uint64_t first = off / nvm::kCachelineSize;
  uint64_t last = (off + len - 1) / nvm::kCachelineSize;
  for (uint64_t line = first; line <= last; line++) {
    auto it = sh.lines.find(line);
    if (it == sh.lines.end()) {
      continue;
    }
    char buf[160];
    snprintf(buf, sizeof(buf), "range %s declared durable but line %llu is %s",
             FormatRange(off, len).c_str(), static_cast<unsigned long long>(line),
             it->second == LineState::kDirty ? "dirty (never written back)"
                                             : "written back but not fenced");
    AddFinding(FindingKind::kUnflushedAtDurability, SiteString(site), buf);
    return;  // one finding per durability-point call
  }
}

void Auditor::AddOrderDep(const nvm::NvmDevice* dev, uint64_t commit_off, size_t commit_len,
                          uint64_t payload_off, size_t payload_len, const SiteTag* site) {
  if (commit_len == 0 || payload_len == 0) {
    return;
  }
  common::MutexLock lk(&mu_);
  Shadow& sh = ShadowFor(dev);
  OrderDep d;
  d.commit_first = commit_off / nvm::kCachelineSize;
  d.commit_last = (commit_off + commit_len - 1) / nvm::kCachelineSize;
  d.payload_first = payload_off / nvm::kCachelineSize;
  d.payload_last = (payload_off + payload_len - 1) / nvm::kCachelineSize;
  d.tid = DepTid();
  d.site = site;
  sh.deps.push_back(d);
}

void Auditor::AbandonThreadDeps() {
  const uint64_t tid = DepTid();
  common::MutexLock lk(&mu_);
  for (auto& [dev, sh] : shadows_) {
    (void)dev;
    sh.deps.erase(std::remove_if(sh.deps.begin(), sh.deps.end(),
                                 [&](const OrderDep& d) { return d.tid == tid; }),
                  sh.deps.end());
  }
}

void Auditor::RecordWindowClose(const SiteTag* scope, bool writable, uint64_t accesses,
                                uint64_t writes) {
  if (!writable || writes != 0) {
    return;
  }
  char buf[128];
  snprintf(buf, sizeof(buf),
           "writable window performed no writes (%llu checked accesses) — read-only suffices",
           static_cast<unsigned long long>(accesses));
  common::MutexLock lk(&mu_);
  AddFinding(FindingKind::kWindowOverWritable, SiteString(scope), buf);
}

void Auditor::RecordWindowLeak(const char* api, int open_windows, uint32_t entry_pkru,
                               uint32_t exit_pkru) {
  char buf[128];
  snprintf(buf, sizeof(buf), "returned with %d window(s) open, PKRU 0x%x at entry vs 0x%x at exit",
           open_windows, entry_pkru, exit_pkru);
  common::MutexLock lk(&mu_);
  AddFinding(FindingKind::kWindowLeak, api != nullptr ? api : kUntagged, buf);
}

Report Auditor::Snapshot() const {
  common::MutexLock lk(&mu_);
  Report r;
  r.errors = errors_;
  r.warnings = warnings_;
  r.perf_lints = perf_lints_;
  r.stores = stores_;
  r.clwb_calls = clwb_calls_;
  r.clwb_lines = clwb_lines_;
  r.redundant_clwb_lines = redundant_clwb_lines_;
  r.sfences = sfences_;
  r.redundant_sfences = redundant_sfences_;
  r.duplicate_epoch_clwb_lines = duplicate_epoch_clwb_lines_;
  for (const auto& [key, f] : findings_) {
    r.findings.push_back(f);
  }
  // Materialize the perf lints from the per-site flush counters so each
  // finding can say "N of M calls" for its site.
  for (const auto& [site, fc] : flush_sites_) {
    std::string site_str = SiteString(site);
    if (fc.clwb_redundant_calls > 0) {
      char buf[128];
      snprintf(buf, sizeof(buf), "%llu of %llu clwb calls wrote back nothing (%llu clean lines)",
               static_cast<unsigned long long>(fc.clwb_redundant_calls),
               static_cast<unsigned long long>(fc.clwb_calls),
               static_cast<unsigned long long>(fc.clwb_redundant_lines));
      Finding f;
      f.kind = FindingKind::kRedundantClwb;
      f.site = site_str;
      f.count = fc.clwb_redundant_calls;
      f.detail = buf;
      r.findings.push_back(f);
    }
    if (fc.sfence_redundant > 0) {
      char buf[128];
      snprintf(buf, sizeof(buf), "%llu of %llu sfences had no write-backs pending",
               static_cast<unsigned long long>(fc.sfence_redundant),
               static_cast<unsigned long long>(fc.sfence_calls));
      Finding f;
      f.kind = FindingKind::kRedundantSfence;
      f.site = site_str;
      f.count = fc.sfence_redundant;
      f.detail = buf;
      r.findings.push_back(f);
    }
    if (fc.clwb_duplicate_lines > 0) {
      char buf[160];
      snprintf(buf, sizeof(buf),
               "%llu cacheline write-backs repeated within a single fence epoch (coalescible "
               "via a FlushSet epoch drain)",
               static_cast<unsigned long long>(fc.clwb_duplicate_lines));
      Finding f;
      f.kind = FindingKind::kDuplicateEpochClwb;
      f.site = site_str;
      f.count = fc.clwb_duplicate_lines;
      f.detail = buf;
      r.findings.push_back(f);
    }
  }
  std::sort(r.findings.begin(), r.findings.end(), [](const Finding& a, const Finding& b) {
    if (a.severity() != b.severity()) {
      return static_cast<int>(a.severity()) < static_cast<int>(b.severity());
    }
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return a.site < b.site;
  });
  return r;
}

uint64_t Auditor::ErrorCount() const {
  common::MutexLock lk(&mu_);
  return errors_;
}

void Auditor::ResetFindings() {
  common::MutexLock lk(&mu_);
  findings_.clear();
  flush_sites_.clear();
  stores_ = clwb_calls_ = clwb_lines_ = redundant_clwb_lines_ = 0;
  sfences_ = redundant_sfences_ = duplicate_epoch_clwb_lines_ = 0;
  errors_ = warnings_ = perf_lints_ = 0;
}

// ---- free functions ----------------------------------------------------

Auditor* Current() { return g_current.load(std::memory_order_acquire); }

ScopeGuard::ScopeGuard(const SiteTag* tag) { t_scopes.push_back(tag); }

ScopeGuard::~ScopeGuard() { t_scopes.pop_back(); }

const SiteTag* CurrentScope() { return t_scopes.empty() ? nullptr : t_scopes.back(); }

void NoteWindowOpen(int key, bool writable) {
  t_windows.push_back({key, writable, 0, 0, CurrentScope()});
}

void NoteWindowClose(int key, bool writable) {
  (void)key;
  (void)writable;
  if (t_windows.empty()) {
    return;
  }
  WindowInfo w = t_windows.back();
  t_windows.pop_back();
  Auditor* a = Current();
  if (a != nullptr) {
    a->RecordWindowClose(w.scope, w.writable, w.accesses, w.writes);
  }
}

void NoteAccess(uint64_t off, size_t len, bool is_write) {
  (void)off;
  (void)len;
  if (t_windows.empty()) {
    return;
  }
  WindowInfo& w = t_windows.back();
  w.accesses++;
  if (is_write) {
    w.writes++;
  }
}

void NoteWrPkru(uint32_t pkru) { t_pkru = pkru; }

int ThreadWindowDepth() { return static_cast<int>(t_windows.size()); }

uint32_t ThreadPkru() { return t_pkru; }

ApiGuard::ApiGuard(const char* api)
    : api_(api), entry_depth_(ThreadWindowDepth()), entry_pkru_(ThreadPkru()) {}

ApiGuard::~ApiGuard() {
  Auditor* a = Current();
  if (a == nullptr) {
    return;
  }
  int depth = ThreadWindowDepth();
  uint32_t pkru = ThreadPkru();
  if (depth != entry_depth_ || pkru != entry_pkru_) {
    a->RecordWindowLeak(api_, depth, entry_pkru_, pkru);
  }
}

void DurabilityPoint(const nvm::NvmDevice* dev, uint64_t off, size_t len, const SiteTag* site) {
  Auditor* a = Current();
  if (a != nullptr) {
    a->CheckDurable(dev, off, len, site);
  }
}

void OrderAfter(const nvm::NvmDevice* dev, uint64_t commit_off, size_t commit_len,
                uint64_t payload_off, size_t payload_len, const SiteTag* site) {
  Auditor* a = Current();
  if (a != nullptr) {
    a->AddOrderDep(dev, commit_off, commit_len, payload_off, payload_len, site);
  }
}

void AbandonThreadOrderDeps() {
  Auditor* a = Current();
  if (a != nullptr) {
    a->AbandonThreadDeps();
  }
}

// ---- ZOFS_AUDIT=1 ------------------------------------------------------

namespace {

Auditor* g_env_auditor = nullptr;  // leaked: must outlive every device

void EnvAtExit() {
  if (g_env_auditor == nullptr) {
    return;
  }
  Report r = g_env_auditor->Snapshot();
  if (r.findings.empty()) {
    fprintf(stderr, "[audit] clean: %llu stores, %llu clwb calls, %llu sfences\n",
            static_cast<unsigned long long>(r.stores),
            static_cast<unsigned long long>(r.clwb_calls),
            static_cast<unsigned long long>(r.sfences));
  } else {
    fprintf(stderr, "[audit] %s", r.ToText().c_str());
  }
  if (r.errors > 0) {
    fflush(nullptr);
    std::_Exit(1);
  }
}

void EnvDeviceInit(nvm::NvmDevice* dev) {
  if (g_env_auditor == nullptr) {
    g_env_auditor = new Auditor();
    g_current.store(g_env_auditor);
    atexit(EnvAtExit);
  }
  dev->SetPersistObserver(g_env_auditor);
}

struct EnvHookInstaller {
  EnvHookInstaller() { InstallEnvHook(); }
};
EnvHookInstaller g_env_hook_installer;

}  // namespace

bool EnvEnabled() {
  const char* v = getenv("ZOFS_AUDIT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void InstallEnvHook() {
  if (EnvEnabled()) {
    nvm::SetDeviceInitHook(&EnvDeviceInit);
  }
}

Auditor* EnvAuditor() { return g_env_auditor; }

}  // namespace audit
