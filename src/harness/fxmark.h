// FxMark-like microbenchmark kernels (paper §6.1, Figure 7).
//
// Nine workloads matching the panels of Figure 7:
//   data reads   DRBL (private file), DRBM (shared file, private blocks),
//                DRBH (shared file, shared block)
//   data writes  DWAL (append, private file), DWOL (overwrite, private
//                file), DWOM (overwrite, shared file)
//   metadata     MWCL (create, private dirs), MWUL (unlink, private dirs),
//                MWRL (rename, private dirs)
// All data operations use 4 KB units, as in the paper.

#ifndef SRC_HARNESS_FXMARK_H_
#define SRC_HARNESS_FXMARK_H_

#include <string>

#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace harness {

enum class FxWorkload { kDRBL, kDRBM, kDRBH, kDWAL, kDWOL, kDWOM, kMWCL, kMWUL, kMWRL };

inline constexpr FxWorkload kAllFxWorkloads[] = {
    FxWorkload::kDRBL, FxWorkload::kDRBM, FxWorkload::kDRBH,
    FxWorkload::kDWAL, FxWorkload::kDWOL, FxWorkload::kDWOM,
    FxWorkload::kMWCL, FxWorkload::kMWUL, FxWorkload::kMWRL,
};

const char* FxName(FxWorkload w);
bool ParseFxWorkload(const std::string& s, FxWorkload* out);

struct FxOptions {
  uint64_t ops_per_thread = 20000;
  uint64_t file_blocks = 1024;      // size of each pre-made file (4 KB blocks)
  uint64_t append_cap_blocks = 8192;  // DWAL wraps the file at this size
  uint64_t seed = 42;
};

// Runs one workload at one thread count on a fresh view of `lab`. The
// caller should use a freshly constructed lab per datapoint (the workloads
// mutate the namespace).
WorkloadResult RunFxmark(FsLab& lab, FxWorkload w, int threads, const FxOptions& opts = {});

}  // namespace harness

#endif  // SRC_HARNESS_FXMARK_H_
