#include "src/harness/fxmark.h"

#include <cassert>
#include <vector>

#include "src/common/rand.h"

namespace harness {

namespace {
constexpr size_t kBlock = 4096;
const vfs::Cred kCred{0, 0};

// Writes `blocks` 4 KB blocks to `path`, creating it.
void MakeFile(vfs::FileSystem* fs, const std::string& path, uint64_t blocks) {
  auto fd = fs->Open(kCred, path, vfs::kCreate | vfs::kWrite, 0644);
  assert(fd.ok());
  std::vector<uint8_t> buf(kBlock * 16, 0xab);
  uint64_t written = 0;
  while (written < blocks) {
    uint64_t n = std::min<uint64_t>(16, blocks - written);
    auto w = fs->Pwrite(*fd, buf.data(), n * kBlock, written * kBlock);
    assert(w.ok());
    written += n;
  }
  fs->Close(*fd);
}

}  // namespace

const char* FxName(FxWorkload w) {
  switch (w) {
    case FxWorkload::kDRBL:
      return "DRBL";
    case FxWorkload::kDRBM:
      return "DRBM";
    case FxWorkload::kDRBH:
      return "DRBH";
    case FxWorkload::kDWAL:
      return "DWAL";
    case FxWorkload::kDWOL:
      return "DWOL";
    case FxWorkload::kDWOM:
      return "DWOM";
    case FxWorkload::kMWCL:
      return "MWCL";
    case FxWorkload::kMWUL:
      return "MWUL";
    case FxWorkload::kMWRL:
      return "MWRL";
  }
  return "?";
}

bool ParseFxWorkload(const std::string& s, FxWorkload* out) {
  for (FxWorkload w : kAllFxWorkloads) {
    if (s == FxName(w)) {
      *out = w;
      return true;
    }
  }
  return false;
}

WorkloadResult RunFxmark(FsLab& lab, FxWorkload w, int threads, const FxOptions& opts) {
  vfs::FileSystem* fs = lab.View(0);

  switch (w) {
    // ---------------- data reads ----------------
    case FxWorkload::kDRBL: {  // private file, random blocks
      for (int t = 0; t < threads; t++) {
        MakeFile(fs, "/drbl_" + std::to_string(t), opts.file_blocks);
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        auto fd = fs->Open(kCred, "/drbl_" + std::to_string(t), vfs::kRead, 0);
        assert(fd.ok());
        common::Rng rng(opts.seed + t);
        std::vector<uint8_t> buf(kBlock);
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          uint64_t blk = rng.Below(opts.file_blocks);
          auto r = fs->Pread(*fd, buf.data(), kBlock, blk * kBlock);
          assert(r.ok());
        }
        fs->Close(*fd);
        return opts.ops_per_thread;
      });
    }
    case FxWorkload::kDRBM:    // shared file, per-thread block ranges
    case FxWorkload::kDRBH: {  // shared file, one hot block
      MakeFile(fs, "/shared_read", opts.file_blocks * threads);
      return RunThreads(threads, [&](int t) -> uint64_t {
        auto fd = fs->Open(kCred, "/shared_read", vfs::kRead, 0);
        assert(fd.ok());
        common::Rng rng(opts.seed + t);
        std::vector<uint8_t> buf(kBlock);
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          uint64_t blk = w == FxWorkload::kDRBH
                             ? 0
                             : t * opts.file_blocks + rng.Below(opts.file_blocks);
          auto r = fs->Pread(*fd, buf.data(), kBlock, blk * kBlock);
          assert(r.ok());
        }
        fs->Close(*fd);
        return opts.ops_per_thread;
      });
    }

    // ---------------- data writes ----------------
    case FxWorkload::kDWAL: {  // append to a private file
      for (int t = 0; t < threads; t++) {
        auto fd = fs->Open(kCred, "/dwal_" + std::to_string(t), vfs::kCreate | vfs::kWrite, 0644);
        assert(fd.ok());
        fs->Close(*fd);
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        auto fd = fs->Open(kCred, "/dwal_" + std::to_string(t),
                           vfs::kWrite | vfs::kAppend, 0644);
        assert(fd.ok());
        std::vector<uint8_t> buf(kBlock, 0x5a);
        uint64_t appended = 0;
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto r = fs->Write(*fd, buf.data(), kBlock);
          assert(r.ok());
          if (++appended >= opts.append_cap_blocks) {
            // Wrap to bound NVM usage (not counted as a workload op).
            fs->Ftruncate(*fd, 0);
            fs->Lseek(*fd, 0, 0);
            appended = 0;
          }
        }
        fs->Close(*fd);
        return opts.ops_per_thread;
      });
    }
    case FxWorkload::kDWOL: {  // overwrite the first block of a private file
      for (int t = 0; t < threads; t++) {
        MakeFile(fs, "/dwol_" + std::to_string(t), 4);
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        auto fd = fs->Open(kCred, "/dwol_" + std::to_string(t), vfs::kWrite, 0644);
        assert(fd.ok());
        std::vector<uint8_t> buf(kBlock, 0x6b);
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto r = fs->Pwrite(*fd, buf.data(), kBlock, 0);
          assert(r.ok());
        }
        fs->Close(*fd);
        return opts.ops_per_thread;
      });
    }
    case FxWorkload::kDWOM: {  // overwrite distinct blocks of one shared file
      MakeFile(fs, "/shared_write", opts.file_blocks * threads);
      return RunThreads(threads, [&](int t) -> uint64_t {
        auto fd = fs->Open(kCred, "/shared_write", vfs::kWrite, 0644);
        assert(fd.ok());
        common::Rng rng(opts.seed + t);
        std::vector<uint8_t> buf(kBlock, 0x7c);
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          uint64_t blk = t * opts.file_blocks + rng.Below(opts.file_blocks);
          auto r = fs->Pwrite(*fd, buf.data(), kBlock, blk * kBlock);
          assert(r.ok());
        }
        fs->Close(*fd);
        return opts.ops_per_thread;
      });
    }

    // ---------------- metadata ----------------
    case FxWorkload::kMWCL: {  // create in private directories
      for (int t = 0; t < threads; t++) {
        auto s = fs->Mkdir(kCred, "/mwcl_" + std::to_string(t), 0755);
        assert(s.ok());
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        std::string dir = "/mwcl_" + std::to_string(t) + "/";
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto fd = fs->Open(kCred, dir + "f" + std::to_string(i),
                             vfs::kCreate | vfs::kWrite, 0644);
          assert(fd.ok());
          fs->Close(*fd);
        }
        return opts.ops_per_thread;
      });
    }
    case FxWorkload::kMWUL: {  // unlink in private directories
      for (int t = 0; t < threads; t++) {
        std::string dir = "/mwul_" + std::to_string(t);
        auto s = fs->Mkdir(kCred, dir, 0755);
        assert(s.ok());
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto fd = fs->Open(kCred, dir + "/f" + std::to_string(i),
                             vfs::kCreate | vfs::kWrite, 0644);
          assert(fd.ok());
          fs->Close(*fd);
        }
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        std::string dir = "/mwul_" + std::to_string(t) + "/";
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto s = fs->Unlink(kCred, dir + "f" + std::to_string(i));
          assert(s.ok());
        }
        return opts.ops_per_thread;
      });
    }
    case FxWorkload::kMWRL: {  // rename in private directories
      for (int t = 0; t < threads; t++) {
        std::string dir = "/mwrl_" + std::to_string(t);
        auto s = fs->Mkdir(kCred, dir, 0755);
        assert(s.ok());
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto fd = fs->Open(kCred, dir + "/f" + std::to_string(i),
                             vfs::kCreate | vfs::kWrite, 0644);
          assert(fd.ok());
          fs->Close(*fd);
        }
      }
      return RunThreads(threads, [&](int t) -> uint64_t {
        std::string dir = "/mwrl_" + std::to_string(t) + "/";
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto s = fs->Rename(kCred, dir + "f" + std::to_string(i),
                              dir + "g" + std::to_string(i));
          assert(s.ok());
        }
        return opts.ops_per_thread;
      });
    }
  }
  return {};
}

}  // namespace harness
