#include "src/harness/filebench.h"

#include <cassert>
#include <vector>

#include "src/common/rand.h"

namespace harness {

namespace {
const vfs::Cred kCred{0, 0};

// Directory layout: a tree with fanout `width`, as filebench builds. File i
// lives in leaf directory i/width; leaf directories are arranged by their
// base-`width` digits, so a small width produces deep paths (the varmail
// dir-width-20 configuration of §6.2) and width 1,000,000 puts every file in
// one flat directory.
std::string DirOf(uint64_t i, uint64_t width) {
  uint64_t leaf = i / width;
  std::string path;
  do {
    path = "/t" + std::to_string(leaf % width) + path;
    leaf /= width;
  } while (leaf > 0);
  return path;
}
std::string PathOf(uint64_t i, uint64_t width) {
  return DirOf(i, width) + "/f" + std::to_string(i);
}

// Creates every directory on the way to DirOf(i).
void EnsureDirs(vfs::FileSystem* fs, uint64_t i, uint64_t width) {
  uint64_t leaf = i / width;
  std::vector<uint64_t> digits;
  do {
    digits.push_back(leaf % width);
    leaf /= width;
  } while (leaf > 0);
  std::string path;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    path += "/t" + std::to_string(*it);
    fs->Mkdir(kCred, path, 0755);  // EEXIST is fine
  }
}

void WriteWhole(vfs::FileSystem* fs, vfs::Fd fd, const std::vector<uint8_t>& buf, uint64_t size) {
  uint64_t off = 0;
  while (off < size) {
    size_t n = std::min<uint64_t>(buf.size(), size - off);
    auto w = fs->Pwrite(fd, buf.data(), n, off);
    assert(w.ok());
    off += n;
  }
}

uint64_t ReadWhole(vfs::FileSystem* fs, vfs::Fd fd, std::vector<uint8_t>& buf) {
  uint64_t off = 0;
  for (;;) {
    auto r = fs->Pread(fd, buf.data(), buf.size(), off);
    if (!r.ok() || *r == 0) {
      break;
    }
    off += *r;
  }
  return off;
}

}  // namespace

const char* FbName(FbWorkload w) {
  switch (w) {
    case FbWorkload::kFileserver:
      return "fileserver";
    case FbWorkload::kWebserver:
      return "webserver";
    case FbWorkload::kWebproxy:
      return "webproxy";
    case FbWorkload::kVarmail:
      return "varmail";
  }
  return "?";
}

bool ParseFbWorkload(const std::string& s, FbWorkload* out) {
  for (FbWorkload w : {FbWorkload::kFileserver, FbWorkload::kWebserver, FbWorkload::kWebproxy,
                       FbWorkload::kVarmail}) {
    if (s == FbName(w)) {
      *out = w;
      return true;
    }
  }
  return false;
}

FbOptions ResolveFbOptions(FbWorkload w, FbOptions o) {
  // Table 6 values, multiplied by o.scale for file counts.
  auto scaled = [&](uint64_t v) { return std::max<uint64_t>(64, v * o.scale); };
  switch (w) {
    case FbWorkload::kFileserver:
      if (o.nfiles == 0) o.nfiles = scaled(10000);
      if (o.dir_width == 0) o.dir_width = 20;
      if (o.file_size == 0) o.file_size = 128 * 1024;
      break;
    case FbWorkload::kWebserver:
      if (o.nfiles == 0) o.nfiles = scaled(1000);
      if (o.dir_width == 0) o.dir_width = 20;
      if (o.file_size == 0) o.file_size = 16 * 1024;
      break;
    case FbWorkload::kWebproxy:
      if (o.nfiles == 0) o.nfiles = scaled(10000);
      if (o.dir_width == 0) o.dir_width = 1000000;
      if (o.file_size == 0) o.file_size = 16 * 1024;
      break;
    case FbWorkload::kVarmail:
      if (o.nfiles == 0) o.nfiles = scaled(1000);
      if (o.dir_width == 0) o.dir_width = 1000000;
      if (o.file_size == 0) o.file_size = 16 * 1024;
      break;
  }
  return o;
}

WorkloadResult RunFilebench(FsLab& lab, FbWorkload w, int threads, const FbOptions& raw_opts) {
  const FbOptions opts = ResolveFbOptions(w, raw_opts);
  vfs::FileSystem* fs = lab.View(0);

  // ---- pre-populate the file set ----
  {
    std::vector<uint8_t> buf(64 * 1024, 0x42);
    for (uint64_t i = 0; i < opts.nfiles; i += opts.dir_width) {
      EnsureDirs(fs, i, opts.dir_width);
    }
    for (uint64_t i = 0; i < opts.nfiles; i++) {
      auto fd = fs->Open(kCred, PathOf(i, opts.dir_width), vfs::kCreate | vfs::kWrite, 0644);
      assert(fd.ok());
      WriteWhole(fs, *fd, buf, opts.file_size);
      fs->Close(*fd);
    }
    if (w == FbWorkload::kWebserver) {
      auto fd = fs->Open(kCred, "/weblog", vfs::kCreate | vfs::kWrite, 0644);
      assert(fd.ok());
      fs->Close(*fd);
    }
  }

  return RunThreads(threads, [&](int t) -> uint64_t {
    common::Rng rng(opts.seed + t * 1315423911ull);
    std::vector<uint8_t> io(64 * 1024, 0x37);
    std::vector<uint8_t> rbuf(64 * 1024);
    uint64_t ops = 0;

    for (uint64_t it = 0; it < opts.iterations_per_thread; it++) {
      const uint64_t i = rng.Below(opts.nfiles);
      const std::string path = PathOf(i, opts.dir_width);
      switch (w) {
        case FbWorkload::kFileserver: {
          // create-write / open-append / whole read / delete / stat.
          fs->Unlink(kCred, path);
          auto fd = fs->Open(kCred, path, vfs::kCreate | vfs::kWrite, 0644);
          if (!fd.ok()) break;
          WriteWhole(fs, *fd, io, opts.file_size);
          fs->Close(*fd);
          auto afd = fs->Open(kCred, path, vfs::kWrite | vfs::kAppend, 0644);
          if (afd.ok()) {
            fs->Write(*afd, io.data(), 16 * 1024);
            fs->Close(*afd);
          }
          auto rfd = fs->Open(kCred, path, vfs::kRead, 0);
          if (rfd.ok()) {
            ReadWhole(fs, *rfd, rbuf);
            fs->Close(*rfd);
          }
          fs->Stat(kCred, path);
          ops += 5;
          break;
        }
        case FbWorkload::kWebserver: {
          for (int k = 0; k < 10; k++) {
            uint64_t j = rng.Below(opts.nfiles);
            auto rfd = fs->Open(kCred, PathOf(j, opts.dir_width), vfs::kRead, 0);
            if (rfd.ok()) {
              ReadWhole(fs, *rfd, rbuf);
              fs->Close(*rfd);
            }
          }
          auto lfd = fs->Open(kCred, "/weblog", vfs::kWrite | vfs::kAppend, 0644);
          if (lfd.ok()) {
            fs->Write(*lfd, io.data(), 16 * 1024);
            fs->Close(*lfd);
          }
          ops += 11;
          break;
        }
        case FbWorkload::kWebproxy: {
          fs->Unlink(kCred, path);
          auto fd = fs->Open(kCred, path, vfs::kCreate | vfs::kWrite, 0644);
          if (fd.ok()) {
            WriteWhole(fs, *fd, io, opts.file_size);
            fs->Close(*fd);
          }
          for (int k = 0; k < 5; k++) {
            uint64_t j = rng.Below(opts.nfiles);
            auto rfd = fs->Open(kCred, PathOf(j, opts.dir_width), vfs::kRead, 0);
            if (rfd.ok()) {
              ReadWhole(fs, *rfd, rbuf);
              fs->Close(*rfd);
            }
          }
          ops += 7;
          break;
        }
        case FbWorkload::kVarmail: {
          // delete / create+write+fsync / open+append+fsync / open+read.
          fs->Unlink(kCred, path);
          auto fd = fs->Open(kCred, path, vfs::kCreate | vfs::kWrite, 0644);
          if (fd.ok()) {
            WriteWhole(fs, *fd, io, opts.file_size / 2);
            fs->Fsync(*fd);
            fs->Close(*fd);
          }
          uint64_t j = rng.Below(opts.nfiles);
          auto afd = fs->Open(kCred, PathOf(j, opts.dir_width), vfs::kWrite | vfs::kAppend, 0644);
          if (afd.ok()) {
            fs->Write(*afd, io.data(), opts.file_size / 2);
            fs->Fsync(*afd);
            fs->Close(*afd);
          }
          uint64_t k = rng.Below(opts.nfiles);
          auto rfd = fs->Open(kCred, PathOf(k, opts.dir_width), vfs::kRead, 0);
          if (rfd.ok()) {
            ReadWhole(fs, *rfd, rbuf);
            fs->Close(*rfd);
          }
          ops += 4;
          break;
        }
      }
    }
    return ops;
  });
}

}  // namespace harness
