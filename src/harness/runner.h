// Multi-threaded workload driver and result types for the benchmark harness.

#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace harness {

struct WorkloadResult {
  uint64_t total_ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double mean_latency_ns = 0;
};

// Runs `worker(thread_idx)` on `n` threads after a start barrier; each worker
// returns the number of operations it completed. Reports aggregate
// throughput over wall-clock time.
//
// Note: this host is single-core, so thread sweeps measure behaviour under
// contention and time-slicing rather than parallel speedup; relative
// ordering between file systems (which is what the paper's figures compare)
// is preserved.
WorkloadResult RunThreads(int n, const std::function<uint64_t(int)>& worker);

// Reads an environment override: ZR_<name>, falling back to `def`.
uint64_t EnvOr(const char* name, uint64_t def);

}  // namespace harness

#endif  // SRC_HARNESS_RUNNER_H_
