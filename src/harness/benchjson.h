// Machine-readable multicore benchmark harness (bench_json).
//
// Sweeps thread counts over FxMark-style workloads (append, create, unlink,
// rename) in two coffer placements — private (one coffer per thread, forced
// by distinct permission groups) and shared (every thread in the root
// coffer's group) — and in two concurrency modes:
//
//   sharded     the PR's design: N-way sharded volatile state + per-thread
//               coffer session cache;
//   globallock  the pre-PR baseline, emulated by state_shards=1 and
//               session_cache=false (same code path, one shard == one lock).
//
// Two additional single-thread sweeps exercise MPK key pressure (schema v5):
//
//   table3      64 same-mode directory coffers (one protection class) — key
//               virtualization shares one physical key, so key_evictions
//               must be exactly 0;
//   table4      64 directory coffers cycling 24 distinct permission groups
//               (25 protection classes > 15 keys) — the LRU key window keeps
//               evictions bounded and cheap (page retags, no unmap), while
//               the globallock baseline runs the legacy one-key-per-coffer
//               allocator and thrashes through whole-coffer evictions.
//
// Each datapoint reports wall-clock throughput/latency plus
// *deterministic* structural counters — kernel crossings, clwb flushes,
// sfence fences, shard-lock / fd-lock acquisitions, staged-append fast
// path hits, and the key-pressure trio (key_evictions, key_retag_pages,
// key_class_count) — plus the derived clwb_per_op / sfence_per_op /
// key_evictions_per_op rates the budget gate (tools/check_all.sh)
// regresses on. All are
// exact functions of the workload at a fixed seed and therefore stable across
// runs and hosts. Two mechanisms make that true: the rename kernel only
// overwrites pre-created targets (no interleaving-dependent page
// allocation in the measured region), and each sweep point pins the
// logical clock so no lease word can lapse mid-run.
// On a single-core host the timing fields measure contention under
// time-slicing, not parallel speedup; lock_acquisitions_per_op is the
// host-independent scalability signal (the sharded mode's hot path takes
// zero shared locks per op).

#ifndef SRC_HARNESS_BENCHJSON_H_
#define SRC_HARNESS_BENCHJSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace harness {

struct BenchJsonOptions {
  std::vector<int> thread_counts = {1, 2, 4, 8};
  uint64_t ops_per_thread = 2000;
  uint64_t seed = 42;
  size_t dev_bytes = 256ull << 20;
  uint64_t append_cap_blocks = 2048;  // DWAL wraps its file at this size
  // Single-thread Figure-8 style breakdown (ZoFS variants under the default
  // calibrated cost model), used to detect hot-path regressions.
  bool run_fig8 = true;
  uint64_t fig8_ops = 4000;
};

// Runs the sweep and returns the complete JSON document (schema
// "zofs-bench-scale-v5", fixed key order).
std::string RunBenchJson(const BenchJsonOptions& opts = {});

}  // namespace harness

#endif  // SRC_HARNESS_BENCHJSON_H_
