// Filebench-like macrobenchmark personalities (paper §6.2, Table 6,
// Figures 9 and 10).
//
// Simplified reimplementations of the four personalities the paper runs,
// with the Table 6 knobs (# files, directory width, file size, R/W ratio)
// exposed. Operation mixes follow the classic filebench flowlets:
//   fileserver  create/write, append, whole-file read, delete, stat   (R:W 1:2)
//   webserver   10 whole-file reads + 1 log append                    (10:1)
//   webproxy    delete+create+write, then 5 reads, one flat directory (5:1)
//   varmail     delete / create+fsync / append+fsync / read, flat dir (1:1)

#ifndef SRC_HARNESS_FILEBENCH_H_
#define SRC_HARNESS_FILEBENCH_H_

#include <string>

#include "src/harness/fslab.h"
#include "src/harness/runner.h"

namespace harness {

enum class FbWorkload { kFileserver, kWebserver, kWebproxy, kVarmail };

const char* FbName(FbWorkload w);
bool ParseFbWorkload(const std::string& s, FbWorkload* out);

struct FbOptions {
  uint64_t nfiles = 0;      // 0 = the personality's Table 6 default (scaled)
  uint64_t dir_width = 0;   // 0 = the personality's Table 6 default
  uint64_t file_size = 0;   // bytes; 0 = the personality's Table 6 default
  uint64_t iterations_per_thread = 2000;
  uint64_t seed = 7;
  // Scale factor applied to the Table 6 defaults so a laptop-scale run stays
  // tractable (the paper's fileserver data set alone is 1.28 GB).
  double scale = 0.2;
};

// Fills in personality defaults (Table 6) for any zero fields.
FbOptions ResolveFbOptions(FbWorkload w, FbOptions opts);

WorkloadResult RunFilebench(FsLab& lab, FbWorkload w, int threads, const FbOptions& opts = {});

}  // namespace harness

#endif  // SRC_HARNESS_FILEBENCH_H_
