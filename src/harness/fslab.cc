#include "src/harness/fslab.h"

#include "src/mpk/mpk.h"

namespace harness {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kZofs:
      return "ZoFS";
    case FsKind::kLogFs:
      return "LogFS";
    case FsKind::kZofsSysEmpty:
      return "ZoFS-sysempty";
    case FsKind::kZofsKWrite:
      return "ZoFS-kwrite";
    case FsKind::kZofsOneCoffer:
      return "ZoFS-1coffer";
    case FsKind::kExtDax:
      return "Ext4-DAX";
    case FsKind::kPmfs:
      return "PMFS";
    case FsKind::kPmfsNocache:
      return "PMFS-nocache";
    case FsKind::kNova:
      return "NOVA";
    case FsKind::kNovaNoIndex:
      return "NOVA-noindex";
    case FsKind::kNovaInplace:
      return "NOVAi";
    case FsKind::kNovaInplaceNoIndex:
      return "NOVAi-noindex";
    case FsKind::kStrata:
      return "Strata";
  }
  return "?";
}

bool ParseFsKind(const std::string& s, FsKind* out) {
  static const std::pair<const char*, FsKind> kMap[] = {
      {"zofs", FsKind::kZofs},
      {"logfs", FsKind::kLogFs},
      {"zofs-sysempty", FsKind::kZofsSysEmpty},
      {"zofs-kwrite", FsKind::kZofsKWrite},
      {"zofs-1coffer", FsKind::kZofsOneCoffer},
      {"extdax", FsKind::kExtDax},
      {"ext4-dax", FsKind::kExtDax},
      {"pmfs", FsKind::kPmfs},
      {"pmfs-nocache", FsKind::kPmfsNocache},
      {"nova", FsKind::kNova},
      {"nova-noindex", FsKind::kNovaNoIndex},
      {"novai", FsKind::kNovaInplace},
      {"novai-noindex", FsKind::kNovaInplaceNoIndex},
      {"strata", FsKind::kStrata},
  };
  for (const auto& [name, kind] : kMap) {
    if (s == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FsLab::FsLab(FsKind kind, LabOptions opts) : kind_(kind), opts_(opts) {
  nvm::Options nopts;
  nopts.size_bytes = opts_.dev_bytes;
  nopts.clwb_ns = opts_.clwb_ns;
  nopts.sfence_ns = opts_.sfence_ns;
  dev_ = std::make_unique<nvm::NvmDevice>(nopts);

  baselines::BaseFs::Config bcfg;
  bcfg.crossing_ns = opts_.kernel_crossing_ns;

  switch (kind_) {
    case FsKind::kZofs:
    case FsKind::kLogFs:
    case FsKind::kZofsSysEmpty:
    case FsKind::kZofsKWrite:
    case FsKind::kZofsOneCoffer: {
      if (!opts_.disable_mpk) {
        mpk::InstallDeviceHook(dev_.get());
      }
      kernfs::FormatOptions fopts;
      fopts.root_type = kind_ == FsKind::kLogFs ? kernfs::kCofferTypeLogFs
                                                : kernfs::kCofferTypeZofs;
      // 0755 root => effective group 0644, matching the 0644 files benchmark
      // workloads create (a umask-0022 world, as in the paper's setup): the
      // benchmark tree shares one coffer unless a workload asks otherwise.
      fopts.root_mode = 0755;
      fopts.root_uid = opts_.cred.uid;
      fopts.root_gid = opts_.cred.gid;
      kernfs_ = std::make_unique<kernfs::KernFs>(dev_.get(), fopts);
      kernfs_->set_kernel_crossing_ns(opts_.kernel_crossing_ns);
      kernfs_->set_key_virtualization(opts_.zofs_key_virtualization);
      break;
    }
    case FsKind::kStrata: {
      baselines::StrataConfig scfg;
      scfg.crossing_ns = opts_.kernel_crossing_ns;
      strata_core_ = std::make_unique<baselines::StrataCore>(dev_.get(), scfg);
      break;
    }
    case FsKind::kExtDax:
      shared_fs_ = std::make_unique<baselines::ExtDaxFs>(dev_.get(), bcfg);
      break;
    case FsKind::kPmfs:
      shared_fs_ = std::make_unique<baselines::PmfsFs>(dev_.get(), bcfg);
      break;
    case FsKind::kPmfsNocache:
      shared_fs_ = std::make_unique<baselines::PmfsFs>(dev_.get(), bcfg,
                                                       baselines::PmfsConfig{.nocache = true});
      break;
    case FsKind::kNova:
      shared_fs_ = std::make_unique<baselines::NovaFs>(dev_.get(), bcfg);
      break;
    case FsKind::kNovaNoIndex:
      shared_fs_ = std::make_unique<baselines::NovaFs>(
          dev_.get(), bcfg, baselines::NovaConfig{.inplace = false, .update_index = false});
      break;
    case FsKind::kNovaInplace:
      shared_fs_ = std::make_unique<baselines::NovaFs>(
          dev_.get(), bcfg, baselines::NovaConfig{.inplace = true, .update_index = true});
      break;
    case FsKind::kNovaInplaceNoIndex:
      shared_fs_ = std::make_unique<baselines::NovaFs>(
          dev_.get(), bcfg, baselines::NovaConfig{.inplace = true, .update_index = false});
      break;
  }
}

FsLab::~FsLab() {
  views_.clear();
  mpk::BindThreadToProcess(nullptr);
}

vfs::FileSystem* FsLab::View(int proc) {
  if (shared_fs_ != nullptr) {
    return shared_fs_.get();  // kernel FS: one instance for every process
  }
  common::MutexLock lk(&mu_);
  if (static_cast<size_t>(proc) >= views_.size()) {
    views_.resize(proc + 1);
  }
  if (views_[proc] == nullptr) {
    switch (kind_) {
      case FsKind::kZofs:
      case FsKind::kLogFs:
      case FsKind::kZofsSysEmpty:
      case FsKind::kZofsKWrite:
      case FsKind::kZofsOneCoffer: {
        zofs::Options zopts;
        zopts.sysempty = kind_ == FsKind::kZofsSysEmpty;
        zopts.kwrite = kind_ == FsKind::kZofsKWrite;
        zopts.one_coffer = kind_ == FsKind::kZofsOneCoffer;
        zopts.inline_data = opts_.zofs_inline_data;
        zopts.atomic_data = opts_.zofs_atomic_data;
        zopts.enlarge_batch = opts_.zofs_enlarge_batch;
        zopts.state_shards = opts_.zofs_state_shards;
        zopts.session_cache = opts_.zofs_session_cache;
        zopts.sync_crossings = opts_.zofs_sync_crossings;
        views_[proc] = std::make_unique<fslib::FsLib>(kernfs_.get(), opts_.cred, zopts);
        break;
      }
      case FsKind::kStrata:
        views_[proc] = strata_core_->CreateProcessView();
        break;
      default:
        break;
    }
  }
  return views_[proc].get();
}

}  // namespace harness
