#include "src/harness/benchjson.h"

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <sstream>
#include <thread>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/fslib/fslib.h"
#include "src/harness/fslab.h"
#include "src/harness/fxmark.h"
#include "src/harness/runner.h"
#include "src/mpk/keyclass.h"

namespace harness {

namespace {

constexpr size_t kBlock = 4096;
const vfs::Cred kCred{0, 0};

enum class Scope { kShared, kPrivate };
// kChurn is the open/create/delete storm the channel work targets: every op
// creates a file and every fourth op unlinks an older one, so the allocator
// keeps drawing pages from the kernel while the working set stays bounded.
// kTable3/kTable4 are the key-pressure sweeps (single-thread, 64 directory
// coffers per process): table3 keeps every coffer in one protection class,
// table4 cycles 24 distinct permission groups so classes outnumber the 15
// usable MPK keys and the LRU key window must run.
enum class Kernel { kAppend, kCreate, kUnlink, kRename, kChurn, kTable3, kTable4 };

constexpr Kernel kAllKernels[] = {Kernel::kAppend, Kernel::kCreate, Kernel::kUnlink,
                                  Kernel::kRename, Kernel::kChurn};
constexpr Kernel kTableKernels[] = {Kernel::kTable3, Kernel::kTable4};

// Key-pressure sweep shape: 64 coffers, visited in runs of 16 consecutive
// ops so the LRU window sees locality (a run faults its class in once, then
// stays hot).
constexpr int kTableDirs = 64;
constexpr uint64_t kTableRunLen = 16;

// Errors in a bench kernel invalidate every counter downstream; abort loudly
// (assert() is compiled out of release builds).
#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    if (!(expr).ok()) {                                                   \
      std::fprintf(stderr, "bench_json: %s failed at %s:%d\n", #expr,     \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kAppend:
      return "dwal";
    case Kernel::kCreate:
      return "mwcl";
    case Kernel::kUnlink:
      return "mwul";
    case Kernel::kRename:
      return "mwrl";
    case Kernel::kChurn:
      return "churn";
    case Kernel::kTable3:
      return "table3";
    case Kernel::kTable4:
      return "table4";
  }
  return "?";
}

// Eight distinct effective permission groups (EffPerm = mode & 0666), none
// equal to the root coffer's 0644: creating thread t's tree with mode
// kPrivateModes[t] forces it into its own coffer (paper §5, Figure 1). The
// benchmark cred is uid 0, so the restrictive bits never deny access.
constexpr uint16_t kPrivateModes[8] = {0600, 0602, 0604, 0606, 0620, 0622, 0624, 0626};

uint16_t ModeFor(Scope scope, int thread) {
  return scope == Scope::kPrivate ? kPrivateModes[thread % 8] : 0644;
}

// 24 distinct effective permission groups for the table4 mixed-class sweep;
// none equal the root coffer's 0644, so with the root class the process sees
// 25 protection classes — well past the 15 physical keys. The bench cred is
// uid 0 (IsRoot), so owner-read-only modes never deny access.
constexpr uint16_t kTable4Modes[24] = {
    0600, 0602, 0604, 0606, 0620, 0622, 0624, 0626, 0640, 0642, 0646, 0660,
    0662, 0664, 0666, 0400, 0402, 0404, 0406, 0420, 0422, 0424, 0426, 0440};

// Directory d's mode in a key-pressure sweep: one class for table3, a cycle
// of 24 for table4.
uint16_t TableModeFor(Kernel k, int d) {
  return k == Kernel::kTable4 ? kTable4Modes[d % 24] : 0600;
}

bool IsTableKernel(Kernel k) { return k == Kernel::kTable3 || k == Kernel::kTable4; }

std::string TreeFor(Kernel k, Scope scope, int thread) {
  return std::string("/") + KernelName(k) + (scope == Scope::kPrivate ? "p" : "s") +
         std::to_string(thread);
}

// One sweep datapoint.
struct Point {
  Kernel kernel;
  Scope scope;
  bool sharded;
  int threads;
  uint64_t ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  // Deterministic structural counters (deltas over the measured phase).
  // Crossings are split foreground/background (the CrossingCount()
  // mis-attribution bugfix): kernel_crossings counts only crossings a
  // measured op synchronously waited on; async-ring drains and other
  // BackgroundCrossingScope work land in kernel_crossings_bg.
  uint64_t kernel_crossings = 0;
  uint64_t kernel_crossings_bg = 0;
  uint64_t clwb = 0;
  uint64_t sfence = 0;
  uint64_t shard_lock_acquisitions = 0;
  uint64_t fd_alloc_lock_acquisitions = 0;
  // Appends absorbed by the ZoFS staged fast path (epoch batcher).
  uint64_t staged_append_hits = 0;
  // Tenant-death machinery (procmon). All five must stay 0 in a bench run —
  // a healthy workload under a pinned clock never trips a lease steal,
  // online repair, or the dead-process reaper; check_shapes.py asserts it.
  uint64_t lock_steals = 0;
  uint64_t online_repairs = 0;
  uint64_t reaped_mappings = 0;
  uint64_t reaped_grant_pages = 0;
  uint64_t reaped_lists = 0;
  // MPK key virtualization (schema v5). Evictions and retagged pages are
  // deltas over the measured phase; the legacy allocator charges its
  // whole-coffer evictions to the same key_evictions axis so the
  // virtualized-vs-legacy comparison reads off one field. key_class_count is
  // the live protection-class population at the end of the run (0 under the
  // legacy allocator, which never forms classes).
  uint64_t key_evictions = 0;
  uint64_t key_retag_pages = 0;
  uint64_t key_class_count = 0;
};

Point RunPoint(Kernel kernel, Scope scope, bool sharded, int threads,
               const BenchJsonOptions& opts) {
  // Without the pin, a thread descheduled past a lease window re-leases with
  // an extra PersistRange and the clwb/sfence counters drift by ±1 between
  // runs. Latency measurement and the cost-model busy-waits read the
  // hardware clock (RealNowNs) and are unaffected.
  common::ScopedClockPin pin(1'000'000'000ull + opts.seed);
  LabOptions lopts;
  lopts.dev_bytes = opts.dev_bytes;
  lopts.zofs_state_shards = sharded ? 16 : 1;
  lopts.zofs_session_cache = sharded;
  // The globallock baseline also runs with synchronous crossings, so the
  // sharded-vs-globallock comparison covers channels-vs-no-channels too.
  lopts.zofs_sync_crossings = !sharded;
  // Key-pressure sweeps pit the virtualized allocator (sharded points)
  // against the legacy one-key-per-coffer path (globallock points), which
  // thrashes through whole-coffer evictions once 64 coffers fight over 15
  // keys. The ordinary kernels stay virtualized in both modes (≤ 9 classes,
  // no pressure either way).
  if (IsTableKernel(kernel)) lopts.zofs_key_virtualization = sharded;
  FsLab lab(FsKind::kZofs, lopts);
  vfs::FileSystem* fs = lab.View(0);
  auto* fslib = static_cast<fslib::FsLib*>(fs);

  // ---- setup (not measured) ----
  if (IsTableKernel(kernel)) {
    // 64 directory coffers. Under the legacy allocator this already thrashes
    // during setup (64 coffers > 15 keys); the deltas below start after it.
    for (int d = 0; d < kTableDirs; d++) {
      auto s = fs->Mkdir(kCred, TreeFor(kernel, scope, d), TableModeFor(kernel, d));
      CHECK_OK(s);
    }
  }
  for (int t = 0; !IsTableKernel(kernel) && t < threads; t++) {
    const uint16_t mode = ModeFor(scope, t);
    const std::string tree = TreeFor(kernel, scope, t);
    if (kernel == Kernel::kAppend) {
      auto fd = fs->Open(kCred, tree, vfs::kCreate | vfs::kWrite, mode);
      CHECK_OK(fd);
      fs->Close(*fd);
    } else {
      // Directory and files share one permission group so the whole
      // per-thread tree lands in one coffer.
      auto s = fs->Mkdir(kCred, tree, mode);
      CHECK_OK(s);
      if (kernel == Kernel::kUnlink || kernel == Kernel::kRename) {
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto fd = fs->Open(kCred, tree + "/f" + std::to_string(i),
                             vfs::kCreate | vfs::kWrite, mode);
          CHECK_OK(fd);
          fs->Close(*fd);
        }
      }
      if (kernel == Kernel::kRename) {
        // Pre-create the rename targets so the measured rename is a pure
        // overwrite: no dentry/page allocation in the measured region, which
        // would otherwise make grow-crossing counts interleaving-dependent
        // in the shared-coffer sweep.
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          auto fd = fs->Open(kCred, tree + "/g" + std::to_string(i),
                             vfs::kCreate | vfs::kWrite, mode);
          CHECK_OK(fd);
          fs->Close(*fd);
        }
      }
    }
  }

  const uint64_t fg0 = kernfs::ForegroundCrossingCount();
  const uint64_t bg0 = kernfs::BackgroundCrossingCount();
  const uint64_t clwb0 = lab.dev()->clwb_count();
  const uint64_t sfence0 = lab.dev()->sfence_count();
  const uint64_t locks0 = fslib->zofs().ShardLockAcquisitionsForTest();
  const uint64_t fdlocks0 = fslib->FdAllocLockAcquisitionsForTest();
  const uint64_t staged0 = fslib->zofs().StagedAppendHits();
  const uint64_t steals0 = zofs::LockStealCount();
  const uint64_t repairs0 = zofs::OnlineRepairCount();
  const uint64_t rmap0 = kernfs::ReapedMappingCount();
  const uint64_t rgrant0 = kernfs::ReapedGrantPageCount();
  const uint64_t rlist0 = zofs::ReapedListCount();
  const uint64_t kevict0 = mpk::KeyEvictionCount();
  const uint64_t kretag0 = mpk::KeyRetagPageCount();

  std::vector<common::LatencyRecorder> lat(threads);
  WorkloadResult wr = RunThreads(threads, [&](int t) -> uint64_t {
    fslib->BindThread();
    const uint16_t mode = ModeFor(scope, t);
    const std::string tree = TreeFor(kernel, scope, t);
    common::LatencyRecorder& rec = lat[t];
    auto timed = [&rec](auto&& op) {
      const uint64_t t0 = common::RealNowNs();
      op();
      rec.Record(common::RealNowNs() - t0);
    };
    switch (kernel) {
      case Kernel::kAppend: {
        auto fd = fs->Open(kCred, tree, vfs::kWrite | vfs::kAppend, mode);
        CHECK_OK(fd);
        std::vector<uint8_t> buf(kBlock, 0x5a);
        uint64_t appended = 0;
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          timed([&] {
            auto r = fs->Write(*fd, buf.data(), kBlock);
            CHECK_OK(r);
          });
          if (++appended >= opts.append_cap_blocks) {
            fs->Ftruncate(*fd, 0);  // wrap to bound NVM usage (not an op)
            fs->Lseek(*fd, 0, 0);
            appended = 0;
          }
        }
        fs->Close(*fd);
        break;
      }
      case Kernel::kCreate:
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          timed([&] {
            auto fd = fs->Open(kCred, tree + "/f" + std::to_string(i),
                               vfs::kCreate | vfs::kWrite, mode);
            CHECK_OK(fd);
            fs->Close(*fd);
          });
        }
        break;
      case Kernel::kUnlink:
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          timed([&] {
            auto s = fs->Unlink(kCred, tree + "/f" + std::to_string(i));
            CHECK_OK(s);
          });
        }
        break;
      case Kernel::kRename:
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          timed([&] {
            auto s = fs->Rename(kCred, tree + "/f" + std::to_string(i),
                                tree + "/g" + std::to_string(i));
            CHECK_OK(s);
          });
        }
        break;
      case Kernel::kChurn:
        // Open/create/delete storm: each op creates a fresh file; every
        // fourth op also unlinks one created three ops earlier, so pages
        // keep cycling through the allocator (net growth ~1 page/op keeps
        // the kernel refill path hot) while the tree stays bounded.
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          timed([&] {
            auto fd = fs->Open(kCred, tree + "/f" + std::to_string(i),
                               vfs::kCreate | vfs::kWrite, mode);
            CHECK_OK(fd);
            fs->Close(*fd);
            if (i % 4 == 3) {
              auto s = fs->Unlink(kCred, tree + "/f" + std::to_string(i - 3));
              CHECK_OK(s);
            }
          });
        }
        break;
      case Kernel::kTable3:
      case Kernel::kTable4:
        // Churn spread over the 64 directory coffers: op i targets dir
        // (i/16) % 64, so the working class changes every 16 ops. Under the
        // key window a class fault costs one retag crossing per run; the
        // legacy path pays a whole-coffer unmap/remap storm instead.
        for (uint64_t i = 0; i < opts.ops_per_thread; i++) {
          const int d = static_cast<int>((i / kTableRunLen) %
                                         static_cast<uint64_t>(kTableDirs));
          const std::string dtree = TreeFor(kernel, scope, d);
          const uint16_t dmode = TableModeFor(kernel, d);
          timed([&] {
            auto fd = fs->Open(kCred, dtree + "/f" + std::to_string(i),
                               vfs::kCreate | vfs::kWrite, dmode);
            CHECK_OK(fd);
            fs->Close(*fd);
            if (i % 4 == 3) {
              auto s = fs->Unlink(kCred, dtree + "/f" + std::to_string(i - 3));
              CHECK_OK(s);
            }
          });
        }
        break;
    }
    return opts.ops_per_thread;
  });

  Point p;
  p.kernel = kernel;
  p.scope = scope;
  p.sharded = sharded;
  p.threads = threads;
  p.ops = wr.total_ops;
  p.seconds = wr.seconds;
  p.ops_per_sec = wr.ops_per_sec;
  common::LatencyRecorder all;
  for (auto& r : lat) {
    all.Merge(r);
  }
  p.mean_ns = all.MeanNs();
  p.p50_ns = all.PercentileNs(50);
  p.p99_ns = all.PercentileNs(99);
  p.kernel_crossings = kernfs::ForegroundCrossingCount() - fg0;
  p.kernel_crossings_bg = kernfs::BackgroundCrossingCount() - bg0;
  p.clwb = lab.dev()->clwb_count() - clwb0;
  p.sfence = lab.dev()->sfence_count() - sfence0;
  p.shard_lock_acquisitions = fslib->zofs().ShardLockAcquisitionsForTest() - locks0;
  p.fd_alloc_lock_acquisitions = fslib->FdAllocLockAcquisitionsForTest() - fdlocks0;
  p.staged_append_hits = fslib->zofs().StagedAppendHits() - staged0;
  p.lock_steals = zofs::LockStealCount() - steals0;
  p.online_repairs = zofs::OnlineRepairCount() - repairs0;
  p.reaped_mappings = kernfs::ReapedMappingCount() - rmap0;
  p.reaped_grant_pages = kernfs::ReapedGrantPageCount() - rgrant0;
  p.reaped_lists = zofs::ReapedListCount() - rlist0;
  p.key_evictions = mpk::KeyEvictionCount() - kevict0;
  p.key_retag_pages = mpk::KeyRetagPageCount() - kretag0;
  p.key_class_count = fslib->zofs().proc()->LiveProtClassCount();
  return p;
}

std::string Fmt(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double PerOp(uint64_t count, uint64_t ops) {
  return ops == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(ops);
}

void EmitPoint(std::ostringstream& out, const Point& p, bool first) {
  if (!first) {
    out << ",\n";
  }
  out << "    {\"workload\": \"" << KernelName(p.kernel) << "\", "
      << "\"coffers\": \"" << (p.scope == Scope::kPrivate ? "private" : "shared") << "\", "
      << "\"mode\": \"" << (p.sharded ? "sharded" : "globallock") << "\", "
      << "\"threads\": " << p.threads << ",\n"
      << "     \"ops\": " << p.ops << ", \"seconds\": " << Fmt(p.seconds)
      << ", \"ops_per_sec\": " << Fmt(p.ops_per_sec) << ",\n"
      << "     \"mean_ns\": " << Fmt(p.mean_ns) << ", \"p50_ns\": " << p.p50_ns
      << ", \"p99_ns\": " << p.p99_ns << ",\n"
      << "     \"kernel_crossings\": " << p.kernel_crossings
      << ", \"kernel_crossings_per_op\": " << Fmt(PerOp(p.kernel_crossings, p.ops))
      << ", \"kernel_crossings_bg\": " << p.kernel_crossings_bg
      << ", \"kernel_crossings_bg_per_op\": " << Fmt(PerOp(p.kernel_crossings_bg, p.ops))
      << ", \"crossing_ns_per_op\": "
      << Fmt(PerOp((p.kernel_crossings + p.kernel_crossings_bg) *
                       LabOptions{}.kernel_crossing_ns,
                   p.ops))
      << ",\n"
      << "     \"clwb\": " << p.clwb << ", \"clwb_per_op\": " << Fmt(PerOp(p.clwb, p.ops))
      << ", \"sfence\": " << p.sfence
      << ", \"sfence_per_op\": " << Fmt(PerOp(p.sfence, p.ops))
      << ", \"staged_append_hits\": " << p.staged_append_hits << ",\n"
      << "     \"shard_lock_acquisitions\": " << p.shard_lock_acquisitions
      << ", \"lock_acquisitions_per_op\": " << Fmt(PerOp(p.shard_lock_acquisitions, p.ops))
      << ",\n"
      << "     \"fd_alloc_lock_acquisitions\": " << p.fd_alloc_lock_acquisitions << ",\n"
      << "     \"lock_steals\": " << p.lock_steals
      << ", \"online_repairs\": " << p.online_repairs
      << ", \"reaped_mappings\": " << p.reaped_mappings
      << ", \"reaped_grant_pages\": " << p.reaped_grant_pages
      << ", \"reaped_lists\": " << p.reaped_lists << ",\n"
      << "     \"key_evictions\": " << p.key_evictions
      << ", \"key_evictions_per_op\": " << Fmt(PerOp(p.key_evictions, p.ops))
      << ", \"key_retag_pages\": " << p.key_retag_pages
      << ", \"key_class_count\": " << p.key_class_count << "}";
}

}  // namespace

std::string RunBenchJson(const BenchJsonOptions& opts) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"zofs-bench-scale-v5\",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"config\": {\"ops_per_thread\": " << opts.ops_per_thread
      << ", \"seed\": " << opts.seed << ", \"dev_bytes\": " << opts.dev_bytes
      << ", \"append_cap_blocks\": " << opts.append_cap_blocks << ", \"thread_counts\": [";
  for (size_t i = 0; i < opts.thread_counts.size(); i++) {
    out << (i ? ", " : "") << opts.thread_counts[i];
  }
  out << "]},\n";
  {
    LabOptions defaults;
    out << "  \"cost_model\": {\"kernel_crossing_ns\": " << defaults.kernel_crossing_ns
        << ", \"clwb_ns\": " << defaults.clwb_ns << ", \"sfence_ns\": " << defaults.sfence_ns
        << "},\n";
  }

  std::vector<Point> points;
  out << "  \"sweep\": [\n";
  bool first = true;
  for (Kernel kernel : kAllKernels) {
    for (Scope scope : {Scope::kPrivate, Scope::kShared}) {
      for (bool sharded : {true, false}) {
        for (int threads : opts.thread_counts) {
          Point p = RunPoint(kernel, scope, sharded, threads, opts);
          points.push_back(p);
          EmitPoint(out, p, first);
          first = false;
        }
      }
    }
  }
  // Key-pressure sweeps run single-threaded only: eviction order under a
  // concurrent LRU depends on interleaving, which would break the
  // deterministic-counter invariant (concurrency under key pressure is
  // covered by the scalability tests and zofs_soak --key-pressure).
  for (Kernel kernel : kTableKernels) {
    for (bool sharded : {true, false}) {
      Point p = RunPoint(kernel, Scope::kPrivate, sharded, /*threads=*/1, opts);
      points.push_back(p);
      EmitPoint(out, p, first);
      first = false;
    }
  }
  out << "\n  ],\n";

  // Derived scalability summary: sharded vs globallock at the highest thread
  // count. On a single-core host the throughput ratio reflects reduced
  // serialization, not parallelism; locks_per_op is exact on any host.
  out << "  \"derived\": [\n";
  const int max_threads =
      *std::max_element(opts.thread_counts.begin(), opts.thread_counts.end());
  bool dfirst = true;
  for (Kernel kernel : kAllKernels) {
    for (Scope scope : {Scope::kPrivate, Scope::kShared}) {
      const Point* shd = nullptr;
      const Point* gbl = nullptr;
      for (const Point& p : points) {
        if (p.kernel == kernel && p.scope == scope && p.threads == max_threads) {
          (p.sharded ? shd : gbl) = &p;
        }
      }
      if (shd == nullptr || gbl == nullptr) {
        continue;
      }
      if (!dfirst) {
        out << ",\n";
      }
      dfirst = false;
      out << "    {\"workload\": \"" << KernelName(kernel) << "\", \"coffers\": \""
          << (scope == Scope::kPrivate ? "private" : "shared")
          << "\", \"threads\": " << max_threads
          << ", \"throughput_sharded_over_globallock\": "
          << Fmt(gbl->ops_per_sec > 0 ? shd->ops_per_sec / gbl->ops_per_sec : 0) << ",\n"
          << "     \"locks_per_op_sharded\": "
          << Fmt(PerOp(shd->shard_lock_acquisitions, shd->ops))
          << ", \"locks_per_op_globallock\": "
          << Fmt(PerOp(gbl->shard_lock_acquisitions, gbl->ops)) << "}";
    }
  }
  out << "\n  ]";

  if (opts.run_fig8) {
    // Single-thread Figure-8 style breakdown under the default calibrated
    // cost model; a hot-path regression shows up here as a throughput drop.
    out << ",\n  \"fig8\": [\n";
    const FsKind kinds[] = {FsKind::kZofs, FsKind::kZofsSysEmpty, FsKind::kZofsKWrite};
    const FxWorkload works[] = {FxWorkload::kDWAL, FxWorkload::kDRBL, FxWorkload::kMWCL};
    bool f8first = true;
    for (FsKind kind : kinds) {
      for (FxWorkload w : works) {
        FsLab lab(kind, LabOptions{});
        FxOptions fxo;
        fxo.ops_per_thread = opts.fig8_ops;
        fxo.seed = opts.seed;
        WorkloadResult r = RunFxmark(lab, w, /*threads=*/1, fxo);
        if (!f8first) {
          out << ",\n";
        }
        f8first = false;
        out << "    {\"fs\": \"" << FsKindName(kind) << "\", \"workload\": \"" << FxName(w)
            << "\", \"ops_per_sec\": " << Fmt(r.ops_per_sec)
            << ", \"mean_ns\": " << Fmt(r.mean_latency_ns) << "}";
      }
    }
    out << "\n  ]";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace harness
