#include "src/harness/runner.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace harness {

WorkloadResult RunThreads(int n, const std::function<uint64_t(int)>& worker) {
  std::atomic<bool> go{false};
  std::vector<uint64_t> counts(n, 0);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; i++) {
    threads.emplace_back([&, i]() {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      counts[i] = worker(i);
    });
  }
  // Hardware clock, not the logical one: callers (benchjson) may pin NowNs
  // to make lease words deterministic, which must not zero the stopwatch.
  const uint64_t start = common::RealNowNs();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) {
    t.join();
  }
  const uint64_t elapsed = common::RealNowNs() - start;

  WorkloadResult r;
  for (uint64_t c : counts) {
    r.total_ops += c;
  }
  r.seconds = static_cast<double>(elapsed) / 1e9;
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(r.total_ops) / r.seconds : 0;
  r.mean_latency_ns =
      r.total_ops > 0 ? static_cast<double>(elapsed) * n / static_cast<double>(r.total_ops) : 0;
  return r;
}

uint64_t EnvOr(const char* name, uint64_t def) {
  std::string full = std::string("ZR_") + name;
  const char* v = std::getenv(full.c_str());
  if (v == nullptr || *v == '\0') {
    return def;
  }
  return std::strtoull(v, nullptr, 10);
}

}  // namespace harness
