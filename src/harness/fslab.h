// FsLab — constructs any of the evaluated file systems (plus their paper
// variants) on a fresh simulated NVM device and hands out per-process views.
//
// For kernel file systems (Ext4-DAX, PMFS, NOVA) every process shares the
// one kernel instance; for the user-space designs each simulated process
// gets its own library instance (FsLib for ZoFS, LibFS view for Strata)
// sharing the kernel/core underneath.

#ifndef SRC_HARNESS_FSLAB_H_
#define SRC_HARNESS_FSLAB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/extdax.h"
#include "src/baselines/nova.h"
#include "src/baselines/pmfs.h"
#include "src/baselines/strata.h"
#include "src/common/mutex.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/nvm/nvm.h"
#include "src/vfs/vfs.h"

namespace harness {

enum class FsKind {
  kZofs,
  kLogFs,              // the log-structured µFS (paper §5.3's alternative)
  kZofsSysEmpty,       // Figure 8
  kZofsKWrite,         // Figure 8
  kZofsOneCoffer,      // Table 9
  kExtDax,
  kPmfs,
  kPmfsNocache,        // Figure 8
  kNova,
  kNovaNoIndex,        // Figure 8
  kNovaInplace,        // Figure 8 (NOVAi)
  kNovaInplaceNoIndex, // Figure 8
  kStrata,
};

const char* FsKindName(FsKind kind);
// Parses "zofs", "nova", "pmfs-nocache", ... Returns true on success.
bool ParseFsKind(const std::string& s, FsKind* out);

struct LabOptions {
  size_t dev_bytes = 512ull << 20;
  uint64_t kernel_crossing_ns = 300;
  // Persistence-primitive costs (see nvm::Options): calibrated so that a
  // flush-per-line 4 KB write costs ~2 us and a non-temporal one ~0.2 us,
  // matching the paper's Figure 8 separation on Optane.
  uint64_t clwb_ns = 30;
  uint64_t sfence_ns = 100;
  vfs::Cred cred{0, 0};  // identity used by the benchmark processes

  // ZoFS knobs for the ablation benches.
  bool zofs_inline_data = false;
  bool zofs_atomic_data = false;
  uint64_t zofs_enlarge_batch = 64;
  // Volatile-state sharding (bench_json's global-lock baseline sets shards=1
  // and disables the per-thread session cache).
  uint32_t zofs_state_shards = 16;
  bool zofs_session_cache = true;
  // Disable the per-thread kernel channels: every crossing taken
  // synchronously (bench_json's baseline configs, differential tests).
  bool zofs_sync_crossings = false;
  // Skip installing the MPK device hook (measures protection overhead).
  bool disable_mpk = false;
  // MPK key virtualization (protection classes + LRU key windows). Off =
  // legacy one-key-per-coffer allocation with whole-coffer eviction, the
  // pre-virtualization thrash baseline for bench_json's table3/table4 points.
  bool zofs_key_virtualization = true;
};

class FsLab {
 public:
  FsLab(FsKind kind, LabOptions opts = {});
  ~FsLab();

  FsKind kind() const { return kind_; }
  const char* name() const { return FsKindName(kind_); }
  nvm::NvmDevice* dev() { return dev_.get(); }
  kernfs::KernFs* kernfs() { return kernfs_.get(); }  // null for baselines
  const LabOptions& options() const { return opts_; }

  // The view for simulated process `proc`. Thread-safe; views are created
  // lazily and cached.
  vfs::FileSystem* View(int proc = 0);

 private:
  FsKind kind_;
  LabOptions opts_;
  std::unique_ptr<nvm::NvmDevice> dev_;

  // ZoFS stack.
  std::unique_ptr<kernfs::KernFs> kernfs_;
  // Strata stack.
  std::unique_ptr<baselines::StrataCore> strata_core_;
  // Kernel baselines: a single shared instance.
  std::unique_ptr<vfs::FileSystem> shared_fs_;

  common::Mutex mu_;
  std::vector<std::unique_ptr<vfs::FileSystem>> views_ GUARDED_BY(mu_);
};

}  // namespace harness

#endif  // SRC_HARNESS_FSLAB_H_
