// Simulated byte-addressable non-volatile memory.
//
// This stands in for Intel Optane DC persistent memory (the paper's medium).
// It provides:
//   * a flat, page-granular region addressed by 64-bit offsets (persistent
//     structures store offsets, never raw pointers);
//   * persistence primitives mirroring the x86 model: explicit stores,
//     non-temporal bulk stores, `Clwb` cacheline write-back and `Sfence`;
//   * crash injection: when crash tracking is on, every store records the
//     pre-image of the touched cachelines, `SimulateCrash()` rolls back all
//     lines that were not written back + fenced — the adversarial model used
//     by persistent-memory testing tools;
//   * an optional media throttle reproducing Optane's read/write latency and
//     bandwidth asymmetry (paper Table 1) on DRAM;
//   * an access-check hook through which the simulated MPK facility (src/mpk)
//     enforces protection-key semantics on every store.

#ifndef SRC_NVM_NVM_H_
#define SRC_NVM_NVM_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"

namespace nvm {

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kCachelineSize = 64;

// Optane-like media costs. All-zero (the default) disables throttling, which
// is what the file-system benchmarks use; the Table 1 media benchmark enables
// it to reproduce the DRAM/NVM asymmetry.
struct MediaProfile {
  uint64_t read_latency_ns = 0;   // charged once per read op
  uint64_t write_latency_ns = 0;  // charged once per write op
  double read_gbps = 0.0;         // 0 = uncapped
  double write_gbps = 0.0;        // 0 = uncapped

  bool enabled() const {
    return read_latency_ns || write_latency_ns || read_gbps > 0 || write_gbps > 0;
  }

  // Values scaled from the paper's Table 1 measurements of Optane DC PM.
  static MediaProfile OptaneLike();
  // DRAM reference point for the same table.
  static MediaProfile DramLike();
};

struct Options {
  size_t size_bytes = 64ull << 20;
  bool crash_tracking = false;
  MediaProfile media;
  // Costs of the persistence primitives themselves, charged as busy-waits:
  // on real Optane a clwb that actually writes back costs tens of ns per
  // line and an sfence with pending write-backs stalls for ~100 ns. These
  // drive the flush-per-line vs non-temporal gap the paper measures
  // (Figure 8). Zero (the default) disables the charge.
  uint64_t clwb_ns = 0;
  uint64_t sfence_ns = 0;
};

// Access hook invoked before each store/load API call; installed by the MPK
// simulation. Must return kOk to allow the access.
using AccessHook = common::Err (*)(void* ctx, uint64_t off, size_t len, bool is_write);

class NvmDevice;

// Observer of persistence-relevant events, installed by the audit layer
// (src/audit). Callbacks fire after the access hook has admitted the
// operation and outside the device's tracking lock; `dev` identifies the
// emitting device so one observer can watch several.
class PersistObserver {
 public:
  virtual ~PersistObserver() = default;
  // A store became visible. `nontemporal` marks NT stores, which bypass the
  // cache and only await the next Sfence.
  virtual void OnStore(const NvmDevice* dev, uint64_t off, size_t len, bool nontemporal) = 0;
  virtual void OnClwb(const NvmDevice* dev, uint64_t off, size_t len) = 0;
  virtual void OnSfence(const NvmDevice* dev) = 0;
  // Crash simulation or MarkAllPersistent: all volatile state is gone.
  virtual void OnPersistEpoch(const NvmDevice* dev) = 0;
  virtual void OnDeviceGone(const NvmDevice* dev) = 0;
};

// One journal entry per Sfence while crash capture is on (see
// StartCrashCapture): the cachelines that became persistent at this fence and
// the ones still volatile immediately after it. `in_flight` lines may persist
// at any instant before the next fence (cache eviction), so a legal mid-epoch
// crash state is the post-fence image plus any subset of the *next* epoch's
// persisted+in_flight lines at their fence-time content.
struct CrashEpoch {
  struct Line {
    uint64_t line;  // cacheline index (offset / kCachelineSize)
    uint8_t data[kCachelineSize];
  };
  uint64_t fence_seq = 0;       // sfence_count() after this fence
  std::vector<Line> persisted;  // became persistent at this fence (post-image)
  std::vector<Line> in_flight;  // still volatile after this fence
};

// Process-wide hook run at the end of every NvmDevice constructor. The audit
// layer registers itself here so ZOFS_AUDIT=1 can observe every device the
// test suite creates without each call site opting in.
using DeviceInitHook = void (*)(NvmDevice* dev);
void SetDeviceInitHook(DeviceInitHook hook);

class NvmDevice {
 public:
  explicit NvmDevice(const Options& opts);
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }
  size_t size() const { return size_; }
  size_t num_pages() const { return size_ / kPageSize; }

  // Offset <-> pointer translation. Offsets are the persistent address form.
  uint64_t OffsetOf(const void* p) const {
    return static_cast<uint64_t>(static_cast<const uint8_t*>(p) - base_);
  }
  void* At(uint64_t off) { return base_ + off; }
  const void* At(uint64_t off) const { return base_ + off; }
  template <typename T>
  T* As(uint64_t off) {
    return reinterpret_cast<T*>(base_ + off);
  }

  // Overflow-safe range check: `off + len` may wrap uint64_t, so compare
  // against the remaining space instead of the sum.
  bool Contains(uint64_t off, size_t len) const { return off <= size_ && len <= size_ - off; }

  // ---- Store primitives (write path). All check the access hook, record
  // undo state when crash tracking is on, and count persistence traffic.
  void Store8(uint64_t off, uint8_t v);
  void Store16(uint64_t off, uint16_t v);
  void Store32(uint64_t off, uint32_t v);
  void Store64(uint64_t off, uint64_t v);
  void StoreBytes(uint64_t off, const void* src, size_t n);
  // Non-temporal bulk store: bypasses the cache, so the data is persistent
  // after the next Sfence without per-line Clwb. Charged at streaming
  // bandwidth when the media throttle is on.
  void NtStoreBytes(uint64_t off, const void* src, size_t n);

  // Atomic 64-bit ops on NVM words (used for lease locks / commit points).
  uint64_t AtomicLoad64(uint64_t off) const;
  void AtomicStore64(uint64_t off, uint64_t v);
  bool AtomicCas64(uint64_t off, uint64_t expected, uint64_t desired);
  uint64_t AtomicFetchAdd64(uint64_t off, uint64_t delta);

  // ---- Load path. Plain pointer reads are allowed for performance; these
  // helpers additionally run the access hook and the media throttle.
  void LoadBytes(uint64_t off, void* dst, size_t n) const;
  uint64_t Load64(uint64_t off) const;

  // ---- Persistence control.
  void Clwb(uint64_t off, size_t len);  // write back the covered cachelines
  void Sfence();                        // order/commit prior write-backs
  void PersistRange(uint64_t off, size_t len) {
    Clwb(off, len);
    Sfence();
  }

  // ---- Crash simulation.
  bool crash_tracking() const { return crash_tracking_; }
  // Discards all stores that were not Clwb'd + Sfence'd, restoring pre-images.
  // Returns the number of cachelines rolled back.
  size_t SimulateCrash();
  // Treat the current contents as fully persistent (e.g. after setup).
  void MarkAllPersistent();
  size_t DirtyLineCountForTest() const;

  // ---- Crash capture (requires crash_tracking). Marks everything persistent
  // and starts journaling a CrashEpoch per Sfence; the caller snapshots the
  // base image (SnapshotTo) right after so crash states can be rebuilt as
  // snapshot + persisted deltas. Lines within an epoch are sorted by index,
  // so the journal is deterministic for a deterministic workload.
  void StartCrashCapture();
  void StopCrashCapture();
  bool crash_capture() const { return crash_capture_; }
  const std::vector<CrashEpoch>& crash_journal() const { return crash_journal_; }

  // Full-image copy out / in. RestoreFrom bypasses the access hook and the
  // crash tracker and leaves the device fully persistent — it loads a
  // materialized crash image into a (recycled) device for recovery.
  void SnapshotTo(std::vector<uint8_t>* out) const;
  void RestoreFrom(const uint8_t* img, size_t len);

  // ---- MPK hook.
  void SetAccessHook(AccessHook hook, void* ctx) {
    hook_ctx_ = ctx;
    hook_ = hook;
  }

  // ---- Audit observer (src/audit). At most one per device.
  void SetPersistObserver(PersistObserver* obs) { observer_ = obs; }
  PersistObserver* persist_observer() const { return observer_; }

  // ---- Counters (diagnostics and benchmarks).
  uint64_t clwb_count() const { return clwb_count_.load(std::memory_order_relaxed); }
  uint64_t sfence_count() const { return sfence_count_.load(std::memory_order_relaxed); }
  // Counts bulk data traffic (StoreBytes/NtStoreBytes); word-sized stores
  // are not counted to keep the hot path free of atomic updates.
  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }
  void ResetCounters();

  const MediaProfile& media() const { return media_; }
  uint64_t clwb_ns() const { return clwb_ns_; }
  uint64_t sfence_ns() const { return sfence_ns_; }

 private:
  void CheckAccess(uint64_t off, size_t len, bool is_write) const;
  void TrackStore(uint64_t off, size_t len);
  void Observe(uint64_t off, size_t len, bool nontemporal) {
    if (observer_ != nullptr && len != 0) {
      observer_->OnStore(this, off, len, nontemporal);
    }
  }
  void ChargeWrite(size_t n);
  void ChargeRead(size_t n) const;

  struct LineState {
    alignas(8) uint8_t pre_image[kCachelineSize];
    bool written_back = false;  // Clwb'd but not yet fenced
  };

  uint8_t* base_ = nullptr;
  size_t size_ = 0;
  bool crash_tracking_ = false;
  MediaProfile media_;
  uint64_t clwb_ns_ = 0;
  uint64_t sfence_ns_ = 0;

  AccessHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  PersistObserver* observer_ = nullptr;

  mutable common::Mutex track_mu_;
  std::unordered_map<uint64_t, LineState> dirty_lines_ GUARDED_BY(track_mu_);
  // `crash_capture_` / `crash_journal_` mutate under track_mu_ but are read
  // unlocked through the const accessors once capture has stopped (the
  // journal is consumed single-threaded by crashmon), so they carry no
  // GUARDED_BY.
  bool crash_capture_ = false;
  std::vector<CrashEpoch> crash_journal_;

  std::atomic<uint64_t> clwb_count_{0};
  std::atomic<uint64_t> sfence_count_{0};
  std::atomic<uint64_t> bytes_written_{0};

  // Bandwidth token buckets (monotonic "next free" times, ns).
  mutable std::atomic<uint64_t> read_free_ns_{0};
  mutable std::atomic<uint64_t> write_free_ns_{0};
};

// Copy-on-write crash-image builder. Seeded with a device snapshot and its
// crash journal, it keeps one working image and advances it by replaying each
// epoch's persisted deltas, so enumerating every crash point of an N-epoch
// journal costs O(total journal lines) copies instead of N full images.
// Epochs must be visited in non-decreasing order (one builder per worker
// owning a contiguous epoch range).
class CrashImageBuilder {
 public:
  // `journal` must outlive the builder; `snapshot` is copied.
  CrashImageBuilder(const std::vector<uint8_t>& snapshot, const std::vector<CrashEpoch>* journal);

  // Advances the working image to the state persistent immediately after
  // journal epoch `epoch_idx` (-1 = the bare snapshot). Monotonic.
  void AdvanceTo(int64_t epoch_idx);
  int64_t epoch_idx() const { return epoch_idx_; }

  // The working image: the on-media state for a crash strictly between fence
  // `epoch_idx` and the next fence, with no further evictions.
  const std::vector<uint8_t>& image() const { return image_; }

  // Materializes a mid-epoch state into `out`: the working image plus the
  // subset of the next epoch's candidate lines (persisted followed by
  // in_flight, in journal order) selected by `pick(i)` — each selected line
  // persists with its fence-time content. Returns false (and leaves `out`
  // untouched) when there is no next epoch or no line was selected.
  bool MaterializeMidEpoch(const std::vector<bool>& pick, std::vector<uint8_t>* out) const;
  // Number of candidate lines in the next epoch (size `pick` accordingly).
  size_t NextEpochLineCount() const;

 private:
  std::vector<uint8_t> image_;
  const std::vector<CrashEpoch>* journal_;
  int64_t epoch_idx_ = -1;
};

}  // namespace nvm

#endif  // SRC_NVM_NVM_H_
