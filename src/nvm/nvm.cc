#include "src/nvm/nvm.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/common/clock.h"

namespace nvm {

namespace {
// The crash model treats any Clwb'd-but-unfenced line as still volatile
// (adversarial). See DESIGN.md §4 (nvm).
constexpr bool kStrictFenceModel = true;

DeviceInitHook g_init_hook = nullptr;
}  // namespace

void SetDeviceInitHook(DeviceInitHook hook) { g_init_hook = hook; }

MediaProfile MediaProfile::OptaneLike() {
  // Paper Table 1, scaled down 100x in bandwidth so a single-core host can
  // exercise the cap: what matters for the reproduction is the read/write
  // asymmetry (39 vs 14 GB/s; 305 vs 94 ns), not the absolute magnitude.
  MediaProfile p;
  p.read_latency_ns = 305;
  p.write_latency_ns = 94;
  p.read_gbps = 0.39;
  p.write_gbps = 0.14;
  return p;
}

MediaProfile MediaProfile::DramLike() {
  MediaProfile p;
  p.read_latency_ns = 81;
  p.write_latency_ns = 86;
  p.read_gbps = 1.15;
  p.write_gbps = 0.79;
  return p;
}

NvmDevice::NvmDevice(const Options& opts)
    : size_((opts.size_bytes + kPageSize - 1) & ~(kPageSize - 1)),
      crash_tracking_(opts.crash_tracking),
      media_(opts.media),
      clwb_ns_(opts.clwb_ns),
      sfence_ns_(opts.sfence_ns) {
  void* mem = nullptr;
  int rc = posix_memalign(&mem, kPageSize, size_);
  if (rc != 0 || mem == nullptr) {
    abort();
  }
  base_ = static_cast<uint8_t*>(mem);
  memset(base_, 0, size_);
  if (g_init_hook != nullptr) {
    g_init_hook(this);
  }
}

NvmDevice::~NvmDevice() {
  if (observer_ != nullptr) {
    observer_->OnDeviceGone(this);
  }
  free(base_);
}

void NvmDevice::CheckAccess(uint64_t off, size_t len, bool is_write) const {
  assert(off + len <= size_ && "NVM access out of range");
  if (hook_ != nullptr) {
    common::Err e = hook_(hook_ctx_, off, len, is_write);
    if (e != common::Err::kOk) {
      // The hook reports violations by throwing from inside (see src/mpk);
      // reaching here with a non-kOk code means an unrecoverable setup bug.
      abort();
    }
  }
}

void NvmDevice::TrackStore(uint64_t off, size_t len) {
  if (!crash_tracking_ || len == 0) {
    return;
  }
  uint64_t first = off / kCachelineSize;
  uint64_t last = (off + len - 1) / kCachelineSize;
  common::MutexLock lk(&track_mu_);
  for (uint64_t line = first; line <= last; line++) {
    auto [it, inserted] = dirty_lines_.try_emplace(line);
    if (inserted) {
      memcpy(it->second.pre_image, base_ + line * kCachelineSize, kCachelineSize);
      it->second.written_back = false;
    } else if (it->second.written_back) {
      // A line that was written back but not fenced is dirtied again: keep
      // the original pre-image; it is volatile again.
      it->second.written_back = false;
    }
  }
}

void NvmDevice::ChargeWrite(size_t n) {
  bytes_written_.fetch_add(n, std::memory_order_relaxed);
  if (!media_.enabled()) {
    return;
  }
  uint64_t cost = media_.write_latency_ns;
  if (media_.write_gbps > 0) {
    cost += static_cast<uint64_t>(static_cast<double>(n) / media_.write_gbps);
  }
  uint64_t now = common::NowNs();
  uint64_t prev = write_free_ns_.load(std::memory_order_relaxed);
  uint64_t start, finish;
  do {
    start = prev > now ? prev : now;
    finish = start + cost;
  } while (!write_free_ns_.compare_exchange_weak(prev, finish, std::memory_order_relaxed));
  while (common::NowNs() < finish) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

void NvmDevice::ChargeRead(size_t n) const {
  if (!media_.enabled()) {
    return;
  }
  uint64_t cost = media_.read_latency_ns;
  if (media_.read_gbps > 0) {
    cost += static_cast<uint64_t>(static_cast<double>(n) / media_.read_gbps);
  }
  uint64_t now = common::NowNs();
  uint64_t prev = read_free_ns_.load(std::memory_order_relaxed);
  uint64_t start, finish;
  do {
    start = prev > now ? prev : now;
    finish = start + cost;
  } while (!read_free_ns_.compare_exchange_weak(prev, finish, std::memory_order_relaxed));
  while (common::NowNs() < finish) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

void NvmDevice::Store8(uint64_t off, uint8_t v) {
  CheckAccess(off, 1, /*is_write=*/true);
  TrackStore(off, 1);
  Observe(off, 1, /*nontemporal=*/false);
  base_[off] = v;
}

void NvmDevice::Store16(uint64_t off, uint16_t v) {
  CheckAccess(off, 2, true);
  TrackStore(off, 2);
  Observe(off, 2, false);
  memcpy(base_ + off, &v, 2);
}

void NvmDevice::Store32(uint64_t off, uint32_t v) {
  CheckAccess(off, 4, true);
  TrackStore(off, 4);
  Observe(off, 4, false);
  memcpy(base_ + off, &v, 4);
}

void NvmDevice::Store64(uint64_t off, uint64_t v) {
  CheckAccess(off, 8, true);
  TrackStore(off, 8);
  Observe(off, 8, false);
  memcpy(base_ + off, &v, 8);
}

void NvmDevice::StoreBytes(uint64_t off, const void* src, size_t n) {
  CheckAccess(off, n, true);
  TrackStore(off, n);
  Observe(off, n, false);
  memcpy(base_ + off, src, n);
  ChargeWrite(n);
}

void NvmDevice::NtStoreBytes(uint64_t off, const void* src, size_t n) {
  CheckAccess(off, n, true);
  if (crash_tracking_ && n > 0) {
    // NT stores bypass the cache: model them as dirty lines that are already
    // written back (they become persistent at the next fence).
    uint64_t first = off / kCachelineSize;
    uint64_t last = (off + n - 1) / kCachelineSize;
    common::MutexLock lk(&track_mu_);
    for (uint64_t line = first; line <= last; line++) {
      auto [it, inserted] = dirty_lines_.try_emplace(line);
      if (inserted) {
        memcpy(it->second.pre_image, base_ + line * kCachelineSize, kCachelineSize);
      }
      it->second.written_back = true;
    }
  }
  Observe(off, n, /*nontemporal=*/true);
  memcpy(base_ + off, src, n);
  ChargeWrite(n);
}

uint64_t NvmDevice::AtomicLoad64(uint64_t off) const {
  assert(off % 8 == 0);
  return reinterpret_cast<const std::atomic<uint64_t>*>(base_ + off)
      ->load(std::memory_order_acquire);
}

void NvmDevice::AtomicStore64(uint64_t off, uint64_t v) {
  assert(off % 8 == 0);
  CheckAccess(off, 8, true);
  TrackStore(off, 8);
  Observe(off, 8, false);
  reinterpret_cast<std::atomic<uint64_t>*>(base_ + off)->store(v, std::memory_order_release);
}

bool NvmDevice::AtomicCas64(uint64_t off, uint64_t expected, uint64_t desired) {
  assert(off % 8 == 0);
  CheckAccess(off, 8, true);
  TrackStore(off, 8);
  bool ok = reinterpret_cast<std::atomic<uint64_t>*>(base_ + off)
                ->compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
  if (ok) {
    Observe(off, 8, false);
  }
  return ok;
}

uint64_t NvmDevice::AtomicFetchAdd64(uint64_t off, uint64_t delta) {
  assert(off % 8 == 0);
  CheckAccess(off, 8, true);
  TrackStore(off, 8);
  uint64_t old = reinterpret_cast<std::atomic<uint64_t>*>(base_ + off)
                     ->fetch_add(delta, std::memory_order_acq_rel);
  Observe(off, 8, false);
  return old;
}

void NvmDevice::LoadBytes(uint64_t off, void* dst, size_t n) const {
  CheckAccess(off, n, /*is_write=*/false);
  memcpy(dst, base_ + off, n);
  ChargeRead(n);
}

uint64_t NvmDevice::Load64(uint64_t off) const {
  CheckAccess(off, 8, false);
  uint64_t v;
  memcpy(&v, base_ + off, 8);
  ChargeRead(8);
  return v;
}

void NvmDevice::Clwb(uint64_t off, size_t len) {
  if (observer_ != nullptr && len != 0) {
    observer_->OnClwb(this, off, len);
  }
  const uint64_t lines = (len + kCachelineSize - 1) / kCachelineSize;
  clwb_count_.fetch_add(lines, std::memory_order_relaxed);
  if (clwb_ns_ != 0) {
    common::SpinNs(lines * clwb_ns_);
  }
  if (!crash_tracking_ || len == 0) {
    return;
  }
  uint64_t first = off / kCachelineSize;
  uint64_t last = (off + len - 1) / kCachelineSize;
  common::MutexLock lk(&track_mu_);
  for (uint64_t line = first; line <= last; line++) {
    auto it = dirty_lines_.find(line);
    if (it != dirty_lines_.end()) {
      it->second.written_back = true;
    }
  }
}

void NvmDevice::Sfence() {
  if (observer_ != nullptr) {
    observer_->OnSfence(this);
  }
  sfence_count_.fetch_add(1, std::memory_order_relaxed);
  if (sfence_ns_ != 0) {
    common::SpinNs(sfence_ns_);
  }
  if (!crash_tracking_) {
    return;
  }
  common::MutexLock lk(&track_mu_);
  if (crash_capture_) {
    CrashEpoch ep;
    ep.fence_seq = sfence_count_.load(std::memory_order_relaxed);
    for (const auto& [line, state] : dirty_lines_) {
      CrashEpoch::Line l;
      l.line = line;
      memcpy(l.data, base_ + line * kCachelineSize, kCachelineSize);
      (state.written_back ? ep.persisted : ep.in_flight).push_back(l);
    }
    auto by_line = [](const CrashEpoch::Line& a, const CrashEpoch::Line& b) {
      return a.line < b.line;
    };
    std::sort(ep.persisted.begin(), ep.persisted.end(), by_line);
    std::sort(ep.in_flight.begin(), ep.in_flight.end(), by_line);
    if (!ep.persisted.empty() || !ep.in_flight.empty()) {
      crash_journal_.push_back(std::move(ep));
    }
  }
  for (auto it = dirty_lines_.begin(); it != dirty_lines_.end();) {
    if (it->second.written_back) {
      it = dirty_lines_.erase(it);
    } else {
      ++it;
    }
  }
}

void NvmDevice::StartCrashCapture() {
  assert(crash_tracking_ && "crash capture requires crash_tracking");
  common::MutexLock lk(&track_mu_);
  dirty_lines_.clear();
  crash_journal_.clear();
  crash_capture_ = true;
}

void NvmDevice::StopCrashCapture() {
  common::MutexLock lk(&track_mu_);
  crash_capture_ = false;
}

void NvmDevice::SnapshotTo(std::vector<uint8_t>* out) const {
  out->resize(size_);
  common::MutexLock lk(&track_mu_);
  memcpy(out->data(), base_, size_);
}

void NvmDevice::RestoreFrom(const uint8_t* img, size_t len) {
  assert(len == size_ && "crash image size must match the device");
  common::MutexLock lk(&track_mu_);
  memcpy(base_, img, len);
  dirty_lines_.clear();
  crash_journal_.clear();
  crash_capture_ = false;
}

size_t NvmDevice::SimulateCrash() {
  if (observer_ != nullptr) {
    observer_->OnPersistEpoch(this);
  }
  common::MutexLock lk(&track_mu_);
  size_t rolled_back = 0;
  for (auto& [line, state] : dirty_lines_) {
    if (kStrictFenceModel || !state.written_back) {
      memcpy(base_ + line * kCachelineSize, state.pre_image, kCachelineSize);
      rolled_back++;
    }
  }
  dirty_lines_.clear();
  return rolled_back;
}

void NvmDevice::MarkAllPersistent() {
  if (observer_ != nullptr) {
    observer_->OnPersistEpoch(this);
  }
  common::MutexLock lk(&track_mu_);
  dirty_lines_.clear();
}

size_t NvmDevice::DirtyLineCountForTest() const {
  common::MutexLock lk(&track_mu_);
  return dirty_lines_.size();
}

void NvmDevice::ResetCounters() {
  clwb_count_ = 0;
  sfence_count_ = 0;
  bytes_written_ = 0;
}

CrashImageBuilder::CrashImageBuilder(const std::vector<uint8_t>& snapshot,
                                     const std::vector<CrashEpoch>* journal)
    : image_(snapshot), journal_(journal) {}

void CrashImageBuilder::AdvanceTo(int64_t epoch_idx) {
  assert(epoch_idx >= epoch_idx_ && "epochs must be visited in order");
  assert(epoch_idx < static_cast<int64_t>(journal_->size()));
  while (epoch_idx_ < epoch_idx) {
    epoch_idx_++;
    for (const auto& l : (*journal_)[epoch_idx_].persisted) {
      memcpy(image_.data() + l.line * kCachelineSize, l.data, kCachelineSize);
    }
  }
}

size_t CrashImageBuilder::NextEpochLineCount() const {
  const int64_t next = epoch_idx_ + 1;
  if (next >= static_cast<int64_t>(journal_->size())) {
    return 0;
  }
  const CrashEpoch& ep = (*journal_)[next];
  return ep.persisted.size() + ep.in_flight.size();
}

bool CrashImageBuilder::MaterializeMidEpoch(const std::vector<bool>& pick,
                                            std::vector<uint8_t>* out) const {
  const int64_t next = epoch_idx_ + 1;
  if (next >= static_cast<int64_t>(journal_->size())) {
    return false;
  }
  const CrashEpoch& ep = (*journal_)[next];
  bool any = false;
  for (size_t i = 0; i < pick.size(); i++) {
    if (pick[i]) {
      any = true;
      break;
    }
  }
  if (!any) {
    return false;
  }
  *out = image_;
  const size_t np = ep.persisted.size();
  for (size_t i = 0; i < pick.size(); i++) {
    if (!pick[i]) {
      continue;
    }
    const CrashEpoch::Line& l = i < np ? ep.persisted[i] : ep.in_flight[i - np];
    memcpy(out->data() + l.line * kCachelineSize, l.data, kCachelineSize);
  }
  return true;
}

}  // namespace nvm
