// Batched flush primitive for epoch-coalesced persistence (ROADMAP item #2).
//
// A FlushSet is a dirty-cacheline set: code on a deferred-durability path
// records the metadata lines it dirtied with Note() instead of issuing an
// immediate Clwb, and the durability point drains the set with FlushAll() +
// one Sfence. N small stores to the same cacheline within an epoch therefore
// cost one write-back instead of N — the mechanism behind the clwb/op drop
// the epoch batcher targets (ISSUE 7).
//
// The set is line-deduplicating and order-insensitive: Clwb order within an
// epoch does not matter, only that every noted line is written back before
// the fence. Capacity is bounded (kFlushSetCap lines); overflow falls back to
// flushing eagerly, which is always correct, merely unbatched. Instances are
// single-owner (guarded by the owning structure's lock); there is no internal
// synchronization.

#ifndef SRC_NVM_FLUSHSET_H_
#define SRC_NVM_FLUSHSET_H_

#include <cstddef>
#include <cstdint>

#include "src/nvm/nvm.h"

namespace nvm {

// Plenty for one staged-append epoch: <= kStagedMaxPages pointer-slot lines
// plus a handful of inode / allocator / index-page lines.
inline constexpr size_t kFlushSetCap = 96;

class FlushSet {
 public:
  // Records the cachelines covering [off, off+len) as needing write-back at
  // the next FlushAll. Duplicate lines coalesce. On capacity overflow the
  // range is written back immediately (correct, just not batched).
  void Note(NvmDevice* dev, uint64_t off, size_t len) {
    if (len == 0) {
      return;
    }
    const uint64_t first = off / kCachelineSize;
    const uint64_t last = (off + len - 1) / kCachelineSize;
    for (uint64_t line = first; line <= last; line++) {
      if (Contains(line)) {
        continue;
      }
      if (n_ == kFlushSetCap) {
        // Overflow spill: correct, just unbatched.
        // zofs-lint: allow(unfenced-clwb) — the owning epoch's durability point fences
        dev->Clwb(line * kCachelineSize, kCachelineSize);
        continue;
      }
      lines_[n_++] = line;
    }
  }

  // Writes back every noted line and empties the set. The caller issues the
  // Sfence (one per epoch, not per line).
  void FlushAll(NvmDevice* dev) {
    for (size_t i = 0; i < n_; i++) {
      // zofs-lint: allow(unfenced-clwb) — the durability point fences once after the drain
      dev->Clwb(lines_[i] * kCachelineSize, kCachelineSize);
    }
    n_ = 0;
  }

  void Clear() { n_ = 0; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

 private:
  bool Contains(uint64_t line) const {
    for (size_t i = 0; i < n_; i++) {
      if (lines_[i] == line) {
        return true;
      }
    }
    return false;
  }

  uint64_t lines_[kFlushSetCap];
  size_t n_ = 0;
};

}  // namespace nvm

#endif  // SRC_NVM_FLUSHSET_H_
