// Permission-survey machinery for the paper's motivation study (§2.3,
// Tables 3 and 4).
//
// The original study surveys real MySQL/PostgreSQL/DokuWiki data directories
// and an FSL Homes trace snapshot. Neither data set ships with this
// repository, so generators reproduce trees with the *published*
// distributions (file counts per type/permission, ownership, sizes), and the
// grouping algorithm from §2.3 is then run on them:
//
//   "If a file has the same permission as its parent, then it stays in the
//    same group as its parent. Otherwise, a new group is created... We
//    ignored the execution bit in file permissions."

#ifndef SRC_ANALYSIS_SURVEY_H_
#define SRC_ANALYSIS_SURVEY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace analysis {

enum class FType : uint8_t { kRegular, kSymlink, kDirectory };

struct FileRec {
  uint32_t parent;  // index into Tree::nodes; the root points at itself
  FType type;
  uint16_t perm;  // permission bits (no exec semantics applied here)
  uint32_t uid;
  uint32_t gid;
  uint64_t size;
};

struct Tree {
  // nodes[0] is the filesystem root (a directory). Children always appear
  // after their parent (generation is top-down), which the grouping pass
  // relies on.
  std::vector<FileRec> nodes;
};

// §2.3 application surveys (Table 3).
Tree GenMySql(uint64_t seed);
Tree GenPostgres(uint64_t seed);
Tree GenDokuwiki(uint64_t seed);

// FSL Homes snapshot (Table 4): 15 home directories, 726,751 files with the
// published per-permission counts; permission-cluster roots are laid out so
// the grouping algorithm faces the trace's structure.
Tree GenFslHomes(uint64_t seed);

// One row of a Table 3-style summary.
struct PermRow {
  FType type;
  uint16_t perm;
  uint32_t uid, gid;
  uint64_t count = 0;
  uint64_t bytes = 0;
};
std::vector<PermRow> SummarizeByPermission(const Tree& tree);

// Result of the §2.3 grouping pass.
struct GroupStats {
  uint64_t num_groups = 0;
  uint64_t largest_group_files = 0;
  uint64_t single_file_groups = 0;
  uint64_t single_file_group_files = 0;  // == single_file_groups, kept for clarity
  uint64_t total_files = 0;
  uint64_t min_bytes = 0;
  uint64_t max_bytes = 0;
  double avg_bytes = 0;
  // perm -> (groups, min, avg, max bytes)
  struct PerPerm {
    uint64_t groups = 0;
    uint64_t min_bytes = UINT64_MAX;
    uint64_t max_bytes = 0;
    double avg_bytes = 0;
  };
  std::map<uint16_t, PerPerm> per_perm;
};

// Runs the top-down grouping. Grouping key: (perm sans exec bits, uid, gid).
GroupStats GroupByPermission(const Tree& tree);

// ---------------------------------------------------------------------------
// MobiGen-style system-call traces (§2.3): how often do applications change
// permissions at runtime? The paper finds 0 chmod/chown in 64,282 Facebook
// syscalls and 16 chmods in 25,306 Twitter syscalls — all 16 in a fixed
// shadow-file pattern (create 600, write, chmod 660, rename over the real
// file).

enum class SysOp : uint8_t {
  kOpen,
  kRead,
  kWrite,
  kClose,
  kFsync,
  kStat,
  kUnlink,
  kRename,
  kChmod,
  kChown,
};

struct SysCall {
  SysOp op;
  uint32_t file;   // synthetic file identifier
  uint16_t mode;   // for kOpen(create)/kChmod
};

using SyscallTrace = std::vector<SysCall>;

// Regenerated traces with the published op counts and the Twitter trace's
// shadow-file chmod pattern.
SyscallTrace GenMobiGenFacebook(uint64_t seed);
SyscallTrace GenMobiGenTwitter(uint64_t seed);

struct TraceStats {
  uint64_t total = 0;
  uint64_t chmods = 0;
  uint64_t chowns = 0;
  // chmods that occur inside a create(600)/write*/chmod/rename shadow-file
  // sequence on one file.
  uint64_t shadow_pattern_chmods = 0;
};
TraceStats AnalyzeTrace(const SyscallTrace& trace);

}  // namespace analysis

#endif  // SRC_ANALYSIS_SURVEY_H_
