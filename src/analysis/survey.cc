#include "src/analysis/survey.h"

#include <algorithm>

#include "src/common/rand.h"

namespace analysis {

namespace {

// Adds a node, returning its index.
uint32_t Add(Tree* t, uint32_t parent, FType type, uint16_t perm, uint32_t uid, uint32_t gid,
             uint64_t size) {
  t->nodes.push_back(FileRec{parent, type, perm, uid, gid, size});
  return static_cast<uint32_t>(t->nodes.size() - 1);
}

// Splits `total` bytes into `n` pseudo-random sizes.
std::vector<uint64_t> SplitBytes(common::Rng* rng, uint64_t total, uint64_t n) {
  std::vector<uint64_t> sizes(n, 0);
  if (n == 0) {
    return sizes;
  }
  uint64_t base = total / n;
  uint64_t rem = total;
  for (uint64_t i = 0; i + 1 < n; i++) {
    uint64_t s = base / 2 + rng->Below(base + 1);
    s = std::min(s, rem);
    sizes[i] = s;
    rem -= s;
  }
  sizes[n - 1] = rem;
  return sizes;
}

uint16_t StripExec(uint16_t perm) { return perm & 0666; }

}  // namespace

// ---------------------------------------------------------------------------
// Table 3 generators (published distributions)

Tree GenMySql(uint64_t seed) {
  common::Rng rng(seed);
  Tree t;
  Add(&t, 0, FType::kDirectory, 0750, 970, 970, 4096);  // data dir root
  // 6 directories, 750, 970/970, 32KB total.
  std::vector<uint32_t> dirs;
  auto dsz = SplitBytes(&rng, 32 * 1024, 6);
  for (int i = 0; i < 6; i++) {
    dirs.push_back(Add(&t, 0, FType::kDirectory, 0750, 970, 970, dsz[i]));
  }
  // 358 regular files, 640, 970/970, 399 MB.
  auto fsz = SplitBytes(&rng, 399ull << 20, 358);
  for (int i = 0; i < 358; i++) {
    uint32_t parent = dirs[rng.Below(dirs.size())];
    Add(&t, parent, FType::kRegular, 0640, 970, 970, fsz[i]);
  }
  // The lone root-owned flag file ("debian-5.7.flag").
  Add(&t, 0, FType::kRegular, 0644, 0, 0, 0);
  return t;
}

Tree GenPostgres(uint64_t seed) {
  common::Rng rng(seed);
  Tree t;
  Add(&t, 0, FType::kDirectory, 0700, 969, 969, 4096);
  std::vector<uint32_t> dirs;
  auto dsz = SplitBytes(&rng, 128 * 1024, 28);
  for (int i = 0; i < 28; i++) {
    dirs.push_back(Add(&t, 0, FType::kDirectory, 0700, 969, 969, dsz[i]));
  }
  auto fsz = SplitBytes(&rng, 99ull << 20, 1807);
  for (int i = 0; i < 1807; i++) {
    uint32_t parent = dirs[rng.Below(dirs.size())];
    Add(&t, parent, FType::kRegular, 0600, 969, 969, fsz[i]);
  }
  return t;
}

Tree GenDokuwiki(uint64_t seed) {
  common::Rng rng(seed);
  Tree t;
  Add(&t, 0, FType::kDirectory, 0755, 33, 33, 4096);
  std::vector<uint32_t> dirs = {0};
  auto dsz = SplitBytes(&rng, 5ull << 20, 1035);
  for (int i = 0; i < 1035; i++) {
    uint32_t parent = dirs[rng.Below(dirs.size())];
    dirs.push_back(Add(&t, parent, FType::kDirectory, 0755, 33, 33, dsz[i]));
  }
  auto fsz = SplitBytes(&rng, 452ull << 20, 19941);
  for (int i = 0; i < 19941; i++) {
    uint32_t parent = dirs[rng.Below(dirs.size())];
    Add(&t, parent, FType::kRegular, 0644, 33, 33, fsz[i]);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Table 4 generator

Tree GenFslHomes(uint64_t seed) {
  // Published per-permission counts (Table 4), plus a singleton-group target
  // per class chosen so the totals reproduce the trace's 3,795 single-file
  // groups. Each home directory gets a 0700 "separator" directory so that
  // same-key clusters under it still start fresh groups, mirroring how the
  // trace's permission boundaries arise (e.g. 644 subtrees under 700 dirs).
  struct PermCount {
    uint16_t perm;
    uint64_t regular, symlink, dirs;
    uint64_t groups;      // Table 4 bottom row
    uint64_t singles;     // of those, singleton (one-file) groups
    uint64_t avg_bytes;   // Table 4 avg group size, drives data volume
  };
  static const PermCount kCounts[] = {
      {0644, 538538, 18, 65127, 1935, 1500, 46ull << 20},
      {0600, 105226, 0, 4021, 1174, 900, 222ull << 20},
      {0666, 233, 6468, 927, 365, 300, 474ull << 10},
      {0444, 3313, 0, 1099, 48, 20, 92ull << 20},
      {0660, 342, 0, 276, 15, 5, 118ull << 10},
      {0640, 921, 0, 33, 853, 820, 32ull << 10},
      {0664, 110, 0, 91, 51, 40, 348ull << 10},
      {0440, 8, 0, 0, 8, 8, 26ull << 10},
  };
  constexpr int kHomes = 15;
  // Paper: the largest group holds about 1/3 of all files.
  constexpr uint64_t kGiantGroupFiles = 240000;

  common::Rng rng(seed);
  Tree t;
  Add(&t, 0, FType::kDirectory, 0755, 0, 0, 4096);  // the share root
  std::vector<uint32_t> homes, separators;
  for (int h = 0; h < kHomes; h++) {
    uint32_t home = Add(&t, 0, FType::kDirectory, 0644, 1000 + h, 1000 + h, 4096);
    homes.push_back(home);
    // The separator carries a staff gid so no child class ever shares its
    // grouping key (exec bits are stripped, so a 0700 dir would collide with
    // the 0600 class).
    separators.push_back(Add(&t, home, FType::kDirectory, 0700, 1000 + h, 2000 + h, 4096));
  }

  for (const PermCount& pc : kCounts) {
    const uint64_t n_clusters = std::max<uint64_t>(1, pc.groups);
    // Singleton groups are lone regular files, so the class cannot have more
    // of them than it has regular files.
    const uint64_t n_singles = std::min({pc.singles, n_clusters, pc.regular});
    const uint64_t n_subtrees = n_clusters - n_singles;

    // Singleton groups: one lone file whose permission differs from its
    // parent (placed under a separator, which is 0700).
    for (uint64_t g = 0; g < n_singles; g++) {
      int h = static_cast<int>(rng.Below(kHomes));
      uint64_t size = 1 + rng.Below(2 * pc.avg_bytes / std::max<uint64_t>(1, n_clusters) + 1);
      Add(&t, separators[h], FType::kRegular, pc.perm, 1000 + h, 1000 + h, size);
    }
    if (n_subtrees == 0) {
      continue;
    }

    // Subtree clusters: a root directory of this permission under a
    // separator (different key => new group), interior directories, then
    // the class's files and symlinks spread across them.
    std::vector<std::vector<uint32_t>> cluster_dirs(n_subtrees);
    uint64_t dirs_left = pc.dirs > n_subtrees ? pc.dirs - n_subtrees : 0;
    for (uint64_t g = 0; g < n_subtrees; g++) {
      int h = static_cast<int>(rng.Below(kHomes));
      cluster_dirs[g].push_back(
          Add(&t, separators[h], FType::kDirectory, pc.perm, 1000 + h, 1000 + h, 4096));
    }
    while (dirs_left > 0) {
      uint64_t g = rng.Below(n_subtrees);
      uint32_t parent = cluster_dirs[g][rng.Below(cluster_dirs[g].size())];
      const FileRec& p = t.nodes[parent];
      cluster_dirs[g].push_back(Add(&t, parent, FType::kDirectory, pc.perm, p.uid, p.gid, 4096));
      dirs_left--;
    }

    uint64_t files = pc.regular > n_singles ? pc.regular - n_singles : 0;
    const uint64_t avg_file =
        files > 0 ? std::max<uint64_t>(1, pc.avg_bytes * n_subtrees / files) : 0;
    // One giant 644 cluster holds ~1/3 of the snapshot.
    uint64_t giant = (pc.perm == 0644 && files > kGiantGroupFiles) ? kGiantGroupFiles : 0;
    for (uint64_t f = 0; f < files; f++) {
      uint64_t g = f < giant ? 0 : rng.Below(n_subtrees);
      uint32_t parent = cluster_dirs[g][rng.Below(cluster_dirs[g].size())];
      const FileRec& p = t.nodes[parent];
      uint64_t size = avg_file / 2 + rng.Below(avg_file + 1);
      Add(&t, parent, FType::kRegular, pc.perm, p.uid, p.gid, size);
    }
    for (uint64_t s = 0; s < pc.symlink; s++) {
      uint64_t g = rng.Below(n_subtrees);
      uint32_t parent = cluster_dirs[g][rng.Below(cluster_dirs[g].size())];
      const FileRec& p = t.nodes[parent];
      Add(&t, parent, FType::kSymlink, pc.perm, p.uid, p.gid, 32);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Analyses

std::vector<PermRow> SummarizeByPermission(const Tree& tree) {
  std::map<std::tuple<FType, uint16_t, uint32_t, uint32_t>, PermRow> rows;
  for (const FileRec& f : tree.nodes) {
    auto key = std::make_tuple(f.type, f.perm, f.uid, f.gid);
    PermRow& r = rows[key];
    r.type = f.type;
    r.perm = f.perm;
    r.uid = f.uid;
    r.gid = f.gid;
    r.count++;
    r.bytes += f.size;
  }
  std::vector<PermRow> out;
  out.reserve(rows.size());
  for (auto& [k, v] : rows) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(),
            [](const PermRow& a, const PermRow& b) { return a.count > b.count; });
  return out;
}

GroupStats GroupByPermission(const Tree& tree) {
  // group id per node; nodes appear after their parents.
  std::vector<uint32_t> group_of(tree.nodes.size());
  struct Group {
    uint64_t files = 0;
    uint64_t bytes = 0;
    uint16_t perm = 0;
  };
  std::vector<Group> groups;

  auto key_eq = [&](const FileRec& a, const FileRec& b) {
    return StripExec(a.perm) == StripExec(b.perm) && a.uid == b.uid && a.gid == b.gid;
  };

  for (uint32_t i = 0; i < tree.nodes.size(); i++) {
    const FileRec& f = tree.nodes[i];
    if (i == 0) {
      groups.push_back(Group{});
      group_of[0] = 0;
    } else if (key_eq(f, tree.nodes[f.parent])) {
      group_of[i] = group_of[f.parent];
    } else {
      groups.push_back(Group{});
      group_of[i] = static_cast<uint32_t>(groups.size() - 1);
    }
    Group& g = groups[group_of[i]];
    g.files++;
    g.bytes += f.size;
    g.perm = StripExec(f.perm);
  }

  GroupStats st;
  st.num_groups = groups.size();
  st.total_files = tree.nodes.size();
  st.min_bytes = UINT64_MAX;
  uint64_t total_bytes = 0;
  for (const Group& g : groups) {
    st.largest_group_files = std::max(st.largest_group_files, g.files);
    if (g.files == 1) {
      st.single_file_groups++;
      st.single_file_group_files++;
    }
    st.min_bytes = std::min(st.min_bytes, g.bytes);
    st.max_bytes = std::max(st.max_bytes, g.bytes);
    total_bytes += g.bytes;

    auto& pp = st.per_perm[g.perm];
    pp.groups++;
    pp.min_bytes = std::min(pp.min_bytes, g.bytes);
    pp.max_bytes = std::max(pp.max_bytes, g.bytes);
    pp.avg_bytes += static_cast<double>(g.bytes);  // sum; normalised below
  }
  st.avg_bytes = groups.empty() ? 0 : static_cast<double>(total_bytes) / groups.size();
  for (auto& [perm, pp] : st.per_perm) {
    if (pp.groups > 0) {
      pp.avg_bytes /= static_cast<double>(pp.groups);
    }
  }
  return st;
}

// ---------------------------------------------------------------------------
// MobiGen traces

namespace {

// Emits a plausible I/O burst on one file (the bulk of both traces).
void EmitBurst(common::Rng* rng, SyscallTrace* t, uint32_t file, uint64_t budget) {
  t->push_back({SysOp::kOpen, file, 0644});
  uint64_t body = budget > 2 ? budget - 2 : 0;
  for (uint64_t i = 0; i < body; i++) {
    double roll = rng->NextDouble();
    SysOp op = roll < 0.45   ? SysOp::kRead
               : roll < 0.80 ? SysOp::kWrite
               : roll < 0.90 ? SysOp::kStat
                             : SysOp::kFsync;
    t->push_back({op, file, 0});
  }
  t->push_back({SysOp::kClose, file, 0});
}

}  // namespace

SyscallTrace GenMobiGenFacebook(uint64_t seed) {
  common::Rng rng(seed);
  SyscallTrace t;
  t.reserve(64282);
  uint32_t file = 0;
  while (t.size() < 64282) {
    EmitBurst(&rng, &t, file++ % 400, 2 + rng.Below(40));
  }
  t.resize(64282);
  return t;
}

SyscallTrace GenMobiGenTwitter(uint64_t seed) {
  common::Rng rng(seed);
  SyscallTrace t;
  t.reserve(25306);
  uint32_t file = 1000;
  // 16 shadow-file updates, spread regularly through the trace (the paper:
  // "used regularly in a fixed pattern").
  const uint64_t target = 25306;
  uint64_t next_shadow = target / 17;
  int shadows_left = 16;
  while (t.size() < target) {
    if (shadows_left > 0 && t.size() >= next_shadow) {
      // create shadow with 600, write, chmod to 660, rename over the real
      // file (the SQLite-style safe-replace idiom the paper observed).
      uint32_t shadow = file++;
      t.push_back({SysOp::kOpen, shadow, 0600});
      uint64_t writes = 1 + rng.Below(6);
      for (uint64_t i = 0; i < writes; i++) {
        t.push_back({SysOp::kWrite, shadow, 0});
      }
      t.push_back({SysOp::kFsync, shadow, 0});
      t.push_back({SysOp::kChmod, shadow, 0660});
      t.push_back({SysOp::kRename, shadow, 0});
      t.push_back({SysOp::kClose, shadow, 0});
      shadows_left--;
      next_shadow += target / 17;
      continue;
    }
    EmitBurst(&rng, &t, rng.Below(300), 2 + rng.Below(30));
  }
  t.resize(target);
  return t;
}

TraceStats AnalyzeTrace(const SyscallTrace& trace) {
  TraceStats st;
  st.total = trace.size();
  // Per-file state machine for the shadow pattern:
  //   open(0600) -> writes/fsync -> chmod -> rename.
  std::map<uint32_t, int> state;  // 0 none, 1 created 600, 2 written, 3 chmod'ed
  for (const SysCall& c : trace) {
    switch (c.op) {
      case SysOp::kOpen:
        state[c.file] = c.mode == 0600 ? 1 : 0;
        break;
      case SysOp::kWrite:
      case SysOp::kFsync: {
        auto it = state.find(c.file);
        if (it != state.end() && it->second >= 1) {
          it->second = 2;
        }
        break;
      }
      case SysOp::kChmod: {
        st.chmods++;
        auto it = state.find(c.file);
        if (it != state.end() && it->second == 2) {
          it->second = 3;
        }
        break;
      }
      case SysOp::kRename: {
        auto it = state.find(c.file);
        if (it != state.end() && it->second == 3) {
          st.shadow_pattern_chmods++;
          it->second = 0;
        }
        break;
      }
      case SysOp::kChown:
        st.chowns++;
        break;
      default:
        break;
    }
  }
  return st;
}

}  // namespace analysis
