// zofs_lint — domain-specific static checks for the ZoFS tree.
//
// Clang's -Wthread-safety proves lock/data discipline where capabilities are
// annotated (src/common/mutex.h), but several invariants of this codebase
// are not expressible as capabilities:
//
//   raw-nvm-deref   NvmDevice::base() hands out a raw pointer into simulated
//                   NVM, bypassing the validated accessor set (Read/Write/
//                   As<>/Contains). Outside src/nvm every use must be
//                   individually justified.
//   unfenced-clwb   A Clwb writes lines back but nothing orders them: every
//                   function that issues Clwb must reach an Sfence or
//                   PersistRange later in the same function, or carry a
//                   deferred-durability suppression explaining which caller
//                   fences.
//   naked-wrpkru    PKRU is only written through the RAII window types in
//                   src/mpk (AccessWindow / KernelEntry); a bare WrPkru
//                   elsewhere can leak an open protection window (paper
//                   guideline G1).
//   lock-order      (a) no shard lock may be acquired while retire_mu_ is
//                   held (retire_mu_ is a leaf lock, taken under the shard
//                   lock in RetireAllocatorLocked); (b) no KernFS call
//                   (kfs_->...) while a shard lock is held — kernel entry
//                   under a user-space lock serialises unrelated coffers.
//   raw-mutex       std::mutex / std::shared_mutex / std::lock_guard / ...
//                   must not be declared or used outside src/common/mutex.h:
//                   a raw lock opts out of both the capability analysis and
//                   this lint.
//   staged-append-relink
//                   The staged-append fast path (ISSUE 7) allocates pages
//                   with AllocPageStaged and installs block pointers with
//                   volatile stores; a crash is only recoverable because the
//                   relink intent (PublishStageIntent) is persisted before
//                   any fence that could make the partial state durable. A
//                   function that stages pages and then fences without
//                   publishing the intent breaks the crash protocol.
//   direct-kernel-entry
//                   KernelEntry is the metered user->kernel crossing. Only
//                   the KernFS entry points (src/kernfs/kernfs.cc) and the
//                   batching channel (src/kernfs/channel.cc) may construct
//                   one: a KernelEntry anywhere else bypasses the crossing
//                   accounting (foreground/background split, per-thread
//                   counters) and the channel's batching, and nests inside
//                   an already-open crossing — which aborts under
//                   ZOFS_AUDIT=1.
//   unchecked-inode-lock
//                   InodeLock is a lease, not a mutex: acquisition can fail
//                   (a live holder outlasts the wait bound) and can steal a
//                   dead holder's lease. A function that constructs an
//                   InodeLock and never consults ok() proceeds as if locked
//                   when acquisition may have failed — racing the live
//                   holder it could not wait out.
//   direct-key-assign
//                   The MPK key-virtualization layer (src/mpk/keyclass.*) is
//                   the ONE sanctioned writer of the physical-key bitmap
//                   (key_used_), and KernFS's SetPageKeyLocked is the one
//                   sanctioned page-tag sink (page_keys_). Assigning either
//                   anywhere else bypasses the protection-class refcounts,
//                   the published class→key table, and the LRU key window —
//                   exactly the unaccounted key traffic that caused the
//                   pre-virtualization eviction storms.
//
// The checker is deliberately token/scope-level (no libClang in the build
// image): it strips comments/strings, blanks preprocessor lines, tracks
// brace scopes and classifies blocks (namespace/type/function), then matches
// rule patterns per function. False positives are silenced in place:
//
//   // zofs-lint: allow(rule[, rule...]) — why this site is correct
//
// on the offending line or the line directly above. A standalone suppression
// comment before the first code line of a file applies file-wide (used by
// src/common/mutex.h, which *is* the sanctioned raw-mutex site).

#ifndef SRC_ANALYSIS_LINT_LINT_H_
#define SRC_ANALYSIS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace analysis::lint {

inline constexpr const char* kRuleRawNvmDeref = "raw-nvm-deref";
inline constexpr const char* kRuleUnfencedClwb = "unfenced-clwb";
inline constexpr const char* kRuleNakedWrpkru = "naked-wrpkru";
inline constexpr const char* kRuleLockOrder = "lock-order";
inline constexpr const char* kRuleRawMutex = "raw-mutex";
inline constexpr const char* kRuleStagedAppendRelink = "staged-append-relink";
inline constexpr const char* kRuleDirectKernelEntry = "direct-kernel-entry";
inline constexpr const char* kRuleUncheckedInodeLock = "unchecked-inode-lock";
inline constexpr const char* kRuleDirectKeyAssign = "direct-key-assign";

// All rule names, for --list-rules and suppression validation.
const std::vector<std::string>& AllRules();

struct Diagnostic {
  std::string file;  // as passed in (repo-relative when linting a tree)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  // "file:line: rule: message" — stable, greppable.
  std::string ToString() const;
};

// Lints one translation unit. `path` determines the directory exemptions
// (src/nvm for raw-nvm-deref, src/mpk for naked-wrpkru) and is echoed into
// diagnostics; `content` is the file body.
std::vector<Diagnostic> LintSource(const std::string& path, std::string_view content);

// Recursively lints every *.h / *.cc under `root` (skipping build*/ and
// hidden directories). Diagnostics come back sorted by file then line.
// Returns an empty vector and sets *error for an unreadable root.
std::vector<Diagnostic> LintTree(const std::string& root, std::string* error = nullptr);

}  // namespace analysis::lint

#endif  // SRC_ANALYSIS_LINT_LINT_H_
