#include "src/analysis/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace analysis::lint {

namespace {

// ---- pass 1: comment/string stripping + suppression harvesting ----------

struct Stripped {
  std::vector<std::string> lines;              // code-only text, 0-based
  std::map<int, std::set<std::string>> allow;  // 1-based line -> rules
  std::set<std::string> file_allow;            // rules allowed file-wide
};

// Parses "zofs-lint: allow(a, b)" out of one comment's text.
std::set<std::string> ParseAllow(std::string_view comment) {
  std::set<std::string> rules;
  const std::string_view marker = "zofs-lint: allow(";
  size_t at = comment.find(marker);
  if (at == std::string_view::npos) {
    return rules;
  }
  size_t open = at + marker.size();
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) {
    return rules;
  }
  std::string rule;
  for (size_t i = open; i <= close; i++) {
    char c = i < close ? comment[i] : ',';
    if (c == ',' ) {
      if (!rule.empty()) {
        rules.insert(rule);
        rule.clear();
      }
    } else if (!isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
  return rules;
}

Stripped Strip(std::string_view src) {
  Stripped out;
  enum State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = kCode;
  std::string code;       // current line, code only
  std::string comment;    // current line, comment text only
  bool line_has_code = false;
  bool file_has_code = false;  // any code line seen yet (for file_allow)
  std::string raw_delim;  // raw string closing delimiter  )delim"
  int line = 1;

  auto end_line = [&]() {
    // Preprocessor directives (include guards, #includes) do not count as
    // "code" for the file-wide-suppression rule below.
    size_t first = code.find_first_not_of(" \t");
    if (first != std::string::npos && code[first] == '#') {
      line_has_code = false;
    }
    // A comment-only line before the first code in the file widens its
    // suppression to the whole file.
    std::set<std::string> rules = ParseAllow(comment);
    if (!rules.empty()) {
      if (!file_has_code && !line_has_code) {
        out.file_allow.insert(rules.begin(), rules.end());
      }
      out.allow[line].insert(rules.begin(), rules.end());
    }
    if (line_has_code) {
      file_has_code = true;
    }
    out.lines.push_back(code);
    code.clear();
    comment.clear();
    line_has_code = false;
    line++;
  };

  for (size_t i = 0; i < src.size(); i++) {
    char c = src[i];
    char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == kLineComment) {
        st = kCode;
      }
      end_line();
      continue;
    }
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') {
          st = kLineComment;
          i++;
        } else if (c == '/' && n == '*') {
          st = kBlockComment;
          i++;
        } else if (c == 'R' && n == '"' &&
                   (code.empty() || !(isalnum(static_cast<unsigned char>(code.back())) ||
                                      code.back() == '_'))) {
          // R"delim( ... )delim"
          size_t p = i + 2;
          std::string delim;
          while (p < src.size() && src[p] != '(' && src[p] != '\n') {
            delim.push_back(src[p++]);
          }
          raw_delim = ")" + delim + "\"";
          st = kRawString;
          code.push_back(' ');
          line_has_code = true;
          i = p;  // at '(' (or newline, handled next loop)
        } else if (c == '"') {
          st = kString;
          code.push_back(' ');
          line_has_code = true;
        } else if (c == '\'') {
          st = kChar;
          code.push_back(' ');
          line_has_code = true;
        } else {
          code.push_back(c);
          if (!isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case kLineComment:
        comment.push_back(c);
        break;
      case kBlockComment:
        if (c == '*' && n == '/') {
          st = kCode;
          i++;
        } else {
          comment.push_back(c);
        }
        break;
      case kString:
        if (c == '\\') {
          i++;
        } else if (c == '"') {
          st = kCode;
        }
        break;
      case kChar:
        if (c == '\\') {
          i++;
        } else if (c == '\'') {
          st = kCode;
        }
        break;
      case kRawString:
        if (c == raw_delim[0] && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = kCode;
        }
        break;
    }
  }
  end_line();

  // Blank preprocessor directives (and their backslash continuations):
  // macro bodies contain unbalanced-looking braces/parens the scope tracker
  // must not see.
  bool continued = false;
  for (std::string& l : out.lines) {
    size_t first = l.find_first_not_of(" \t");
    bool is_pp = continued || (first != std::string::npos && l[first] == '#');
    size_t last = l.find_last_not_of(" \t");
    continued = is_pp && last != std::string::npos && l[last] == '\\';
    if (is_pp) {
      l.clear();
    }
  }
  return out;
}

// ---- pass 2: tokens -----------------------------------------------------

struct Token {
  std::string text;
  int line;       // 1-based
  bool is_ident;
};

std::vector<Token> Tokenize(const std::vector<std::string>& lines) {
  std::vector<Token> toks;
  for (size_t li = 0; li < lines.size(); li++) {
    const std::string& l = lines[li];
    for (size_t i = 0; i < l.size();) {
      char c = l[i];
      if (isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < l.size() && (isalnum(static_cast<unsigned char>(l[j])) || l[j] == '_')) {
          j++;
        }
        toks.push_back({l.substr(i, j - i), static_cast<int>(li + 1), true});
        i = j;
      } else if (isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < l.size() && (isalnum(static_cast<unsigned char>(l[j])) || l[j] == '.' ||
                                l[j] == '\'')) {
          j++;
        }
        toks.push_back({l.substr(i, j - i), static_cast<int>(li + 1), false});
        i = j;
      } else {
        toks.push_back({std::string(1, c), static_cast<int>(li + 1), false});
        i++;
      }
    }
  }
  return toks;
}

// ---- pass 3: scope-aware rule matching ----------------------------------

enum class BlockKind { kNamespace, kType, kFunc, kCtrl };

struct HeldLock {
  std::string name;  // guard variable ("" for retire_mu_ scopes)
  int depth;         // block-stack depth at declaration; dies when depth drops
  int line;          // acquisition line
  bool is_retire;    // true: retire_mu_ scope, false: shard lock
  bool released = false;
};

struct FuncCtx {
  int last_clwb_tok = -1;
  int last_clwb_line = 0;
  int last_fence_tok = -1;
  // staged-append-relink: last staging write / intent publication seen.
  int staged_tok = -1;
  int staged_line = 0;
  int intent_tok = -1;
  std::vector<HeldLock> locks;
  // unchecked-inode-lock: declared lease guards whose ok() has not been
  // consulted yet (name, declaration line).
  std::vector<std::pair<std::string, int>> inode_locks;
};

bool PathUnder(const std::string& path, const std::string& dir) {
  return path.find(dir) != std::string::npos;
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> rules = {
      kRuleRawNvmDeref, kRuleUnfencedClwb,       kRuleNakedWrpkru,
      kRuleLockOrder,   kRuleRawMutex,           kRuleStagedAppendRelink,
      kRuleDirectKernelEntry, kRuleUncheckedInodeLock, kRuleDirectKeyAssign,
  };
  return rules;
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": " << rule << ": " << message;
  return os.str();
}

std::vector<Diagnostic> LintSource(const std::string& path, std::string_view content) {
  Stripped s = Strip(content);
  std::vector<Token> toks = Tokenize(s.lines);
  std::vector<Diagnostic> diags;

  auto suppressed = [&](const char* rule, int line) {
    if (s.file_allow.count(rule) != 0) {
      return true;
    }
    for (int l : {line, line - 1}) {
      auto it = s.allow.find(l);
      if (it != s.allow.end() && it->second.count(rule) != 0) {
        return true;
      }
    }
    return false;
  };
  auto report = [&](const char* rule, int line, std::string msg) {
    if (!suppressed(rule, line)) {
      diags.push_back({path, line, rule, std::move(msg)});
    }
  };

  const bool nvm_exempt = PathUnder(path, "src/nvm/") || PathUnder(path, "src\\nvm\\");
  const bool mpk_exempt = PathUnder(path, "src/mpk/") || PathUnder(path, "src\\mpk\\");
  // The only sanctioned crossing sites: the KernFS entry points themselves
  // and the batching channel. (mpk stays exempt too — it defines the type.)
  const bool kernel_entry_exempt =
      PathUnder(path, "src/kernfs/kernfs.cc") || PathUnder(path, "src\\kernfs\\kernfs.cc") ||
      PathUnder(path, "src/kernfs/channel.cc") || PathUnder(path, "src\\kernfs\\channel.cc") ||
      mpk_exempt;

  std::vector<BlockKind> blocks;
  std::vector<FuncCtx> funcs;
  size_t stmt_start = 0;  // token index where the current statement begins

  auto ident_at = [&](size_t i, const char* name) {
    return i < toks.size() && toks[i].is_ident && toks[i].text == name;
  };
  auto punct_at = [&](size_t i, char c) {
    return i < toks.size() && !toks[i].is_ident && toks[i].text.size() == 1 && toks[i].text[0] == c;
  };
  auto stmt_contains = [&](size_t upto, const char* name) {
    for (size_t k = stmt_start; k < upto; k++) {
      if (toks[k].is_ident && toks[k].text == name) {
        return true;
      }
    }
    return false;
  };

  static const std::set<std::string> kStdLockTypes = {
      "mutex",       "shared_mutex", "recursive_mutex", "timed_mutex",
      "lock_guard",  "unique_lock",  "shared_lock",     "scoped_lock",
      "recursive_timed_mutex"};
  static const std::set<std::string> kTypeKeywords = {"namespace", "class", "struct", "union",
                                                      "enum"};

  for (size_t i = 0; i < toks.size(); i++) {
    const Token& t = toks[i];

    if (!t.is_ident) {
      if (t.text == "{") {
        // Classify the block from its header (the current statement).
        BlockKind kind = BlockKind::kCtrl;
        bool has_type_kw = false;
        bool has_ns = false;
        bool has_paren = false;
        for (size_t k = stmt_start; k < i; k++) {
          if (toks[k].is_ident && toks[k].text == "namespace") {
            has_ns = true;
          } else if (toks[k].is_ident && kTypeKeywords.count(toks[k].text) != 0) {
            has_type_kw = true;
          } else if (!toks[k].is_ident && toks[k].text == "(") {
            has_paren = true;
          }
        }
        BlockKind parent =
            blocks.empty() ? BlockKind::kNamespace : blocks.back();
        if (has_ns) {
          kind = BlockKind::kNamespace;
        } else if (has_type_kw) {
          kind = BlockKind::kType;
        } else if ((parent == BlockKind::kNamespace || parent == BlockKind::kType) && has_paren) {
          kind = BlockKind::kFunc;
          funcs.emplace_back();
        } else {
          kind = BlockKind::kCtrl;
        }
        blocks.push_back(kind);
        stmt_start = i + 1;
        continue;
      }
      if (t.text == "}") {
        if (!blocks.empty()) {
          BlockKind kind = blocks.back();
          blocks.pop_back();
          if (kind == BlockKind::kFunc && !funcs.empty()) {
            FuncCtx& f = funcs.back();
            if (f.last_clwb_tok >= 0 && f.last_fence_tok < f.last_clwb_tok) {
              report(kRuleUnfencedClwb, f.last_clwb_line,
                     "Clwb with no Sfence/PersistRange later in this function; annotate "
                     "deferred durability if a caller fences");
            }
            for (const auto& [name, line] : f.inode_locks) {
              report(kRuleUncheckedInodeLock, line,
                     "InodeLock '" + name + "' constructed but ok() never consulted; "
                     "acquisition is a lease that can fail against a live holder — check "
                     "ok() before touching the protected inode");
            }
            funcs.pop_back();
          } else if (!funcs.empty()) {
            // Locks declared in the closed block go out of scope.
            auto& locks = funcs.back().locks;
            int depth = static_cast<int>(blocks.size());
            locks.erase(std::remove_if(locks.begin(), locks.end(),
                                       [&](const HeldLock& h) { return h.depth > depth; }),
                        locks.end());
          }
        }
        stmt_start = i + 1;
        continue;
      }
      if (t.text == ";") {
        stmt_start = i + 1;
        continue;
      }
      continue;
    }

    // ---- identifier-driven rules ----
    const bool in_func = !funcs.empty();

    // raw-mutex: std::mutex and friends anywhere (wrapper header is
    // file-allowed).
    if (t.text == "std" && punct_at(i + 1, ':') && punct_at(i + 2, ':') && i + 3 < toks.size() &&
        toks[i + 3].is_ident && kStdLockTypes.count(toks[i + 3].text) != 0) {
      report(kRuleRawMutex, t.line,
             "std::" + toks[i + 3].text + " outside src/common/mutex.h; use the annotated "
             "common:: wrappers");
    }

    // raw-nvm-deref: base() outside src/nvm.
    if (!nvm_exempt && t.text == "base" && punct_at(i + 1, '(')) {
      report(kRuleRawNvmDeref, t.line,
             "raw NvmDevice::base() pointer outside src/nvm; use the validated accessors "
             "or justify with a suppression");
    }

    // naked-wrpkru: WrPkru() outside src/mpk.
    if (!mpk_exempt && t.text == "WrPkru" && punct_at(i + 1, '(')) {
      report(kRuleNakedWrpkru, t.line,
             "bare WrPkru outside src/mpk; open/close protection windows via the RAII "
             "window types");
    }

    if (!in_func) {
      continue;
    }
    FuncCtx& f = funcs.back();

    // direct-kernel-entry: constructing the metered crossing (`KernelEntry
    // name(...)`) anywhere but the KernFS entry points / channel batch path.
    // Scope-gated to functions so the class declaration and member uses in
    // headers do not fire.
    if (!kernel_entry_exempt && t.text == "KernelEntry" && i + 1 < toks.size() &&
        toks[i + 1].is_ident && punct_at(i + 2, '(')) {
      report(kRuleDirectKernelEntry, t.line,
             "KernelEntry constructed outside src/kernfs/{kernfs,channel}.cc; route the "
             "crossing through a KernFS entry point or the thread's channel so it is "
             "metered (and batched) exactly once");
    }

    // direct-key-assign: an assignment into the physical-key bitmap
    // (`key_used_[k] = ...`) or a process's page-tag table
    // (`page_keys_[p] = ...`) — plain, compound, or atomic .store() — outside
    // src/mpk. KeyClassTable is the one sanctioned writer: a direct write
    // bypasses the class refcounts, the published class->key table and the
    // LRU key window. The single kernel page-tag sink in kernfs.cc carries
    // the one suppression. Scope-gated to functions so member declarations
    // with array extents (`bool key_used_[kNumKeys] = {...}`) do not fire.
    if (!mpk_exempt && (t.text == "key_used_" || t.text == "page_keys_") &&
        punct_at(i + 1, '[')) {
      size_t j = i + 1;
      int depth = 0;
      for (; j < toks.size(); j++) {
        if (punct_at(j, '[')) {
          depth++;
        } else if (punct_at(j, ']')) {
          if (--depth == 0) {
            break;
          }
        }
      }
      if (j < toks.size()) {
        const size_t a = j + 1;  // first token after the matching ']'
        const bool assigns =
            (punct_at(a, '=') && !punct_at(a + 1, '=')) ||
            ((punct_at(a, '|') || punct_at(a, '&') || punct_at(a, '^') || punct_at(a, '+') ||
              punct_at(a, '-')) &&
             punct_at(a + 1, '=')) ||
            (punct_at(a, '.') && ident_at(a + 1, "store"));
        if (assigns) {
          report(kRuleDirectKeyAssign, t.line,
                 "direct write to " + t.text + " outside src/mpk; route key assignment "
                 "through KeyClassTable (the one sanctioned writer) so class refcounts, "
                 "the published class->key table and the LRU key window stay coherent");
        }
      }
    }

    // unchecked-inode-lock bookkeeping: `InodeLock name(...)` declares a
    // lease guard (the qualified ctor definition `InodeLock::InodeLock` and
    // reference parameters `const InodeLock&` do not match); `name.ok()`
    // anywhere later in the function discharges it. Like unfenced-clwb, the
    // declaration line carries its own suppression even though the
    // diagnostic is decided at function end.
    if (t.text == "InodeLock" && i + 1 < toks.size() && toks[i + 1].is_ident &&
        punct_at(i + 2, '(')) {
      if (!suppressed(kRuleUncheckedInodeLock, t.line)) {
        f.inode_locks.emplace_back(toks[i + 1].text, t.line);
      }
    }
    if (t.text == "ok" && i >= 2 && punct_at(i - 1, '.') && toks[i - 2].is_ident &&
        punct_at(i + 1, '(')) {
      const std::string& checked = toks[i - 2].text;
      auto& v = f.inode_locks;
      v.erase(std::remove_if(v.begin(), v.end(),
                             [&](const auto& l) { return l.first == checked; }),
              v.end());
    }

    // unfenced-clwb bookkeeping.
    if (t.text == "Clwb" && punct_at(i + 1, '(')) {
      // A Clwb line can carry its own suppression even though the diagnostic
      // is only decided at function end.
      if (!suppressed(kRuleUnfencedClwb, t.line)) {
        f.last_clwb_tok = static_cast<int>(i);
        f.last_clwb_line = t.line;
      }
    }
    if ((t.text == "Sfence" || t.text == "PersistRange") && punct_at(i + 1, '(')) {
      f.last_fence_tok = static_cast<int>(i);
      // staged-append-relink: a fence makes partially-installed staged state
      // durable; the relink intent must already be published by then.
      if (f.staged_tok >= 0 && f.intent_tok < f.staged_tok) {
        report(kRuleStagedAppendRelink, t.line,
               "fence after staged-append writes (AllocPageStaged at line " +
                   std::to_string(f.staged_line) +
                   ") with no published relink intent; call PublishStageIntent before "
                   "fencing or annotate why this fence cannot expose staged state");
      }
      f.staged_tok = -1;  // one diagnostic per staging batch
    }

    // staged-append-relink bookkeeping.
    if (t.text == "AllocPageStaged" && punct_at(i + 1, '(')) {
      f.staged_tok = static_cast<int>(i);
      f.staged_line = t.line;
    }
    if (t.text == "PublishStageIntent") {
      f.intent_tok = static_cast<int>(i);
    }

    // lock-order bookkeeping.
    if (t.text == "ShardReadLock" || t.text == "ShardWriteLock") {
      if (ident_at(i + 1, "lk") || (i + 1 < toks.size() && toks[i + 1].is_ident)) {
        for (const HeldLock& h : f.locks) {
          if (h.is_retire && !h.released) {
            report(kRuleLockOrder, t.line,
                   "shard lock acquired while holding retire_mu_ (locked at line " +
                       std::to_string(h.line) + "); retire_mu_ is a leaf lock");
            break;
          }
        }
        f.locks.push_back({toks[i + 1].text, static_cast<int>(blocks.size()), t.line,
                           /*is_retire=*/false});
      }
    }
    if (t.text == "retire_mu_" && stmt_contains(i, "MutexLock")) {
      f.locks.push_back({"", static_cast<int>(blocks.size()), t.line, /*is_retire=*/true});
    }

    // Early release: <guard>.Unlock()
    if (t.text == "Unlock" && i >= 2 && punct_at(i - 1, '.') && toks[i - 2].is_ident) {
      for (auto it = f.locks.rbegin(); it != f.locks.rend(); ++it) {
        if (!it->is_retire && it->name == toks[i - 2].text && !it->released) {
          it->released = true;
          break;
        }
      }
    }

    // Kernel entry under a shard lock.
    if (t.text == "kfs_" && punct_at(i + 1, '-') && punct_at(i + 2, '>')) {
      for (const HeldLock& h : f.locks) {
        if (!h.is_retire && !h.released) {
          report(kRuleLockOrder, t.line,
                 "KernFS call while holding a shard lock (acquired at line " +
                     std::to_string(h.line) + "); drop the lock before entering the kernel");
          break;
        }
      }
    }
  }

  return diags;
}

std::vector<Diagnostic> LintTree(const std::string& root, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> diags;
  std::error_code ec;
  fs::directory_entry rootent(root, ec);
  if (ec || !rootent.exists()) {
    if (error != nullptr) {
      *error = "zofs_lint: cannot open '" + root + "'";
    }
    return diags;
  }

  std::vector<std::string> files;
  if (rootent.is_regular_file()) {
    files.push_back(root);
  } else {
    for (fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied,
                                             ec), end;
         it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      const fs::path& p = it->path();
      std::string name = p.filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      std::string ext = p.extension().string();
      if (ext == ".cc" || ext == ".h") {
        files.push_back(p.generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      continue;
    }
    std::ostringstream body;
    body << in.rdbuf();
    std::vector<Diagnostic> d = LintSource(f, body.str());
    diags.insert(diags.end(), d.begin(), d.end());
  }
  return diags;
}

}  // namespace analysis::lint
