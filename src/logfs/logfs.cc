#include "src/logfs/logfs.h"

#include <algorithm>
#include <cstring>

#include "src/audit/audit.h"
#include "src/common/clock.h"
#include "src/mpk/mpk.h"

namespace logfs {

using kernfs::PageRun;

LogFs::LogFs(kernfs::KernFs* kfs, kernfs::Process* proc, Options opts)
    : kfs_(kfs), proc_(proc), opts_(opts) {
  proc_->BindCurrentThread();
  kfs_->FsMount(*proc_);
  // No concurrent access is possible during construction; the lock is taken
  // anyway so MountOrFormat's REQUIRES(mu_) contract holds analysis-wide.
  common::MutexLock lk(&mu_);
  auto st = MountOrFormat();
  (void)st;  // a failed mount leaves an empty instance; ops return errors
}

LogFs::~LogFs() { kfs_->FsUmount(*proc_); }

LogFs::VNode* LogFs::Get(uint64_t id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Status LogFs::MountOrFormat() {
  AUDIT_SCOPE("LogFs::MountOrFormat");
  cid_ = kfs_->root_coffer_id();
  ASSIGN_OR_RETURN(info, kfs_->CofferMap(*proc_, cid_, true));
  info_ = info;
  alloc_ = std::make_unique<zofs::CofferAllocator>(kfs_, proc_, cid_, info_.custom_off,
                                                   opts_.lease_ns, opts_.enlarge_batch);
  nvm::NvmDevice* dev = kfs_->dev();
  mpk::AccessWindow w(info_.key, true);

  // Root directory always exists (volatile; id 1).
  VNode root;
  root.id = 1;
  root.type = vfs::FileType::kDirectory;
  root.mode = kfs_->RootPageOf(cid_)->mode;
  root.uid = kfs_->RootPageOf(cid_)->uid;
  root.gid = kfs_->RootPageOf(cid_)->gid;
  nodes_[1] = root;

  auto* super = dev->As<LogSuper>(info_.root_inode_off);
  if (super->magic != kLogSuperMagic) {
    // Fresh file system: pool + first log page + superblock.
    zofs::CofferAllocator::InitPool(dev, info_.custom_off);
    ASSIGN_OR_RETURN(first, alloc_->AllocPage(/*zero=*/true));
    dev->Sfence();  // the zeroed header is durable before it is referenced
    dev->Store64(info_.root_inode_off + offsetof(LogSuper, head_page), first);
    dev->Store64(info_.root_inode_off + offsetof(LogSuper, epoch), 0);
    dev->Store64(info_.root_inode_off + offsetof(LogSuper, magic), kLogSuperMagic);
    dev->PersistRange(info_.root_inode_off, sizeof(LogSuper));
    tail_page_ = first;
    log_pages_ = 1;
    return common::OkStatus();
  }
  return Replay();
}

Status LogFs::Replay() {
  AUDIT_SCOPE("LogFs::Replay");
  nvm::NvmDevice* dev = kfs_->dev();
  const auto* super = dev->As<LogSuper>(info_.root_inode_off);
  uint64_t page = super->head_page;
  log_pages_ = 0;
  replayed_records_ = 0;
  while (page != 0) {
    const auto* hdr = dev->As<LogPageHeader>(page);
    log_pages_++;
    tail_page_ = page;
    uint64_t pos = 0;
    while (pos + sizeof(RecHeader) <= hdr->used) {
      const auto* rh = dev->As<RecHeader>(page + sizeof(LogPageHeader) + pos);
      if (rh->kind == 0 || pos + sizeof(RecHeader) + rh->len > hdr->used) {
        break;  // torn tail
      }
      RETURN_IF_ERROR(ApplyRecord(
          rh->kind,
          // zofs-lint: allow(raw-nvm-deref) — replay payload; bounds checked against `used` above
          dev->base() + page + sizeof(LogPageHeader) + pos + sizeof(RecHeader), rh->len));
      replayed_records_++;
      pos += sizeof(RecHeader) + rh->len;
    }
    page = hdr->next;
  }
  live_records_ = nodes_.size();
  return common::OkStatus();
}

Status LogFs::ApplyRecord(uint8_t kind, const uint8_t* p, uint16_t len) {
  switch (kind) {
    case kRecCreate: {
      CreateRec rec;
      memcpy(&rec, p, sizeof(rec));
      std::string name(reinterpret_cast<const char*>(p + sizeof(rec)), rec.name_len);
      VNode n;
      n.id = rec.id;
      n.type = static_cast<vfs::FileType>(rec.type);
      n.mode = rec.mode;
      n.parent = rec.parent;
      if (rec.target_len > 0) {
        n.symlink_target.assign(
            reinterpret_cast<const char*>(p + sizeof(rec) + rec.name_len), rec.target_len);
        n.size = rec.target_len;
      }
      nodes_[rec.id] = std::move(n);
      VNode* parent = Get(rec.parent);
      if (parent != nullptr) {
        parent->children[name] = rec.id;
      }
      next_id_ = std::max(next_id_, rec.id + 1);
      break;
    }
    case kRecWrite: {
      WriteRec rec;
      memcpy(&rec, p, sizeof(rec));
      VNode* n = Get(rec.id);
      if (n != nullptr) {
        n->blocks[rec.blk] = rec.page_off;
        n->size = std::max(n->size, rec.new_size);
      }
      break;
    }
    case kRecTruncate: {
      TruncateRec rec;
      memcpy(&rec, p, sizeof(rec));
      VNode* n = Get(rec.id);
      if (n != nullptr) {
        n->size = rec.size;
        uint64_t first_dead = (rec.size + nvm::kPageSize - 1) / nvm::kPageSize;
        n->blocks.erase(n->blocks.lower_bound(first_dead), n->blocks.end());
      }
      break;
    }
    case kRecUnlink: {
      UnlinkRec rec;
      memcpy(&rec, p, sizeof(rec));
      std::string name(reinterpret_cast<const char*>(p + sizeof(rec)), rec.name_len);
      VNode* parent = Get(rec.parent);
      if (parent != nullptr) {
        auto it = parent->children.find(name);
        if (it != parent->children.end()) {
          nodes_.erase(it->second);
          parent->children.erase(it);
        }
      }
      break;
    }
    case kRecRename: {
      RenameRec rec;
      memcpy(&rec, p, sizeof(rec));
      std::string from(reinterpret_cast<const char*>(p + sizeof(rec)), rec.from_len);
      std::string to(reinterpret_cast<const char*>(p + sizeof(rec) + rec.from_len), rec.to_len);
      VNode* fp = Get(rec.from_parent);
      VNode* tp = Get(rec.to_parent);
      if (fp != nullptr && tp != nullptr) {
        auto it = fp->children.find(from);
        if (it != fp->children.end()) {
          uint64_t id = it->second;
          fp->children.erase(it);
          auto prev = tp->children.find(to);
          if (prev != tp->children.end()) {
            nodes_.erase(prev->second);
          }
          tp->children[to] = id;
          VNode* moved = Get(id);
          if (moved != nullptr) {
            moved->parent = rec.to_parent;
          }
        }
      }
      break;
    }
    case kRecChmod: {
      ChmodRec rec;
      memcpy(&rec, p, sizeof(rec));
      VNode* n = Get(rec.id);
      if (n != nullptr) {
        n->mode = rec.mode;
      }
      break;
    }
    case kRecChown: {
      ChownRec rec;
      memcpy(&rec, p, sizeof(rec));
      VNode* n = Get(rec.id);
      if (n != nullptr) {
        n->uid = rec.uid;
        n->gid = rec.gid;
      }
      break;
    }
    default:
      return Err::kCorrupt;
  }
  return common::OkStatus();
}

Status LogFs::AppendRecord(uint8_t kind, const void* body, size_t body_len,
                           std::string_view extra1, std::string_view extra2) {
  AUDIT_SCOPE("LogFs::AppendRecord");
  nvm::NvmDevice* dev = kfs_->dev();
  const size_t total = sizeof(RecHeader) + body_len + extra1.size() + extra2.size();
  if (total > kPayload) {
    return Err::kInval;
  }
  auto* tail = dev->As<LogPageHeader>(tail_page_);
  if (tail->used + total > kPayload) {
    // Seal this page and chain a fresh one.
    ASSIGN_OR_RETURN(fresh, alloc_->AllocPage(/*zero=*/true));
    dev->Sfence();
    dev->Store64(tail_page_ + offsetof(LogPageHeader, next), fresh);
    dev->PersistRange(tail_page_ + offsetof(LogPageHeader, next), 8);
    tail_page_ = fresh;
    log_pages_++;
    tail = dev->As<LogPageHeader>(tail_page_);
  }

  const uint64_t rec_off = tail_page_ + sizeof(LogPageHeader) + tail->used;
  RecHeader rh{kind, 0, static_cast<uint16_t>(body_len + extra1.size() + extra2.size())};
  dev->StoreBytes(rec_off, &rh, sizeof(rh));
  dev->StoreBytes(rec_off + sizeof(rh), body, body_len);
  if (!extra1.empty()) {
    dev->StoreBytes(rec_off + sizeof(rh) + body_len, extra1.data(), extra1.size());
  }
  if (!extra2.empty()) {
    dev->StoreBytes(rec_off + sizeof(rh) + body_len + extra1.size(), extra2.data(),
                    extra2.size());
  }
  dev->Clwb(rec_off, sizeof(rh) + rh.len);
  dev->Sfence();  // the record is durable...
  AUDIT_DURABILITY_POINT(dev, rec_off, sizeof(rh) + rh.len);
  dev->Store64(tail_page_ + offsetof(LogPageHeader, used), tail->used + total);
  AUDIT_ORDER_AFTER(dev, tail_page_ + offsetof(LogPageHeader, used), 8, rec_off,
                    sizeof(rh) + rh.len);
  dev->PersistRange(tail_page_ + offsetof(LogPageHeader, used), 8);  // ...then committed
  AUDIT_DURABILITY_POINT(dev, tail_page_ + offsetof(LogPageHeader, used), 8);
  records_written_++;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Path resolution over the volatile namespace

Result<LogFs::VNode*> LogFs::ResolvePath(const std::string& path, bool follow_last, int depth) {
  if (depth > 8) {
    return Err::kLoop;
  }
  ASSIGN_OR_RETURN(parts, vfs::SplitPath(vfs::NormalizePath(path)));
  VNode* cur = Get(1);
  for (size_t i = 0; i < parts.size(); i++) {
    if (cur->type != vfs::FileType::kDirectory) {
      return Err::kNotDir;
    }
    auto it = cur->children.find(parts[i]);
    if (it == cur->children.end()) {
      return Err::kNoEnt;
    }
    VNode* child = Get(it->second);
    if (child == nullptr) {
      return Err::kCorrupt;
    }
    bool is_last = (i + 1 == parts.size());
    if (child->type == vfs::FileType::kSymlink && (!is_last || follow_last)) {
      std::string rest;
      for (size_t j = i + 1; j < parts.size(); j++) {
        rest += "/" + parts[j];
      }
      std::string walked = "/";
      for (size_t j = 0; j < i; j++) {
        walked += parts[j] + "/";
      }
      const std::string& target = child->symlink_target;
      std::string next = !target.empty() && target[0] == '/' ? target + rest
                                                             : walked + target + rest;
      return ResolvePath(vfs::NormalizePath(next), follow_last, depth + 1);
    }
    cur = child;
  }
  return cur;
}

Result<std::pair<LogFs::VNode*, std::string>> LogFs::ResolveParent(const std::string& path) {
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(path)));
  ASSIGN_OR_RETURN(parent, ResolvePath(pp.first, true));
  if (parent->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  return std::make_pair(parent, pp.second);
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<ufs::NodeRef> LogFs::Lookup(const std::string& path, bool follow) {
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(n, ResolvePath(path, follow));
  return ufs::NodeRef{cid_, n->id};
}

Result<ufs::NodeRef> LogFs::Create(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("LogFs::Create");
  bool created = false;
  ASSIGN_OR_RETURN(node, OpenOrCreate(path, mode, &created));
  if (!created) {
    return Err::kExist;
  }
  return node;
}

Result<ufs::NodeRef> LogFs::OpenOrCreate(const std::string& path, uint16_t mode, bool* created) {
  AUDIT_SCOPE("LogFs::OpenOrCreate");
  *created = false;
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  auto it = parent->children.find(leaf);
  if (it != parent->children.end()) {
    return ufs::NodeRef{cid_, it->second};
  }
  *created = true;

  mpk::AccessWindow w(info_.key, true);
  const uint64_t id = next_id_++;
  CreateRec rec{};
  rec.id = id;
  rec.parent = parent->id;
  rec.type = static_cast<uint32_t>(vfs::FileType::kRegular);
  rec.mode = mode;
  rec.name_len = static_cast<uint16_t>(leaf.size());
  RETURN_IF_ERROR(AppendRecord(kRecCreate, &rec, sizeof(rec), leaf));

  VNode n;
  n.id = id;
  n.type = vfs::FileType::kRegular;
  n.mode = mode;
  n.uid = proc_->cred().uid;
  n.gid = proc_->cred().gid;
  n.mtime_ns = common::NowNs();
  n.parent = parent->id;
  nodes_[id] = std::move(n);
  parent->children[leaf] = id;
  live_records_++;
  return ufs::NodeRef{cid_, id};
}

Status LogFs::Mkdir(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("LogFs::Mkdir");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  if (parent->children.count(leaf)) {
    return Err::kExist;
  }
  mpk::AccessWindow w(info_.key, true);
  const uint64_t id = next_id_++;
  CreateRec rec{};
  rec.id = id;
  rec.parent = parent->id;
  rec.type = static_cast<uint32_t>(vfs::FileType::kDirectory);
  rec.mode = mode;
  rec.name_len = static_cast<uint16_t>(leaf.size());
  RETURN_IF_ERROR(AppendRecord(kRecCreate, &rec, sizeof(rec), leaf));

  VNode n;
  n.id = id;
  n.type = vfs::FileType::kDirectory;
  n.mode = mode;
  n.uid = proc_->cred().uid;
  n.gid = proc_->cred().gid;
  n.mtime_ns = common::NowNs();
  n.parent = parent->id;
  nodes_[id] = std::move(n);
  parent->children[leaf] = id;
  live_records_++;
  return common::OkStatus();
}

Status LogFs::Symlink(const std::string& target, const std::string& linkpath) {
  AUDIT_SCOPE("LogFs::Symlink");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(pp, ResolveParent(linkpath));
  auto& [parent, leaf] = pp;
  if (parent->children.count(leaf)) {
    return Err::kExist;
  }
  mpk::AccessWindow w(info_.key, true);
  const uint64_t id = next_id_++;
  CreateRec rec{};
  rec.id = id;
  rec.parent = parent->id;
  rec.type = static_cast<uint32_t>(vfs::FileType::kSymlink);
  rec.mode = 0777;
  rec.name_len = static_cast<uint16_t>(leaf.size());
  rec.target_len = static_cast<uint16_t>(target.size());
  RETURN_IF_ERROR(AppendRecord(kRecCreate, &rec, sizeof(rec), leaf, target));

  VNode n;
  n.id = id;
  n.type = vfs::FileType::kSymlink;
  n.mode = 0777;
  n.symlink_target = target;
  n.size = target.size();
  n.parent = parent->id;
  nodes_[id] = std::move(n);
  parent->children[leaf] = id;
  live_records_++;
  return common::OkStatus();
}

Result<std::string> LogFs::ReadLink(const std::string& path) {
  AUDIT_SCOPE("LogFs::ReadLink");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(n, ResolvePath(path, false));
  if (n->type != vfs::FileType::kSymlink) {
    return Err::kInval;
  }
  return n->symlink_target;
}

Status LogFs::Unlink(const std::string& path) {
  AUDIT_SCOPE("LogFs::Unlink");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  VNode* victim = Get(it->second);
  if (victim != nullptr && victim->type == vfs::FileType::kDirectory) {
    return Err::kIsDir;
  }
  mpk::AccessWindow w(info_.key, true);
  UnlinkRec rec{};
  rec.parent = parent->id;
  rec.name_len = static_cast<uint16_t>(leaf.size());
  RETURN_IF_ERROR(AppendRecord(kRecUnlink, &rec, sizeof(rec), leaf));
  if (victim != nullptr) {
    for (auto& [blk, page] : victim->blocks) {
      alloc_->FreePage(page);
    }
    nodes_.erase(it->second);
  }
  parent->children.erase(it);
  RETURN_IF_ERROR(MaybeCompact());
  return common::OkStatus();
}

Status LogFs::Rmdir(const std::string& path) {
  AUDIT_SCOPE("LogFs::Rmdir");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  VNode* victim = Get(it->second);
  if (victim == nullptr || victim->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  if (!victim->children.empty()) {
    return Err::kNotEmpty;
  }
  mpk::AccessWindow w(info_.key, true);
  UnlinkRec rec{};
  rec.parent = parent->id;
  rec.name_len = static_cast<uint16_t>(leaf.size());
  RETURN_IF_ERROR(AppendRecord(kRecUnlink, &rec, sizeof(rec), leaf));
  nodes_.erase(it->second);
  parent->children.erase(it);
  return common::OkStatus();
}

Result<vfs::StatBuf> LogFs::StatNode(ufs::NodeRef node) {
  AUDIT_SCOPE("LogFs::StatNode");
  common::MutexLock lk(&mu_);
  VNode* n = Get(node.inode_off);
  if (n == nullptr) {
    return Err::kNoEnt;
  }
  vfs::StatBuf st;
  st.ino = n->id;
  st.type = n->type;
  st.mode = n->mode;
  st.uid = n->uid;
  st.gid = n->gid;
  st.size = n->type == vfs::FileType::kDirectory ? 0 : n->size;
  st.mtime_ns = n->mtime_ns;
  return st;
}

Result<std::vector<vfs::DirEntry>> LogFs::ReadDir(const std::string& path) {
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(dir, ResolvePath(path, true));
  if (dir->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  std::vector<vfs::DirEntry> out;
  out.reserve(dir->children.size());
  for (const auto& [name, id] : dir->children) {
    VNode* child = Get(id);
    out.push_back(vfs::DirEntry{name, id,
                                child != nullptr ? child->type : vfs::FileType::kRegular});
  }
  return out;
}

Status LogFs::Rename(const std::string& from, const std::string& to) {
  AUDIT_SCOPE("LogFs::Rename");
  const std::string nfrom = vfs::NormalizePath(from);
  const std::string nto = vfs::NormalizePath(to);
  if (nfrom == nto) {
    return common::OkStatus();
  }
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(fp, ResolveParent(nfrom));
  ASSIGN_OR_RETURN(tp, ResolveParent(nto));
  auto& [from_parent, from_leaf] = fp;
  auto& [to_parent, to_leaf] = tp;
  auto it = from_parent->children.find(from_leaf);
  if (it == from_parent->children.end()) {
    return Err::kNoEnt;
  }
  auto prev = to_parent->children.find(to_leaf);
  if (prev != to_parent->children.end()) {
    VNode* victim = Get(prev->second);
    if (victim != nullptr && victim->type == vfs::FileType::kDirectory &&
        !victim->children.empty()) {
      return Err::kNotEmpty;
    }
  }
  mpk::AccessWindow w(info_.key, true);
  RenameRec rec{};
  rec.from_parent = from_parent->id;
  rec.to_parent = to_parent->id;
  rec.from_len = static_cast<uint16_t>(from_leaf.size());
  rec.to_len = static_cast<uint16_t>(to_leaf.size());
  RETURN_IF_ERROR(AppendRecord(kRecRename, &rec, sizeof(rec), from_leaf, to_leaf));

  uint64_t id = it->second;
  from_parent->children.erase(it);
  if (prev != to_parent->children.end()) {
    VNode* victim = Get(prev->second);
    if (victim != nullptr) {
      for (auto& [blk, page] : victim->blocks) {
        alloc_->FreePage(page);
      }
      nodes_.erase(prev->second);
    }
  }
  to_parent->children[to_leaf] = id;
  VNode* moved = Get(id);
  if (moved != nullptr) {
    moved->parent = to_parent->id;
  }
  return common::OkStatus();
}

Status LogFs::Chmod(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("LogFs::Chmod");
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(n, ResolvePath(path, true));
  if (!proc_->cred().IsRoot() && proc_->cred().uid != n->uid) {
    return Err::kPerm;
  }
  mpk::AccessWindow w(info_.key, true);
  ChmodRec rec{n->id, mode, {}};
  RETURN_IF_ERROR(AppendRecord(kRecChmod, &rec, sizeof(rec)));
  n->mode = mode;
  return common::OkStatus();
}

Status LogFs::Chown(const std::string& path, uint32_t uid, uint32_t gid) {
  AUDIT_SCOPE("LogFs::Chown");
  common::MutexLock lk(&mu_);
  if (!proc_->cred().IsRoot()) {
    return Err::kPerm;
  }
  ASSIGN_OR_RETURN(n, ResolvePath(path, true));
  mpk::AccessWindow w(info_.key, true);
  ChownRec rec{n->id, uid, gid};
  RETURN_IF_ERROR(AppendRecord(kRecChown, &rec, sizeof(rec)));
  n->uid = uid;
  n->gid = gid;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Data path

Result<size_t> LogFs::ReadAt(ufs::NodeRef node, void* buf, size_t n, uint64_t off) {
  AUDIT_SCOPE("LogFs::ReadAt");
  common::MutexLock lk(&mu_);
  VNode* v = Get(node.inode_off);
  if (v == nullptr) {
    return Err::kNoEnt;
  }
  if (v->type == vfs::FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (off >= v->size || n == 0) {
    return size_t{0};
  }
  n = std::min<uint64_t>(n, v->size - off);
  mpk::AccessWindow w(info_.key, false);
  nvm::NvmDevice* dev = kfs_->dev();
  auto* dst = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    auto it = v->blocks.find(blk);
    if (it == v->blocks.end()) {
      memset(dst + done, 0, chunk);
    } else {
      mpk::CheckAccess(it->second + in_off, chunk, false);
      // zofs-lint: allow(raw-nvm-deref) — bulk copy out of a block offset gated by CheckAccess above
      memcpy(dst + done, dev->base() + it->second + in_off, chunk);
    }
    done += chunk;
  }
  return done;
}

Result<size_t> LogFs::WriteAt(ufs::NodeRef node, const void* buf, size_t n, uint64_t off) {
  AUDIT_SCOPE("LogFs::WriteAt");
  if (n == 0) {
    return size_t{0};
  }
  common::MutexLock lk(&mu_);
  VNode* v = Get(node.inode_off);
  if (v == nullptr) {
    return Err::kNoEnt;
  }
  if (v->type == vfs::FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (!info_.writable) {
    return Err::kROFS;
  }
  mpk::AccessWindow w(info_.key, true);
  nvm::NvmDevice* dev = kfs_->dev();
  const auto* src = static_cast<const uint8_t*>(buf);
  const uint64_t end = off + n;
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    // Log-structured data: every block write goes to a fresh page (out of
    // place), then a write record points at it.
    ASSIGN_OR_RETURN(fresh, alloc_->AllocPage(/*zero=*/false));
    auto old = v->blocks.find(blk);
    if (chunk < nvm::kPageSize) {
      if (old != v->blocks.end()) {
        if (in_off > 0) {
          // zofs-lint: allow(raw-nvm-deref) — CoW prefix copy from the committed old block
          dev->NtStoreBytes(fresh, dev->base() + old->second, in_off);
        }
        if (in_off + chunk < nvm::kPageSize) {
          dev->NtStoreBytes(fresh + in_off + chunk,
                            // zofs-lint: allow(raw-nvm-deref) — CoW suffix copy from the committed old block
                            dev->base() + old->second + in_off + chunk,
                            nvm::kPageSize - in_off - chunk);
        }
      } else {
        static const uint8_t kZeros[nvm::kPageSize] = {};
        dev->NtStoreBytes(fresh, kZeros, nvm::kPageSize);
      }
    }
    dev->NtStoreBytes(fresh + in_off, src + done, chunk);
    dev->Sfence();  // data durable before the record references it

    WriteRec rec{v->id, blk, fresh, std::max<uint64_t>(v->size, off + done + chunk)};
    RETURN_IF_ERROR(AppendRecord(kRecWrite, &rec, sizeof(rec)));
    if (old != v->blocks.end()) {
      alloc_->FreePage(old->second);
      old->second = fresh;
    } else {
      v->blocks[blk] = fresh;
    }
    done += chunk;
  }
  v->size = std::max(v->size, end);
  v->mtime_ns = common::NowNs();
  RETURN_IF_ERROR(MaybeCompact());
  return n;
}

Result<uint64_t> LogFs::Append(ufs::NodeRef node, const void* buf, size_t n) {
  AUDIT_SCOPE("LogFs::Append");
  uint64_t off;
  {
    common::MutexLock lk(&mu_);
    VNode* v = Get(node.inode_off);
    if (v == nullptr) {
      return Err::kNoEnt;
    }
    off = v->size;
  }
  ASSIGN_OR_RETURN(written, WriteAt(node, buf, n, off));
  (void)written;
  return off;
}

Status LogFs::TruncateNode(ufs::NodeRef node, uint64_t len) {
  AUDIT_SCOPE("LogFs::TruncateNode");
  common::MutexLock lk(&mu_);
  VNode* v = Get(node.inode_off);
  if (v == nullptr) {
    return Err::kNoEnt;
  }
  if (v->type == vfs::FileType::kDirectory) {
    return Err::kIsDir;
  }
  mpk::AccessWindow w(info_.key, true);
  TruncateRec rec{v->id, len};
  RETURN_IF_ERROR(AppendRecord(kRecTruncate, &rec, sizeof(rec)));
  if (len < v->size) {
    uint64_t first_dead = (len + nvm::kPageSize - 1) / nvm::kPageSize;
    for (auto it = v->blocks.lower_bound(first_dead); it != v->blocks.end();) {
      alloc_->FreePage(it->second);
      it = v->blocks.erase(it);
    }
    // Zero the tail of the last kept block so re-extension reads zeros.
    if (len % nvm::kPageSize != 0) {
      auto it = v->blocks.find(len / nvm::kPageSize);
      if (it != v->blocks.end()) {
        static const uint8_t kZeros[nvm::kPageSize] = {};
        uint64_t in_off = len % nvm::kPageSize;
        kfs_->dev()->NtStoreBytes(it->second + in_off, kZeros, nvm::kPageSize - in_off);
        kfs_->dev()->Sfence();
      }
    }
  }
  v->size = len;
  return common::OkStatus();
}

Status LogFs::EnsureAccess(ufs::NodeRef node, bool writable) {
  if (writable && !info_.writable) {
    return Err::kAcces;
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Compaction & recovery

Status LogFs::MaybeCompact() {
  if (log_pages_ < opts_.gc_min_pages) {
    return common::OkStatus();
  }
  // Rough liveness estimate: records needed to reconstruct the tree vs
  // records appended since the last compaction.
  uint64_t needed = 0;
  for (const auto& [id, n] : nodes_) {
    needed += 1 + n.blocks.size();
  }
  if (records_written_ < 2 * needed) {
    return common::OkStatus();
  }
  auto freed = Compact();
  if (!freed.ok()) {
    return freed.error();
  }
  return common::OkStatus();
}

Result<uint64_t> LogFs::CompactForTest() {
  common::MutexLock lk(&mu_);
  mpk::AccessWindow w(info_.key, true);
  return Compact();
}

Result<uint64_t> LogFs::Compact() {
  AUDIT_SCOPE("LogFs::Compact");
  // Collect the old chain, then write a minimal log reconstructing the
  // current state onto a fresh chain and switch the superblock head.
  nvm::NvmDevice* dev = kfs_->dev();
  std::vector<uint64_t> old_chain;
  {
    const auto* super = dev->As<LogSuper>(info_.root_inode_off);
    uint64_t page = super->head_page;
    while (page != 0) {
      old_chain.push_back(page);
      page = dev->As<LogPageHeader>(page)->next;
    }
  }

  ASSIGN_OR_RETURN(fresh_head, alloc_->AllocPage(/*zero=*/true));
  dev->Sfence();
  tail_page_ = fresh_head;
  const uint64_t old_pages = log_pages_;
  log_pages_ = 1;
  records_written_ = 0;

  // Emit creates top-down (parents before children), then data references.
  // nodes_ ids are monotonically assigned, but renames can reparent, so walk
  // breadth-first from the root.
  std::vector<uint64_t> queue = {1};
  while (!queue.empty()) {
    uint64_t id = queue.back();
    queue.pop_back();
    VNode* dir = Get(id);
    if (dir == nullptr) {
      continue;
    }
    for (const auto& [name, child_id] : dir->children) {
      VNode* child = Get(child_id);
      if (child == nullptr) {
        continue;
      }
      CreateRec rec{};
      rec.id = child_id;
      rec.parent = id;
      rec.type = static_cast<uint32_t>(child->type);
      rec.mode = child->mode;
      rec.name_len = static_cast<uint16_t>(name.size());
      rec.target_len = static_cast<uint16_t>(child->symlink_target.size());
      RETURN_IF_ERROR(AppendRecord(kRecCreate, &rec, sizeof(rec), name, child->symlink_target));
      for (const auto& [blk, page] : child->blocks) {
        WriteRec wr{child_id, blk, page, child->size};
        RETURN_IF_ERROR(AppendRecord(kRecWrite, &wr, sizeof(wr)));
      }
      if (child->type == vfs::FileType::kRegular) {
        TruncateRec tr{child_id, child->size};
        RETURN_IF_ERROR(AppendRecord(kRecTruncate, &tr, sizeof(tr)));
      }
      if (child->type == vfs::FileType::kDirectory) {
        queue.push_back(child_id);
      }
    }
  }

  // Atomic switch: new head + epoch.
  const auto* super = dev->As<LogSuper>(info_.root_inode_off);
  dev->Store64(info_.root_inode_off + offsetof(LogSuper, head_page), fresh_head);
  dev->Store64(info_.root_inode_off + offsetof(LogSuper, epoch), super->epoch + 1);
  dev->PersistRange(info_.root_inode_off, sizeof(LogSuper));

  // The old chain's pages return to the allocator.
  for (uint64_t page : old_chain) {
    RETURN_IF_ERROR(alloc_->FreePage(page));
  }
  return old_pages > log_pages_ ? old_pages - log_pages_ : 0;
}

Result<ufs::RecoveryStats> LogFs::RecoverAll() {
  common::MutexLock lk(&mu_);
  ufs::RecoveryStats st;
  common::Stopwatch total;

  common::Stopwatch k1;
  RETURN_IF_ERROR(kfs_->CofferRecoverBegin(*proc_, cid_, 10'000'000'000ULL));
  st.kernel_ns += k1.ElapsedNs();

  mpk::AccessWindow w(info_.key, true);
  nvm::NvmDevice* dev = kfs_->dev();
  // In-use pages: the log chain plus every referenced data page.
  std::vector<uint64_t> in_use;
  {
    const auto* super = dev->As<LogSuper>(info_.root_inode_off);
    uint64_t page = super->head_page;
    while (page != 0) {
      in_use.push_back(page / nvm::kPageSize);
      page = dev->As<LogPageHeader>(page)->next;
    }
  }
  for (const auto& [id, n] : nodes_) {
    for (const auto& [blk, page] : n.blocks) {
      in_use.push_back(page / nvm::kPageSize);
    }
  }
  st.pages_in_use = in_use.size();
  // The allocator's parked free pages are reclaimed by the kernel; reset the
  // pool so stale lists cannot double-allocate them.
  zofs::CofferAllocator::InitPool(dev, info_.custom_off);

  common::Stopwatch k2;
  ASSIGN_OR_RETURN(reclaimed, kfs_->CofferRecoverEnd(*proc_, cid_, in_use));
  st.kernel_ns += k2.ElapsedNs();
  st.pages_reclaimed = reclaimed;
  st.user_ns = total.ElapsedNs() - st.kernel_ns;
  return st;
}

uint64_t LogFs::LiveDataPages() const {
  uint64_t n = 0;
  for (const auto& [id, node] : nodes_) {
    n += node.blocks.size();
  }
  return n;
}

}  // namespace logfs
