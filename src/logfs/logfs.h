// LogFS — a log-structured µFS for Treasury (the alternative design the
// paper sketches in §5.3: "one can implement a journaled µFS or a
// log-structured µFS in Treasury as well").
//
// Design: all metadata mutations are records appended to a per-coffer log
// (a chain of pages linked through their headers). File data lives in pages
// allocated from the coffer's leased per-thread allocator; write records
// reference those pages. The full namespace/index state is volatile and
// rebuilt by replaying the log at mount — the classic LFS trade: O(1)
// synchronous appends on the write path, replay + garbage collection later.
//
// Consistency: a record is written and persisted, then the page's `used`
// counter advances (the 8-byte commit point). Crash: replay stops at `used`.
// Compaction rewrites a minimal log onto a fresh chain and switches the
// superblock's head pointer atomically.
//
// Scope (documented simplifications): LogFS keeps one flat coffer per file
// system (the §5 "flat hierarchy" alternative), so permissions are enforced
// at whole-coffer granularity, like the ZoFS-1coffer variant. Symlinks and
// directories are supported; hard links are not.

#ifndef SRC_LOGFS_LOGFS_H_
#define SRC_LOGFS_LOGFS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/kernfs/kernfs.h"
#include "src/ufs/microfs.h"
#include "src/zofs/alloc.h"  // the leased per-thread allocator is µFS-generic

namespace logfs {

using common::Err;
using common::Result;
using common::Status;

inline constexpr uint64_t kLogSuperMagic = 0x4c4f4746535f5631ULL;  // "LOGFS_V1"

struct Options {
  uint64_t lease_ns = 200'000'000;
  uint64_t enlarge_batch = 64;
  // Compact when the log holds this many pages and less than half the
  // records are live.
  uint64_t gc_min_pages = 64;
};

class LogFs final : public ufs::MicroFs {
 public:
  LogFs(kernfs::KernFs* kfs, kernfs::Process* proc, Options opts = {});
  ~LogFs() override;

  const char* Name() const override { return "LogFS"; }
  kernfs::Process* proc() { return proc_; }

  Result<ufs::NodeRef> Lookup(const std::string& path, bool follow_last_symlink) override;
  Result<ufs::NodeRef> Create(const std::string& path, uint16_t mode) override;
  Result<ufs::NodeRef> OpenOrCreate(const std::string& path, uint16_t mode,
                                    bool* created) override;
  Status Mkdir(const std::string& path, uint16_t mode) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<vfs::StatBuf> StatNode(ufs::NodeRef node) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Chmod(const std::string& path, uint16_t mode) override;
  Status Chown(const std::string& path, uint32_t uid, uint32_t gid) override;
  Status Symlink(const std::string& target, const std::string& linkpath) override;
  Result<std::string> ReadLink(const std::string& path) override;

  Result<size_t> ReadAt(ufs::NodeRef node, void* buf, size_t n, uint64_t off) override;
  Result<size_t> WriteAt(ufs::NodeRef node, const void* buf, size_t n, uint64_t off) override;
  Result<uint64_t> Append(ufs::NodeRef node, const void* buf, size_t n) override;
  Status TruncateNode(ufs::NodeRef node, uint64_t len) override;
  Status EnsureAccess(ufs::NodeRef node, bool writable) override;

  Result<ufs::RecoveryStats> RecoverAll() override;

  // Forces a compaction pass (also triggered automatically); returns pages
  // freed. Exposed for tests and the ablation bench.
  Result<uint64_t> CompactForTest();
  uint64_t log_pages() const { return log_pages_; }
  uint64_t replayed_records() const { return replayed_records_; }

 private:
  // ---- on-NVM structures ----
  struct LogSuper {  // occupies the coffer's root-inode page
    uint64_t magic;
    uint64_t head_page;  // first page of the active log chain
    uint64_t epoch;      // bumped at each compaction
  };
  struct LogPageHeader {
    uint64_t next;  // next log page (byte offset) or 0
    uint64_t used;  // committed payload bytes (the commit point)
  };
  static constexpr uint64_t kPayload = nvm::kPageSize - sizeof(LogPageHeader);

  enum RecKind : uint8_t {
    kRecCreate = 1,
    kRecWrite = 2,
    kRecTruncate = 3,
    kRecUnlink = 4,
    kRecRename = 5,
    kRecChmod = 6,
    kRecChown = 7,
  };
  struct RecHeader {
    uint8_t kind;
    uint8_t _pad;
    uint16_t len;  // payload bytes after this header
  };
  struct CreateRec {  // + name bytes (and symlink target for symlinks)
    uint64_t id;
    uint64_t parent;
    uint32_t type;  // vfs::FileType values
    uint16_t mode;
    uint16_t name_len;
    uint16_t target_len;  // symlinks only
    uint16_t _pad[3];
  };
  struct WriteRec {
    uint64_t id;
    uint64_t blk;       // block index
    uint64_t page_off;  // data page holding the whole block
    uint64_t new_size;  // file size after this write
  };
  struct TruncateRec {
    uint64_t id;
    uint64_t size;
  };
  struct UnlinkRec {  // + name bytes
    uint64_t parent;
    uint16_t name_len;
    uint16_t _pad[3];
  };
  struct RenameRec {  // + from-name + to-name bytes
    uint64_t from_parent;
    uint64_t to_parent;
    uint16_t from_len;
    uint16_t to_len;
    uint16_t _pad[2];
  };
  struct ChmodRec {
    uint64_t id;
    uint16_t mode;
    uint16_t _pad[3];
  };
  struct ChownRec {
    uint64_t id;
    uint32_t uid;
    uint32_t gid;
  };

  // ---- volatile state (rebuilt by replay) ----
  struct VNode {
    uint64_t id = 0;
    vfs::FileType type = vfs::FileType::kRegular;
    uint16_t mode = 0;
    uint32_t uid = 0;
    uint32_t gid = 0;
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    std::string symlink_target;
    std::map<uint64_t, uint64_t> blocks;        // blk -> data page offset
    std::map<std::string, uint64_t> children;   // directories
    uint64_t parent = 0;
  };

  Status MountOrFormat() REQUIRES(mu_);
  Status Replay() REQUIRES(mu_);
  Status ApplyRecord(uint8_t kind, const uint8_t* payload, uint16_t len) REQUIRES(mu_);

  // Appends one record (header + payload pieces) to the log; persists it and
  // advances the commit point. Caller holds mu_.
  Status AppendRecord(uint8_t kind, const void* body, size_t body_len, std::string_view extra1 = {},
                      std::string_view extra2 = {}) REQUIRES(mu_);
  Status MaybeCompact() REQUIRES(mu_);
  Result<uint64_t> Compact() REQUIRES(mu_);

  Result<VNode*> ResolvePath(const std::string& path, bool follow_last, int depth = 0)
      REQUIRES(mu_);
  Result<std::pair<VNode*, std::string>> ResolveParent(const std::string& path) REQUIRES(mu_);
  VNode* Get(uint64_t id) REQUIRES(mu_);
  uint64_t LiveDataPages() const REQUIRES(mu_);

  kernfs::KernFs* kfs_;
  kernfs::Process* proc_;
  Options opts_;
  uint32_t cid_ = 0;
  kernfs::MapInfo info_{};
  std::unique_ptr<zofs::CofferAllocator> alloc_;

  common::Mutex mu_;  // serialises log appends and volatile-state mutations
  std::unordered_map<uint64_t, VNode> nodes_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 2;  // 1 = root directory
  uint64_t tail_page_ GUARDED_BY(mu_) = 0;
  // Monotonic counters: mutated under mu_, read unlocked by the test/bench
  // accessors above (a stale read is fine), so deliberately unguarded.
  uint64_t log_pages_ = 0;
  uint64_t records_written_ GUARDED_BY(mu_) = 0;
  uint64_t live_records_ GUARDED_BY(mu_) = 0;  // approximation driving GC
  uint64_t replayed_records_ = 0;
};

}  // namespace logfs

#endif  // SRC_LOGFS_LOGFS_H_
