// Metadata fault-injection campaign for the ZoFS stack.
//
// The protection claim under test is the paper's §3.3/§6.4 argument: because
// a µFS dereferences pointers read from NVM that any thread of the process
// may have scribbled, a corrupted coffer must at worst damage *itself* —
// FSLibs has to turn arbitrary metadata garbage into clean errors, never
// crashes, hangs, or writes that escape the coffer.
//
// The campaign runs a deterministic workload, snapshots the quiescent device
// image, then systematically corrupts persistent coffer state — bit flips in
// inodes and dentries, block pointers swapped out-of-range or into other
// coffers, allocation-table run-length lies, free-list and lease-word
// garbage, directory hash-chain cycles, bogus coffer-root fields — and
// re-drives FSLib through reads, writes, lookups, and recovery on each
// corrupted image. Outcomes are classified per trial:
//
//   detected     an operation failed with a clean error code
//   benign       every operation succeeded and returned correct data
//   silent-data  an operation succeeded but returned wrong data (possible
//                within the damaged coffer; MPK protection is coffer-granular)
//   crash        a simulated page fault fired (Err::kFault or an escaped
//                mpk::ViolationError) — pre-hardening this kills the process
//   hang         an operation exceeded the watchdog budget
//   escape       bytes of a *sibling* coffer changed (alloc-table ownership
//                + byte-compare oracle) — corruption crossed the MPK wall
//
// Reports are byte-stable: two runs with the same seed produce identical
// text/JSON regardless of thread count, so the output can be diffed in CI.
// The CampaignOptions::raw_deref_for_test hook re-enables the pre-hardening
// dereference discipline; the campaign must then report crashes, which is
// the planted-bug regression check that the harness can still see them.

#ifndef SRC_FAULTINJ_FAULTINJ_H_
#define SRC_FAULTINJ_FAULTINJ_H_

#include <cstdint>
#include <string>
#include <vector>

namespace faultinj {

enum class FaultClass {
  kControl,          // no corruption; harness self-check, must come out benign
  kInodeBitFlip,     // random single-bit flips across inode pages
  kDirentBitFlip,    // random single-bit flips in a live directory entry
  kBlkptrOutOfRange, // block pointers beyond the device or misaligned
  kBlkptrCrossCoffer,// block pointers into pages another coffer owns
  kAllocRunLie,      // allocation-table run_len / ownership lies
  kFreeListGarbage,  // free-list heads poisoned (garbage, unowned, sibling)
  kLeaseGarbage,     // allocator lease words and inode lock words scribbled
  kDirCycle,         // directory hash-chain cycles and self-references
  kCofferRootBogus,  // coffer-root magic/custom_off/root_inode_off garbage
  kChanEntryScribble,// a queued channel request scribbled in flight (volatile
                     // DRAM fault, injected live rather than via the image):
                     // the kernel must refuse it with kInval, never dispatch
};

inline constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kControl,          FaultClass::kInodeBitFlip,
    FaultClass::kDirentBitFlip,    FaultClass::kBlkptrOutOfRange,
    FaultClass::kBlkptrCrossCoffer, FaultClass::kAllocRunLie,
    FaultClass::kFreeListGarbage,  FaultClass::kLeaseGarbage,
    FaultClass::kDirCycle,         FaultClass::kCofferRootBogus,
    FaultClass::kChanEntryScribble,
};

const char* FaultClassName(FaultClass c);
bool ParseFaultClass(const std::string& s, FaultClass* out);

enum class Outcome { kDetected, kBenign, kSilentData, kCrash, kHang, kEscape };

const char* OutcomeName(Outcome o);

struct CampaignOptions {
  uint64_t seed = 42;
  size_t dev_bytes = 32ull << 20;
  // Single-bit-flip trials per flip target (inode / dentry structures).
  uint32_t flips_per_struct = 8;
  int threads = 4;
  // Re-enables the pre-hardening raw-dereference discipline in the µFS: the
  // campaign must then observe crashes (planted-bug regression check).
  bool raw_deref_for_test = false;
  // Empty = all classes. kControl always runs.
  std::vector<FaultClass> classes;
  // 0 = no cap; otherwise only the first N trials run (CI budget).
  uint64_t max_trials = 0;
};

struct TrialResult {
  uint64_t trial_id = 0;
  FaultClass fault = FaultClass::kControl;
  uint32_t victim_coffer = 0;
  uint64_t offset = 0;       // first corrupted byte offset
  std::string target;        // human description of the corrupted field
  Outcome outcome = Outcome::kBenign;
  std::string detail;        // first error / fault / mismatch observed
};

struct ClassStats {
  uint64_t trials = 0;
  uint64_t detected = 0;
  uint64_t benign = 0;
  uint64_t silent_data = 0;
  uint64_t crashes = 0;
  uint64_t hangs = 0;
  uint64_t escapes = 0;
};

struct CampaignReport {
  uint64_t seed = 0;
  bool raw_mode = false;
  uint64_t trials = 0;
  ClassStats totals;
  // Indexed in kAllFaultClasses order; classes that did not run have
  // trials == 0.
  std::vector<ClassStats> by_class;
  std::vector<TrialResult> results;  // every trial, in trial-id order
  // Non-empty if the campaign could not even set up its workload; the
  // counters are then meaningless.
  std::string setup_error;

  // The hardened acceptance bar: nothing crashed, hung, or escaped.
  bool Clean() const {
    return setup_error.empty() && totals.crashes == 0 && totals.hangs == 0 &&
           totals.escapes == 0;
  }
  std::string ToText() const;
  std::string ToJson() const;
};

// Runs the full campaign. Deterministic for a fixed (seed, dev_bytes,
// flips_per_struct, classes, max_trials, raw mode) regardless of `threads`.
CampaignReport RunCampaign(const CampaignOptions& opts);

}  // namespace faultinj

#endif  // SRC_FAULTINJ_FAULTINJ_H_
