// zofs-lint: allow(raw-nvm-deref) — the fault injector's whole purpose is
// raw access to NVM bytes: it corrupts pages and diffs raw images.

#include "src/faultinj/faultinj.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/common/result.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"
#include "src/zofs/layout.h"
#include "src/zofs/zofs.h"

namespace faultinj {

namespace {

using common::Err;

constexpr vfs::Cred kCred{0, 0};

// Logical time is pinned here for the whole campaign so every lease-expiry
// and quarantine-backoff decision replays identically across runs and worker
// threads (leases written during setup are "live" at an identical instant in
// every trial).
constexpr uint64_t kEpochNs = 1'000'000'000'000ull;

// Wall-clock budget per operation; the hardened walks are cycle-bounded, so
// anything slower than this is flagged. A true infinite loop cannot be
// interrupted from within the process — the bound on directory/free-list
// walks is what turns would-be hangs into clean errors.
constexpr uint64_t kHangBudgetNs = 5'000'000'000ull;

constexpr int kDirFiles = 40;
constexpr uint64_t kBigBytes = 20 * nvm::kPageSize;  // engages the indirect block
constexpr uint64_t kSecretBytes = 2 * nvm::kPageSize;
constexpr uint64_t kVaultBytes = nvm::kPageSize;

std::string FileName(int i) {
  char b[16];
  snprintf(b, sizeof(b), "f%04d", i);
  return b;
}

// Deterministic per-file content; `tag` distinguishes files.
std::string Pattern(uint32_t tag, size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; i++) {
    s[i] = static_cast<char>((tag * 167 + i * 131 + 7) & 0xff);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Trial plan

struct Patch {
  uint64_t off = 0;
  std::vector<uint8_t> bytes;
};

struct Trial {
  uint64_t id = 0;
  FaultClass cls = FaultClass::kControl;
  uint32_t victim = 0;
  std::string target;
  std::vector<Patch> patches;
  // The trial deliberately scribbles /big's data pages (used as raw material
  // for fabricated metadata); its content compare is then meaningless.
  bool big_data_patched = false;
};

// Everything the workers need: the quiescent image plus harvested offsets of
// the structures the campaign corrupts.
struct SetupInfo {
  std::vector<uint8_t> image;
  size_t dev_bytes = 0;
  uint64_t num_pages = 0;
  uint64_t alloc_table_off = 0;
  uint32_t root_cid = 0;
  uint32_t secret_cid = 0;  // private coffer of /secret (mode 0600)
  uint32_t vault_cid = 0;   // private coffer of /vault — the untouched sibling
  uint64_t big_ino = 0;     // inode page byte offsets
  uint64_t d_ino = 0;
  uint64_t secret_ino = 0;
  std::vector<uint64_t> big_pages;  // data page byte offsets, block order
  std::vector<uint64_t> secret_pages;
  std::vector<uint64_t> vault_pages;
  uint64_t d_l1 = 0;        // /d's L1 directory page
  uint64_t d_l2 = 0;        // first populated L2 page
  uint64_t dentry_off = 0;  // a live embedded dentry inside d_l2
  uint64_t root_pool = 0;   // AllocPool page byte offsets
  uint64_t secret_pool = 0;
  std::string err;
};

Patch P64(uint64_t off, uint64_t v) {
  Patch p;
  p.off = off;
  p.bytes.resize(8);
  memcpy(p.bytes.data(), &v, 8);
  return p;
}

Patch P32(uint64_t off, uint32_t v) {
  Patch p;
  p.off = off;
  p.bytes.resize(4);
  memcpy(p.bytes.data(), &v, 4);
  return p;
}

// A whole fabricated page whose first 8 bytes are `next` (a DentryRun with
// no live dentries).
Patch PRunPage(uint64_t off, uint64_t next) {
  Patch p;
  p.off = off;
  p.bytes.assign(nvm::kPageSize, 0);
  memcpy(p.bytes.data(), &next, 8);
  return p;
}

// ---------------------------------------------------------------------------
// Setup: run the workload, harvest corruption targets, snapshot.

SetupInfo Setup(const CampaignOptions& opts) {
  SetupInfo s;
  s.dev_bytes = opts.dev_bytes;

  nvm::Options no;
  no.size_bytes = opts.dev_bytes;
  nvm::NvmDevice dev(no);
  mpk::InstallDeviceHook(&dev);

  kernfs::FormatOptions fo;
  fo.root_mode = 0755;
  auto kfs = std::make_unique<kernfs::KernFs>(&dev, fo);
  kfs->set_kernel_crossing_ns(0);
  zofs::Options zo;
  zo.lease_ns = 1'000'000;
  auto fs = std::make_unique<fslib::FsLib>(kfs.get(), kCred, zo);

  auto teardown = [&]() {
    fs.reset();
    kfs.reset();
    mpk::BindThreadToProcess(nullptr);
  };
  auto fail = [&](const std::string& m) {
    s.err = m;
    teardown();
    return s;
  };

  auto put = [&](const std::string& path, uint16_t mode, const std::string& data) -> bool {
    auto fd = fs->Open(kCred, path, vfs::kCreate | vfs::kWrite, mode);
    if (!fd.ok()) {
      return false;
    }
    auto n = fs->Pwrite(*fd, data.data(), data.size(), 0);
    fs->Close(*fd);
    return n.ok() && *n == data.size();
  };

  if (!fs->Mkdir(kCred, "/d", 0755).ok()) {
    return fail("setup: mkdir /d failed");
  }
  for (int i = 0; i < kDirFiles; i++) {
    if (!put("/d/" + FileName(i), 0644, Pattern(i, 256))) {
      return fail("setup: create /d/" + FileName(i) + " failed");
    }
  }
  if (!put("/big", 0644, Pattern(1000, kBigBytes))) {
    return fail("setup: create /big failed");
  }
  // Owner-only files: ZoFS places each in its own coffer (paper §4.1), which
  // is what gives the campaign a cross-coffer boundary to attack.
  if (!put("/secret", 0600, Pattern(2000, kSecretBytes))) {
    return fail("setup: create /secret failed");
  }
  if (!put("/vault", 0600, Pattern(3000, kVaultBytes))) {
    return fail("setup: create /vault failed");
  }

  // Harvest target offsets. The harness reads the device raw here (fsck's
  // view); nothing below mutates it.
  zofs::ZoFs& z = fs->zofs();
  auto big = z.Lookup("/big", true);
  auto d = z.Lookup("/d", true);
  auto secret = z.Lookup("/secret", true);
  auto vault = z.Lookup("/vault", true);
  if (!big.ok() || !d.ok() || !secret.ok() || !vault.ok()) {
    return fail("setup: lookup of workload files failed");
  }
  s.root_cid = kfs->root_coffer_id();
  s.secret_cid = secret->coffer_id;
  s.vault_cid = vault->coffer_id;
  if (s.secret_cid == s.root_cid || s.vault_cid == s.root_cid || s.secret_cid == s.vault_cid) {
    return fail("setup: 0600 files did not split into private coffers");
  }
  s.big_ino = big->inode_off;
  s.d_ino = d->inode_off;
  s.secret_ino = secret->inode_off;

  auto pages_of = [&](const ufs::NodeRef& n, std::vector<uint64_t>* out) -> bool {
    uint64_t size = 0;
    auto idx = z.FilePages(n, &size);
    if (!idx.ok()) {
      return false;
    }
    for (uint64_t pg : *idx) {
      out->push_back(pg * nvm::kPageSize);
    }
    return !out->empty();
  };
  if (!pages_of(*big, &s.big_pages) || !pages_of(*secret, &s.secret_pages) ||
      !pages_of(*vault, &s.vault_pages) || s.big_pages.size() < 4) {
    return fail("setup: FilePages harvest failed");
  }

  const auto* di = reinterpret_cast<const zofs::Inode*>(dev.base() + s.d_ino);
  s.d_l1 = di->l1_dir;
  if (s.d_l1 == 0) {
    return fail("setup: /d has no L1 directory page");
  }
  const auto* slots = reinterpret_cast<const uint64_t*>(dev.base() + s.d_l1);
  for (uint64_t i = 0; i < zofs::kL1Slots && s.d_l2 == 0; i++) {
    s.d_l2 = slots[i];
  }
  if (s.d_l2 == 0) {
    return fail("setup: /d has no populated L2 page");
  }
  const auto* l2 = reinterpret_cast<const zofs::L2Page*>(dev.base() + s.d_l2);
  for (uint64_t i = 0; i < zofs::kL2Embedded; i++) {
    if (l2->embedded[i].in_use()) {
      s.dentry_off = s.d_l2 + offsetof(zofs::L2Page, embedded) + i * sizeof(zofs::Dentry);
      break;
    }
  }
  if (s.dentry_off == 0) {
    return fail("setup: no live embedded dentry in /d");
  }

  s.root_pool = kfs->RootPageOf(s.root_cid)->custom_off;
  s.secret_pool = kfs->RootPageOf(s.secret_cid)->custom_off;
  const auto* sb = reinterpret_cast<const kernfs::Superblock*>(dev.base());
  s.alloc_table_off = sb->alloc_table_off;
  s.num_pages = sb->num_pages;

  teardown();
  dev.SnapshotTo(&s.image);
  return s;
}

// ---------------------------------------------------------------------------
// Trial plan construction (deterministic in the seed)

std::vector<Trial> BuildTrials(const SetupInfo& s, const CampaignOptions& opts) {
  common::Rng rng(opts.seed);
  std::vector<Trial> out;
  auto want = [&](FaultClass c) {
    return opts.classes.empty() ||
           std::find(opts.classes.begin(), opts.classes.end(), c) != opts.classes.end();
  };
  auto add = [&](FaultClass c, uint32_t victim, std::string target, std::vector<Patch> patches,
                 bool big_data_patched = false) {
    if (c != FaultClass::kControl && !want(c)) {
      return;
    }
    Trial t;
    t.id = out.size();
    t.cls = c;
    t.victim = victim;
    t.target = std::move(target);
    t.patches = std::move(patches);
    t.big_data_patched = big_data_patched;
    out.push_back(std::move(t));
  };

  add(FaultClass::kControl, s.root_cid, "no corruption (harness self-check)", {});

  // -- Volatile fault: a queued submission-channel entry scribbled in flight.
  // No image patch: RunTrial corrupts the live ring before the op battery.
  add(FaultClass::kChanEntryScribble, s.root_cid, "async channel entry scribbled in flight",
      {});

  // -- Random single-bit flips across whole persistent structures.
  struct FlipTarget {
    FaultClass cls;
    const char* what;
    uint64_t off;
    size_t len;
    uint32_t victim;
  };
  const FlipTarget flips[] = {
      {FaultClass::kInodeBitFlip, "inode /big", s.big_ino, sizeof(zofs::Inode), s.root_cid},
      {FaultClass::kInodeBitFlip, "inode /d", s.d_ino, sizeof(zofs::Inode), s.root_cid},
      {FaultClass::kInodeBitFlip, "inode /secret", s.secret_ino, sizeof(zofs::Inode),
       s.secret_cid},
      {FaultClass::kDirentBitFlip, "dentry in /d", s.dentry_off, sizeof(zofs::Dentry),
       s.root_cid},
  };
  for (const FlipTarget& t : flips) {
    if (!want(t.cls)) {
      continue;
    }
    for (uint32_t k = 0; k < opts.flips_per_struct; k++) {
      const uint64_t byte = rng.Below(t.len);
      const uint32_t bit = static_cast<uint32_t>(rng.Below(8));
      Patch p;
      p.off = t.off + byte;
      p.bytes = {static_cast<uint8_t>(s.image[p.off] ^ (1u << bit))};
      char desc[96];
      snprintf(desc, sizeof(desc), "%s byte %llu bit %u", t.what,
               static_cast<unsigned long long>(byte), bit);
      add(t.cls, t.victim, desc, {std::move(p)});
    }
  }

  // -- Block pointers out of range / misaligned.
  const uint64_t sec_d0 = s.secret_ino + offsetof(zofs::Inode, direct);
  const uint64_t big_d0 = s.big_ino + offsetof(zofs::Inode, direct);
  const uint64_t big_ind = s.big_ino + offsetof(zofs::Inode, indirect);
  add(FaultClass::kBlkptrOutOfRange, s.secret_cid, "/secret direct[0] -> end of device",
      {P64(sec_d0, s.dev_bytes)});
  add(FaultClass::kBlkptrOutOfRange, s.secret_cid, "/secret direct[0] -> far out of range",
      {P64(sec_d0, s.dev_bytes + 37 * nvm::kPageSize)});
  add(FaultClass::kBlkptrOutOfRange, s.secret_cid, "/secret direct[0] -> misaligned 0x3",
      {P64(sec_d0, 0x3)});
  add(FaultClass::kBlkptrOutOfRange, s.root_cid, "/big indirect -> end of device",
      {P64(big_ind, s.dev_bytes)});
  add(FaultClass::kBlkptrOutOfRange, s.root_cid, "/big indirect -> misaligned 0xfff",
      {P64(big_ind, 0xfff)});

  // -- Block pointers into pages another coffer owns (the MPK wall).
  add(FaultClass::kBlkptrCrossCoffer, s.secret_cid, "/secret direct[0] -> root-coffer data page",
      {P64(sec_d0, s.big_pages[0])});
  add(FaultClass::kBlkptrCrossCoffer, s.secret_cid, "/secret direct[0] -> /vault data page",
      {P64(sec_d0, s.vault_pages[0])});
  add(FaultClass::kBlkptrCrossCoffer, s.root_cid, "/big direct[0] -> /secret data page",
      {P64(big_d0, s.secret_pages[0])});
  // Same-coffer misdirection: MPK cannot catch this (protection is
  // coffer-granular) — the byte-compare oracle should see silent data damage.
  add(FaultClass::kBlkptrCrossCoffer, s.secret_cid,
      "/secret direct[1] -> own inode page (same coffer)", {P64(sec_d0 + 8, s.secret_ino)});

  // -- Allocation-table lies.
  const uint64_t big_slot =
      s.alloc_table_off + (s.big_pages[0] / nvm::kPageSize) * sizeof(kernfs::AllocEntry);
  const uint64_t vault_slot =
      s.alloc_table_off + (s.vault_pages[0] / nvm::kPageSize) * sizeof(kernfs::AllocEntry);
  add(FaultClass::kAllocRunLie, s.root_cid, "alloc run_len -> 0xffffffff at /big data page",
      {P32(big_slot + 4, 0xffffffffu)});
  add(FaultClass::kAllocRunLie, s.root_cid, "alloc run_len -> 0 at /big data page",
      {P32(big_slot + 4, 0)});
  // The thief (root) is the victim here, so the /vault liveness read still
  // runs and meets the stolen page; the patched-table oracle excludes the
  // page itself from the sibling set (it now reads as root-owned).
  add(FaultClass::kAllocRunLie, s.root_cid, "alloc owner of /vault data page -> root coffer",
      {P32(vault_slot, s.root_cid)});

  // -- Free-list garbage (root pool, list 0 — the list setup populated; the
  // owner/lease words are zeroed so the trial thread claims exactly this
  // list and meets the poisoned head).
  const uint64_t l0 = s.root_pool + offsetof(zofs::AllocPool, lists);
  auto freelist = [&](const char* what, uint64_t head) {
    add(FaultClass::kFreeListGarbage, s.root_cid, what,
        {P64(l0 + offsetof(zofs::LeasedFreeList, owner_tid), 0),
         P64(l0 + offsetof(zofs::LeasedFreeList, lease_expiry_ns), 0),
         P64(l0 + offsetof(zofs::LeasedFreeList, head), head),
         P64(l0 + offsetof(zofs::LeasedFreeList, count), 100)});
  };
  freelist("root free-list head -> 0xdeadbeef", 0xdeadbeefull);
  freelist("root free-list head -> unowned tail page", s.dev_bytes - nvm::kPageSize);
  freelist("root free-list head -> /vault data page", s.vault_pages[0]);

  // -- Lease-word garbage: allocator leases and inode lock words.
  add(FaultClass::kLeaseGarbage, s.root_cid, "root free-list lease -> implausibly far future",
      {P64(l0 + offsetof(zofs::LeasedFreeList, owner_tid), 0x4141414141414141ull),
       P64(l0 + offsetof(zofs::LeasedFreeList, lease_expiry_ns), ~0ull)});
  add(FaultClass::kLeaseGarbage, s.root_cid, "root free-list lease -> live 30s, dead owner",
      {P64(l0 + offsetof(zofs::LeasedFreeList, owner_tid), 0x4242424242424242ull),
       P64(l0 + offsetof(zofs::LeasedFreeList, lease_expiry_ns),
           kEpochNs + 30'000'000'000ull)});
  add(FaultClass::kLeaseGarbage, s.root_cid, "/big inode lock -> implausible expiry",
      {P64(s.big_ino + offsetof(zofs::Inode, lock_owner), 0x4343434343434343ull),
       P64(s.big_ino + offsetof(zofs::Inode, lock_expiry_ns), ~0ull)});
  add(FaultClass::kLeaseGarbage, s.root_cid, "/big inode lock -> live 30s, dead owner",
      {P64(s.big_ino + offsetof(zofs::Inode, lock_owner), 0x4444444444444444ull),
       P64(s.big_ino + offsetof(zofs::Inode, lock_expiry_ns), kEpochNs + 30'000'000'000ull)});

  // -- Directory hash-chain cycles. Two of /big's data pages (root coffer,
  // so they pass ownership validation) become a fabricated run chain that
  // loops; bounded walks must detect it.
  const uint64_t bucket0 = s.d_l2 + offsetof(zofs::L2Page, buckets);
  add(FaultClass::kDirCycle, s.root_cid, "dentry-run chain cycle A -> B -> A",
      {PRunPage(s.big_pages[2], s.big_pages[3]), PRunPage(s.big_pages[3], s.big_pages[2]),
       P64(bucket0, s.big_pages[2])},
      /*big_data_patched=*/true);
  add(FaultClass::kDirCycle, s.root_cid, "bucket -> its own L2 page", {P64(bucket0, s.d_l2)});
  add(FaultClass::kDirCycle, s.root_cid, "/d l1_dir -> /d inode page",
      {P64(s.d_ino + offsetof(zofs::Inode, l1_dir), s.d_ino)});

  // -- Coffer-root garbage (kernel metadata the µFS reads via coffer_map).
  const uint64_t sroot = static_cast<uint64_t>(s.secret_cid) * nvm::kPageSize;
  add(FaultClass::kCofferRootBogus, s.secret_cid, "/secret coffer-root magic -> 0x1337",
      {P64(sroot + offsetof(kernfs::CofferRoot, magic), 0x1337)});
  add(FaultClass::kCofferRootBogus, s.secret_cid, "/secret coffer-root custom_off -> misaligned",
      {P64(sroot + offsetof(kernfs::CofferRoot, custom_off), 0x123)});
  add(FaultClass::kCofferRootBogus, s.secret_cid,
      "/secret coffer-root custom_off -> root-coffer page",
      {P64(sroot + offsetof(kernfs::CofferRoot, custom_off), s.big_pages[0])});
  add(FaultClass::kCofferRootBogus, s.secret_cid, "/secret coffer-root root_inode_off -> garbage",
      {P64(sroot + offsetof(kernfs::CofferRoot, root_inode_off), 0xabcdef0)});

  if (opts.max_trials != 0 && out.size() > opts.max_trials) {
    out.resize(opts.max_trials);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trial execution

int Severity(Outcome o) {
  switch (o) {
    case Outcome::kBenign:
      return 0;
    case Outcome::kDetected:
      return 1;
    case Outcome::kSilentData:
      return 2;
    case Outcome::kHang:
      return 3;
    case Outcome::kCrash:
      return 4;
    case Outcome::kEscape:
      return 5;
  }
  return 0;
}

Outcome FromSeverity(int s) {
  switch (s) {
    case 1:
      return Outcome::kDetected;
    case 2:
      return Outcome::kSilentData;
    case 3:
      return Outcome::kHang;
    case 4:
      return Outcome::kCrash;
    case 5:
      return Outcome::kEscape;
    default:
      return Outcome::kBenign;
  }
}

// Collects the worst outcome seen so far plus the first detail at that
// severity.
struct Verdict {
  int worst = 0;
  std::string detail;

  void Note(Outcome o, const std::string& d) {
    const int s = Severity(o);
    if (s > worst) {
      worst = s;
      detail = d;
    }
  }
};

// Drives the op battery against a freshly-mounted stack on the corrupted
// image. All writes go to the root coffer and (when it is the victim) the
// secret coffer; /vault and — unless it is the victim — /secret are only
// read, so their pages back the byte-compare escape oracle.
void Battery(fslib::FsLib* fs, const SetupInfo& s, const Trial& t, Verdict* v) {
  auto op = [&](const char* name, auto&& fn) {
    const uint64_t t0 = common::RealNowNs();
    try {
      fn();
    } catch (const mpk::ViolationError&) {
      v->Note(Outcome::kCrash, std::string(name) + ": escaped simulated page fault");
    }
    if (common::RealNowNs() - t0 > kHangBudgetNs) {
      v->Note(Outcome::kHang, std::string(name) + ": exceeded watchdog budget");
    }
  };
  // An op error is a *detection* — unless it is kFault, the simulated
  // SIGSEGV: before FSLib's handler hardening that kills the process, so the
  // campaign counts it as a crash even though Guarded() now contains it.
  auto fail = [&](const char* name, Err e) {
    if (e == Err::kFault) {
      v->Note(Outcome::kCrash, std::string(name) + ": simulated page fault (kFault)");
    } else {
      v->Note(Outcome::kDetected, std::string(name) + ": " + common::ErrName(e));
    }
  };
  auto check_read = [&](const char* name, const std::string& path, const std::string& expect,
                        bool compare) {
    op(name, [&]() {
      auto fd = fs->Open(kCred, path, vfs::kRead, 0);
      if (!fd.ok()) {
        fail(name, fd.error());
        return;
      }
      std::string buf(expect.size(), '\0');
      auto n = fs->Pread(*fd, buf.data(), buf.size(), 0);
      fs->Close(*fd);
      if (!n.ok()) {
        fail(name, n.error());
      } else if (compare && (*n != expect.size() || buf != expect)) {
        v->Note(Outcome::kSilentData, std::string(name) + ": content mismatch");
      }
    });
  };

  op("stat /big", [&]() {
    auto st = fs->Stat(kCred, "/big");
    if (!st.ok()) {
      fail("stat /big", st.error());
    } else if (!t.big_data_patched && st->size != kBigBytes) {
      v->Note(Outcome::kSilentData, "stat /big: wrong size");
    }
  });
  check_read("read /big", "/big", Pattern(1000, kBigBytes), !t.big_data_patched);
  op("write /big", [&]() {
    auto fd = fs->Open(kCred, "/big", vfs::kWrite, 0);
    if (!fd.ok()) {
      fail("write /big", fd.error());
      return;
    }
    const std::string data = Pattern(1001, 64);
    auto n = fs->Pwrite(*fd, data.data(), data.size(), nvm::kPageSize);
    fs->Close(*fd);
    if (!n.ok()) {
      fail("write /big", n.error());
    }
  });
  op("readdir /d", [&]() {
    auto ents = fs->ReadDir(kCred, "/d");
    if (!ents.ok()) {
      fail("readdir /d", ents.error());
      return;
    }
    std::set<std::string> want;
    for (int i = 0; i < kDirFiles; i++) {
      want.insert(FileName(i));
    }
    int found = 0;
    for (const vfs::DirEntry& e : *ents) {
      if (want.count(e.name)) {
        found++;
      } else if (e.name != "." && e.name != ".." && e.name != "gnew") {
        v->Note(Outcome::kSilentData, "readdir /d: unexpected name");
      }
    }
    if (found != kDirFiles) {
      v->Note(Outcome::kSilentData, "readdir /d: missing entries");
    }
  });
  op("stat /d/f0007", [&]() {
    auto st = fs->Stat(kCred, "/d/" + FileName(7));
    if (!st.ok()) {
      fail("stat /d/f0007", st.error());
    }
  });
  op("create /d/gnew", [&]() {
    auto fd = fs->Open(kCred, "/d/gnew", vfs::kCreate | vfs::kWrite, 0644);
    if (!fd.ok()) {
      fail("create /d/gnew", fd.error());
      return;
    }
    const std::string data = Pattern(1002, 64);
    auto n = fs->Pwrite(*fd, data.data(), data.size(), 0);
    fs->Close(*fd);
    if (!n.ok()) {
      fail("create /d/gnew", n.error());
    }
  });
  check_read("read /secret", "/secret", Pattern(2000, kSecretBytes), true);
  if (t.victim == s.secret_cid) {
    // Exercise the victim coffer's allocator (extending write) — this is
    // what walks a corrupted pool/free list when those are the targets.
    op("extend /secret", [&]() {
      auto fd = fs->Open(kCred, "/secret", vfs::kWrite, 0);
      if (!fd.ok()) {
        fail("extend /secret", fd.error());
        return;
      }
      const std::string data = Pattern(2001, nvm::kPageSize);
      auto n = fs->Pwrite(*fd, data.data(), data.size(), kSecretBytes);
      fs->Close(*fd);
      if (!n.ok()) {
        fail("extend /secret", n.error());
      }
    });
  }
  // Root-coffer liveness: a multi-page create exercises the (possibly
  // corrupted) root allocator and must never fault.
  op("create /t_live", [&]() {
    auto fd = fs->Open(kCred, "/t_live", vfs::kCreate | vfs::kWrite, 0644);
    if (!fd.ok()) {
      fail("create /t_live", fd.error());
      return;
    }
    const std::string data = Pattern(4000, 2 * nvm::kPageSize);
    auto n = fs->Pwrite(*fd, data.data(), data.size(), 0);
    if (n.ok()) {
      std::string buf(data.size(), '\0');
      auto r = fs->Pread(*fd, buf.data(), buf.size(), 0);
      if (!r.ok()) {
        fail("create /t_live", r.error());
      } else if (buf != data) {
        v->Note(Outcome::kSilentData, "create /t_live: readback mismatch");
      }
    } else {
      fail("create /t_live", n.error());
    }
    fs->Close(*fd);
  });
  if (t.victim != s.vault_cid) {
    check_read("read /vault", "/vault", Pattern(3000, kVaultBytes), true);
  }
}

// The escape oracle: any byte change in a page that — per the *corrupted*
// allocation table — belongs to a coffer other than the victim or the root
// coffer means damage crossed the MPK wall. (Root-coffer pages are modified
// legitimately by the battery, so the oracle watches only the untouched
// sibling coffers; /vault exists solely for this.)
void CheckSiblings(nvm::NvmDevice* dev, const std::vector<uint8_t>& img, const SetupInfo& s,
                   const Trial& t, const char* when, Verdict* v) {
  for (uint64_t pg = 0; pg < s.num_pages; pg++) {
    uint32_t owner;
    memcpy(&owner, img.data() + s.alloc_table_off + pg * sizeof(kernfs::AllocEntry), 4);
    if (owner == 0 || owner == kernfs::kKernelOwner || owner == s.root_cid ||
        owner == t.victim) {
      continue;
    }
    if (memcmp(dev->base() + pg * nvm::kPageSize, img.data() + pg * nvm::kPageSize,
               nvm::kPageSize) != 0) {
      char d[128];
      snprintf(d, sizeof(d), "sibling coffer %u page %llu modified %s", owner,
               static_cast<unsigned long long>(pg), when);
      v->Note(Outcome::kEscape, d);
      return;
    }
  }
}

void RunTrial(nvm::NvmDevice* dev, const SetupInfo& s, const CampaignOptions& opts,
              const Trial& t, TrialResult* out) {
  out->trial_id = t.id;
  out->fault = t.cls;
  out->victim_coffer = t.victim;
  out->target = t.target;
  out->offset = t.patches.empty() ? 0 : t.patches[0].off;

  std::vector<uint8_t> img = s.image;
  for (const Patch& p : t.patches) {
    memcpy(img.data() + p.off, p.bytes.data(), p.bytes.size());
  }
  dev->RestoreFrom(img.data(), img.size());

  Verdict v;
  zofs::Options zo;
  zo.raw_deref_for_test = opts.raw_deref_for_test;
  zo.lease_ns = 1'000'000;

  // Phase 1: remount and drive the op battery. Whatever the image looks
  // like, nothing may leak a simulated page fault past FSLib.
  try {
    auto kfs = std::make_unique<kernfs::KernFs>(dev);
    kfs->set_kernel_crossing_ns(0);
    auto fs = std::make_unique<fslib::FsLib>(kfs.get(), kCred, zo);
    if (t.cls == FaultClass::kChanEntryScribble) {
      // The submission ring is volatile DRAM, so this fault cannot be planted
      // in the image: queue an async refill, scribble it in place, and force
      // the drain. The kernel must refuse the entry with kInval before
      // dispatching — anything else is a protection failure.
      kernfs::Channel* ch = fs->zofs().channels().Current();
      if (ch == nullptr) {
        v.Note(Outcome::kSilentData, "channel: no channel to corrupt (channels disabled)");
      } else {
        ch->SubmitEnlarge(kfs->root_coffer_id(), 8);
        ch->CorruptQueuedForTest(0);
        ch->Flush();
        bool refused = false;
        for (const kernfs::ChanCompletion& c : ch->Harvest()) {
          if (!c.status.ok() && c.status.error() == Err::kInval) {
            refused = true;
          }
        }
        if (refused) {
          v.Note(Outcome::kDetected, "channel: scribbled in-flight entry refused (kInval)");
        } else {
          v.Note(Outcome::kSilentData,
                 "channel: scribbled in-flight entry dispatched undetected");
        }
      }
    }
    Battery(fs.get(), s, t, &v);
    fs.reset();
    kfs.reset();
  } catch (const mpk::ViolationError&) {
    v.Note(Outcome::kCrash, "mount/ops: escaped simulated page fault");
  }
  mpk::BindThreadToProcess(nullptr);
  CheckSiblings(dev, img, s, t, "after ops", &v);

  // Phase 2: KernFS-mediated repair of the victim coffer, then a liveness
  // probe. Recovery runs on arbitrary garbage, so it must be fault-free too.
  try {
    auto kfs = std::make_unique<kernfs::KernFs>(dev);
    kfs->set_kernel_crossing_ns(0);
    auto fs = std::make_unique<fslib::FsLib>(kfs.get(), kCred, zo);
    auto r = fs->zofs().RecoverCoffer(t.victim);
    if (!r.ok()) {
      if (r.error() == Err::kFault) {
        v.Note(Outcome::kCrash, "recover: simulated page fault (kFault)");
      } else {
        v.Note(Outcome::kDetected, std::string("recover: ") + common::ErrName(r.error()));
      }
    }
    auto st = fs->Stat(kCred, "/big");
    if (!st.ok() && st.error() == Err::kFault) {
      v.Note(Outcome::kCrash, "post-recovery stat: simulated page fault");
    }
    fs.reset();
    kfs.reset();
  } catch (const mpk::ViolationError&) {
    v.Note(Outcome::kCrash, "recover: escaped simulated page fault");
  }
  mpk::BindThreadToProcess(nullptr);
  CheckSiblings(dev, img, s, t, "after recovery", &v);

  out->outcome = FromSeverity(v.worst);
  out->detail = v.detail;
}

void Worker(const SetupInfo* s, const CampaignOptions* opts, const Trial* trials, size_t n,
            TrialResult* results) {
  nvm::Options no;
  no.size_bytes = opts->dev_bytes;
  nvm::NvmDevice dev(no);
  mpk::InstallDeviceHook(&dev);
  for (size_t i = 0; i < n; i++) {
    RunTrial(&dev, *s, *opts, trials[i], &results[i]);
  }
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char b[8];
          snprintf(b, sizeof(b), "\\u%04x", c);
          out += b;
        } else {
          out += c;
        }
    }
  }
  return out;
}

size_t ClassIndex(FaultClass c) {
  for (size_t i = 0; i < std::size(kAllFaultClasses); i++) {
    if (kAllFaultClasses[i] == c) {
      return i;
    }
  }
  return 0;
}

}  // namespace

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kControl:
      return "control";
    case FaultClass::kInodeBitFlip:
      return "inode-bit-flip";
    case FaultClass::kDirentBitFlip:
      return "dirent-bit-flip";
    case FaultClass::kBlkptrOutOfRange:
      return "blkptr-out-of-range";
    case FaultClass::kBlkptrCrossCoffer:
      return "blkptr-cross-coffer";
    case FaultClass::kAllocRunLie:
      return "alloc-run-lie";
    case FaultClass::kFreeListGarbage:
      return "free-list-garbage";
    case FaultClass::kLeaseGarbage:
      return "lease-garbage";
    case FaultClass::kDirCycle:
      return "dir-cycle";
    case FaultClass::kChanEntryScribble:
      return "chan-entry-scribble";
    case FaultClass::kCofferRootBogus:
      return "coffer-root-bogus";
  }
  return "?";
}

bool ParseFaultClass(const std::string& s, FaultClass* out) {
  for (FaultClass c : kAllFaultClasses) {
    if (s == FaultClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kDetected:
      return "detected";
    case Outcome::kBenign:
      return "benign";
    case Outcome::kSilentData:
      return "silent-data";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kHang:
      return "hang";
    case Outcome::kEscape:
      return "escape";
  }
  return "?";
}

CampaignReport RunCampaign(const CampaignOptions& opts) {
  CampaignReport rep;
  rep.seed = opts.seed;
  rep.raw_mode = opts.raw_deref_for_test;
  rep.by_class.resize(std::size(kAllFaultClasses));

  // Pin logical time for the whole campaign (see kEpochNs).
  common::SetNowNsForTest(kEpochNs);

  SetupInfo s = Setup(opts);
  if (!s.err.empty()) {
    rep.setup_error = s.err;
    common::SetNowNsForTest(0);
    return rep;
  }
  std::vector<Trial> trials = BuildTrials(s, opts);
  rep.results.resize(trials.size());

  const size_t nthreads =
      std::max<size_t>(1, std::min<size_t>(opts.threads <= 0 ? 1 : opts.threads, trials.size()));
  const size_t chunk = (trials.size() + nthreads - 1) / nthreads;
  std::vector<std::thread> workers;
  for (size_t w = 0; w < nthreads; w++) {
    const size_t lo = w * chunk;
    const size_t hi = std::min(trials.size(), lo + chunk);
    if (lo >= hi) {
      break;
    }
    workers.emplace_back(Worker, &s, &opts, trials.data() + lo, hi - lo, rep.results.data() + lo);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  common::SetNowNsForTest(0);

  rep.trials = rep.results.size();
  for (const TrialResult& r : rep.results) {
    ClassStats& cs = rep.by_class[ClassIndex(r.fault)];
    auto bump = [&](ClassStats* st) {
      st->trials++;
      switch (r.outcome) {
        case Outcome::kDetected:
          st->detected++;
          break;
        case Outcome::kBenign:
          st->benign++;
          break;
        case Outcome::kSilentData:
          st->silent_data++;
          break;
        case Outcome::kCrash:
          st->crashes++;
          break;
        case Outcome::kHang:
          st->hangs++;
          break;
        case Outcome::kEscape:
          st->escapes++;
          break;
      }
    };
    bump(&cs);
    bump(&rep.totals);
  }
  return rep;
}

std::string CampaignReport::ToText() const {
  std::ostringstream os;
  os << "fault-injection campaign: seed=" << seed
     << " mode=" << (raw_mode ? "raw-deref (planted)" : "hardened") << " trials=" << trials
     << "\n";
  if (!setup_error.empty()) {
    os << "SETUP FAILED: " << setup_error << "\n";
    return os.str();
  }
  os << "  class                 trials detected benign silent crash hang escape\n";
  for (size_t i = 0; i < by_class.size(); i++) {
    const ClassStats& c = by_class[i];
    if (c.trials == 0) {
      continue;
    }
    char line[160];
    snprintf(line, sizeof(line), "  %-21s %6llu %8llu %6llu %6llu %5llu %4llu %6llu\n",
             FaultClassName(kAllFaultClasses[i]), static_cast<unsigned long long>(c.trials),
             static_cast<unsigned long long>(c.detected),
             static_cast<unsigned long long>(c.benign),
             static_cast<unsigned long long>(c.silent_data),
             static_cast<unsigned long long>(c.crashes),
             static_cast<unsigned long long>(c.hangs),
             static_cast<unsigned long long>(c.escapes));
    os << line;
  }
  os << "totals: detected=" << totals.detected << " benign=" << totals.benign
     << " silent-data=" << totals.silent_data << " crash=" << totals.crashes
     << " hang=" << totals.hangs << " escape=" << totals.escapes << "\n";
  for (const TrialResult& r : results) {
    os << "  [" << r.trial_id << "] " << FaultClassName(r.fault) << " " << r.target << " -> "
       << OutcomeName(r.outcome);
    if (!r.detail.empty()) {
      os << " (" << r.detail << ")";
    }
    os << "\n";
  }
  os << "verdict: " << (Clean() ? "CLEAN" : "NOT CLEAN") << "\n";
  return os.str();
}

std::string CampaignReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"raw_mode\": " << (raw_mode ? "true" : "false") << ",\n";
  os << "  \"trials\": " << trials << ",\n";
  if (!setup_error.empty()) {
    os << "  \"setup_error\": \"" << JsonEscape(setup_error) << "\",\n";
  }
  auto stats = [&](const ClassStats& c) {
    os << "\"trials\": " << c.trials << ", \"detected\": " << c.detected
       << ", \"benign\": " << c.benign << ", \"silent_data\": " << c.silent_data
       << ", \"crashes\": " << c.crashes << ", \"hangs\": " << c.hangs
       << ", \"escapes\": " << c.escapes;
  };
  os << "  \"totals\": {";
  stats(totals);
  os << "},\n";
  os << "  \"classes\": [\n";
  bool first = true;
  for (size_t i = 0; i < by_class.size(); i++) {
    if (by_class[i].trials == 0) {
      continue;
    }
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "    {\"class\": \"" << FaultClassName(kAllFaultClasses[i]) << "\", ";
    stats(by_class[i]);
    os << "}";
  }
  os << "\n  ],\n";
  os << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const TrialResult& r = results[i];
    os << "    {\"id\": " << r.trial_id << ", \"class\": \"" << FaultClassName(r.fault)
       << "\", \"victim\": " << r.victim_coffer << ", \"offset\": " << r.offset
       << ", \"target\": \"" << JsonEscape(r.target) << "\", \"outcome\": \""
       << OutcomeName(r.outcome) << "\", \"detail\": \"" << JsonEscape(r.detail) << "\"}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"clean\": " << (Clean() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace faultinj
