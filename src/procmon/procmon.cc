#include "src/procmon/procmon.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/clock.h"
#include "src/common/killpoint.h"
#include "src/common/rand.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/keyclass.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"
#include "src/zofs/alloc.h"
#include "src/zofs/zofs.h"

namespace procmon {

namespace {

// One armed death site; fires at most once per arming.
struct KillArm {
  const char* point = nullptr;
  bool fired = false;
};

bool KillHandler(void* ctx, const char* point) {
  auto* arm = static_cast<KillArm*>(ctx);
  if (arm->point != nullptr && !arm->fired && std::strcmp(arm->point, point) == 0) {
    arm->fired = true;
    return true;
  }
  return false;
}

// Key-pressure mode: 18 pairwise-distinct permission sets, each spawning its
// own coffer (and so its own protection class) under the tenant dir. With
// the tenant's base coffers on top every process exceeds the 15 usable MPK
// keys, forcing the LRU key window to evict/retag continuously. All modes
// keep owner rwx so the tenant itself is never locked out.
constexpr uint16_t kKeyPressureModes[18] = {0700, 0702, 0704, 0706, 0720, 0722,
                                            0724, 0726, 0740, 0742, 0744, 0746,
                                            0750, 0752, 0754, 0756, 0760, 0762};
constexpr uint32_t kKeyPressureDirs = 18;

// A simulated tenant: its own uid (so its files split into coffers other
// tenants cannot even map), its own lease identity, and a shadow model of
// every byte it has made durable (written + fsync'd + op returned).
struct Tenant {
  uint32_t uid = 0;
  uint64_t vtid = 0;
  std::string dir;
  std::unique_ptr<fslib::FsLib> fs;
  vfs::Cred cred;
  // Kill-target scratch files, never entered into the durable model (a kill
  // interrupts an op on them, leaving their content undefined).
  vfs::Fd scratch_fd = -1;  // random-access target (inode-lock / channel kills)
  vfs::Fd klog_fd = -1;     // append target (staged-intent kills)
  vfs::Fd alog_fd = -1;     // tracked append log
  // path -> exact durable content (the syscall-durability oracle).
  std::map<std::string, std::string> durable;
  // Stray writes landed in this tenant's coffers: its data is legally
  // damaged, so the durability oracle stands down for it.
  bool tainted = false;
  // Round-robin cursor over the key-pressure dirs (key_pressure mode only).
  uint32_t key_cursor = 0;
};

class Soak {
 public:
  explicit Soak(const SoakOptions& opts)
      : opts_(opts),
        rng_(opts.seed),
        base_steals_(zofs::LockStealCount()),
        base_repairs_(zofs::OnlineRepairCount()),
        base_lists_(zofs::ReapedListCount()),
        base_mappings_(kernfs::ReapedMappingCount()),
        base_grants_(kernfs::ReapedGrantPageCount()),
        base_kevict_(mpk::KeyEvictionCount()),
        base_kretag_(mpk::KeyRetagPageCount()) {
    rep_.seed = opts.seed;
  }

  SoakReport Run();

 private:
  static constexpr uint64_t kBaseNs = 1'000'000'000ull;
  static constexpr uint64_t kLeaseJumpNs = 10'000'000'000ull;  // > lease + backoff

  void Boot(bool format);
  void MakeTenant(Tenant* t, uint32_t id);   // may throw ProcessKilledError
  void ReopenFds(Tenant* t);
  void RecycleGracefully(Tenant* t);
  void TenantOps(Tenant* t);
  void KillOne(uint32_t round);
  void TargetedOp(Tenant* t, const char* point, uint32_t seq);
  void ProcessCorpse(Tenant* victim);
  void JanitorRepairAndVerify(const Tenant& victim);
  void JanitorSweepLists();
  void CrashRemount();
  void VerifyDurable(fslib::FsLib* fs, const vfs::Cred& cred, const Tenant& t);
  std::unordered_set<uint64_t> PagesOwnedBy(uint32_t uid);

  SoakOptions opts_;
  SoakReport rep_;
  common::Rng rng_;
  KillArm arm_;
  const uint64_t base_steals_, base_repairs_, base_lists_, base_mappings_, base_grants_;
  const uint64_t base_kevict_, base_kretag_;

  std::unique_ptr<nvm::NvmDevice> dev_;
  std::unique_ptr<kernfs::KernFs> kfs_;
  std::unique_ptr<fslib::FsLib> janitor_;
  const vfs::Cred root_cred_{0, 0};
  const uint64_t janitor_vtid_ = 7;
  std::vector<Tenant> tenants_;
  // Abandoned FsLibs held until the reaper has drained their channel rings.
  std::vector<std::unique_ptr<fslib::FsLib>> morgue_;
  std::vector<uint32_t> retired_uids_;  // corruption targets
  uint32_t next_tenant_id_ = 0;
  uint32_t kill_cursor_ = 0;
};

void Soak::Boot(bool format) {
  if (format) {
    kernfs::FormatOptions f;
    f.root_mode = 0777;  // tenants create their own /tN under the shared root
    kfs_ = std::make_unique<kernfs::KernFs>(dev_.get(), f);
  } else {
    kfs_ = std::make_unique<kernfs::KernFs>(dev_.get());
  }
  kfs_->set_kernel_crossing_ns(0);
  janitor_ = std::make_unique<fslib::FsLib>(kfs_.get(), root_cred_);
  mpk::BindThreadToProcess(nullptr);
}

void Soak::MakeTenant(Tenant* t, uint32_t id) {
  t->uid = 100 + id;
  t->vtid = 1000 + id;
  t->dir = "/t" + std::to_string(id);
  t->cred = vfs::Cred{t->uid, t->uid};
  t->fs = std::make_unique<fslib::FsLib>(kfs_.get(), t->cred);
  // Everything from here on may hit an armed kill point (the
  // holding-leased-list kill targets a fresh tenant's first allocations).
  zofs::ScopedTidOverride tid(t->vtid);
  t->fs->BindThread();
  if (!t->fs->Mkdir(t->cred, t->dir, 0700).ok()) {
    rep_.op_errors++;
  }
  if (opts_.key_pressure) {
    // Every mode is its own coffer, so its own protection class: together
    // with the tenant's base coffers this process now needs more keys than
    // the hardware has, and lives on the LRU key window.
    for (uint32_t d = 0; d < kKeyPressureDirs; d++) {
      if (!t->fs->Mkdir(t->cred, t->dir + "/m" + std::to_string(d), kKeyPressureModes[d]).ok()) {
        rep_.op_errors++;
      }
    }
  }
  ReopenFds(t);
}

void Soak::ReopenFds(Tenant* t) {
  auto open = [&](const char* leaf, uint32_t flags) {
    auto fd = t->fs->Open(t->cred, t->dir + "/" + leaf, flags | vfs::kCreate, 0600);
    return fd.ok() ? *fd : -1;
  };
  t->scratch_fd = open("scratch", vfs::kRdWr);
  t->klog_fd = open("klog", vfs::kWrite | vfs::kAppend);
  t->alog_fd = open("alog", vfs::kWrite | vfs::kAppend);
}

void Soak::RecycleGracefully(Tenant* t) {
  // The graceful-exit path: the FsLib destructor drains channels and
  // DestroyProcess returns every unharvested grant (the leak fix under test).
  zofs::ScopedTidOverride tid(t->vtid);
  t->fs->BindThread();
  t->fs.reset();
  t->fs = std::make_unique<fslib::FsLib>(kfs_.get(), t->cred);
  t->fs->BindThread();
  ReopenFds(t);
  mpk::BindThreadToProcess(nullptr);
}

void Soak::TenantOps(Tenant* t) {
  zofs::ScopedTidOverride tid(t->vtid);
  t->fs->BindThread();
  for (uint32_t i = 0; i < opts_.ops_per_tenant_per_round; i++) {
    rep_.ops++;
    const uint64_t r = rng_.Below(100);
    if (r < 30) {
      // Durable whole-file write.
      const std::string name = t->dir + "/f" + std::to_string(rng_.Below(8));
      std::string content(rng_.Between(100, 8000), 0);
      rng_.Fill(content.data(), content.size());
      auto fd = t->fs->Open(t->cred, name, vfs::kCreate | vfs::kWrite | vfs::kTrunc, 0600);
      if (fd.ok() && t->fs->Pwrite(*fd, content.data(), content.size(), 0).ok() &&
          t->fs->Fsync(*fd).ok()) {
        t->durable[name] = std::move(content);
      } else {
        rep_.op_errors++;
      }
      if (fd.ok()) {
        t->fs->Close(*fd);
      }
    } else if (r < 45) {
      // Durable append.
      std::string chunk(rng_.Between(50, 3000), 0);
      rng_.Fill(chunk.data(), chunk.size());
      if (t->alog_fd >= 0 && t->fs->Write(t->alog_fd, chunk.data(), chunk.size()).ok() &&
          t->fs->Fsync(t->alog_fd).ok()) {
        t->durable[t->dir + "/alog"] += chunk;
      } else {
        rep_.op_errors++;
      }
    } else if (r < 55) {
      // Continuous durability oracle: read a durable file back right now.
      if (!t->durable.empty()) {
        auto it = t->durable.begin();
        std::advance(it, rng_.Below(t->durable.size()));
        auto fd = t->fs->Open(t->cred, it->first, vfs::kRead, 0);
        bool ok = false;
        if (fd.ok()) {
          std::string got(it->second.size(), 0);
          auto n = t->fs->Pread(*fd, got.data(), got.size(), 0);
          ok = n.ok() && *n == got.size() && got == it->second;
          t->fs->Close(*fd);
        }
        if (!ok && !t->tainted) {
          rep_.durability_violations++;
        }
      }
    } else if (r < 70) {
      // Rename within the tenant dir.
      const uint64_t k = rng_.Below(8);
      const std::string src = t->dir + "/f" + std::to_string(k);
      const std::string dst = t->dir + "/g" + std::to_string(k);
      if (t->durable.count(src) != 0) {
        if (t->fs->Rename(t->cred, src, dst).ok()) {
          t->durable[dst] = std::move(t->durable[src]);
          t->durable.erase(src);
        } else {
          rep_.op_errors++;
        }
      }
    } else if (r < 80) {
      const uint64_t k = rng_.Below(8);
      const std::string name =
          t->dir + (rng_.Below(2) == 0 ? "/f" : "/g") + std::to_string(k);
      if (t->durable.count(name) != 0) {
        if (t->fs->Unlink(t->cred, name).ok()) {
          t->durable.erase(name);
        } else {
          rep_.op_errors++;
        }
      }
    } else if (r < 90) {
      if (!t->fs->Stat(t->cred, t->dir).ok() || !t->fs->ReadDir(t->cred, t->dir).ok()) {
        rep_.op_errors++;
      }
    } else {
      // Untracked allocator churn on the scratch file.
      std::string junk(rng_.Between(4096, 65536), 0);
      rng_.Fill(junk.data(), junk.size());
      if (t->scratch_fd < 0 ||
          !t->fs->Pwrite(t->scratch_fd, junk.data(), junk.size(), rng_.Below(16) * 4096).ok()) {
        rep_.op_errors++;
      }
    }
    if (opts_.key_pressure) {
      // Rider traffic: touch the next cold class every op. The file takes
      // the dir's mode so it lands in the dir's coffer (same class) instead
      // of minting yet another one. Untracked by the durability oracle —
      // its job is key-window churn, not data.
      const uint32_t d = t->key_cursor++ % kKeyPressureDirs;
      const std::string name = t->dir + "/m" + std::to_string(d) + "/kp";
      auto fd = t->fs->Open(t->cred, name, vfs::kCreate | vfs::kWrite, kKeyPressureModes[d]);
      if (fd.ok()) {
        char b = static_cast<char>('a' + d);
        if (!t->fs->Pwrite(*fd, &b, 1, 0).ok()) {
          rep_.op_errors++;
        }
        t->fs->Close(*fd);
      } else {
        rep_.op_errors++;
      }
    }
  }
  mpk::BindThreadToProcess(nullptr);
}

// Runs the op whose mid-flight state the armed point interrupts. A completed
// op (point did not fire this round) is harmless: every target is scratch
// state outside the durable model.
void Soak::TargetedOp(Tenant* t, const char* point, uint32_t seq) {
  std::string buf(3 * 4096, static_cast<char>('k'));
  if (std::strcmp(point, common::kKillHoldingInodeLock) == 0) {
    (void)t->fs->Pwrite(t->scratch_fd, buf.data(), 4096, 0);
  } else if (std::strcmp(point, common::kKillStagedIntentPublished) == 0) {
    // The intent publishes at the epoch's durability point, so the kill
    // lands inside the Fsync: intent committed, FlushSet undrained.
    if (t->fs->Write(t->klog_fd, buf.data(), buf.size()).ok()) {
      (void)t->fs->Fsync(t->klog_fd);
    }
  } else if (std::strcmp(point, common::kKillMidRenameIntent) == 0) {
    const std::string src = t->dir + "/kr" + std::to_string(seq);
    auto fd = t->fs->Open(t->cred, src, vfs::kCreate | vfs::kWrite, 0600);
    if (fd.ok()) {
      (void)t->fs->Pwrite(*fd, buf.data(), 300, 0);
      (void)t->fs->Close(*fd);
    }
    (void)t->fs->Rename(t->cred, src, t->dir + "/ks" + std::to_string(seq));
  } else if (std::strcmp(point, common::kKillMidChannelBatch) == 0) {
    std::string big(512 * 1024, static_cast<char>('c'));
    (void)t->fs->Pwrite(t->scratch_fd, big.data(), big.size(), 0);
  }
  // holding-leased-list is handled by killing a fresh tenant in KillOne.
}

std::unordered_set<uint64_t> Soak::PagesOwnedBy(uint32_t uid) {
  std::unordered_set<uint64_t> pages;
  std::vector<uint32_t> cids = kfs_->AllCofferIds();
  std::sort(cids.begin(), cids.end());
  for (uint32_t cid : cids) {
    if (kfs_->RootPageOf(cid)->uid != uid) {
      continue;
    }
    auto runs = kfs_->PagesOf(cid);
    if (!runs.ok()) {
      continue;
    }
    for (const kernfs::PageRun& r : *runs) {
      for (uint64_t p = r.start_page; p < r.start_page + r.len; p++) {
        pages.insert(p);
      }
    }
  }
  return pages;
}

void Soak::ProcessCorpse(Tenant* victim) {
  common::SetCurrentThreadKilled(false);
  mpk::BindThreadToProcess(nullptr);

  // MPK containment oracle: bracket the stray-write burst with full-device
  // snapshots. Every changed page must belong to a coffer the victim's uid
  // owns — stray stores may legally damage the victim's own data, never a
  // sibling tenant's, and the spared shared root coffer must not change.
  kernfs::KillOptions ko;
  ko.stray_writes = (rep_.kills % 2 == 1) ? opts_.stray_writes : 0;
  ko.seed = rng_.Next();
  ko.spare_coffers = {kfs_->root_coffer_id()};
  std::vector<uint8_t> before, after;
  dev_->SnapshotTo(&before);
  kernfs::KillStats ks = kfs_->KillProcess(victim->fs->proc(), ko);
  dev_->SnapshotTo(&after);
  rep_.stray_attempted += ks.stray_attempted;
  rep_.stray_landed += ks.stray_landed;
  rep_.stray_blocked += ks.stray_blocked;
  if (ks.stray_landed > 0) {
    victim->tainted = true;
  }
  const std::unordered_set<uint64_t> allowed = PagesOwnedBy(victim->uid);
  for (uint64_t p = 0; p * nvm::kPageSize < before.size(); p++) {
    if (std::memcmp(&before[p * nvm::kPageSize], &after[p * nvm::kPageSize],
                    nvm::kPageSize) != 0 &&
        allowed.count(p) == 0) {
      rep_.mpk_escapes++;
    }
  }

  // The corpse's FsLib must outlive the reap: the kernel reclaims the
  // unharvested grants through the still-live Channel objects.
  victim->fs->Abandon();
  morgue_.push_back(std::move(victim->fs));

  common::AdvanceNowNsForTest(kLeaseJumpNs);  // leases lapse; reaper backoff passes
  rep_.reaped_processes += kfs_->ReapDeadProcesses();
  morgue_.clear();
}

void Soak::JanitorRepairAndVerify(const Tenant& victim) {
  zofs::ScopedTidOverride tid(janitor_vtid_);
  janitor_->BindThread();

  // Each probe takes the InodeLock the corpse may have died holding; the
  // steal triggers online intent repair for the whole coffer. Bounded
  // retries with lease advances between — a survivor that still cannot make
  // progress is the availability failure the soak exists to catch. One
  // exception: a tainted victim's own strays may have legally scribbled its
  // metadata, so a persistent corruption-class verdict there is contained
  // damage (the MPK story working), not a stuck survivor.
  auto contained = [](common::Err e) {
    return e == common::Err::kCorrupt || e == common::Err::kNotDir ||
           e == common::Err::kIo || e == common::Err::kROFS || e == common::Err::kFault;
  };
  auto probe = [&](auto&& op) {
    common::Status s = common::OkStatus();
    for (int attempt = 0; attempt < 4; attempt++) {
      s = op();
      if (s.ok() || s.error() == common::Err::kNoEnt) {
        return;  // progress (or nothing there to repair)
      }
      common::AdvanceNowNsForTest(kLeaseJumpNs);
    }
    if (victim.tainted && contained(s.error())) {
      rep_.contained_probes++;
    } else {
      rep_.stuck_survivors++;
    }
  };
  probe([&]() -> common::Status {
    auto fd = janitor_->Open(root_cred_, victim.dir + "/scratch", vfs::kWrite, 0);
    if (!fd.ok()) {
      return fd.error();
    }
    char b = 'j';
    auto w = janitor_->Pwrite(*fd, &b, 1, 0);
    janitor_->Close(*fd);
    return w.ok() ? common::OkStatus() : common::Status(w.error());
  });
  probe([&]() -> common::Status {
    const std::string dir = janitor_->Stat(root_cred_, victim.dir).ok() ? victim.dir : "/";
    auto fd = janitor_->Open(root_cred_, dir + "/probe", vfs::kCreate | vfs::kWrite, 0644);
    if (!fd.ok()) {
      return fd.error();
    }
    janitor_->Close(*fd);
    return janitor_->Unlink(root_cred_, dir + "/probe");
  });
  probe([&]() -> common::Status {
    auto fd = janitor_->Open(root_cred_, victim.dir + "/klog", vfs::kWrite | vfs::kAppend, 0);
    if (!fd.ok()) {
      return fd.error();
    }
    auto w = janitor_->Write(*fd, "j", 1);
    common::Status s = w.ok() ? janitor_->Fsync(*fd) : common::Status(w.error());
    janitor_->Close(*fd);
    return s;
  });

  // The dead tenant's completed+synced data must have survived its death
  // (unless its own stray writes legally damaged it).
  if (!victim.tainted) {
    VerifyDurable(janitor_.get(), root_cred_, victim);
  }
  mpk::BindThreadToProcess(nullptr);
}

void Soak::JanitorSweepLists() {
  zofs::ScopedTidOverride tid(janitor_vtid_);
  janitor_->BindThread();
  std::vector<uint32_t> cids = kfs_->AllCofferIds();
  std::sort(cids.begin(), cids.end());
  for (uint32_t cid : cids) {
    (void)janitor_->zofs().ReclaimExpiredLists(cid);
  }
  mpk::BindThreadToProcess(nullptr);
}

void Soak::VerifyDurable(fslib::FsLib* fs, const vfs::Cred& cred, const Tenant& t) {
  for (const auto& [path, content] : t.durable) {
    bool ok = false;
    auto fd = fs->Open(cred, path, vfs::kRead, 0);
    if (fd.ok()) {
      auto st = fs->Fstat(*fd);
      if (st.ok() && st->size >= content.size()) {
        std::string got(content.size(), 0);
        auto n = fs->Pread(*fd, got.data(), got.size(), 0);
        ok = n.ok() && *n == got.size() && got == content;
      }
      fs->Close(*fd);
    }
    if (!ok) {
      rep_.durability_violations++;
    }
  }
}

void Soak::KillOne(uint32_t round) {
  const uint32_t pidx = kill_cursor_ % 5;
  const char* point = kKillPointNames[pidx];
  Tenant scratch_tenant;
  Tenant* victim = nullptr;
  arm_.point = point;
  arm_.fired = false;
  try {
    if (pidx == 4) {
      // holding-leased-list: a fresh tenant's first allocation CAS-claims a
      // leased list; killing there strands the freshly-claimed list.
      victim = &scratch_tenant;
      MakeTenant(victim, 1000 + round);
    } else {
      victim = &tenants_[rng_.Below(tenants_.size())];
      zofs::ScopedTidOverride tid(victim->vtid);
      victim->fs->BindThread();
      TargetedOp(victim, point, round);
    }
  } catch (const common::ProcessKilledError&) {
  }
  arm_.point = nullptr;
  const bool fired = arm_.fired;
  if (!fired) {
    // The op completed without crossing the armed site; retry next round.
    common::SetCurrentThreadKilled(false);
    mpk::BindThreadToProcess(nullptr);
    if (victim == &scratch_tenant && victim->fs != nullptr) {
      zofs::ScopedTidOverride tid(victim->vtid);
      victim->fs->BindThread();
      victim->fs.reset();
      mpk::BindThreadToProcess(nullptr);
    }
    return;
  }
  rep_.kills++;
  rep_.kills_by_point[pidx]++;
  kill_cursor_++;

  // The dead operation never returned, so its OrderAfter annotations promise
  // nothing; void them before the stray burst re-dirties its payload lines
  // and a survivor's fence would blame the corpse.
  audit::AbandonThreadOrderDeps();

  ProcessCorpse(victim);
  JanitorRepairAndVerify(*victim);
  JanitorSweepLists();
  retired_uids_.push_back(victim->uid);

  // Churn: a replacement tenant takes the slot (the scratch embryo from the
  // leased-list kill occupied no slot).
  if (victim != &scratch_tenant) {
    Tenant fresh;
    MakeTenant(&fresh, next_tenant_id_++);
    mpk::BindThreadToProcess(nullptr);
    *victim = std::move(fresh);
  }
}

void Soak::CrashRemount() {
  rep_.remounts++;
  // Faultinj-style in-loop corruption: a byte flip in a retired dead
  // tenant's coffer. fsck must absorb it (quarantine/delete at worst) while
  // live tenants' data stays intact — retired coffers carry no durable
  // obligations, so the oracle stays sharp.
  uint64_t corrupt_off = 0;
  if (opts_.corrupt_in_loop && !retired_uids_.empty()) {
    const uint32_t uid = retired_uids_[rng_.Below(retired_uids_.size())];
    std::unordered_set<uint64_t> owned = PagesOwnedBy(uid);
    std::vector<uint64_t> pages(owned.begin(), owned.end());
    std::sort(pages.begin(), pages.end());
    if (!pages.empty()) {
      corrupt_off = pages[rng_.Below(pages.size())] * nvm::kPageSize + rng_.Below(nvm::kPageSize);
    }
  }

  // Crash semantics: nobody gets to run cleanup, so every FsLib is abandoned
  // before destruction and the kernel is simply dropped.
  for (Tenant& t : tenants_) {
    t.fs->Abandon();
    t.fs.reset();
  }
  janitor_->Abandon();
  janitor_.reset();
  kfs_.reset();
  dev_->SimulateCrash();
  if (corrupt_off != 0) {
    const uint8_t old = *dev_->As<uint8_t>(corrupt_off);
    dev_->Store8(corrupt_off, old ^ (1u << rng_.Below(8)));
    rep_.corruptions_injected++;
  }

  Boot(/*format=*/false);
  {
    zofs::ScopedTidOverride tid(janitor_vtid_);
    janitor_->BindThread();
    auto stats = janitor_->zofs().RecoverAll();
    if (!stats.ok()) {
      rep_.fsck_violations++;
    }
    if (!kfs_->CheckAllocTableForTest().empty()) {
      rep_.fsck_violations++;
    }
    mpk::BindThreadToProcess(nullptr);
  }
  dev_->MarkAllPersistent();

  // Tenants remount and re-verify: everything they completed and synced
  // before the crash must still be there, byte for byte.
  for (Tenant& t : tenants_) {
    t.fs = std::make_unique<fslib::FsLib>(kfs_.get(), t.cred);
    zofs::ScopedTidOverride tid(t.vtid);
    t.fs->BindThread();
    ReopenFds(&t);
    if (!t.tainted) {
      VerifyDurable(t.fs.get(), t.cred, t);
    }
    // The untracked append log may hold a replayed tail from a repaired
    // staged intent; truncate the durable model's view is unnecessary — the
    // oracle only requires durable content to be a prefix-intact exact read.
    mpk::BindThreadToProcess(nullptr);
  }
}

SoakReport Soak::Run() {
  common::ScopedClockPin pin(kBaseNs);
  common::InstallKillPoint(&KillHandler, &arm_);

  nvm::Options no;
  no.size_bytes = opts_.device_mb << 20;
  no.crash_tracking = true;
  dev_ = std::make_unique<nvm::NvmDevice>(no);
  mpk::InstallDeviceHook(dev_.get());
  Boot(/*format=*/true);
  dev_->MarkAllPersistent();

  tenants_.resize(opts_.tenants);
  for (uint32_t i = 0; i < opts_.tenants; i++) {
    MakeTenant(&tenants_[i], next_tenant_id_++);
    mpk::BindThreadToProcess(nullptr);
  }

  for (uint32_t round = 0; round < opts_.rounds; round++) {
    rep_.rounds++;
    for (Tenant& t : tenants_) {
      TenantOps(&t);
    }
    KillOne(round);
    if (rng_.Below(4) == 0) {
      RecycleGracefully(&tenants_[rng_.Below(tenants_.size())]);
    }
    if (opts_.remount_every != 0 && (round + 1) % opts_.remount_every == 0) {
      CrashRemount();
    }
    common::AdvanceNowNsForTest(1'000'000);  // 1 ms of logical time per round
  }

  // Graceful shutdown (exercises the DestroyProcess drain path once more).
  for (Tenant& t : tenants_) {
    zofs::ScopedTidOverride tid(t.vtid);
    t.fs->BindThread();
    t.fs.reset();
  }
  mpk::BindThreadToProcess(nullptr);
  janitor_.reset();
  kfs_.reset();
  common::InstallKillPoint(nullptr, nullptr);

  rep_.lock_steals = zofs::LockStealCount() - base_steals_;
  rep_.online_repairs = zofs::OnlineRepairCount() - base_repairs_;
  rep_.reaped_lists = zofs::ReapedListCount() - base_lists_;
  rep_.reaped_mappings = kernfs::ReapedMappingCount() - base_mappings_;
  rep_.reaped_grant_pages = kernfs::ReapedGrantPageCount() - base_grants_;
  rep_.key_evictions = mpk::KeyEvictionCount() - base_kevict_;
  rep_.key_retag_pages = mpk::KeyRetagPageCount() - base_kretag_;
  return rep_;
}

}  // namespace

SoakReport RunSoak(const SoakOptions& opts) { return Soak(opts).Run(); }

std::string SoakReport::ToJson() const {
  std::string s = "{";
  auto num = [&s](const char* k, uint64_t v, bool comma = true) {
    s += "\"";
    s += k;
    s += "\":";
    s += std::to_string(v);
    if (comma) {
      s += ",";
    }
  };
  s += "\"schema\":\"zofs-soak-v2\",";
  num("seed", seed);
  num("rounds", rounds);
  num("ops", ops);
  num("op_errors", op_errors);
  num("kills", kills);
  s += "\"kills_by_point\":{";
  for (int i = 0; i < 5; i++) {
    s += "\"";
    s += kKillPointNames[i];
    s += "\":";
    s += std::to_string(kills_by_point[i]);
    s += i == 4 ? "}," : ",";
  }
  num("stray_attempted", stray_attempted);
  num("stray_landed", stray_landed);
  num("stray_blocked", stray_blocked);
  num("lock_steals", lock_steals);
  num("online_repairs", online_repairs);
  num("reaped_processes", reaped_processes);
  num("reaped_mappings", reaped_mappings);
  num("reaped_grant_pages", reaped_grant_pages);
  num("reaped_lists", reaped_lists);
  num("remounts", remounts);
  num("corruptions_injected", corruptions_injected);
  num("key_evictions", key_evictions);
  num("key_retag_pages", key_retag_pages);
  num("contained_probes", contained_probes);
  num("mpk_escapes", mpk_escapes);
  num("fsck_violations", fsck_violations);
  num("durability_violations", durability_violations);
  num("stuck_survivors", stuck_survivors);
  s += "\"clean\":";
  s += Clean() ? "true" : "false";
  s += "}";
  return s;
}

}  // namespace procmon
