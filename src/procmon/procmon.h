// procmon — the tenant-failure campaign (paper §5 availability).
//
// ZoFS's claim: a crashed process cannot wedge other processes. Coffer locks
// are stealable leases, stray writes at death are MPK-contained, and the
// kernel can reclaim a dead process's resources without its cooperation.
// RunSoak drives that claim end to end, deterministically, from one OS
// thread:
//
//   * several simulated tenants (distinct uids, distinct lease identities
//     via zofs::ScopedTidOverride) churn files in their own coffers;
//   * tenants are killed at every injectable death site (common/killpoint.h)
//     mid-operation, with an optional stray-write burst at death;
//   * a page-diff oracle brackets each kill: bytes may change only inside
//     coffers the victim had write access to (MPK containment, §3.4);
//   * a root "janitor" survivor then steals the corpse's expired InodeLock,
//     triggering online intent repair (zofs_repair.cc), reclaims expired
//     leased free lists, and the kernel reaper (KernFs::ReapDeadProcesses)
//     reclaims mappings, keys, channel rings and unharvested grants;
//   * periodically the whole machine crash-remounts — optionally after a
//     faultinj-style byte flip in a dead tenant's coffer — and fsck plus a
//     syscall-durability oracle must come out clean.
//
// The report is byte-stable for a fixed SoakOptions: check_all.sh diffs two
// runs.

#ifndef SRC_PROCMON_PROCMON_H_
#define SRC_PROCMON_PROCMON_H_

#include <cstdint>
#include <string>

namespace procmon {

struct SoakOptions {
  uint64_t seed = 42;
  uint32_t tenants = 3;
  uint32_t rounds = 12;
  uint32_t ops_per_tenant_per_round = 20;
  // Stray stores the dying process attempts (per writable mapping); applied
  // on every other kill so half the corpses leave their own data intact for
  // the durability oracle.
  uint64_t stray_writes = 16;
  // Crash + remount + fsck every N rounds (0 = never).
  uint32_t remount_every = 4;
  // Flip a byte in a retired dead tenant's coffer before each remount.
  bool corrupt_in_loop = true;
  uint64_t device_mb = 64;
  // ISSUE 10: each tenant additionally churns a tree of 18 subdirectories
  // with pairwise-distinct permission bits. Together with the tenant's base
  // coffers that pushes every process past the 15 physical MPK keys, so the
  // whole campaign (kills, stray bursts, reaping, lease steals, remounts)
  // runs on top of the LRU key window instead of a comfortable static
  // assignment. The report gains the key_evictions / key_retag_pages deltas.
  bool key_pressure = false;
};

struct SoakReport {
  uint64_t seed = 0;
  uint32_t rounds = 0;
  uint64_t ops = 0;
  uint64_t op_errors = 0;  // informational (ENOENT races etc.), not a gate

  uint64_t kills = 0;
  // Indexed like kKillPointNames: inode-lock, staged-intent, rename-intent,
  // channel-batch, leased-list.
  uint64_t kills_by_point[5] = {0, 0, 0, 0, 0};
  uint64_t stray_attempted = 0;
  uint64_t stray_landed = 0;
  uint64_t stray_blocked = 0;

  uint64_t lock_steals = 0;
  uint64_t online_repairs = 0;
  uint64_t reaped_processes = 0;
  uint64_t reaped_mappings = 0;
  uint64_t reaped_grant_pages = 0;
  uint64_t reaped_lists = 0;

  uint64_t remounts = 0;
  uint64_t corruptions_injected = 0;

  // Key-virtualization traffic over the whole campaign (deltas of the
  // src/mpk counters). Heavy only under SoakOptions::key_pressure, where
  // every tenant holds more protection classes than physical keys — though
  // even the default campaign can show a stray eviction: the root janitor
  // accumulates one class per distinct victim uid it probes.
  uint64_t key_evictions = 0;
  uint64_t key_retag_pages = 0;

  // Probes on a tainted victim (its own strays landed) that ended in a
  // corruption-class verdict: the damage is real but contained to the
  // victim's protection domain, which is the paper's §3 story — counted
  // separately, not as an availability failure.
  uint64_t contained_probes = 0;

  // The four gates.
  uint64_t mpk_escapes = 0;           // page diff outside the victim's coffers
  uint64_t fsck_violations = 0;       // recovery failed or alloc table dirty
  uint64_t durability_violations = 0; // completed+synced data lost or torn
  uint64_t stuck_survivors = 0;       // survivor op still failing after steal

  bool Clean() const {
    return mpk_escapes == 0 && fsck_violations == 0 && durability_violations == 0 &&
           stuck_survivors == 0;
  }
  // Fixed field order, no wall-clock content: byte-stable across runs.
  std::string ToJson() const;
};

inline constexpr const char* kKillPointNames[5] = {
    "holding-inode-lock", "staged-intent-published", "mid-rename-intent",
    "mid-channel-batch",  "holding-leased-list",
};

SoakReport RunSoak(const SoakOptions& opts);

}  // namespace procmon

#endif  // SRC_PROCMON_PROCMON_H_
