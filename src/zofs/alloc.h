// The ZoFS coffer allocator: leased per-thread free lists (paper §5.2,
// Figure 6).
//
// Each coffer's custom page holds a pool of LeasedFreeList structures. A
// thread claims one with a CAS on the owner field and renews its lease on
// every allocation; if the thread dies, the list becomes reclaimable when
// the lease expires. When a thread's list runs dry it requests pages in
// batch from KernFS via coffer_enlarge — the kernel-contention point the
// paper measures in DWAL/MWCL (§6.1).
//
// Free pages are linked through their first 8 bytes. Pages sitting in free
// lists are owned by the coffer; a crash can strand them there, and offline
// recovery (fsck) returns them to the kernel.

#ifndef SRC_ZOFS_ALLOC_H_
#define SRC_ZOFS_ALLOC_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/kernfs/channel.h"
#include "src/kernfs/kernfs.h"
#include "src/nvm/flushset.h"
#include "src/zofs/layout.h"

namespace zofs {

using common::Err;
using common::Result;
using common::Status;

// Process-wide unique id of the calling thread; never 0.
uint64_t CurrentTid();

// Makes CurrentTid() report `tid` on this thread while in scope (nested
// scopes restore the previous override). The procmon soak drives several
// simulated tenants from one OS thread; without distinct lease-owner
// identities a survivor would *re-enter* the dead tenant's InodeLock and
// leased lists instead of stealing them, and the steal/repair paths under
// test would never run. Passing 0 is a no-op (the real tid stays visible).
class ScopedTidOverride {
 public:
  explicit ScopedTidOverride(uint64_t tid);
  ~ScopedTidOverride();
  ScopedTidOverride(const ScopedTidOverride&) = delete;
  ScopedTidOverride& operator=(const ScopedTidOverride&) = delete;

 private:
  uint64_t prev_;
};

class CofferAllocator {
 public:
  // `validate` enables validate-before-dereference on persistent free-list
  // state (pool magic, list heads). ZoFs passes false only under its
  // raw_deref_for_test hook, restoring the pre-hardening behaviour where a
  // poisoned head takes the simulated page fault.
  // `channels` (optional) routes kernel refills through the calling thread's
  // submission channel: an async CofferEnlarge is prefetched when the free
  // list drops to the low-water mark and harvested when the list runs dry,
  // so steady-state churn charges no foreground crossing. nullptr (or a
  // disabled set, Options::sync_crossings) keeps the legacy synchronous
  // CofferEnlarge slow path.
  CofferAllocator(kernfs::KernFs* kfs, kernfs::Process* proc, uint32_t coffer_id,
                  uint64_t pool_off, uint64_t lease_ns, uint64_t enlarge_batch,
                  bool validate = true, kernfs::ChannelSet* channels = nullptr);

  // Formats a fresh pool page (called once when a coffer is created).
  static void InitPool(nvm::NvmDevice* dev, uint64_t pool_off);

  // Allocates one 4 KB page from the coffer; `zero` wipes it. The caller
  // must hold an MPK window for the coffer.
  Result<uint64_t> AllocPage(bool zero);

  // Epoch-batched variant for the staged-append fast path: the free-list
  // line write-back is recorded in `flush` instead of issued eagerly, so N
  // allocations within one epoch coalesce to a single Clwb at the epoch's
  // durability point. The page is not zeroed (staged appends overwrite it
  // with NT data immediately).
  Result<uint64_t> AllocPageStaged(nvm::FlushSet* flush);

  // Returns a page to this thread's free list.
  Status FreePage(uint64_t page_off);

  // Pushes externally-obtained coffer pages (e.g. from coffer_merge) onto
  // this thread's free list.
  Status Donate(const std::vector<kernfs::PageRun>& runs);

  uint32_t coffer_id() const { return coffer_id_; }

  // Number of pages currently parked in free lists (pool scan; test only).
  uint64_t FreeListPagesForTest() const;

 private:
  AllocPool* pool();
  // Shared body of AllocPage / AllocPageStaged; `flush == nullptr` selects
  // the eager (immediately written back) free-list update.
  Result<uint64_t> AllocPageImpl(bool zero, nvm::FlushSet* flush);
  // Returns the index of a leased list owned by the calling thread,
  // claiming or stealing one if needed. A lease renewal on the fast path is
  // persisted — coalesced into `flush` when non-null, eagerly otherwise.
  Result<uint32_t> AcquireList(nvm::FlushSet* flush);
  // Obtains a refill batch from the kernel: harvests a prefetched async
  // grant, else enlarges through the channel (draining anything queued in
  // the same crossing), else falls back to the synchronous entry point.
  Result<std::vector<kernfs::PageRun>> RefillRuns();
  void PushLocked(LeasedFreeList* l, uint64_t list_off, uint64_t page_off);
  // Is `off` safe to dereference as a free-list link (page-aligned, inside
  // the device, owned by this coffer per the MPK oracle)?
  bool ValidFreePage(uint64_t off) const;

  kernfs::KernFs* kfs_;
  kernfs::Process* proc_;
  uint32_t coffer_id_;
  uint64_t pool_off_;
  uint64_t lease_ns_;
  uint64_t enlarge_batch_;
  bool validate_;
  kernfs::ChannelSet* channels_;
  // Free-list population at/below which an async refill is submitted.
  uint64_t low_water_;
};

}  // namespace zofs

#endif  // SRC_ZOFS_ALLOC_H_
