// On-NVM structures of the ZoFS µFS (paper §5, Figure 5).
//
// A ZoFS coffer consists of:
//   * the coffer root page (kernel-owned, read-only to ZoFS);
//   * the root-file inode page;
//   * the custom page, which holds the coffer's allocator pool of leased
//     per-thread free lists (Figure 6);
//   * data, index and directory pages allocated from the pool.
//
// Every persistent reference is a byte offset from the NVM base (0 = null).
// ZoFS only allocates in 4 KB pages (paper: "ZoFS only supports 4KB-sized
// allocation for simplicity"); an inode consumes a whole page.

#ifndef SRC_ZOFS_LAYOUT_H_
#define SRC_ZOFS_LAYOUT_H_

#include <cstdint>

#include "src/nvm/nvm.h"

namespace zofs {

inline constexpr uint64_t kInodeMagic = 0x5a4f46535f494e4fULL;  // "ZOFS_INO"
inline constexpr uint64_t kPoolMagic = 0x5a4f46535f504f4fULL;   // "ZOFS_POO"
// Rename-intent slot states (see RenameIntent below).
inline constexpr uint64_t kRenameIntentMagic = 0x5a4f46535f524e4dULL;    // "ZOFS_RNM"
inline constexpr uint64_t kRenameIntentClaimed = 0x5a4f46535f524e43ULL;  // "ZOFS_RNC"
// Staged-append intent slot states (see StagedAppendIntent below).
inline constexpr uint64_t kStagedIntentMagic = 0x5a4f46535f534150ULL;    // "ZOFS_SAP"
inline constexpr uint64_t kStagedIntentClaimed = 0x5a4f46535f534143ULL;  // "ZOFS_SAC"

inline constexpr uint32_t kTypeRegular = 1;
inline constexpr uint32_t kTypeDirectory = 2;
inline constexpr uint32_t kTypeSymlink = 3;

// Block map geometry (ext4-like; paper §5.1 "Regular Files").
inline constexpr int kDirectBlocks = 12;
inline constexpr uint64_t kPtrsPerPage = nvm::kPageSize / 8;  // 512
inline constexpr uint64_t kMaxFileBlocks =
    kDirectBlocks + kPtrsPerPage + kPtrsPerPage * kPtrsPerPage;

// Directory geometry (paper §5.1 "Directories"): an L1 page of 512 slots,
// each pointing to an L2 page; an L2 page embeds 16 dentries and a 256-bucket
// second-level hash whose buckets chain dentry-run pages.
inline constexpr uint64_t kL1Slots = 512;
inline constexpr uint64_t kL2Buckets = 256;
inline constexpr uint64_t kL2Embedded = 16;
inline constexpr uint64_t kRunDentries = 31;

inline constexpr uint16_t kDentryInUse = 1u << 0;
// Bits 1..2 of the dentry flags cache the child's file type so readdir does
// not have to touch child inodes (or map child coffers).
inline constexpr uint16_t kDentryTypeShift = 1;
inline constexpr uint16_t kDentryTypeMask = 0x3u << kDentryTypeShift;
inline constexpr size_t kMaxName = 103;

// 128-byte directory entry. `coffer_id != 0` marks a cross-coffer reference:
// the child lives in another coffer and `inode_off` must equal that coffer's
// root-inode offset (validated per guideline G3).
struct Dentry {
  uint32_t name_hash;
  uint16_t name_len;
  uint16_t flags;
  uint32_t coffer_id;
  uint32_t _pad;
  uint64_t inode_off;
  char name[kMaxName + 1];

  bool in_use() const { return flags & kDentryInUse; }
  uint32_t cached_type() const { return (flags & kDentryTypeMask) >> kDentryTypeShift; }
};
static_assert(sizeof(Dentry) == 128);

// Second-level directory page.
struct L2Page {
  Dentry embedded[kL2Embedded];
  uint64_t buckets[kL2Buckets];  // heads of dentry-run chains
};
static_assert(sizeof(L2Page) == nvm::kPageSize);

// Overflow page holding a run of dentries, chained per bucket.
struct DentryRun {
  uint64_t next;
  uint64_t _pad[7];
  Dentry dentries[kRunDentries];
};
static_assert(sizeof(DentryRun) <= nvm::kPageSize);

// A full-page inode. Field groups:
//   identity/attributes, lease lock, block map (regular files),
//   directory root (directories), inline symlink target (symlinks).
struct Inode {
  uint64_t magic;
  uint32_t type;
  uint16_t mode;
  uint16_t iflags;  // kInodeInlineData
  uint32_t uid;
  uint32_t gid;
  uint64_t size;        // bytes for files/symlinks; entry count for dirs
  uint64_t nlink;
  uint64_t mtime_ns;
  uint64_t ctime_ns;

  // Lease lock (paper §5.2): owner thread id (0 = free) + expiry deadline.
  uint64_t lock_owner;
  uint64_t lock_expiry_ns;

  // Regular file block map.
  uint64_t direct[kDirectBlocks];
  uint64_t indirect;
  uint64_t dindirect;

  // Directory: L1 page (0 until the first entry is inserted).
  uint64_t l1_dir;

  // Symlink target, inline (the page has plenty of room; paper §5.1
  // "Special Files").
  uint16_t symlink_len;
  char symlink_target[1024];
};
static_assert(sizeof(Inode) <= nvm::kPageSize);

// Bytes of an Inode that non-symlink operations touch; creation flushes only
// this prefix (the inline symlink buffer is persisted by Symlink() itself).
inline constexpr size_t kInodeCoreBytes = offsetof(Inode, symlink_len);

// Inode flag bits.
inline constexpr uint16_t kInodeInlineData = 1u << 0;

// Inline small-file data (the paper's §5.1 future-work optimisation:
// "embedding file data in the inode page"): regular files never use the
// symlink area, so the tail of the inode page holds the data.
inline constexpr uint64_t kInlineOff = (kInodeCoreBytes + 63) & ~uint64_t{63};
inline constexpr uint64_t kInlineCapacity = nvm::kPageSize - kInlineOff;

// Leased per-thread free list (Figure 6). Free pages are linked through
// their first 8 bytes.
struct LeasedFreeList {
  uint64_t owner_tid;       // 0 = unowned; claimed by CAS
  uint64_t lease_expiry_ns;
  uint64_t head;            // first free page (byte offset), 0 = empty
  uint64_t count;
};
static_assert(sizeof(LeasedFreeList) == 32);

// 103 (not 120) lists: the tail of the custom page holds the rename intent
// and the staged-append intent (16 + 103*32 + 272 + 512 = 4096 exactly).
inline constexpr uint64_t kPoolLists = 103;

// Write-ahead intent for the two-site same-coffer rename paths (insert at
// the destination + remove at the source cannot be one atomic store).
// Rename claims the slot (magic: 0 -> kRenameIntentClaimed, stealable after
// `lease_expiry_ns`), persists the description, commits it by persisting
// magic = kRenameIntentMagic, performs the dentry updates and finally clears
// the slot. Coffer recovery (ZoFs::RepairPendingRename) rolls a committed
// intent forward when the destination dentry already references the child
// and discards it otherwise, so a crash anywhere inside rename leaves the
// namespace in exactly the pre- or post-rename state.
struct RenameIntent {
  uint64_t magic;            // 0 free / claimed / committed
  uint64_t lease_expiry_ns;  // claim stealable after this deadline
  uint64_t src_dir_ino;      // source parent directory inode offset
  uint64_t dst_dir_ino;      // destination parent directory inode offset
  uint64_t child_ino;        // moved node's inode offset
  uint64_t old_dst_ino;      // overwritten destination inode (0 = none)
  uint32_t child_coffer;     // dentry coffer_id of the moved node
  uint32_t old_dst_coffer;   // nonzero: the destination was a coffer root
  uint32_t child_type;       // cached dentry type of the moved node
  uint8_t src_len;
  uint8_t dst_len;
  uint16_t _pad2;
  char src_name[kMaxName + 1];
  char dst_name[kMaxName + 1];
};
static_assert(sizeof(RenameIntent) == 272);

// Staged-append relink intent (SplitFS-style staged write, see SplitFS
// [Kadekodi et al., SOSP '19] and DESIGN.md §7). Small appends land in
// freshly allocated staging pages whose block pointers / inode size are
// published only volatilely; at a durability point the epoch's data is
// fenced once and this intent describes the pending metadata relink:
//   1. persist the intent body, fence;
//   2. commit by persisting magic = kStagedIntentMagic, fence;
//   3. persist the real metadata (block-pointer slots, inode size line,
//      allocator list line) via the epoch's coalesced flush set, fence;
//   4. clear the slot (persist magic = 0, fence).
// A crash before (2) rolls back — fsync had not returned, nothing was
// promised. A crash between (2) and (3) rolls forward in recovery
// (RepairPendingStagedAppend re-installs pointers for blocks
// [start_blk, start_blk+count) from pages[] and sets size = new_size).
// After (4) the intent is inert. The clear in (4) MUST be fenced: an
// unfenced clear could be rolled back by a later crash, resurrecting a
// stale intent whose pages have since been freed and reused.
// Appended blocks are consecutive, so start_blk + count + the page list
// fully describe the relink. kStagedMaxPages bounds one epoch.
inline constexpr uint64_t kStagedMaxPages = 56;

struct StagedAppendIntent {
  uint64_t magic;            // 0 free / claimed / committed
  uint64_t lease_expiry_ns;  // claim stealable after this deadline
  uint64_t inode_off;        // target file inode offset
  uint64_t start_blk;        // first file block index being relinked
  uint64_t count;            // number of staged pages (<= kStagedMaxPages)
  uint64_t new_size;         // file size after the staged appends
  uint64_t base_size;        // file size before the staged appends
  uint64_t _pad;
  uint64_t pages[kStagedMaxPages];  // staging page offsets, in block order
};
static_assert(sizeof(StagedAppendIntent) == 512);

// The coffer custom page: the allocator pool plus the two intents.
struct AllocPool {
  uint64_t magic;
  uint64_t _pad;
  LeasedFreeList lists[kPoolLists];
  RenameIntent rename_intent;
  StagedAppendIntent staged_intent;
};
static_assert(sizeof(AllocPool) <= nvm::kPageSize);

}  // namespace zofs

#endif  // SRC_ZOFS_LAYOUT_H_
