#include "src/zofs/zofs.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "src/audit/audit.h"
#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/killpoint.h"
#include "src/mpk/mpk.h"

namespace zofs {

// ---------------------------------------------------------------------------
// Tenant-death accounting (process-wide; see zofs.h)

namespace {
std::atomic<uint64_t> g_lock_steals{0};
std::atomic<uint64_t> g_online_repairs{0};
std::atomic<uint64_t> g_reaped_lists{0};
}  // namespace

uint64_t LockStealCount() { return g_lock_steals.load(std::memory_order_relaxed); }
uint64_t OnlineRepairCount() { return g_online_repairs.load(std::memory_order_relaxed); }
uint64_t ReapedListCount() { return g_reaped_lists.load(std::memory_order_relaxed); }

namespace internal {
void NoteLockSteal() { g_lock_steals.fetch_add(1, std::memory_order_relaxed); }
void NoteOnlineRepair() { g_online_repairs.fetch_add(1, std::memory_order_relaxed); }
void NoteReapedLists(uint64_t n) { g_reaped_lists.fetch_add(n, std::memory_order_relaxed); }
}  // namespace internal

using kernfs::CofferRoot;
using kernfs::MapInfo;
using kernfs::PageRun;

namespace {

// Sorts page offsets and merges adjacent pages into runs.
std::vector<PageRun> PagesToRuns(std::vector<uint64_t> page_offs) {
  std::sort(page_offs.begin(), page_offs.end());
  page_offs.erase(std::unique(page_offs.begin(), page_offs.end()), page_offs.end());
  std::vector<PageRun> runs;
  for (uint64_t off : page_offs) {
    uint64_t page = off / nvm::kPageSize;
    if (!runs.empty() && runs.back().start_page + runs.back().len == page) {
      runs.back().len++;
    } else {
      runs.push_back(PageRun{page, 1});
    }
  }
  return runs;
}

uint16_t MakeDentryFlags(uint32_t type) {
  return static_cast<uint16_t>(kDentryInUse |
                               ((type & 0x3u) << kDentryTypeShift));
}

vfs::FileType VfsType(uint32_t t) {
  switch (t) {
    case kTypeDirectory:
      return vfs::FileType::kDirectory;
    case kTypeSymlink:
      return vfs::FileType::kSymlink;
    default:
      return vfs::FileType::kRegular;
  }
}

// Staged pages per append epoch before the epoch overflows into a durability
// point. Bounded by the intent record's inline page array; kept below it so
// one multi-block append landing near the cap still fits.
constexpr uint64_t kStagedEpochPages = 32;
static_assert(kStagedEpochPages <= kStagedMaxPages);

}  // namespace

// ---------------------------------------------------------------------------
// InodeLock

namespace {
// No legal lease stamp exceeds now + the longest lease anyone writes
// (recovery uses 10 s); an expiry further out than this slack is corrupt
// metadata, not a live holder, and the lock is stolen outright.
constexpr uint64_t kMaxLeaseSlackNs = 60'000'000'000ull;

// How long lock acquisition may wait for a live holder before giving up.
uint64_t LockWaitBoundNs(uint64_t lease_ns) {
  return std::max<uint64_t>(4 * lease_ns, 10'000'000);
}

// Live-lock registry: how many InodeLocks are currently held per coffer
// (hashed — a collision over-counts, which only makes the eviction check
// conservative, never unsound). DRAM-only; a killed thread's dtor still
// decrements, so corpses never wedge the count.
constexpr uint32_t kLiveLockBuckets = 256;
std::atomic<uint32_t> g_live_inode_locks[kLiveLockBuckets];
}  // namespace

uint32_t LiveInodeLockCount(uint32_t coffer_id) {
  return g_live_inode_locks[coffer_id & (kLiveLockBuckets - 1)].load(
      std::memory_order_relaxed);
}

InodeLock::InodeLock(nvm::NvmDevice* dev, uint64_t inode_off, uint64_t lease_ns,
                     uint32_t coffer_id)
    : dev_(dev),
      owner_off_(inode_off + offsetof(Inode, lock_owner)),
      expiry_off_(inode_off + offsetof(Inode, lock_expiry_ns)),
      coffer_id_(coffer_id) {
  const uint64_t tid = CurrentTid();
  // The wait bound runs on the hardware clock so it holds even when a test
  // pins the logical clock; lease expiry uses the logical clock so tests can
  // lapse a dead owner's lease deterministically.
  const uint64_t give_up = common::RealNowNs() + LockWaitBoundNs(lease_ns);
  int spins = 0;
  for (;;) {
    uint64_t owner = dev_->AtomicLoad64(owner_off_);
    if (owner == tid) {
      held_ = true;  // already held by this thread (single-level reentry)
      break;
    }
    if (owner == 0) {
      if (dev_->AtomicCas64(owner_off_, 0, tid)) {
        held_ = true;
        break;
      }
    } else {
      const uint64_t expiry = dev_->AtomicLoad64(expiry_off_);
      const uint64_t now = common::NowNs();
      if (expiry < now || expiry > now + kMaxLeaseSlackNs) {
        // Lease expired (holder died or stalled) or the expiry word is
        // garbage: steal (paper §5.2). Claim the lease time first — exactly
        // one racing thief wins the expiry CAS, after which the lease reads
        // live and no second thief enters the steal path during the owner
        // handover below. The winner inherits whatever half-done state the
        // dead owner left; it reports the steal so callers run
        // MaybeOnlineRepair.
        if (dev_->AtomicCas64(expiry_off_, expiry, now + lease_ns) &&
            dev_->AtomicCas64(owner_off_, owner, tid)) {
          held_ = true;
          stole_ = true;
          internal::NoteLockSteal();
          break;
        }
      }
    }
    if (common::RealNowNs() >= give_up) {
      return;  // live holder outlasted the bound: ok() reports the failure
    }
    if (++spins < 64) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    } else {
      // The holder is probably descheduled: yield the CPU instead of
      // spinning out the timeslice (leases are hundreds of ms).
      std::this_thread::yield();
      spins = 0;
    }
  }
  dev_->AtomicStore64(expiry_off_, common::NowNs() + lease_ns);
  // Tenant death while holding the lock: the throw leaves the owner word set
  // (this ctor never completed, so ~InodeLock does not run) — exactly what a
  // real dead process leaves behind. Survivors steal after expiry.
  common::KillPoint(common::kKillHoldingInodeLock);
  // Register only after the kill point: a ctor that threw never joined, so a
  // corpse cannot leave a phantom live-lock count pinning its coffer.
  g_live_inode_locks[coffer_id_ & (kLiveLockBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
  registered_ = true;
}

InodeLock::~InodeLock() {
  // DRAM bookkeeping runs unconditionally (even for a killed thread — the
  // registry models this address space, not NVM state).
  if (registered_) {
    g_live_inode_locks[coffer_id_ & (kLiveLockBuckets - 1)].fetch_sub(
        1, std::memory_order_relaxed);
  }
  // A killed thread releases nothing: a dead process cannot store to NVM on
  // its way out, so outer locks unwound by ProcessKilledError stay held (and
  // expire) just like the innermost one.
  //
  // The owner word should always be writable here: EvictMappingVictim asserts
  // it never unmaps a coffer backing a live InodeLock (the ISSUE-10 root fix
  // for the PR-9 hazard), and key-window eviction retags without unmapping.
  // The probe stays as defense-in-depth — a store through a revoked key would
  // throw inside a noexcept destructor; a skipped release is
  // indistinguishable from owner death and heals by lease expiry.
  if (held_ && !common::CurrentThreadKilled() &&
      mpk::ProbeAccess(owner_off_, 8, /*is_write=*/true)) {
    dev_->AtomicStore64(owner_off_, 0);
  }
}

// ---------------------------------------------------------------------------
// Per-thread coffer session cache (paper §5.2's leased free lists, applied
// to mappings): a small direct-mapped TLS table of {instance, cid} ->
// {MapInfo, allocator}. Entries carry the instance epoch they were filled
// at; any invalidation (unmap, eviction, quarantine) bumps the epoch and
// every thread's entries go stale at once. Instances are keyed by a
// never-reused id so a ZoFs constructed at a recycled address cannot match
// another instance's leftovers. An entry observed valid can still be
// invalidated before the caller finishes using it — exactly the paper's
// stale-mapping window, which surfaces as a graceful MPK fault.

namespace {

struct SessionEntry {
  uint64_t owner = 0;  // ZoFs instance id
  uint32_t cid = 0;
  uint64_t epoch = 0;  // ZoFs::epoch_ value at fill time
  MapInfo info{};
  CofferAllocator* alloc = nullptr;  // lazily filled by AllocatorFor
};

constexpr uint32_t kSessionSlots = 64;  // direct-mapped, power of two
thread_local SessionEntry g_session[kSessionSlots];

std::atomic<uint64_t> g_next_instance_id{1};

SessionEntry& SessionSlot(uint64_t owner, uint32_t cid) {
  const uint32_t h =
      static_cast<uint32_t>((owner * 0x9E3779B97F4A7C15ull) >> 32) ^ (cid * 0x85EBCA6Bu);
  return g_session[h & (kSessionSlots - 1)];
}

SessionEntry* SessionFind(uint64_t owner, uint32_t cid, uint64_t epoch, bool writable) {
  SessionEntry& e = SessionSlot(owner, cid);
  if (e.owner != owner || e.cid != cid || e.epoch != epoch) {
    return nullptr;
  }
  if (writable && !e.info.writable) {
    return nullptr;
  }
  return &e;
}

void SessionStore(uint64_t owner, uint32_t cid, uint64_t epoch, const MapInfo& info) {
  SessionEntry& e = SessionSlot(owner, cid);
  // The allocator pointer survives a same-epoch refill (e.g. a writability
  // upgrade); across epochs it may point at a retired allocator for a
  // deleted coffer, so it is dropped.
  CofferAllocator* keep =
      (e.owner == owner && e.cid == cid && e.epoch == epoch) ? e.alloc : nullptr;
  e.owner = owner;
  e.cid = cid;
  e.epoch = epoch;
  e.info = info;
  e.alloc = keep;
}

void SessionStoreAlloc(uint64_t owner, uint32_t cid, uint64_t epoch, CofferAllocator* a) {
  SessionEntry& e = SessionSlot(owner, cid);
  if (e.owner == owner && e.cid == cid && e.epoch == epoch) {
    e.alloc = a;
  }
}

uint32_t ShardCountFor(uint32_t requested) {
  const uint32_t n = std::clamp<uint32_t>(requested, 1, 256);
  uint32_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction

ZoFs::ZoFs(kernfs::KernFs* kfs, kernfs::Process* proc, Options opts)
    : kfs_(kfs),
      proc_(proc),
      opts_(opts),
      channels_(kfs, proc, /*enabled=*/!opts.sync_crossings),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  const uint32_t nshards = ShardCountFor(opts_.state_shards);
  shards_.reserve(nshards);
  for (uint32_t i = 0; i < nshards; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = nshards - 1;
  proc_->BindCurrentThread();
  kfs_->FsMount(*proc_);
  // Bootstrap the root coffer's µFS content if this is a fresh file system.
  auto info = EnsureMapped(kfs_->root_coffer_id(), true);
  if (info.ok()) {
    AUDIT_SCOPE("ZoFs::ZoFs");
    // Probe the root inode read-only; a remount needs no writable window
    // (guideline G2: least privilege).
    bool needs_format;
    {
      mpk::AccessWindow probe(info->key, false);
      if (!ValidMetaPage(info->root_inode_off)) {
        // The kernel handed us a root-inode pointer outside the coffer
        // (corrupted coffer root): quarantine instead of formatting over it.
        Sick(kfs_->root_coffer_id());
        return;
      }
      needs_format = Ino(info->root_inode_off)->magic != kInodeMagic;
    }
    if (needs_format) {
      mpk::AccessWindow w(info->key, true);
      const CofferRoot* croot = kfs_->RootPageOf(kfs_->root_coffer_id());
      Inode fresh{};
      fresh.magic = kInodeMagic;
      fresh.type = kTypeDirectory;
      fresh.mode = croot->mode;
      fresh.uid = croot->uid;
      fresh.gid = croot->gid;
      fresh.nlink = 2;
      fresh.mtime_ns = fresh.ctime_ns = common::NowNs();
      kfs_->dev()->StoreBytes(info->root_inode_off, &fresh, kInodeCoreBytes);
      kfs_->dev()->PersistRange(info->root_inode_off, kInodeCoreBytes);
      CofferAllocator::InitPool(kfs_->dev(), info->custom_off);
    }
  }
}

ZoFs::~ZoFs() {
  // An abandoned (killed) instance re-enters the kernel for nothing: its
  // staged epochs die with it (the intent protocol makes that safe), its
  // channel grants and mappings are the reaper's job.
  if (abandoned_) return;
  // Unmount is a durability point: drain every open append epoch so data the
  // application wrote before a clean shutdown is durable without an explicit
  // fsync (matching kernel file systems' unmount semantics).
  (void)FlushAllStages();
  // Drain every thread's channel before the kernel forgets this process:
  // deferred unmaps execute, unharvested refill grants return to the kernel
  // (CofferShrink), queued-but-unexecuted requests are dropped.
  channels_.DrainAll();
  kfs_->FsUmount(*proc_);
}

void ZoFs::Abandon() {
  abandoned_ = true;
  channels_.Abandon();
}

// ---------------------------------------------------------------------------
// Channel crossings

Result<MapInfo> ZoFs::KernelMap(uint32_t cid, bool writable) {
  if (kernfs::Channel* ch = channels_.Current()) {
    return ch->Map(cid, writable);
  }
  return kfs_->CofferMap(*proc_, cid, writable);
}

Status ZoFs::KernelUnmap(uint32_t cid) {
  if (kernfs::Channel* ch = channels_.Current()) {
    return ch->Unmap(cid);
  }
  return kfs_->CofferUnmap(*proc_, cid);
}

Result<MapInfo> ZoFs::KernelRetag(uint32_t cid) {
  if (kernfs::Channel* ch = channels_.Current()) {
    return ch->Retag(cid);
  }
  return kfs_->CofferRetag(*proc_, cid);
}

bool ZoFs::RevalidateKey(uint32_t cid, MapInfo* info) {
  if (info->class_slot == mpk::KeyClassTable::kNoSlot) {
    return true;  // legacy per-coffer key: it never moves
  }
  // Stamp the class as in-use BEFORE deciding anything: the op that follows
  // this revalidation will dereference the coffer's pages, and the stamp is
  // what keeps EnsureKey's victim scan away from the working set.
  proc_->TouchClassKey(info->class_slot);
  const uint8_t cur = proc_->PublishedClassKey(info->class_slot);
  if (cur == info->key) {
    return true;  // steady state: two loads, no crossing
  }
  if (cur != mpk::kUnmapped) {
    // Another thread already faulted the class back in (possibly under a
    // different physical key): adopt it locally, still no crossing.
    info->key = cur;
    return true;
  }
  // The class is key-window evicted: fault it in. One batched crossing; the
  // kernel retags every member coffer, so session caches stay valid and no
  // epoch bump is needed.
  auto fresh = KernelRetag(cid);
  if (!fresh.ok()) {
    return false;
  }
  info->key = fresh->key;
  return true;
}

void ZoFs::HarvestCompletions() {
  const bool have_recover =
      pending_recover_count_.load(std::memory_order_acquire) != 0;
  kernfs::Channel* ch = channels_.Current();
  if (ch == nullptr && !have_recover) {
    return;
  }
  if (ch != nullptr) {
    ch->Flush();            // execute this thread's queued async ring
    (void)ch->Harvest();    // consume deferred-unmap completions
  }
  if (have_recover) {
    std::vector<uint32_t> todo;
    {
      common::SpinLockGuard lk(&recover_mu_);
      todo.swap(pending_recover_);
      pending_recover_count_.store(0, std::memory_order_release);
    }
    // Recovery crossings are charged, but as background work: the op that
    // tripped the quarantine already returned EIO; this harvest point is
    // paying the repair bill off the foreground path.
    kernfs::BackgroundCrossingScope bg;
    for (uint32_t cid : todo) {
      (void)RecoverCoffer(cid);
    }
  }
}

// ---------------------------------------------------------------------------
// Mapping management

Result<MapInfo> ZoFs::EnsureMapped(uint32_t cid, bool writable, bool bypass_sick) {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (opts_.session_cache && !bypass_sick) {
    if (SessionEntry* e = SessionFind(instance_id_, cid, epoch, writable)) {
      // Session hit: the entry was filled after a CheckHealthy pass and any
      // later quarantine bumped the epoch, so no sick-table probe is needed.
      // Key-window eviction does NOT bump the epoch: the cached key is
      // revalidated against the published class table instead, and a fault-in
      // refreshes the entry in place.
      MapInfo info = e->info;
      if (RevalidateKey(cid, &info)) {
        e->info.key = info.key;
        return info;
      }
      // Fault-in failed (all keys pinned): fall through to the full path.
    }
  }
  if (!bypass_sick) {
    RETURN_IF_ERROR(CheckHealthy(cid, writable));
  }
  Shard& sh = ShardFor(cid);
  {
    ShardReadLock lk(this, sh);
    auto it = sh.mapped.find(cid);
    if (it != sh.mapped.end() && (!writable || it->second.writable)) {
      MapInfo info = it->second;
      lk.Unlock();
      if (RevalidateKey(cid, &info)) {
        if (opts_.session_cache && !bypass_sick) {
          SessionStore(instance_id_, cid, epoch, info);
        }
        return info;
      }
      // Shard entry's class is evicted and un-fault-in-able; remap below.
    }
  }
  for (int attempt = 0; attempt < 2; attempt++) {
    // The kernel call runs with no shard lock held: mapping one coffer must
    // not serialize operations on coffers that are already mapped. CofferMap
    // is idempotent for an existing (process, cid) mapping, so two threads
    // racing here both get the one installed key.
    const uint64_t gen = sh.evict_gen.load(std::memory_order_acquire);
    auto info = KernelMap(cid, writable);
    if (info.ok()) {
      if (info->custom_off != 0 &&
          (info->custom_off % nvm::kPageSize != 0 ||
           !kfs_->dev()->Contains(info->custom_off, sizeof(AllocPool)))) {
        // A scribbled coffer root can hand back a garbage pool pointer via
        // coffer_map; quarantine before the allocator dereferences it.
        return Sick(cid);
      }
      bool cached = false;
      {
        ShardWriteLock lk(this, sh);
        // Revalidate after reacquiring: if an eviction touched this shard
        // while no lock was held, the key we were just handed may already be
        // revoked. Still return it to the caller (worst case one graceful
        // MPK fault) but keep it out of both caches.
        if (sh.evict_gen.load(std::memory_order_relaxed) == gen) {
          sh.mapped[cid] = *info;
          cached = true;
        }
      }
      if (cached && opts_.session_cache && !bypass_sick) {
        SessionStore(instance_id_, cid, epoch, *info);
      }
      return *info;
    }
    if (info.error() != Err::kNoKeys || attempt == 1) {
      return info.error();
    }
    // Out of MPK regions: unmap a victim coffer and retry (paper §3.4.2).
    if (!EvictMappingVictim(cid)) {
      return Err::kNoKeys;
    }
  }
  return Err::kNoKeys;
}

bool ZoFs::EvictMappingVictim(uint32_t keep_cid) {
  // Legacy path only (key virtualization off): with the class table on, key
  // exhaustion runs the kernel's LRU key window instead of ever unmapping.
  const uint32_t root = kfs_->root_coffer_id();
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    ShardWriteLock lk(this, sh);
    uint32_t victim = 0;
    for (const auto& [mcid, minfo] : sh.mapped) {
      // Never unmap a coffer backing a live InodeLock: ~InodeLock must be
      // able to release the owner word (the PR-9 hazard, fixed at the root).
      // The hashed count can over-report (collision), which only skips a
      // legal victim — conservative, never unsound.
      if (mcid != keep_cid && mcid != root && LiveInodeLockCount(mcid) == 0) {
        victim = mcid;
        break;
      }
    }
    if (victim == 0) {
      continue;
    }
    assert(LiveInodeLockCount(victim) == 0 &&
           "unmapping a coffer that backs a live InodeLock");
    sh.mapped.erase(victim);
    sh.evict_gen.fetch_add(1, std::memory_order_release);
    RetireAllocatorLocked(sh, victim);
    // Revoke the key while still holding the shard lock: a thread that
    // misses in the (just-invalidated) caches must find the kernel state
    // final, not a mapping about to vanish underneath its fresh CofferMap.
    // Lock order shard -> kernel is safe; KernFS never calls back into ZoFs.
    // (KernelUnmap may route via the thread's channel, which piggybacks its
    // queued async ring on the same crossing; the channel never takes shard
    // locks, so the ordering argument is unchanged.)
    // zofs-lint: allow(lock-order) — deliberate: see the comment above.
    KernelUnmap(victim);
    lk.Unlock();
    BumpEpoch();
    // Count on the same axis as the key window so BENCH v5 compares the
    // legacy thrash against virtualized runs directly.
    mpk::internal::NoteKeyEviction();
    return true;
  }
  return false;
}

void ZoFs::RetireAllocatorLocked(Shard& sh, uint32_t cid) {
  auto it = sh.allocators.find(cid);
  if (it == sh.allocators.end()) {
    return;
  }
  std::unique_ptr<CofferAllocator> dead = std::move(it->second);
  sh.allocators.erase(it);
  // Allocators are retired, never destroyed, until ~ZoFs: another thread may
  // hold a session-cached pointer past the epoch bump (the lookup-to-use
  // window). A retired allocator is safe to call — it only touches NVM pages
  // whose keys the kernel has since revoked, so a late use takes the same
  // graceful MPK fault a stale mapping does.
  common::MutexLock rlk(&retire_mu_);
  retired_allocators_.push_back(std::move(dead));
}

Result<uint8_t> ZoFs::KeyFor(uint32_t cid, bool writable) {
  ASSIGN_OR_RETURN(info, EnsureMapped(cid, writable));
  return info.key;
}

void ZoFs::ForgetMapping(uint32_t cid) {
  Shard& sh = ShardFor(cid);
  {
    ShardWriteLock lk(this, sh);
    if (sh.mapped.erase(cid) != 0) {
      sh.evict_gen.fetch_add(1, std::memory_order_release);
    }
    RetireAllocatorLocked(sh, cid);
  }
  // Relocation entries redirect NodeRefs *to* a coffer; with that coffer
  // gone (deleted, or its id about to be recycled) they must not resurrect
  // it. The counter gate keeps this free when no split ever happened.
  if (relocated_count_.load(std::memory_order_acquire) != 0) {
    for (auto& shp : shards_) {
      ShardWriteLock lk(this, *shp);
      const auto n = std::erase_if(shp->relocated,
                                   [&](const auto& kv) { return kv.second == cid; });
      if (n != 0) {
        relocated_count_.fetch_sub(n, std::memory_order_release);
      }
    }
  }
  BumpEpoch();
}

// ---------------------------------------------------------------------------
// Corruption containment

bool ZoFs::ValidMetaRange(uint64_t off, uint64_t len, bool page_aligned) const {
  if (opts_.raw_deref_for_test) {
    // Pre-hardening discipline: no validation, just the MPK check the raw
    // dereference would hit anyway. A corrupted pointer takes the simulated
    // page fault (ViolationError) instead of failing gracefully.
    mpk::CheckAccess(off, len, false);
    return true;
  }
  if (off == 0 || off + len < off) {
    return false;
  }
  if (page_aligned && off % nvm::kPageSize != 0) {
    return false;
  }
  if (!kfs_->dev()->Contains(off, len)) {
    return false;
  }
  // The page-key table is the ownership oracle: a page owned by another
  // coffer carries a different key, an unowned page is unmapped. Either way
  // the probe fails and the pointer is refused without dereferencing it.
  return mpk::ProbeAccess(off, len, false);
}

void ZoFs::ArmSickBackoff(SickState& s, uint64_t base_backoff_ns) {
  if (s.read_only) {
    return;  // read-only quarantine is permanent; no probe schedule
  }
  s.fails++;
  const uint32_t shift = std::min<uint32_t>(s.fails - 1, 6);
  s.next_probe_ns = common::NowNs() + (base_backoff_ns << shift);
}

common::Err ZoFs::Sick(uint32_t cid) {
  Shard& sh = ShardFor(cid);
  {
    ShardWriteLock lk(this, sh);
    auto [it, inserted] = sh.sick.try_emplace(cid);
    if (inserted) {
      sick_count_.fetch_add(1, std::memory_order_release);
    }
    ArmSickBackoff(it->second, opts_.sick_backoff_ns);
  }
  // Session hits skip CheckHealthy; stale entries must die with the epoch so
  // the quarantine gate cannot be bypassed.
  BumpEpoch();
  if (opts_.async_recover) {
    // Queue the repair for the next completion point instead of making a
    // foreground probe pay for RecoverCoffer.
    common::SpinLockGuard lk(&recover_mu_);
    bool queued = false;
    for (uint32_t c : pending_recover_) {
      if (c == cid) {
        queued = true;
        break;
      }
    }
    if (!queued) {
      pending_recover_.push_back(cid);
      pending_recover_count_.store(pending_recover_.size(), std::memory_order_release);
    }
  }
  return Err::kCorrupt;
}

Status ZoFs::CheckHealthy(uint32_t cid, bool writable) {
  if (sick_count_.load(std::memory_order_acquire) == 0) {
    return common::OkStatus();  // nothing quarantined anywhere: stay lock-free
  }
  Shard& sh = ShardFor(cid);
  ShardWriteLock lk(this, sh);  // may re-arm the probe deadline below
  auto it = sh.sick.find(cid);
  if (it == sh.sick.end()) {
    return common::OkStatus();
  }
  if (it->second.read_only) {
    return writable ? Status(Err::kROFS) : common::OkStatus();
  }
  const uint64_t now = common::NowNs();
  if (now < it->second.next_probe_ns) {
    return Err::kIo;  // quarantined: fail fast until the backoff elapses
  }
  // Admit this op as the probe and re-arm the deadline so a burst of callers
  // cannot stampede a still-corrupt coffer. (Deliberately *not*
  // ArmSickBackoff: a probe admission re-arms at the current severity,
  // fails unchanged, while a failure escalates it.)
  const uint32_t shift = std::min<uint32_t>(it->second.fails, 6);
  it->second.next_probe_ns = now + (opts_.sick_backoff_ns << shift);
  return common::OkStatus();
}

void ZoFs::ClearSick(uint32_t cid) {
  Shard& sh = ShardFor(cid);
  ShardWriteLock lk(this, sh);
  if (sh.sick.erase(cid) != 0) {
    sick_count_.fetch_sub(1, std::memory_order_release);
  }
}

void ZoFs::QuarantineReadOnly(uint32_t cid) {
  Shard& sh = ShardFor(cid);
  {
    ShardWriteLock lk(this, sh);
    auto [it, inserted] = sh.sick.try_emplace(cid);
    if (inserted) {
      sick_count_.fetch_add(1, std::memory_order_release);
    }
    it->second.read_only = true;
  }
  BumpEpoch();  // cached writable sessions must re-probe and see kROFS
}

CofferHealth ZoFs::Health(uint32_t cid) {
  if (sick_count_.load(std::memory_order_acquire) == 0) {
    return CofferHealth::kHealthy;
  }
  Shard& sh = ShardFor(cid);
  ShardReadLock lk(this, sh);
  auto it = sh.sick.find(cid);
  if (it == sh.sick.end()) {
    return CofferHealth::kHealthy;
  }
  return it->second.read_only ? CofferHealth::kReadOnly : CofferHealth::kSick;
}

CofferAllocator& ZoFs::AllocatorFor(uint32_t cid, const MapInfo& info) {
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (opts_.session_cache) {
    SessionEntry* e = SessionFind(instance_id_, cid, epoch, false);
    if (e != nullptr && e->alloc != nullptr) {
      return *e->alloc;
    }
  }
  Shard& sh = ShardFor(cid);
  CofferAllocator* a = nullptr;
  {
    ShardReadLock lk(this, sh);
    auto it = sh.allocators.find(cid);
    if (it != sh.allocators.end()) {
      a = it->second.get();
    }
  }
  if (a == nullptr) {
    ShardWriteLock lk(this, sh);
    auto it = sh.allocators.find(cid);
    if (it == sh.allocators.end()) {
      it = sh.allocators
               .emplace(cid, std::make_unique<CofferAllocator>(kfs_, proc_, cid, info.custom_off,
                                                               opts_.lease_ns, opts_.enlarge_batch,
                                                               !opts_.raw_deref_for_test, &channels_))
               .first;
    }
    a = it->second.get();
  }
  if (opts_.session_cache) {
    SessionStoreAlloc(instance_id_, cid, epoch, a);
  }
  return *a;
}

void ZoFs::FixNode(NodeRef* node) {
  if (relocated_count_.load(std::memory_order_acquire) == 0) {
    return;  // no coffer split ever recorded: the common case takes no lock
  }
  Shard& sh = ShardForPage(node->inode_off);
  ShardReadLock lk(this, sh);
  auto it = sh.relocated.find(node->inode_off);
  if (it != sh.relocated.end()) {
    node->coffer_id = it->second;
  }
}

void ZoFs::RecordRelocation(const std::vector<PageRun>& runs, uint32_t new_cid) {
  // Enforce the cap *before* inserting: the batch being recorded right now
  // must survive (open FDs from the in-progress split depend on it), so
  // older entries are the ones dropped.
  uint64_t batch = 0;
  for (const PageRun& r : runs) {
    batch += r.len;
  }
  if (relocated_count_.load(std::memory_order_acquire) + batch > opts_.relocated_cap) {
    EnforceRelocatedCap();
  }
  for (const PageRun& r : runs) {
    for (uint64_t p = r.start_page; p < r.start_page + r.len; p++) {
      const uint64_t off = p * nvm::kPageSize;
      Shard& sh = ShardForPage(off);
      ShardWriteLock lk(this, sh);
      if (sh.relocated.insert_or_assign(off, new_cid).second) {
        relocated_count_.fetch_add(1, std::memory_order_release);
      }
    }
  }
}

void ZoFs::EnforceRelocatedCap() {
  // Coarse eviction: drop the whole ledger. A dropped redirect degrades to
  // the paper's cross-process split semantics — the stale NodeRef takes a
  // graceful MPK fault and the application reopens by path.
  for (auto& shp : shards_) {
    ShardWriteLock lk(this, *shp);
    if (!shp->relocated.empty()) {
      relocated_count_.fetch_sub(shp->relocated.size(), std::memory_order_release);
      shp->relocated.clear();
    }
  }
}

bool ZoFs::SameGroup(uint16_t mode, uint32_t uid, uint32_t gid, const CofferRoot* root) const {
  return EffPerm(mode) == EffPerm(root->mode) && uid == root->uid && gid == root->gid;
}

// ---------------------------------------------------------------------------
// Path resolution

Result<ZoFs::ResolveResult> ZoFs::Resolve(const std::string& raw_path, bool follow_last_symlink) {
  std::string cur = vfs::NormalizePath(raw_path);
  for (int depth = 0; depth <= opts_.max_symlink_depth; depth++) {
    ASSIGN_OR_RETURN(parts, vfs::SplitPath(cur));

    uint32_t cid = kfs_->root_coffer_id();
    ASSIGN_OR_RETURN(root_info, EnsureMapped(cid, false));
    ResolveResult r;
    r.node = NodeRef{cid, root_info.root_inode_off};
    r.parent = NodeRef{};
    r.is_coffer_root = true;
    // The walked-prefix string is only materialised when actually needed
    // (cross-coffer validation, symlink expansion) — the hot path does no
    // string concatenation.
    auto path_prefix = [&parts](size_t upto) {
      std::string p;
      for (size_t j = 0; j < upto; j++) {
        p += "/" + parts[j];
      }
      return p;
    };

    bool restarted = false;
    for (size_t i = 0; i < parts.size(); i++) {
      const std::string& name = parts[i];
      if (name.size() > kMaxName) {
        return Err::kNameTooLong;
      }
      ASSIGN_OR_RETURN(key, KeyFor(r.node.coffer_id, false));
      Dentry d;
      {
        mpk::AccessWindow w(key, false);
        if (!ValidMetaPage(r.node.inode_off)) {
          return Sick(r.node.coffer_id);
        }
        Inode* dir = Ino(r.node.inode_off);
        mpk::CheckAccess(r.node.inode_off, sizeof(Inode), false);
        if (dir->magic != kInodeMagic) {
          return Err::kCorrupt;  // object-local damage; coffer graph still trusted
        }
        if (dir->type != kTypeDirectory) {
          return Err::kNotDir;
        }
        ASSIGN_OR_RETURN(dp, DirFind(r.node.coffer_id, dir, name));
        d = *dp;  // copy out before the window closes
        if (d.coffer_id == 0 && !ValidMetaPage(d.inode_off)) {
          // The dentry's child pointer leads out of this coffer: refuse it
          // before any code dereferences the child inode.
          return Sick(r.node.coffer_id);
        }
      }

      NodeRef child;
      bool child_is_root;
      if (d.coffer_id != 0) {
        std::string child_path = path_prefix(i + 1);
        // Cross-coffer reference: map the target (kernel permission check)
        // and validate it per guideline G3 before switching windows.
        ASSIGN_OR_RETURN(tinfo, EnsureMapped(d.coffer_id, false));
        const CofferRoot* troot = kfs_->RootPageOf(d.coffer_id);
        {
          mpk::AccessWindow w(tinfo.key, false);
          mpk::CheckAccess(kfs_->dev()->OffsetOf(troot), sizeof(CofferRoot), false);
          if (troot->magic != kernfs::kCofferMagic ||
              tinfo.root_inode_off != d.inode_off ||
              child_path.compare(troot->path) != 0) {
            // Manipulated cross-coffer reference (paper §3.4.3): blame the
            // coffer holding the dentry.
            return Sick(r.node.coffer_id);
          }
        }
        child = NodeRef{d.coffer_id, d.inode_off};
        child_is_root = true;
      } else {
        child = NodeRef{r.node.coffer_id, d.inode_off};
        child_is_root = false;
      }

      // Symlink expansion: rebuild the path and restart the walk (the
      // dispatcher re-dispatch of paper §4.2, handled inline since every
      // coffer here is ZoFS-typed).
      bool is_last = (i + 1 == parts.size());
      if (d.cached_type() == kTypeSymlink && (!is_last || follow_last_symlink)) {
        std::string target;
        {
          ASSIGN_OR_RETURN(ckey, KeyFor(child.coffer_id, false));
          mpk::AccessWindow w(ckey, false);
          const Inode* ci = Ino(child.inode_off);
          mpk::CheckAccess(child.inode_off, sizeof(Inode), false);
          if (ci->magic != kInodeMagic || ci->type != kTypeSymlink ||
              ci->symlink_len >= sizeof(ci->symlink_target)) {
            return Err::kCorrupt;  // object-local damage; coffer graph still trusted
          }
          target.assign(ci->symlink_target, ci->symlink_len);
        }
        std::string rest;
        for (size_t j = i + 1; j < parts.size(); j++) {
          rest += "/" + parts[j];
        }
        if (!target.empty() && target[0] == '/') {
          cur = vfs::NormalizePath(target + rest);
        } else {
          cur = vfs::NormalizePath(path_prefix(i) + "/" + target + rest);
        }
        restarted = true;
        break;
      }

      r.parent = r.node;
      r.leaf = name;
      r.node = child;
      r.is_coffer_root = child_is_root;
    }
    if (!restarted) {
      return r;
    }
  }
  return Err::kLoop;
}

Result<NodeRef> ZoFs::Lookup(const std::string& path, bool follow_last_symlink) {
  ASSIGN_OR_RETURN(r, Resolve(path, follow_last_symlink));
  return r.node;
}

// ---------------------------------------------------------------------------
// Directory internals

Result<Dentry*> ZoFs::DirFind(uint32_t cid, Inode* dir, std::string_view name) {
  if (dir->l1_dir == 0) {
    return Err::kNoEnt;
  }
  nvm::NvmDevice* dev = kfs_->dev();
  if (!ValidMetaPage(dir->l1_dir)) {
    return Sick(cid);
  }
  const uint32_t h = common::Fnv1a32(name);
  const uint64_t* l1 = dev->As<uint64_t>(dir->l1_dir);
  uint64_t l2_off = l1[h % kL1Slots];
  if (l2_off == 0) {
    return Err::kNoEnt;
  }
  if (!ValidMetaPage(l2_off)) {
    return Sick(cid);
  }
  L2Page* l2 = dev->As<L2Page>(l2_off);
  mpk::CheckAccess(l2_off, sizeof(L2Page), false);
  auto matches = [&](Dentry& d) {
    return d.in_use() && d.name_hash == h && d.name_len == name.size() &&
           memcmp(d.name, name.data(), name.size()) == 0;
  };
  for (Dentry& d : l2->embedded) {
    if (matches(d)) {
      return &d;
    }
  }
  uint64_t run_off = l2->buckets[(h / kL1Slots) % kL2Buckets];
  // A legal chain cannot have more pages than the device: anything longer is
  // a cycle. The bound applies even in raw_deref_for_test mode, so corrupted
  // chains can crash the walk but never hang it.
  const uint64_t max_steps = dev->num_pages();
  for (uint64_t steps = 0; run_off != 0; steps++) {
    if (steps >= max_steps || !ValidMetaPage(run_off)) {
      return Sick(cid);
    }
    DentryRun* run = dev->As<DentryRun>(run_off);
    mpk::CheckAccess(run_off, sizeof(DentryRun), false);
    for (Dentry& d : run->dentries) {
      if (matches(d)) {
        return &d;
      }
    }
    run_off = run->next;
  }
  return Err::kNoEnt;
}

Status ZoFs::DirInsert(uint32_t cid, const MapInfo& info, Inode* dir, std::string_view name,
                       uint32_t child_coffer, uint64_t child_inode, uint32_t child_type) {
  AUDIT_SCOPE("ZoFs::DirInsert");
  if (name.empty() || name.size() > kMaxName) {
    return Err::kNameTooLong;
  }
  nvm::NvmDevice* dev = kfs_->dev();
  CofferAllocator& alloc = AllocatorFor(cid, info);
  const uint32_t h = common::Fnv1a32(name);
  const uint64_t dir_off = dev->OffsetOf(dir);

  // Pages are allocated on demand (paper §5.1).
  if (dir->l1_dir == 0) {
    ASSIGN_OR_RETURN(l1_page, alloc.AllocPage(/*zero=*/true));
    dev->Store64(dir_off + offsetof(Inode, l1_dir), l1_page);
    dev->PersistRange(dir_off + offsetof(Inode, l1_dir), 8);
  } else if (!ValidMetaPage(dir->l1_dir)) {
    return Sick(cid);
  }
  uint64_t* l1 = dev->As<uint64_t>(dir->l1_dir);
  const uint64_t slot = h % kL1Slots;
  if (l1[slot] == 0) {
    ASSIGN_OR_RETURN(l2_page, alloc.AllocPage(/*zero=*/true));
    dev->Store64(dir->l1_dir + slot * 8, l2_page);
    dev->PersistRange(dir->l1_dir + slot * 8, 8);
  } else if (!ValidMetaPage(l1[slot])) {
    return Sick(cid);
  }
  L2Page* l2 = dev->As<L2Page>(l1[slot]);

  // Find a free slot: embedded area first (paper: "ZoFS tries to put new
  // dentries in the second-level page first").
  Dentry* free_slot = nullptr;
  for (Dentry& d : l2->embedded) {
    if (!d.in_use()) {
      free_slot = &d;
      break;
    }
  }
  const uint64_t bucket_off =
      dev->OffsetOf(l2) + offsetof(L2Page, buckets) + ((h / kL1Slots) % kL2Buckets) * 8;
  if (free_slot == nullptr) {
    // Scan only the first two run pages for holes: older pages are almost
    // always full in insert-heavy workloads, and recovery tolerates sparse
    // pages, so a bounded scan keeps inserts O(1).
    uint64_t run_off = dev->Load64(bucket_off);
    for (int depth = 0; run_off != 0 && depth < 2; depth++) {
      if (!ValidMetaPage(run_off)) {
        return Sick(cid);
      }
      DentryRun* run = dev->As<DentryRun>(run_off);
      for (Dentry& d : run->dentries) {
        if (!d.in_use()) {
          free_slot = &d;
          break;
        }
      }
      if (free_slot != nullptr) {
        break;
      }
      run_off = run->next;
    }
    if (free_slot == nullptr) {
      // Prepend a fresh run page to the bucket chain.
      ASSIGN_OR_RETURN(new_run, alloc.AllocPage(/*zero=*/true));
      dev->Store64(new_run + offsetof(DentryRun, next), dev->Load64(bucket_off));
      dev->PersistRange(new_run, sizeof(DentryRun));
      dev->Store64(bucket_off, new_run);
      dev->PersistRange(bucket_off, 8);
      free_slot = &dev->As<DentryRun>(new_run)->dentries[0];
    }
  }

  // Write the dentry body, persist it, then set the in-use flag as the
  // atomic commit point (flags live in the dentry's first cacheline).
  const uint64_t d_off = dev->OffsetOf(free_slot);
  Dentry d{};
  d.name_hash = h;
  d.name_len = static_cast<uint16_t>(name.size());
  d.flags = 0;
  d.coffer_id = child_coffer;
  d.inode_off = child_inode;
  memcpy(d.name, name.data(), name.size());
  d.name[name.size()] = '\0';
  dev->StoreBytes(d_off, &d, sizeof(d));
  dev->PersistRange(d_off, sizeof(d));
  dev->Store16(d_off + offsetof(Dentry, flags), MakeDentryFlags(child_type));
  AUDIT_ORDER_AFTER(dev, d_off + offsetof(Dentry, flags), 2, d_off, sizeof(d));
  dev->PersistRange(d_off + offsetof(Dentry, flags), 2);
  AUDIT_DURABILITY_POINT(dev, d_off, sizeof(d));

  // Entry count and mtime are advisory (rebuilt by recovery): write back
  // without an ordering fence.
  dev->Store64(dir_off + offsetof(Inode, size), dir->size + 1);
  dev->Store64(dir_off + offsetof(Inode, mtime_ns), common::NowNs());
  // zofs-lint: allow(unfenced-clwb) — advisory dir counters, rebuilt by recovery
  dev->Clwb(dir_off + offsetof(Inode, size), 8);
  return common::OkStatus();
}

Status ZoFs::DirRemoveAt(Inode* dir, Dentry* d) {
  nvm::NvmDevice* dev = kfs_->dev();
  AUDIT_SCOPE("ZoFs::DirRemoveAt");
  const uint64_t d_off = dev->OffsetOf(d);
  dev->Store16(d_off + offsetof(Dentry, flags), 0);  // atomic commit
  dev->PersistRange(d_off + offsetof(Dentry, flags), 2);
  AUDIT_DURABILITY_POINT(dev, d_off + offsetof(Dentry, flags), 2);
  const uint64_t dir_off = dev->OffsetOf(dir);
  dev->Store64(dir_off + offsetof(Inode, size), dir->size > 0 ? dir->size - 1 : 0);
  dev->Store64(dir_off + offsetof(Inode, mtime_ns), common::NowNs());
  // zofs-lint: allow(unfenced-clwb) — advisory dir counters, rebuilt by recovery
  dev->Clwb(dir_off + offsetof(Inode, size), 8);
  return common::OkStatus();
}

Status ZoFs::DirRemove(uint32_t cid, Inode* dir, std::string_view name) {
  ASSIGN_OR_RETURN(d, DirFind(cid, dir, name));
  return DirRemoveAt(dir, d);
}

Status ZoFs::DirReplaceTarget(Inode* dir, Dentry* d, uint32_t child_coffer, uint64_t child_inode,
                              uint32_t child_type) {
  AUDIT_SCOPE("ZoFs::DirReplaceTarget");
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t d_off = dev->OffsetOf(d);
  // flags (type bits), coffer_id and inode_off all live in the first 24
  // bytes of the 64-byte-aligned dentry: one cacheline, one atomic commit.
  dev->Store64(d_off + offsetof(Dentry, inode_off), child_inode);
  dev->Store32(d_off + offsetof(Dentry, coffer_id), child_coffer);
  dev->Store16(d_off + offsetof(Dentry, flags), MakeDentryFlags(child_type));
  dev->PersistRange(d_off, offsetof(Dentry, inode_off) + 8);
  AUDIT_DURABILITY_POINT(dev, d_off, offsetof(Dentry, inode_off) + 8);
  const uint64_t dir_off = dev->OffsetOf(dir);
  dev->Store64(dir_off + offsetof(Inode, mtime_ns), common::NowNs());
  // zofs-lint: allow(unfenced-clwb) — advisory mtime, rebuilt by recovery
  dev->Clwb(dir_off + offsetof(Inode, mtime_ns), 8);
  return common::OkStatus();
}

Status ZoFs::DirIterate(uint32_t cid, const Inode* dir, std::vector<vfs::DirEntry>* out) {
  if (dir->l1_dir == 0) {
    return common::OkStatus();
  }
  nvm::NvmDevice* dev = kfs_->dev();
  if (!ValidMetaPage(dir->l1_dir)) {
    return Sick(cid);
  }
  const uint64_t* l1 = dev->As<uint64_t>(dir->l1_dir);
  // One step budget for the whole directory: no chain arrangement over a
  // healthy device needs more pages than the device holds.
  const uint64_t max_steps = dev->num_pages();
  uint64_t steps = 0;
  for (uint64_t s = 0; s < kL1Slots; s++) {
    if (l1[s] == 0) {
      continue;
    }
    if (!ValidMetaPage(l1[s])) {
      return Sick(cid);
    }
    const L2Page* l2 = dev->As<L2Page>(l1[s]);
    mpk::CheckAccess(l1[s], sizeof(L2Page), false);
    bool bad_name = false;
    auto emit = [&](const Dentry& d) {
      if (d.name_len > kMaxName) {
        bad_name = true;  // corrupt length would read past the dentry
        return;
      }
      vfs::DirEntry e;
      e.name.assign(d.name, d.name_len);
      e.ino = d.inode_off / nvm::kPageSize;
      e.type = VfsType(d.cached_type());
      out->push_back(std::move(e));
    };
    for (const Dentry& d : l2->embedded) {
      if (d.in_use()) {
        emit(d);
      }
    }
    for (uint64_t b = 0; b < kL2Buckets && !bad_name; b++) {
      uint64_t run_off = l2->buckets[b];
      for (; run_off != 0; steps++) {
        if (steps >= max_steps || !ValidMetaPage(run_off)) {
          return Sick(cid);
        }
        const DentryRun* run = dev->As<DentryRun>(run_off);
        mpk::CheckAccess(run_off, sizeof(DentryRun), false);
        for (const Dentry& d : run->dentries) {
          if (d.in_use()) {
            emit(d);
          }
        }
        run_off = run->next;
      }
    }
    if (bad_name) {
      return Sick(cid);
    }
  }
  return common::OkStatus();
}

Result<bool> ZoFs::DirIsEmpty(uint32_t cid, const Inode* dir) {
  if (dir->l1_dir == 0) {
    return true;
  }
  nvm::NvmDevice* dev = kfs_->dev();
  if (!ValidMetaPage(dir->l1_dir)) {
    return Sick(cid);
  }
  const uint64_t* l1 = dev->As<uint64_t>(dir->l1_dir);
  const uint64_t max_steps = dev->num_pages();
  uint64_t steps = 0;
  for (uint64_t s = 0; s < kL1Slots; s++) {
    if (l1[s] == 0) {
      continue;
    }
    if (!ValidMetaPage(l1[s])) {
      return Sick(cid);
    }
    const L2Page* l2 = dev->As<L2Page>(l1[s]);
    mpk::CheckAccess(l1[s], sizeof(L2Page), false);
    for (const Dentry& d : l2->embedded) {
      if (d.in_use()) {
        return false;
      }
    }
    for (uint64_t b = 0; b < kL2Buckets; b++) {
      uint64_t run_off = l2->buckets[b];
      for (; run_off != 0; steps++) {
        if (steps >= max_steps || !ValidMetaPage(run_off)) {
          return Sick(cid);
        }
        const DentryRun* run = dev->As<DentryRun>(run_off);
        mpk::CheckAccess(run_off, sizeof(DentryRun), false);
        for (const Dentry& d : run->dentries) {
          if (d.in_use()) {
            return false;
          }
        }
        run_off = run->next;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Block map

Result<uint64_t> ZoFs::GetBlock(uint32_t cid, const Inode* ino, uint64_t blk) {
  nvm::NvmDevice* dev = kfs_->dev();
  // Every pointer loaded from the block map — index pages and the data page
  // itself — is validated before anything dereferences it.
  auto vet = [&](uint64_t off) { return off == 0 || ValidMetaPage(off); };
  if (blk < kDirectBlocks) {
    const uint64_t v = ino->direct[blk];
    if (!vet(v)) {
      return Sick(cid);
    }
    return v;
  }
  blk -= kDirectBlocks;
  if (blk < kPtrsPerPage) {
    if (ino->indirect == 0) {
      return uint64_t{0};
    }
    if (!ValidMetaPage(ino->indirect)) {
      return Sick(cid);
    }
    const uint64_t v = dev->As<uint64_t>(ino->indirect)[blk];
    if (!vet(v)) {
      return Sick(cid);
    }
    return v;
  }
  blk -= kPtrsPerPage;
  if (blk < kPtrsPerPage * kPtrsPerPage) {
    if (ino->dindirect == 0) {
      return uint64_t{0};
    }
    if (!ValidMetaPage(ino->dindirect)) {
      return Sick(cid);
    }
    uint64_t l1 = dev->As<uint64_t>(ino->dindirect)[blk / kPtrsPerPage];
    if (l1 == 0) {
      return uint64_t{0};
    }
    if (!ValidMetaPage(l1)) {
      return Sick(cid);
    }
    const uint64_t v = dev->As<uint64_t>(l1)[blk % kPtrsPerPage];
    if (!vet(v)) {
      return Sick(cid);
    }
    return v;
  }
  return Err::kOverflow;
}

Result<uint64_t> ZoFs::GetOrAllocBlock(CofferAllocator& alloc, Inode* ino, uint64_t blk) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  // Block pointers are written back but the fence is deferred to the
  // operation-final Sfence (ZoFS provides no data atomicity, paper §5.3; a
  // crash that persists the size but not a pointer reads as a hole).
  auto ensure_slot = [&](uint64_t slot_off) -> Result<uint64_t> {
    uint64_t v = dev->Load64(slot_off);
    if (v != 0) {
      if (!ValidMetaPage(v)) {
        return Sick(alloc.coffer_id());
      }
      return v;
    }
    ASSIGN_OR_RETURN(page, alloc.AllocPage(/*zero=*/false));
    dev->Store64(slot_off, page);
    // zofs-lint: allow(unfenced-clwb) — block pointer: the operation-final fence orders it
    dev->Clwb(slot_off, 8);
    return page;
  };
  auto ensure_index = [&](uint64_t slot_off) -> Result<uint64_t> {
    uint64_t v = dev->Load64(slot_off);
    if (v != 0) {
      if (!ValidMetaPage(v)) {
        return Sick(alloc.coffer_id());
      }
      return v;
    }
    ASSIGN_OR_RETURN(page, alloc.AllocPage(/*zero=*/true));
    dev->Store64(slot_off, page);
    // zofs-lint: allow(unfenced-clwb) — block pointer: the operation-final fence orders it
    dev->Clwb(slot_off, 8);
    return page;
  };

  if (blk < kDirectBlocks) {
    return ensure_slot(ino_off + offsetof(Inode, direct) + blk * 8);
  }
  blk -= kDirectBlocks;
  if (blk < kPtrsPerPage) {
    ASSIGN_OR_RETURN(ind, ensure_index(ino_off + offsetof(Inode, indirect)));
    return ensure_slot(ind + blk * 8);
  }
  blk -= kPtrsPerPage;
  if (blk < kPtrsPerPage * kPtrsPerPage) {
    ASSIGN_OR_RETURN(dind, ensure_index(ino_off + offsetof(Inode, dindirect)));
    ASSIGN_OR_RETURN(ind, ensure_index(dind + (blk / kPtrsPerPage) * 8));
    return ensure_slot(ind + (blk % kPtrsPerPage) * 8);
  }
  return Err::kOverflow;
}

Status ZoFs::InstallBlockPointer(Inode* ino, uint64_t blk, uint64_t page_off) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  uint64_t slot_off;
  if (blk < kDirectBlocks) {
    slot_off = ino_off + offsetof(Inode, direct) + blk * 8;
  } else if (blk < kDirectBlocks + kPtrsPerPage) {
    if (ino->indirect == 0 || !ValidMetaPage(ino->indirect)) {
      return Err::kCorrupt;
    }
    slot_off = ino->indirect + (blk - kDirectBlocks) * 8;
  } else {
    const uint64_t idx = blk - kDirectBlocks - kPtrsPerPage;
    if (ino->dindirect == 0 || !ValidMetaPage(ino->dindirect)) {
      return Err::kCorrupt;
    }
    uint64_t l1 = dev->As<uint64_t>(ino->dindirect)[idx / kPtrsPerPage];
    if (l1 == 0 || !ValidMetaPage(l1)) {
      return Err::kCorrupt;
    }
    slot_off = l1 + (idx % kPtrsPerPage) * 8;
  }
  dev->Store64(slot_off, page_off);
  // zofs-lint: allow(unfenced-clwb) — block pointer: the operation-final fence orders it
  dev->Clwb(slot_off, 8);
  return common::OkStatus();
}

Status ZoFs::FreeBlocksFrom(CofferAllocator& alloc, Inode* ino, uint64_t first_blk) {
  AUDIT_SCOPE("ZoFs::FreeBlocksFrom");
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  // Pointer clears are written back without per-slot fences: the namespace
  // commit (dentry clear / size update) already ordered the operation, and a
  // crash that loses some clears only strands pages for fsck to reclaim.
  // A pointer that fails validation is never freed: FreePage links through
  // the page's first word, so freeing a corrupted pointer would write into
  // whatever the garbage points at (a cross-coffer escape if it lands in a
  // sibling). The slot is cleared and the page left for fsck.
  auto drop_slot = [&](uint64_t slot_off) -> Status {
    uint64_t v = dev->Load64(slot_off);
    if (v != 0) {
      if (!ValidMetaPage(v)) {
        return Sick(alloc.coffer_id());
      }
      dev->Store64(slot_off, 0);
      // zofs-lint: allow(unfenced-clwb) — block pointer: the operation-final fence orders it
      dev->Clwb(slot_off, 8);
      RETURN_IF_ERROR(alloc.FreePage(v));
    }
    return common::OkStatus();
  };

  for (uint64_t b = first_blk; b < kDirectBlocks; b++) {
    RETURN_IF_ERROR(drop_slot(ino_off + offsetof(Inode, direct) + b * 8));
  }
  if (ino->indirect != 0) {
    if (!ValidMetaPage(ino->indirect)) {
      return Sick(alloc.coffer_id());
    }
    uint64_t start = first_blk > kDirectBlocks ? first_blk - kDirectBlocks : 0;
    if (start < kPtrsPerPage) {
      for (uint64_t b = start; b < kPtrsPerPage; b++) {
        RETURN_IF_ERROR(drop_slot(ino->indirect + b * 8));
      }
      if (start == 0) {
        RETURN_IF_ERROR(drop_slot(ino_off + offsetof(Inode, indirect)));
      }
    }
  }
  if (ino->dindirect != 0) {
    if (!ValidMetaPage(ino->dindirect)) {
      return Sick(alloc.coffer_id());
    }
    const uint64_t base = kDirectBlocks + kPtrsPerPage;
    uint64_t start = first_blk > base ? first_blk - base : 0;
    for (uint64_t i = 0; i < kPtrsPerPage; i++) {
      uint64_t ind = dev->As<uint64_t>(ino->dindirect)[i];
      if (ind == 0) {
        continue;
      }
      if (!ValidMetaPage(ind)) {
        return Sick(alloc.coffer_id());
      }
      uint64_t lo = i * kPtrsPerPage;
      uint64_t inner_start = start > lo ? start - lo : 0;
      if (inner_start >= kPtrsPerPage) {
        continue;
      }
      for (uint64_t b = inner_start; b < kPtrsPerPage; b++) {
        RETURN_IF_ERROR(drop_slot(ind + b * 8));
      }
      if (inner_start == 0) {
        RETURN_IF_ERROR(drop_slot(ino->dindirect + i * 8));
      }
    }
    if (start == 0) {
      RETURN_IF_ERROR(drop_slot(ino_off + offsetof(Inode, dindirect)));
    }
  }
  dev->Sfence();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Node lifecycle

Result<uint64_t> ZoFs::AllocInode(CofferAllocator& alloc, uint32_t type, uint16_t mode,
                                  uint32_t uid, uint32_t gid) {
  ASSIGN_OR_RETURN(page, alloc.AllocPage(/*zero=*/false));
  Inode fresh{};
  fresh.magic = kInodeMagic;
  fresh.type = type;
  fresh.mode = mode;
  fresh.uid = uid;
  fresh.gid = gid;
  fresh.nlink = type == kTypeDirectory ? 2 : 1;
  fresh.mtime_ns = fresh.ctime_ns = common::NowNs();
  kfs_->dev()->StoreBytes(page, &fresh, kInodeCoreBytes);
  kfs_->dev()->PersistRange(page, kInodeCoreBytes);
  AUDIT_DURABILITY_POINT(kfs_->dev(), page, kInodeCoreBytes);
  return page;
}

Status ZoFs::FreeNode(uint32_t cid, CofferAllocator& alloc, uint64_t inode_off) {
  nvm::NvmDevice* dev = kfs_->dev();
  // An open append epoch on a dying file is discarded, not flushed: the data
  // was never synced and the pages are about to be freed. Flushing later
  // would relink into a recycled inode page.
  DropStage(inode_off);
  if (!ValidMetaPage(inode_off)) {
    return Sick(cid);
  }
  Inode* ino = Ino(inode_off);
  if (ino->type == kTypeRegular) {
    RETURN_IF_ERROR(FreeBlocksFrom(alloc, ino, 0));
  } else if (ino->type == kTypeDirectory && ino->l1_dir != 0) {
    if (!ValidMetaPage(ino->l1_dir)) {
      return Sick(cid);
    }
    uint64_t* l1 = dev->As<uint64_t>(ino->l1_dir);
    const uint64_t max_steps = dev->num_pages();
    uint64_t steps = 0;
    for (uint64_t s = 0; s < kL1Slots; s++) {
      if (l1[s] == 0) {
        continue;
      }
      if (!ValidMetaPage(l1[s])) {
        return Sick(cid);
      }
      L2Page* l2 = dev->As<L2Page>(l1[s]);
      for (uint64_t b = 0; b < kL2Buckets; b++) {
        uint64_t run_off = l2->buckets[b];
        for (; run_off != 0; steps++) {
          if (steps >= max_steps || !ValidMetaPage(run_off)) {
            return Sick(cid);
          }
          uint64_t next = dev->As<DentryRun>(run_off)->next;
          RETURN_IF_ERROR(alloc.FreePage(run_off));
          run_off = next;
        }
      }
      RETURN_IF_ERROR(alloc.FreePage(l1[s]));
    }
    RETURN_IF_ERROR(alloc.FreePage(ino->l1_dir));
  }
  // Invalidate the magic so recovery does not resurrect the node.
  dev->Store64(inode_off, 0);
  dev->PersistRange(inode_off, 8);
  AUDIT_DURABILITY_POINT(dev, inode_off, 8);
  return alloc.FreePage(inode_off);
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<NodeRef> ZoFs::Create(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("ZoFs::Create");
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(path)));
  const auto& [parent_path, leaf] = pp;
  ASSIGN_OR_RETURN(pr, Resolve(parent_path, true));
  const uint32_t pcid = pr.node.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));
  const uint32_t uid = proc_->cred().uid;
  const uint32_t gid = proc_->cred().gid;

  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(pr.node.inode_off);
  if (dir->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (dir->type != kTypeDirectory) {
    return Err::kNotDir;
  }
  InodeLock lock(kfs_->dev(), pr.node.inode_off, opts_.lease_ns, pr.node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, pr.node.inode_off);
  if (DirFind(pcid, dir, leaf).ok()) {
    return Err::kExist;
  }

  const CofferRoot* croot = kfs_->RootPageOf(pcid);
  if (opts_.one_coffer || SameGroup(mode, uid, gid, croot)) {
    CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
    ASSIGN_OR_RETURN(inode_off, AllocInode(alloc, kTypeRegular, mode, uid, gid));
    RETURN_IF_ERROR(DirInsert(pcid, pinfo, dir, leaf, 0, inode_off, kTypeRegular));
    return NodeRef{pcid, inode_off};
  }

  // Different permission group: the file becomes the root of a new coffer
  // (paper §5, Figure 1).
  std::string full = parent_path == "/" ? "/" + leaf : parent_path + "/" + leaf;
  ASSIGN_OR_RETURN(new_cid, kfs_->CofferNew(*proc_, full, kernfs::kCofferTypeZofs, EffPerm(mode),
                                            uid, gid, /*extra_pages=*/2));
  ForgetMapping(new_cid);  // the id may be recycled from a deleted coffer
  ASSIGN_OR_RETURN(ninfo, EnsureMapped(new_cid, true));
  {
    mpk::AccessWindow w2(ninfo.key, true);
    Inode fresh{};
    fresh.magic = kInodeMagic;
    fresh.type = kTypeRegular;
    fresh.mode = mode;
    fresh.uid = uid;
    fresh.gid = gid;
    fresh.nlink = 1;
    fresh.mtime_ns = fresh.ctime_ns = common::NowNs();
    kfs_->dev()->StoreBytes(ninfo.root_inode_off, &fresh, sizeof(fresh));
    kfs_->dev()->PersistRange(ninfo.root_inode_off, sizeof(fresh));
    CofferAllocator::InitPool(kfs_->dev(), ninfo.custom_off);
  }
  RETURN_IF_ERROR(DirInsert(pcid, pinfo, dir, leaf, new_cid, ninfo.root_inode_off, kTypeRegular));
  return NodeRef{new_cid, ninfo.root_inode_off};
}

Result<NodeRef> ZoFs::OpenOrCreate(const std::string& path, uint16_t mode, bool* created) {
  AUDIT_SCOPE("ZoFs::OpenOrCreate");
  *created = false;
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(path)));
  const auto& [parent_path, leaf] = pp;
  ASSIGN_OR_RETURN(pr, Resolve(parent_path, true));
  const uint32_t pcid = pr.node.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));
  const uint32_t uid = proc_->cred().uid;
  const uint32_t gid = proc_->cred().gid;

  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(pr.node.inode_off);
  if (dir->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (dir->type != kTypeDirectory) {
    return Err::kNotDir;
  }
  InodeLock lock(kfs_->dev(), pr.node.inode_off, opts_.lease_ns, pr.node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, pr.node.inode_off);
  auto existing = DirFind(pcid, dir, leaf);
  if (existing.ok()) {
    Dentry* d = *existing;
    if (d->cached_type() == kTypeSymlink) {
      // Fall back to the generic path for symlink targets.
      return Lookup(path, true);
    }
    return NodeRef{d->coffer_id != 0 ? d->coffer_id : pcid, d->inode_off};
  }
  *created = true;

  const CofferRoot* croot = kfs_->RootPageOf(pcid);
  if (opts_.one_coffer || SameGroup(mode, uid, gid, croot)) {
    CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
    ASSIGN_OR_RETURN(inode_off, AllocInode(alloc, kTypeRegular, mode, uid, gid));
    RETURN_IF_ERROR(DirInsert(pcid, pinfo, dir, leaf, 0, inode_off, kTypeRegular));
    return NodeRef{pcid, inode_off};
  }
  std::string full = parent_path == "/" ? "/" + leaf : parent_path + "/" + leaf;
  ASSIGN_OR_RETURN(new_cid, kfs_->CofferNew(*proc_, full, kernfs::kCofferTypeZofs, EffPerm(mode),
                                            uid, gid, /*extra_pages=*/2));
  ForgetMapping(new_cid);  // the id may be recycled from a deleted coffer
  ASSIGN_OR_RETURN(ninfo, EnsureMapped(new_cid, true));
  {
    mpk::AccessWindow w2(ninfo.key, true);
    Inode fresh{};
    fresh.magic = kInodeMagic;
    fresh.type = kTypeRegular;
    fresh.mode = mode;
    fresh.uid = uid;
    fresh.gid = gid;
    fresh.nlink = 1;
    fresh.mtime_ns = fresh.ctime_ns = common::NowNs();
    kfs_->dev()->StoreBytes(ninfo.root_inode_off, &fresh, kInodeCoreBytes);
    kfs_->dev()->PersistRange(ninfo.root_inode_off, kInodeCoreBytes);
    CofferAllocator::InitPool(kfs_->dev(), ninfo.custom_off);
  }
  RETURN_IF_ERROR(DirInsert(pcid, pinfo, dir, leaf, new_cid, ninfo.root_inode_off, kTypeRegular));
  return NodeRef{new_cid, ninfo.root_inode_off};
}

Status ZoFs::Mkdir(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("ZoFs::Mkdir");
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(path)));
  const auto& [parent_path, leaf] = pp;
  ASSIGN_OR_RETURN(pr, Resolve(parent_path, true));
  const uint32_t pcid = pr.node.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));
  const uint32_t uid = proc_->cred().uid;
  const uint32_t gid = proc_->cred().gid;

  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(pr.node.inode_off);
  if (dir->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (dir->type != kTypeDirectory) {
    return Err::kNotDir;
  }
  InodeLock lock(kfs_->dev(), pr.node.inode_off, opts_.lease_ns, pr.node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, pr.node.inode_off);
  if (DirFind(pcid, dir, leaf).ok()) {
    return Err::kExist;
  }

  const CofferRoot* croot = kfs_->RootPageOf(pcid);
  if (opts_.one_coffer || SameGroup(mode, uid, gid, croot)) {
    CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
    ASSIGN_OR_RETURN(inode_off, AllocInode(alloc, kTypeDirectory, mode, uid, gid));
    return DirInsert(pcid, pinfo, dir, leaf, 0, inode_off, kTypeDirectory);
  }

  std::string full = parent_path == "/" ? "/" + leaf : parent_path + "/" + leaf;
  ASSIGN_OR_RETURN(new_cid, kfs_->CofferNew(*proc_, full, kernfs::kCofferTypeZofs, EffPerm(mode),
                                            uid, gid, /*extra_pages=*/2));
  ForgetMapping(new_cid);  // the id may be recycled from a deleted coffer
  ASSIGN_OR_RETURN(ninfo, EnsureMapped(new_cid, true));
  {
    mpk::AccessWindow w2(ninfo.key, true);
    Inode fresh{};
    fresh.magic = kInodeMagic;
    fresh.type = kTypeDirectory;
    fresh.mode = mode;
    fresh.uid = uid;
    fresh.gid = gid;
    fresh.nlink = 2;
    fresh.mtime_ns = fresh.ctime_ns = common::NowNs();
    kfs_->dev()->StoreBytes(ninfo.root_inode_off, &fresh, sizeof(fresh));
    kfs_->dev()->PersistRange(ninfo.root_inode_off, sizeof(fresh));
    CofferAllocator::InitPool(kfs_->dev(), ninfo.custom_off);
  }
  return DirInsert(pcid, pinfo, dir, leaf, new_cid, ninfo.root_inode_off, kTypeDirectory);
}

Status ZoFs::Symlink(const std::string& target, const std::string& linkpath) {
  AUDIT_SCOPE("ZoFs::Symlink");
  if (target.size() >= sizeof(Inode{}.symlink_target)) {
    return Err::kNameTooLong;
  }
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(linkpath)));
  const auto& [parent_path, leaf] = pp;
  ASSIGN_OR_RETURN(pr, Resolve(parent_path, true));
  const uint32_t pcid = pr.node.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));

  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(pr.node.inode_off);
  if (dir->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (dir->type != kTypeDirectory) {
    return Err::kNotDir;
  }
  InodeLock lock(kfs_->dev(), pr.node.inode_off, opts_.lease_ns, pr.node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, pr.node.inode_off);
  if (DirFind(pcid, dir, leaf).ok()) {
    return Err::kExist;
  }
  // Symlinks inherit the parent coffer's permission group: they are
  // path data, not protected content.
  const CofferRoot* croot = kfs_->RootPageOf(pcid);
  CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
  ASSIGN_OR_RETURN(inode_off,
                   AllocInode(alloc, kTypeSymlink, static_cast<uint16_t>(croot->mode),
                              proc_->cred().uid, proc_->cred().gid));
  nvm::NvmDevice* dev = kfs_->dev();
  dev->Store16(inode_off + offsetof(Inode, symlink_len), static_cast<uint16_t>(target.size()));
  dev->StoreBytes(inode_off + offsetof(Inode, symlink_target), target.data(), target.size());
  dev->Store64(inode_off + offsetof(Inode, size), target.size());
  dev->PersistRange(inode_off, offsetof(Inode, symlink_target) + target.size());
  AUDIT_DURABILITY_POINT(dev, inode_off, offsetof(Inode, symlink_target) + target.size());
  return DirInsert(pcid, pinfo, dir, leaf, 0, inode_off, kTypeSymlink);
}

Result<std::string> ZoFs::ReadLink(const std::string& path) {
  AUDIT_SCOPE("ZoFs::ReadLink");
  ASSIGN_OR_RETURN(r, Resolve(path, /*follow_last_symlink=*/false));
  ASSIGN_OR_RETURN(key, KeyFor(r.node.coffer_id, false));
  mpk::AccessWindow w(key, false);
  const Inode* ino = Ino(r.node.inode_off);
  mpk::CheckAccess(r.node.inode_off, sizeof(Inode), false);
  if (ino->magic != kInodeMagic || ino->symlink_len >= sizeof(ino->symlink_target)) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (ino->type != kTypeSymlink) {
    return Err::kInval;
  }
  return std::string(ino->symlink_target, ino->symlink_len);
}

Status ZoFs::Unlink(const std::string& path) {
  AUDIT_SCOPE("ZoFs::Unlink");
  ASSIGN_OR_RETURN(r, Resolve(path, /*follow_last_symlink=*/false));
  if (r.parent.inode_off == 0 && r.leaf.empty()) {
    return Err::kIsDir;  // "/"
  }
  const uint32_t pcid = r.parent.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));
  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(r.parent.inode_off);
  InodeLock lock(kfs_->dev(), r.parent.inode_off, opts_.lease_ns, r.parent.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, r.parent.inode_off);
  ASSIGN_OR_RETURN(d, DirFind(pcid, dir, r.leaf));
  if (d->cached_type() == kTypeDirectory) {
    return Err::kIsDir;
  }
  const uint32_t child_cid = d->coffer_id;
  const uint64_t child_inode = d->inode_off;
  RETURN_IF_ERROR(DirRemoveAt(dir, d));
  if (child_cid != 0) {
    // The file was the root of its own coffer: the kernel reclaims it whole.
    // Drop our cached mapping/allocator — the id (root page index) can be
    // reused by a future coffer.
    RETURN_IF_ERROR(kfs_->CofferDelete(*proc_, child_cid));
    ForgetMapping(child_cid);
    return common::OkStatus();
  }
  CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
  return FreeNode(pcid, alloc, child_inode);
}

Status ZoFs::Rmdir(const std::string& path) {
  AUDIT_SCOPE("ZoFs::Rmdir");
  ASSIGN_OR_RETURN(r, Resolve(path, /*follow_last_symlink=*/false));
  if (r.parent.inode_off == 0 && r.leaf.empty()) {
    return Err::kBusy;  // "/"
  }
  const uint32_t pcid = r.parent.coffer_id;
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(pcid, true));

  // Check the target directory is empty (possibly in another coffer).
  {
    ASSIGN_OR_RETURN(ckey, KeyFor(r.node.coffer_id, false));
    mpk::AccessWindow cw(ckey, false);
    const Inode* target = Ino(r.node.inode_off);
    mpk::CheckAccess(r.node.inode_off, sizeof(Inode), false);
    if (target->magic != kInodeMagic) {
      return Err::kCorrupt;  // object-local damage; coffer graph still trusted
    }
    if (target->type != kTypeDirectory) {
      return Err::kNotDir;
    }
    ASSIGN_OR_RETURN(empty, DirIsEmpty(r.node.coffer_id, target));
    if (!empty) {
      return Err::kNotEmpty;
    }
  }

  mpk::AccessWindow w(pinfo.key, true);
  Inode* dir = Ino(r.parent.inode_off);
  InodeLock lock(kfs_->dev(), r.parent.inode_off, opts_.lease_ns, r.parent.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(pcid, pinfo, lock, r.parent.inode_off);
  ASSIGN_OR_RETURN(d, DirFind(pcid, dir, r.leaf));
  const uint32_t child_cid = d->coffer_id;
  const uint64_t child_inode = d->inode_off;
  RETURN_IF_ERROR(DirRemove(pcid, dir, r.leaf));
  if (child_cid != 0) {
    RETURN_IF_ERROR(kfs_->CofferDelete(*proc_, child_cid));
    ForgetMapping(child_cid);
    return common::OkStatus();
  }
  CofferAllocator& alloc = AllocatorFor(pcid, pinfo);
  return FreeNode(pcid, alloc, child_inode);
}

Result<vfs::StatBuf> ZoFs::StatNode(NodeRef node) {
  AUDIT_SCOPE("ZoFs::StatNode");
  ASSIGN_OR_RETURN(key, KeyFor(node.coffer_id, false));
  mpk::AccessWindow w(key, false);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  const Inode* ino = Ino(node.inode_off);
  mpk::CheckAccess(node.inode_off, sizeof(Inode), false);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  vfs::StatBuf st;
  st.ino = node.inode_off / nvm::kPageSize;
  st.type = VfsType(ino->type);
  st.mode = ino->mode;
  st.uid = ino->uid;
  st.gid = ino->gid;
  st.size = ino->type == kTypeDirectory ? 0 : ino->size;
  st.nlink = static_cast<uint32_t>(ino->nlink);
  st.mtime_ns = ino->mtime_ns;
  st.ctime_ns = ino->ctime_ns;
  return st;
}

Result<std::vector<vfs::DirEntry>> ZoFs::ReadDir(const std::string& path) {
  ASSIGN_OR_RETURN(r, Resolve(path, true));
  ASSIGN_OR_RETURN(key, KeyFor(r.node.coffer_id, false));
  mpk::AccessWindow w(key, false);
  const Inode* dir = Ino(r.node.inode_off);
  mpk::CheckAccess(r.node.inode_off, sizeof(Inode), false);
  if (dir->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (dir->type != kTypeDirectory) {
    return Err::kNotDir;
  }
  std::vector<vfs::DirEntry> out;
  RETURN_IF_ERROR(DirIterate(r.node.coffer_id, dir, &out));
  return out;
}

// ---------------------------------------------------------------------------
// Data path

Status ZoFs::EnsureAccess(NodeRef node, bool writable) {
  ASSIGN_OR_RETURN(key, KeyFor(node.coffer_id, writable));
  // Open must not hand back a descriptor to an object every later op will
  // reject: validate the inode here, same as the read/write paths do.
  mpk::AccessWindow w(key, false);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  mpk::CheckAccess(node.inode_off, sizeof(Inode), false);
  if (Ino(node.inode_off)->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  return common::OkStatus();
}

Result<size_t> ZoFs::ReadAt(NodeRef node, void* buf, size_t n, uint64_t off) {
  AUDIT_SCOPE("ZoFs::ReadAt");
  ASSIGN_OR_RETURN(key, KeyFor(node.coffer_id, false));
  mpk::AccessWindow w(key, false);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  const Inode* ino = Ino(node.inode_off);
  mpk::CheckAccess(node.inode_off, sizeof(Inode), false);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (ino->type == kTypeDirectory) {
    return Err::kIsDir;
  }
  const uint64_t size = ino->size;
  if (off >= size || n == 0) {
    return size_t{0};
  }
  n = std::min<uint64_t>(n, size - off);

  if (ino->iflags & kInodeInlineData) {
    // Small file stored inside the inode page (§5.1 future work). A size
    // beyond the inline area is corrupt — honouring it would read past the
    // inode page.
    if (size > kInlineCapacity) {
      return Err::kCorrupt;  // object-local damage; coffer graph still trusted
    }
    mpk::CheckAccess(node.inode_off + kInlineOff + off, n, false);
    // zofs-lint: allow(raw-nvm-deref) — inline-data copy gated by CheckAccess above
    memcpy(buf, kfs_->dev()->base() + node.inode_off + kInlineOff + off, n);
    return n;
  }

  auto* dst = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    ASSIGN_OR_RETURN(page, GetBlock(node.coffer_id, ino, blk));
    if (page == 0) {
      memset(dst + done, 0, chunk);  // hole
    } else {
      mpk::CheckAccess(page + in_off, chunk, false);
      // zofs-lint: allow(raw-nvm-deref) — bulk copy out of a block offset gated by CheckAccess above
      memcpy(dst + done, kfs_->dev()->base() + page + in_off, chunk);
    }
    done += chunk;
  }
  return done;
}

Result<size_t> ZoFs::WriteAt(NodeRef node, const void* buf, size_t n, uint64_t off) {
  AUDIT_SCOPE("ZoFs::WriteAt");
  if (n == 0) {
    return size_t{0};
  }
  if (off + n < off) {
    return Err::kOverflow;  // offset + length wraps uint64
  }
  ASSIGN_OR_RETURN(info, EnsureMapped(node.coffer_id, true));
  mpk::AccessWindow w(info.key, true);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  Inode* ino = Ino(node.inode_off);
  mpk::CheckAccess(node.inode_off, sizeof(Inode), false);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (ino->type == kTypeDirectory) {
    return Err::kIsDir;
  }
  InodeLock lock(kfs_->dev(), node.inode_off, opts_.lease_ns, node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(node.coffer_id, info, lock, node.inode_off);
  // A positional write is a conflicting operation for the staged-append
  // epoch: drain it first so this write's own durability claim cannot cover
  // staged blocks whose metadata write-backs are still deferred.
  RETURN_IF_ERROR(FlushStageIfAny(info, node.inode_off));

  if (opts_.sysempty) {
    kfs_->Nop();  // ZoFS-sysempty: pay one crossing per write (Figure 8)
  }
  if (opts_.kwrite) {
    // ZoFS-kwrite: the write executes in the kernel — crossing plus the
    // kernel-path overhead (context pollution etc.), modelled as 3x.
    common::SpinNs(3 * kfs_->kernel_crossing_ns());
  }

  nvm::NvmDevice* dev = kfs_->dev();
  CofferAllocator& alloc = AllocatorFor(node.coffer_id, info);
  const uint64_t end = off + n;
  const uint64_t ino_off = node.inode_off;

  // ---- inline small-file path (§5.1 future work) ----
  if (ino->type == kTypeRegular) {
    const bool is_inline = (ino->iflags & kInodeInlineData) != 0;
    const bool can_inline = opts_.inline_data && ino->size == 0 && ino->direct[0] == 0 &&
                            ino->indirect == 0 && ino->dindirect == 0;
    if ((is_inline || can_inline) && end <= kInlineCapacity) {
      static const uint8_t kZeros[nvm::kPageSize] = {};
      if (!is_inline && off > 0) {
        dev->NtStoreBytes(ino_off + kInlineOff, kZeros, off);  // hole reads zero
      }
      dev->NtStoreBytes(ino_off + kInlineOff + off, buf, n);
      if (!is_inline) {
        dev->Store16(ino_off + offsetof(Inode, iflags),
                     static_cast<uint16_t>(ino->iflags | kInodeInlineData));
        dev->Clwb(ino_off + offsetof(Inode, iflags), 2);
      }
      if (end > ino->size) {
        dev->Store64(ino_off + offsetof(Inode, size), end);
      }
      dev->Store64(ino_off + offsetof(Inode, mtime_ns), common::NowNs());
      dev->Clwb(ino_off + offsetof(Inode, size), 24);
      AUDIT_ORDER_AFTER(dev, ino_off + offsetof(Inode, size), 24, ino_off + kInlineOff, end);
      dev->Sfence();
      AUDIT_DURABILITY_POINT(dev, ino_off + offsetof(Inode, size), 24);
      return n;
    }
    if (is_inline) {
      // The file outgrew the inline area: spill to block 0 first.
      RETURN_IF_ERROR(SpillInline(alloc, ino));
    }
  }

  // ---- block path ----
  struct PendingSwap {
    uint64_t blk;
    uint64_t fresh;
    uint64_t old;
  };
  std::vector<PendingSwap> swaps;  // atomic_data: pointer installs after the data fence

  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    const bool fresh_partial = chunk < nvm::kPageSize;
    uint64_t before = 1;  // only consulted for partial chunks / atomic mode
    if (fresh_partial || opts_.atomic_data) {
      auto b = GetBlock(node.coffer_id, ino, blk);
      before = b.ok() ? *b : 0;
    }

    if (opts_.atomic_data && before != 0) {
      // Copy-on-write: the live block is untouched until the pointer swap,
      // so a crash exposes it entirely-old or entirely-new.
      ASSIGN_OR_RETURN(fresh, alloc.AllocPage(/*zero=*/false));
      if (fresh_partial) {
        if (in_off > 0) {
          // zofs-lint: allow(raw-nvm-deref) — CoW prefix copy from the committed old block
          dev->NtStoreBytes(fresh, dev->base() + before, in_off);
        }
        if (in_off + chunk < nvm::kPageSize) {
          // zofs-lint: allow(raw-nvm-deref) — CoW suffix copy from the committed old block
          dev->NtStoreBytes(fresh + in_off + chunk, dev->base() + before + in_off + chunk,
                            nvm::kPageSize - in_off - chunk);
        }
      }
      dev->NtStoreBytes(fresh + in_off, src + done, chunk);
      swaps.push_back(PendingSwap{blk, fresh, before});
    } else {
      ASSIGN_OR_RETURN(page, GetOrAllocBlock(alloc, ino, blk));
      if (before == 0 && fresh_partial) {
        // Newly allocated page only partially covered: clear it first so
        // holes read as zeros.
        static const uint8_t kZeros[nvm::kPageSize] = {};
        dev->NtStoreBytes(page, kZeros, nvm::kPageSize);
      }
      // Non-temporal data writes, as NOVA/ZoFS use in the paper's experiments.
      dev->NtStoreBytes(page + in_off, src + done, chunk);
      AUDIT_ORDER_AFTER(dev, ino_off + offsetof(Inode, size), 24, page + in_off, chunk);
    }
    done += chunk;
  }

  if (!swaps.empty()) {
    dev->Sfence();  // the COW pages are durable before any pointer moves
    for (const PendingSwap& sw : swaps) {
      // Re-resolve the slot (GetOrAllocBlock on an existing block never
      // allocates) and swap the pointer; the 8-byte store is atomic.
      ASSIGN_OR_RETURN(slot_page, GetOrAllocBlock(alloc, ino, sw.blk));
      (void)slot_page;
      RETURN_IF_ERROR(InstallBlockPointer(ino, sw.blk, sw.fresh));
    }
  }

  if (end > ino->size) {
    dev->Store64(ino_off + offsetof(Inode, size), end);
  }
  dev->Store64(ino_off + offsetof(Inode, mtime_ns), common::NowNs());
  dev->Clwb(ino_off + offsetof(Inode, size), 24);  // size..mtime share a line
  dev->Sfence();  // one fence commits data, block pointers and attributes
  AUDIT_DURABILITY_POINT(dev, ino_off + offsetof(Inode, size), 24);

  // Old COW pages return to the allocator only after the swap is durable.
  for (const PendingSwap& sw : swaps) {
    RETURN_IF_ERROR(alloc.FreePage(sw.old));
  }
  return n;
}

Status ZoFs::SpillInline(CofferAllocator& alloc, Inode* ino) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  ASSIGN_OR_RETURN(blk0, alloc.AllocPage(/*zero=*/false));
  const uint64_t copy = std::min<uint64_t>(ino->size, kInlineCapacity);
  static const uint8_t kZeros[nvm::kPageSize] = {};
  // zofs-lint: allow(raw-nvm-deref) — inline-area spill to block 0; source range validated by ValidMetaRange
  dev->NtStoreBytes(blk0, dev->base() + ino_off + kInlineOff, copy);
  if (copy < nvm::kPageSize) {
    dev->NtStoreBytes(blk0 + copy, kZeros, nvm::kPageSize - copy);
  }
  dev->Sfence();  // data durable before it becomes reachable
  dev->Store64(ino_off + offsetof(Inode, direct), blk0);
  AUDIT_ORDER_AFTER(dev, ino_off + offsetof(Inode, direct), 8, blk0, nvm::kPageSize);
  dev->PersistRange(ino_off + offsetof(Inode, direct), 8);
  // Only now stop reading the inline copy (crash in between keeps the
  // still-intact inline data authoritative).
  dev->Store16(ino_off + offsetof(Inode, iflags),
               static_cast<uint16_t>(ino->iflags & ~kInodeInlineData));
  dev->PersistRange(ino_off + offsetof(Inode, iflags), 2);
  AUDIT_DURABILITY_POINT(dev, ino_off + offsetof(Inode, iflags), 2);
  return common::OkStatus();
}

Result<uint64_t> ZoFs::Append(NodeRef node, const void* buf, size_t n) {
  AUDIT_SCOPE("ZoFs::Append");
  ASSIGN_OR_RETURN(info, EnsureMapped(node.coffer_id, true));
  mpk::AccessWindow w(info.key, true);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  Inode* ino = Ino(node.inode_off);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  InodeLock lock(kfs_->dev(), node.inode_off, opts_.lease_ns, node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(node.coffer_id, info, lock, node.inode_off);
  const uint64_t off = ino->size;
  // ---- staged fast path (epoch batcher, DESIGN.md) ----
  // Qualifying appends defer all metadata write-backs into the epoch's flush
  // set and return without a fence; durability arrives at the next
  // durability point. The Figure 8 variants (sysempty/kwrite) model
  // per-write kernel costs and the inline/atomic-data modes have their own
  // commit protocols, so all of them keep the synchronous path.
  if (n > 0 && ino->type == kTypeRegular && (ino->iflags & kInodeInlineData) == 0 &&
      !opts_.inline_data && !opts_.atomic_data && !opts_.sysempty && !opts_.kwrite &&
      n <= kStagedEpochPages * nvm::kPageSize && off + n >= off) {
    ASSIGN_OR_RETURN(staged, StageAppendData(node.coffer_id, info, ino, buf, n));
    if (staged) {
      staged_append_hits_.fetch_add(1, std::memory_order_relaxed);
      return off;
    }
  }
  // WriteAt re-acquires the (reentrant for this thread) lock.
  ASSIGN_OR_RETURN(written, WriteAt(node, buf, n, off));
  (void)written;
  return off;
}

// ---------------------------------------------------------------------------
// Staged-append epoch batcher (DESIGN.md: epochs & durability points).
//
// An epoch's appends NT-write their data into freshly allocated pages and
// install block pointers / size with plain volatile stores, noting every
// dirtied metadata line in the stage's FlushSet. Nothing fences. The
// durability point then runs the relink protocol:
//   fence A  intent body persisted (also commits the epoch's NT data and the
//            eagerly written-back index-page lines);
//   fence B  intent magic committed — recovery now rolls the epoch forward;
//   fence C  FlushSet drained + Sfence — the durability claim;
//   fence D  intent magic cleared, fenced, so a stale intent cannot
//            resurrect after its pages are freed and reused.
// Four fences amortized over up to kStagedEpochPages appends, against one
// fence per append on the synchronous path.

std::shared_ptr<ZoFs::StageState> ZoFs::FindStage(uint64_t inode_off) {
  StageShard& sh = StageShardFor(inode_off);
  common::SpinLockGuard g(&sh.mu);
  auto it = sh.stages.find(inode_off);
  return it == sh.stages.end() ? nullptr : it->second;
}

std::shared_ptr<ZoFs::StageState> ZoFs::CreateStage(uint32_t cid, uint64_t inode_off,
                                                    uint64_t size) {
  auto st = std::make_shared<StageState>();
  st->cid = cid;
  st->inode_off = inode_off;
  st->base_size = size;
  st->new_size = size;
  // First block this epoch allocates: the page after the (durable) tail.
  st->start_blk = size / nvm::kPageSize + (size % nvm::kPageSize != 0 ? 1 : 0);
  StageShard& sh = StageShardFor(inode_off);
  {
    common::SpinLockGuard g(&sh.mu);
    sh.stages[inode_off] = st;
  }
  active_stages_.fetch_add(1);
  return st;
}

std::shared_ptr<ZoFs::StageState> ZoFs::TakeStage(uint64_t inode_off) {
  StageShard& sh = StageShardFor(inode_off);
  std::shared_ptr<StageState> st;
  {
    common::SpinLockGuard g(&sh.mu);
    auto it = sh.stages.find(inode_off);
    if (it == sh.stages.end()) {
      return nullptr;
    }
    st = std::move(it->second);
    sh.stages.erase(it);
  }
  active_stages_.fetch_sub(1);
  return st;
}

void ZoFs::DropStage(uint64_t inode_off) {
  if (active_stages_.load(std::memory_order_acquire) == 0) {
    return;
  }
  (void)TakeStage(inode_off);
}

Result<uint64_t> ZoFs::EnsureSlotOff(CofferAllocator& alloc, Inode* ino, uint64_t blk) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  // Index pages are created eagerly (written back immediately): the intent
  // commits only after fence A, so a committed intent implies the index
  // structure it relies on is durable and recovery's roll-forward cannot
  // dead-end on a missing index page.
  auto ensure_index = [&](uint64_t slot_off) -> Result<uint64_t> {
    uint64_t v = dev->Load64(slot_off);
    if (v != 0) {
      if (!ValidMetaPage(v)) {
        return Sick(alloc.coffer_id());
      }
      return v;
    }
    ASSIGN_OR_RETURN(page, alloc.AllocPage(/*zero=*/true));
    dev->Store64(slot_off, page);
    // zofs-lint: allow(unfenced-clwb) — index pointer: the pre-intent fence orders it
    dev->Clwb(slot_off, 8);
    return page;
  };
  if (blk < kDirectBlocks) {
    return ino_off + offsetof(Inode, direct) + blk * 8;
  }
  blk -= kDirectBlocks;
  if (blk < kPtrsPerPage) {
    ASSIGN_OR_RETURN(ind, ensure_index(ino_off + offsetof(Inode, indirect)));
    return ind + blk * 8;
  }
  blk -= kPtrsPerPage;
  if (blk < kPtrsPerPage * kPtrsPerPage) {
    ASSIGN_OR_RETURN(dind, ensure_index(ino_off + offsetof(Inode, dindirect)));
    ASSIGN_OR_RETURN(ind, ensure_index(dind + (blk / kPtrsPerPage) * 8));
    return ind + (blk % kPtrsPerPage) * 8;
  }
  return Err::kOverflow;
}

Result<bool> ZoFs::StageAppendData(uint32_t cid, const MapInfo& info, Inode* ino,
                                   const void* buf, size_t n) {
  AUDIT_SCOPE("ZoFs::StageAppendData");
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = dev->OffsetOf(ino);
  const uint64_t off = ino->size;
  const uint64_t last_blk = (off + n - 1) / nvm::kPageSize;
  if (last_blk >= kDirectBlocks + kPtrsPerPage + kPtrsPerPage * kPtrsPerPage) {
    return false;  // beyond the block map; let WriteAt produce the error
  }

  std::shared_ptr<StageState> st = FindStage(ino_off);
  // How many fresh pages this append needs, given what is already staged.
  const uint64_t staged_end =
      st != nullptr ? st->start_blk + st->pages.size() : uint64_t{0};
  const uint64_t first_new =
      std::max(staged_end, off / nvm::kPageSize + (off % nvm::kPageSize != 0 ? 1 : 0));
  const uint64_t need = last_blk + 1 > first_new ? last_blk + 1 - first_new : 0;
  if (st != nullptr && st->pages.size() + need > kStagedEpochPages) {
    // Epoch overflow: this is a durability point for the open epoch.
    RETURN_IF_ERROR(FlushStage(info, TakeStage(ino_off)));
    st = nullptr;
  }
  if (st == nullptr && off % nvm::kPageSize != 0) {
    // The append starts inside the durable tail block; a hole there means
    // zero-filling, which the synchronous path handles.
    ASSIGN_OR_RETURN(tail, GetBlock(cid, ino, off / nvm::kPageSize));
    if (tail == 0) {
      return false;
    }
  }
  if (st == nullptr) {
    st = CreateStage(cid, ino_off, off);
  }

  CofferAllocator& alloc = AllocatorFor(cid, info);
  const auto* src = static_cast<const uint8_t*>(buf);
  uint64_t pos = off;
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = pos / nvm::kPageSize;
    const uint64_t in_off = pos % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    uint64_t page;
    if (blk >= st->start_blk && blk < st->start_blk + st->pages.size()) {
      page = st->pages[blk - st->start_blk];
    } else if (blk == st->start_blk + st->pages.size()) {
      // Fresh page: allocate without zeroing (the chunk covers the page up
      // to its end; bytes past new_size are beyond EOF) and install the
      // pointer volatilely — the epoch's FlushSet carries the line.
      ASSIGN_OR_RETURN(slot_off, EnsureSlotOff(alloc, ino, blk));
      ASSIGN_OR_RETURN(fresh, alloc.AllocPageStaged(&st->flush));
      if (in_off > 0) {
        // First staged page entered mid-block (the durable tail block was
        // exactly full is the usual case; this one is a re-staged epoch
        // whose predecessor ended mid-page): zero the leading gap.
        static const uint8_t kZeros[nvm::kPageSize] = {};
        dev->NtStoreBytes(fresh, kZeros, in_off);
      }
      dev->Store64(slot_off, fresh);
      st->flush.Note(dev, slot_off, 8);
      st->pages.push_back(fresh);
      page = fresh;
    } else {
      // Tail chunk landing in a block that was durable before the epoch
      // opened (blk < start_blk). Pre-checked non-hole above.
      ASSIGN_OR_RETURN(existing, GetBlock(cid, ino, blk));
      if (existing == 0) {
        return Err::kCorrupt;  // vanished under the inode lock: impossible
      }
      page = existing;
    }
    dev->NtStoreBytes(page + in_off, src + done, chunk);
    pos += chunk;
    done += chunk;
  }

  st->new_size = pos;
  dev->Store64(ino_off + offsetof(Inode, size), pos);
  dev->Store64(ino_off + offsetof(Inode, mtime_ns), common::NowNs());
  st->flush.Note(dev, ino_off + offsetof(Inode, size), 24);  // size..mtime share a line
  return true;
}

Status ZoFs::PublishStageIntent(const MapInfo& info, const StageState& st) {
  AUDIT_SCOPE("ZoFs::PublishStageIntent");
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t off = info.custom_off + offsetof(AllocPool, staged_intent);
  const uint64_t magic_off = off + offsetof(StagedAppendIntent, magic);
  // Claim the slot with the same lease discipline as the rename intent: a
  // stale claim is stealable after expiry, a garbage expiry is stolen
  // outright, a live holder outlasting the wait bound surfaces as EBUSY.
  const uint64_t give_up = common::RealNowNs() + LockWaitBoundNs(opts_.lease_ns);
  for (;;) {
    uint64_t m = dev->AtomicLoad64(magic_off);
    if (m == 0) {
      if (dev->AtomicCas64(magic_off, 0, kStagedIntentClaimed)) {
        break;
      }
    } else {
      const uint64_t expiry = dev->Load64(off + offsetof(StagedAppendIntent, lease_expiry_ns));
      const uint64_t now = common::NowNs();
      if ((expiry < now || expiry > now + kMaxLeaseSlackNs) &&
          dev->AtomicCas64(magic_off, m, kStagedIntentClaimed)) {
        break;
      }
    }
    if (common::RealNowNs() >= give_up) {
      return Err::kBusy;
    }
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
  StagedAppendIntent in{};
  in.magic = kStagedIntentClaimed;
  in.lease_expiry_ns = common::NowNs() + opts_.lease_ns;
  in.inode_off = st.inode_off;
  in.start_blk = st.start_blk;
  in.count = st.pages.size();
  in.new_size = st.new_size;
  in.base_size = st.base_size;
  for (size_t i = 0; i < st.pages.size(); i++) {
    in.pages[i] = st.pages[i];
  }
  dev->StoreBytes(off, &in, sizeof(in));
  dev->PersistRange(off, sizeof(in));  // fence A: body + the epoch's NT data
  // Commit: the intent becomes authoritative for recovery.
  dev->AtomicStore64(magic_off, kStagedIntentMagic);
  AUDIT_ORDER_AFTER(dev, magic_off, 8, off, sizeof(in));
  dev->PersistRange(magic_off, 8);  // fence B
  // Tenant death with the intent committed but the FlushSet undrained: the
  // survivor who steals this file's lock (or offline recovery) must roll the
  // epoch forward from the intent record alone.
  common::KillPoint(common::kKillStagedIntentPublished);
  return common::OkStatus();
}

Status ZoFs::FlushStage(const MapInfo& info, std::shared_ptr<StageState> st) {
  AUDIT_SCOPE("ZoFs::FlushStage");
  if (st == nullptr) {
    return common::OkStatus();
  }
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t ino_off = st->inode_off;
  Status pub = common::OkStatus();
  if (!st->pages.empty()) {
    pub = PublishStageIntent(info, *st);
    if (!pub.ok() && pub.error() != Err::kBusy) {
      return pub;
    }
    // kBusy: another live process is mid-relink in this coffer. Proceed
    // without an intent — the drain below still makes everything durable;
    // only relink atomicity against a crash inside this drain is lost, and
    // that window carries no durability promise yet.
  }
  if (!st->pages.empty()) {
    // The size line becomes durable only after the staged data (the data
    // went out with fence A; the size line goes out with fence C below).
    // Every staged page is written from its first byte, so its first line is
    // a tracked stand-in for the epoch's data.
    AUDIT_ORDER_AFTER(dev, ino_off + offsetof(Inode, size), 24, st->pages.front(),
                      nvm::kCachelineSize);
  }
  st->flush.FlushAll(dev);
  dev->Sfence();  // fence C: the epoch's durability point
  AUDIT_DURABILITY_POINT(dev, ino_off + offsetof(Inode, size), 24);
  if (!st->pages.empty() && pub.ok()) {
    const uint64_t magic_off = info.custom_off + offsetof(AllocPool, staged_intent) +
                               offsetof(StagedAppendIntent, magic);
    dev->AtomicStore64(magic_off, 0);
    dev->PersistRange(magic_off, 8);  // fence D: fenced clear (see layout.h)
  }
  return common::OkStatus();
}

Status ZoFs::FlushStageIfAny(const MapInfo& info, uint64_t inode_off) {
  if (active_stages_.load(std::memory_order_acquire) == 0) {
    return common::OkStatus();
  }
  std::shared_ptr<StageState> st = TakeStage(inode_off);
  if (st == nullptr) {
    return common::OkStatus();
  }
  return FlushStage(info, std::move(st));
}

Status ZoFs::SyncNode(NodeRef node) {
  AUDIT_SCOPE("ZoFs::SyncNode");
  if (active_stages_.load(std::memory_order_acquire) == 0) {
    return common::OkStatus();
  }
  if (FindStage(node.inode_off) == nullptr) {
    return common::OkStatus();  // nothing staged: fsync is a no-op
  }
  ASSIGN_OR_RETURN(info, EnsureMapped(node.coffer_id, true));
  mpk::AccessWindow w(info.key, true);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  if (Ino(node.inode_off)->magic != kInodeMagic) {
    return Err::kCorrupt;
  }
  InodeLock lock(kfs_->dev(), node.inode_off, opts_.lease_ns, node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(node.coffer_id, info, lock, node.inode_off);
  return FlushStageIfAny(info, node.inode_off);
}

Status ZoFs::FlushAllStages() {
  if (active_stages_.load(std::memory_order_acquire) == 0) {
    return common::OkStatus();
  }
  // Snapshot the open stages, then drain each through SyncNode, which
  // re-checks under the inode lock (a stage may close or reopen in between).
  std::vector<NodeRef> targets;
  for (StageShard& sh : stage_shards_) {
    common::SpinLockGuard g(&sh.mu);
    for (const auto& [ino_off, st] : sh.stages) {
      targets.push_back(NodeRef{st->cid, ino_off});
    }
  }
  Status first = common::OkStatus();
  for (const NodeRef& t : targets) {
    Status s = SyncNode(t);
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ZoFs::TruncateNode(NodeRef node, uint64_t len) {
  AUDIT_SCOPE("ZoFs::TruncateNode");
  ASSIGN_OR_RETURN(info, EnsureMapped(node.coffer_id, true));
  mpk::AccessWindow w(info.key, true);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  Inode* ino = Ino(node.inode_off);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (ino->type == kTypeDirectory) {
    return Err::kIsDir;
  }
  InodeLock lock(kfs_->dev(), node.inode_off, opts_.lease_ns, node.coffer_id);
  if (!lock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(node.coffer_id, info, lock, node.inode_off);
  // Truncation conflicts with an open append epoch (it rewrites the same
  // size word and may free staged blocks): drain the epoch first.
  RETURN_IF_ERROR(FlushStageIfAny(info, node.inode_off));
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t old_size = ino->size;

  if (ino->iflags & kInodeInlineData) {
    if (len > kInlineCapacity) {
      ASSIGN_OR_RETURN(info2, EnsureMapped(node.coffer_id, true));
      RETURN_IF_ERROR(SpillInline(AllocatorFor(node.coffer_id, info2), ino));
    } else {
      // Zero the abandoned tail so a later re-extension reads zeros.
      if (len < old_size) {
        static const uint8_t kZeros[nvm::kPageSize] = {};
        dev->NtStoreBytes(node.inode_off + kInlineOff + len,
                          kZeros, std::min(kInlineCapacity, old_size) - len);
      }
      dev->Store64(node.inode_off + offsetof(Inode, size), len);
      dev->PersistRange(node.inode_off + offsetof(Inode, size), 8);
      return common::OkStatus();
    }
  }

  // Commit the new size first; pages freed after a crash in between are
  // reclaimed by recovery.
  dev->Store64(node.inode_off + offsetof(Inode, size), len);
  dev->PersistRange(node.inode_off + offsetof(Inode, size), 8);

  if (len < old_size) {
    CofferAllocator& alloc = AllocatorFor(node.coffer_id, info);
    // Round up without the +kPageSize-1 trick, which wraps for len near
    // UINT64_MAX and would free every block of the file.
    const uint64_t first_dead_blk =
        len / nvm::kPageSize + (len % nvm::kPageSize != 0 ? 1 : 0);
    RETURN_IF_ERROR(FreeBlocksFrom(alloc, ino, first_dead_blk));
    // Zero the tail of the last kept page so re-extension reads zeros.
    if (len % nvm::kPageSize != 0) {
      auto page = GetBlock(node.coffer_id, ino, len / nvm::kPageSize);
      if (page.ok() && *page != 0) {
        static const uint8_t kZeros[nvm::kPageSize] = {};
        const uint64_t in_off = len % nvm::kPageSize;
        dev->NtStoreBytes(*page + in_off, kZeros, nvm::kPageSize - in_off);
        dev->Sfence();
      }
    }
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// mmap / execve (paper §3.3: "they cannot be done in user space")

Result<std::vector<uint64_t>> ZoFs::FilePages(NodeRef node, uint64_t* size_out) {
  ASSIGN_OR_RETURN(key, KeyFor(node.coffer_id, false));
  mpk::AccessWindow w(key, false);
  if (!ValidMetaPage(node.inode_off)) {
    return Sick(node.coffer_id);
  }
  const Inode* ino = Ino(node.inode_off);
  mpk::CheckAccess(node.inode_off, sizeof(Inode), false);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (ino->type != kTypeRegular) {
    return Err::kInval;
  }
  if (ino->iflags & kInodeInlineData) {
    return Err::kInval;  // inline files have no standalone data pages
  }
  if (size_out != nullptr) {
    *size_out = ino->size;
  }
  std::vector<uint64_t> pages;
  const uint64_t blocks =
      ino->size / nvm::kPageSize + (ino->size % nvm::kPageSize != 0 ? 1 : 0);
  for (uint64_t b = 0; b < blocks; b++) {
    ASSIGN_OR_RETURN(page, GetBlock(node.coffer_id, ino, b));
    pages.push_back(page / nvm::kPageSize);
  }
  return pages;
}

Result<std::vector<uint64_t>> ZoFs::MmapNode(NodeRef node, bool writable) {
  uint64_t size = 0;
  ASSIGN_OR_RETURN(pages, FilePages(node, &size));
  std::vector<uint64_t> present;
  for (uint64_t pg : pages) {
    if (pg != 0) {
      present.push_back(pg);
    }
  }
  RETURN_IF_ERROR(kfs_->FileMmap(*proc_, node.coffer_id, present, writable));
  return pages;
}

Status ZoFs::MunmapNode(NodeRef node, const std::vector<uint64_t>& pages) {
  std::vector<uint64_t> present;
  for (uint64_t pg : pages) {
    if (pg != 0) {
      present.push_back(pg);
    }
  }
  return kfs_->FileMunmap(*proc_, node.coffer_id, present);
}

Result<uint64_t> ZoFs::ExecveNode(NodeRef node) {
  AUDIT_SCOPE("ZoFs::ExecveNode");
  uint64_t size = 0;
  ASSIGN_OR_RETURN(pages, FilePages(node, &size));
  uint16_t mode;
  {
    ASSIGN_OR_RETURN(key, KeyFor(node.coffer_id, false));
    mpk::AccessWindow w(key, false);
    mode = Ino(node.inode_off)->mode;
  }
  std::vector<uint64_t> present;
  for (uint64_t pg : pages) {
    if (pg != 0) {
      present.push_back(pg);
    }
  }
  return kfs_->FileExecve(*proc_, node.coffer_id, mode, present, size);
}

// ---------------------------------------------------------------------------
// chmod / chown / rename (the cross-coffer paths of Table 9)

Result<std::vector<PageRun>> ZoFs::CollectSubtreeRuns(uint32_t cid, uint64_t inode_off,
                                                      const std::string& path) {
  std::vector<uint64_t> pages;
  std::vector<CrossRef> cross;
  uint64_t cleared = 0;
  RETURN_IF_ERROR(CollectReachable(cid, inode_off, path, &pages, &cross, &cleared));
  return PagesToRuns(std::move(pages));
}

Result<uint32_t> ZoFs::SplitNodeIntoCoffer(const ResolveResult& r, const std::string& path,
                                           uint16_t mode, uint32_t uid, uint32_t gid) {
  AUDIT_SCOPE("ZoFs::SplitNodeIntoCoffer");
  const uint32_t cid = r.node.coffer_id;
  ASSIGN_OR_RETURN(info, EnsureMapped(cid, true));
  nvm::NvmDevice* dev = kfs_->dev();

  mpk::AccessWindow w(info.key, true);
  CofferAllocator& alloc = AllocatorFor(cid, info);

  // Collect the subtree plus a fresh page that becomes the new coffer's
  // custom (allocator pool) page; initialise it while it is still ours.
  ASSIGN_OR_RETURN(runs, CollectSubtreeRuns(cid, r.node.inode_off, path));
  ASSIGN_OR_RETURN(custom, alloc.AllocPage(/*zero=*/false));
  CofferAllocator::InitPool(dev, custom);

  // Update the inode's identity before ownership moves (we may lose write
  // access to the new coffer under the new permission).
  const uint64_t ino_off = r.node.inode_off;
  dev->Store16(ino_off + offsetof(Inode, mode), mode);
  dev->Store32(ino_off + offsetof(Inode, uid), uid);
  dev->Store32(ino_off + offsetof(Inode, gid), gid);
  dev->PersistRange(ino_off + offsetof(Inode, mode), 16);

  std::vector<uint64_t> all_pages;
  for (const PageRun& run : runs) {
    for (uint64_t p = run.start_page; p < run.start_page + run.len; p++) {
      all_pages.push_back(p * nvm::kPageSize);
    }
  }
  all_pages.push_back(custom);
  std::vector<PageRun> move = PagesToRuns(std::move(all_pages));

  ASSIGN_OR_RETURN(new_cid,
                   kfs_->CofferSplit(*proc_, cid, move, path, kernfs::kCofferTypeZofs,
                                     static_cast<uint16_t>(EffPerm(mode)), uid, gid,
                                     /*new_root_inode_off=*/ino_off, /*new_custom_off=*/custom));
  RecordRelocation(move, new_cid);
  return new_cid;
}

Status ZoFs::Chmod(const std::string& path, uint16_t mode) {
  AUDIT_SCOPE("ZoFs::Chmod");
  // May split the node into its own coffer, relocating its pages: drain open
  // append epochs first (stages pin volatile page addresses).
  RETURN_IF_ERROR(FlushAllStages());
  std::string norm = vfs::NormalizePath(path);
  ASSIGN_OR_RETURN(r, Resolve(norm, true));
  nvm::NvmDevice* dev = kfs_->dev();

  const Inode snapshot = [&]() {
    Inode copy{};
    auto key = KeyFor(r.node.coffer_id, false);
    if (key.ok()) {
      mpk::AccessWindow w(*key, false);
      copy = *Ino(r.node.inode_off);
    }
    return copy;
  }();
  if (snapshot.magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }
  if (!proc_->cred().IsRoot() && proc_->cred().uid != snapshot.uid) {
    return Err::kPerm;
  }

  auto update_inode_mode = [&]() -> Status {
    ASSIGN_OR_RETURN(info, EnsureMapped(r.node.coffer_id, true));
    mpk::AccessWindow w(info.key, true);
    dev->Store16(r.node.inode_off + offsetof(Inode, mode), mode);
    dev->PersistRange(r.node.inode_off + offsetof(Inode, mode), 2);
    return common::OkStatus();
  };

  if (r.is_coffer_root) {
    // The file is a coffer root: the permission lives in the (kernel-owned)
    // coffer root page — a single kernel call, no page movement.
    RETURN_IF_ERROR(kfs_->CofferChmod(*proc_, r.node.coffer_id,
                                      static_cast<uint16_t>(EffPerm(mode))));
    return update_inode_mode();
  }
  if (opts_.one_coffer || EffPerm(mode) == EffPerm(snapshot.mode)) {
    // Same permission group (or the 1-coffer variant): pure user-space
    // metadata update — the fast line of Table 9.
    return update_inode_mode();
  }

  // The file leaves its permission group: split it into its own coffer.
  ASSIGN_OR_RETURN(pinfo, EnsureMapped(r.parent.coffer_id, true));
  mpk::AccessWindow pw(pinfo.key, true);
  Inode* pdir = Ino(r.parent.inode_off);
  InodeLock plock(dev, r.parent.inode_off, opts_.lease_ns, r.parent.coffer_id);
  if (!plock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(r.parent.coffer_id, pinfo, plock, r.parent.inode_off);

  ASSIGN_OR_RETURN(new_cid, SplitNodeIntoCoffer(r, norm, mode, snapshot.uid, snapshot.gid));
  ASSIGN_OR_RETURN(d, DirFind(r.parent.coffer_id, pdir, r.leaf));
  const uint64_t d_off = dev->OffsetOf(d);
  dev->Store32(d_off + offsetof(Dentry, coffer_id), new_cid);
  dev->PersistRange(d_off + offsetof(Dentry, coffer_id), 4);
  return common::OkStatus();
}

Status ZoFs::Chown(const std::string& path, uint32_t uid, uint32_t gid) {
  AUDIT_SCOPE("ZoFs::Chown");
  // Same coffer-split hazard as Chmod: drain open append epochs first.
  RETURN_IF_ERROR(FlushAllStages());
  std::string norm = vfs::NormalizePath(path);
  ASSIGN_OR_RETURN(r, Resolve(norm, true));
  nvm::NvmDevice* dev = kfs_->dev();
  if (!proc_->cred().IsRoot()) {
    return Err::kPerm;
  }

  const Inode snapshot = [&]() {
    Inode copy{};
    auto key = KeyFor(r.node.coffer_id, false);
    if (key.ok()) {
      mpk::AccessWindow w(*key, false);
      copy = *Ino(r.node.inode_off);
    }
    return copy;
  }();
  if (snapshot.magic != kInodeMagic) {
    return Err::kCorrupt;  // object-local damage; coffer graph still trusted
  }

  auto update_inode_owner = [&]() -> Status {
    ASSIGN_OR_RETURN(info, EnsureMapped(r.node.coffer_id, true));
    mpk::AccessWindow w(info.key, true);
    dev->Store32(r.node.inode_off + offsetof(Inode, uid), uid);
    dev->Store32(r.node.inode_off + offsetof(Inode, gid), gid);
    dev->PersistRange(r.node.inode_off + offsetof(Inode, uid), 8);
    return common::OkStatus();
  };

  if (r.is_coffer_root) {
    RETURN_IF_ERROR(kfs_->CofferChown(*proc_, r.node.coffer_id, uid, gid));
    return update_inode_owner();
  }
  if (opts_.one_coffer || (uid == snapshot.uid && gid == snapshot.gid)) {
    return update_inode_owner();
  }

  ASSIGN_OR_RETURN(pinfo, EnsureMapped(r.parent.coffer_id, true));
  mpk::AccessWindow pw(pinfo.key, true);
  Inode* pdir = Ino(r.parent.inode_off);
  InodeLock plock(dev, r.parent.inode_off, opts_.lease_ns, r.parent.coffer_id);
  if (!plock.ok()) {
    return Err::kBusy;
  }
  MaybeOnlineRepair(r.parent.coffer_id, pinfo, plock, r.parent.inode_off);

  ASSIGN_OR_RETURN(new_cid, SplitNodeIntoCoffer(r, norm, snapshot.mode, uid, gid));
  ASSIGN_OR_RETURN(d, DirFind(r.parent.coffer_id, pdir, r.leaf));
  const uint64_t d_off = dev->OffsetOf(d);
  dev->Store32(d_off + offsetof(Dentry, coffer_id), new_cid);
  dev->PersistRange(d_off + offsetof(Dentry, coffer_id), 4);
  return common::OkStatus();
}

Result<Dentry*> ZoFs::PrepareRenameDst(uint32_t dcid, Inode* ddir, std::string_view to_leaf,
                                       uint32_t src_type, uint32_t src_coffer, uint64_t src_ino,
                                       bool* same_file) {
  *same_file = false;
  ASSIGN_OR_RETURN(dd, DirFind(dcid, ddir, to_leaf));
  if (dd->coffer_id == src_coffer && dd->inode_off == src_ino) {
    *same_file = true;
    return dd;
  }
  const uint32_t dst_type = dd->cached_type();
  if (src_type == kTypeDirectory && dst_type != kTypeDirectory) {
    return Err::kNotDir;
  }
  if (src_type != kTypeDirectory && dst_type == kTypeDirectory) {
    return Err::kIsDir;
  }
  if (dst_type == kTypeDirectory) {
    // An overwritten directory must be empty (possibly in another coffer).
    if (dd->coffer_id == 0) {
      if (!ValidMetaPage(dd->inode_off)) {
        return Sick(dcid);
      }
      ASSIGN_OR_RETURN(empty, DirIsEmpty(dcid, Ino(dd->inode_off)));
      if (!empty) {
        return Err::kNotEmpty;
      }
    } else {
      ASSIGN_OR_RETURN(tinfo, EnsureMapped(dd->coffer_id, false));
      if (tinfo.root_inode_off != dd->inode_off) {
        return Sick(dcid);  // manipulated cross-coffer reference (G3)
      }
      mpk::AccessWindow tw(tinfo.key, false);
      ASSIGN_OR_RETURN(empty, DirIsEmpty(dd->coffer_id, Ino(dd->inode_off)));
      if (!empty) {
        return Err::kNotEmpty;
      }
    }
  }
  return dd;
}

Status ZoFs::BeginRenameIntent(const MapInfo& info, const RenameIntent& body) {
  AUDIT_SCOPE("ZoFs::BeginRenameIntent");
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t off = info.custom_off + offsetof(AllocPool, rename_intent);
  const uint64_t magic_off = off + offsetof(RenameIntent, magic);
  // Claim the slot; a stale claim (holder died mid-rename without committing)
  // is stealable after its lease expires, and a garbage expiry word (no live
  // holder could have stamped it that far out) is stolen outright. A live
  // holder that outlasts the wait bound surfaces as EBUSY, never a hang.
  const uint64_t give_up = common::RealNowNs() + LockWaitBoundNs(opts_.lease_ns);
  for (;;) {
    uint64_t m = dev->AtomicLoad64(magic_off);
    if (m == 0) {
      if (dev->AtomicCas64(magic_off, 0, kRenameIntentClaimed)) {
        break;
      }
    } else {
      const uint64_t expiry = dev->Load64(off + offsetof(RenameIntent, lease_expiry_ns));
      const uint64_t now = common::NowNs();
      if ((expiry < now || expiry > now + kMaxLeaseSlackNs) &&
          dev->AtomicCas64(magic_off, m, kRenameIntentClaimed)) {
        break;
      }
    }
    if (common::RealNowNs() >= give_up) {
      return Err::kBusy;
    }
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
  RenameIntent in = body;
  in.magic = kRenameIntentClaimed;
  in.lease_expiry_ns = common::NowNs() + opts_.lease_ns;
  dev->StoreBytes(off, &in, sizeof(in));
  dev->PersistRange(off, sizeof(in));
  // Commit: the intent becomes authoritative for recovery.
  dev->AtomicStore64(magic_off, kRenameIntentMagic);
  AUDIT_ORDER_AFTER(dev, magic_off, 8, off, sizeof(in));
  dev->PersistRange(magic_off, 8);
  return common::OkStatus();
}

void ZoFs::EndRenameIntent(const MapInfo& info) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t magic_off =
      info.custom_off + offsetof(AllocPool, rename_intent) + offsetof(RenameIntent, magic);
  dev->AtomicStore64(magic_off, 0);
  dev->PersistRange(magic_off, 8);
}

Status ZoFs::FreeRenameVictim(uint32_t dcid, const MapInfo& dinfo, uint64_t old_dst_ino,
                              uint32_t old_dst_coffer) {
  if (old_dst_coffer != 0) {
    // The overwritten destination rooted its own coffer: the kernel reclaims
    // it whole.
    RETURN_IF_ERROR(kfs_->CofferDelete(*proc_, old_dst_coffer));
    ForgetMapping(old_dst_coffer);
    return common::OkStatus();
  }
  CofferAllocator& alloc = AllocatorFor(dcid, dinfo);
  return FreeNode(dcid, alloc, old_dst_ino);
}

Status ZoFs::Rename(const std::string& from, const std::string& to) {
  AUDIT_SCOPE("ZoFs::Rename");
  const std::string nfrom = vfs::NormalizePath(from);
  const std::string nto = vfs::NormalizePath(to);
  if (nfrom == nto) {
    return common::OkStatus();
  }
  if (nto.size() > nfrom.size() && nto.compare(0, nfrom.size(), nfrom) == 0 &&
      nto[nfrom.size()] == '/') {
    return Err::kInval;  // cannot move a directory into itself
  }
  // Rename is a durability point (DESIGN.md): open append epochs drain
  // before the namespace moves, so the moved file's data is durable wherever
  // its new name lands — and cross-coffer moves never relocate staged pages.
  RETURN_IF_ERROR(FlushAllStages());
  nvm::NvmDevice* dev = kfs_->dev();

  ASSIGN_OR_RETURN(src, Resolve(nfrom, false));
  if (src.leaf.empty()) {
    return Err::kBusy;  // "/"
  }
  if (opts_.legacy_rename_overwrite) {
    // Pre-fix behaviour, kept as a test hook so the crash explorer's
    // planted-bug regression can demonstrate the detection: the destination
    // is removed before the move is attempted, so a crash (or failure) in
    // between loses it without completing the rename.
    auto dst_exists = Resolve(nto, false);
    if (dst_exists.ok()) {
      vfs::StatBuf st;
      {
        ASSIGN_OR_RETURN(s, StatNode(dst_exists->node));
        st = s;
      }
      if (st.type == vfs::FileType::kDirectory) {
        RETURN_IF_ERROR(Rmdir(nto));
      } else {
        RETURN_IF_ERROR(Unlink(nto));
      }
    }
  }
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(nto));
  const auto& [to_parent_path, to_leaf] = pp;
  ASSIGN_OR_RETURN(dstp, Resolve(to_parent_path, true));

  const uint32_t scid = src.parent.coffer_id;
  const uint32_t dcid = dstp.node.coffer_id;
  ASSIGN_OR_RETURN(sinfo, EnsureMapped(scid, true));
  ASSIGN_OR_RETURN(dinfo, EnsureMapped(dcid, true));

  // Snapshot the source dentry (read-only: DirFind never writes).
  Dentry d;
  uint32_t node_type;
  {
    mpk::AccessWindow w(sinfo.key, false);
    Inode* sdir = Ino(src.parent.inode_off);
    ASSIGN_OR_RETURN(dp, DirFind(scid, sdir, src.leaf));
    d = *dp;
    node_type = d.cached_type();
  }

  auto lock_both_and = [&](auto&& body) -> Status {
    if (src.parent.inode_off == dstp.node.inode_off) {
      mpk::AccessWindow w(sinfo.key, true);
      InodeLock l(dev, src.parent.inode_off, opts_.lease_ns, scid);
      if (!l.ok()) {
        return Err::kBusy;
      }
      MaybeOnlineRepair(scid, sinfo, l, src.parent.inode_off);
      return body();
    }
    // Deterministic lock order avoids deadlock between concurrent renames.
    uint64_t first = std::min(src.parent.inode_off, dstp.node.inode_off);
    uint64_t second = std::max(src.parent.inode_off, dstp.node.inode_off);
    uint8_t fkey = first == src.parent.inode_off ? sinfo.key : dinfo.key;
    uint8_t skey = first == src.parent.inode_off ? dinfo.key : sinfo.key;
    mpk::AccessWindow w1(fkey, true);
    InodeLock l1(dev, first, opts_.lease_ns, first == src.parent.inode_off ? scid : dcid);
    if (!l1.ok()) {
      return Err::kBusy;
    }
    MaybeOnlineRepair(first == src.parent.inode_off ? scid : dcid,
                      first == src.parent.inode_off ? sinfo : dinfo, l1, first);
    mpk::AccessWindow w2(skey, true);
    InodeLock l2(dev, second, opts_.lease_ns, second == src.parent.inode_off ? scid : dcid);
    if (!l2.ok()) {
      return Err::kBusy;
    }
    MaybeOnlineRepair(second == src.parent.inode_off ? scid : dcid,
                      second == src.parent.inode_off ? sinfo : dinfo, l2, second);
    return body();
  };

  if (scid == dcid) {
    // Same coffer: pure user-space dentry movement, made crash-atomic by the
    // coffer's rename intent. The commit point is a single dentry-cacheline
    // store (retarget for overwrite, the in-use flag for a fresh insert);
    // recovery rolls the intent forward or back around it.
    return lock_both_and([&]() -> Status {
      mpk::AccessWindow w(dinfo.key, true);
      Inode* ddir = Ino(dstp.node.inode_off);
      Inode* sdir = Ino(src.parent.inode_off);
      if (ddir->type != kTypeDirectory) {
        return Err::kNotDir;
      }
      // Re-find the source under the locks (the snapshot may be stale).
      ASSIGN_OR_RETURN(sd, DirFind(scid, sdir, src.leaf));
      d = *sd;
      node_type = d.cached_type();
      bool same_file = false;
      Dentry* dd = nullptr;
      {
        auto found = PrepareRenameDst(dcid, ddir, to_leaf, node_type, d.coffer_id, d.inode_off,
                                      &same_file);
        if (found.ok()) {
          dd = *found;
        } else if (found.error() != Err::kNoEnt) {
          return found.error();
        }
      }
      if (same_file) {
        return common::OkStatus();  // POSIX: src and dst name the same node
      }

      RenameIntent in{};
      in.src_dir_ino = src.parent.inode_off;
      in.dst_dir_ino = dstp.node.inode_off;
      in.child_ino = d.inode_off;
      in.child_coffer = d.coffer_id;
      in.child_type = node_type;
      if (dd != nullptr) {
        in.old_dst_ino = dd->inode_off;
        in.old_dst_coffer = dd->coffer_id;
      }
      in.src_len = static_cast<uint8_t>(src.leaf.size());
      in.dst_len = static_cast<uint8_t>(to_leaf.size());
      memcpy(in.src_name, src.leaf.data(), src.leaf.size());
      memcpy(in.dst_name, to_leaf.data(), to_leaf.size());
      RETURN_IF_ERROR(BeginRenameIntent(dinfo, in));

      if (dd != nullptr) {
        // Overwrite: atomically retarget the existing destination dentry.
        // The displaced node is freed only after this commit, so neither a
        // failure nor a crash can lose the destination without completing
        // the rename.
        RETURN_IF_ERROR(DirReplaceTarget(ddir, dd, d.coffer_id, d.inode_off, node_type));
      } else {
        Status s = DirInsert(dcid, dinfo, ddir, to_leaf, d.coffer_id, d.inode_off, node_type);
        if (!s.ok()) {
          EndRenameIntent(dinfo);  // nothing committed; pre-state intact
          return s;
        }
      }
      // Tenant death with the rename intent committed and the destination
      // dentry landed, but the source dentry still in place: the survivor
      // (or offline recovery) rolls the move forward from the intent.
      common::KillPoint(common::kKillMidRenameIntent);
      RETURN_IF_ERROR(DirRemoveAt(sdir, sd));
      if (dd != nullptr) {
        RETURN_IF_ERROR(FreeRenameVictim(dcid, dinfo, in.old_dst_ino, in.old_dst_coffer));
      }
      Status tail = common::OkStatus();
      if (d.coffer_id != 0) {
        // The moved node roots a coffer whose stored path must follow it.
        tail = kfs_->CofferRename(*proc_, d.coffer_id, nto);
      } else if (node_type == kTypeDirectory) {
        // Descendant coffers' paths embed the old prefix.
        tail = kfs_->CofferFixupPaths(*proc_, nfrom, nto);
      }
      EndRenameIntent(dinfo);
      return tail;
    });
  }

  // Cross-coffer rename (Table 9's expensive path). The destination is
  // validated first and an existing one is displaced only at the commit
  // point (retarget), so a mid-move failure cannot lose it; full cross-
  // coffer crash atomicity (one intent spanning two coffers) is future work
  // — the insert-before-remove order at least never loses the moved node.
  if (d.coffer_id != 0) {
    // The node is already its own coffer: move the dentry and re-path it.
    return lock_both_and([&]() -> Status {
      mpk::AccessWindow w(dinfo.key, true);
      Inode* ddir = Ino(dstp.node.inode_off);
      if (ddir->type != kTypeDirectory) {
        return Err::kNotDir;
      }
      bool same_file = false;
      Dentry* dd = nullptr;
      {
        auto found = PrepareRenameDst(dcid, ddir, to_leaf, node_type, d.coffer_id, d.inode_off,
                                      &same_file);
        if (found.ok()) {
          dd = *found;
        } else if (found.error() != Err::kNoEnt) {
          return found.error();
        }
      }
      if (same_file) {
        return common::OkStatus();
      }
      uint64_t old_dst_ino = 0;
      uint32_t old_dst_coffer = 0;
      if (dd != nullptr) {
        old_dst_ino = dd->inode_off;
        old_dst_coffer = dd->coffer_id;
        RETURN_IF_ERROR(DirReplaceTarget(ddir, dd, d.coffer_id, d.inode_off, node_type));
      } else {
        RETURN_IF_ERROR(DirInsert(dcid, dinfo, ddir, to_leaf, d.coffer_id, d.inode_off, node_type));
      }
      {
        mpk::AccessWindow w2(sinfo.key, true);
        Inode* sdir = Ino(src.parent.inode_off);
        RETURN_IF_ERROR(DirRemove(scid, sdir, src.leaf));
      }
      if (dd != nullptr) {
        RETURN_IF_ERROR(FreeRenameVictim(dcid, dinfo, old_dst_ino, old_dst_coffer));
      }
      return kfs_->CofferRename(*proc_, d.coffer_id, nto);
    });
  }

  // The node's pages live inside the source coffer and must change owner.
  {
    mpk::AccessWindow w(sinfo.key, false);
    if (!ValidMetaPage(d.inode_off)) {
      return Sick(scid);
    }
  }
  const Inode snapshot = [&]() {
    mpk::AccessWindow w(sinfo.key, false);
    return *Ino(d.inode_off);
  }();
  const CofferRoot* droot = kfs_->RootPageOf(dcid);

  // Validates the destination slot and snapshots a displaced node before any
  // pages move, so every fallible step precedes the first destructive one.
  struct DstPlan {
    bool overwrite = false;
    Dentry* dd = nullptr;
    uint64_t old_dst_ino = 0;
    uint32_t old_dst_coffer = 0;
  };
  auto plan_dst = [&]() -> Result<DstPlan> {
    DstPlan plan;
    mpk::AccessWindow w(dinfo.key, true);
    Inode* ddir = Ino(dstp.node.inode_off);
    if (ddir->type != kTypeDirectory) {
      return Err::kNotDir;
    }
    bool same_file = false;
    auto found =
        PrepareRenameDst(dcid, ddir, to_leaf, node_type, d.coffer_id, d.inode_off, &same_file);
    if (found.ok()) {
      plan.overwrite = true;
      plan.dd = *found;
      plan.old_dst_ino = (*found)->inode_off;
      plan.old_dst_coffer = (*found)->coffer_id;
    } else if (found.error() != Err::kNoEnt) {
      return found.error();
    }
    return plan;
  };
  // Commits the namespace move: retarget the displaced dentry or insert a
  // fresh one, then drop the source name and free the displaced node.
  auto commit_dst = [&](const DstPlan& plan, uint32_t child_coffer) -> Status {
    {
      mpk::AccessWindow w(dinfo.key, true);
      Inode* ddir = Ino(dstp.node.inode_off);
      if (plan.overwrite) {
        RETURN_IF_ERROR(DirReplaceTarget(ddir, plan.dd, child_coffer, d.inode_off, node_type));
      } else {
        RETURN_IF_ERROR(DirInsert(dcid, dinfo, ddir, to_leaf, child_coffer, d.inode_off, node_type));
      }
    }
    {
      mpk::AccessWindow w(sinfo.key, true);
      Inode* sdir = Ino(src.parent.inode_off);
      RETURN_IF_ERROR(DirRemove(scid, sdir, src.leaf));
    }
    if (plan.overwrite) {
      mpk::AccessWindow w(dinfo.key, true);
      RETURN_IF_ERROR(FreeRenameVictim(dcid, dinfo, plan.old_dst_ino, plan.old_dst_coffer));
    }
    return common::OkStatus();
  };

  if (SameGroup(snapshot.mode, snapshot.uid, snapshot.gid, droot)) {
    // Same permission group as the destination coffer: bulk page move.
    return lock_both_and([&]() -> Status {
      ASSIGN_OR_RETURN(plan, plan_dst());
      std::vector<PageRun> runs;
      {
        mpk::AccessWindow w(sinfo.key, true);
        ASSIGN_OR_RETURN(r2, CollectSubtreeRuns(scid, d.inode_off, nfrom));
        runs = r2;
      }
      RETURN_IF_ERROR(kfs_->CofferMovePages(*proc_, scid, dcid, runs));
      RecordRelocation(runs, dcid);
      RETURN_IF_ERROR(commit_dst(plan, 0));
      if (node_type == kTypeDirectory) {
        return kfs_->CofferFixupPaths(*proc_, nfrom, nto);
      }
      return common::OkStatus();
    });
  }

  // Different permission group: the node becomes its own coffer at `to`.
  return lock_both_and([&]() -> Status {
    ASSIGN_OR_RETURN(plan, plan_dst());
    ResolveResult fake = src;
    ASSIGN_OR_RETURN(new_cid,
                     SplitNodeIntoCoffer(fake, nto, snapshot.mode, snapshot.uid, snapshot.gid));
    RETURN_IF_ERROR(commit_dst(plan, new_cid));
    if (node_type == kTypeDirectory) {
      return kfs_->CofferFixupPaths(*proc_, nfrom, nto);
    }
    return common::OkStatus();
  });
}

}  // namespace zofs
