// Offline recovery (fsck) for ZoFS coffers (paper §3.5, §5.3).
//
// Per coffer: traverse from the root inode, recording every reachable page
// and every cross-coffer reference; clear dentries that fail validation;
// reset the allocator pool (stale leased free lists are discarded — their
// pages are either reachable, and kept, or leaked, and reclaimed); then
// report the in-use set to KernFS, which reclaims everything else the coffer
// owns. After all coffers are traversed, cross-coffer references are
// validated against the surviving coffers and dangling ones are cleared.

#include <set>
#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/mpk/mpk.h"
#include "src/zofs/zofs.h"

namespace zofs {

using kernfs::CofferRoot;

namespace {
bool PlausiblePage(const nvm::NvmDevice* dev, uint64_t off) {
  return off != 0 && off % nvm::kPageSize == 0 && off + nvm::kPageSize <= dev->size();
}
}  // namespace

Status ZoFs::CollectReachable(uint32_t cid, uint64_t inode_off, const std::string& path,
                              std::vector<uint64_t>* pages, std::vector<CrossRef>* cross_refs,
                              uint64_t* cleared_dentries) {
  nvm::NvmDevice* dev = kfs_->dev();
  if (!PlausiblePage(dev, inode_off)) {
    return Err::kCorrupt;
  }
  const Inode* ino = Ino(inode_off);
  if (ino->magic != kInodeMagic) {
    return Err::kCorrupt;
  }
  pages->push_back(inode_off);

  if (ino->type == kTypeRegular) {
    auto keep = [&](uint64_t off) {
      if (PlausiblePage(dev, off)) {
        pages->push_back(off);
        return true;
      }
      return false;
    };
    for (uint64_t b = 0; b < kDirectBlocks; b++) {
      keep(ino->direct[b]);
    }
    if (keep(ino->indirect)) {
      const uint64_t* ind = dev->As<uint64_t>(ino->indirect);
      for (uint64_t i = 0; i < kPtrsPerPage; i++) {
        keep(ind[i]);
      }
    }
    if (keep(ino->dindirect)) {
      const uint64_t* dind = dev->As<uint64_t>(ino->dindirect);
      for (uint64_t i = 0; i < kPtrsPerPage; i++) {
        if (keep(dind[i])) {
          const uint64_t* ind = dev->As<uint64_t>(dind[i]);
          for (uint64_t j = 0; j < kPtrsPerPage; j++) {
            keep(ind[j]);
          }
        }
      }
    }
    return common::OkStatus();
  }

  if (ino->type == kTypeSymlink) {
    return common::OkStatus();
  }

  if (ino->type != kTypeDirectory) {
    return Err::kCorrupt;
  }
  if (ino->l1_dir == 0) {
    return common::OkStatus();
  }
  if (!PlausiblePage(dev, ino->l1_dir)) {
    return common::OkStatus();  // drop the whole (corrupt) directory body
  }
  pages->push_back(ino->l1_dir);
  const uint64_t* l1 = dev->As<uint64_t>(ino->l1_dir);

  auto visit_dentry = [&](Dentry& d) -> Status {
    if (!d.in_use()) {
      return common::OkStatus();
    }
    const uint64_t d_off = dev->OffsetOf(&d);
    // Recognise corrupt dentries (paper: "ZoFS first tries to recognize and
    // recover it; if not possible, skips the corrupted content").
    bool valid = d.name_len > 0 && d.name_len <= kMaxName && d.name[d.name_len] == '\0' &&
                 d.name_hash == common::Fnv1a32(std::string_view(d.name, d.name_len));
    if (valid && d.coffer_id == 0) {
      valid = PlausiblePage(dev, d.inode_off);
    }
    if (!valid) {
      dev->Store16(d_off + offsetof(Dentry, flags), 0);
      dev->PersistRange(d_off + offsetof(Dentry, flags), 2);
      (*cleared_dentries)++;
      return common::OkStatus();
    }
    std::string child_path =
        (path == "/" ? "/" : path + "/") + std::string(d.name, d.name_len);
    if (d.coffer_id != 0) {
      cross_refs->push_back(CrossRef{child_path, cid, d.coffer_id, d.inode_off, d_off});
      return common::OkStatus();
    }
    Status s = CollectReachable(cid, d.inode_off, child_path, pages, cross_refs,
                                cleared_dentries);
    if (!s.ok()) {
      // The child subtree is unrecoverable: clear the dentry instead of
      // failing the whole coffer.
      dev->Store16(d_off + offsetof(Dentry, flags), 0);
      dev->PersistRange(d_off + offsetof(Dentry, flags), 2);
      (*cleared_dentries)++;
    }
    return common::OkStatus();
  };

  for (uint64_t s = 0; s < kL1Slots; s++) {
    if (l1[s] == 0) {
      continue;
    }
    if (!PlausiblePage(dev, l1[s])) {
      continue;
    }
    pages->push_back(l1[s]);
    L2Page* l2 = dev->As<L2Page>(l1[s]);
    for (Dentry& d : l2->embedded) {
      RETURN_IF_ERROR(visit_dentry(d));
    }
    for (uint64_t b = 0; b < kL2Buckets; b++) {
      uint64_t run_off = l2->buckets[b];
      std::unordered_set<uint64_t> seen;  // corrupted chains may loop
      while (run_off != 0 && PlausiblePage(dev, run_off) && seen.insert(run_off).second) {
        pages->push_back(run_off);
        DentryRun* run = dev->As<DentryRun>(run_off);
        for (Dentry& d : run->dentries) {
          RETURN_IF_ERROR(visit_dentry(d));
        }
        run_off = run->next;
      }
    }
  }
  return common::OkStatus();
}

Result<uint64_t> ZoFs::RecoverCoffer(uint32_t cid) {
  auto stats = RecoverOne(cid, nullptr);
  if (!stats.ok()) {
    if (stats.error() == Err::kNoEnt) {
      ClearSick(cid);  // the coffer no longer exists; nothing to quarantine
    } else {
      // Repair failed: keep the coffer readable but refuse further writes
      // instead of letting callers keep re-tripping on the corruption.
      QuarantineReadOnly(cid);
    }
    return stats.error();
  }
  return stats->pages_reclaimed;
}

// RepairPendingRename / RepairPendingStagedAppend live in zofs_repair.cc:
// they are shared with the online lease-steal repair path and must run
// without a remount.

Result<ZoFs::RecoveryStats> ZoFs::RecoverOne(uint32_t cid, std::vector<CrossRef>* cross_out) {
  RecoveryStats st;
  common::Stopwatch total;

  // The kernel rediscovers coffers from alloc-table ownership alone, so a
  // crash can leave a coffer whose root page is torn: a create interrupted
  // before the root page fully persisted (magic or custom_off line missing),
  // or a delete that invalidated the magic but was cut off mid page-sweep.
  // Such a coffer has no recoverable contents — mapping it would hand the µFS
  // a garbage custom_off / root_inode_off — so complete the deletion instead.
  // Validate before CofferMap/CofferRecoverBegin: both read flags and
  // permissions from the (garbage) root page.
  nvm::NvmDevice* dev = kfs_->dev();
  const CofferRoot* croot = kfs_->RootPageOf(cid);
  bool intact = croot->magic == kernfs::kCofferMagic &&
                PlausiblePage(dev, croot->root_inode_off) &&
                PlausiblePage(dev, croot->custom_off);
  if (intact) {
    intact = Ino(croot->root_inode_off)->magic == kInodeMagic;
  }
  if (!intact) {
    common::Stopwatch k0;
    uint64_t owned = 0;
    auto runs = kfs_->PagesOf(cid);
    if (runs.ok()) {
      for (const kernfs::PageRun& r : *runs) {
        owned += r.len;
      }
    }
    RETURN_IF_ERROR(kfs_->CofferDelete(*proc_, cid));
    ForgetMapping(cid);
    ClearSick(cid);  // the coffer is gone; drop any quarantine with it
    st.kernel_ns = k0.ElapsedNs();
    st.pages_reclaimed = owned;
    st.user_ns = total.ElapsedNs() - st.kernel_ns;
    return st;
  }

  // Map first (coffer_map refuses in-recovery coffers), then flag the coffer
  // in-recovery, which unmaps it from everyone else. Recovery bypasses the
  // sick gate: it is the path that lifts the quarantine.
  ASSIGN_OR_RETURN(info, EnsureMapped(cid, true, /*bypass_sick=*/true));
  {
    // PlausiblePage above only bounds-checks: a scribbled root page can aim
    // custom_off at a page some *other* coffer owns, and the pool accesses
    // below (rename-intent load, InitPool) would take its page fault. Probe
    // ownership through the MPK oracle before recovery touches it; user
    // space cannot repair a coffer whose root page is lying, so the caller
    // quarantines it read-only.
    mpk::AccessWindow w(info.key, true);
    if (!mpk::ProbeAccess(info.custom_off, sizeof(AllocPool), true)) {
      return Err::kCorrupt;
    }
  }
  common::Stopwatch k1;
  RETURN_IF_ERROR(kfs_->CofferRecoverBegin(*proc_, cid, /*lease_ns=*/10'000'000'000ULL));
  st.kernel_ns += k1.ElapsedNs();

  std::vector<uint64_t> pages;
  std::vector<CrossRef> cross;
  {
    mpk::AccessWindow w(info.key, true);
    // An interrupted rename is rolled forward or back before traversal so
    // the walk sees exactly the pre- or post-rename namespace; likewise a
    // committed staged-append relink is rolled forward so the traversal sees
    // the synced file (and keeps its staged pages reachable).
    RETURN_IF_ERROR(RepairPendingRename(cid, info, &st.dentries_cleared));
    RETURN_IF_ERROR(RepairPendingStagedAppend(cid, info));
    Status s = CollectReachable(cid, info.root_inode_off, croot->path[1] == '\0' ? "/" : croot->path,
                                &pages, &cross, &st.dentries_cleared);
    if (!s.ok() && s.error() != Err::kCorrupt) {
      return s.error();
    }
    // Discard stale leased free lists: any parked page not otherwise
    // reachable is reclaimed by the kernel below.
    CofferAllocator::InitPool(kfs_->dev(), info.custom_off);
  }

  std::vector<uint64_t> in_use;
  in_use.reserve(pages.size());
  for (uint64_t off : pages) {
    in_use.push_back(off / nvm::kPageSize);
  }
  st.pages_in_use = in_use.size();

  common::Stopwatch k2;
  ASSIGN_OR_RETURN(reclaimed, kfs_->CofferRecoverEnd(*proc_, cid, in_use));
  st.kernel_ns += k2.ElapsedNs();
  st.pages_reclaimed = reclaimed;
  st.user_ns = total.ElapsedNs() - st.kernel_ns;
  // A full repair pass lifts the quarantine: the surviving structure has been
  // re-validated end to end.
  ClearSick(cid);

  if (cross_out != nullptr) {
    cross_out->insert(cross_out->end(), cross.begin(), cross.end());
  }
  return st;
}

Result<ZoFs::RecoveryStats> ZoFs::RecoverAll() {
  RecoveryStats total;
  std::vector<CrossRef> cross;
  rename_repath_.clear();
  rename_repath_all_ = false;
  for (uint32_t cid : kfs_->AllCofferIds()) {
    auto st_or = RecoverOne(cid, &cross);
    if (!st_or.ok()) {
      if (st_or.error() == Err::kNoEnt) {
        // Deleted while recovering an earlier coffer (rename roll-forward
        // dropping a displaced destination, or a torn-coffer cleanup).
        continue;
      }
      return st_or.error();
    }
    const RecoveryStats& st = *st_or;
    total.user_ns += st.user_ns;
    total.kernel_ns += st.kernel_ns;
    total.pages_in_use += st.pages_in_use;
    total.pages_reclaimed += st.pages_reclaimed;
    total.dentries_cleared += st.dentries_cleared;
  }

  // Phase 2: validate cross-coffer references against surviving coffers
  // (paper: "ZoFS continues to validate cross-coffer metadata").
  nvm::NvmDevice* dev = kfs_->dev();
  std::set<uint32_t> live;
  for (uint32_t cid : kfs_->AllCofferIds()) {
    live.insert(cid);
  }
  for (const CrossRef& ref : cross) {
    bool ok = live.count(ref.coffer_id) > 0;
    if (ok) {
      const CofferRoot* troot = kfs_->RootPageOf(ref.coffer_id);
      ok = troot->magic == kernfs::kCofferMagic && troot->root_inode_off == ref.inode_off;
      if (ok && ref.path.compare(troot->path) != 0) {
        // A stale stored path is repairable (rather than a protection
        // violation) only when an interrupted rename vouches for it: the
        // crash may have hit between the dentry commit and the kernel-side
        // CofferRename/CofferFixupPaths.
        if (rename_repath_all_ || rename_repath_.count(ref.coffer_id) > 0) {
          ok = kfs_->CofferRename(*proc_, ref.coffer_id, ref.path).ok();
        } else {
          ok = false;
        }
      }
    }
    if (!ok) {
      ASSIGN_OR_RETURN(info, EnsureMapped(ref.src_coffer, true, /*bypass_sick=*/true));
      mpk::AccessWindow w(info.key, true);
      dev->Store16(ref.dentry_off + offsetof(Dentry, flags), 0);
      dev->PersistRange(ref.dentry_off + offsetof(Dentry, flags), 2);
      total.dentries_cleared++;
    }
  }
  return total;
}

}  // namespace zofs
