// ZoFS — the example µFS built on Treasury (paper §5).
//
// One ZoFs instance runs inside one simulated process (it is the µFS part of
// that process's FSLibs). It manages the *interior* of coffers entirely in
// user space — inodes, two-level hash directories, block maps, allocators,
// lease locks — and calls into KernFS only for coffer-level operations
// (create/delete/enlarge/map/split/...).
//
// MPK discipline (paper §3.4): every coffer access happens inside an
// AccessWindow that opens exactly the coffer's key (guidelines G1/G2), and
// every cross-coffer reference is validated against the target coffer's root
// page before the window switches (guideline G3). Corruption encountered
// mid-operation surfaces as an mpk::ViolationError or Err::kCorrupt, which
// FSLibs converts into a graceful error return.

#ifndef SRC_ZOFS_ZOFS_H_
#define SRC_ZOFS_ZOFS_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/kernfs/kernfs.h"
#include "src/ufs/microfs.h"
#include "src/vfs/vfs.h"
#include "src/zofs/alloc.h"
#include "src/zofs/layout.h"

namespace zofs {

struct Options {
  // ZoFS-1coffer (Table 9): keep every file in its parent's coffer no matter
  // its permission; chmod/chown become pure user-space metadata updates.
  bool one_coffer = false;
  // ZoFS-sysempty (Figure 8): issue an empty system call before each data
  // write.
  bool sysempty = false;
  // ZoFS-kwrite (Figure 8): model the data write executing in kernel space
  // (crossing plus kernel-path overhead charged per write).
  bool kwrite = false;

  // Store small files inline in their inode page (the paper's §5.1
  // future-work optimisation; see bench_ablation_smallfile).
  bool inline_data = false;
  // Copy-on-write data updates: an overwritten block is written to a fresh
  // page and installed with an atomic pointer swap, so a crash exposes each
  // block entirely-old or entirely-new. The paper's ZoFS omits data
  // atomicity "for simplicity"; this is the natural extension.
  bool atomic_data = false;

  uint64_t lease_ns = 200'000'000;  // allocator/lock lease duration
  uint64_t enlarge_batch = 64;      // pages per coffer_enlarge request
  int max_symlink_depth = 8;

  // Test hook (crashmon planted-bug regression): restore the pre-fix rename
  // behaviour that removed an existing destination before attempting the
  // move, so a crash in between loses the destination.
  bool legacy_rename_overwrite = false;

  // Test hook (fault-injection planted-bug regression): bypass the
  // validate-before-dereference checks on persistent pointer loads and fall
  // back to the pre-hardening discipline — a bare MPK check followed by the
  // raw dereference — so a corrupted pointer takes the simulated page fault
  // instead of returning EUCLEAN. Never set outside tests.
  bool raw_deref_for_test = false;

  // Base quarantine backoff after corruption is detected in a coffer:
  // subsequent operations fail fast with EIO until the deadline, then one
  // probe is let through (doubling up to 64x base on repeated failures).
  uint64_t sick_backoff_ns = 10'000'000;

  // Shard count for the volatile caches (coffer mappings, allocators, sick
  // ledger, relocation ledger). Rounded up to a power of two, capped at 256.
  // 1 restores the old behaviour of a single lock over all volatile state —
  // the global-lock baseline bench_json measures against.
  uint32_t state_shards = 16;
  // Per-thread coffer session cache: steady-state operations revalidate an
  // epoch counter instead of taking any shared lock (the user-space analogue
  // of the paper's §5.2 leased per-thread free lists, applied to mappings).
  bool session_cache = true;
  // Upper bound on relocation-ledger entries kept across all shards. When a
  // split/rename batch would push past the cap, older entries are dropped:
  // an open FD whose redirect was dropped surfaces as an MPK fault and the
  // application reopens — the documented cross-process split behaviour.
  uint64_t relocated_cap = 65536;

  // Disable the per-thread submission/completion channels and take every
  // kernel crossing synchronously, one entry point per KernelEntry — the
  // differential-testing baseline the channel path is checked against (and
  // the pre-channel behaviour bench_json's globallock configs measure).
  bool sync_crossings = false;
  // Defer sick-coffer RecoverCoffer to the async ring: Sick() queues the
  // recovery and HarvestCompletions() runs it in the background instead of
  // the next foreground probe paying for it. Off by default so the
  // fault-injection campaign's deterministic probe/recover schedule is
  // unchanged.
  bool async_recover = false;
};

// Volatile health of one coffer as seen by this ZoFs instance.
enum class CofferHealth {
  kHealthy,
  kSick,      // corruption detected; ops fail fast until fsck or backoff probe
  kReadOnly,  // fsck could not fully repair: reads allowed, writes get EROFS
};

// A resolved file: which coffer it lives in and its inode page.
using NodeRef = ufs::NodeRef;

class InodeLock;

// ---- tenant-death accounting (procmon; bench_json zofs-bench-scale-v5) ----
// Process-wide: steals and online repairs are survivor-side events that can
// span ZoFs instances (each tenant is its own instance).
uint64_t LockStealCount();    // expired InodeLocks stolen from a dead owner
uint64_t OnlineRepairCount(); // pending intents repaired in place post-steal
uint64_t ReapedListCount();   // expired leased free lists reclaimed

namespace internal {
void NoteLockSteal();
void NoteOnlineRepair();
void NoteReapedLists(uint64_t n);
}  // namespace internal

class ZoFs final : public ufs::MicroFs {
 public:
  ZoFs(kernfs::KernFs* kfs, kernfs::Process* proc, Options opts = {});
  ~ZoFs();

  ZoFs(const ZoFs&) = delete;
  ZoFs& operator=(const ZoFs&) = delete;

  const char* Name() const override { return "ZoFS"; }

  // Marks this instance's process dead (procmon kill path): the destructor
  // skips every kernel re-entry on the corpse's behalf — no stage flush, no
  // channel drain, no FsUmount. The kernel-side reaper reclaims instead.
  void Abandon() override;

  kernfs::Process* proc() { return proc_; }
  kernfs::KernFs* kfs() { return kfs_; }
  const Options& options() const { return opts_; }

  // ---- namespace operations (paths absolute and normalized) ----
  Result<NodeRef> Lookup(const std::string& path, bool follow_last_symlink) override;
  Result<NodeRef> Create(const std::string& path, uint16_t mode) override;
  // Single-walk open-or-create (the open(2) O_CREAT fast path): resolves the
  // parent once, returns the existing node or creates it. `created` reports
  // which happened.
  Result<NodeRef> OpenOrCreate(const std::string& path, uint16_t mode, bool* created) override;
  Status Mkdir(const std::string& path, uint16_t mode) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<vfs::StatBuf> StatNode(NodeRef node) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Chmod(const std::string& path, uint16_t mode) override;
  Status Chown(const std::string& path, uint32_t uid, uint32_t gid) override;
  Status Symlink(const std::string& target, const std::string& linkpath) override;
  Result<std::string> ReadLink(const std::string& path) override;

  // ---- node operations ----
  Result<size_t> ReadAt(NodeRef node, void* buf, size_t n, uint64_t off) override;
  Result<size_t> WriteAt(NodeRef node, const void* buf, size_t n, uint64_t off) override;
  Status TruncateNode(NodeRef node, uint64_t len) override;
  // Appends at the current size under the inode lock; returns the offset the
  // data landed at (used for O_APPEND). Qualifying small appends take the
  // staged fast path: data lands in freshly allocated pages with NT stores
  // and volatile metadata installs, and durability is deferred to the next
  // durability point (SyncNode, epoch overflow, a conflicting operation).
  Result<uint64_t> Append(NodeRef node, const void* buf, size_t n) override;

  // fsync(2): drains `node`'s staged-append epoch (if any) through the
  // intent-protected relink, making every completed append durable.
  Status SyncNode(NodeRef node) override;

  // Ensures `node`'s coffer is mapped with the required access; exposed for
  // FSLibs open(2) permission handling.
  Status EnsureAccess(NodeRef node, bool writable) override;

  // Heals a NodeRef whose pages this process moved to another coffer
  // (chmod/chown split, cross-coffer rename) so open FDs survive the move.
  // Splits performed by *other* processes surface as MPK faults instead, and
  // the application must reopen — the same behaviour as losing a mapping in
  // the paper's design.
  void FixNode(NodeRef* node) override;

  // ---- mmap / execve (Table 5's file operations) ----
  // Returns the file's data pages in block order (holes are 0). Used by the
  // FSLibs mmap/execve paths, which hand the list to the kernel.
  Result<std::vector<uint64_t>> FilePages(NodeRef node, uint64_t* size_out);
  // Maps the file's pages for direct application access; returns the pages.
  Result<std::vector<uint64_t>> MmapNode(NodeRef node, bool writable);
  Status MunmapNode(NodeRef node, const std::vector<uint64_t>& pages);
  // Executes the file: kernel-validated; returns the image digest.
  Result<uint64_t> ExecveNode(NodeRef node);

  // ---- recovery support (used by Fsck) ----
  // Collects every page reachable from `inode_off` inside coffer `cid`
  // (inode, index, directory and data pages; stops at cross-coffer dentries,
  // reporting them via `cross_refs`). Appends page indices to `pages`.
  struct CrossRef {
    std::string path;       // expected child path
    uint32_t src_coffer;    // coffer holding the dentry
    uint32_t coffer_id;     // target coffer
    uint64_t inode_off;     // target root inode per the dentry
    uint64_t dentry_off;    // NVM offset of the referencing dentry
  };
  Status CollectReachable(uint32_t cid, uint64_t inode_off, const std::string& path,
                          std::vector<uint64_t>* pages, std::vector<CrossRef>* cross_refs,
                          uint64_t* cleared_dentries);

  // Runs offline recovery on one coffer (paper §3.5 / §5.3): traverse,
  // repair what is recognisable, report in-use pages to the kernel, which
  // reclaims the rest. Returns pages reclaimed. A successful run clears the
  // coffer's sick quarantine; a failed repair leaves it mounted read-only.
  Result<uint64_t> RecoverCoffer(uint32_t cid);

  // Volatile health of `cid` in this instance (fault-injection harness and
  // sick-coffer tests). Healthy for coffers never seen to misbehave.
  CofferHealth Health(uint32_t cid);

  // Janitor-side sweep of `cid`'s leased allocator free lists: any list whose
  // lease is expired (or implausibly far in the future) has its owner word
  // CAS-cleared so survivors can re-lease it immediately instead of each
  // paying the steal path. Counted by ReapedListCount(). Part of the
  // dead-process reap sequence (see DESIGN.md "process-failure model").
  Status ReclaimExpiredLists(uint32_t cid);

  // Accounting for the safety/recovery experiments.
  using RecoveryStats = ufs::RecoveryStats;
  Result<RecoveryStats> RecoverAll() override;
  // Recovers one coffer; appends discovered cross-coffer references to
  // `cross_out` when non-null (validated in RecoverAll's second phase).
  Result<RecoveryStats> RecoverOne(uint32_t cid, std::vector<CrossRef>* cross_out);

  // For tests: direct access to a node's inode.
  Inode* InodeForTest(NodeRef node) { return Ino(node.inode_off); }
  Result<kernfs::MapInfo> EnsureMappedForTest(uint32_t cid, bool writable) {
    return EnsureMapped(cid, writable);
  }

  // ---- scalability introspection (tests and bench_json) ----
  // Shard-lock acquisitions (shared or exclusive) since construction. The
  // steady-state read/write fast path must not move this counter.
  uint64_t ShardLockAcquisitionsForTest() const {
    return shard_lock_acquisitions_.load(std::memory_order_relaxed);
  }
  // Session-invalidation epoch (bumped by unmap / quarantine / eviction).
  uint64_t SessionEpochForTest() const { return epoch_.load(std::memory_order_relaxed); }
  // Entries currently in the relocation ledger across all shards.
  uint64_t RelocatedCountForTest() const {
    return relocated_count_.load(std::memory_order_relaxed);
  }
  // Appends absorbed by the staged fast path since construction (surfaces as
  // bench_json's staged_append_hits counter).
  uint64_t StagedAppendHits() const {
    return staged_append_hits_.load(std::memory_order_relaxed);
  }
  // Force a read-only quarantine (exercises session invalidation).
  void QuarantineReadOnlyForTest(uint32_t cid) { QuarantineReadOnly(cid); }

  // ---- channel completion points ----
  // Executes this thread's queued async ring (background-attributed) and
  // harvests completions: deferred unmaps, plus queued sick-coffer
  // recoveries when Options::async_recover is set. FSLibs calls this from
  // its durability points (close, fsync); cheap no-op when nothing is
  // queued.
  void HarvestCompletions();
  // The channel registry (tests and bench aggregation). Channels are
  // disabled — Current() == nullptr — under Options::sync_crossings.
  kernfs::ChannelSet& channels() { return channels_; }

 private:
  struct ResolveResult {
    NodeRef node;
    NodeRef parent;          // parent directory (invalid for "/")
    std::string leaf;        // last component name
    bool is_coffer_root;     // node is the root file of its coffer
  };

  // --- mapping / window management ---
  // `bypass_sick` lets fsck map a quarantined coffer; normal operations are
  // refused (EIO / EROFS) while the coffer is sick.
  Result<kernfs::MapInfo> EnsureMapped(uint32_t cid, bool writable, bool bypass_sick = false);
  Result<uint8_t> KeyFor(uint32_t cid, bool writable);
  void ForgetMapping(uint32_t cid);

  Inode* Ino(uint64_t off) { return kfs_->dev()->As<Inode>(off); }

  // --- corruption containment (fault model, DESIGN.md) ---
  // Validate-before-dereference for a pointer loaded from persistent
  // metadata: nonzero, (optionally) page-aligned, inside the device, and
  // accessible under the currently open MPK window — the page-key table is
  // the ownership oracle, so a pointer into another coffer or unowned space
  // is refused without touching it. Under raw_deref_for_test this degrades
  // to the legacy throwing MPK check (the simulated SIGSEGV).
  bool ValidMetaRange(uint64_t off, uint64_t len, bool page_aligned) const;
  bool ValidMetaPage(uint64_t off) const { return ValidMetaRange(off, nvm::kPageSize, true); }
  // Marks `cid` quarantined and returns kCorrupt (detection sites end with
  // `return Sick(cid);`).
  common::Err Sick(uint32_t cid);
  // Gate run at EnsureMapped: kIo while quarantined (one probe per backoff
  // window), kROFS for writes to a read-only coffer.
  Status CheckHealthy(uint32_t cid, bool writable);
  void ClearSick(uint32_t cid);
  void QuarantineReadOnly(uint32_t cid);

  // --- path walk ---
  Result<ResolveResult> Resolve(const std::string& path, bool follow_last_symlink);

  // --- directory internals (caller holds the coffer window + dir lock) ---
  Result<Dentry*> DirFind(uint32_t cid, Inode* dir, std::string_view name);
  Status DirInsert(uint32_t cid, const kernfs::MapInfo& info, Inode* dir, std::string_view name,
                   uint32_t child_coffer, uint64_t child_inode, uint32_t child_type);
  Status DirRemove(uint32_t cid, Inode* dir, std::string_view name);
  // Removal via an already-located dentry (avoids a second hash lookup).
  Status DirRemoveAt(Inode* dir, Dentry* d);
  // Atomically repoints an in-use dentry at a different child. The updated
  // fields share the dentry's first cacheline (all dentry slots are 64-byte
  // aligned), so a crash exposes the old or the new target, never a mix —
  // the commit point of an overwriting rename.
  Status DirReplaceTarget(Inode* dir, Dentry* d, uint32_t child_coffer, uint64_t child_inode,
                          uint32_t child_type);

  // --- rename support ---
  // Locates and validates an existing destination for an overwriting rename
  // (POSIX: dir over empty dir, non-dir over non-dir). kNoEnt = free
  // destination; `same_file` reports src and dst naming the same node.
  Result<Dentry*> PrepareRenameDst(uint32_t dcid, Inode* ddir, std::string_view to_leaf,
                                   uint32_t src_type, uint32_t src_coffer, uint64_t src_ino,
                                   bool* same_file);
  // Claims the coffer's rename-intent slot, persists `body` and commits it.
  Status BeginRenameIntent(const kernfs::MapInfo& info, const RenameIntent& body);
  // Clears the intent slot (the rename fully applied).
  void EndRenameIntent(const kernfs::MapInfo& info);
  // Frees an overwritten destination node once the rename has committed.
  Status FreeRenameVictim(uint32_t dcid, const kernfs::MapInfo& dinfo, uint64_t old_dst_ino,
                          uint32_t old_dst_coffer);
  // Rolls a committed rename intent forward or back before traversal
  // (called from RecoverOne under the coffer window).
  Status RepairPendingRename(uint32_t cid, const kernfs::MapInfo& info,
                             uint64_t* dentries_cleared);
  // Shared roll-forward/back body (zofs_repair.cc). Offline (`online ==
  // false`, from RecoverOne) records repath bookkeeping for RecoverAll's
  // cross-ref phase; online (from a lease steal) must instead fix the
  // kernel-stored coffer path immediately — there is no phase 2 to vouch for
  // the moved dentry, and a later remount would clear it as unvouched.
  Status RepairPendingRenameImpl(uint32_t cid, const kernfs::MapInfo& info,
                                 uint64_t* dentries_cleared, bool online);

  // --- online repair after a lease steal (zofs_repair.cc) ---
  // Read-only BFS over `cid`'s same-coffer dentries for the directory inode
  // at `dir_ino_off`; returns its absolute path (coffer path + interior
  // walk). Used to rebuild the kernel-side path of a renamed child coffer
  // during online rename roll-forward. kNoEnt when unreachable.
  Result<std::string> FindDirPath(uint32_t cid, const kernfs::MapInfo& info,
                                  uint64_t dir_ino_off);
  // Survivor-side intent repair, called after InodeLock reports a steal: the
  // dead owner may have died between intent commit and intent clear, so roll
  // its pending staged-append / rename intents forward (or clear claimed-but-
  // uncommitted slots) in place, without a remount. `held_inode_off` is the
  // inode the caller's stolen lock covers — repair must NOT re-lock it
  // (InodeLock reentry would release the caller's lock on destruction).
  Status OnlineRepairAfterSteal(uint32_t cid, const kernfs::MapInfo& info,
                                uint64_t held_inode_off);
  // Steal-site hook: no-op unless `lk` actually stole. Repair failure is
  // non-fatal (offline recovery still covers it at the next remount).
  void MaybeOnlineRepair(uint32_t cid, const kernfs::MapInfo& info, const InodeLock& lk,
                         uint64_t held_inode_off);

  // --- staged-append epoch batcher (DESIGN.md: epochs & durability points) --
  // One open epoch of appends to one file. The data is already NT-written
  // into freshly allocated pages and the block pointers / size are volatilely
  // installed (readers need no stage awareness); what remains deferred is the
  // metadata write-back, collected in `flush`. A StageState is mutated only
  // under its file's InodeLock; the stage table's spinlocks guard the map
  // structure alone, so the steady-state read/write path never touches a
  // shard lock (the scalability invariant).
  struct StageState {
    uint32_t cid = 0;
    uint64_t inode_off = 0;
    uint64_t start_blk = 0;       // first block staged this epoch
    uint64_t base_size = 0;       // durable size when the epoch opened
    uint64_t new_size = 0;        // volatile size after the staged appends
    std::vector<uint64_t> pages;  // staged data pages, block order
    nvm::FlushSet flush;          // deferred metadata write-backs
  };
  struct StageShard {
    common::SpinLock mu;
    std::unordered_map<uint64_t, std::shared_ptr<StageState>> stages GUARDED_BY(mu);
  };
  static constexpr uint32_t kStageShards = 16;
  StageShard& StageShardFor(uint64_t inode_off) {
    return stage_shards_[(inode_off / nvm::kPageSize) & (kStageShards - 1)];
  }
  // Map lookups hand out shared ownership: FreeNode (unlink/rmdir/rename
  // overwrite) drops a dying file's stage while holding only the *parent
  // directory's* InodeLock, so it can race an appender that holds the
  // *file's* InodeLock and is mid-write into the stage. The shared_ptr keeps
  // the StageState alive for that appender — its writes then land in an
  // orphaned epoch that is simply discarded, the same benign data-loss
  // outcome the synchronous write path has always had for unlink-vs-write.
  std::shared_ptr<StageState> FindStage(uint64_t inode_off);
  std::shared_ptr<StageState> CreateStage(uint32_t cid, uint64_t inode_off, uint64_t size);
  std::shared_ptr<StageState> TakeStage(uint64_t inode_off);
  // Discards a stage without flushing (FreeNode: the file is going away).
  void DropStage(uint64_t inode_off);
  // The staged fast path body (caller holds the coffer window + InodeLock).
  // Returns false when the append does not qualify (hole at the tail, file
  // too large, ...) and the caller must fall back to the synchronous WriteAt.
  Result<bool> StageAppendData(uint32_t cid, const kernfs::MapInfo& info, Inode* ino,
                               const void* buf, size_t n);
  // Resolves the block-pointer slot offset for `blk`, creating index pages
  // (eagerly written back; the pre-intent fence orders them) as needed.
  Result<uint64_t> EnsureSlotOff(CofferAllocator& alloc, Inode* ino, uint64_t blk);
  // Claims the coffer's staged-append intent slot, persists the body and
  // commits it (two fences; the first also commits the epoch's NT data).
  // kBusy when another live process holds the slot past the wait bound.
  Status PublishStageIntent(const kernfs::MapInfo& info, const StageState& st);
  // Durability point: intent publish, FlushSet drain + one fence, fenced
  // intent clear. On an intent-slot kBusy it degrades to an intent-less
  // drain + fence, which is still correct (just not relink-atomic).
  Status FlushStage(const kernfs::MapInfo& info, std::shared_ptr<StageState> st);
  // Gate + take + flush, for conflicting operations already holding the
  // coffer window and the file's InodeLock. No-op when no stage is open.
  Status FlushStageIfAny(const kernfs::MapInfo& info, uint64_t inode_off);
  // Drains every open stage (rename/chmod/chown entry, unmount). Opens its
  // own windows; must not be called inside an AccessWindow.
  Status FlushAllStages();
  // Rolls a committed staged-append intent forward (or clears an uncommitted
  // one) before recovery traversal; called from RecoverOne under the window.
  Status RepairPendingStagedAppend(uint32_t cid, const kernfs::MapInfo& info);
  Status DirIterate(uint32_t cid, const Inode* dir, std::vector<vfs::DirEntry>* out);
  // kCorrupt when the directory structure is damaged (bad pointer / cycle).
  Result<bool> DirIsEmpty(uint32_t cid, const Inode* dir);

  // --- block map ---
  Result<uint64_t> GetBlock(uint32_t cid, const Inode* ino, uint64_t blk);
  Result<uint64_t> GetOrAllocBlock(CofferAllocator& alloc, Inode* ino, uint64_t blk);
  // Atomically repoints `blk` at `page_off` (index pages must already exist).
  Status InstallBlockPointer(Inode* ino, uint64_t blk, uint64_t page_off);
  // Spills a file's inline data out to block 0 (called when it outgrows the
  // inline area or atomic/normal block writes need the block map).
  Status SpillInline(CofferAllocator& alloc, Inode* ino);
  // Frees all blocks with index >= first_blk; returns count freed.
  Status FreeBlocksFrom(CofferAllocator& alloc, Inode* ino, uint64_t first_blk);

  // --- node lifecycle ---
  Result<uint64_t> AllocInode(CofferAllocator& alloc, uint32_t type, uint16_t mode, uint32_t uid,
                              uint32_t gid);
  // Frees an inode page plus everything it owns (same-coffer only).
  Status FreeNode(uint32_t cid, CofferAllocator& alloc, uint64_t inode_off);

  CofferAllocator& AllocatorFor(uint32_t cid, const kernfs::MapInfo& info);

  // Effective permission grouping: two files share a coffer iff these match
  // (execution bits ignored, paper §2.3).
  static uint32_t EffPerm(uint16_t mode) { return mode & 0666; }
  bool SameGroup(uint16_t mode, uint32_t uid, uint32_t gid, const kernfs::CofferRoot* root) const;

  // Collects the pages of a same-coffer subtree into sorted runs.
  Result<std::vector<kernfs::PageRun>> CollectSubtreeRuns(uint32_t cid, uint64_t inode_off,
                                                          const std::string& path);

  // Splits `node` (at `path`, with dentry in `parent`) into its own coffer
  // with the given permission; updates the parent dentry.
  Result<uint32_t> SplitNodeIntoCoffer(const ResolveResult& r, const std::string& path,
                                       uint16_t mode, uint32_t uid, uint32_t gid);

  kernfs::KernFs* kfs_;
  kernfs::Process* proc_;
  Options opts_;
  // Per-thread kernel submission/completion channels (ZUFS-style; disabled —
  // Current() == nullptr — under Options::sync_crossings, which restores the
  // one-KernelEntry-per-call synchronous path).
  kernfs::ChannelSet channels_;

  // Kernel crossings routed through the calling thread's channel when
  // enabled (batching whatever is queued on its async ring into the same
  // KernelEntry), else the legacy synchronous entry points.
  Result<kernfs::MapInfo> KernelMap(uint32_t cid, bool writable);
  Status KernelUnmap(uint32_t cid);
  // Key-window fault-in (ChanOp::kRetag): restores the physical key of a
  // mapped coffer's protection class and retags its pages. One batched
  // crossing; no unmap, no session-epoch bump.
  Result<kernfs::MapInfo> KernelRetag(uint32_t cid);
  // Revalidates a cached class-path MapInfo against the process's published
  // class→key table (two relaxed loads, no crossing). Adopts a key another
  // thread faulted in; issues KernelRetag when the class is evicted. Returns
  // false only when that fault-in crossing failed — the caller falls back to
  // a full remap.
  bool RevalidateKey(uint32_t cid, kernfs::MapInfo* info);

  void RecordRelocation(const std::vector<kernfs::PageRun>& runs, uint32_t new_cid);

  // Quarantine state of one coffer. Volatile by design — a remount starts
  // clean and re-detects on first touch.
  struct SickState {
    uint32_t fails = 0;         // detections since the last successful fsck
    uint64_t next_probe_ns = 0; // earliest NowNs() at which one op may retry
    bool read_only = false;     // fsck gave up repairing: writes get EROFS
  };
  // Re-arms one entry's probe deadline after a detection. Pure arithmetic on
  // the entry (no locking, no map lookups), so every detection site —
  // whatever lock it holds — shares the same backoff schedule.
  static void ArmSickBackoff(SickState& s, uint64_t base_backoff_ns);

  // The volatile caches, sharded so unrelated coffers never contend
  // (coffer-keyed tables hash by coffer id, the relocation ledger by page
  // offset). Writers are rare (map/unmap/split/quarantine); steady state
  // bypasses the shards entirely via the per-thread session cache.
  struct Shard {
    common::SharedMutex mu;
    std::unordered_map<uint32_t, kernfs::MapInfo> mapped GUARDED_BY(mu);
    std::unordered_map<uint32_t, std::unique_ptr<CofferAllocator>> allocators GUARDED_BY(mu);
    // page offset -> new coffer
    std::unordered_map<uint64_t, uint32_t> relocated GUARDED_BY(mu);
    std::unordered_map<uint32_t, SickState> sick GUARDED_BY(mu);
    // Bumped (under mu, exclusive) whenever a coffer is erased from
    // `mapped`. EnsureMapped samples it before its unlocked CofferMap call
    // and declines to cache the result if an eviction raced the kernel call.
    // Atomic, outside the mu domain: the revalidation read is lock-free.
    std::atomic<uint64_t> evict_gen{0};
  };

  Shard& ShardFor(uint32_t cid) { return *shards_[cid & shard_mask_]; }
  Shard& ShardForPage(uint64_t off) {
    return *shards_[(off / nvm::kPageSize) & shard_mask_];
  }

  // Scoped shard locks. These replace bare std::shared_lock/std::unique_lock
  // so (a) every acquisition bumps the contention counter the scalability
  // bench reads, and (b) the acquisition carries ACQUIRE/ACQUIRE_SHARED
  // attributes, letting -Wthread-safety check the GUARDED_BY contracts on
  // the Shard tables above.
  class SCOPED_CAPABILITY ShardReadLock {
   public:
    ShardReadLock(ZoFs* fs, Shard& s) ACQUIRE_SHARED(s.mu) : mu_(&s.mu) {
      fs->shard_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      mu_->ReaderLock();
    }
    ~ShardReadLock() RELEASE() {
      if (mu_ != nullptr) {
        mu_->ReaderUnlock();
      }
    }
    // Early release for the drop-the-lock-then-call-the-kernel pattern.
    void Unlock() RELEASE() {
      mu_->ReaderUnlock();
      mu_ = nullptr;
    }
    ShardReadLock(const ShardReadLock&) = delete;
    ShardReadLock& operator=(const ShardReadLock&) = delete;

   private:
    common::SharedMutex* mu_;
  };

  class SCOPED_CAPABILITY ShardWriteLock {
   public:
    ShardWriteLock(ZoFs* fs, Shard& s) ACQUIRE(s.mu) : mu_(&s.mu) {
      fs->shard_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      mu_->Lock();
    }
    ~ShardWriteLock() RELEASE() {
      if (mu_ != nullptr) {
        mu_->Unlock();
      }
    }
    void Unlock() RELEASE() {
      mu_->Unlock();
      mu_ = nullptr;
    }
    ShardWriteLock(const ShardWriteLock&) = delete;
    ShardWriteLock& operator=(const ShardWriteLock&) = delete;

   private:
    common::SharedMutex* mu_;
  };

  // Invalidates every thread's session entries for this instance.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_release); }
  // kNoKeys fallback: unmaps some coffer other than `keep_cid` (and the
  // root) to free an MPK key. Returns false if no victim exists.
  bool EvictMappingVictim(uint32_t keep_cid);
  // Moves a coffer's allocator (if any) out of the shard map into the
  // retirement list. Caller holds the shard's exclusive lock. Allocators are
  // retired, never destroyed, until ~ZoFs: a racing thread that fetched the
  // pointer through its session cache may still be inside an allocation.
  void RetireAllocatorLocked(Shard& s, uint32_t cid) REQUIRES(s.mu) EXCLUDES(retire_mu_);
  // Drops relocation-ledger entries so a split burst cannot grow the ledger
  // without bound (satellite: relocated_cap). Caller holds no shard lock.
  void EnforceRelocatedCap();

  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t shard_mask_ = 0;

  // Never-reused id of this instance: session-cache entries are keyed by it
  // so a ZoFs constructed at a recycled address cannot match stale TLS.
  const uint64_t instance_id_;
  // Session-invalidation epoch. A session entry is valid only while its
  // stored epoch equals this value.
  std::atomic<uint64_t> epoch_{1};

  // Lock-free fast-path gates: CheckHealthy / FixNode skip their shard
  // lookups entirely while these are zero (the common case).
  std::atomic<uint32_t> sick_count_{0};
  std::atomic<uint64_t> relocated_count_{0};

  std::atomic<uint64_t> shard_lock_acquisitions_{0};

  // Staged-append epoch table. `active_stages_` is the lock-free gate that
  // lets conflicting operations (WriteAt, truncate, unlink, rename) skip the
  // table entirely while no epoch is open — the common case.
  std::array<StageShard, kStageShards> stage_shards_;
  std::atomic<uint64_t> active_stages_{0};
  std::atomic<uint64_t> staged_append_hits_{0};

  // Sick coffers awaiting a background RecoverCoffer (Options::async_recover;
  // drained by HarvestCompletions under a BackgroundCrossingScope). The
  // atomic count is the lock-free empty-check gate.
  common::SpinLock recover_mu_;
  std::vector<uint32_t> pending_recover_ GUARDED_BY(recover_mu_);
  std::atomic<uint64_t> pending_recover_count_{0};

  // Leaf lock: acquired under a shard's exclusive lock (RetireAllocatorLocked)
  // and never the other way around — zofs_lint's lock-order rule enforces
  // that no shard lock is taken while retire_mu_ is held.
  common::Mutex retire_mu_;
  std::vector<std::unique_ptr<CofferAllocator>> retired_allocators_ GUARDED_BY(retire_mu_);

  // Serializes OnlineRepairAfterSteal within this instance: two survivors
  // whose steals race (different files, same coffer) must not both operate on
  // the intent slots concurrently. Leaf lock — nothing is acquired under it
  // except the repaired file's InodeLock (an NVM lease, not a DRAM mutex).
  common::Mutex repair_mu_;

  // Set by Abandon(): the destructor skips FlushAllStages / DrainAll /
  // FsUmount (a corpse must not re-enter the kernel).
  bool abandoned_ = false;

  // Set during RecoverAll by RepairPendingRename: an interrupted rename may
  // have committed the dentry move before the kernel-side coffer path was
  // rewritten, so phase 2 repairs (CofferRename) instead of clearing a
  // cross-ref whose only defect is a stale path. `rename_repath_all_` covers
  // descendant coffers of a renamed directory (CofferFixupPaths not reached).
  std::unordered_set<uint32_t> rename_repath_;
  bool rename_repath_all_ = false;
};

// Lease lock over an inode (paper §5.2): CAS-claimed owner + expiry deadline,
// stealable after expiry so a dead process cannot wedge the lock. Expiry is
// compared against the injectable common::NowNs() clock, so tests can lapse a
// dead owner's lease deterministically. An expiry too far in the future to be
// a legal lease stamp is treated as corrupt and stolen outright. Acquisition
// is bounded (escalating pause/yield/sleep backoff up to a multiple of the
// lease): when a live owner outlasts the bound, the lock is NOT taken and
// ok() is false — callers fail with EBUSY instead of spinning forever.
class InodeLock {
 public:
  // `coffer_id` registers the lock in the per-coffer live-lock registry while
  // held (DRAM bookkeeping): a mapped coffer backing a live InodeLock must
  // never be unmapped (the ISSUE-10 invariant asserted by
  // ZoFs::EvictMappingVictim — key-window eviction retags instead).
  InodeLock(nvm::NvmDevice* dev, uint64_t inode_off, uint64_t lease_ns,
            uint32_t coffer_id);
  ~InodeLock();
  InodeLock(const InodeLock&) = delete;
  InodeLock& operator=(const InodeLock&) = delete;

  bool ok() const { return held_; }
  // True when acquisition went through the steal path (expired or implausible
  // lease taken from another owner). The winner inherits whatever half-done
  // state the dead owner left: callers route through ZoFs::MaybeOnlineRepair.
  bool stole() const { return stole_; }

 private:
  nvm::NvmDevice* dev_;
  uint64_t owner_off_;
  uint64_t expiry_off_;
  uint32_t coffer_id_;
  bool held_ = false;
  bool stole_ = false;
  bool registered_ = false;  // joined the live-lock registry (ctor completed)
};

// Live InodeLocks per coffer (hashed; DRAM-only). Used by EvictMappingVictim
// to honor the never-unmap-under-a-live-lock invariant.
uint32_t LiveInodeLockCount(uint32_t coffer_id);

}  // namespace zofs

#endif  // SRC_ZOFS_ZOFS_H_
