// Intent repair — shared between offline recovery (fsck, zofs_recovery.cc)
// and ONLINE lease-steal repair (paper §5, availability).
//
// The offline path has run since the intents were introduced: RecoverOne
// rolls a committed rename or staged-append intent forward (or clears an
// uncommitted claim) before traversal. What lived only there now also runs
// online: a survivor that steals an expired InodeLock may be inheriting a
// dead owner's half-done operation, and must repair it in place — no remount
// — before using the structure it just locked.
//
// Online differs from offline in exactly two ways:
//   * Locks. Offline runs single-instance after a remount; online runs amid
//     live tenants, so file/directory surgery takes the affected inodes'
//     lease locks first (skipping, never re-locking, the inode the caller's
//     stolen lock already covers — InodeLock reentry would release the
//     caller's lock on destruction).
//   * Kernel paths. Offline rename roll-forward leaves the kernel-side
//     coffer path stale and records vouching state (rename_repath_) for
//     RecoverAll's cross-ref phase to repair. Online there IS no phase 2 —
//     and worse, clearing the intent destroys the vouching a later remount
//     would need, so that remount would clear the moved dentry as an
//     unvouched path mismatch (data loss). Online roll-forward therefore
//     rewrites the kernel-stored path immediately (CofferRename /
//     CofferFixupPaths), and on any failure leaves the intent IN PLACE for
//     offline recovery to finish.

#include <algorithm>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "src/common/clock.h"
#include "src/mpk/mpk.h"
#include "src/zofs/zofs.h"

namespace zofs {

using kernfs::CofferRoot;
using kernfs::MapInfo;

namespace {

// No live process stamps a lease further out than this past now; a bigger
// expiry is corrupt metadata, not a live holder (same constant and rationale
// as the InodeLock steal path and the allocator's list reclaim).
constexpr uint64_t kMaxLeaseSlackNs = 60'000'000'000ull;

bool PlausiblePage(const nvm::NvmDevice* dev, uint64_t off) {
  return off != 0 && off % nvm::kPageSize == 0 && off + nvm::kPageSize <= dev->size();
}

// A lease stamp that no live holder can currently own: expired, or too far
// out to be legal.
bool LeaseDead(uint64_t expiry, uint64_t now) {
  return expiry < now || expiry > now + kMaxLeaseSlackNs;
}

std::string JoinPath(const std::string& dir, std::string_view leaf) {
  return (dir == "/" ? "/" : dir + "/") + std::string(leaf);
}

}  // namespace

// ---------------------------------------------------------------------------
// Rename intent (shared body; offline wrapper below keeps the old entry
// point and behaviour byte-identical).

Status ZoFs::RepairPendingRename(uint32_t cid, const MapInfo& info,
                                 uint64_t* dentries_cleared) {
  return RepairPendingRenameImpl(cid, info, dentries_cleared, /*online=*/false);
}

Status ZoFs::RepairPendingRenameImpl(uint32_t cid, const MapInfo& info,
                                     uint64_t* dentries_cleared, bool online) {
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t off = info.custom_off + offsetof(AllocPool, rename_intent);
  RenameIntent in;
  dev->LoadBytes(off, &in, sizeof(in));
  if (in.magic == 0) {
    return common::OkStatus();
  }
  auto clear_slot = [&]() {
    dev->Store64(off + offsetof(RenameIntent, magic), 0);
    dev->PersistRange(off + offsetof(RenameIntent, magic), 8);
  };
  // A claimed-but-uncommitted intent (or a corrupt one) carries no
  // obligation: the rename had not reached its commit point.
  bool valid = in.magic == kRenameIntentMagic && in.src_len > 0 && in.src_len <= kMaxName &&
               in.dst_len > 0 && in.dst_len <= kMaxName && PlausiblePage(dev, in.src_dir_ino) &&
               PlausiblePage(dev, in.dst_dir_ino);
  if (valid) {
    valid = Ino(in.src_dir_ino)->magic == kInodeMagic && Ino(in.dst_dir_ino)->magic == kInodeMagic;
  }
  if (!valid) {
    clear_slot();
    return common::OkStatus();
  }

  const std::string_view src_name(in.src_name, in.src_len);
  const std::string_view dst_name(in.dst_name, in.dst_len);
  auto dd = DirFind(cid, Ino(in.dst_dir_ino), dst_name);
  const bool committed = dd.ok() && (*dd)->coffer_id == in.child_coffer &&
                         (*dd)->inode_off == in.child_ino;
  if (committed) {
    // Roll forward: the destination points at the child, so finish what the
    // crashed rename started — drop a lingering source name and a displaced
    // destination coffer (a displaced same-coffer node is simply no longer
    // reachable; the offline page sweep reclaims it, online it merely waits
    // for that sweep).
    auto sd = DirFind(cid, Ino(in.src_dir_ino), src_name);
    if (sd.ok() && (*sd)->coffer_id == in.child_coffer && (*sd)->inode_off == in.child_ino) {
      RETURN_IF_ERROR(DirRemoveAt(Ino(in.src_dir_ino), *sd));
      (*dentries_cleared)++;
    }
    if (in.old_dst_coffer != 0) {
      // Ignore failure: the crashed rename may already have deleted it.
      (void)kfs_->CofferDelete(*proc_, in.old_dst_coffer);
      ForgetMapping(in.old_dst_coffer);
    }
    if (online) {
      // Rewrite the kernel-stored paths NOW (see file comment); leaving the
      // intent in place on failure keeps the vouching a later remount needs.
      if (in.child_coffer != 0 || in.child_type == kTypeDirectory) {
        auto dst_dir = FindDirPath(cid, info, in.dst_dir_ino);
        if (!dst_dir.ok()) {
          return Err::kBusy;  // intent stays; offline recovery finishes
        }
        const std::string new_path = JoinPath(*dst_dir, dst_name);
        if (in.child_coffer != 0) {
          const CofferRoot* chroot = kfs_->RootPageOf(in.child_coffer);
          if (new_path.compare(chroot->path) != 0 &&
              !kfs_->CofferRename(*proc_, in.child_coffer, new_path).ok()) {
            return Err::kBusy;
          }
        }
        if (in.child_type == kTypeDirectory) {
          auto src_dir = FindDirPath(cid, info, in.src_dir_ino);
          if (!src_dir.ok()) {
            return Err::kBusy;
          }
          const std::string old_path = JoinPath(*src_dir, src_name);
          if (old_path != new_path &&
              !kfs_->CofferFixupPaths(*proc_, old_path, new_path).ok()) {
            return Err::kBusy;
          }
        }
      }
    } else {
      if (in.child_coffer != 0) {
        // The kernel-side coffer path may not have been rewritten before the
        // crash; let phase 2 repair a stale path instead of clearing the ref.
        rename_repath_.insert(in.child_coffer);
      }
      if (in.child_type == kTypeDirectory) {
        // Descendant coffers' stored paths may still embed the old prefix.
        rename_repath_all_ = true;
      }
    }
  }
  // Not committed: the pre-rename namespace is intact; nothing to undo.
  clear_slot();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Staged-append intent (moved verbatim from zofs_recovery.cc; already
// lock-agnostic — the online caller takes the file's InodeLock around it).

Status ZoFs::RepairPendingStagedAppend(uint32_t cid, const MapInfo& info) {
  (void)cid;
  nvm::NvmDevice* dev = kfs_->dev();
  const uint64_t off = info.custom_off + offsetof(AllocPool, staged_intent);
  StagedAppendIntent in;
  dev->LoadBytes(off, &in, sizeof(in));
  if (in.magic == 0) {
    return common::OkStatus();
  }
  auto clear_slot = [&]() {
    dev->Store64(off + offsetof(StagedAppendIntent, magic), 0);
    dev->PersistRange(off + offsetof(StagedAppendIntent, magic), 8);
  };
  // A claimed-but-uncommitted intent (or a corrupt one) carries no
  // obligation: the epoch had not reached its durability point, so the data
  // was never promised. Everything it staged falls to the page sweep.
  bool valid = in.magic == kStagedIntentMagic && in.count > 0 && in.count <= kStagedMaxPages &&
               in.base_size <= in.new_size && PlausiblePage(dev, in.inode_off);
  if (valid) {
    const Inode* ino = Ino(in.inode_off);
    valid = ino->magic == kInodeMagic && ino->type == kTypeRegular;
  }
  for (uint64_t i = 0; valid && i < in.count; i++) {
    valid = PlausiblePage(dev, in.pages[i]);
  }
  if (!valid) {
    clear_slot();
    return common::OkStatus();
  }
  // Roll forward: re-install the staged block pointers and the synced size.
  // Idempotent — a crash between the metadata drain and the intent clear
  // replays stores that are already in place. The index pages the installs
  // walk were persisted before the intent committed (fence A precedes fence
  // B), so a dead-end here means the commit never really happened; treat it
  // like an uncommitted intent.
  Inode* ino = Ino(in.inode_off);
  for (uint64_t i = 0; i < in.count; i++) {
    if (!InstallBlockPointer(ino, in.start_blk + i, in.pages[i]).ok()) {
      clear_slot();
      return common::OkStatus();
    }
  }
  if (ino->size < in.new_size) {
    dev->Store64(in.inode_off + offsetof(Inode, size), in.new_size);
  }
  dev->PersistRange(in.inode_off + offsetof(Inode, size), 8);  // fences the installs too
  clear_slot();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Online steal repair

Result<std::string> ZoFs::FindDirPath(uint32_t cid, const MapInfo& info,
                                      uint64_t dir_ino_off) {
  nvm::NvmDevice* dev = kfs_->dev();
  const CofferRoot* croot = kfs_->RootPageOf(cid);
  const std::string base = croot->path[1] == '\0' ? "/" : croot->path;
  if (dir_ino_off == info.root_inode_off) {
    return base;
  }
  // Read-only BFS over same-coffer directory dentries (the CollectReachable
  // walk, minus the mutations); a visited set bounds corrupted cycles.
  std::deque<std::pair<uint64_t, std::string>> queue;
  std::unordered_set<uint64_t> visited;
  queue.emplace_back(info.root_inode_off, base);
  visited.insert(info.root_inode_off);
  while (!queue.empty()) {
    auto [cur, path] = queue.front();
    queue.pop_front();
    if (!PlausiblePage(dev, cur)) {
      continue;
    }
    const Inode* ino = Ino(cur);
    if (ino->magic != kInodeMagic || ino->type != kTypeDirectory || ino->l1_dir == 0 ||
        !PlausiblePage(dev, ino->l1_dir)) {
      continue;
    }
    std::string found;
    auto visit_dentry = [&](const Dentry& d) {
      if (!found.empty() || !d.in_use() || d.coffer_id != 0 ||
          d.cached_type() != kTypeDirectory || d.name_len == 0 || d.name_len > kMaxName) {
        return;
      }
      if (!visited.insert(d.inode_off).second) {
        return;
      }
      std::string child = JoinPath(path, std::string_view(d.name, d.name_len));
      if (d.inode_off == dir_ino_off) {
        found = std::move(child);
        return;
      }
      queue.emplace_back(d.inode_off, std::move(child));
    };
    const uint64_t* l1 = dev->As<uint64_t>(ino->l1_dir);
    for (uint64_t s = 0; s < kL1Slots && found.empty(); s++) {
      if (l1[s] == 0 || !PlausiblePage(dev, l1[s])) {
        continue;
      }
      const L2Page* l2 = dev->As<L2Page>(l1[s]);
      for (const Dentry& d : l2->embedded) {
        visit_dentry(d);
      }
      for (uint64_t b = 0; b < kL2Buckets && found.empty(); b++) {
        uint64_t run_off = l2->buckets[b];
        std::unordered_set<uint64_t> seen;  // corrupted chains may loop
        while (run_off != 0 && PlausiblePage(dev, run_off) && seen.insert(run_off).second) {
          const DentryRun* run = dev->As<DentryRun>(run_off);
          for (const Dentry& d : run->dentries) {
            visit_dentry(d);
          }
          run_off = run->next;
        }
      }
    }
    if (!found.empty()) {
      return found;
    }
  }
  return Err::kNoEnt;
}

void ZoFs::MaybeOnlineRepair(uint32_t cid, const MapInfo& info, const InodeLock& lk,
                             uint64_t held_inode_off) {
  if (!lk.stole()) {
    return;
  }
  // Failure is non-fatal: the intent stays put and offline recovery at the
  // next remount finishes the job.
  (void)OnlineRepairAfterSteal(cid, info, held_inode_off);
}

Status ZoFs::OnlineRepairAfterSteal(uint32_t cid, const MapInfo& info,
                                    uint64_t held_inode_off) {
  common::MutexLock lk(&repair_mu_);
  nvm::NvmDevice* dev = kfs_->dev();
  // Callers arrive with varying windows open; repair needs the coffer
  // writable regardless, so it opens its own.
  mpk::AccessWindow w(info.key, true);
  if (!mpk::ProbeAccess(info.custom_off, sizeof(AllocPool), true)) {
    return Err::kCorrupt;
  }
  const AllocPool* pool = dev->As<AllocPool>(info.custom_off);
  if (pool->magic != kPoolMagic) {
    return Err::kCorrupt;
  }
  const uint64_t now = common::NowNs();
  Status first = common::OkStatus();

  // Staged-append intent: act only when the publisher's lease is dead — a
  // live lease means a live process is mid-relink and will clear it itself.
  {
    const uint64_t off = info.custom_off + offsetof(AllocPool, staged_intent);
    StagedAppendIntent in;
    dev->LoadBytes(off, &in, sizeof(in));
    if (in.magic != 0 && LeaseDead(in.lease_expiry_ns, now)) {
      // Committed intents get file surgery, which happens under that file's
      // lock — unless the caller's stolen lock already covers it (InodeLock
      // reentry from this thread would release the caller's lock when the
      // inner guard dies).
      const bool need_lock = in.magic == kStagedIntentMagic &&
                             PlausiblePage(dev, in.inode_off) &&
                             in.inode_off != held_inode_off;
      bool acted = false;
      if (need_lock) {
        InodeLock fl(dev, in.inode_off, opts_.lease_ns, cid);
        if (fl.ok()) {
          acted = RepairPendingStagedAppend(cid, info).ok();
        } else if (first.ok()) {
          first = Err::kBusy;  // contended; the next steal or fsck retries
        }
      } else {
        acted = RepairPendingStagedAppend(cid, info).ok();
      }
      if (acted) {
        internal::NoteOnlineRepair();
      }
    }
  }

  // Rename intent: same lease gate; directory surgery takes both parents'
  // locks in the same deterministic order Rename itself uses.
  {
    const uint64_t off = info.custom_off + offsetof(AllocPool, rename_intent);
    RenameIntent in;
    dev->LoadBytes(off, &in, sizeof(in));
    if (in.magic != 0 && LeaseDead(in.lease_expiry_ns, now)) {
      const bool dirs_plausible = in.magic == kRenameIntentMagic &&
                                  PlausiblePage(dev, in.src_dir_ino) &&
                                  PlausiblePage(dev, in.dst_dir_ino);
      const uint64_t lo = std::min(in.src_dir_ino, in.dst_dir_ino);
      const uint64_t hi = std::max(in.src_dir_ino, in.dst_dir_ino);
      std::unique_ptr<InodeLock> l1, l2;
      bool locks_ok = true;
      if (dirs_plausible) {
        if (lo != held_inode_off) {
          l1 = std::make_unique<InodeLock>(dev, lo, opts_.lease_ns, cid);
          locks_ok = l1->ok();
        }
        if (locks_ok && hi != lo && hi != held_inode_off) {
          l2 = std::make_unique<InodeLock>(dev, hi, opts_.lease_ns, cid);
          locks_ok = l2->ok();
        }
      }
      if (locks_ok) {
        uint64_t cleared = 0;
        Status s = RepairPendingRenameImpl(cid, info, &cleared, /*online=*/true);
        if (s.ok()) {
          internal::NoteOnlineRepair();
        } else if (first.ok()) {
          first = s;
        }
      } else if (first.ok()) {
        first = Err::kBusy;
      }
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// Leased free-list reclaim (janitor side of the dead-process reaper)

Status ZoFs::ReclaimExpiredLists(uint32_t cid) {
  ASSIGN_OR_RETURN(info, EnsureMapped(cid, true, /*bypass_sick=*/true));
  nvm::NvmDevice* dev = kfs_->dev();
  mpk::AccessWindow w(info.key, true);
  if (!mpk::ProbeAccess(info.custom_off, sizeof(AllocPool), true)) {
    return Err::kCorrupt;
  }
  const AllocPool* pool = dev->As<AllocPool>(info.custom_off);
  if (pool->magic != kPoolMagic) {
    return Err::kCorrupt;
  }
  const uint64_t now = common::NowNs();
  uint64_t reclaimed = 0;
  for (uint32_t i = 0; i < kPoolLists; i++) {
    const LeasedFreeList* l = &pool->lists[i];
    const uint64_t owner = l->owner_tid;
    if (owner == 0 || !LeaseDead(l->lease_expiry_ns, now)) {
      continue;
    }
    // Clear only the owner word: the parked pages stay linked on the list,
    // so the next claimant (CAS 0 -> tid) inherits them instead of each
    // survivor paying the steal path. Racing a concurrent claim is fine —
    // the CAS simply fails and that claimant keeps the list.
    const uint64_t loff =
        info.custom_off + offsetof(AllocPool, lists) + i * sizeof(LeasedFreeList);
    if (dev->AtomicCas64(loff + offsetof(LeasedFreeList, owner_tid), owner, 0)) {
      dev->PersistRange(loff, sizeof(LeasedFreeList));
      reclaimed++;
    }
  }
  if (reclaimed > 0) {
    internal::NoteReapedLists(reclaimed);
  }
  return common::OkStatus();
}

}  // namespace zofs
