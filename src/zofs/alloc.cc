#include "src/zofs/alloc.h"

#include <atomic>
#include <cstring>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/killpoint.h"
#include "src/mpk/mpk.h"

namespace zofs {

namespace {
// No live thread stamps a lease further out than this past now; a bigger
// expiry is corrupt metadata and the list is treated as reclaimable.
constexpr uint64_t kMaxLeaseSlackNs = 60'000'000'000ull;
// Per-thread cache of which pool list this thread holds, keyed by the pool's
// NVM offset (unique per coffer across all processes). The paper stores this
// in "a normal per-thread variable" (§5.2 footnote).
thread_local std::unordered_map<uint64_t, uint32_t> t_my_list;

const uint8_t kZeroPage[nvm::kPageSize] = {};

thread_local uint64_t t_tid_override = 0;
}  // namespace

uint64_t CurrentTid() {
  if (t_tid_override != 0) {
    return t_tid_override;
  }
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t tid = next.fetch_add(1);
  return tid;
}

ScopedTidOverride::ScopedTidOverride(uint64_t tid) : prev_(t_tid_override) {
  if (tid != 0) {
    t_tid_override = tid;
  }
}

ScopedTidOverride::~ScopedTidOverride() { t_tid_override = prev_; }

CofferAllocator::CofferAllocator(kernfs::KernFs* kfs, kernfs::Process* proc, uint32_t coffer_id,
                                 uint64_t pool_off, uint64_t lease_ns, uint64_t enlarge_batch,
                                 bool validate, kernfs::ChannelSet* channels)
    : kfs_(kfs),
      proc_(proc),
      coffer_id_(coffer_id),
      pool_off_(pool_off),
      lease_ns_(lease_ns),
      enlarge_batch_(enlarge_batch),
      validate_(validate),
      channels_(channels),
      low_water_(enlarge_batch / 8 > 0 ? enlarge_batch / 8 : 1) {}

bool CofferAllocator::ValidFreePage(uint64_t off) const {
  if (!validate_) {
    // Pre-hardening discipline: the raw dereference's own MPK check, which
    // throws (the simulated SIGSEGV) instead of failing gracefully.
    mpk::CheckAccess(off, 8, false);
    return true;
  }
  return off % nvm::kPageSize == 0 && kfs_->dev()->Contains(off, nvm::kPageSize) &&
         mpk::ProbeAccess(off, 8, false);
}

void CofferAllocator::InitPool(nvm::NvmDevice* dev, uint64_t pool_off) {
  AllocPool zero{};
  zero.magic = kPoolMagic;
  dev->StoreBytes(pool_off, &zero, sizeof(zero));
  dev->PersistRange(pool_off, sizeof(zero));
}

AllocPool* CofferAllocator::pool() { return kfs_->dev()->As<AllocPool>(pool_off_); }

Result<uint32_t> CofferAllocator::AcquireList(nvm::FlushSet* flush) {
  nvm::NvmDevice* dev = kfs_->dev();
  AllocPool* p = pool();
  if (validate_ && p->magic != kPoolMagic) {
    return Err::kCorrupt;  // the pool page itself is damaged
  }
  const uint64_t tid = CurrentTid();
  const uint64_t now = common::NowNs();

  // Fast path: this thread already holds a list with a valid lease.
  auto it = t_my_list.find(pool_off_);
  if (it != t_my_list.end()) {
    LeasedFreeList* l = &p->lists[it->second];
    if (l->owner_tid == tid && l->lease_expiry_ns > now) {
      // Renew the lease once less than half of it remains. The renewal must
      // reach NVM (this used to be a bare Store64 — after a crash, recovery
      // observed the stale shorter expiry while this thread believed the
      // renewal stuck, so another process could steal a live list). The
      // write-back coalesces into the epoch's flush set when one is open.
      if (l->lease_expiry_ns < now + lease_ns_ / 2) {
        uint64_t loff =
            pool_off_ + offsetof(AllocPool, lists) + it->second * sizeof(LeasedFreeList);
        dev->Store64(loff + offsetof(LeasedFreeList, lease_expiry_ns), now + lease_ns_);
        if (flush != nullptr) {
          flush->Note(dev, loff, sizeof(LeasedFreeList));
        } else {
          dev->PersistRange(loff, sizeof(LeasedFreeList));
        }
      }
      return it->second;
    }
    t_my_list.erase(it);
  }

  // Slow path: claim an unowned or lease-expired list via CAS on the owner.
  for (uint32_t i = 0; i < kPoolLists; i++) {
    LeasedFreeList* l = &p->lists[i];
    uint64_t owner = l->owner_tid;
    if (owner == tid) {
      // Our list from an earlier epoch whose lease lapsed: re-lease it.
      uint64_t loff = pool_off_ + offsetof(AllocPool, lists) + i * sizeof(LeasedFreeList);
      dev->Store64(loff + offsetof(LeasedFreeList, lease_expiry_ns), now + lease_ns_);
      dev->PersistRange(loff, sizeof(LeasedFreeList));
      t_my_list[pool_off_] = i;
      return i;
    }
    if (owner != 0 && l->lease_expiry_ns > now &&
        l->lease_expiry_ns <= now + kMaxLeaseSlackNs) {
      continue;  // live lease; an implausibly-far expiry is corrupt: steal
    }
    uint64_t loff = pool_off_ + offsetof(AllocPool, lists) + i * sizeof(LeasedFreeList);
    if (dev->AtomicCas64(loff + offsetof(LeasedFreeList, owner_tid), owner, tid)) {
      dev->Store64(loff + offsetof(LeasedFreeList, lease_expiry_ns), now + lease_ns_);
      dev->PersistRange(loff, sizeof(LeasedFreeList));
      t_my_list[pool_off_] = i;
      // Tenant death right after claiming the list: the owner word stays set
      // and the list (plus any pages parked on it) is stranded until the
      // lease lapses — reclaimed by ReclaimExpiredLists or a later steal.
      common::KillPoint(common::kKillHoldingLeasedList);
      return i;
    }
  }
  return Err::kBusy;  // all lists held with live leases
}

Result<uint64_t> CofferAllocator::AllocPage(bool zero) {
  return AllocPageImpl(zero, /*flush=*/nullptr);
}

Result<uint64_t> CofferAllocator::AllocPageStaged(nvm::FlushSet* flush) {
  return AllocPageImpl(/*zero=*/false, flush);
}

Result<std::vector<kernfs::PageRun>> CofferAllocator::RefillRuns() {
  kernfs::Channel* ch = channels_ != nullptr ? channels_->Current() : nullptr;
  if (ch != nullptr) {
    // Harvest the prefetched grant if the async ring has (or will have,
    // after a piggybacked background drain) one for this coffer.
    kernfs::ChanCompletion done;
    if (ch->TakeEnlarge(coffer_id_, &done) && done.status.ok()) {
      return std::move(done.runs);
    }
    return ch->Enlarge(coffer_id_, enlarge_batch_);
  }
  return kfs_->CofferEnlarge(*proc_, coffer_id_, enlarge_batch_);
}

Result<uint64_t> CofferAllocator::AllocPageImpl(bool zero, nvm::FlushSet* flush) {
  nvm::NvmDevice* dev = kfs_->dev();
  ASSIGN_OR_RETURN(idx, AcquireList(flush));
  AllocPool* p = pool();
  LeasedFreeList* l = &p->lists[idx];
  const uint64_t loff = pool_off_ + offsetof(AllocPool, lists) + idx * sizeof(LeasedFreeList);

  if (l->head == 0) {
    // Refill in batch from the kernel (coffer_enlarge, Table 5). Free-list
    // state is advisory — recovery rebuilds it from reachability — so the
    // whole batch is linked with plain stores and the list line written back
    // once at the end, not twice per page (the dominant clwb cost of the
    // pre-epoch-batcher append path).
    auto runs = RefillRuns();
    if (!runs.ok()) {
      return runs.error();
    }
    uint64_t head = l->head;
    uint64_t count = l->count;
    for (const kernfs::PageRun& r : *runs) {
      for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
        const uint64_t page_off = pg * nvm::kPageSize;
        dev->Store64(page_off, head);  // link through the page's first word
        head = page_off;
        count++;
      }
    }
    dev->Store64(loff + offsetof(LeasedFreeList, head), head);
    dev->Store64(loff + offsetof(LeasedFreeList, count), count);
    dev->Clwb(loff, sizeof(LeasedFreeList));  // zofs-lint: allow(unfenced-clwb) — advisory free-list state
  }

  uint64_t page_off = l->head;
  if (!ValidFreePage(page_off)) {
    // Scribbled head: abandon the list's contents (fsck reclaims stranded
    // pages from reachability) rather than link through garbage.
    dev->Store64(loff + offsetof(LeasedFreeList, head), 0);
    dev->Store64(loff + offsetof(LeasedFreeList, count), 0);
    dev->Clwb(loff, sizeof(LeasedFreeList));  // zofs-lint: allow(unfenced-clwb) — advisory free-list state
    return Err::kCorrupt;
  }
  uint64_t next = dev->Load64(page_off);
  // Free-list state is advisory: recovery rebuilds it from reachability, so
  // updates are written back without ordering fences (soft-updates spirit).
  dev->Store64(loff + offsetof(LeasedFreeList, head), next);
  dev->Store64(loff + offsetof(LeasedFreeList, count), l->count - 1);
  if (flush != nullptr) {
    // Staged path: defer the write-back into the epoch's flush set, where
    // repeated allocations dedup to one line.
    flush->Note(dev, loff, sizeof(LeasedFreeList));
  } else {
    dev->Clwb(loff, sizeof(LeasedFreeList));  // zofs-lint: allow(unfenced-clwb) — advisory free-list state
  }
  if (zero) {
    // The caller's operation-final fence covers the zeroing NT stores.
    dev->NtStoreBytes(page_off, kZeroPage, nvm::kPageSize);
  }
  // Low-water prefetch: queue the next refill on the async ring now (no
  // crossing), so by the time the list runs dry the grant is one background
  // drain away instead of a foreground CofferEnlarge. Deduped per coffer.
  if (channels_ != nullptr && l->count <= low_water_) {
    if (kernfs::Channel* ch = channels_->Current()) {
      ch->SubmitEnlarge(coffer_id_, enlarge_batch_);
    }
  }
  return page_off;
}

void CofferAllocator::PushLocked(LeasedFreeList* l, uint64_t list_off, uint64_t page_off) {
  // Advisory state (see AllocPage): written back, never fenced.
  nvm::NvmDevice* dev = kfs_->dev();
  dev->Store64(page_off, l->head);  // link through the page's first word
  dev->Clwb(page_off, 8);  // zofs-lint: allow(unfenced-clwb) — advisory free-list state
  dev->Store64(list_off + offsetof(LeasedFreeList, head), page_off);
  dev->Store64(list_off + offsetof(LeasedFreeList, count), l->count + 1);
  dev->Clwb(list_off, sizeof(LeasedFreeList));  // zofs-lint: allow(unfenced-clwb) — advisory free-list state
}

Status CofferAllocator::FreePage(uint64_t page_off) {
  ASSIGN_OR_RETURN(idx, AcquireList(/*flush=*/nullptr));
  AllocPool* p = pool();
  LeasedFreeList* l = &p->lists[idx];
  const uint64_t loff = pool_off_ + offsetof(AllocPool, lists) + idx * sizeof(LeasedFreeList);
  PushLocked(l, loff, page_off);
  return common::OkStatus();
}

Status CofferAllocator::Donate(const std::vector<kernfs::PageRun>& runs) {
  ASSIGN_OR_RETURN(idx, AcquireList(/*flush=*/nullptr));
  AllocPool* p = pool();
  LeasedFreeList* l = &p->lists[idx];
  const uint64_t loff = pool_off_ + offsetof(AllocPool, lists) + idx * sizeof(LeasedFreeList);
  for (const kernfs::PageRun& r : runs) {
    for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
      PushLocked(l, loff, pg * nvm::kPageSize);
    }
  }
  return common::OkStatus();
}

uint64_t CofferAllocator::FreeListPagesForTest() const {
  const AllocPool* p = kfs_->dev()->As<AllocPool>(pool_off_);
  uint64_t n = 0;
  for (const LeasedFreeList& l : p->lists) {
    n += l.count;
  }
  return n;
}

}  // namespace zofs
