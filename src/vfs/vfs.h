// The common file-system interface.
//
// Every file system in this repository — ZoFS (through FSLibs) and the four
// baselines (Ext4-DAX-, PMFS-, NOVA-, Strata-like) — implements this
// interface, and every benchmark and application drives it. It is a
// deliberately POSIX-shaped surface: paths are absolute ("/a/b"), file
// descriptors are small integers, flags mirror open(2).

#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace vfs {

using common::Err;
using common::Result;
using common::Status;

using Fd = int32_t;

// Caller identity, the subject of permission checks.
struct Cred {
  uint32_t uid = 0;
  uint32_t gid = 0;

  bool IsRoot() const { return uid == 0; }
  bool operator==(const Cred&) const = default;
};

// open(2)-style flags.
inline constexpr uint32_t kRead = 1u << 0;
inline constexpr uint32_t kWrite = 1u << 1;
inline constexpr uint32_t kCreate = 1u << 2;
inline constexpr uint32_t kTrunc = 1u << 3;
inline constexpr uint32_t kAppend = 1u << 4;
inline constexpr uint32_t kExcl = 1u << 5;
// O_SYNC: every write on the descriptor is durable before it returns. File
// systems that defer durability (the ZoFS epoch batcher) must drain their
// staged state on each write when this flag is set.
inline constexpr uint32_t kSync = 1u << 6;
inline constexpr uint32_t kRdWr = kRead | kWrite;

enum class FileType : uint8_t {
  kRegular = 0,
  kDirectory = 1,
  kSymlink = 2,
};

// Permission bits, lower 9 bits of mode (rwxrwxrwx).
struct StatBuf {
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
  uint16_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  uint32_t nlink = 1;
  uint64_t mtime_ns = 0;
  uint64_t ctime_ns = 0;
};

struct DirEntry {
  std::string name;
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
};

// Classic UNIX permission check: owner / group / other class, rwx bits.
bool PermitsAccess(const Cred& cred, uint32_t owner_uid, uint32_t owner_gid, uint16_t mode,
                   bool want_read, bool want_write);

// The interface. Implementations must be safe for concurrent calls from
// multiple threads (the harness runs multi-threaded workloads against them).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual const char* Name() const = 0;

  // ---- Descriptor-based operations.
  virtual Result<Fd> Open(const Cred& cred, const std::string& path, uint32_t flags,
                          uint16_t mode) = 0;
  virtual Status Close(Fd fd) = 0;
  virtual Result<size_t> Read(Fd fd, void* buf, size_t n) = 0;
  virtual Result<size_t> Write(Fd fd, const void* buf, size_t n) = 0;
  virtual Result<size_t> Pread(Fd fd, void* buf, size_t n, uint64_t off) = 0;
  virtual Result<size_t> Pwrite(Fd fd, const void* buf, size_t n, uint64_t off) = 0;
  virtual Result<uint64_t> Lseek(Fd fd, int64_t off, int whence) = 0;  // whence: 0 SET 1 CUR 2 END
  virtual Status Fsync(Fd fd) = 0;
  virtual Result<StatBuf> Fstat(Fd fd) = 0;
  virtual Status Ftruncate(Fd fd, uint64_t len) = 0;
  virtual Result<Fd> Dup(Fd fd) = 0;

  // ---- Path-based operations.
  virtual Status Mkdir(const Cred& cred, const std::string& path, uint16_t mode) = 0;
  virtual Status Rmdir(const Cred& cred, const std::string& path) = 0;
  virtual Status Unlink(const Cred& cred, const std::string& path) = 0;
  virtual Result<StatBuf> Stat(const Cred& cred, const std::string& path) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(const Cred& cred, const std::string& path) = 0;
  virtual Status Rename(const Cred& cred, const std::string& from, const std::string& to) = 0;
  virtual Status Chmod(const Cred& cred, const std::string& path, uint16_t mode) = 0;
  virtual Status Chown(const Cred& cred, const std::string& path, uint32_t uid, uint32_t gid) = 0;
  virtual Status Symlink(const Cred& cred, const std::string& target,
                         const std::string& linkpath) = 0;
  virtual Result<std::string> ReadLink(const Cred& cred, const std::string& path) = 0;
};

// Splits "/a/b/c" into {"a","b","c"}. Rejects empty and non-absolute paths by
// returning an empty vector with ok=false.
Result<std::vector<std::string>> SplitPath(const std::string& path);

// Returns {parent, leaf} of an absolute path; parent of "/x" is "/".
Result<std::pair<std::string, std::string>> SplitParent(const std::string& path);

// Lexically normalises a path: collapses "//", resolves "." and "..".
std::string NormalizePath(const std::string& path);

}  // namespace vfs

#endif  // SRC_VFS_VFS_H_
