#include "src/vfs/vfs.h"

namespace vfs {

bool PermitsAccess(const Cred& cred, uint32_t owner_uid, uint32_t owner_gid, uint16_t mode,
                   bool want_read, bool want_write) {
  if (cred.IsRoot()) {
    return true;
  }
  uint16_t bits;
  if (cred.uid == owner_uid) {
    bits = (mode >> 6) & 7;
  } else if (cred.gid == owner_gid) {
    bits = (mode >> 3) & 7;
  } else {
    bits = mode & 7;
  }
  if (want_read && !(bits & 4)) {
    return false;
  }
  if (want_write && !(bits & 2)) {
    return false;
  }
  return true;
}

Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Err::kInval;
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      parts.emplace_back(path.substr(i, j - i));
    }
    i = j + 1;
  }
  return parts;
}

Result<std::pair<std::string, std::string>> SplitParent(const std::string& path) {
  ASSIGN_OR_RETURN(parts, SplitPath(path));
  if (parts.empty()) {
    return Err::kInval;  // cannot take the parent of "/"
  }
  std::string leaf = parts.back();
  parts.pop_back();
  std::string parent = "/";
  for (size_t i = 0; i < parts.size(); i++) {
    parent += parts[i];
    if (i + 1 < parts.size()) {
      parent += "/";
    }
  }
  return std::make_pair(parent, leaf);
}

std::string NormalizePath(const std::string& path) {
  if (path.empty()) {
    return "/";
  }
  std::vector<std::string> stack;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    std::string part = path.substr(i, j - i);
    if (part == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
    } else if (!part.empty() && part != ".") {
      stack.push_back(std::move(part));
    }
    i = j + 1;
  }
  std::string out = "/";
  for (size_t k = 0; k < stack.size(); k++) {
    out += stack[k];
    if (k + 1 < stack.size()) {
      out += "/";
    }
  }
  return out;
}

}  // namespace vfs
