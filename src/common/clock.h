// Monotonic time and simulated-cost charging.
//
// The reproduction models hardware and privilege-boundary costs (kernel
// crossings, NVM media latency) as calibrated busy-waits so that measured
// throughput and latency keep the paper's relative shape on commodity DRAM.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace common {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Busy-wait for `ns` nanoseconds. Spinning (rather than sleeping) matches the
// granularity of the costs being modelled (hundreds of nanoseconds) — OS
// sleep primitives cannot model sub-microsecond stalls.
inline void SpinNs(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const uint64_t start = NowNs();
  while (NowNs() - start < ns) {
    // Relax the pipeline; keeps the spin polite on SMT siblings.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

// RAII stopwatch for nanosecond timing.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNs()) {}
  uint64_t ElapsedNs() const { return NowNs() - start_; }
  void Restart() { start_ = NowNs(); }

 private:
  uint64_t start_;
};

}  // namespace common

#endif  // SRC_COMMON_CLOCK_H_
