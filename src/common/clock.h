// Monotonic time and simulated-cost charging.
//
// The reproduction models hardware and privilege-boundary costs (kernel
// crossings, NVM media latency) as calibrated busy-waits so that measured
// throughput and latency keep the paper's relative shape on commodity DRAM.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace common {

// The hardware clock, never overridden. Cost-model busy-waits must use this
// so they terminate even while a test pins the logical clock.
inline uint64_t RealNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {
// 0 = no override (read the hardware clock). Tests pin logical time to make
// lease expiry — inode locks, free-list leases, rename intents — play out
// deterministically.
inline std::atomic<uint64_t> g_now_override_ns{0};
}  // namespace detail

// Logical monotonic time. All lease words stored on NVM are stamped and
// compared against this clock, so a test that overrides it can express "the
// owner died and its lease lapsed" without sleeping.
inline uint64_t NowNs() {
  const uint64_t o = detail::g_now_override_ns.load(std::memory_order_relaxed);
  return o != 0 ? o : RealNowNs();
}

// Pins NowNs() to `ns` (0 restores the hardware clock).
inline void SetNowNsForTest(uint64_t ns) {
  detail::g_now_override_ns.store(ns, std::memory_order_relaxed);
}

// RAII pin of the logical clock: freezes NowNs() at `ns` so that every
// time-dependent persistent word — free-list leases, inode-lock leases,
// timestamps — plays out identically across reruns regardless of host load.
// Restores whatever override was active before (usually none) on exit.
class ScopedClockPin {
 public:
  explicit ScopedClockPin(uint64_t ns)
      : prev_(detail::g_now_override_ns.exchange(ns, std::memory_order_relaxed)) {}
  ~ScopedClockPin() { detail::g_now_override_ns.store(prev_, std::memory_order_relaxed); }
  ScopedClockPin(const ScopedClockPin&) = delete;
  ScopedClockPin& operator=(const ScopedClockPin&) = delete;

 private:
  uint64_t prev_;
};

// Advances a pinned clock; no-op when the hardware clock is active.
inline void AdvanceNowNsForTest(uint64_t delta_ns) {
  uint64_t cur = detail::g_now_override_ns.load(std::memory_order_relaxed);
  while (cur != 0 && !detail::g_now_override_ns.compare_exchange_weak(
                         cur, cur + delta_ns, std::memory_order_relaxed)) {
  }
}

// Busy-wait for `ns` nanoseconds. Spinning (rather than sleeping) matches the
// granularity of the costs being modelled (hundreds of nanoseconds) — OS
// sleep primitives cannot model sub-microsecond stalls.
inline void SpinNs(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const uint64_t start = RealNowNs();
  while (RealNowNs() - start < ns) {
    // Relax the pipeline; keeps the spin polite on SMT siblings.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

// RAII stopwatch for nanosecond timing.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNs()) {}
  uint64_t ElapsedNs() const { return NowNs() - start_; }
  void Restart() { start_ = NowNs(); }

 private:
  uint64_t start_;
};

}  // namespace common

#endif  // SRC_COMMON_CLOCK_H_
