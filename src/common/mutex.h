// Capability-annotated lock wrappers.
//
// Every lock in the tree goes through these types so Clang's
// -Wthread-safety analysis (src/common/thread_annotations.h) can prove lock
// discipline at compile time: GUARDED_BY members are only touched under
// their mutex, *Locked helpers declare REQUIRES contracts, and scoped guards
// tie acquisition to scope. The zofs_lint `raw-mutex` rule rejects bare
// std::mutex / std::shared_mutex declarations anywhere else, so a lock
// cannot silently opt out of the analysis.
//
// The wrappers are zero-cost: each is exactly its std:: counterpart plus
// attributes. Guards deliberately mirror the std guards they replace
// (construction acquires, destruction releases, explicit Unlock() for the
// drop-lock-then-call-kernel patterns in src/zofs).

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

// zofs-lint: allow(raw-mutex) — this header IS the annotated wrapper layer.

#include <atomic>
#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace common {

// Plain exclusive mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For protocols the analysis cannot follow (e.g. a lock handed across a
  // call boundary by value): assert at runtime intent that the capability is
  // held from here on.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

// Reader/writer mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// Reentrant mutex (Strata's shared core calls back into itself). Clang's
// analysis does not model reentrancy, so this capability is declared but its
// operations are not ACQUIRE/RELEASE-annotated — the guard below still
// satisfies the raw-mutex lint and documents the protocol.
class CAPABILITY("recursive_mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void Unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  std::recursive_mutex mu_;
};

// One-word test-and-set spinlock. Used where the critical section is a few
// instructions (the FD-table slot protocol in src/fslib): spinning beats a
// mutex's futex path and the word packs into the protected structure.
class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() ACQUIRE() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
  void Unlock() RELEASE() { locked_.store(false, std::memory_order_release); }

  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::atomic<bool> locked_{false};
};

// ---- scoped guards ------------------------------------------------------

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    }
  }
  // Early release for drop-the-lock-then-block patterns.
  void Unlock() RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_->ReaderLock(); }
  ~ReaderMutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->ReaderUnlock();
    }
  }
  void Unlock() RELEASE() {
    mu_->ReaderUnlock();
    mu_ = nullptr;
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterMutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    }
  }
  void Unlock() RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    mu_->Lock();
  }
  ~RecursiveMutexLock() NO_THREAD_SAFETY_ANALYSIS { mu_->Unlock(); }
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex* mu_;
};

class SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock* l) ACQUIRE(l) : l_(l) { l_->Lock(); }
  ~SpinLockGuard() RELEASE() { l_->Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock* l_;
};

}  // namespace common

#endif  // SRC_COMMON_MUTEX_H_
