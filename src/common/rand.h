// Deterministic PRNG and samplers used by workload generators.
//
// Benchmarks must be reproducible run-to-run, so everything takes an explicit
// seed; nothing reads global entropy.

#ifndef SRC_COMMON_RAND_H_
#define SRC_COMMON_RAND_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace common {

// xoshiro256** by Blackman & Vigna — fast, high-quality, 64-bit output.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi].
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Fill `n` bytes with pseudorandom data.
  void Fill(void* dst, size_t n) {
    auto* p = static_cast<uint8_t*>(dst);
    while (n >= 8) {
      uint64_t v = Next();
      __builtin_memcpy(p, &v, 8);
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t v = Next();
      __builtin_memcpy(p, &v, n);
    }
  }

  std::string AlnumString(size_t len) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string s(len, '\0');
    for (auto& c : s) {
      c = kChars[Below(sizeof(kChars) - 1)];
    }
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipfian sampler over [0, n) with parameter theta, using the standard
// Gray et al. rejection-free construction (the YCSB approach). Used for
// "read hot" style skewed access patterns.
class Zipf {
 public:
  Zipf(uint64_t n, double theta, uint64_t seed);
  uint64_t Next();

 private:
  static double ZetaStatic(uint64_t n, double theta);
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace common

#endif  // SRC_COMMON_RAND_H_
