// Latency / throughput accounting for the benchmark harness.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace common {

// Records individual operation latencies (ns) and reports summary statistics.
// Not thread-safe: use one recorder per worker thread and Merge() afterwards.
class LatencyRecorder {
 public:
  LatencyRecorder() { samples_.reserve(1 << 16); }

  void Record(uint64_t ns) {
    samples_.push_back(ns);
    total_ns_ += ns;
  }

  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    total_ns_ += other.total_ns_;
  }

  size_t count() const { return samples_.size(); }
  uint64_t total_ns() const { return total_ns_; }

  double MeanNs() const {
    return samples_.empty() ? 0.0
                            : static_cast<double>(total_ns_) / static_cast<double>(samples_.size());
  }

  // p in [0, 100].
  uint64_t PercentileNs(double p) {
    if (samples_.empty()) {
      return 0;
    }
    std::sort(samples_.begin(), samples_.end());
    size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

 private:
  std::vector<uint64_t> samples_;
  uint64_t total_ns_ = 0;
};

// Simple fixed-width text table, used by bench binaries to print rows in the
// shape of the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Formats `v` with engineering suffixes: 12.3K, 4.56M ops/sec etc.
std::string HumanRate(double v);

// Formats nanoseconds as a compact human string (ns/us/ms/s).
std::string HumanNs(double ns);

// Formats bytes as a compact human string (B/KB/MB/GB).
std::string HumanBytes(double bytes);

}  // namespace common

#endif  // SRC_COMMON_STATS_H_
