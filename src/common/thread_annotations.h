// Clang thread-safety-analysis capability annotations.
//
// These macros expand to Clang's `-Wthread-safety` attributes when compiling
// with a Clang that supports them and to nothing otherwise (GCC builds see
// plain code). The analysis proves, at compile time, that every access to a
// GUARDED_BY member happens while its capability (mutex) is held and that
// REQUIRES/ACQUIRE/RELEASE contracts line up across call boundaries — the
// static half of the race story, complementing the TSan gate which only
// checks interleavings that actually execute.
//
// Usage is confined to the annotated wrapper types in src/common/mutex.h
// (capabilities) plus GUARDED_BY/REQUIRES annotations at their users; the
// zofs_lint rule `raw-mutex` keeps bare std::mutex out of the tree so no
// lock can silently escape the analysis.
//
// Enable the checked build with:
//   cmake -B build-ts -DCMAKE_CXX_COMPILER=clang++ -DZOFS_THREAD_SAFETY=ON
// (tools/check_all.sh does this automatically when clang++ is installed).

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ZOFS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ZOFS_THREAD_ANNOTATION
#define ZOFS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that is a capability (a lock). The string names the capability kind
// in diagnostics ("mutex", "shared_mutex", "spinlock").
#define CAPABILITY(x) ZOFS_THREAD_ANNOTATION(capability(x))

// A scoped (RAII) object that acquires a capability at construction and
// releases it at destruction.
#define SCOPED_CAPABILITY ZOFS_THREAD_ANNOTATION(scoped_lockable)

// Data member that may only be accessed while `x` is held.
#define GUARDED_BY(x) ZOFS_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose *pointee* may only be accessed while `x` is held.
#define PT_GUARDED_BY(x) ZOFS_THREAD_ANNOTATION(pt_guarded_by(x))

// Function contract: the caller must hold the capability (exclusively /
// shared) on entry and it is still held on exit.
#define REQUIRES(...) ZOFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) ZOFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define ACQUIRE(...) ZOFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) ZOFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) ZOFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) ZOFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) ZOFS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) ZOFS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) ZOFS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Function may not be called while the capability is held (deadlock guard).
#define EXCLUDES(...) ZOFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-acquisition ordering: this capability must be acquired after /
// before the named ones.
#define ACQUIRED_AFTER(...) ZOFS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) ZOFS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// Runtime assertion that the calling thread holds the capability; teaches
// the analysis that it is held from here on (used by spinlock protocols
// whose acquisition the analysis cannot see).
#define ASSERT_CAPABILITY(x) ZOFS_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) ZOFS_THREAD_ANNOTATION(assert_shared_capability(x))

// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) ZOFS_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the analysis cannot see the protocol.
#define NO_THREAD_SAFETY_ANALYSIS ZOFS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
