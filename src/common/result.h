// Lightweight error handling for the ZoFS reproduction.
//
// File-system code returns `Result<T>` (a value or an errno-style code) and
// `Status` (`Result<Unit>`). Codes deliberately mirror POSIX errno values so
// the VFS surface reads like a system-call interface.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace common {

// Errno-style error codes used across every file system in this repository.
enum class Err : int32_t {
  kOk = 0,
  kPerm = 1,           // EPERM
  kNoEnt = 2,          // ENOENT
  kIo = 5,             // EIO
  kBadF = 9,           // EBADF
  kAcces = 13,         // EACCES
  kFault = 14,         // EFAULT (MPK violation / invalid NVM reference)
  kBusy = 16,          // EBUSY
  kExist = 17,         // EEXIST
  kXDev = 18,          // EXDEV
  kNotDir = 20,        // ENOTDIR
  kIsDir = 21,         // EISDIR
  kInval = 22,         // EINVAL
  kMFile = 24,         // EMFILE
  kNoSpc = 28,         // ENOSPC
  kROFS = 30,          // EROFS
  kNameTooLong = 36,   // ENAMETOOLONG
  kNotEmpty = 39,      // ENOTEMPTY
  kLoop = 40,          // ELOOP
  kOverflow = 75,      // EOVERFLOW
  kCorrupt = 117,      // EUCLEAN: detected on-NVM corruption
  kNoKeys = 118,       // out of MPK regions (coffer_map budget exhausted)
};

// Human-readable name for an error code ("ENOENT", ...).
const char* ErrName(Err e);

struct Unit {};

// A value-or-error sum type. Accessing the value of an error result aborts,
// as does reading the error of an ok result; callers must branch on ok().
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Err e) : v_(e) { assert(e != Err::kOk); }  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Err error() const {
    assert(!ok());
    return std::get<Err>(v_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Err> v_;
};

using Status = Result<Unit>;

inline Status OkStatus() { return Status(Unit{}); }

// Propagate-on-error helpers, used pervasively in file-system paths.
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    auto _status = (expr);                      \
    if (!_status.ok()) return _status.error();  \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, expr)         \
  auto lhs##_res = (expr);                  \
  if (!lhs##_res.ok()) {                    \
    return lhs##_res.error();               \
  }                                         \
  auto& lhs = *lhs##_res

}  // namespace common

#endif  // SRC_COMMON_RESULT_H_
