// String hashing used by directory hash tables and the path-coffer map.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace common {

// 64-bit FNV-1a. Deterministic across runs (persistent structures depend on
// stable hashes).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint32_t Fnv1a32(std::string_view s) {
  uint64_t h = Fnv1a64(s);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace common

#endif  // SRC_COMMON_HASH_H_
