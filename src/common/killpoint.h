// Deterministic process-death injection (the procmon tenant-failure
// campaign; see DESIGN.md "process-failure model").
//
// A kill point is a named site where a simulated tenant may be abandoned
// mid-operation: holding an InodeLock, having just published a staged-append
// intent, mid-RenameIntent, mid-channel-batch, or holding a leased allocator
// free list. The soak driver installs a handler; when the handler decides a
// point fires, KillPoint throws ProcessKilledError, which unwinds the
// operation WITHOUT running persistent-state cleanup:
//
//   * Volatile RAII (spinlock guards, AccessWindow PKRU restore) unwinds
//     normally — a real dead process's DRAM locks evaporate and the kernel
//     restores PKRU on context switch, so that cleanup is "free" in reality.
//   * Persistent-state RAII must NOT run: a dead process cannot store a
//     release word to NVM. Destructors that write NVM (InodeLock) consult
//     CurrentThreadKilled() and skip their release store while it is set.
//
// ProcessKilledError is deliberately unrelated to mpk::ViolationError so the
// FSLibs Guarded() wrapper does not swallow it: the kill propagates to the
// harness, which resets the thread flag, unbinds the thread and hands the
// corpse to KernFs::KillProcess.
//
// With no handler installed (every production path) a kill point is one
// relaxed atomic load.

#ifndef SRC_COMMON_KILLPOINT_H_
#define SRC_COMMON_KILLPOINT_H_

#include <atomic>

namespace common {

// Thrown out of a kill point. Not derived from std::exception on purpose:
// nothing between the kill point and the harness may handle it generically.
struct ProcessKilledError {
  const char* point;
};

// The injectable death sites (passed to the handler by name).
inline constexpr const char* kKillHoldingInodeLock = "holding-inode-lock";
inline constexpr const char* kKillStagedIntentPublished = "staged-intent-published";
inline constexpr const char* kKillMidRenameIntent = "mid-rename-intent";
inline constexpr const char* kKillMidChannelBatch = "mid-channel-batch";
inline constexpr const char* kKillHoldingLeasedList = "holding-leased-list";

// Returns true to kill the calling thread at `point`.
using KillPointFn = bool (*)(void* ctx, const char* point);

namespace killpoint_internal {
inline std::atomic<KillPointFn> g_fn{nullptr};
inline std::atomic<void*> g_ctx{nullptr};
inline thread_local bool t_killed = false;
}  // namespace killpoint_internal

// Installs (or, with nullptr, removes) the process-wide kill handler.
inline void InstallKillPoint(KillPointFn fn, void* ctx) {
  killpoint_internal::g_ctx.store(ctx, std::memory_order_release);
  killpoint_internal::g_fn.store(fn, std::memory_order_release);
}

// True between a kill firing on this thread and the harness acknowledging it.
// NVM-writing destructors skip their release stores while set (a dead
// process cannot store to NVM on its way out).
inline bool CurrentThreadKilled() { return killpoint_internal::t_killed; }
inline void SetCurrentThreadKilled(bool v) { killpoint_internal::t_killed = v; }

// A named death site. No handler installed: one relaxed load, no branch
// taken. Handler installed and electing to fire: marks the thread killed and
// throws.
inline void KillPoint(const char* point) {
  KillPointFn fn = killpoint_internal::g_fn.load(std::memory_order_acquire);
  if (fn == nullptr) {
    return;
  }
  if (fn(killpoint_internal::g_ctx.load(std::memory_order_acquire), point)) {
    killpoint_internal::t_killed = true;
    throw ProcessKilledError{point};
  }
}

}  // namespace common

#endif  // SRC_COMMON_KILLPOINT_H_
