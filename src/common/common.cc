#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/rand.h"
#include "src/common/result.h"
#include "src/common/stats.h"

namespace common {

const char* ErrName(Err e) {
  switch (e) {
    case Err::kOk:
      return "OK";
    case Err::kPerm:
      return "EPERM";
    case Err::kNoEnt:
      return "ENOENT";
    case Err::kIo:
      return "EIO";
    case Err::kBadF:
      return "EBADF";
    case Err::kAcces:
      return "EACCES";
    case Err::kFault:
      return "EFAULT";
    case Err::kBusy:
      return "EBUSY";
    case Err::kExist:
      return "EEXIST";
    case Err::kXDev:
      return "EXDEV";
    case Err::kNotDir:
      return "ENOTDIR";
    case Err::kIsDir:
      return "EISDIR";
    case Err::kInval:
      return "EINVAL";
    case Err::kMFile:
      return "EMFILE";
    case Err::kNoSpc:
      return "ENOSPC";
    case Err::kROFS:
      return "EROFS";
    case Err::kNameTooLong:
      return "ENAMETOOLONG";
    case Err::kNotEmpty:
      return "ENOTEMPTY";
    case Err::kLoop:
      return "ELOOP";
    case Err::kOverflow:
      return "EOVERFLOW";
    case Err::kCorrupt:
      return "EUCLEAN";
    case Err::kNoKeys:
      return "ENOKEYS";
  }
  return "E???";
}

Zipf::Zipf(uint64_t n, double theta, uint64_t seed) : n_(n), theta_(theta), rng_(seed) {
  zetan_ = ZetaStatic(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  double zeta2 = ZetaStatic(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double Zipf::ZetaStatic(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t Zipf::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

TextTable::TextTable(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void TextTable::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); i++) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < rows_.size(); r++) {
    for (size_t i = 0; i < rows_[r].size(); i++) {
      out << (i == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align numbers.
      const std::string& cell = rows_[r][i];
      if (i == 0) {
        out << cell << std::string(widths[i] - cell.size(), ' ');
      } else {
        out << std::string(widths[i] - cell.size(), ' ') << cell;
      }
    }
    out << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t i = 0; i < widths.size(); i++) {
        total += widths[i] + (i == 0 ? 0 : 2);
      }
      out << std::string(total, '-') << "\n";
    }
  }
  return out.str();
}

namespace {
std::string FormatWithSuffix(double v, const char* const* suffixes, size_t n_suffixes,
                             double step) {
  size_t idx = 0;
  while (v >= step && idx + 1 < n_suffixes) {
    v /= step;
    idx++;
  }
  char buf[64];
  if (v >= 100) {
    snprintf(buf, sizeof(buf), "%.0f%s", v, suffixes[idx]);
  } else if (v >= 10) {
    snprintf(buf, sizeof(buf), "%.1f%s", v, suffixes[idx]);
  } else {
    snprintf(buf, sizeof(buf), "%.2f%s", v, suffixes[idx]);
  }
  return buf;
}
}  // namespace

std::string HumanRate(double v) {
  static const char* kSuffixes[] = {"", "K", "M", "G"};
  return FormatWithSuffix(v, kSuffixes, 4, 1000.0);
}

std::string HumanNs(double ns) {
  static const char* kSuffixes[] = {"ns", "us", "ms", "s"};
  return FormatWithSuffix(ns, kSuffixes, 4, 1000.0);
}

std::string HumanBytes(double bytes) {
  static const char* kSuffixes[] = {"B", "KB", "MB", "GB", "TB"};
  return FormatWithSuffix(bytes, kSuffixes, 5, 1024.0);
}

}  // namespace common
