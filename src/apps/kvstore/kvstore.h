// A LevelDB-like LSM key-value store built on the vfs::FileSystem API.
//
// Stands in for LevelDB in the paper's §6.3 evaluation (Table 7): it
// exercises the same file-system operation mix — sequential WAL appends
// (optionally fsynced), bulk sorted-table writes at memtable flush, random
// reads through table files, and file deletion at compaction.
//
// Structure: write-ahead log + in-memory memtable + sorted string tables
// (single level, merged when too many accumulate), each with a sparse
// in-memory index.

#ifndef SRC_APPS_KVSTORE_KVSTORE_H_
#define SRC_APPS_KVSTORE_KVSTORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/vfs/vfs.h"

namespace kvstore {

using common::Err;
using common::Result;
using common::Status;

struct DbOptions {
  bool sync_writes = false;          // fsync the WAL on every write
  size_t memtable_bytes = 4 << 20;   // flush threshold
  size_t compact_trigger = 8;        // merge tables when this many exist
  size_t index_stride = 16;          // sparse index: every Nth entry
};

class Db {
 public:
  // Opens (or creates) a database rooted at directory `dir`.
  static Result<std::unique_ptr<Db>> Open(vfs::FileSystem* fs, const std::string& dir,
                                          DbOptions opts = {});
  ~Db();

  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Result<std::string> Get(const std::string& key);

  // In-order iteration over the live key space (merges memtable + tables).
  class Iterator {
   public:
    bool Valid() const { return idx_ < entries_.size(); }
    void Next() { idx_++; }
    const std::string& key() const { return entries_[idx_].first; }
    const std::string& value() const { return entries_[idx_].second; }

   private:
    friend class Db;
    std::vector<std::pair<std::string, std::string>> entries_;
    size_t idx_ = 0;
  };
  Result<Iterator> NewIterator();

  // Testing/diagnostics.
  size_t table_count() const { return tables_.size(); }
  Status FlushMemtableForTest() {
    common::MutexLock lk(&mu_);
    return FlushMemtable();
  }

 private:
  struct TableEntry {
    std::string key;
    uint64_t off;  // offset of the record in the table file
  };
  struct Table {
    std::string path;
    vfs::Fd fd = -1;
    uint64_t seq = 0;                // newer tables shadow older ones
    std::vector<TableEntry> index;   // sparse, sorted
    uint64_t file_size = 0;
  };

  Db(vfs::FileSystem* fs, std::string dir, DbOptions opts) : fs_(fs), dir_(std::move(dir)), opts_(opts) {}

  Status Replay() REQUIRES(mu_);  // rebuild the memtable from the WAL at open
  Status WriteWal(const std::string& key, const std::string& value, bool tombstone)
      REQUIRES(mu_);
  Status FlushMemtable() REQUIRES(mu_);
  Status Compact() REQUIRES(mu_);
  Result<std::unique_ptr<Table>> WriteTable(
      const std::vector<std::pair<std::string, std::optional<std::string>>>& entries,
      uint64_t seq);
  Result<std::unique_ptr<Table>> LoadTable(const std::string& path, uint64_t seq);
  // Searches one table; outer optional = found, inner = tombstone or value.
  Result<std::optional<std::optional<std::string>>> SearchTable(Table& t,
                                                                const std::string& key)
      REQUIRES(mu_);

  vfs::FileSystem* fs_;
  std::string dir_;
  DbOptions opts_;
  vfs::Cred cred_{0, 0};

  common::Mutex mu_;
  // wal_fd_ and tables_ are set up during single-threaded Open and read by
  // the destructor and table_count() without the lock, so they stay outside
  // the mu_ domain; the mutable memtable/WAL cursors are guarded.
  vfs::Fd wal_fd_ = -1;
  uint64_t wal_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  // nullopt value = tombstone.
  std::map<std::string, std::optional<std::string>> memtable_ GUARDED_BY(mu_);
  size_t memtable_bytes_ GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Table>> tables_;  // sorted by seq ascending
};

}  // namespace kvstore

#endif  // SRC_APPS_KVSTORE_KVSTORE_H_
