#include "src/apps/kvstore/kvstore.h"

#include <algorithm>
#include <cstring>

namespace kvstore {

namespace {

// WAL / table record header.
struct RecordHeader {
  uint32_t klen;
  uint32_t vlen;  // 0xffffffff = tombstone
};
constexpr uint32_t kTombstone = 0xffffffffu;

void AppendU32(std::string* out, uint32_t v) { out->append(reinterpret_cast<char*>(&v), 4); }

}  // namespace

Result<std::unique_ptr<Db>> Db::Open(vfs::FileSystem* fs, const std::string& dir, DbOptions opts) {
  auto db = std::unique_ptr<Db>(new Db(fs, dir, opts));
  // No concurrent access exists before Open returns; the lock is taken anyway
  // so Replay's REQUIRES(mu_) contract holds analysis-wide.
  common::MutexLock lk(&db->mu_);
  auto st = fs->Mkdir(db->cred_, dir, 0755);
  if (!st.ok() && st.error() != Err::kExist) {
    return st.error();
  }
  // Load existing tables (named sst_<seq>).
  ASSIGN_OR_RETURN(entries, fs->ReadDir(db->cred_, dir));
  std::vector<std::pair<uint64_t, std::string>> ssts;
  for (const vfs::DirEntry& e : entries) {
    if (e.name.rfind("sst_", 0) == 0) {
      ssts.emplace_back(std::strtoull(e.name.c_str() + 4, nullptr, 10), dir + "/" + e.name);
    }
  }
  std::sort(ssts.begin(), ssts.end());
  for (const auto& [seq, path] : ssts) {
    ASSIGN_OR_RETURN(t, db->LoadTable(path, seq));
    db->tables_.push_back(std::move(t));
    db->next_seq_ = std::max(db->next_seq_, seq + 1);
  }
  // Open the WAL and replay whatever it holds.
  ASSIGN_OR_RETURN(wal, fs->Open(db->cred_, dir + "/wal.log",
                                 vfs::kCreate | vfs::kRdWr | vfs::kAppend, 0644));
  db->wal_fd_ = wal;
  RETURN_IF_ERROR(db->Replay());
  return db;
}

Db::~Db() {
  if (wal_fd_ >= 0) {
    fs_->Close(wal_fd_);
  }
  for (auto& t : tables_) {
    if (t->fd >= 0) {
      fs_->Close(t->fd);
    }
  }
}

Status Db::Replay() {
  ASSIGN_OR_RETURN(st, fs_->Fstat(wal_fd_));
  uint64_t off = 0;
  RecordHeader h;
  std::string key, value;
  while (off + sizeof(h) <= st.size) {
    ASSIGN_OR_RETURN(n, fs_->Pread(wal_fd_, &h, sizeof(h), off));
    if (n < sizeof(h)) {
      break;
    }
    off += sizeof(h);
    key.resize(h.klen);
    if (h.klen > 0) {
      ASSIGN_OR_RETURN(kn, fs_->Pread(wal_fd_, key.data(), h.klen, off));
      if (kn < h.klen) {
        break;  // torn record at the tail: ignore (standard WAL recovery)
      }
      off += h.klen;
    }
    if (h.vlen == kTombstone) {
      memtable_[key] = std::nullopt;
    } else {
      value.resize(h.vlen);
      if (h.vlen > 0) {
        ASSIGN_OR_RETURN(vn, fs_->Pread(wal_fd_, value.data(), h.vlen, off));
        if (vn < h.vlen) {
          break;
        }
        off += h.vlen;
      }
      memtable_[key] = value;
      memtable_bytes_ += key.size() + value.size() + 16;
    }
  }
  wal_bytes_ = off;
  return common::OkStatus();
}

Status Db::WriteWal(const std::string& key, const std::string& value, bool tombstone) {
  std::string rec;
  rec.reserve(sizeof(RecordHeader) + key.size() + value.size());
  AppendU32(&rec, static_cast<uint32_t>(key.size()));
  AppendU32(&rec, tombstone ? kTombstone : static_cast<uint32_t>(value.size()));
  rec += key;
  if (!tombstone) {
    rec += value;
  }
  ASSIGN_OR_RETURN(n, fs_->Write(wal_fd_, rec.data(), rec.size()));
  (void)n;
  wal_bytes_ += rec.size();
  if (opts_.sync_writes) {
    RETURN_IF_ERROR(fs_->Fsync(wal_fd_));
  }
  return common::OkStatus();
}

Status Db::Put(const std::string& key, const std::string& value) {
  common::MutexLock lk(&mu_);
  RETURN_IF_ERROR(WriteWal(key, value, /*tombstone=*/false));
  memtable_[key] = value;
  memtable_bytes_ += key.size() + value.size() + 16;
  if (memtable_bytes_ >= opts_.memtable_bytes) {
    RETURN_IF_ERROR(FlushMemtable());
  }
  return common::OkStatus();
}

Status Db::Delete(const std::string& key) {
  common::MutexLock lk(&mu_);
  RETURN_IF_ERROR(WriteWal(key, "", /*tombstone=*/true));
  memtable_[key] = std::nullopt;
  memtable_bytes_ += key.size() + 16;
  if (memtable_bytes_ >= opts_.memtable_bytes) {
    RETURN_IF_ERROR(FlushMemtable());
  }
  return common::OkStatus();
}

Result<std::unique_ptr<Db::Table>> Db::WriteTable(
    const std::vector<std::pair<std::string, std::optional<std::string>>>& entries,
    uint64_t seq) {
  auto t = std::make_unique<Table>();
  t->seq = seq;
  t->path = dir_ + "/sst_" + std::to_string(seq);
  ASSIGN_OR_RETURN(fd, fs_->Open(cred_, t->path, vfs::kCreate | vfs::kRdWr | vfs::kTrunc, 0644));
  std::string block;
  block.reserve(1 << 20);
  uint64_t off = 0;
  size_t i = 0;
  for (const auto& [key, value] : entries) {
    if (i++ % opts_.index_stride == 0) {
      t->index.push_back(TableEntry{key, off + block.size()});
    }
    AppendU32(&block, static_cast<uint32_t>(key.size()));
    AppendU32(&block, value.has_value() ? static_cast<uint32_t>(value->size()) : kTombstone);
    block += key;
    if (value.has_value()) {
      block += *value;
    }
    if (block.size() >= (1 << 20)) {
      ASSIGN_OR_RETURN(n, fs_->Pwrite(fd, block.data(), block.size(), off));
      (void)n;
      off += block.size();
      block.clear();
    }
  }
  if (!block.empty()) {
    ASSIGN_OR_RETURN(n, fs_->Pwrite(fd, block.data(), block.size(), off));
    (void)n;
    off += block.size();
  }
  RETURN_IF_ERROR(fs_->Fsync(fd));
  t->fd = fd;
  t->file_size = off;
  return t;
}

Result<std::unique_ptr<Db::Table>> Db::LoadTable(const std::string& path, uint64_t seq) {
  auto t = std::make_unique<Table>();
  t->seq = seq;
  t->path = path;
  ASSIGN_OR_RETURN(fd, fs_->Open(cred_, path, vfs::kRead, 0));
  t->fd = fd;
  ASSIGN_OR_RETURN(st, fs_->Fstat(fd));
  t->file_size = st.size;
  // Rebuild the sparse index with a sequential scan.
  uint64_t off = 0;
  size_t i = 0;
  RecordHeader h;
  std::string key;
  while (off + sizeof(h) <= t->file_size) {
    ASSIGN_OR_RETURN(n, fs_->Pread(fd, &h, sizeof(h), off));
    if (n < sizeof(h)) {
      break;
    }
    key.resize(h.klen);
    ASSIGN_OR_RETURN(kn, fs_->Pread(fd, key.data(), h.klen, off + sizeof(h)));
    (void)kn;
    if (i++ % opts_.index_stride == 0) {
      t->index.push_back(TableEntry{key, off});
    }
    off += sizeof(h) + h.klen + (h.vlen == kTombstone ? 0 : h.vlen);
  }
  return t;
}

Status Db::FlushMemtable() {
  if (memtable_.empty()) {
    return common::OkStatus();
  }
  std::vector<std::pair<std::string, std::optional<std::string>>> entries(memtable_.begin(),
                                                                          memtable_.end());
  ASSIGN_OR_RETURN(t, WriteTable(entries, next_seq_++));
  tables_.push_back(std::move(t));
  memtable_.clear();
  memtable_bytes_ = 0;
  // Truncate the WAL: its contents are now durable in the table. (The WAL fd
  // is append-mode, so the write offset resets with the size.)
  RETURN_IF_ERROR(fs_->Ftruncate(wal_fd_, 0));
  wal_bytes_ = 0;
  if (tables_.size() >= opts_.compact_trigger) {
    RETURN_IF_ERROR(Compact());
  }
  return common::OkStatus();
}

Status Db::Compact() {
  // Merge every table (newest wins) into one, dropping tombstones.
  std::map<std::string, std::optional<std::string>> merged;
  RecordHeader h;
  std::string key, value;
  for (const auto& t : tables_) {  // oldest -> newest: later overwrite earlier
    uint64_t off = 0;
    while (off + sizeof(h) <= t->file_size) {
      ASSIGN_OR_RETURN(n, fs_->Pread(t->fd, &h, sizeof(h), off));
      if (n < sizeof(h)) {
        break;
      }
      key.resize(h.klen);
      ASSIGN_OR_RETURN(kn, fs_->Pread(t->fd, key.data(), h.klen, off + sizeof(h)));
      (void)kn;
      if (h.vlen == kTombstone) {
        merged[key] = std::nullopt;
        off += sizeof(h) + h.klen;
      } else {
        value.resize(h.vlen);
        ASSIGN_OR_RETURN(vn, fs_->Pread(t->fd, value.data(), h.vlen, off + sizeof(h) + h.klen));
        (void)vn;
        merged[key] = value;
        off += sizeof(h) + h.klen + h.vlen;
      }
    }
  }
  // Drop tombstones in the output (full merge).
  std::vector<std::pair<std::string, std::optional<std::string>>> live;
  live.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (v.has_value()) {
      live.emplace_back(k, std::move(v));
    }
  }
  ASSIGN_OR_RETURN(nt, WriteTable(live, next_seq_++));
  // Retire the old tables.
  for (auto& t : tables_) {
    fs_->Close(t->fd);
    fs_->Unlink(cred_, t->path);
  }
  tables_.clear();
  tables_.push_back(std::move(nt));
  return common::OkStatus();
}

Result<std::optional<std::optional<std::string>>> Db::SearchTable(Table& t,
                                                                  const std::string& key) {
  if (t.index.empty()) {
    return std::optional<std::optional<std::string>>{};
  }
  // Find the last index entry <= key.
  auto it = std::upper_bound(t.index.begin(), t.index.end(), key,
                             [](const std::string& k, const TableEntry& e) { return k < e.key; });
  if (it == t.index.begin()) {
    return std::optional<std::optional<std::string>>{};
  }
  --it;
  uint64_t off = it->off;
  // Scan up to index_stride records.
  RecordHeader h;
  std::string k;
  for (size_t i = 0; i <= opts_.index_stride && off + sizeof(h) <= t.file_size; i++) {
    ASSIGN_OR_RETURN(n, fs_->Pread(t.fd, &h, sizeof(h), off));
    if (n < sizeof(h)) {
      break;
    }
    k.resize(h.klen);
    ASSIGN_OR_RETURN(kn, fs_->Pread(t.fd, k.data(), h.klen, off + sizeof(h)));
    (void)kn;
    const uint64_t body = h.vlen == kTombstone ? 0 : h.vlen;
    if (k == key) {
      if (h.vlen == kTombstone) {
        return std::optional<std::optional<std::string>>{std::optional<std::string>{}};
      }
      std::string v;
      v.resize(h.vlen);
      ASSIGN_OR_RETURN(vn, fs_->Pread(t.fd, v.data(), h.vlen, off + sizeof(h) + h.klen));
      (void)vn;
      return std::optional<std::optional<std::string>>{std::optional<std::string>{std::move(v)}};
    }
    if (k > key) {
      break;  // sorted: key absent
    }
    off += sizeof(h) + h.klen + body;
  }
  return std::optional<std::optional<std::string>>{};
}

Result<std::string> Db::Get(const std::string& key) {
  common::MutexLock lk(&mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second.has_value()) {
      return Err::kNoEnt;
    }
    return *it->second;
  }
  for (auto t = tables_.rbegin(); t != tables_.rend(); ++t) {  // newest first
    ASSIGN_OR_RETURN(found, SearchTable(**t, key));
    if (found.has_value()) {
      if (!found->has_value()) {
        return Err::kNoEnt;  // tombstone
      }
      return **found;
    }
  }
  return Err::kNoEnt;
}

Result<Db::Iterator> Db::NewIterator() {
  common::MutexLock lk(&mu_);
  std::map<std::string, std::optional<std::string>> merged;
  RecordHeader h;
  std::string key, value;
  for (const auto& t : tables_) {
    uint64_t off = 0;
    while (off + sizeof(h) <= t->file_size) {
      auto n = fs_->Pread(t->fd, &h, sizeof(h), off);
      if (!n.ok() || *n < sizeof(h)) {
        break;
      }
      key.resize(h.klen);
      fs_->Pread(t->fd, key.data(), h.klen, off + sizeof(h));
      if (h.vlen == kTombstone) {
        merged[key] = std::nullopt;
        off += sizeof(h) + h.klen;
      } else {
        value.resize(h.vlen);
        fs_->Pread(t->fd, value.data(), h.vlen, off + sizeof(h) + h.klen);
        merged[key] = value;
        off += sizeof(h) + h.klen + h.vlen;
      }
    }
  }
  for (const auto& [k, v] : memtable_) {
    merged[k] = v;
  }
  Iterator iter;
  for (auto& [k, v] : merged) {
    if (v.has_value()) {
      iter.entries_.emplace_back(k, std::move(*v));
    }
  }
  return iter;
}

}  // namespace kvstore
