#include "src/apps/minidb/minidb.h"

#include <cstring>

namespace minidb {

// The catalog lives on page 1 (the header page) after the 8-byte magic:
//   [u32 ntables] then per table: [u16 namelen][name][u32 root]

Result<std::unique_ptr<MiniDb>> MiniDb::Open(vfs::FileSystem* fs, const std::string& path) {
  ASSIGN_OR_RETURN(pager, Pager::Open(fs, path));
  auto db = std::unique_ptr<MiniDb>(new MiniDb(std::move(pager)));
  RETURN_IF_ERROR(db->LoadCatalog());
  return db;
}

Status MiniDb::Rollback() {
  RETURN_IF_ERROR(pager_->Rollback());
  // Table roots are stable, but any table created in the aborted transaction
  // must be forgotten.
  open_tables_.clear();
  return LoadCatalog();
}

Status MiniDb::LoadCatalog() {
  catalog_.clear();
  ASSIGN_OR_RETURN(buf, pager_->GetPage(1));
  size_t off = 8;
  uint32_t n;
  memcpy(&n, buf + off, 4);
  off += 4;
  for (uint32_t i = 0; i < n; i++) {
    uint16_t len;
    memcpy(&len, buf + off, 2);
    off += 2;
    std::string name(reinterpret_cast<const char*>(buf + off), len);
    off += len;
    uint32_t root;
    memcpy(&root, buf + off, 4);
    off += 4;
    catalog_[name] = root;
  }
  return common::OkStatus();
}

Status MiniDb::SaveCatalog() {
  ASSIGN_OR_RETURN(buf, pager_->GetPage(1));
  RETURN_IF_ERROR(pager_->MarkDirty(1));
  size_t off = 8;
  uint32_t n = static_cast<uint32_t>(catalog_.size());
  memcpy(buf + off, &n, 4);
  off += 4;
  for (const auto& [name, root] : catalog_) {
    uint16_t len = static_cast<uint16_t>(name.size());
    memcpy(buf + off, &len, 2);
    off += 2;
    memcpy(buf + off, name.data(), len);
    off += len;
    memcpy(buf + off, &root, 4);
    off += 4;
  }
  return common::OkStatus();
}

Result<BTree*> MiniDb::CreateTable(const std::string& name) {
  auto it = catalog_.find(name);
  if (it != catalog_.end()) {
    return GetTable(name);
  }
  if (!pager_->in_txn()) {
    return Err::kInval;
  }
  ASSIGN_OR_RETURN(root, BTree::Create(pager_.get()));
  catalog_[name] = root;
  RETURN_IF_ERROR(SaveCatalog());
  open_tables_[name] = std::make_unique<BTree>(pager_.get(), root);
  return open_tables_[name].get();
}

Result<BTree*> MiniDb::GetTable(const std::string& name) {
  auto ot = open_tables_.find(name);
  if (ot != open_tables_.end()) {
    return ot->second.get();
  }
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Err::kNoEnt;
  }
  open_tables_[name] = std::make_unique<BTree>(pager_.get(), it->second);
  return open_tables_[name].get();
}

void KeyAppendU32(std::string* key, uint32_t v) {
  char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16), static_cast<char>(v >> 8),
               static_cast<char>(v)};
  key->append(b, 4);
}

void KeyAppendStr(std::string* key, const std::string& s, size_t pad_to) {
  key->append(s);
  if (s.size() < pad_to) {
    key->append(pad_to - s.size(), '\0');
  }
}

std::string KeyU32(std::initializer_list<uint32_t> parts) {
  std::string key;
  key.reserve(parts.size() * 4);
  for (uint32_t p : parts) {
    KeyAppendU32(&key, p);
  }
  return key;
}

}  // namespace minidb
