#include "src/apps/minidb/pager.h"

#include <cstring>

namespace minidb {

namespace {
// Journal record: [page_no u32][pre-image 4096]. A leading u32 count would
// need in-place updates; instead the journal is valid iff its length is a
// whole number of records (torn tails are ignored, as in SQLite).
constexpr size_t kJournalRecord = 4 + kDbPageSize;
}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(vfs::FileSystem* fs, const std::string& path) {
  auto p = std::unique_ptr<Pager>(new Pager(fs, path));
  ASSIGN_OR_RETURN(fd, fs->Open(p->cred_, path, vfs::kCreate | vfs::kRdWr, 0644));
  p->db_fd_ = fd;
  RETURN_IF_ERROR(p->RecoverIfNeeded());
  ASSIGN_OR_RETURN(st, fs->Fstat(fd));
  if (st.size == 0) {
    // Fresh database: write the header page.
    std::vector<uint8_t> zero(kDbPageSize, 0);
    memcpy(zero.data(), "MINIDB1\0", 8);
    ASSIGN_OR_RETURN(n, fs->Pwrite(fd, zero.data(), kDbPageSize, 0));
    (void)n;
    RETURN_IF_ERROR(fs->Fsync(fd));
    p->page_count_ = 1;
  } else {
    p->page_count_ = static_cast<uint32_t>(st.size / kDbPageSize);
  }
  return p;
}

Pager::~Pager() {
  if (in_txn_) {
    Rollback();
  }
  if (db_fd_ >= 0) {
    fs_->Close(db_fd_);
  }
}

Status Pager::RecoverIfNeeded() {
  const std::string jpath = path_ + "-journal";
  auto jst = fs_->Stat(cred_, jpath);
  if (!jst.ok()) {
    return common::OkStatus();  // no hot journal
  }
  ASSIGN_OR_RETURN(jfd, fs_->Open(cred_, jpath, vfs::kRead, 0));
  const uint64_t records = jst->size / kJournalRecord;
  std::vector<uint8_t> buf(kJournalRecord);
  for (uint64_t i = 0; i < records; i++) {
    ASSIGN_OR_RETURN(n, fs_->Pread(jfd, buf.data(), kJournalRecord, i * kJournalRecord));
    if (n < kJournalRecord) {
      break;
    }
    uint32_t page_no;
    memcpy(&page_no, buf.data(), 4);
    ASSIGN_OR_RETURN(w, fs_->Pwrite(db_fd_, buf.data() + 4, kDbPageSize,
                                    static_cast<uint64_t>(page_no - 1) * kDbPageSize));
    (void)w;
  }
  RETURN_IF_ERROR(fs_->Fsync(db_fd_));
  fs_->Close(jfd);
  RETURN_IF_ERROR(fs_->Unlink(cred_, jpath));
  cache_.clear();
  return common::OkStatus();
}

Status Pager::LoadPage(uint32_t no, CachedPage* out) {
  out->data = std::make_unique<uint8_t[]>(kDbPageSize);
  if (no <= page_count_) {
    ASSIGN_OR_RETURN(n, fs_->Pread(db_fd_, out->data.get(), kDbPageSize,
                                   static_cast<uint64_t>(no - 1) * kDbPageSize));
    if (n < kDbPageSize) {
      memset(out->data.get() + n, 0, kDbPageSize - n);
    }
  } else {
    memset(out->data.get(), 0, kDbPageSize);
  }
  out->dirty = false;
  return common::OkStatus();
}

Result<uint8_t*> Pager::GetPage(uint32_t no) {
  auto it = cache_.find(no);
  if (it == cache_.end()) {
    CachedPage cp;
    RETURN_IF_ERROR(LoadPage(no, &cp));
    it = cache_.emplace(no, std::move(cp)).first;
  }
  return it->second.data.get();
}

Status Pager::JournalPage(uint32_t no) {
  if (journaled_.count(no) || no > txn_start_page_count_) {
    return common::OkStatus();  // fresh pages need no pre-image
  }
  // The pre-image must be the on-disk content, which equals the cached
  // content before the first modification (MarkDirty precedes mutation).
  ASSIGN_OR_RETURN(page, GetPage(no));
  std::vector<uint8_t> rec(kJournalRecord);
  memcpy(rec.data(), &no, 4);
  memcpy(rec.data() + 4, page, kDbPageSize);
  ASSIGN_OR_RETURN(n, fs_->Pwrite(journal_fd_, rec.data(), rec.size(), journal_off_));
  (void)n;
  journal_off_ += rec.size();
  journaled_.insert(no);
  return common::OkStatus();
}

Status Pager::MarkDirty(uint32_t no) {
  if (!in_txn_) {
    return Err::kInval;
  }
  RETURN_IF_ERROR(JournalPage(no));
  auto it = cache_.find(no);
  if (it == cache_.end()) {
    return Err::kInval;  // must GetPage before mutating
  }
  it->second.dirty = true;
  dirty_.insert(no);
  return common::OkStatus();
}

Result<uint32_t> Pager::AllocPage() {
  if (!in_txn_) {
    return Err::kInval;
  }
  uint32_t no = ++page_count_;
  CachedPage cp;
  cp.data = std::make_unique<uint8_t[]>(kDbPageSize);
  memset(cp.data.get(), 0, kDbPageSize);
  cp.dirty = true;
  cache_[no] = std::move(cp);
  dirty_.insert(no);
  return no;
}

Status Pager::Begin() {
  if (in_txn_) {
    return Err::kBusy;
  }
  ASSIGN_OR_RETURN(jfd, fs_->Open(cred_, path_ + "-journal",
                                  vfs::kCreate | vfs::kWrite | vfs::kTrunc, 0644));
  journal_fd_ = jfd;
  journal_off_ = 0;
  journaled_.clear();
  dirty_.clear();
  txn_start_page_count_ = page_count_;
  in_txn_ = true;
  return common::OkStatus();
}

Status Pager::Commit() {
  if (!in_txn_) {
    return Err::kInval;
  }
  // 1. The journal (with every pre-image) becomes durable.
  RETURN_IF_ERROR(fs_->Fsync(journal_fd_));
  // 2. Dirty pages reach the database file.
  for (uint32_t no : dirty_) {
    auto it = cache_.find(no);
    if (it == cache_.end() || !it->second.dirty) {
      continue;
    }
    ASSIGN_OR_RETURN(n, fs_->Pwrite(db_fd_, it->second.data.get(), kDbPageSize,
                                    static_cast<uint64_t>(no - 1) * kDbPageSize));
    (void)n;
    it->second.dirty = false;
  }
  // 3. Database durable, then the journal retires: the commit point.
  RETURN_IF_ERROR(fs_->Fsync(db_fd_));
  fs_->Close(journal_fd_);
  journal_fd_ = -1;
  RETURN_IF_ERROR(fs_->Unlink(cred_, path_ + "-journal"));
  in_txn_ = false;
  return common::OkStatus();
}

Status Pager::Rollback() {
  if (!in_txn_) {
    return Err::kInval;
  }
  // Discard in-memory state; the database file was never touched.
  for (uint32_t no : dirty_) {
    cache_.erase(no);
  }
  page_count_ = txn_start_page_count_;
  fs_->Close(journal_fd_);
  journal_fd_ = -1;
  fs_->Unlink(cred_, path_ + "-journal");
  in_txn_ = false;
  return common::OkStatus();
}

}  // namespace minidb
