#include "src/apps/minidb/tpcc.h"

#include <cstring>

#include "src/common/clock.h"

namespace minidb {

namespace {

// ---- row images (fixed-size binary structs serialized verbatim) ----

struct ItemRow {
  uint32_t id;
  uint32_t im_id;
  uint32_t price_cents;
  char name[24];
  char data[48];
};

struct WarehouseRow {
  uint32_t id;
  uint32_t tax_bp;  // basis points
  uint64_t ytd_cents;
  char name[10];
};

struct DistrictRow {
  uint32_t w, d;
  uint32_t tax_bp;
  uint32_t next_o_id;
  uint64_t ytd_cents;
};

struct CustomerRow {
  uint32_t w, d, c;
  int64_t balance_cents;
  uint64_t ytd_payment_cents;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  char last[17];
  char first[17];
  char data[250];
};

struct StockRow {
  uint32_t w, i;
  uint32_t quantity;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  uint64_t ytd;
  char dist[25];
};

struct OrderRow {
  uint32_t w, d, o;
  uint32_t c;
  uint32_t carrier;
  uint32_t ol_cnt;
  uint64_t entry_ns;
};

struct OrderLineRow {
  uint32_t w, d, o, ol;
  uint32_t i;
  uint32_t supply_w;
  uint32_t qty;
  uint64_t amount_cents;
  uint64_t delivery_ns;
  char dist_info[25];
};

struct HistoryRow {
  uint32_t w, d, c;
  uint64_t amount_cents;
  uint64_t when_ns;
};

template <typename T>
std::string RowStr(const T& row) {
  return std::string(reinterpret_cast<const char*>(&row), sizeof(T));
}

template <typename T>
Result<T> RowFrom(const std::string& s) {
  if (s.size() != sizeof(T)) {
    return common::Err::kCorrupt;
  }
  T row;
  memcpy(&row, s.data(), sizeof(T));
  return row;
}

const char* const kNameSyllables[] = {"BAR",   "OUGHT", "ABLE", "PRI",   "PRES",
                                      "ESE",   "ANTI",  "CALLY", "ATION", "EING"};

}  // namespace

uint32_t Tpcc::NURand(uint32_t a, uint32_t x, uint32_t y) {
  const uint32_t c = 42;  // per-run constant, fixed for reproducibility
  uint32_t r1 = static_cast<uint32_t>(rng_.Between(0, a));
  uint32_t r2 = static_cast<uint32_t>(rng_.Between(x, y));
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

std::string Tpcc::LastName(uint32_t num) {
  return std::string(kNameSyllables[(num / 100) % 10]) + kNameSyllables[(num / 10) % 10] +
         kNameSyllables[num % 10];
}

Status Tpcc::Load() {
  RETURN_IF_ERROR(db_->Begin());
  const char* tables[] = {"item",      "warehouse", "district",      "customer",
                          "cust_name", "stock",     "order",         "order_cust",
                          "new_order", "order_line", "history"};
  for (const char* t : tables) {
    RETURN_IF_ERROR(db_->CreateTable(t).ok() ? common::OkStatus() : common::Status(Err::kIo));
  }
  RETURN_IF_ERROR(db_->Commit());

  auto table = [&](const char* n) { return *db_->GetTable(n); };

  // Items (commit in batches to bound journal size).
  RETURN_IF_ERROR(db_->Begin());
  for (uint32_t i = 1; i <= cfg_.items; i++) {
    ItemRow row{};
    row.id = i;
    row.im_id = static_cast<uint32_t>(rng_.Between(1, 10000));
    row.price_cents = static_cast<uint32_t>(rng_.Between(100, 10000));
    snprintf(row.name, sizeof(row.name), "item-%u", i);
    rng_.Fill(row.data, 16);
    RETURN_IF_ERROR(table("item")->Put(KeyU32({i}), RowStr(row)));
    if (i % 2000 == 0) {
      RETURN_IF_ERROR(db_->Commit());
      RETURN_IF_ERROR(db_->Begin());
    }
  }
  RETURN_IF_ERROR(db_->Commit());

  for (uint32_t w = 1; w <= cfg_.warehouses; w++) {
    RETURN_IF_ERROR(db_->Begin());
    WarehouseRow wr{};
    wr.id = w;
    wr.tax_bp = static_cast<uint32_t>(rng_.Between(0, 2000));
    snprintf(wr.name, sizeof(wr.name), "wh-%u", w);
    RETURN_IF_ERROR(table("warehouse")->Put(KeyU32({w}), RowStr(wr)));

    // Stock.
    for (uint32_t i = 1; i <= cfg_.items; i++) {
      StockRow sr{};
      sr.w = w;
      sr.i = i;
      sr.quantity = static_cast<uint32_t>(rng_.Between(10, 100));
      rng_.Fill(sr.dist, 24);
      RETURN_IF_ERROR(table("stock")->Put(KeyU32({w, i}), RowStr(sr)));
      if (i % 2000 == 0) {
        RETURN_IF_ERROR(db_->Commit());
        RETURN_IF_ERROR(db_->Begin());
      }
    }
    RETURN_IF_ERROR(db_->Commit());

    for (uint32_t d = 1; d <= cfg_.districts; d++) {
      RETURN_IF_ERROR(db_->Begin());
      DistrictRow dr{};
      dr.w = w;
      dr.d = d;
      dr.tax_bp = static_cast<uint32_t>(rng_.Between(0, 2000));
      dr.next_o_id = cfg_.initial_orders_per_district + 1;
      RETURN_IF_ERROR(table("district")->Put(KeyU32({w, d}), RowStr(dr)));

      for (uint32_t c = 1; c <= cfg_.customers_per_district; c++) {
        CustomerRow cr{};
        cr.w = w;
        cr.d = d;
        cr.c = c;
        cr.balance_cents = -1000;
        uint32_t name_num = c <= 1000 ? c - 1 : NURand(255, 0, 999);
        std::string last = LastName(name_num);
        snprintf(cr.last, sizeof(cr.last), "%s", last.c_str());
        snprintf(cr.first, sizeof(cr.first), "first-%u", c);
        rng_.Fill(cr.data, 64);
        RETURN_IF_ERROR(table("customer")->Put(KeyU32({w, d, c}), RowStr(cr)));
        std::string name_key;
        KeyAppendU32(&name_key, w);
        KeyAppendU32(&name_key, d);
        KeyAppendStr(&name_key, last, 17);
        KeyAppendU32(&name_key, c);
        RETURN_IF_ERROR(table("cust_name")->Put(name_key, ""));
        if (c % 1000 == 0) {
          RETURN_IF_ERROR(db_->Commit());
          RETURN_IF_ERROR(db_->Begin());
        }
      }

      // Initial orders (one line each, delivered).
      for (uint32_t o = 1; o <= cfg_.initial_orders_per_district; o++) {
        OrderRow orow{};
        orow.w = w;
        orow.d = d;
        orow.o = o;
        orow.c = static_cast<uint32_t>(rng_.Between(1, cfg_.customers_per_district));
        orow.carrier = static_cast<uint32_t>(rng_.Between(1, 10));
        orow.ol_cnt = 1;
        orow.entry_ns = common::NowNs();
        RETURN_IF_ERROR(table("order")->Put(KeyU32({w, d, o}), RowStr(orow)));
        RETURN_IF_ERROR(table("order_cust")->Put(KeyU32({w, d, orow.c, o}), ""));
        OrderLineRow ol{};
        ol.w = w;
        ol.d = d;
        ol.o = o;
        ol.ol = 1;
        ol.i = static_cast<uint32_t>(rng_.Between(1, cfg_.items));
        ol.qty = 5;
        ol.amount_cents = rng_.Between(100, 999900);
        RETURN_IF_ERROR(table("order_line")->Put(KeyU32({w, d, o, 1}), RowStr(ol)));
      }
      RETURN_IF_ERROR(db_->Commit());
    }
  }
  return common::OkStatus();
}

Result<uint32_t> Tpcc::PickCustomer(uint32_t w, uint32_t d) {
  if (rng_.Below(100) < 60) {
    return NURand(1023, 1, cfg_.customers_per_district);
  }
  // By last name: collect matches via the secondary index, pick the middle
  // one (spec 2.5.2.2).
  std::string last = LastName(NURand(255, 0, std::min(999u, cfg_.customers_per_district - 1)));
  std::string prefix;
  KeyAppendU32(&prefix, w);
  KeyAppendU32(&prefix, d);
  KeyAppendStr(&prefix, last, 17);
  std::vector<uint32_t> matches;
  ASSIGN_OR_RETURN(idx, db_->GetTable("cust_name"));
  RETURN_IF_ERROR(idx->Scan(prefix, [&](const std::string& k, const std::string&) {
    if (k.size() != prefix.size() + 4 || k.compare(0, prefix.size(), prefix) != 0) {
      return false;
    }
    uint32_t c = (static_cast<uint8_t>(k[prefix.size()]) << 24) |
                 (static_cast<uint8_t>(k[prefix.size() + 1]) << 16) |
                 (static_cast<uint8_t>(k[prefix.size() + 2]) << 8) |
                 static_cast<uint8_t>(k[prefix.size() + 3]);
    matches.push_back(c);
    return true;
  }));
  if (matches.empty()) {
    return NURand(1023, 1, cfg_.customers_per_district);
  }
  return matches[matches.size() / 2];
}

Status Tpcc::NewOrder() {
  const uint32_t w = static_cast<uint32_t>(rng_.Between(1, cfg_.warehouses));
  const uint32_t d = static_cast<uint32_t>(rng_.Between(1, cfg_.districts));
  const uint32_t c = NURand(1023, 1, cfg_.customers_per_district);
  const uint32_t ol_cnt = static_cast<uint32_t>(rng_.Between(5, 15));

  RETURN_IF_ERROR(db_->Begin());
  auto fail = [&](Err e) -> Status {
    db_->Rollback();
    return e;
  };

  auto wt = db_->GetTable("warehouse");
  auto dt = db_->GetTable("district");
  auto it_ = db_->GetTable("item");
  auto st = db_->GetTable("stock");
  auto ot = db_->GetTable("order");
  auto oct = db_->GetTable("order_cust");
  auto not_ = db_->GetTable("new_order");
  auto olt = db_->GetTable("order_line");
  if (!wt.ok() || !dt.ok() || !it_.ok() || !st.ok() || !ot.ok() || !oct.ok() || !not_.ok() ||
      !olt.ok()) {
    return fail(Err::kIo);
  }

  auto wrow = (*wt)->Get(KeyU32({w}));
  auto drow_s = (*dt)->Get(KeyU32({w, d}));
  if (!wrow.ok() || !drow_s.ok()) {
    return fail(Err::kIo);
  }
  auto drow = RowFrom<DistrictRow>(*drow_s);
  if (!drow.ok()) {
    return fail(Err::kCorrupt);
  }
  const uint32_t o_id = drow->next_o_id;
  drow->next_o_id++;
  if (!(*dt)->Put(KeyU32({w, d}), RowStr(*drow)).ok()) {
    return fail(Err::kIo);
  }

  OrderRow orow{};
  orow.w = w;
  orow.d = d;
  orow.o = o_id;
  orow.c = c;
  orow.ol_cnt = ol_cnt;
  orow.entry_ns = common::NowNs();
  if (!(*ot)->Put(KeyU32({w, d, o_id}), RowStr(orow)).ok() ||
      !(*oct)->Put(KeyU32({w, d, c, o_id}), "").ok() ||
      !(*not_)->Put(KeyU32({w, d, o_id}), "").ok()) {
    return fail(Err::kIo);
  }

  uint64_t total_cents = 0;
  for (uint32_t ol = 1; ol <= ol_cnt; ol++) {
    const uint32_t i = NURand(8191, 1, cfg_.items);
    auto irow_s = (*it_)->Get(KeyU32({i}));
    if (!irow_s.ok()) {
      return fail(Err::kIo);
    }
    auto irow = RowFrom<ItemRow>(*irow_s);
    auto srow_s = (*st)->Get(KeyU32({w, i}));
    if (!irow.ok() || !srow_s.ok()) {
      return fail(Err::kIo);
    }
    auto srow = RowFrom<StockRow>(*srow_s);
    if (!srow.ok()) {
      return fail(Err::kCorrupt);
    }
    const uint32_t qty = static_cast<uint32_t>(rng_.Between(1, 10));
    srow->quantity = srow->quantity >= qty + 10 ? srow->quantity - qty : srow->quantity + 91 - qty;
    srow->ytd += qty;
    srow->order_cnt++;
    if (!(*st)->Put(KeyU32({w, i}), RowStr(*srow)).ok()) {
      return fail(Err::kIo);
    }

    OrderLineRow olr{};
    olr.w = w;
    olr.d = d;
    olr.o = o_id;
    olr.ol = ol;
    olr.i = i;
    olr.supply_w = w;
    olr.qty = qty;
    olr.amount_cents = static_cast<uint64_t>(qty) * irow->price_cents;
    memcpy(olr.dist_info, srow->dist, sizeof(olr.dist_info) - 1);
    total_cents += olr.amount_cents;
    if (!(*olt)->Put(KeyU32({w, d, o_id, ol}), RowStr(olr)).ok()) {
      return fail(Err::kIo);
    }
  }
  (void)total_cents;
  RETURN_IF_ERROR(db_->Commit());
  committed_++;
  return common::OkStatus();
}

Status Tpcc::Payment() {
  const uint32_t w = static_cast<uint32_t>(rng_.Between(1, cfg_.warehouses));
  const uint32_t d = static_cast<uint32_t>(rng_.Between(1, cfg_.districts));
  const uint64_t amount = rng_.Between(100, 500000);

  RETURN_IF_ERROR(db_->Begin());
  auto fail = [&](Err e) -> Status {
    db_->Rollback();
    return e;
  };
  auto c_res = PickCustomer(w, d);
  if (!c_res.ok()) {
    return fail(c_res.error());
  }
  const uint32_t c = *c_res;

  auto wt = db_->GetTable("warehouse");
  auto dt = db_->GetTable("district");
  auto ct = db_->GetTable("customer");
  auto ht = db_->GetTable("history");
  if (!wt.ok() || !dt.ok() || !ct.ok() || !ht.ok()) {
    return fail(Err::kIo);
  }

  auto wrow_s = (*wt)->Get(KeyU32({w}));
  if (!wrow_s.ok()) {
    return fail(Err::kIo);
  }
  auto wrow = RowFrom<WarehouseRow>(*wrow_s);
  wrow->ytd_cents += amount;
  if (!(*wt)->Put(KeyU32({w}), RowStr(*wrow)).ok()) {
    return fail(Err::kIo);
  }

  auto drow_s = (*dt)->Get(KeyU32({w, d}));
  if (!drow_s.ok()) {
    return fail(Err::kIo);
  }
  auto drow = RowFrom<DistrictRow>(*drow_s);
  drow->ytd_cents += amount;
  if (!(*dt)->Put(KeyU32({w, d}), RowStr(*drow)).ok()) {
    return fail(Err::kIo);
  }

  auto crow_s = (*ct)->Get(KeyU32({w, d, c}));
  if (!crow_s.ok()) {
    return fail(Err::kIo);
  }
  auto crow = RowFrom<CustomerRow>(*crow_s);
  crow->balance_cents -= static_cast<int64_t>(amount);
  crow->ytd_payment_cents += amount;
  crow->payment_cnt++;
  if (!(*ct)->Put(KeyU32({w, d, c}), RowStr(*crow)).ok()) {
    return fail(Err::kIo);
  }

  HistoryRow hr{w, d, c, amount, common::NowNs()};
  if (!(*ht)->Put(KeyU32({static_cast<uint32_t>(history_seq_ >> 32),
                          static_cast<uint32_t>(history_seq_)}),
                  RowStr(hr))
           .ok()) {
    return fail(Err::kIo);
  }
  history_seq_++;
  RETURN_IF_ERROR(db_->Commit());
  committed_++;
  return common::OkStatus();
}

Status Tpcc::OrderStatus() {
  const uint32_t w = static_cast<uint32_t>(rng_.Between(1, cfg_.warehouses));
  const uint32_t d = static_cast<uint32_t>(rng_.Between(1, cfg_.districts));

  RETURN_IF_ERROR(db_->Begin());
  auto fail = [&](Err e) -> Status {
    db_->Rollback();
    return e;
  };
  auto c_res = PickCustomer(w, d);
  if (!c_res.ok()) {
    return fail(c_res.error());
  }
  const uint32_t c = *c_res;

  auto ct = db_->GetTable("customer");
  auto oct = db_->GetTable("order_cust");
  auto ot = db_->GetTable("order");
  auto olt = db_->GetTable("order_line");
  if (!ct.ok() || !oct.ok() || !ot.ok() || !olt.ok()) {
    return fail(Err::kIo);
  }
  auto crow_s = (*ct)->Get(KeyU32({w, d, c}));
  if (!crow_s.ok()) {
    return fail(Err::kIo);
  }

  // Latest order of this customer via the secondary index.
  uint32_t last_o = 0;
  std::string prefix = KeyU32({w, d, c});
  (*oct)->Scan(prefix, [&](const std::string& k, const std::string&) {
    if (k.size() != prefix.size() + 4 || k.compare(0, prefix.size(), prefix) != 0) {
      return false;
    }
    last_o = (static_cast<uint8_t>(k[prefix.size()]) << 24) |
             (static_cast<uint8_t>(k[prefix.size() + 1]) << 16) |
             (static_cast<uint8_t>(k[prefix.size() + 2]) << 8) |
             static_cast<uint8_t>(k[prefix.size() + 3]);
    return true;
  });
  if (last_o != 0) {
    auto orow_s = (*ot)->Get(KeyU32({w, d, last_o}));
    if (orow_s.ok()) {
      auto orow = RowFrom<OrderRow>(*orow_s);
      if (orow.ok()) {
        for (uint32_t ol = 1; ol <= orow->ol_cnt; ol++) {
          (*olt)->Get(KeyU32({w, d, last_o, ol}));
        }
      }
    }
  }
  RETURN_IF_ERROR(db_->Commit());
  committed_++;
  return common::OkStatus();
}

Status Tpcc::Delivery() {
  const uint32_t w = static_cast<uint32_t>(rng_.Between(1, cfg_.warehouses));
  const uint32_t carrier = static_cast<uint32_t>(rng_.Between(1, 10));

  RETURN_IF_ERROR(db_->Begin());
  auto fail = [&](Err e) -> Status {
    db_->Rollback();
    return e;
  };
  auto not_ = db_->GetTable("new_order");
  auto ot = db_->GetTable("order");
  auto olt = db_->GetTable("order_line");
  auto ct = db_->GetTable("customer");
  if (!not_.ok() || !ot.ok() || !olt.ok() || !ct.ok()) {
    return fail(Err::kIo);
  }

  for (uint32_t d = 1; d <= cfg_.districts; d++) {
    // Oldest undelivered order.
    uint32_t o_id = 0;
    std::string prefix = KeyU32({w, d});
    (*not_)->Scan(prefix, [&](const std::string& k, const std::string&) {
      if (k.size() != prefix.size() + 4 || k.compare(0, prefix.size(), prefix) != 0) {
        return false;
      }
      o_id = (static_cast<uint8_t>(k[prefix.size()]) << 24) |
             (static_cast<uint8_t>(k[prefix.size() + 1]) << 16) |
             (static_cast<uint8_t>(k[prefix.size() + 2]) << 8) |
             static_cast<uint8_t>(k[prefix.size() + 3]);
      return false;  // first (smallest) match only
    });
    if (o_id == 0) {
      continue;
    }
    if (!(*not_)->Delete(KeyU32({w, d, o_id})).ok()) {
      continue;
    }
    auto orow_s = (*ot)->Get(KeyU32({w, d, o_id}));
    if (!orow_s.ok()) {
      continue;
    }
    auto orow = RowFrom<OrderRow>(*orow_s);
    if (!orow.ok()) {
      continue;
    }
    orow->carrier = carrier;
    (*ot)->Put(KeyU32({w, d, o_id}), RowStr(*orow));

    uint64_t sum = 0;
    for (uint32_t ol = 1; ol <= orow->ol_cnt; ol++) {
      auto ols = (*olt)->Get(KeyU32({w, d, o_id, ol}));
      if (!ols.ok()) {
        continue;
      }
      auto olr = RowFrom<OrderLineRow>(*ols);
      if (!olr.ok()) {
        continue;
      }
      sum += olr->amount_cents;
      olr->delivery_ns = common::NowNs();
      (*olt)->Put(KeyU32({w, d, o_id, ol}), RowStr(*olr));
    }
    auto crow_s = (*ct)->Get(KeyU32({w, d, orow->c}));
    if (crow_s.ok()) {
      auto crow = RowFrom<CustomerRow>(*crow_s);
      if (crow.ok()) {
        crow->balance_cents += static_cast<int64_t>(sum);
        crow->delivery_cnt++;
        (*ct)->Put(KeyU32({w, d, orow->c}), RowStr(*crow));
      }
    }
  }
  RETURN_IF_ERROR(db_->Commit());
  committed_++;
  return common::OkStatus();
}

Status Tpcc::StockLevel() {
  const uint32_t w = static_cast<uint32_t>(rng_.Between(1, cfg_.warehouses));
  const uint32_t d = static_cast<uint32_t>(rng_.Between(1, cfg_.districts));
  const uint32_t threshold = static_cast<uint32_t>(rng_.Between(10, 20));

  RETURN_IF_ERROR(db_->Begin());
  auto fail = [&](Err e) -> Status {
    db_->Rollback();
    return e;
  };
  auto dt = db_->GetTable("district");
  auto olt = db_->GetTable("order_line");
  auto st = db_->GetTable("stock");
  if (!dt.ok() || !olt.ok() || !st.ok()) {
    return fail(Err::kIo);
  }
  auto drow_s = (*dt)->Get(KeyU32({w, d}));
  if (!drow_s.ok()) {
    return fail(Err::kIo);
  }
  auto drow = RowFrom<DistrictRow>(*drow_s);
  if (!drow.ok()) {
    return fail(Err::kCorrupt);
  }
  const uint32_t hi = drow->next_o_id;
  const uint32_t lo = hi > 20 ? hi - 20 : 1;

  std::set<uint32_t> items;
  std::string from = KeyU32({w, d, lo});
  std::string end = KeyU32({w, d, hi});
  (*olt)->Scan(from, [&](const std::string& k, const std::string& v) {
    if (k >= end) {
      return false;
    }
    auto olr = RowFrom<OrderLineRow>(v);
    if (olr.ok()) {
      items.insert(olr->i);
    }
    return true;
  });
  uint32_t low_stock = 0;
  for (uint32_t i : items) {
    auto srow_s = (*st)->Get(KeyU32({w, i}));
    if (!srow_s.ok()) {
      continue;
    }
    auto srow = RowFrom<StockRow>(*srow_s);
    if (srow.ok() && srow->quantity < threshold) {
      low_stock++;
    }
  }
  (void)low_stock;
  RETURN_IF_ERROR(db_->Commit());
  committed_++;
  return common::OkStatus();
}

Status Tpcc::Mixed() {
  const uint64_t roll = rng_.Below(100);
  if (roll < 44) {
    return NewOrder();
  }
  if (roll < 88) {
    return Payment();
  }
  if (roll < 92) {
    return OrderStatus();
  }
  if (roll < 96) {
    return Delivery();
  }
  return StockLevel();
}

}  // namespace minidb
