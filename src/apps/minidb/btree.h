// A B+tree over Pager pages: the storage engine of MiniDb.
//
// Keys and values are byte strings. Leaves are chained for range scans.
// The root page number is fixed for the lifetime of a tree (root splits
// copy the old root down), so the catalog never needs updating.
//
// Page layout (both kinds):
//   [u16 kind][u16 nkeys][u32 right_sibling (leaves) | child0 (internal)]
//   followed by packed entries:
//     leaf:     [u16 klen][u16 vlen][key][value] ...
//     internal: [u16 klen][key][u32 child] ...

#ifndef SRC_APPS_MINIDB_BTREE_H_
#define SRC_APPS_MINIDB_BTREE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/minidb/pager.h"

namespace minidb {

class BTree {
 public:
  BTree(Pager* pager, uint32_t root) : pager_(pager), root_(root) {}

  // Creates an empty tree; returns its root page. Must be inside a txn.
  static Result<uint32_t> Create(Pager* pager);

  uint32_t root() const { return root_; }

  // Inserts or replaces. Must be inside a txn.
  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);  // no rebalancing (deletes are rare in TPC-C)
  Result<std::string> Get(const std::string& key);

  // Calls fn(key, value) for every entry with key >= from, in order, until
  // fn returns false. Read-only.
  Status Scan(const std::string& from,
              const std::function<bool(const std::string&, const std::string&)>& fn);

  // Number of entries (full scan; for tests).
  Result<uint64_t> CountForTest();

 private:
  struct LeafEntry {
    std::string key;
    std::string value;
  };
  struct InternalEntry {
    std::string key;   // smallest key in the subtree right of this separator
    uint32_t child;
  };

  static constexpr uint16_t kLeaf = 1;
  static constexpr uint16_t kInternal = 2;
  static constexpr size_t kHeader = 8;
  // Split when the serialized page would exceed this.
  static constexpr size_t kSoftMax = kDbPageSize - 64;

  Result<std::vector<LeafEntry>> ReadLeaf(uint32_t page, uint32_t* right);
  Status WriteLeaf(uint32_t page, const std::vector<LeafEntry>& entries, uint32_t right);
  Result<std::pair<uint32_t, std::vector<InternalEntry>>> ReadInternal(uint32_t page);
  Status WriteInternal(uint32_t page, uint32_t child0,
                       const std::vector<InternalEntry>& entries);
  static size_t LeafBytes(const std::vector<LeafEntry>& entries);

  // Descends to the leaf for `key`, recording the path (page numbers and the
  // chosen child index at each internal node).
  struct PathStep {
    uint32_t page;
    size_t child_idx;  // index into (child0 + entries): 0 = child0
  };
  Result<uint32_t> FindLeaf(const std::string& key, std::vector<PathStep>* path);

  // Inserts separator (key, right_child) into the parent at path level
  // `level`, splitting upward as needed.
  Status InsertIntoParent(std::vector<PathStep>& path, size_t level, std::string key,
                          uint32_t right_child);

  Pager* pager_;
  uint32_t root_;
};

}  // namespace minidb

#endif  // SRC_APPS_MINIDB_BTREE_H_
