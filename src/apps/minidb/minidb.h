// MiniDb — a small embedded transactional database (SQLite stand-in for the
// paper's §6.3 TPC-C experiment): a pager with rollback-journal transactions
// and named B+tree tables.

#ifndef SRC_APPS_MINIDB_MINIDB_H_
#define SRC_APPS_MINIDB_MINIDB_H_

#include <map>
#include <memory>
#include <string>

#include "src/apps/minidb/btree.h"
#include "src/apps/minidb/pager.h"

namespace minidb {

class MiniDb {
 public:
  static Result<std::unique_ptr<MiniDb>> Open(vfs::FileSystem* fs, const std::string& path);

  Status Begin() { return pager_->Begin(); }
  Status Commit() { return pager_->Commit(); }
  Status Rollback();

  // Creates a table (inside a transaction) or opens an existing one.
  Result<BTree*> CreateTable(const std::string& name);
  Result<BTree*> GetTable(const std::string& name);

  Pager* pager() { return pager_.get(); }

 private:
  explicit MiniDb(std::unique_ptr<Pager> pager) : pager_(std::move(pager)) {}
  Status LoadCatalog();
  Status SaveCatalog();

  std::unique_ptr<Pager> pager_;
  std::map<std::string, uint32_t> catalog_;  // table name -> root page
  std::map<std::string, std::unique_ptr<BTree>> open_tables_;
};

// ---- key encoding helpers (big-endian composite keys sort correctly) ----
void KeyAppendU32(std::string* key, uint32_t v);
void KeyAppendStr(std::string* key, const std::string& s, size_t pad_to);
std::string KeyU32(std::initializer_list<uint32_t> parts);

}  // namespace minidb

#endif  // SRC_APPS_MINIDB_MINIDB_H_
