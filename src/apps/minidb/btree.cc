#include "src/apps/minidb/btree.h"

#include <algorithm>
#include <cstring>

namespace minidb {

namespace {
uint16_t ReadU16(const uint8_t* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}
uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}
void WriteU16(uint8_t* p, uint16_t v) { memcpy(p, &v, 2); }
void WriteU32(uint8_t* p, uint32_t v) { memcpy(p, &v, 4); }
}  // namespace

Result<uint32_t> BTree::Create(Pager* pager) {
  ASSIGN_OR_RETURN(page, pager->AllocPage());
  ASSIGN_OR_RETURN(buf, pager->GetPage(page));
  RETURN_IF_ERROR(pager->MarkDirty(page));
  WriteU16(buf, kLeaf);
  WriteU16(buf + 2, 0);
  WriteU32(buf + 4, 0);
  return page;
}

Result<std::vector<BTree::LeafEntry>> BTree::ReadLeaf(uint32_t page, uint32_t* right) {
  ASSIGN_OR_RETURN(buf, pager_->GetPage(page));
  if (ReadU16(buf) != kLeaf) {
    return Err::kCorrupt;
  }
  const uint16_t n = ReadU16(buf + 2);
  if (right != nullptr) {
    *right = ReadU32(buf + 4);
  }
  std::vector<LeafEntry> out;
  out.reserve(n);
  size_t off = kHeader;
  for (uint16_t i = 0; i < n; i++) {
    uint16_t klen = ReadU16(buf + off);
    uint16_t vlen = ReadU16(buf + off + 2);
    off += 4;
    out.push_back(LeafEntry{std::string(reinterpret_cast<const char*>(buf + off), klen),
                            std::string(reinterpret_cast<const char*>(buf + off + klen), vlen)});
    off += klen + vlen;
  }
  return out;
}

size_t BTree::LeafBytes(const std::vector<LeafEntry>& entries) {
  size_t bytes = kHeader;
  for (const LeafEntry& e : entries) {
    bytes += 4 + e.key.size() + e.value.size();
  }
  return bytes;
}

Status BTree::WriteLeaf(uint32_t page, const std::vector<LeafEntry>& entries, uint32_t right) {
  ASSIGN_OR_RETURN(buf, pager_->GetPage(page));
  RETURN_IF_ERROR(pager_->MarkDirty(page));
  WriteU16(buf, kLeaf);
  WriteU16(buf + 2, static_cast<uint16_t>(entries.size()));
  WriteU32(buf + 4, right);
  size_t off = kHeader;
  for (const LeafEntry& e : entries) {
    WriteU16(buf + off, static_cast<uint16_t>(e.key.size()));
    WriteU16(buf + off + 2, static_cast<uint16_t>(e.value.size()));
    off += 4;
    memcpy(buf + off, e.key.data(), e.key.size());
    memcpy(buf + off + e.key.size(), e.value.data(), e.value.size());
    off += e.key.size() + e.value.size();
  }
  return common::OkStatus();
}

Result<std::pair<uint32_t, std::vector<BTree::InternalEntry>>> BTree::ReadInternal(uint32_t page) {
  ASSIGN_OR_RETURN(buf, pager_->GetPage(page));
  if (ReadU16(buf) != kInternal) {
    return Err::kCorrupt;
  }
  const uint16_t n = ReadU16(buf + 2);
  uint32_t child0 = ReadU32(buf + 4);
  std::vector<InternalEntry> out;
  out.reserve(n);
  size_t off = kHeader;
  for (uint16_t i = 0; i < n; i++) {
    uint16_t klen = ReadU16(buf + off);
    off += 2;
    std::string key(reinterpret_cast<const char*>(buf + off), klen);
    off += klen;
    uint32_t child = ReadU32(buf + off);
    off += 4;
    out.push_back(InternalEntry{std::move(key), child});
  }
  return std::make_pair(child0, std::move(out));
}

Status BTree::WriteInternal(uint32_t page, uint32_t child0,
                            const std::vector<InternalEntry>& entries) {
  ASSIGN_OR_RETURN(buf, pager_->GetPage(page));
  RETURN_IF_ERROR(pager_->MarkDirty(page));
  WriteU16(buf, kInternal);
  WriteU16(buf + 2, static_cast<uint16_t>(entries.size()));
  WriteU32(buf + 4, child0);
  size_t off = kHeader;
  for (const InternalEntry& e : entries) {
    WriteU16(buf + off, static_cast<uint16_t>(e.key.size()));
    off += 2;
    memcpy(buf + off, e.key.data(), e.key.size());
    off += e.key.size();
    WriteU32(buf + off, e.child);
    off += 4;
  }
  return common::OkStatus();
}

Result<uint32_t> BTree::FindLeaf(const std::string& key, std::vector<PathStep>* path) {
  uint32_t page = root_;
  for (;;) {
    ASSIGN_OR_RETURN(buf, pager_->GetPage(page));
    uint16_t kind = ReadU16(buf);
    if (kind == kLeaf) {
      return page;
    }
    if (kind != kInternal) {
      return Err::kCorrupt;
    }
    ASSIGN_OR_RETURN(node, ReadInternal(page));
    auto& [child0, entries] = node;
    // Choose the rightmost child whose separator <= key.
    size_t idx = 0;  // 0 = child0
    uint32_t next = child0;
    for (size_t i = 0; i < entries.size(); i++) {
      if (key >= entries[i].key) {
        idx = i + 1;
        next = entries[i].child;
      } else {
        break;
      }
    }
    if (path != nullptr) {
      path->push_back(PathStep{page, idx});
    }
    page = next;
  }
}

Status BTree::InsertIntoParent(std::vector<PathStep>& path, size_t level, std::string key,
                               uint32_t right_child) {
  if (level == SIZE_MAX || path.empty() || level >= path.size()) {
    // Splitting the root: the root page number must stay stable, so copy the
    // old root into a fresh page and make the root an internal node over
    // {old-copy, right_child}.
    ASSIGN_OR_RETURN(left_copy, pager_->AllocPage());
    ASSIGN_OR_RETURN(root_buf, pager_->GetPage(root_));
    ASSIGN_OR_RETURN(copy_buf, pager_->GetPage(left_copy));
    RETURN_IF_ERROR(pager_->MarkDirty(left_copy));
    memcpy(copy_buf, root_buf, kDbPageSize);
    std::vector<InternalEntry> entries{InternalEntry{std::move(key), right_child}};
    return WriteInternal(root_, left_copy, entries);
  }

  const uint32_t page = path[level].page;
  ASSIGN_OR_RETURN(node, ReadInternal(page));
  auto& [child0, entries] = node;
  // Insert the separator in order.
  auto it = std::upper_bound(entries.begin(), entries.end(), key,
                             [](const std::string& k, const InternalEntry& e) { return k < e.key; });
  entries.insert(it, InternalEntry{std::move(key), right_child});

  // Measure and split if needed.
  size_t bytes = kHeader;
  for (const InternalEntry& e : entries) {
    bytes += 6 + e.key.size();
  }
  if (bytes <= kSoftMax) {
    return WriteInternal(page, child0, entries);
  }

  const size_t mid = entries.size() / 2;
  std::string up_key = entries[mid].key;
  uint32_t right_child0 = entries[mid].child;
  std::vector<InternalEntry> left(entries.begin(), entries.begin() + mid);
  std::vector<InternalEntry> right(entries.begin() + mid + 1, entries.end());

  ASSIGN_OR_RETURN(new_page, pager_->AllocPage());
  if (page == root_) {
    // Root split with stable root: copy left half to a fresh page too.
    ASSIGN_OR_RETURN(left_page, pager_->AllocPage());
    RETURN_IF_ERROR(WriteInternal(left_page, child0, left));
    RETURN_IF_ERROR(WriteInternal(new_page, right_child0, right));
    std::vector<InternalEntry> root_entries{InternalEntry{std::move(up_key), new_page}};
    return WriteInternal(root_, left_page, root_entries);
  }
  RETURN_IF_ERROR(WriteInternal(page, child0, left));
  RETURN_IF_ERROR(WriteInternal(new_page, right_child0, right));
  return InsertIntoParent(path, level == 0 ? SIZE_MAX : level - 1, std::move(up_key), new_page);
}

Status BTree::Put(const std::string& key, const std::string& value) {
  if (!pager_->in_txn()) {
    return Err::kInval;
  }
  if (4 + key.size() + value.size() > kSoftMax - kHeader) {
    return Err::kNameTooLong;  // record would never fit a page
  }
  std::vector<PathStep> path;
  ASSIGN_OR_RETURN(leaf, FindLeaf(key, &path));
  uint32_t right;
  ASSIGN_OR_RETURN(entries, ReadLeaf(leaf, &right));
  auto it = std::lower_bound(entries.begin(), entries.end(), key,
                             [](const LeafEntry& e, const std::string& k) { return e.key < k; });
  if (it != entries.end() && it->key == key) {
    it->value = value;
  } else {
    entries.insert(it, LeafEntry{key, value});
  }
  if (LeafBytes(entries) <= kSoftMax) {
    return WriteLeaf(leaf, entries, right);
  }

  // Leaf split.
  const size_t mid = entries.size() / 2;
  std::vector<LeafEntry> left(entries.begin(), entries.begin() + mid);
  std::vector<LeafEntry> right_entries(entries.begin() + mid, entries.end());
  std::string up_key = right_entries.front().key;

  ASSIGN_OR_RETURN(new_leaf, pager_->AllocPage());
  if (leaf == root_) {
    // Root is a leaf: keep the root page stable.
    ASSIGN_OR_RETURN(left_page, pager_->AllocPage());
    RETURN_IF_ERROR(WriteLeaf(left_page, left, new_leaf));
    RETURN_IF_ERROR(WriteLeaf(new_leaf, right_entries, right));
    std::vector<InternalEntry> root_entries{InternalEntry{std::move(up_key), new_leaf}};
    return WriteInternal(root_, left_page, root_entries);
  }
  RETURN_IF_ERROR(WriteLeaf(new_leaf, right_entries, right));
  RETURN_IF_ERROR(WriteLeaf(leaf, left, new_leaf));
  return InsertIntoParent(path, path.empty() ? SIZE_MAX : path.size() - 1, std::move(up_key),
                          new_leaf);
}

Status BTree::Delete(const std::string& key) {
  if (!pager_->in_txn()) {
    return Err::kInval;
  }
  ASSIGN_OR_RETURN(leaf, FindLeaf(key, nullptr));
  uint32_t right;
  ASSIGN_OR_RETURN(entries, ReadLeaf(leaf, &right));
  auto it = std::lower_bound(entries.begin(), entries.end(), key,
                             [](const LeafEntry& e, const std::string& k) { return e.key < k; });
  if (it == entries.end() || it->key != key) {
    return Err::kNoEnt;
  }
  entries.erase(it);
  return WriteLeaf(leaf, entries, right);
}

Result<std::string> BTree::Get(const std::string& key) {
  ASSIGN_OR_RETURN(leaf, FindLeaf(key, nullptr));
  ASSIGN_OR_RETURN(entries, ReadLeaf(leaf, nullptr));
  auto it = std::lower_bound(entries.begin(), entries.end(), key,
                             [](const LeafEntry& e, const std::string& k) { return e.key < k; });
  if (it == entries.end() || it->key != key) {
    return Err::kNoEnt;
  }
  return it->value;
}

Status BTree::Scan(const std::string& from,
                   const std::function<bool(const std::string&, const std::string&)>& fn) {
  ASSIGN_OR_RETURN(leaf, FindLeaf(from, nullptr));
  uint32_t page = leaf;
  while (page != 0) {
    uint32_t right;
    ASSIGN_OR_RETURN(entries, ReadLeaf(page, &right));
    for (const LeafEntry& e : entries) {
      if (e.key < from) {
        continue;
      }
      if (!fn(e.key, e.value)) {
        return common::OkStatus();
      }
    }
    page = right;
  }
  return common::OkStatus();
}

Result<uint64_t> BTree::CountForTest() {
  uint64_t n = 0;
  RETURN_IF_ERROR(Scan("", [&](const std::string&, const std::string&) {
    n++;
    return true;
  }));
  return n;
}

}  // namespace minidb
