// TPC-C workload over MiniDb (paper §6.3, Figure 11 / Table 8).
//
// Implements the five transaction types (New-Order, Payment, Order-Status,
// Delivery, Stock-Level) with the specification's access patterns: NURand
// key skew, customer lookup by last name through a secondary index (the
// paper builds secondary indexes on customer and orders), and the official
// 44/44/4/4/4 mix. Scale parameters default to a laptop-size database
// (1 warehouse, 10 districts) and can be raised to spec scale.

#ifndef SRC_APPS_MINIDB_TPCC_H_
#define SRC_APPS_MINIDB_TPCC_H_

#include <string>

#include "src/apps/minidb/minidb.h"
#include "src/common/rand.h"

namespace minidb {

struct TpccConfig {
  uint32_t warehouses = 1;
  uint32_t districts = 10;
  uint32_t customers_per_district = 300;  // spec: 3000
  uint32_t items = 10000;                 // spec: 100000
  uint32_t initial_orders_per_district = 100;
  uint64_t seed = 1234;
};

class Tpcc {
 public:
  Tpcc(MiniDb* db, TpccConfig cfg) : db_(db), cfg_(cfg), rng_(cfg.seed) {}

  // Creates and populates all nine tables plus the two secondary indexes.
  Status Load();

  // One transaction each; all wrapped in Begin/Commit.
  Status NewOrder();
  Status Payment();
  Status OrderStatus();
  Status Delivery();
  Status StockLevel();

  // One transaction drawn from the Table 8 mix (44/44/4/4/4).
  Status Mixed();

  uint64_t committed() const { return committed_; }

 private:
  uint32_t NURand(uint32_t a, uint32_t x, uint32_t y);
  std::string LastName(uint32_t num);
  // Picks a customer id: 60% by id, 40% by last-name index (per spec).
  Result<uint32_t> PickCustomer(uint32_t w, uint32_t d);

  MiniDb* db_;
  TpccConfig cfg_;
  common::Rng rng_;
  uint64_t committed_ = 0;
  uint64_t history_seq_ = 0;
};

}  // namespace minidb

#endif  // SRC_APPS_MINIDB_TPCC_H_
