// A SQLite-style pager: a page cache over one database file with a rollback
// journal for transaction atomicity.
//
// Commit protocol (the SQLite classic): before a page is first modified in a
// transaction its pre-image is appended to `<db>-journal`; at commit the
// journal is fsynced, dirty pages are written to the database file, the
// database is fsynced, and the journal is deleted. A crash before journal
// deletion rolls back from the journal at next open.
//
// This is the I/O pattern TPC-C-over-SQLite exercises in the paper's §6.3.

#ifndef SRC_APPS_MINIDB_PAGER_H_
#define SRC_APPS_MINIDB_PAGER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/vfs/vfs.h"

namespace minidb {

using common::Err;
using common::Result;
using common::Status;

inline constexpr size_t kDbPageSize = 4096;

class Pager {
 public:
  static Result<std::unique_ptr<Pager>> Open(vfs::FileSystem* fs, const std::string& path);
  ~Pager();

  // Page numbers are 1-based; page 1 is reserved for the application header.
  uint32_t page_count() const { return page_count_; }

  // Returns a cached copy of page `no` (pins it in the cache).
  Result<uint8_t*> GetPage(uint32_t no);
  // Marks a page dirty inside the current transaction, journalling its
  // pre-image first. Must be inside Begin/Commit.
  Status MarkDirty(uint32_t no);
  // Appends a fresh zeroed page; returns its number. Journals the header
  // implicitly (page_count changes are rolled back too).
  Result<uint32_t> AllocPage();

  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_txn() const { return in_txn_; }

  // Rolls back a hot journal left by a crash, if present. Called by Open.
  Status RecoverIfNeeded();

 private:
  Pager(vfs::FileSystem* fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  struct CachedPage {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
  };

  Status LoadPage(uint32_t no, CachedPage* out);
  Status JournalPage(uint32_t no);

  vfs::FileSystem* fs_;
  std::string path_;
  vfs::Cred cred_{0, 0};
  vfs::Fd db_fd_ = -1;

  uint32_t page_count_ = 1;
  std::unordered_map<uint32_t, CachedPage> cache_;

  bool in_txn_ = false;
  vfs::Fd journal_fd_ = -1;
  std::set<uint32_t> journaled_;
  std::set<uint32_t> dirty_;
  uint64_t journal_off_ = 0;
  uint32_t txn_start_page_count_ = 1;
};

}  // namespace minidb

#endif  // SRC_APPS_MINIDB_PAGER_H_
