// A minimal NVM journal/log ring used by the baseline file systems to pay
// realistic persistence costs for metadata: records are written with
// non-temporal stores and fenced, exactly like the journals (PMFS, ext4-jbd2
// analog) and logs (NOVA, Strata) they model.

#ifndef SRC_BASELINES_JOURNAL_H_
#define SRC_BASELINES_JOURNAL_H_

#include <atomic>
#include <cstring>

#include "src/audit/audit.h"
#include "src/nvm/nvm.h"

namespace baselines {

class JournalRing {
 public:
  // The ring occupies [start_off, start_off + bytes) of the device.
  JournalRing(nvm::NvmDevice* dev, uint64_t start_off, uint64_t bytes)
      : dev_(dev), start_(start_off), size_(bytes) {}

  // Appends a record of `n` payload bytes (plus a 16-byte header) and makes
  // it durable. Returns the record's NVM offset.
  uint64_t Append(const void* payload, size_t n) {
    // Concurrent appends may share a record's tail cacheline, so only the
    // flush-lint scope is tagged here; durability is asserted by the
    // single-threaded audit_test instead of inline annotations.
    AUDIT_SCOPE("JournalRing::Append");
    const uint64_t need = 16 + ((n + 63) & ~size_t{63});
    uint64_t pos = head_.fetch_add(need, std::memory_order_relaxed) % size_;
    if (pos + need > size_) {
      pos = 0;  // wrap (old records are implicitly retired)
    }
    const uint64_t off = start_ + pos;
    uint64_t hdr[2] = {0x4a524e4cu /* "JRNL" */, n};
    dev_->NtStoreBytes(off, hdr, sizeof(hdr));
    if (payload != nullptr && n > 0) {
      dev_->NtStoreBytes(off + 16, payload, n);
    }
    dev_->Sfence();
    return off;
  }

  // Appends a cost-only record (no meaningful payload) of `n` bytes — used
  // when the modelled system journals a structure we keep volatile.
  uint64_t AppendBlank(size_t n) {
    static const uint8_t kBlank[4096] = {};
    return Append(kBlank, n > sizeof(kBlank) ? sizeof(kBlank) : n);
  }

  // A separate commit mark with its own fence (undo-journal style: record,
  // fence, apply, fence, commit, fence).
  void Commit() {
    AUDIT_SCOPE("JournalRing::Commit");
    uint64_t pos = head_.fetch_add(64, std::memory_order_relaxed) % size_;
    if (pos + 64 > size_) {
      pos = 0;
    }
    uint64_t mark = 0x434f4d54;  // "COMT"
    dev_->NtStoreBytes(start_ + pos, &mark, sizeof(mark));
    dev_->Sfence();
  }

 private:
  nvm::NvmDevice* dev_;
  uint64_t start_;
  uint64_t size_;
  std::atomic<uint64_t> head_{0};
};

}  // namespace baselines

#endif  // SRC_BASELINES_JOURNAL_H_
