// Ext4-DAX-like baseline: a mature journaling kernel file system with page
// cache bypass (paper §2.1). Every operation is a system call; metadata
// mutations are journalled (jbd2 analog); data writes go in place with
// cacheline write-back.

#ifndef SRC_BASELINES_EXTDAX_H_
#define SRC_BASELINES_EXTDAX_H_

#include <memory>

#include "src/baselines/basefs.h"
#include "src/baselines/journal.h"

namespace baselines {

class ExtDaxFs final : public BaseFs {
 public:
  explicit ExtDaxFs(nvm::NvmDevice* dev, Config cfg = {});
  const char* Name() const override { return "Ext4-DAX"; }

 protected:
  void PersistMeta(Node* node, size_t bytes) override {
    // jbd2: journal the change, then a separate commit record.
    journal_.AppendBlank(bytes);
    journal_.Commit();
  }

  Status WriteData(Node& node, const void* buf, size_t n, uint64_t off) override {
    // In-place writes, regular stores + flush (the generic DAX iomap path).
    return WriteBlocksInPlace(node, buf, n, off, /*non_temporal=*/false, /*flush_lines=*/true);
  }

  Result<uint64_t> AllocPage() override { return alloc_->Alloc(); }
  void FreePage(uint64_t page_off) override { alloc_->Free(page_off); }

 private:
  JournalRing journal_;
  std::unique_ptr<PerCoreAlloc> alloc_;  // block groups give ext4 parallel allocation
};

}  // namespace baselines

#endif  // SRC_BASELINES_EXTDAX_H_
