// Shared skeleton for the baseline NVM file systems (Ext4-DAX-, PMFS-,
// NOVA-, Strata-like).
//
// The paper's evaluation compares *design points*: where the kernel boundary
// sits, how metadata is made crash-consistent (journal vs log vs log+digest),
// how data is written (in-place vs copy-on-write), and how allocation scales
// (global vs per-core). BaseFs implements the parts those designs share — a
// POSIX namespace with per-inode reader/writer locks and per-file block maps
// over the simulated NVM — and exposes hooks for the parts that differ.
//
// Metadata lives in DRAM (rebuilt at mount in the real systems); every
// metadata mutation still *pays* its persistence cost through the journal
// hook, so the measured write paths match each design's NVM traffic.

#ifndef SRC_BASELINES_BASEFS_H_
#define SRC_BASELINES_BASEFS_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/nvm/nvm.h"
#include "src/vfs/vfs.h"

namespace baselines {

using common::Err;
using common::Result;
using common::Status;

// A global page allocator guarded by one mutex — the design the paper blames
// for PMFS's scalability cliff.
class GlobalPageAlloc {
 public:
  // Manages pages [first_page, first_page + n_pages).
  GlobalPageAlloc(uint64_t first_page, uint64_t n_pages);
  Result<uint64_t> Alloc();  // returns byte offset
  void Free(uint64_t page_off);
  uint64_t free_pages() const;

 private:
  mutable common::Mutex mu_;
  std::vector<uint64_t> free_ GUARDED_BY(mu_);  // byte offsets
};

// Per-core (really per-thread-lane) allocator: each lane gets an equal share
// of the space up front, NOVA-style, so refills never contend.
class PerCoreAlloc {
 public:
  PerCoreAlloc(uint64_t first_page, uint64_t n_pages, int lanes);
  Result<uint64_t> Alloc();
  void Free(uint64_t page_off);

 private:
  struct alignas(64) Lane {
    common::Mutex mu;
    std::vector<uint64_t> free GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<Lane>> lanes_;
  Lane& MyLane();
};

class BaseFs : public vfs::FileSystem {
 public:
  struct Config {
    // Every operation crosses into the kernel (false only for Strata's
    // user-space paths).
    bool syscall_per_op = true;
    uint64_t crossing_ns = 300;
  };

  BaseFs(nvm::NvmDevice* dev, Config cfg);
  ~BaseFs() override;

  // Public so cross-cutting infrastructure (e.g. Strata's shared core) can
  // reference nodes; file-system users never touch these directly.
  struct Node : std::enable_shared_from_this<Node> {
    uint64_t id;
    vfs::FileType type = vfs::FileType::kRegular;
    uint16_t mode = 0;
    uint32_t uid = 0;
    uint32_t gid = 0;
    std::atomic<uint64_t> size{0};
    std::atomic<uint64_t> mtime_ns{0};
    std::string symlink_target;

    // Per-inode reader/writer lock ("all tested file systems use per-file
    // locks", §6.1). The block map and children are the guarded state, but
    // they are handed by reference into subclass hooks (WriteData/ReadData),
    // so the lock protocol is documented on the hooks rather than expressed
    // as GUARDED_BY — the analysis cannot see through the virtual dispatch.
    common::SharedMutex lock;

    // blk index -> NVM page byte offset (the durable home of the data).
    std::map<uint64_t, uint64_t> blocks;

    // Directory children.
    std::map<std::string, std::shared_ptr<Node>> children;

    // NVM home of the inode's persistent attributes (size/mtime): one
    // cacheline, written back on every size-changing operation so baselines
    // pay the same inode-persistence cost a real NVM file system does.
    uint64_t meta_home = 0;

    // Subclass cookie (e.g. Strata lease state).
    void* ext = nullptr;
  };
  using NodePtr = std::shared_ptr<Node>;

  // ---- vfs::FileSystem ----
  Result<vfs::Fd> Open(const vfs::Cred& cred, const std::string& path, uint32_t flags,
                       uint16_t mode) override;
  Status Close(vfs::Fd fd) override;
  Result<size_t> Read(vfs::Fd fd, void* buf, size_t n) override;
  Result<size_t> Write(vfs::Fd fd, const void* buf, size_t n) override;
  Result<size_t> Pread(vfs::Fd fd, void* buf, size_t n, uint64_t off) override;
  Result<size_t> Pwrite(vfs::Fd fd, const void* buf, size_t n, uint64_t off) override;
  Result<uint64_t> Lseek(vfs::Fd fd, int64_t off, int whence) override;
  Status Fsync(vfs::Fd fd) override;
  Result<vfs::StatBuf> Fstat(vfs::Fd fd) override;
  Status Ftruncate(vfs::Fd fd, uint64_t len) override;
  Result<vfs::Fd> Dup(vfs::Fd fd) override;

  Status Mkdir(const vfs::Cred& cred, const std::string& path, uint16_t mode) override;
  Status Rmdir(const vfs::Cred& cred, const std::string& path) override;
  Status Unlink(const vfs::Cred& cred, const std::string& path) override;
  Result<vfs::StatBuf> Stat(const vfs::Cred& cred, const std::string& path) override;
  Result<std::vector<vfs::DirEntry>> ReadDir(const vfs::Cred& cred,
                                             const std::string& path) override;
  Status Rename(const vfs::Cred& cred, const std::string& from, const std::string& to) override;
  Status Chmod(const vfs::Cred& cred, const std::string& path, uint16_t mode) override;
  Status Chown(const vfs::Cred& cred, const std::string& path, uint32_t uid,
               uint32_t gid) override;
  Status Symlink(const vfs::Cred& cred, const std::string& target,
                 const std::string& linkpath) override;
  Result<std::string> ReadLink(const vfs::Cred& cred, const std::string& path) override;

 protected:
  // ---- hooks ----
  // Called at every FS entry point; default charges a kernel crossing.
  virtual void EnterOp() {
    if (cfg_.syscall_per_op) {
      common::SpinNs(cfg_.crossing_ns);
    }
  }
  // Persist a metadata mutation of roughly `bytes` bytes (journal/log write).
  virtual void PersistMeta(Node* node, size_t bytes) = 0;
  // The data write path. Caller holds the node's unique lock.
  virtual Status WriteData(Node& node, const void* buf, size_t n, uint64_t off) = 0;
  // The data read path. Caller holds the node's shared lock. Default reads
  // the block map.
  virtual Result<size_t> ReadData(Node& node, void* buf, size_t n, uint64_t off);
  // Page allocation for data.
  virtual Result<uint64_t> AllocPage() = 0;
  virtual void FreePage(uint64_t page_off) = 0;
  // fsync for asynchronous designs; default no-op (synchronous designs).
  virtual Status SyncFile(Node& node) { return common::OkStatus(); }
  // Called before any access by `cred`; Strata overrides to manage leases.
  virtual void TouchLease(Node& node) {}

  // Helper for subclasses: in-place block write into the node's block map.
  Status WriteBlocksInPlace(Node& node, const void* buf, size_t n, uint64_t off,
                            bool non_temporal, bool flush_lines);

  NodePtr root() { return root_; }
  // Replaces the namespace root — used by per-process views (Strata LibFS)
  // that share one namespace.
  void SetRoot(NodePtr r) { root_ = std::move(r); }
  nvm::NvmDevice* dev() { return dev_; }
  const Config& config() const { return cfg_; }

  // Persists the node's size/mtime to its NVM meta slot (clwb + fence).
  void PersistInodeAttrs(Node& node);
  // Reserves a 64-byte inode-attribute slot in the meta region.
  uint64_t AllocMetaSlot();

  Result<NodePtr> ResolveNode(const std::string& path, bool follow_last, int depth = 0);
  Result<std::pair<NodePtr, std::string>> ResolveParent(const std::string& path);
  void FreeAllBlocks(Node& node);

 private:
  struct OpenFile {
    NodePtr node;
    std::atomic<uint64_t> pos{0};
    uint32_t flags = 0;
  };

  Result<vfs::Fd> InstallFd(std::shared_ptr<OpenFile> f);
  Result<std::shared_ptr<OpenFile>> GetFd(vfs::Fd fd);

  nvm::NvmDevice* dev_;
  Config cfg_;
  NodePtr root_;
  std::atomic<uint64_t> next_id_{2};
  std::atomic<uint64_t> next_meta_slot_;
  uint64_t meta_region_end_ = 0;

  common::Mutex fd_mu_;
  std::vector<std::shared_ptr<OpenFile>> fds_ GUARDED_BY(fd_mu_);
};

}  // namespace baselines

#endif  // SRC_BASELINES_BASEFS_H_
