// Strata-like baseline (paper §2.2, Table 2): a cross-media file system whose
// user-space library logs every update to a private NVM log; the kernel
// digests logs into the shared area.
//
// What matters for the reproduction:
//   * reads and log appends run in user space (no kernel crossing);
//   * every update is written twice: once to the private log, once more at
//     digestion (the "double-write problem");
//   * leases: one process owns a file/directory at a time. When another
//     process touches it, the owner's pending log must be digested and the
//     lease handed over — a kernel-coordinated, synchronous, slow path. This
//     is exactly why Table 2's shared append/create collapse (34 µs / 284 µs
//     at two processes).
//
// StrataCore is the shared kernel+device state; StrataFs is one process's
// library view (LibFS).

#ifndef SRC_BASELINES_STRATA_H_
#define SRC_BASELINES_STRATA_H_

#include <memory>
#include <vector>

#include "src/baselines/basefs.h"
#include "src/baselines/journal.h"
#include "src/common/mutex.h"

namespace baselines {

struct StrataConfig {
  uint64_t crossing_ns = 300;
  uint64_t log_bytes_per_process = 16ull << 20;
  // Fixed coordination latency of a lease revocation (kernel RPC to the
  // holder, waiting out in-flight operations), paid on top of digesting the
  // holder's pending entries.
  uint64_t lease_handoff_ns = 12000;
  // Digest when a process's log passes this fraction of its capacity.
  double digest_threshold = 0.75;
};

class StrataFs;

class StrataCore {
 public:
  StrataCore(nvm::NvmDevice* dev, StrataConfig cfg = {});
  ~StrataCore();

  // Creates the LibFS view for one process.
  std::unique_ptr<StrataFs> CreateProcessView();

  nvm::NvmDevice* dev() { return dev_; }
  const StrataConfig& config() const { return cfg_; }
  uint64_t digests_performed() const { return digests_.load(std::memory_order_relaxed); }

 private:
  friend class StrataFs;

  struct PendingBlock {
    std::shared_ptr<BaseFs::Node> node;
    uint64_t blk;
    uint64_t log_off;  // where the data currently lives (inside the log)
  };

  struct ProcessLog {
    uint32_t pid;
    uint64_t area_off;   // this process's slice of the log region
    uint64_t area_len;
    uint64_t used = 0;
    std::vector<PendingBlock> pending;
  };

  // Lease state hangs off BaseFs::Node::ext.
  struct Lease {
    std::atomic<uint32_t> owner{0};  // pid, 0 = unowned
  };

  ProcessLog* RegisterProcess();
  Lease* LeaseOf(BaseFs::Node& node);
  // Digest all pending entries of `log` into the shared area: the second
  // write. Charged as a kernel operation.
  void Digest(ProcessLog& log);
  // Called on every node access by `pid`: acquires/steals the lease,
  // digesting the previous owner's log synchronously on a handoff.
  void AcquireLease(BaseFs::Node& node, uint32_t pid);

  nvm::NvmDevice* dev_;
  StrataConfig cfg_;
  std::unique_ptr<GlobalPageAlloc> shared_alloc_;
  uint64_t log_region_off_;
  uint64_t log_region_len_;
  // One lock serialises the Strata data plane (log appends, digests, lease
  // transfers). Strata's measured flat multithread scaling (§6.2) reflects
  // exactly this kind of serialisation. Recursive because a lease handoff
  // digests the previous owner's log from inside an already-locked append —
  // reentrancy Clang's analysis cannot model, so the guarded members below
  // stay unannotated and the protocol lives in these comments.
  common::RecursiveMutex mu_;
  std::vector<std::unique_ptr<ProcessLog>> logs_;
  std::vector<std::unique_ptr<Lease>> leases_;
  std::atomic<uint64_t> digests_{0};
  uint32_t next_pid_ = 1;
  std::shared_ptr<BaseFs::Node> shared_root_;
};

class StrataFs final : public BaseFs {
 public:
  const char* Name() const override { return "Strata"; }

 protected:
  void EnterOp() override {}  // LibFS: reads and log appends skip the kernel

  void PersistMeta(Node* node, size_t bytes) override;
  Status WriteData(Node& node, const void* buf, size_t n, uint64_t off) override;
  Result<size_t> ReadData(Node& node, void* buf, size_t n, uint64_t off) override;
  Result<uint64_t> AllocPage() override;
  void FreePage(uint64_t page_off) override;
  void TouchLease(Node& node) override;
  Status SyncFile(Node& node) override { return common::OkStatus(); }  // log is durable

 private:
  friend class StrataCore;
  StrataFs(StrataCore* core, StrataCore::ProcessLog* log, uint32_t pid,
           std::shared_ptr<Node> shared_root);

  // Reserves `n` bytes in the private log, digesting first if full.
  uint64_t LogReserve(uint64_t n);

  StrataCore* core_;
  StrataCore::ProcessLog* log_;
  uint32_t pid_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_STRATA_H_
