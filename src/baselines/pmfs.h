// PMFS-like baseline (paper §2.1, §6.1): a journal-based kernel NVM file
// system with a single **global** allocator — the design whose contention the
// paper blames for PMFS's scalability cliff after 4 threads — and undo
// journalling for metadata.
//
// Data writes default to regular stores followed by clwb per cacheline; the
// `nocache` variant forces non-temporal writes, reproducing the surprising
// PMFS vs PMFS-nocache gap of Figure 8.

#ifndef SRC_BASELINES_PMFS_H_
#define SRC_BASELINES_PMFS_H_

#include <memory>

#include "src/baselines/basefs.h"
#include "src/baselines/journal.h"

namespace baselines {

struct PmfsConfig {
  bool nocache = false;  // PMFS-nocache variant (Figure 8)
};

class PmfsFs final : public BaseFs {
 public:
  PmfsFs(nvm::NvmDevice* dev, Config cfg = {}, PmfsConfig pcfg = {});
  const char* Name() const override { return pcfg_.nocache ? "PMFS-nocache" : "PMFS"; }

 protected:
  void PersistMeta(Node* node, size_t bytes) override {
    // Undo journal: log the old value, fence, apply, fence, commit, fence.
    journal_.AppendBlank(bytes);
    journal_.Commit();
  }

  Status WriteData(Node& node, const void* buf, size_t n, uint64_t off) override {
    return WriteBlocksInPlace(node, buf, n, off, /*non_temporal=*/pcfg_.nocache,
                              /*flush_lines=*/!pcfg_.nocache);
  }

  Result<uint64_t> AllocPage() override { return alloc_->Alloc(); }
  void FreePage(uint64_t page_off) override { alloc_->Free(page_off); }

 private:
  PmfsConfig pcfg_;
  JournalRing journal_;
  std::unique_ptr<GlobalPageAlloc> alloc_;  // the global allocator
};

}  // namespace baselines

#endif  // SRC_BASELINES_PMFS_H_
