// Constructors and write paths of the Ext4-DAX-, PMFS- and NOVA-like
// baselines. Strata lives in strata.cc.

#include <algorithm>
#include <cstring>

#include "src/baselines/extdax.h"
#include "src/baselines/nova.h"
#include "src/baselines/pmfs.h"

namespace baselines {

namespace {
// The first pages of each baseline's device hold its journal/log rings.
constexpr uint64_t kJournalBytes = 4ull << 20;
constexpr uint64_t kJournalPages = kJournalBytes / nvm::kPageSize;
// Top of the device: BaseFs inode-attribute slots (keep allocators out).
constexpr uint64_t kMetaPages = (16ull << 20) / nvm::kPageSize;
}  // namespace

// ---------------------------------------------------------------------------
// Ext4-DAX

ExtDaxFs::ExtDaxFs(nvm::NvmDevice* dev, Config cfg)
    : BaseFs(dev, cfg), journal_(dev, 0, kJournalBytes) {
  alloc_ = std::make_unique<PerCoreAlloc>(kJournalPages,
                                          dev->num_pages() - kJournalPages - kMetaPages,
                                          /*lanes=*/8);
}

// ---------------------------------------------------------------------------
// PMFS

PmfsFs::PmfsFs(nvm::NvmDevice* dev, Config cfg, PmfsConfig pcfg)
    : BaseFs(dev, cfg), pcfg_(pcfg), journal_(dev, 0, kJournalBytes) {
  alloc_ = std::make_unique<GlobalPageAlloc>(
      kJournalPages, dev->num_pages() - kJournalPages - kMetaPages);
}

// ---------------------------------------------------------------------------
// NOVA

NovaFs::NovaFs(nvm::NvmDevice* dev, Config cfg, NovaConfig ncfg)
    : BaseFs(dev, cfg),
      ncfg_(ncfg),
      log_(dev, 0, kJournalBytes / 2),
      journal_(dev, kJournalBytes / 2, kJournalBytes / 2) {
  alloc_ = std::make_unique<PerCoreAlloc>(kJournalPages,
                                          dev->num_pages() - kJournalPages - kMetaPages,
                                          /*lanes=*/16);
}

const char* NovaFs::Name() const {
  if (ncfg_.inplace) {
    return ncfg_.update_index ? "NOVAi" : "NOVAi-noindex";
  }
  return ncfg_.update_index ? "NOVA" : "NOVA-noindex";
}

Status NovaFs::WriteData(Node& node, const void* buf, size_t n, uint64_t off) {
  nvm::NvmDevice* d = dev();
  const auto* src = static_cast<const uint8_t*>(buf);

  if (ncfg_.inplace) {
    // NOVAi: journalled metadata + in-place data (non-temporal).
    journal_.AppendBlank(64);
    size_t done = 0;
    while (done < n) {
      const uint64_t blk = (off + done) / nvm::kPageSize;
      const uint64_t in_off = (off + done) % nvm::kPageSize;
      const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
      auto it = node.blocks.find(blk);
      uint64_t page;
      if (it == node.blocks.end()) {
        ASSIGN_OR_RETURN(p, AllocPage());
        if (chunk < nvm::kPageSize) {
          static const uint8_t kZeros[nvm::kPageSize] = {};
          d->NtStoreBytes(p, kZeros, nvm::kPageSize);
        }
        node.blocks[blk] = p;
        page = p;
      } else {
        page = it->second;
      }
      d->NtStoreBytes(page + in_off, src + done, chunk);
      // Per-write log entry recording the new tail state.
      log_.AppendBlank(64);
      if (ncfg_.update_index) {
        // The index walk/validation the -noindex variant skips.
        common::SpinNs(250);
      }
      done += chunk;
    }
    d->Sfence();
    journal_.Commit();
  } else {
    // Default NOVA: copy-on-write pages + per-inode log append + index
    // update + old-page free.
    size_t done = 0;
    while (done < n) {
      const uint64_t blk = (off + done) / nvm::kPageSize;
      const uint64_t in_off = (off + done) % nvm::kPageSize;
      const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
      ASSIGN_OR_RETURN(fresh, AllocPage());
      auto it = node.blocks.find(blk);
      const uint64_t old = it == node.blocks.end() ? 0 : it->second;
      if (chunk < nvm::kPageSize) {
        // Partial block: COW must carry over the untouched bytes.
        uint8_t page_buf[nvm::kPageSize];
        if (old != 0) {
          // zofs-lint: allow(raw-nvm-deref) — whole-page CoW copy of an allocator-owned page
          memcpy(page_buf, d->base() + old, nvm::kPageSize);
        } else {
          memset(page_buf, 0, nvm::kPageSize);
        }
        memcpy(page_buf + in_off, src + done, chunk);
        d->NtStoreBytes(fresh, page_buf, nvm::kPageSize);
      } else {
        d->NtStoreBytes(fresh, src + done, nvm::kPageSize);
      }
      // Log entry describing the write (file-write entry in NOVA's log).
      log_.AppendBlank(64);
      if (ncfg_.update_index) {
        // Radix-tree maintenance: walk + update + old-page accounting. The
        // paper isolates this cost with the -noindex variants (Figure 8);
        // the variants still keep the block map correct so that page-reuse
        // behaviour (and thus cache behaviour) is identical.
        common::SpinNs(250);
      }
      node.blocks[blk] = fresh;
      if (old != 0) {
        FreePage(old);
      }
      done += chunk;
    }
    d->Sfence();
  }

  const uint64_t end = off + n;
  if (end > node.size.load(std::memory_order_relaxed)) {
    node.size.store(end, std::memory_order_relaxed);
  }
  node.mtime_ns.store(common::NowNs(), std::memory_order_relaxed);
  return common::OkStatus();
}

}  // namespace baselines
