#include "src/baselines/strata.h"

#include <algorithm>
#include <cstring>

namespace baselines {

namespace {
constexpr uint32_t kMaxProcesses = 16;
}

// ---------------------------------------------------------------------------
// StrataCore

StrataCore::StrataCore(nvm::NvmDevice* dev, StrataConfig cfg)
    : dev_(dev), cfg_(cfg), log_region_off_(0) {
  log_region_len_ = cfg_.log_bytes_per_process * kMaxProcesses;
  uint64_t first_shared_page = log_region_len_ / nvm::kPageSize;
  shared_alloc_ =
      std::make_unique<GlobalPageAlloc>(first_shared_page, dev->num_pages() - first_shared_page);
  shared_root_ = std::make_shared<BaseFs::Node>();
  shared_root_->id = 1;
  shared_root_->type = vfs::FileType::kDirectory;
  shared_root_->mode = 0777;
}

StrataCore::~StrataCore() = default;

StrataCore::ProcessLog* StrataCore::RegisterProcess() {
  common::RecursiveMutexLock lk(&mu_);
  auto log = std::make_unique<ProcessLog>();
  log->pid = next_pid_++;
  log->area_off = log_region_off_ + (log->pid - 1) * cfg_.log_bytes_per_process;
  log->area_len = cfg_.log_bytes_per_process;
  logs_.push_back(std::move(log));
  return logs_.back().get();
}

std::unique_ptr<StrataFs> StrataCore::CreateProcessView() {
  ProcessLog* log = RegisterProcess();
  return std::unique_ptr<StrataFs>(new StrataFs(this, log, log->pid, shared_root_));
}

StrataCore::Lease* StrataCore::LeaseOf(BaseFs::Node& node) {
  common::RecursiveMutexLock lk(&mu_);
  if (node.ext == nullptr) {
    leases_.push_back(std::make_unique<Lease>());
    node.ext = leases_.back().get();
  }
  return static_cast<Lease*>(node.ext);
}

void StrataCore::Digest(ProcessLog& log) {
  // The kernel applies every pending log entry to the shared area: the
  // second write of Strata's double-write problem.
  common::SpinNs(cfg_.crossing_ns);
  for (const PendingBlock& pb : log.pending) {
    auto it = pb.node->blocks.find(pb.blk);
    if (it == pb.node->blocks.end() || it->second != pb.log_off) {
      continue;  // superseded by a later write
    }
    auto page = shared_alloc_->Alloc();
    if (!page.ok()) {
      continue;  // shared area exhausted; drop on the floor (bench-only path)
    }
    // zofs-lint: allow(raw-nvm-deref) — digest copies whole pages out of the private log area
    dev_->NtStoreBytes(*page, dev_->base() + pb.log_off, nvm::kPageSize);
    it->second = *page;
  }
  dev_->Sfence();
  log.pending.clear();
  log.used = 0;
  digests_.fetch_add(1, std::memory_order_relaxed);
}

void StrataCore::AcquireLease(BaseFs::Node& node, uint32_t pid) {
  Lease* lease = LeaseOf(node);
  uint32_t owner = lease->owner.load(std::memory_order_acquire);
  if (owner == pid) {
    return;
  }
  common::RecursiveMutexLock lk(&mu_);
  owner = lease->owner.load(std::memory_order_acquire);
  if (owner == pid) {
    return;
  }
  if (owner != 0) {
    // Lease handoff: revoke from the current owner — a kernel-coordinated
    // RPC that waits for the owner to quiesce and digests its pending log
    // before the lease can move (Table 2's collapse).
    common::SpinNs(cfg_.lease_handoff_ns);
    for (auto& log : logs_) {
      if (log->pid == owner) {
        Digest(*log);
        break;
      }
    }
  } else {
    // First acquisition: one kernel round-trip.
    common::SpinNs(cfg_.crossing_ns);
  }
  lease->owner.store(pid, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// StrataFs

StrataFs::StrataFs(StrataCore* core, StrataCore::ProcessLog* log, uint32_t pid,
                   std::shared_ptr<Node> shared_root)
    : BaseFs(core->dev(), Config{.syscall_per_op = false, .crossing_ns = core->config().crossing_ns}),
      core_(core),
      log_(log),
      pid_(pid) {
  SetRoot(std::move(shared_root));
}

void StrataFs::TouchLease(Node& node) { core_->AcquireLease(node, pid_); }

uint64_t StrataFs::LogReserve(uint64_t n) {
  // Caller holds core_->mu_.
  if (log_->used + n >
      static_cast<uint64_t>(static_cast<double>(log_->area_len) * core_->config().digest_threshold)) {
    core_->Digest(*log_);
  }
  uint64_t off = log_->area_off + log_->used;
  log_->used += n;
  return off;
}

void StrataFs::PersistMeta(Node* node, size_t bytes) {
  common::RecursiveMutexLock lk(&core_->mu_);
  // Strata writes two logs per namespace mutation to keep metadata
  // consistent (§2.2: "Strata has to write two logs for each create").
  static const uint8_t kBlank[512] = {};
  for (int i = 0; i < 2; i++) {
    uint64_t off = LogReserve(64 + ((bytes + 63) & ~size_t{63}));
    core_->dev()->NtStoreBytes(off, kBlank, std::min<size_t>(bytes + 64, sizeof(kBlank)));
    core_->dev()->Sfence();
  }
}

Status StrataFs::WriteData(Node& node, const void* buf, size_t n, uint64_t off) {
  common::RecursiveMutexLock lk(&core_->mu_);
  nvm::NvmDevice* d = core_->dev();
  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    // Every write lands in the private log as a whole page image (header +
    // page); partial writes carry over the current contents so the log entry
    // is self-contained.
    const uint64_t entry = LogReserve(64 + nvm::kPageSize);
    const uint64_t data_off = entry + 64;
    uint64_t hdr[2] = {0x53545241u /* "STRA" */, blk};
    d->NtStoreBytes(entry, hdr, sizeof(hdr));
    if (chunk == nvm::kPageSize) {
      d->NtStoreBytes(data_off, src + done, nvm::kPageSize);
    } else {
      uint8_t page_buf[nvm::kPageSize];
      auto it = node.blocks.find(blk);
      if (it != node.blocks.end()) {
        // zofs-lint: allow(raw-nvm-deref) — whole-page CoW copy of an allocator-owned page
        memcpy(page_buf, d->base() + it->second, nvm::kPageSize);
      } else {
        memset(page_buf, 0, nvm::kPageSize);
      }
      memcpy(page_buf + in_off, src + done, chunk);
      d->NtStoreBytes(data_off, page_buf, nvm::kPageSize);
    }
    d->Sfence();
    // Point the block at the log entry; digestion moves it to the shared
    // area later. A superseded shared page goes back to the allocator.
    auto it = node.blocks.find(blk);
    if (it != node.blocks.end() && it->second >= core_->log_region_len_) {
      core_->shared_alloc_->Free(it->second);
    }
    node.blocks[blk] = data_off;
    log_->pending.push_back(StrataCore::PendingBlock{node.shared_from_this(), blk, data_off});
    done += chunk;
  }
  const uint64_t end = off + n;
  if (end > node.size.load(std::memory_order_relaxed)) {
    node.size.store(end, std::memory_order_relaxed);
  }
  node.mtime_ns.store(common::NowNs(), std::memory_order_relaxed);
  return common::OkStatus();
}

Result<size_t> StrataFs::ReadData(Node& node, void* buf, size_t n, uint64_t off) {
  common::RecursiveMutexLock lk(&core_->mu_);
  return BaseFs::ReadData(node, buf, n, off);
}

Result<uint64_t> StrataFs::AllocPage() { return core_->shared_alloc_->Alloc(); }

void StrataFs::FreePage(uint64_t page_off) {
  if (page_off < core_->log_region_len_) {
    return;  // log space is reclaimed wholesale at digestion
  }
  core_->shared_alloc_->Free(page_off);
}

}  // namespace baselines
