#include "src/baselines/basefs.h"

#include <algorithm>
#include <cstring>

#include "src/zofs/alloc.h"  // CurrentTid

namespace baselines {

// ---------------------------------------------------------------------------
// Allocators

GlobalPageAlloc::GlobalPageAlloc(uint64_t first_page, uint64_t n_pages) {
  free_.reserve(n_pages);
  // LIFO order so recently freed (cache-warm) pages are reused first.
  for (uint64_t p = first_page + n_pages; p > first_page; p--) {
    free_.push_back((p - 1) * nvm::kPageSize);
  }
}

Result<uint64_t> GlobalPageAlloc::Alloc() {
  common::MutexLock lk(&mu_);
  if (free_.empty()) {
    return Err::kNoSpc;
  }
  uint64_t off = free_.back();
  free_.pop_back();
  return off;
}

void GlobalPageAlloc::Free(uint64_t page_off) {
  common::MutexLock lk(&mu_);
  free_.push_back(page_off);
}

uint64_t GlobalPageAlloc::free_pages() const {
  common::MutexLock lk(&mu_);
  return free_.size();
}

PerCoreAlloc::PerCoreAlloc(uint64_t first_page, uint64_t n_pages, int lanes) {
  lanes_.reserve(lanes);
  uint64_t per = n_pages / lanes;
  for (int i = 0; i < lanes; i++) {
    auto lane = std::make_unique<Lane>();
    uint64_t start = first_page + per * i;
    uint64_t len = (i == lanes - 1) ? n_pages - per * i : per;
    lane->free.reserve(len);
    for (uint64_t p = start + len; p > start; p--) {
      lane->free.push_back((p - 1) * nvm::kPageSize);
    }
    lanes_.push_back(std::move(lane));
  }
}

PerCoreAlloc::Lane& PerCoreAlloc::MyLane() {
  return *lanes_[zofs::CurrentTid() % lanes_.size()];
}

Result<uint64_t> PerCoreAlloc::Alloc() {
  Lane& mine = MyLane();
  {
    common::MutexLock lk(&mine.mu);
    if (!mine.free.empty()) {
      uint64_t off = mine.free.back();
      mine.free.pop_back();
      return off;
    }
  }
  // Fall back to stealing from other lanes when ours is exhausted.
  for (auto& lane : lanes_) {
    common::MutexLock lk(&lane->mu);
    if (!lane->free.empty()) {
      uint64_t off = lane->free.back();
      lane->free.pop_back();
      return off;
    }
  }
  return Err::kNoSpc;
}

void PerCoreAlloc::Free(uint64_t page_off) {
  Lane& mine = MyLane();
  common::MutexLock lk(&mine.mu);
  mine.free.push_back(page_off);
}

// ---------------------------------------------------------------------------
// BaseFs

// The top of the device is reserved for inode-attribute slots (64 B each).
static constexpr uint64_t kMetaRegionBytes = 16ull << 20;

BaseFs::BaseFs(nvm::NvmDevice* dev, Config cfg) : dev_(dev), cfg_(cfg) {
  next_meta_slot_ = dev->size() - kMetaRegionBytes;
  meta_region_end_ = dev->size();
  root_ = std::make_shared<Node>();
  root_->id = 1;
  root_->type = vfs::FileType::kDirectory;
  root_->mode = 0777;
  root_->mtime_ns = common::NowNs();
}

BaseFs::~BaseFs() = default;

uint64_t BaseFs::AllocMetaSlot() {
  uint64_t slot = next_meta_slot_.fetch_add(nvm::kCachelineSize, std::memory_order_relaxed);
  if (slot + nvm::kCachelineSize > meta_region_end_) {
    return 0;  // out of slots: skip the charge rather than fail the FS
  }
  return slot;
}

void BaseFs::PersistInodeAttrs(Node& node) {
  if (node.meta_home == 0) {
    return;
  }
  dev_->Store64(node.meta_home, node.size.load(std::memory_order_relaxed));
  dev_->Store64(node.meta_home + 8, node.mtime_ns.load(std::memory_order_relaxed));
  dev_->PersistRange(node.meta_home, 16);
}

Result<BaseFs::NodePtr> BaseFs::ResolveNode(const std::string& path, bool follow_last,
                                            int depth) {
  if (depth > 8) {
    return Err::kLoop;
  }
  ASSIGN_OR_RETURN(parts, vfs::SplitPath(vfs::NormalizePath(path)));
  NodePtr cur = root_;
  for (size_t i = 0; i < parts.size(); i++) {
    NodePtr child;
    {
      common::ReaderMutexLock lk(&cur->lock);
      if (cur->type != vfs::FileType::kDirectory) {
        return Err::kNotDir;
      }
      auto it = cur->children.find(parts[i]);
      if (it == cur->children.end()) {
        return Err::kNoEnt;
      }
      child = it->second;
    }
    bool is_last = (i + 1 == parts.size());
    if (child->type == vfs::FileType::kSymlink && (!is_last || follow_last)) {
      std::string rest;
      for (size_t j = i + 1; j < parts.size(); j++) {
        rest += "/" + parts[j];
      }
      std::string walked = "/";
      for (size_t j = 0; j < i; j++) {
        walked += parts[j] + "/";
      }
      std::string target = child->symlink_target;
      std::string next =
          target.starts_with("/") ? target + rest : walked + target + rest;
      return ResolveNode(vfs::NormalizePath(next), follow_last, depth + 1);
    }
    cur = child;
  }
  return cur;
}

Result<std::pair<BaseFs::NodePtr, std::string>> BaseFs::ResolveParent(const std::string& path) {
  ASSIGN_OR_RETURN(pp, vfs::SplitParent(vfs::NormalizePath(path)));
  ASSIGN_OR_RETURN(parent, ResolveNode(pp.first, true));
  if (parent->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  return std::make_pair(parent, pp.second);
}

Result<size_t> BaseFs::ReadData(Node& node, void* buf, size_t n, uint64_t off) {
  const uint64_t size = node.size.load(std::memory_order_relaxed);
  if (off >= size || n == 0) {
    return size_t{0};
  }
  n = std::min<uint64_t>(n, size - off);
  auto* dst = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    auto it = node.blocks.find(blk);
    if (it == node.blocks.end()) {
      memset(dst + done, 0, chunk);
    } else {
      // zofs-lint: allow(raw-nvm-deref) — bulk copy out of an allocator-owned block offset
      memcpy(dst + done, dev_->base() + it->second + in_off, chunk);
    }
    done += chunk;
  }
  return done;
}

Status BaseFs::WriteBlocksInPlace(Node& node, const void* buf, size_t n, uint64_t off,
                                  bool non_temporal, bool flush_lines) {
  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const uint64_t blk = (off + done) / nvm::kPageSize;
    const uint64_t in_off = (off + done) % nvm::kPageSize;
    const size_t chunk = std::min<size_t>(n - done, nvm::kPageSize - in_off);
    auto it = node.blocks.find(blk);
    uint64_t page;
    if (it == node.blocks.end()) {
      ASSIGN_OR_RETURN(p, AllocPage());
      if (chunk < nvm::kPageSize) {
        static const uint8_t kZeros[nvm::kPageSize] = {};
        dev_->NtStoreBytes(p, kZeros, nvm::kPageSize);
      }
      node.blocks[blk] = p;
      page = p;
    } else {
      page = it->second;
    }
    if (non_temporal) {
      dev_->NtStoreBytes(page + in_off, src + done, chunk);
    } else {
      dev_->StoreBytes(page + in_off, src + done, chunk);
      if (flush_lines) {
        dev_->Clwb(page + in_off, chunk);
      }
    }
    done += chunk;
  }
  dev_->Sfence();
  const uint64_t end = off + n;
  if (end > node.size.load(std::memory_order_relaxed)) {
    node.size.store(end, std::memory_order_relaxed);
  }
  node.mtime_ns.store(common::NowNs(), std::memory_order_relaxed);
  return common::OkStatus();
}

void BaseFs::FreeAllBlocks(Node& node) {
  for (auto& [blk, page] : node.blocks) {
    FreePage(page);
  }
  node.blocks.clear();
  node.size.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// FD plumbing

Result<vfs::Fd> BaseFs::InstallFd(std::shared_ptr<OpenFile> f) {
  common::MutexLock lk(&fd_mu_);
  for (size_t i = 0; i < fds_.size(); i++) {
    if (fds_[i] == nullptr) {
      fds_[i] = std::move(f);
      return static_cast<vfs::Fd>(i);
    }
  }
  fds_.push_back(std::move(f));
  return static_cast<vfs::Fd>(fds_.size() - 1);
}

Result<std::shared_ptr<BaseFs::OpenFile>> BaseFs::GetFd(vfs::Fd fd) {
  common::MutexLock lk(&fd_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || fds_[fd] == nullptr) {
    return Err::kBadF;
  }
  return fds_[fd];
}

// ---------------------------------------------------------------------------
// vfs::FileSystem surface

Result<vfs::Fd> BaseFs::Open(const vfs::Cred& cred, const std::string& path, uint32_t flags,
                             uint16_t mode) {
  EnterOp();
  auto node_res = ResolveNode(path, true);
  NodePtr node;
  if (node_res.ok()) {
    if ((flags & vfs::kCreate) && (flags & vfs::kExcl)) {
      return Err::kExist;
    }
    node = *node_res;
  } else {
    if (node_res.error() != Err::kNoEnt || !(flags & vfs::kCreate)) {
      return node_res.error();
    }
    ASSIGN_OR_RETURN(pp, ResolveParent(path));
    auto& [parent, leaf] = pp;
    common::WriterMutexLock lk(&parent->lock);
    TouchLease(*parent);
    auto it = parent->children.find(leaf);
    if (it != parent->children.end()) {
      node = it->second;
    } else {
      node = std::make_shared<Node>();
      node->id = next_id_.fetch_add(1);
      node->meta_home = AllocMetaSlot();
      node->type = vfs::FileType::kRegular;
      node->mode = mode;
      node->uid = cred.uid;
      node->gid = cred.gid;
      node->mtime_ns = common::NowNs();
      parent->children[leaf] = node;
      parent->mtime_ns.store(common::NowNs(), std::memory_order_relaxed);
      // Both the new inode and the directory entry must be persisted.
      PersistMeta(node.get(), 128);
      PersistMeta(parent.get(), 128 + leaf.size());
    }
  }
  if (node->type == vfs::FileType::kDirectory && (flags & vfs::kWrite)) {
    return Err::kIsDir;
  }
  if (!vfs::PermitsAccess(cred, node->uid, node->gid, node->mode, (flags & vfs::kRead) != 0,
                          (flags & vfs::kWrite) != 0)) {
    return Err::kAcces;
  }
  // O_TRUNC without write access is undefined per POSIX; ignore it rather
  // than destroy data through a read-only open (matches FsLib::Open).
  if ((flags & vfs::kTrunc) && (flags & vfs::kWrite)) {
    common::WriterMutexLock lk(&node->lock);
    TouchLease(*node);
    FreeAllBlocks(*node);
    PersistMeta(node.get(), 64);
  }
  auto f = std::make_shared<OpenFile>();
  f->node = node;
  f->flags = flags;
  return InstallFd(std::move(f));
}

Status BaseFs::Close(vfs::Fd fd) {
  common::MutexLock lk(&fd_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || fds_[fd] == nullptr) {
    return Err::kBadF;
  }
  fds_[fd] = nullptr;
  return common::OkStatus();
}

Result<size_t> BaseFs::Read(vfs::Fd fd, void* buf, size_t n) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  common::ReaderMutexLock lk(&f->node->lock);
  TouchLease(*f->node);
  uint64_t pos = f->pos.load(std::memory_order_relaxed);
  ASSIGN_OR_RETURN(done, ReadData(*f->node, buf, n, pos));
  f->pos.fetch_add(done, std::memory_order_relaxed);
  return done;
}

Result<size_t> BaseFs::Write(vfs::Fd fd, const void* buf, size_t n) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  common::WriterMutexLock lk(&f->node->lock);
  TouchLease(*f->node);
  uint64_t pos = (f->flags & vfs::kAppend) ? f->node->size.load(std::memory_order_relaxed)
                                           : f->pos.load(std::memory_order_relaxed);
  RETURN_IF_ERROR(WriteData(*f->node, buf, n, pos));
  PersistInodeAttrs(*f->node);
  f->pos.store(pos + n, std::memory_order_relaxed);
  return n;
}

Result<size_t> BaseFs::Pread(vfs::Fd fd, void* buf, size_t n, uint64_t off) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  common::ReaderMutexLock lk(&f->node->lock);
  TouchLease(*f->node);
  return ReadData(*f->node, buf, n, off);
}

Result<size_t> BaseFs::Pwrite(vfs::Fd fd, const void* buf, size_t n, uint64_t off) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  common::WriterMutexLock lk(&f->node->lock);
  TouchLease(*f->node);
  RETURN_IF_ERROR(WriteData(*f->node, buf, n, off));
  PersistInodeAttrs(*f->node);
  return n;
}

Result<uint64_t> BaseFs::Lseek(vfs::Fd fd, int64_t off, int whence) {
  ASSIGN_OR_RETURN(f, GetFd(fd));
  int64_t base;
  switch (whence) {
    case 0:
      base = 0;
      break;
    case 1:
      base = static_cast<int64_t>(f->pos.load(std::memory_order_relaxed));
      break;
    case 2:
      base = static_cast<int64_t>(f->node->size.load(std::memory_order_relaxed));
      break;
    default:
      return Err::kInval;
  }
  int64_t target = base + off;
  if (target < 0) {
    return Err::kInval;
  }
  f->pos.store(static_cast<uint64_t>(target), std::memory_order_relaxed);
  return static_cast<uint64_t>(target);
}

Status BaseFs::Fsync(vfs::Fd fd) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  common::WriterMutexLock lk(&f->node->lock);
  return SyncFile(*f->node);
}

Result<vfs::StatBuf> BaseFs::Fstat(vfs::Fd fd) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  Node& n = *f->node;
  vfs::StatBuf st;
  st.ino = n.id;
  st.type = n.type;
  st.mode = n.mode;
  st.uid = n.uid;
  st.gid = n.gid;
  st.size = n.size.load(std::memory_order_relaxed);
  st.mtime_ns = n.mtime_ns.load(std::memory_order_relaxed);
  return st;
}

Status BaseFs::Ftruncate(vfs::Fd fd, uint64_t len) {
  EnterOp();
  ASSIGN_OR_RETURN(f, GetFd(fd));
  Node& node = *f->node;
  common::WriterMutexLock lk(&node.lock);
  TouchLease(node);
  const uint64_t old = node.size.load(std::memory_order_relaxed);
  if (len < old) {
    uint64_t first_dead = (len + nvm::kPageSize - 1) / nvm::kPageSize;
    for (auto it = node.blocks.lower_bound(first_dead); it != node.blocks.end();) {
      FreePage(it->second);
      it = node.blocks.erase(it);
    }
  }
  node.size.store(len, std::memory_order_relaxed);
  PersistMeta(&node, 64);
  return common::OkStatus();
}

Result<vfs::Fd> BaseFs::Dup(vfs::Fd fd) {
  ASSIGN_OR_RETURN(f, GetFd(fd));
  return InstallFd(f);
}

Status BaseFs::Mkdir(const vfs::Cred& cred, const std::string& path, uint16_t mode) {
  EnterOp();
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  common::WriterMutexLock lk(&parent->lock);
  TouchLease(*parent);
  if (parent->children.count(leaf)) {
    return Err::kExist;
  }
  auto node = std::make_shared<Node>();
  node->id = next_id_.fetch_add(1);
  node->meta_home = AllocMetaSlot();
  node->type = vfs::FileType::kDirectory;
  node->mode = mode;
  node->uid = cred.uid;
  node->gid = cred.gid;
  node->mtime_ns = common::NowNs();
  parent->children[leaf] = node;
  PersistMeta(node.get(), 128);
  PersistMeta(parent.get(), 128 + leaf.size());
  return common::OkStatus();
}

Status BaseFs::Rmdir(const vfs::Cred& cred, const std::string& path) {
  EnterOp();
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  common::WriterMutexLock lk(&parent->lock);
  TouchLease(*parent);
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  if (it->second->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  if (!it->second->children.empty()) {
    return Err::kNotEmpty;
  }
  parent->children.erase(it);
  PersistMeta(parent.get(), 64 + leaf.size());
  return common::OkStatus();
}

Status BaseFs::Unlink(const vfs::Cred& cred, const std::string& path) {
  EnterOp();
  ASSIGN_OR_RETURN(pp, ResolveParent(path));
  auto& [parent, leaf] = pp;
  common::WriterMutexLock lk(&parent->lock);
  TouchLease(*parent);
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  if (it->second->type == vfs::FileType::kDirectory) {
    return Err::kIsDir;
  }
  NodePtr node = it->second;
  parent->children.erase(it);
  PersistMeta(parent.get(), 64 + leaf.size());
  common::WriterMutexLock nlk(&node->lock);
  FreeAllBlocks(*node);
  return common::OkStatus();
}

Result<vfs::StatBuf> BaseFs::Stat(const vfs::Cred& cred, const std::string& path) {
  EnterOp();
  ASSIGN_OR_RETURN(node, ResolveNode(path, true));
  vfs::StatBuf st;
  st.ino = node->id;
  st.type = node->type;
  st.mode = node->mode;
  st.uid = node->uid;
  st.gid = node->gid;
  st.size = node->size.load(std::memory_order_relaxed);
  st.mtime_ns = node->mtime_ns.load(std::memory_order_relaxed);
  return st;
}

Result<std::vector<vfs::DirEntry>> BaseFs::ReadDir(const vfs::Cred& cred,
                                                   const std::string& path) {
  EnterOp();
  ASSIGN_OR_RETURN(node, ResolveNode(path, true));
  if (node->type != vfs::FileType::kDirectory) {
    return Err::kNotDir;
  }
  common::ReaderMutexLock lk(&node->lock);
  std::vector<vfs::DirEntry> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    out.push_back(vfs::DirEntry{name, child->id, child->type});
  }
  return out;
}

Status BaseFs::Rename(const vfs::Cred& cred, const std::string& from, const std::string& to) {
  EnterOp();
  const std::string nfrom = vfs::NormalizePath(from);
  const std::string nto = vfs::NormalizePath(to);
  if (nfrom == nto) {
    return common::OkStatus();
  }
  ASSIGN_OR_RETURN(sp, ResolveParent(nfrom));
  ASSIGN_OR_RETURN(dp, ResolveParent(nto));
  auto& [sparent, sleaf] = sp;
  auto& [dparent, dleaf] = dp;

  // Lock parents in address order.
  if (sparent == dparent) {
    common::WriterMutexLock lk(&sparent->lock);
    auto it = sparent->children.find(sleaf);
    if (it == sparent->children.end()) {
      return Err::kNoEnt;
    }
    NodePtr node = it->second;
    sparent->children.erase(it);
    sparent->children[dleaf] = node;
    PersistMeta(sparent.get(), 128);
    return common::OkStatus();
  }
  Node* first = sparent.get() < dparent.get() ? sparent.get() : dparent.get();
  Node* second = sparent.get() < dparent.get() ? dparent.get() : sparent.get();
  common::WriterMutexLock lk1(&first->lock);
  common::WriterMutexLock lk2(&second->lock);
  auto it = sparent->children.find(sleaf);
  if (it == sparent->children.end()) {
    return Err::kNoEnt;
  }
  NodePtr node = it->second;
  sparent->children.erase(it);
  dparent->children[dleaf] = node;
  PersistMeta(sparent.get(), 128);
  PersistMeta(dparent.get(), 128);
  return common::OkStatus();
}

Status BaseFs::Chmod(const vfs::Cred& cred, const std::string& path, uint16_t mode) {
  EnterOp();
  ASSIGN_OR_RETURN(node, ResolveNode(path, true));
  if (!cred.IsRoot() && cred.uid != node->uid) {
    return Err::kPerm;
  }
  common::WriterMutexLock lk(&node->lock);
  node->mode = mode;
  PersistMeta(node.get(), 64);
  return common::OkStatus();
}

Status BaseFs::Chown(const vfs::Cred& cred, const std::string& path, uint32_t uid, uint32_t gid) {
  EnterOp();
  ASSIGN_OR_RETURN(node, ResolveNode(path, true));
  if (!cred.IsRoot()) {
    return Err::kPerm;
  }
  common::WriterMutexLock lk(&node->lock);
  node->uid = uid;
  node->gid = gid;
  PersistMeta(node.get(), 64);
  return common::OkStatus();
}

Status BaseFs::Symlink(const vfs::Cred& cred, const std::string& target,
                       const std::string& linkpath) {
  EnterOp();
  ASSIGN_OR_RETURN(pp, ResolveParent(linkpath));
  auto& [parent, leaf] = pp;
  common::WriterMutexLock lk(&parent->lock);
  if (parent->children.count(leaf)) {
    return Err::kExist;
  }
  auto node = std::make_shared<Node>();
  node->id = next_id_.fetch_add(1);
  node->meta_home = AllocMetaSlot();
  node->type = vfs::FileType::kSymlink;
  node->mode = 0777;
  node->uid = cred.uid;
  node->gid = cred.gid;
  node->symlink_target = target;
  node->size = target.size();
  node->mtime_ns = common::NowNs();
  parent->children[leaf] = node;
  PersistMeta(parent.get(), 128 + target.size());
  return common::OkStatus();
}

Result<std::string> BaseFs::ReadLink(const vfs::Cred& cred, const std::string& path) {
  EnterOp();
  ASSIGN_OR_RETURN(node, ResolveNode(path, false));
  if (node->type != vfs::FileType::kSymlink) {
    return Err::kInval;
  }
  return node->symlink_target;
}

}  // namespace baselines
