// NOVA-like baseline (paper §2.1, §6.1, Figure 8): a log-structured kernel
// NVM file system.
//
//   * per-core allocators — NOVA scales past the points where PMFS and ZoFS's
//     coffer_enlarge contend, because each core owns an equal share of the
//     free space up front;
//   * per-inode logs — every data or metadata change appends a log entry;
//   * copy-on-write data by default: a write allocates fresh pages, writes
//     them, appends the log entry, then updates the in-DRAM radix index and
//     frees the old pages. `inplace` (NOVAi) journals metadata and writes in
//     place instead. `-noindex` variants skip the index maintenance —
//     deliberately incorrect, used only to isolate the index cost (Fig. 8).

#ifndef SRC_BASELINES_NOVA_H_
#define SRC_BASELINES_NOVA_H_

#include <memory>

#include "src/baselines/basefs.h"
#include "src/baselines/journal.h"

namespace baselines {

struct NovaConfig {
  bool inplace = false;       // NOVAi
  bool update_index = true;   // false = -noindex variants
};

class NovaFs final : public BaseFs {
 public:
  NovaFs(nvm::NvmDevice* dev, Config cfg = {}, NovaConfig ncfg = {});
  const char* Name() const override;

 protected:
  void PersistMeta(Node* node, size_t bytes) override {
    // Log-structured metadata: one log entry append per change, plus the
    // log-tail pointer commit (its own flush + fence).
    log_.AppendBlank(bytes < 64 ? 64 : bytes);
    log_.Commit();
  }

  Status WriteData(Node& node, const void* buf, size_t n, uint64_t off) override;

  Result<uint64_t> AllocPage() override { return alloc_->Alloc(); }
  void FreePage(uint64_t page_off) override { alloc_->Free(page_off); }

 private:
  NovaConfig ncfg_;
  JournalRing log_;       // stands in for the per-inode logs
  JournalRing journal_;   // NOVAi's metadata journal
  std::unique_ptr<PerCoreAlloc> alloc_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_NOVA_H_
