// The µFS interface of Treasury's FSLibs (paper §3.2, Figure 4).
//
// FSLibs contains "a collection of FS libraries, which we call µFSs"; the
// dispatcher routes intercepted calls to the µFS registered for the coffer
// type. This header defines the contract a µFS implements. Two µFSs ship in
// this repository:
//   * zofs::ZoFs   — the paper's example µFS (type kCofferTypeZofs);
//   * logfs::LogFs — a log-structured µFS (type kCofferTypeLogFs), the
//     alternative design §5.3 sketches ("one can implement a journaled µFS
//     or a log-structured µFS in Treasury as well").

#ifndef SRC_UFS_MICROFS_H_
#define SRC_UFS_MICROFS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/vfs/vfs.h"

namespace ufs {

using common::Result;
using common::Status;

// A resolved file: the coffer it lives in plus a µFS-defined handle. The
// field keeps the name of the common case — ZoFS stores the inode page
// offset here; LogFS stores its file id.
struct NodeRef {
  uint32_t coffer_id = 0;
  uint64_t inode_off = 0;
};

// Offline-recovery accounting (paper §6.5's recovery experiment).
struct RecoveryStats {
  uint64_t user_ns = 0;
  uint64_t kernel_ns = 0;
  uint64_t pages_in_use = 0;
  uint64_t pages_reclaimed = 0;
  uint64_t dentries_cleared = 0;
};

class MicroFs {
 public:
  virtual ~MicroFs() = default;

  virtual const char* Name() const = 0;

  // ---- namespace (absolute, normalized paths) ----
  virtual Result<NodeRef> Lookup(const std::string& path, bool follow_last_symlink) = 0;
  virtual Result<NodeRef> Create(const std::string& path, uint16_t mode) = 0;
  virtual Result<NodeRef> OpenOrCreate(const std::string& path, uint16_t mode, bool* created) = 0;
  virtual Status Mkdir(const std::string& path, uint16_t mode) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rmdir(const std::string& path) = 0;
  virtual Result<vfs::StatBuf> StatNode(NodeRef node) = 0;
  virtual Result<std::vector<vfs::DirEntry>> ReadDir(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Chmod(const std::string& path, uint16_t mode) = 0;
  virtual Status Chown(const std::string& path, uint32_t uid, uint32_t gid) = 0;
  virtual Status Symlink(const std::string& target, const std::string& linkpath) = 0;
  virtual Result<std::string> ReadLink(const std::string& path) = 0;

  // ---- node data ----
  virtual Result<size_t> ReadAt(NodeRef node, void* buf, size_t n, uint64_t off) = 0;
  virtual Result<size_t> WriteAt(NodeRef node, const void* buf, size_t n, uint64_t off) = 0;
  virtual Result<uint64_t> Append(NodeRef node, const void* buf, size_t n) = 0;
  virtual Status TruncateNode(NodeRef node, uint64_t len) = 0;
  virtual Status EnsureAccess(NodeRef node, bool writable) = 0;
  // fsync(2): make every completed write to `node` durable. µFSs that
  // persist synchronously keep the default no-op; µFSs with deferred
  // durability (the ZoFS epoch batcher's staged appends) drain their staged
  // state here.
  virtual Status SyncNode(NodeRef node) { return common::OkStatus(); }
  // Heals a NodeRef across same-process page moves (no-op where irrelevant).
  virtual void FixNode(NodeRef* node) {}

  // ---- maintenance ----
  virtual Result<RecoveryStats> RecoverAll() = 0;
  // Marks the process dead: the destructor must not flush staged state,
  // drain channels, or otherwise touch the kernel — the KernFS reaper owns
  // the corpse. Default no-op for µFSs without deferred state.
  virtual void Abandon() {}
};

}  // namespace ufs

#endif  // SRC_UFS_MICROFS_H_
