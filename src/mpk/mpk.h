// Simulated Intel Memory Protection Keys (MPK).
//
// Real MPK stores a 4-bit key per page-table entry and checks each access
// against the per-thread PKRU register (2 bits per key: access-disable AD and
// write-disable WD), writable from user space via WRPKRU. This module
// reproduces those semantics in software:
//
//   * each simulated process owns a PageKeyTable (one key per NVM page) — the
//     analog of its page-table key bits, populated by KernFS on coffer_map;
//   * each thread carries a thread-local PKRU plus a binding to the page-key
//     table of the process it is executing in;
//   * the access hook installed on the NvmDevice checks every store (and
//     checked load) against PKRU, throwing ViolationError on a mismatch — the
//     analog of the MPK page fault, which FSLibs converts into a graceful
//     file-system error (paper §3.4.2).
//
// WrPkru() is a single thread-local word store, mirroring the ~16-cycle
// WRPKRU instruction the paper relies on for cheap window switches.

#ifndef SRC_MPK_MPK_H_
#define SRC_MPK_MPK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/result.h"
#include "src/nvm/nvm.h"

namespace mpk {

inline constexpr int kNumKeys = 16;
// Key 0 is the default key: regular memory, always accessible (matches the
// kernel's use of pkey 0 for all non-tagged pages).
inline constexpr uint8_t kDefaultKey = 0;

// One entry per NVM page for one simulated process — the analog of that
// process's page-table bits for the NVM region. Encoding:
//   bits 0..3  protection key (0..15)
//   bit  7     page is write-protected (PTE read-only; independent of MPK)
//   0xff       page not mapped in this process (access -> page fault)
// Updated only by KernFS while holding its lock; concurrent readers may
// briefly observe a stale entry during map/unmap, the software analog of a
// TLB-shootdown window. Entries are relaxed atomics so that window is a
// defined benign race (a stale key, never a torn value) rather than UB.
class PageKeyTable {
 public:
  PageKeyTable() = default;
  PageKeyTable(size_t n, uint8_t fill) { assign(n, fill); }

  void assign(size_t n, uint8_t fill) {
    entries_ = std::make_unique<std::atomic<uint8_t>[]>(n);
    size_ = n;
    for (size_t i = 0; i < n; i++) {
      entries_[i].store(fill, std::memory_order_relaxed);
    }
  }

  size_t size() const { return size_; }

  // Assignable proxy so call sites keep the vector-style `table[p] = key`.
  class Ref {
   public:
    explicit Ref(std::atomic<uint8_t>* a) : a_(a) {}
    operator uint8_t() const { return a_->load(std::memory_order_relaxed); }
    Ref& operator=(uint8_t v) {
      a_->store(v, std::memory_order_relaxed);
      return *this;
    }

   private:
    std::atomic<uint8_t>* a_;
  };

  Ref operator[](size_t i) { return Ref(&entries_[i]); }
  uint8_t operator[](size_t i) const { return entries_[i].load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<std::atomic<uint8_t>[]> entries_;
  size_t size_ = 0;
};

inline constexpr uint8_t kKeyMask = 0x0f;
inline constexpr uint8_t kPageReadOnly = 0x80;
inline constexpr uint8_t kUnmapped = 0xff;

// PKRU bit layout: bits (2k, 2k+1) = (AD, WD) for key k. AD=1 forbids any
// access, WD=1 forbids writes.
inline constexpr uint32_t AdBit(int key) { return 1u << (2 * key); }
inline constexpr uint32_t WdBit(int key) { return 1u << (2 * key + 1); }

// PKRU with every key except key 0 fully disabled — the state KernFS leaves a
// thread in after coffer_map returns (guideline G1: nothing accessible while
// application code runs).
inline constexpr uint32_t PkruDenyAll() {
  uint32_t v = 0;
  for (int k = 1; k < kNumKeys; k++) {
    v |= AdBit(k) | WdBit(k);
  }
  return v;
}

// PKRU that opens exactly one coffer key (guideline G2: at most one coffer
// accessible at a time).
inline constexpr uint32_t PkruAllowOnly(int key, bool writable) {
  uint32_t v = PkruDenyAll();
  v &= ~AdBit(key);
  if (writable) {
    v &= ~WdBit(key);
  }
  return v;
}

inline constexpr bool PkruAllows(uint32_t pkru, int key, bool is_write) {
  if (pkru & AdBit(key)) {
    return false;
  }
  if (is_write && (pkru & WdBit(key))) {
    return false;
  }
  return true;
}

// Raised on an MPK access violation; the simulated page fault.
struct ViolationError {
  uint64_t off;
  uint8_t key;
  bool is_write;
};

// ---- Thread state (the simulated PKRU register + current address space).

uint32_t RdPkru();
void WrPkru(uint32_t pkru);  // the WRPKRU analog

// Binds the calling thread to a process's page-key table. Passing nullptr
// detaches the thread (no MPK enforcement; used by baseline file systems,
// which predate Treasury's protection model).
void BindThreadToProcess(const PageKeyTable* table);
const PageKeyTable* CurrentTable();

// Installs the MPK check as the device's access hook. Call once per device.
void InstallDeviceHook(nvm::NvmDevice* dev);

// Explicit check used on read paths that go through raw pointers (reads
// don't always flow through device Load APIs for performance; µFS code calls
// this at access points). Throws ViolationError on a denied access.
void CheckAccess(uint64_t off, size_t len, bool is_write);

// Non-throwing variant: would CheckAccess succeed? µFS validators use this to
// vet a pointer loaded from persistent metadata *before* dereferencing it —
// the page-key table doubles as a hardware-backed ownership oracle (a page
// another coffer owns carries a different key, an unowned page is unmapped),
// so a corrupted block pointer is refused without taking the simulated fault.
// Returns true when no table is bound (no MPK enforcement).
bool ProbeAccess(uint64_t off, size_t len, bool is_write);

// Count of ViolationErrors raised on the calling thread. A violation is the
// simulated SIGSEGV: harnesses sample this around an operation to tell "the
// µFS detected the corruption and returned an error" apart from "the µFS
// dereferenced garbage and took a fault" even when both surface as an error
// at the FSLib boundary.
uint64_t ThreadViolationCount();

// RAII access window: saves PKRU, opens exactly one key, restores on scope
// exit. The µFS discipline from guidelines G1/G2.
class AccessWindow {
 public:
  AccessWindow(int key, bool writable) : saved_(RdPkru()), key_(key), writable_(writable) {
    WrPkru(PkruAllowOnly(key, writable));
    audit::NoteWindowOpen(key, writable);
  }
  ~AccessWindow() {
    audit::NoteWindowClose(key_, writable_);
    WrPkru(saved_);
  }
  AccessWindow(const AccessWindow&) = delete;
  AccessWindow& operator=(const AccessWindow&) = delete;

 private:
  uint32_t saved_;
  int key_;
  bool writable_;
};

}  // namespace mpk

#endif  // SRC_MPK_MPK_H_
