#include "src/mpk/mpk.h"

namespace mpk {

namespace {

struct ThreadState {
  uint32_t pkru = 0;  // all keys allowed until a process binds the thread
  const PageKeyTable* table = nullptr;
};

thread_local ThreadState g_tls;

common::Err DeviceHook(void* ctx, uint64_t off, size_t len, bool is_write) {
  CheckAccess(off, len, is_write);
  return common::Err::kOk;
}

}  // namespace

uint32_t RdPkru() { return g_tls.pkru; }

void WrPkru(uint32_t pkru) {
  g_tls.pkru = pkru;
  audit::NoteWrPkru(pkru);
}

void BindThreadToProcess(const PageKeyTable* table) {
  g_tls.table = table;
  g_tls.pkru = table == nullptr ? 0 : PkruDenyAll();
  // Keep the audit layer's PKRU shadow in sync: binding rewrites PKRU
  // without going through WrPkru.
  audit::NoteWrPkru(g_tls.pkru);
}

const PageKeyTable* CurrentTable() { return g_tls.table; }

void InstallDeviceHook(nvm::NvmDevice* dev) { dev->SetAccessHook(&DeviceHook, nullptr); }

void CheckAccess(uint64_t off, size_t len, bool is_write) {
  const PageKeyTable* table = g_tls.table;
  if (table == nullptr || len == 0) {
    return;  // thread not bound to a Treasury process: no MPK enforcement
  }
  const uint32_t pkru = g_tls.pkru;
  uint64_t first = off / nvm::kPageSize;
  uint64_t last = (off + len - 1) / nvm::kPageSize;
  if (last >= table->size()) {
    throw ViolationError{off, 0xff, is_write};
  }
  for (uint64_t page = first; page <= last; page++) {
    uint8_t entry = (*table)[page];
    if (entry == kUnmapped) {
      // Page not present in this process's address space: a plain page fault.
      throw ViolationError{page * nvm::kPageSize, entry, is_write};
    }
    if (is_write && (entry & kPageReadOnly)) {
      // Page-table write protection (e.g. coffer root pages, read-only maps).
      throw ViolationError{page * nvm::kPageSize, entry, is_write};
    }
    uint8_t key = entry & kKeyMask;
    if (!PkruAllows(pkru, key, is_write)) {
      throw ViolationError{page * nvm::kPageSize, key, is_write};
    }
  }
  audit::NoteAccess(off, len, is_write);
}

}  // namespace mpk
