#include "src/mpk/mpk.h"

namespace mpk {

namespace {

struct ThreadState {
  uint32_t pkru = 0;  // all keys allowed until a process binds the thread
  const PageKeyTable* table = nullptr;
  uint64_t violations = 0;  // simulated page faults taken on this thread
};

thread_local ThreadState g_tls;

// Core permission test shared by the throwing and probing entry points.
// Returns the faulting page offset via *fault_off / *fault_key on failure.
bool AccessAllowed(uint64_t off, size_t len, bool is_write, uint64_t* fault_off,
                   uint8_t* fault_key) {
  const PageKeyTable* table = g_tls.table;
  if (table == nullptr || len == 0) {
    return true;  // thread not bound to a Treasury process: no MPK enforcement
  }
  const uint32_t pkru = g_tls.pkru;
  uint64_t first = off / nvm::kPageSize;
  uint64_t last = (off + len - 1) / nvm::kPageSize;
  if (off + len < off || last >= table->size()) {
    *fault_off = off;
    *fault_key = 0xff;
    return false;
  }
  for (uint64_t page = first; page <= last; page++) {
    uint8_t entry = (*table)[page];
    if (entry == kUnmapped) {
      // Page not present in this process's address space: a plain page fault.
      *fault_off = page * nvm::kPageSize;
      *fault_key = entry;
      return false;
    }
    if (is_write && (entry & kPageReadOnly)) {
      // Page-table write protection (e.g. coffer root pages, read-only maps).
      *fault_off = page * nvm::kPageSize;
      *fault_key = entry;
      return false;
    }
    uint8_t key = entry & kKeyMask;
    if (!PkruAllows(pkru, key, is_write)) {
      *fault_off = page * nvm::kPageSize;
      *fault_key = key;
      return false;
    }
  }
  return true;
}

common::Err DeviceHook(void* ctx, uint64_t off, size_t len, bool is_write) {
  CheckAccess(off, len, is_write);
  return common::Err::kOk;
}

}  // namespace

uint32_t RdPkru() { return g_tls.pkru; }

void WrPkru(uint32_t pkru) {
  g_tls.pkru = pkru;
  audit::NoteWrPkru(pkru);
}

void BindThreadToProcess(const PageKeyTable* table) {
  g_tls.table = table;
  g_tls.pkru = table == nullptr ? 0 : PkruDenyAll();
  // Keep the audit layer's PKRU shadow in sync: binding rewrites PKRU
  // without going through WrPkru.
  audit::NoteWrPkru(g_tls.pkru);
}

const PageKeyTable* CurrentTable() { return g_tls.table; }

void InstallDeviceHook(nvm::NvmDevice* dev) { dev->SetAccessHook(&DeviceHook, nullptr); }

void CheckAccess(uint64_t off, size_t len, bool is_write) {
  uint64_t fault_off = 0;
  uint8_t fault_key = 0;
  if (!AccessAllowed(off, len, is_write, &fault_off, &fault_key)) {
    g_tls.violations++;
    throw ViolationError{fault_off, fault_key, is_write};
  }
  if (g_tls.table != nullptr && len != 0) {
    audit::NoteAccess(off, len, is_write);
  }
}

bool ProbeAccess(uint64_t off, size_t len, bool is_write) {
  uint64_t fault_off = 0;
  uint8_t fault_key = 0;
  return AccessAllowed(off, len, is_write, &fault_off, &fault_key);
}

uint64_t ThreadViolationCount() { return g_tls.violations; }

}  // namespace mpk
