#include "src/mpk/keyclass.h"

namespace mpk {

namespace {
std::atomic<uint64_t> g_key_evictions{0};
std::atomic<uint64_t> g_key_retag_pages{0};
}  // namespace

uint64_t KeyEvictionCount() { return g_key_evictions.load(std::memory_order_relaxed); }
uint64_t KeyRetagPageCount() { return g_key_retag_pages.load(std::memory_order_relaxed); }

namespace internal {
void NoteKeyEviction() { g_key_evictions.fetch_add(1, std::memory_order_relaxed); }
void NoteRetagPages(uint64_t n) { g_key_retag_pages.fetch_add(n, std::memory_order_relaxed); }
}  // namespace internal

KeyClassTable::KeyClassTable() {
  for (auto& p : published_) {
    p.store(kUnmapped, std::memory_order_relaxed);
  }
  for (auto& t : touched_) {
    t.store(0, std::memory_order_relaxed);
  }
}

void KeyClassTable::Touch(uint16_t slot) {
  if (slot >= kMaxSlots) {
    return;
  }
  touched_[slot].store(touch_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
}

uint16_t KeyClassTable::SlotFor(const ProtClass& cls) {
  auto it = slot_of_.find(cls);
  if (it != slot_of_.end()) {
    return it->second;
  }
  if (slots_.size() >= kMaxSlots) {
    return kNoSlot;
  }
  const uint16_t slot = static_cast<uint16_t>(slots_.size());
  slots_.push_back(Slot{cls, kUnmapped, {}});
  slot_of_.emplace(cls, slot);
  return slot;
}

uint8_t KeyClassTable::PublishedKey(uint16_t slot) const {
  // Called lock-free from the µFS: touch ONLY the fixed atomic array, never
  // slots_ (which the kernel grows under its lock).
  if (slot >= kMaxSlots) {
    return kUnmapped;
  }
  return published_[slot].load(std::memory_order_relaxed);
}

void KeyClassTable::Retain(uint16_t slot, uint32_t coffer_id) {
  if (slot >= slots_.size()) {
    return;
  }
  slots_[slot].members.insert(coffer_id);
}

bool KeyClassTable::Release(uint16_t slot, uint32_t coffer_id) {
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  // Idempotent per (slot, coffer_id): a second Release for the same mapping
  // (reaper racing a queued retag) is a no-op, never a double-free.
  if (s.members.erase(coffer_id) == 0) {
    return false;
  }
  if (!s.members.empty()) {
    return false;
  }
  if (s.key != kUnmapped) {
    key_used_[s.key] = false;
    s.key = kUnmapped;
    published_[slot].store(kUnmapped, std::memory_order_relaxed);
  }
  return true;
}

uint8_t KeyClassTable::TakeFreeKey() {
  for (uint8_t k = 1; k < kNumKeys; k++) {
    if (!key_used_[k]) {
      key_used_[k] = true;
      return k;
    }
  }
  return 0;
}

uint8_t KeyClassTable::EnsureKey(uint16_t slot, uint16_t* evicted, bool* fresh) {
  *evicted = kNoSlot;
  *fresh = false;
  if (slot >= slots_.size()) {
    return kUnmapped;
  }
  Slot& s = slots_[slot];
  Touch(slot);
  if (s.key != kUnmapped) {
    return s.key;
  }
  uint8_t key = TakeFreeKey();
  if (key == 0) {
    // The LRU key window: demote the coldest *other* keyed class. Only the
    // assignment moves — members, refcounts and µFS caches stay; the caller
    // retags the victim's pages to kUnmapped so its next access faults in.
    // Stamps come from touched_[], which the µFS bumps lock-free on every
    // revalidation, so an in-flight op's working set is never the victim.
    uint16_t victim = kNoSlot;
    uint64_t victim_stamp = 0;
    for (uint16_t i = 0; i < slots_.size(); i++) {
      if (i == slot || slots_[i].key == kUnmapped) {
        continue;
      }
      const uint64_t stamp = touched_[i].load(std::memory_order_relaxed);
      if (victim == kNoSlot || stamp < victim_stamp) {
        victim = i;
        victim_stamp = stamp;
      }
    }
    if (victim == kNoSlot) {
      // Every key is pinned by legacy per-coffer mappings: genuine kNoKeys.
      return kUnmapped;
    }
    Slot& v = slots_[victim];
    key = v.key;
    v.key = kUnmapped;
    published_[victim].store(kUnmapped, std::memory_order_relaxed);
    *evicted = victim;
    internal::NoteKeyEviction();
  }
  s.key = key;
  published_[slot].store(key, std::memory_order_relaxed);
  *fresh = true;
  return key;
}

const std::set<uint32_t>& KeyClassTable::Members(uint16_t slot) const {
  static const std::set<uint32_t> kEmpty;
  if (slot >= slots_.size()) {
    return kEmpty;
  }
  return slots_[slot].members;
}

size_t KeyClassTable::LiveClassCount() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (!s.members.empty()) {
      n++;
    }
  }
  return n;
}

uint8_t KeyClassTable::AllocLegacyKey() { return TakeFreeKey(); }

void KeyClassTable::FreeLegacyKey(uint8_t key) {
  if (key >= 1 && key < kNumKeys) {
    key_used_[key] = false;
  }
}

}  // namespace mpk
