// MPK key virtualization (ISSUE 10): protection classes and the LRU key
// window.
//
// The paper's §3 grouping observation — applications concentrate files in a
// handful of (uid, gid, permission) combinations — means coffers should not
// each burn one of the 15 usable physical keys. A *protection class* is the
// (uid, gid, perm) triple of a coffer root; every coffer of a process whose
// root carries the same triple maps under one shared physical key (libmpk /
// Hodor-style key multiplexing). A tenant with hundreds of same-owner coffers
// consumes one key.
//
// When a process still touches more than 15 *distinct classes*, the table
// runs an LRU key window: the least-recently-used keyed class loses only its
// key *assignment* — its pages are retagged to kUnmapped (0xff) by the
// kernel, its mappings, refcounts and the µFS's session caches stay intact —
// and is faulted back in on next access via one batched kRetag crossing
// (src/kernfs/channel.h). That replaces the old whole-coffer victim eviction
// (unmap crossing + remap crossing + global session-epoch bump).
//
// Concurrency contract: the table is mutated only by KernFS while holding its
// global lock. The class→key assignment is additionally *published* through a
// fixed array of relaxed atomics — the user-visible key table, the moral
// analog of a vDSO page — so the µFS can detect "my cached key was evicted /
// reassigned" with two loads and no crossing. As with PageKeyTable, a stale
// read is a defined benign race (the TLB-shootdown analog), never a torn
// value.
//
// This file is the ONE sanctioned writer of the physical-key bitmap; the
// zofs_lint rule `direct-key-assign` flags `key_used_` / `page_keys_`
// assignments anywhere outside the class allocator and KernFS's page-tag
// helpers.

#ifndef SRC_MPK_KEYCLASS_H_
#define SRC_MPK_KEYCLASS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/mpk/mpk.h"

namespace mpk {

// A protection class: the identity triple of a coffer root. Writability is
// deliberately NOT part of the class — per-page kPageReadOnly bits enforce
// read-only mappings page-by-page, so a read-only and a writable mapping of
// same-owner coffers can share one key.
struct ProtClass {
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint16_t perm = 0;  // mode bits as stored in the coffer root

  bool operator<(const ProtClass& o) const {
    if (uid != o.uid) return uid < o.uid;
    if (gid != o.gid) return gid < o.gid;
    return perm < o.perm;
  }
  bool operator==(const ProtClass& o) const {
    return uid == o.uid && gid == o.gid && perm == o.perm;
  }
};

// Per-process class→key table. Slots are stable small integers (never reused
// within a process) so a slot index can travel inside MapInfo and be cached
// by the µFS alongside the key it validated.
class KeyClassTable {
 public:
  static constexpr uint16_t kNoSlot = 0xffff;
  // Distinct classes a process may touch over its lifetime. Beyond this the
  // caller falls back to legacy per-coffer keys for the overflow coffers —
  // a process cycling through >1024 distinct (uid,gid,perm) triples is a
  // pathological tenant, not the paper's workload.
  static constexpr size_t kMaxSlots = 1024;

  KeyClassTable();

  // ---- class path (key virtualization on) --------------------------------

  // Find-or-create the slot for `cls`. Returns kNoSlot when the slot table
  // is full (caller falls back to a legacy key).
  uint16_t SlotFor(const ProtClass& cls);

  // Lock-free read of the published class→key assignment (the µFS fault-in
  // check). kUnmapped while the class is evicted or the slot is invalid.
  uint8_t PublishedKey(uint16_t slot) const;

  // Lock-free LRU stamp bump, callable from the µFS on every session-cache
  // revalidation. This is what makes the key window safe for an in-flight
  // operation: an op touches every coffer it will access up front (path
  // resolution → EnsureMapped → revalidate → Touch), so its working-set
  // classes always carry the freshest stamps and EnsureKey's victim scan —
  // which picks the *oldest* stamp — can never demote a class the current
  // (single-threaded) op is still using. The hardware analog is the access
  // bit a pkey-eviction daemon consults before stealing a key.
  void Touch(uint16_t slot);

  // Membership/refcount: one Retain per mapped coffer in the class, one
  // Release on unmap. Release returns true when it dropped the last member
  // (the physical key, if any, was freed). Both are idempotent per
  // (slot, coffer_id) — the reaper may race a dead tenant's queued retag and
  // must release each mapping's refcount exactly once.
  void Retain(uint16_t slot, uint32_t coffer_id);
  bool Release(uint16_t slot, uint32_t coffer_id);

  // Ensures `slot` holds a physical key, touching its LRU stamp. When the
  // 15-key budget is exhausted, evicts the least-recently-used *other* keyed
  // class: its assignment is unpublished and its slot returned in *evicted
  // (kNoSlot otherwise) — the caller must retag the evicted class's pages to
  // kUnmapped and this class's pages to the key iff *fresh. Returns kUnmapped
  // only when every key is pinned by legacy per-coffer mappings.
  uint8_t EnsureKey(uint16_t slot, uint16_t* evicted, bool* fresh);

  // Member coffers of a slot (empty set for an invalid slot).
  const std::set<uint32_t>& Members(uint16_t slot) const;

  // Classes currently holding at least one mapped coffer.
  size_t LiveClassCount() const;

  // ---- legacy path (key virtualization off / slot-table overflow) --------

  // One private key per coffer, first-fit; 0 when the budget is exhausted
  // (the caller surfaces Err::kNoKeys and the µFS victim-evicts).
  uint8_t AllocLegacyKey();
  void FreeLegacyKey(uint8_t key);

 private:
  struct Slot {
    ProtClass cls;
    uint8_t key = kUnmapped;  // kUnmapped while evicted
    std::set<uint32_t> members;  // mapped coffer ids (the retag set)
  };

  uint8_t TakeFreeKey();  // 0 when none free

  std::map<ProtClass, uint16_t> slot_of_;
  std::vector<Slot> slots_;
  bool key_used_[kNumKeys] = {};  // physical keys; 1..15 allocatable
  // The user-visible assignment table (relaxed atomics, see header comment),
  // and the LRU stamps beside it — fixed arrays so the µFS may read/bump
  // them lock-free while the kernel grows slots_.
  std::atomic<uint8_t> published_[kMaxSlots];
  std::atomic<uint64_t> touched_[kMaxSlots];
  std::atomic<uint64_t> touch_clock_{0};
};

// Process-wide accounting (bench_json schema v5 / the soak report sample
// deltas): class-key evictions taken by the LRU window, and pages retagged
// by evictions plus fault-ins.
uint64_t KeyEvictionCount();
uint64_t KeyRetagPageCount();

namespace internal {
// Also bumped by the legacy whole-coffer victim eviction (zofs), so the v5
// `key_evictions` counter compares the old path's thrash against the key
// window on the same axis.
void NoteKeyEviction();
void NoteRetagPages(uint64_t n);
}  // namespace internal

}  // namespace mpk

#endif  // SRC_MPK_KEYCLASS_H_
