#include "src/kernfs/kernfs.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/rand.h"
#include "src/kernfs/channel.h"

namespace kernfs {

namespace {

// A page run crossing the syscall boundary is hostile input: reject zero
// length, wrap-around, and out-of-device ranges before they index the
// allocation table.
bool RunInBounds(uint64_t num_pages, const PageRun& r) {
  return r.len != 0 && r.start_page < num_pages && r.len <= num_pages - r.start_page;
}

// Recompute a coffer's page count from the kernel's authoritative run map
// instead of doing arithmetic on the persistent (corruptible) num_pages.
uint64_t SumRuns(const std::map<uint64_t, uint64_t>& runs) {
  uint64_t n = 0;
  for (const auto& [start, len] : runs) {
    n += len;
  }
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelEntry

namespace {
std::atomic<uint64_t> g_crossing_count{0};
std::atomic<uint64_t> g_bg_crossing_count{0};
thread_local uint64_t t_thread_crossings = 0;
thread_local int t_bg_depth = 0;
// Non-reentrance audit: >0 while a KernelEntry is alive on this thread.
thread_local int t_kernel_depth = 0;

// Same semantics as audit::EnvEnabled() without linking src/audit into the
// kernel library.
bool AuditEnvEnabled() {
  static const bool on = [] {
    const char* v = getenv("ZOFS_AUDIT");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return on;
}
}  // namespace

uint64_t CrossingCount() { return g_crossing_count.load(std::memory_order_relaxed); }

uint64_t ForegroundCrossingCount() {
  return g_crossing_count.load(std::memory_order_relaxed) -
         g_bg_crossing_count.load(std::memory_order_relaxed);
}

uint64_t BackgroundCrossingCount() {
  return g_bg_crossing_count.load(std::memory_order_relaxed);
}

uint64_t ThreadCrossingCount() { return t_thread_crossings; }

namespace {
// Reaper accounting (process-wide, delta-sampled by bench_json).
std::atomic<uint64_t> g_reaped_mappings{0};
std::atomic<uint64_t> g_reaped_grant_pages{0};
}  // namespace

uint64_t ReapedMappingCount() { return g_reaped_mappings.load(std::memory_order_relaxed); }
uint64_t ReapedGrantPageCount() { return g_reaped_grant_pages.load(std::memory_order_relaxed); }

BackgroundCrossingScope::BackgroundCrossingScope() { t_bg_depth++; }
BackgroundCrossingScope::~BackgroundCrossingScope() { t_bg_depth--; }

KernelEntry::KernelEntry(uint64_t crossing_ns)
    : saved_table_(mpk::CurrentTable()), saved_pkru_(mpk::RdPkru()) {
  if (t_kernel_depth != 0 && AuditEnvEnabled()) {
    fprintf(stderr,
            "KernelEntry: nested kernel crossing (depth %d) — a public entry "
            "point called another public entry point; route kernel-internal "
            "work through the unmetered Do* helpers\n",
            t_kernel_depth);
    abort();
  }
  t_kernel_depth++;
  g_crossing_count.fetch_add(1, std::memory_order_relaxed);
  if (t_bg_depth > 0) {
    g_bg_crossing_count.fetch_add(1, std::memory_order_relaxed);
  }
  t_thread_crossings++;
  // The kernel is not subject to the user PKRU / user page-key bits.
  mpk::BindThreadToProcess(nullptr);
  common::SpinNs(crossing_ns);
}

KernelEntry::~KernelEntry() {
  t_kernel_depth--;
  mpk::BindThreadToProcess(saved_table_);
  // KernelEntry IS the RAII window type for kernel crossings; the dtor
  // restores the PKRU captured at entry.
  // zofs-lint: allow(naked-wrpkru)
  mpk::WrPkru(saved_pkru_);
}

// ---------------------------------------------------------------------------
// Process

bool Process::HasMapped(uint32_t coffer_id) const { return mappings_.count(coffer_id) > 0; }

uint8_t Process::KeyFor(uint32_t coffer_id) const {
  auto it = mappings_.find(coffer_id);
  if (it == mappings_.end()) {
    return 0xff;
  }
  if (it->second.class_slot != mpk::KeyClassTable::kNoSlot) {
    // Class path: the published assignment is authoritative (kUnmapped while
    // the class is key-window evicted); the cached Mapping::key may be stale.
    return key_classes_.PublishedKey(it->second.class_slot);
  }
  return it->second.key;
}

// ---------------------------------------------------------------------------
// Construction / format / open

KernFs::KernFs(nvm::NvmDevice* dev, const FormatOptions& opts) : dev_(dev) {
  const uint64_t num_pages = dev_->num_pages();
  const uint64_t table_bytes = num_pages * sizeof(AllocEntry);
  const uint64_t table_pages = (table_bytes + nvm::kPageSize - 1) / nvm::kPageSize;
  const uint64_t map_bytes = opts.path_map_buckets * sizeof(uint64_t);
  const uint64_t map_pages = (map_bytes + nvm::kPageSize - 1) / nvm::kPageSize;
  const uint64_t pool_start = 1 + table_pages + map_pages;
  assert(pool_start + 8 < num_pages && "device too small");

  sb_ = dev_->As<Superblock>(0);
  Superblock sb{};
  sb.magic = kSuperMagic;
  sb.version = 1;
  sb.num_pages = num_pages;
  sb.alloc_table_off = nvm::kPageSize;
  sb.alloc_table_pages = table_pages;
  sb.path_map_off = (1 + table_pages) * nvm::kPageSize;
  sb.path_map_buckets = opts.path_map_buckets;
  sb.pool_start_page = pool_start;
  sb.root_coffer_id = 0;
  dev_->StoreBytes(0, &sb, sizeof(sb));

  table_ = dev_->As<AllocEntry>(sb.alloc_table_off);
  buckets_ = dev_->As<uint64_t>(sb.path_map_off);

  // Kernel-reserved pages (superblock + tables) and an empty path map.
  for (uint64_t p = 0; p < pool_start; p++) {
    table_[p] = AllocEntry{kKernelOwner, static_cast<uint32_t>(pool_start - p)};
  }
  for (uint64_t p = pool_start; p < num_pages; p++) {
    table_[p] = AllocEntry{0, static_cast<uint32_t>(num_pages - p)};
  }
  memset(buckets_, 0, map_bytes);
  dev_->PersistRange(sb.alloc_table_off, table_bytes);
  dev_->PersistRange(sb.path_map_off, map_bytes);

  free_by_addr_.emplace(pool_start, num_pages - pool_start);
  free_by_size_.emplace(num_pages - pool_start, pool_start);

  // Create the root coffer ("/") with a synthetic root-credential process.
  // Kernel-internal: format runs inside the kernel already, so this goes
  // through the unmetered helper — the public CofferNew would charge a bogus
  // crossing to a call that never crossed (caught by the reentrance audit).
  Process boot(0, vfs::Cred{opts.root_uid, opts.root_gid}, num_pages);
  auto root = DoCofferNew(boot, "/", opts.root_type, opts.root_mode, opts.root_uid, opts.root_gid,
                          opts.initial_coffer_pages);
  assert(root.ok());
  root_coffer_id_ = *root;
  dev_->Store32(offsetof(Superblock, root_coffer_id), root_coffer_id_);
  dev_->PersistRange(0, sizeof(Superblock));
}

KernFs::KernFs(nvm::NvmDevice* dev) : dev_(dev) {
  sb_ = dev_->As<Superblock>(0);
  assert(sb_->magic == kSuperMagic && "device is not formatted");
  table_ = dev_->As<AllocEntry>(sb_->alloc_table_off);
  buckets_ = dev_->As<uint64_t>(sb_->path_map_off);
  root_coffer_id_ = sb_->root_coffer_id;

  // Rebuild the volatile indexes from the persistent allocation table.
  const uint64_t num_pages = sb_->num_pages;
  uint64_t p = sb_->pool_start_page;
  while (p < num_pages) {
    uint32_t owner = table_[p].coffer_id;
    uint64_t start = p;
    while (p < num_pages && table_[p].coffer_id == owner) {
      p++;
    }
    uint64_t len = p - start;
    if (owner == 0) {
      free_by_addr_.emplace(start, len);
      free_by_size_.emplace(len, start);
    } else if (owner != kKernelOwner) {
      CofferInfo& info = coffers_[owner];
      info.id = owner;
      info.root_page = owner;  // coffer id == root page index
      info.runs[start] = len;
    }
  }
  // Coalesce adjacent runs inside each coffer.
  for (auto& [id, info] : coffers_) {
    auto it = info.runs.begin();
    while (it != info.runs.end()) {
      auto next = std::next(it);
      if (next != info.runs.end() && it->first + it->second == next->first) {
        it->second += next->second;
        info.runs.erase(next);
      } else {
        ++it;
      }
    }
  }
}

KernFs::~KernFs() = default;

// ---------------------------------------------------------------------------
// Allocation table

AllocEntry KernFs::ReadEntry(uint64_t page) const { return table_[page]; }

void KernFs::WriteEntry(uint64_t page, uint32_t owner, uint32_t run_len) {
  const uint64_t off = sb_->alloc_table_off + page * sizeof(AllocEntry);
  dev_->Store32(off, owner);
  dev_->Store32(off + 4, run_len);
}

Result<std::vector<PageRun>> KernFs::AllocPages(uint64_t n, uint32_t owner) {
  // n comes from user-controlled sizes (coffer_new extra pages, enlarge
  // batches); a wrapped or device-sized request must not reach the grant loop.
  if (n == 0 || n > dev_->num_pages()) {
    return Err::kInval;
  }
  std::vector<PageRun> granted;
  uint64_t remaining = n;
  while (remaining > 0) {
    if (free_by_size_.empty()) {
      // Roll back partial grants.
      for (const PageRun& r : granted) {
        FreeRun(r);
      }
      return Err::kNoSpc;
    }
    // Best fit: the smallest run that satisfies the request, else the
    // largest available run.
    auto it = free_by_size_.lower_bound(remaining);
    if (it == free_by_size_.end()) {
      it = std::prev(free_by_size_.end());
    }
    uint64_t run_len = it->first;
    uint64_t run_start = it->second;
    free_by_size_.erase(it);
    free_by_addr_.erase(run_start);

    uint64_t take = std::min(run_len, remaining);
    if (take < run_len) {
      // Return the tail to the free pool. Only the head entry's run length
      // is rewritten: interior run lengths are an acceleration hint
      // (Figure 3); correctness (remount scan, recovery) relies on the
      // per-page owner ids, which are untouched.
      uint64_t rest_start = run_start + take;
      uint64_t rest_len = run_len - take;
      free_by_addr_.emplace(rest_start, rest_len);
      free_by_size_.emplace(rest_len, rest_start);
      WriteEntry(rest_start, 0, static_cast<uint32_t>(rest_len));
      dev_->Clwb(sb_->alloc_table_off + rest_start * sizeof(AllocEntry), sizeof(AllocEntry));
    }
    for (uint64_t i = 0; i < take; i++) {
      WriteEntry(run_start + i, owner, static_cast<uint32_t>(take - i));
    }
    dev_->Clwb(sb_->alloc_table_off + run_start * sizeof(AllocEntry), take * sizeof(AllocEntry));
    granted.push_back(PageRun{run_start, take});
    remaining -= take;
  }
  dev_->Sfence();
  return granted;
}

void KernFs::EraseSizeEntry(uint64_t len, uint64_t start) {
  auto range = free_by_size_.equal_range(len);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == start) {
      free_by_size_.erase(it);
      return;
    }
  }
}

void KernFs::FreeRun(PageRun run) {
  for (uint64_t i = 0; i < run.len; i++) {
    WriteEntry(run.start_page + i, 0, static_cast<uint32_t>(run.len - i));
  }
  dev_->PersistRange(sb_->alloc_table_off + run.start_page * sizeof(AllocEntry),
                     run.len * sizeof(AllocEntry));
  // Coalesce with free neighbours.
  uint64_t start = run.start_page;
  uint64_t len = run.len;
  auto next = free_by_addr_.lower_bound(start);
  if (next != free_by_addr_.end() && start + len == next->first) {
    len += next->second;
    EraseSizeEntry(next->second, next->first);
    next = free_by_addr_.erase(next);
  }
  if (next != free_by_addr_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      EraseSizeEntry(prev->second, prev->first);
      free_by_addr_.erase(prev);
    }
  }
  free_by_addr_.emplace(start, len);
  free_by_size_.emplace(len, start);
}

void KernFs::SetRunOwner(PageRun run, uint32_t owner) {
  // Deliberately page-at-a-time with a fence per page: changing the owner of
  // pages (coffer split/merge) is the expensive cross-coffer path of Table 9.
  for (uint64_t i = 0; i < run.len; i++) {
    WriteEntry(run.start_page + i, owner, static_cast<uint32_t>(run.len - i));
    dev_->PersistRange(sb_->alloc_table_off + (run.start_page + i) * sizeof(AllocEntry),
                       sizeof(AllocEntry));
  }
}

// ---------------------------------------------------------------------------
// Path-coffer hash table

Result<uint64_t> KernFs::PathMapLookup(const std::string& path) const {
  const uint64_t n = sb_->path_map_buckets;
  uint64_t idx = common::Fnv1a64(path) % n;
  for (uint64_t probe = 0; probe < n; probe++) {
    uint64_t v = buckets_[(idx + probe) % n];
    if (v == kBucketEmpty) {
      return Err::kNoEnt;
    }
    if (v == kBucketTombstone) {
      continue;
    }
    if (v % nvm::kPageSize != 0 || !dev_->Contains(v, sizeof(CofferRoot))) {
      continue;  // scribbled bucket; only aligned in-device offsets are roots
    }
    const auto* root = dev_->As<CofferRoot>(v);
    if (root->magic == kCofferMagic && path.compare(root->path) == 0) {
      return v;
    }
  }
  return Err::kNoEnt;
}

Status KernFs::PathMapInsert(const std::string& path, uint64_t root_page_off) {
  const uint64_t n = sb_->path_map_buckets;
  uint64_t idx = common::Fnv1a64(path) % n;
  for (uint64_t probe = 0; probe < n; probe++) {
    uint64_t slot = (idx + probe) % n;
    uint64_t v = buckets_[slot];
    if (v == kBucketEmpty || v == kBucketTombstone) {
      dev_->Store64(sb_->path_map_off + slot * 8, root_page_off);
      dev_->PersistRange(sb_->path_map_off + slot * 8, 8);
      return common::OkStatus();
    }
  }
  return Err::kNoSpc;
}

Status KernFs::PathMapErase(const std::string& path) {
  const uint64_t n = sb_->path_map_buckets;
  uint64_t idx = common::Fnv1a64(path) % n;
  for (uint64_t probe = 0; probe < n; probe++) {
    uint64_t slot = (idx + probe) % n;
    uint64_t v = buckets_[slot];
    if (v == kBucketEmpty) {
      return Err::kNoEnt;
    }
    if (v == kBucketTombstone) {
      continue;
    }
    if (v % nvm::kPageSize != 0 || !dev_->Contains(v, sizeof(CofferRoot))) {
      continue;
    }
    const auto* root = dev_->As<CofferRoot>(v);
    if (root->magic == kCofferMagic && path.compare(root->path) == 0) {
      dev_->Store64(sb_->path_map_off + slot * 8, kBucketTombstone);
      dev_->PersistRange(sb_->path_map_off + slot * 8, 8);
      return common::OkStatus();
    }
  }
  return Err::kNoEnt;
}

// ---------------------------------------------------------------------------
// Helpers

KernFs::CofferInfo* KernFs::FindCoffer(uint32_t id) {
  auto it = coffers_.find(id);
  return it == coffers_.end() ? nullptr : &it->second;
}

CofferRoot* KernFs::RootOf(CofferInfo& c) {
  return dev_->As<CofferRoot>(c.root_page * nvm::kPageSize);
}

Status KernFs::CheckMappedWritable(Process& proc, uint32_t coffer_id) {
  auto it = proc.mappings_.find(coffer_id);
  if (it == proc.mappings_.end()) {
    return Err::kAcces;
  }
  if (!it->second.writable) {
    return Err::kROFS;
  }
  return common::OkStatus();
}

void KernFs::SetPageKeyLocked(Process& proc, uint64_t page, uint8_t tag) {
  // The ONE page-key store outside src/mpk (see the keyclass.h contract):
  // every "page table" key-bit update in the kernel funnels through here so
  // the direct-key-assign lint can flag strays.
  // zofs-lint: allow(direct-key-assign) — the sanctioned kernel page-tag sink
  proc.page_keys_[page] = tag;
}

void KernFs::TagPagesForProcess(Process& proc, const CofferInfo& c, uint8_t key) {
  // Coffer root pages are mapped read-only into user space.
  for (const auto& [start, len] : c.runs) {
    for (uint64_t p = start; p < start + len; p++) {
      SetPageKeyLocked(proc, p,
                       (p == c.root_page) ? static_cast<uint8_t>(key | mpk::kPageReadOnly) : key);
    }
  }
}

void KernFs::UntagPagesForProcess(Process& proc, const CofferInfo& c) {
  for (const auto& [start, len] : c.runs) {
    for (uint64_t p = start; p < start + len; p++) {
      SetPageKeyLocked(proc, p, mpk::kUnmapped);
    }
  }
}

// ---------------------------------------------------------------------------
// Protection classes (ISSUE 10)

mpk::ProtClass KernFs::ClassOfLocked(CofferInfo& c) {
  CofferRoot* root = RootOf(c);
  return mpk::ProtClass{root->uid, root->gid, root->mode};
}

void KernFs::TagCofferLocked(Process& proc, const CofferInfo& c, uint8_t key, bool writable) {
  if (writable) {
    TagPagesForProcess(proc, c, key);
    return;
  }
  // Read-only mappings are write-protected at "page table" level as well.
  const uint8_t tag = static_cast<uint8_t>(key | mpk::kPageReadOnly);
  for (const auto& [start, len] : c.runs) {
    for (uint64_t p = start; p < start + len; p++) {
      SetPageKeyLocked(proc, p, tag);
    }
  }
}

uint8_t KernFs::EnsureClassKeyLocked(Process& proc, uint16_t slot) {
  uint16_t evicted = mpk::KeyClassTable::kNoSlot;
  bool fresh = false;
  const uint8_t key = proc.key_classes_.EnsureKey(slot, &evicted, &fresh);
  if (evicted != mpk::KeyClassTable::kNoSlot) {
    // LRU key-window eviction: only the victim class's key assignment moves.
    // Its mappings, refcounts and the µFS session caches stay intact; its
    // pages go dark (kUnmapped) until the next access faults the class back
    // in through CofferRetag. No unmap, no session-epoch bump.
    uint64_t pages = 0;
    for (uint32_t cid : proc.key_classes_.Members(evicted)) {
      CofferInfo* vc = FindCoffer(cid);
      if (vc == nullptr) {
        continue;
      }
      UntagPagesForProcess(proc, *vc);
      pages += SumRuns(vc->runs);
    }
    mpk::internal::NoteRetagPages(pages);
  }
  if (fresh && key != mpk::kUnmapped) {
    // Fault-in: the class regained a key; every member coffer already mapped
    // is retagged under it (per its own writability).
    uint64_t pages = 0;
    for (uint32_t cid : proc.key_classes_.Members(slot)) {
      auto mit = proc.mappings_.find(cid);
      CofferInfo* mc = FindCoffer(cid);
      if (mit == proc.mappings_.end() || mc == nullptr) {
        continue;
      }
      mit->second.key = key;
      TagCofferLocked(proc, *mc, key, mit->second.writable);
      pages += SumRuns(mc->runs);
    }
    mpk::internal::NoteRetagPages(pages);
  }
  return key;
}

void KernFs::MigrateClassLocked(Process& proc, CofferInfo& c, const mpk::ProtClass& cls) {
  auto it = proc.mappings_.find(c.id);
  if (it == proc.mappings_.end()) {
    return;
  }
  Process::Mapping& m = it->second;
  if (m.class_slot == mpk::KeyClassTable::kNoSlot) {
    return;  // legacy mapping: its private key is permission-agnostic
  }
  const uint16_t ns = proc.key_classes_.SlotFor(cls);
  if (ns == m.class_slot) {
    return;
  }
  if (ns == mpk::KeyClassTable::kNoSlot) {
    return;  // slot table full: conservatively keep the old class
  }
  proc.key_classes_.Release(m.class_slot, c.id);
  m.class_slot = ns;
  proc.key_classes_.Retain(ns, c.id);
  const uint8_t key = EnsureClassKeyLocked(proc, ns);
  m.key = key;
  if (key != mpk::kUnmapped) {
    TagCofferLocked(proc, c, key, m.writable);
  } else {
    // Every key pinned by legacy mappings: leave the class evicted; the next
    // access faults it in via the kRetag path.
    UntagPagesForProcess(proc, c);
  }
}

uint8_t KernFs::EffectiveKeyLocked(const Process& proc, const Process::Mapping& m) {
  if (m.class_slot == mpk::KeyClassTable::kNoSlot) {
    return m.key;
  }
  return proc.key_classes_.PublishedKey(m.class_slot);
}

uint64_t KernFs::PersistRootPath(CofferRoot* root, const std::string& path) {
  const uint64_t base = dev_->OffsetOf(root);
  dev_->Store16(base + offsetof(CofferRoot, path_len), static_cast<uint16_t>(path.size()));
  dev_->StoreBytes(base + offsetof(CofferRoot, path), path.c_str(), path.size() + 1);
  dev_->PersistRange(base + offsetof(CofferRoot, path_len),
                     sizeof(uint16_t) + path.size() + 1 + offsetof(CofferRoot, path) -
                         offsetof(CofferRoot, path_len));
  return base;
}

// ---------------------------------------------------------------------------
// Process management

Process* KernFs::CreateProcess(vfs::Cred cred) {
  common::MutexLock lk(&mu_);
  uint32_t pid = next_pid_++;
  auto proc = std::unique_ptr<Process>(new Process(pid, cred, dev_->num_pages()));
  Process* raw = proc.get();
  procs_[pid] = std::move(proc);
  return raw;
}

void KernFs::DestroyProcess(Process* proc) {
  // Drain the process's channel rings first: unharvested async enlarge
  // grants live only in DRAM, so erasing the process without returning them
  // would strand their pages until the next fsck (the PR-9 leak fix).
  ReclaimProcessChannels(proc->pid());
  common::MutexLock lk(&mu_);
  std::vector<uint32_t> mapped;
  for (const auto& [id, m] : proc->mappings_) {
    mapped.push_back(id);
  }
  for (uint32_t id : mapped) {
    UnmapLocked(*proc, id);
  }
  procs_.erase(proc->pid());
}

KillStats KernFs::KillProcess(Process* proc, const KillOptions& opts) {
  KillStats st;
  if (opts.stray_writes > 0) {
    // The death burst runs in the victim's user context: its page-key table
    // bound, one writable window at a time — exactly the access a scribbling
    // dying thread has. Every store is probed through the MPK oracle first
    // (the device hook would throw on a blocked store); blocked attempts are
    // the containment the soak's page-diff oracle cross-checks.
    std::vector<std::pair<uint32_t, uint8_t>> targets;
    {
      common::MutexLock lk(&mu_);
      for (const auto& [cid, m] : proc->mappings_) {
        if (!m.writable) {
          continue;
        }
        if (std::find(opts.spare_coffers.begin(), opts.spare_coffers.end(), cid) !=
            opts.spare_coffers.end()) {
          continue;
        }
        const uint8_t key = EffectiveKeyLocked(*proc, m);
        if (key == mpk::kUnmapped) {
          continue;  // class key-window evicted: no key to open a window with
        }
        targets.emplace_back(cid, key);
      }
    }
    std::sort(targets.begin(), targets.end());  // mappings_ iteration order is not
    // The coffer's own pages, so half the burst aims where a scribbling
    // thread realistically scribbles: memory it legitimately has mapped.
    // Those stores land (legal damage to the victim's own data); the other
    // half sprays the whole device and must be blocked.
    std::vector<std::vector<PageRun>> own_runs(targets.size());
    for (size_t t = 0; t < targets.size(); t++) {
      auto runs = PagesOf(targets[t].first);
      if (runs.ok()) {
        own_runs[t] = std::move(*runs);
      }
    }
    const mpk::PageKeyTable* saved = mpk::CurrentTable();
    proc->BindCurrentThread();
    common::Rng rng(opts.seed);
    for (size_t t = 0; t < targets.size(); t++) {
      mpk::AccessWindow w(targets[t].second, /*writable=*/true);
      for (uint64_t i = 0; i < opts.stray_writes; i++) {
        uint64_t off;
        if (i % 2 == 0 || own_runs[t].empty()) {
          off = rng.Below(dev_->size() / 8) * 8;  // device-wide spray
        } else {
          const PageRun& r = own_runs[t][rng.Below(own_runs[t].size())];
          const uint64_t page = r.start_page + rng.Below(r.len);
          off = page * nvm::kPageSize + rng.Below(nvm::kPageSize / 8) * 8;
        }
        st.stray_attempted++;
        if (mpk::ProbeAccess(off, 8, /*is_write=*/true)) {
          dev_->Store64(off, rng.Next());
          st.stray_landed++;
        } else {
          st.stray_blocked++;
        }
      }
    }
    mpk::BindThreadToProcess(saved);
  }

  // Death proper: the process moves to the morgue exactly as it stands — no
  // unmap, no key release, no channel drain, no lease release. Its MPK keys
  // and mappings stay consumed (realistic pressure) until the reaper runs.
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  auto it = procs_.find(proc->pid());
  if (it != procs_.end()) {
    DeadProc d;
    d.proc = std::move(it->second);
    d.next_attempt_ns = common::NowNs();
    procs_.erase(it);
    dead_procs_[proc->pid()] = std::move(d);
  }
  return st;
}

uint64_t KernFs::ReapDeadProcesses() {
  KernelEntry enter(crossing_ns_);
  const uint64_t now = common::NowNs();
  std::vector<uint32_t> ready;
  {
    common::MutexLock lk(&mu_);
    for (const auto& [pid, d] : dead_procs_) {
      if (d.next_attempt_ns <= now) {
        ready.push_back(pid);
      }
    }
  }
  std::sort(ready.begin(), ready.end());

  uint64_t reaped = 0;
  for (uint32_t pid : ready) {
    // Channel reclamation takes each channel's own lock and then mu_ — the
    // same order as a live thread's batch path — so it must run before we
    // take mu_ here.
    bool all_ok = true;
    g_reaped_grant_pages.fetch_add(ReclaimProcessChannels(pid, &all_ok),
                                   std::memory_order_relaxed);
    common::MutexLock lk(&mu_);
    auto it = dead_procs_.find(pid);
    if (it == dead_procs_.end()) {
      continue;
    }
    if (!all_ok && it->second.fails <= 6) {
      // Partial reclaim: re-arm with the sick-coffer backoff shape (base
      // 10 ms, doubling, shift capped at 6). Past the ladder we tear the
      // mappings down anyway and leave stranded pages to fsck.
      it->second.fails++;
      it->second.next_attempt_ns =
          now + (uint64_t{10'000'000} << std::min<uint32_t>(it->second.fails, 6));
      continue;
    }
    Process* p = it->second.proc.get();
    std::vector<uint32_t> mapped;
    for (const auto& [cid, m] : p->mappings_) {
      mapped.push_back(cid);
    }
    std::sort(mapped.begin(), mapped.end());
    for (uint32_t cid : mapped) {
      UnmapLocked(*p, cid);
    }
    g_reaped_mappings.fetch_add(mapped.size(), std::memory_order_relaxed);
    dead_procs_.erase(it);
    reaped++;
  }
  return reaped;
}

size_t KernFs::DeadProcessCountForTest() {
  common::MutexLock lk(&mu_);
  return dead_procs_.size();
}

void KernFs::RegisterChannel(uint32_t pid, Channel* ch) {
  common::MutexLock lk(&chan_mu_);
  channels_by_pid_[pid].push_back(ch);
}

void KernFs::UnregisterChannel(uint32_t pid, Channel* ch) {
  common::MutexLock lk(&chan_mu_);
  auto it = channels_by_pid_.find(pid);
  if (it == channels_by_pid_.end()) {
    return;
  }
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), ch), v.end());
  if (v.empty()) {
    channels_by_pid_.erase(it);
  }
}

uint64_t KernFs::ReclaimProcessChannels(uint32_t pid, bool* all_ok) {
  std::vector<Channel*> chans;
  {
    common::MutexLock lk(&chan_mu_);
    auto it = channels_by_pid_.find(pid);
    if (it != channels_by_pid_.end()) {
      chans = it->second;
    }
  }
  uint64_t pages = 0;
  bool ok = true;
  for (Channel* ch : chans) {
    auto grants = ch->ReapForKernel();
    common::MutexLock lk(&mu_);
    for (const auto& [cid, runs] : grants) {
      CofferInfo* c = FindCoffer(cid);
      if (c == nullptr) {
        ok = false;  // coffer deleted with the grant outstanding
        continue;
      }
      bool changed = false;
      for (const PageRun& r : runs) {
        if (ShrinkRunLocked(c, r).ok()) {
          pages += r.len;
          changed = true;
        } else {
          ok = false;
        }
      }
      if (changed) {
        PersistCofferSizeLocked(c);
      }
    }
  }
  if (all_ok != nullptr) {
    *all_ok = ok;
  }
  return pages;
}

void KernFs::Nop() { KernelEntry enter(crossing_ns_); }

Status KernFs::FsMount(Process& proc) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  if (proc.fslib_mounted_) {
    return Err::kBusy;
  }
  proc.fslib_mounted_ = true;
  return common::OkStatus();
}

Status KernFs::FsUmount(Process& proc) {
  KernelEntry enter(crossing_ns_);
  // Same leak fix as DestroyProcess: rings drained (and unharvested grants
  // returned) before the mappings go away. Channel locks nest outside mu_.
  ReclaimProcessChannels(proc.pid());
  common::MutexLock lk(&mu_);
  if (!proc.fslib_mounted_) {
    return Err::kInval;
  }
  std::vector<uint32_t> mapped;
  for (const auto& [id, m] : proc.mappings_) {
    mapped.push_back(id);
  }
  for (uint32_t id : mapped) {
    UnmapLocked(proc, id);
  }
  proc.fslib_mounted_ = false;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Coffer operations

Result<uint32_t> KernFs::CofferNew(Process& proc, const std::string& path, uint32_t type,
                                   uint16_t mode, uint32_t uid, uint32_t gid,
                                   uint64_t extra_pages) {
  KernelEntry enter(crossing_ns_);
  return DoCofferNew(proc, path, type, mode, uid, gid, extra_pages);
}

Result<uint32_t> KernFs::DoCofferNew(Process& proc, const std::string& path, uint32_t type,
                                     uint16_t mode, uint32_t uid, uint32_t gid,
                                     uint64_t extra_pages) {
  if (path.empty() || path[0] != '/' || path.size() >= kMaxCofferPath) {
    return Err::kInval;
  }
  common::MutexLock lk(&mu_);
  if (PathMapLookup(path).ok()) {
    return Err::kExist;
  }

  ASSIGN_OR_RETURN(runs, AllocPages(1 + extra_pages, /*owner=*/0));
  // The first page of the first run is the root page; its index is the id.
  // Rewrite ownership now that the id is known.
  uint32_t id = static_cast<uint32_t>(runs[0].start_page);
  for (const PageRun& r : runs) {
    for (uint64_t i = 0; i < r.len; i++) {
      WriteEntry(r.start_page + i, id, static_cast<uint32_t>(r.len - i));
    }
    dev_->Clwb(sb_->alloc_table_off + r.start_page * sizeof(AllocEntry),
               r.len * sizeof(AllocEntry));
  }
  dev_->Sfence();

  // Lay out the root page.
  const uint64_t root_off = static_cast<uint64_t>(id) * nvm::kPageSize;
  CofferRoot root{};
  root.magic = kCofferMagic;
  root.coffer_id = id;
  root.type = type;
  root.uid = uid;
  root.gid = gid;
  root.mode = mode;
  root.flags = 0;
  root.num_pages = 1 + extra_pages;
  root.path_len = static_cast<uint16_t>(path.size());
  memcpy(root.path, path.c_str(), path.size() + 1);

  // The µFS pages: first extra page is the root-file inode, second is the
  // custom page (Figure 5). Collect the first two non-root pages.
  uint64_t mu_pages[2] = {0, 0};
  int found = 0;
  for (const PageRun& r : runs) {
    for (uint64_t p = r.start_page; p < r.start_page + r.len && found < 2; p++) {
      if (p == id) {
        continue;
      }
      mu_pages[found++] = p;
    }
  }
  root.root_inode_off = found >= 1 ? mu_pages[0] * nvm::kPageSize : 0;
  root.custom_off = found >= 2 ? mu_pages[1] * nvm::kPageSize : 0;

  dev_->StoreBytes(root_off, &root, sizeof(root));
  dev_->PersistRange(root_off, sizeof(root));

  RETURN_IF_ERROR(PathMapInsert(path, root_off));

  CofferInfo info;
  info.id = id;
  info.root_page = id;
  for (const PageRun& r : runs) {
    info.runs[r.start_page] = r.len;
  }
  coffers_[id] = std::move(info);
  return id;
}

Status KernFs::CofferDelete(Process& proc, uint32_t coffer_id) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  if (coffer_id == root_coffer_id_) {
    return Err::kBusy;
  }
  CofferRoot* root = RootOf(*c);
  if (!proc.cred().IsRoot() &&
      !vfs::PermitsAccess(proc.cred(), root->uid, root->gid, root->mode, false, true)) {
    return Err::kAcces;
  }
  // Unmap from every process first (UnmapLocked releases the class refcount
  // or legacy key; iterate a copy — it erases from mapped_by).
  std::vector<Process*> mappers(c->mapped_by.begin(), c->mapped_by.end());
  for (Process* p : mappers) {
    UnmapLocked(*p, coffer_id);
  }

  PathMapErase(root->path);
  // Invalidate the root page magic so stale path-map probes cannot match.
  dev_->Store64(c->root_page * nvm::kPageSize, 0);
  dev_->PersistRange(c->root_page * nvm::kPageSize, 8);
  for (const auto& [start, len] : c->runs) {
    FreeRun(PageRun{start, len});
  }
  coffers_.erase(coffer_id);
  return common::OkStatus();
}

Result<std::vector<PageRun>> KernFs::CofferEnlarge(Process& proc, uint32_t coffer_id,
                                                   uint64_t n_pages) {
  KernelEntry enter(crossing_ns_);
  return DoCofferEnlarge(proc, coffer_id, n_pages);
}

Result<std::vector<PageRun>> KernFs::DoCofferEnlarge(Process& proc, uint32_t coffer_id,
                                                     uint64_t n_pages) {
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, coffer_id));
  ASSIGN_OR_RETURN(runs, AllocPages(n_pages, coffer_id));

  // Record ownership and extend mappings in every process that has the
  // coffer mapped (the kernel updating page tables).
  for (const PageRun& r : runs) {
    auto [it, inserted] = c->runs.emplace(r.start_page, r.len);
    if (!inserted) {
      it->second += r.len;
    }
    for (Process* p : c->mapped_by) {
      // Effective key: kUnmapped while the mapper's class is key-window
      // evicted — the pages stay dark and the next fault-in retags them.
      const uint8_t key = EffectiveKeyLocked(*p, p->mappings_[coffer_id]);
      for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
        SetPageKeyLocked(*p, pg, key);
      }
    }
  }
  CofferRoot* root = RootOf(*c);
  uint64_t root_off = dev_->OffsetOf(root);
  dev_->Store64(root_off + offsetof(CofferRoot, num_pages), SumRuns(c->runs));
  dev_->PersistRange(root_off + offsetof(CofferRoot, num_pages), 8);
  return runs;
}

Status KernFs::CofferShrink(Process& proc, uint32_t coffer_id, const std::vector<PageRun>& runs) {
  KernelEntry enter(crossing_ns_);
  return DoCofferShrink(proc, coffer_id, runs);
}

Status KernFs::ShrinkRunLocked(CofferInfo* c, const PageRun& r) {
  if (!RunInBounds(sb_->num_pages, r)) {
    return Err::kInval;
  }
  // Validate ownership of every page in the run.
  for (uint64_t p = r.start_page; p < r.start_page + r.len; p++) {
    if (ReadEntry(p).coffer_id != c->id || p == c->root_page) {
      return Err::kInval;
    }
  }
  // Carve the run out of the volatile owner map.
  auto it = c->runs.upper_bound(r.start_page);
  if (it == c->runs.begin()) {
    return Err::kInval;
  }
  --it;
  uint64_t run_start = it->first, run_len = it->second;
  if (r.start_page < run_start || r.start_page + r.len > run_start + run_len) {
    return Err::kInval;
  }
  c->runs.erase(it);
  if (r.start_page > run_start) {
    c->runs[run_start] = r.start_page - run_start;
  }
  if (r.start_page + r.len < run_start + run_len) {
    c->runs[r.start_page + r.len] = run_start + run_len - (r.start_page + r.len);
  }
  for (Process* p : c->mapped_by) {
    for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
      SetPageKeyLocked(*p, pg, mpk::kUnmapped);
    }
  }
  FreeRun(r);
  return common::OkStatus();
}

void KernFs::PersistCofferSizeLocked(CofferInfo* c) {
  CofferRoot* root = RootOf(*c);
  uint64_t root_off = dev_->OffsetOf(root);
  dev_->Store64(root_off + offsetof(CofferRoot, num_pages), SumRuns(c->runs));
  dev_->PersistRange(root_off + offsetof(CofferRoot, num_pages), 8);
}

Status KernFs::DoCofferShrink(Process& proc, uint32_t coffer_id,
                              const std::vector<PageRun>& runs) {
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, coffer_id));
  for (const PageRun& r : runs) {
    RETURN_IF_ERROR(ShrinkRunLocked(c, r));
  }
  PersistCofferSizeLocked(c);
  return common::OkStatus();
}

Result<MapInfo> KernFs::CofferMap(Process& proc, uint32_t coffer_id, bool writable) {
  KernelEntry enter(crossing_ns_);
  return DoCofferMap(proc, coffer_id, writable);
}

Result<MapInfo> KernFs::DoCofferMap(Process& proc, uint32_t coffer_id, bool writable) {
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  if (root->magic != kCofferMagic) {
    return Err::kCorrupt;  // root page scribbled since mount; refuse to map
  }
  if (root->flags & kCofferInRecovery) {
    return Err::kBusy;
  }
  if (!vfs::PermitsAccess(proc.cred(), root->uid, root->gid, root->mode, /*want_read=*/true,
                          writable)) {
    return Err::kAcces;
  }

  MapInfo info;
  info.writable = writable;
  info.type = root->type;
  info.root_page_off = c->root_page * nvm::kPageSize;
  info.root_inode_off = root->root_inode_off;
  info.custom_off = root->custom_off;

  auto it = proc.mappings_.find(coffer_id);
  if (it != proc.mappings_.end()) {
    Process::Mapping& m = it->second;
    // Already mapped; upgrading read-only -> writable re-tags, and on the
    // class path a remap doubles as the key-window fault-in.
    if (m.class_slot != mpk::KeyClassTable::kNoSlot) {
      const uint8_t cur = EnsureClassKeyLocked(proc, m.class_slot);
      if (cur == mpk::kUnmapped) {
        return Err::kNoKeys;
      }
      m.key = cur;
    }
    if (writable && !m.writable) {
      if (!vfs::PermitsAccess(proc.cred(), root->uid, root->gid, root->mode, true, true)) {
        return Err::kAcces;
      }
      m.writable = true;
      TagCofferLocked(proc, *c, m.key, /*writable=*/true);
    }
    info.key = m.key;
    info.writable = m.writable;
    info.class_slot = m.class_slot;
    return info;
  }

  // Key assignment; 15 usable regions (paper §3.4.2). With virtualization on,
  // the coffer joins its protection class and shares that class's key —
  // EnsureClassKeyLocked runs the LRU key window when all 15 are assigned.
  uint16_t slot = mpk::KeyClassTable::kNoSlot;
  uint8_t key = 0;
  if (key_virtualization_) {
    slot = proc.key_classes_.SlotFor(ClassOfLocked(*c));
  }
  if (slot != mpk::KeyClassTable::kNoSlot) {
    key = EnsureClassKeyLocked(proc, slot);
    if (key == mpk::kUnmapped) {
      return Err::kNoKeys;  // every key pinned by legacy per-coffer mappings
    }
    proc.key_classes_.Retain(slot, coffer_id);
  } else {
    // Legacy path (virtualization off, or slot-table overflow): one private
    // key per coffer, kNoKeys on exhaustion (the µFS victim-evicts).
    key = proc.key_classes_.AllocLegacyKey();
    if (key == 0) {
      return Err::kNoKeys;
    }
  }
  proc.mappings_[coffer_id] = Process::Mapping{key, writable, slot};
  c->mapped_by.insert(&proc);
  TagCofferLocked(proc, *c, key, writable);
  info.key = key;
  info.class_slot = slot;
  return info;
}

void KernFs::UnmapLocked(Process& proc, uint32_t coffer_id) {
  auto it = proc.mappings_.find(coffer_id);
  if (it == proc.mappings_.end()) {
    return;
  }
  CofferInfo* c = FindCoffer(coffer_id);
  if (c != nullptr) {
    UntagPagesForProcess(proc, *c);
    c->mapped_by.erase(&proc);
  }
  if (it->second.class_slot != mpk::KeyClassTable::kNoSlot) {
    // Release is idempotent per (slot, coffer): the reaper racing a queued
    // retag for a dead tenant drops each mapping's refcount exactly once.
    proc.key_classes_.Release(it->second.class_slot, coffer_id);
  } else {
    proc.key_classes_.FreeLegacyKey(it->second.key);
  }
  proc.mappings_.erase(it);
}

Status KernFs::CofferUnmap(Process& proc, uint32_t coffer_id) {
  KernelEntry enter(crossing_ns_);
  return DoCofferUnmap(proc, coffer_id);
}

Status KernFs::DoCofferUnmap(Process& proc, uint32_t coffer_id) {
  common::MutexLock lk(&mu_);
  if (!proc.HasMapped(coffer_id)) {
    return Err::kInval;
  }
  UnmapLocked(proc, coffer_id);
  return common::OkStatus();
}

Result<MapInfo> KernFs::CofferRetag(Process& proc, uint32_t coffer_id) {
  KernelEntry enter(crossing_ns_);
  return DoCofferRetag(proc, coffer_id);
}

Result<MapInfo> KernFs::DoCofferRetag(Process& proc, uint32_t coffer_id) {
  common::MutexLock lk(&mu_);
  auto it = proc.mappings_.find(coffer_id);
  if (it == proc.mappings_.end()) {
    return Err::kInval;
  }
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  MapInfo info;
  info.writable = it->second.writable;
  info.type = root->type;
  info.root_page_off = c->root_page * nvm::kPageSize;
  info.root_inode_off = root->root_inode_off;
  info.custom_off = root->custom_off;
  info.class_slot = it->second.class_slot;
  if (it->second.class_slot == mpk::KeyClassTable::kNoSlot) {
    // Legacy mapping: its key never moves, nothing to fault in.
    info.key = it->second.key;
    return info;
  }
  const uint8_t key = EnsureClassKeyLocked(proc, it->second.class_slot);
  if (key == mpk::kUnmapped) {
    return Err::kNoKeys;
  }
  it->second.key = key;
  info.key = key;
  return info;
}

// ---------------------------------------------------------------------------
// Batched execution (the channel's drain path)

void KernFs::ExecuteBatch(Process& proc, const std::vector<ChanRequest>& reqs,
                          std::vector<ChanCompletion>* out) {
  if (reqs.empty()) {
    return;
  }
  // The crossing is background iff nothing in the batch is a foreground
  // request: async housekeeping riding alone must not pollute the foreground
  // counter the benchmarks gate on.
  bool all_background = true;
  for (const ChanRequest& r : reqs) {
    all_background = all_background && r.background;
  }
  std::unique_ptr<BackgroundCrossingScope> bg;
  if (all_background) {
    bg = std::make_unique<BackgroundCrossingScope>();
  }
  KernelEntry enter(crossing_ns_);
  for (const ChanRequest& r : reqs) {
    ChanCompletion c;
    c.op = r.op;
    c.coffer_id = r.coffer_id;
    c.seq = r.seq;
    c.background = r.background;
    if (r.magic != kChanReqMagic) {
      // Scribbled in-flight entry: refuse without dispatching. The submission
      // ring is volatile DRAM, so this is detection, not recovery.
      c.status = Err::kInval;
      out->push_back(std::move(c));
      continue;
    }
    switch (r.op) {
      case ChanOp::kNop:
        break;
      case ChanOp::kMap: {
        auto info = DoCofferMap(proc, r.coffer_id, r.writable);
        if (info.ok()) {
          c.map_info = *info;
        } else {
          c.status = info.error();
        }
        break;
      }
      case ChanOp::kUnmap:
        c.status = DoCofferUnmap(proc, r.coffer_id);
        break;
      case ChanOp::kEnlarge: {
        auto runs = DoCofferEnlarge(proc, r.coffer_id, r.n_pages);
        if (runs.ok()) {
          c.runs = std::move(*runs);
        } else {
          c.status = runs.error();
        }
        break;
      }
      case ChanOp::kShrink:
        c.status = DoCofferShrink(proc, r.coffer_id, r.runs);
        break;
      case ChanOp::kRetag: {
        auto info = DoCofferRetag(proc, r.coffer_id);
        if (info.ok()) {
          c.map_info = *info;
        } else {
          c.status = info.error();
        }
        break;
      }
      default:
        c.status = Err::kInval;  // out-of-range op byte: corrupted entry
        break;
    }
    out->push_back(std::move(c));
  }
}

Result<uint32_t> KernFs::CofferFind(const std::string& path) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  ASSIGN_OR_RETURN(root_off, PathMapLookup(path));
  return dev_->As<CofferRoot>(root_off)->coffer_id;
}

Result<uint32_t> KernFs::CofferSplit(Process& proc, uint32_t src_id,
                                     const std::vector<PageRun>& pages,
                                     const std::string& new_path, uint32_t type, uint16_t mode,
                                     uint32_t uid, uint32_t gid, uint64_t new_root_inode_off,
                                     uint64_t new_custom_off) {
  KernelEntry enter(crossing_ns_);
  if (new_path.empty() || new_path[0] != '/' || new_path.size() >= kMaxCofferPath) {
    return Err::kInval;
  }
  common::MutexLock lk(&mu_);
  CofferInfo* src = FindCoffer(src_id);
  if (src == nullptr) {
    return Err::kNoEnt;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, src_id));
  if (PathMapLookup(new_path).ok()) {
    return Err::kExist;
  }
  // Validate that every page to move belongs to src and none is the root.
  uint64_t moved = 0;
  for (const PageRun& r : pages) {
    if (!RunInBounds(sb_->num_pages, r)) {
      return Err::kInval;
    }
    for (uint64_t p = r.start_page; p < r.start_page + r.len; p++) {
      if (ReadEntry(p).coffer_id != src_id || p == src->root_page) {
        return Err::kInval;
      }
    }
    moved += r.len;
  }

  // New root page.
  ASSIGN_OR_RETURN(root_runs, AllocPages(1, 0));
  uint32_t new_id = static_cast<uint32_t>(root_runs[0].start_page);
  WriteEntry(new_id, new_id, 1);
  dev_->PersistRange(sb_->alloc_table_off + new_id * sizeof(AllocEntry), sizeof(AllocEntry));

  // Move ownership page-by-page (the expensive part, by design).
  for (const PageRun& r : pages) {
    SetRunOwner(r, new_id);
    // Carve out of src's volatile runs.
    auto it = src->runs.upper_bound(r.start_page);
    --it;
    uint64_t run_start = it->first, run_len = it->second;
    src->runs.erase(it);
    if (r.start_page > run_start) {
      src->runs[run_start] = r.start_page - run_start;
    }
    if (r.start_page + r.len < run_start + run_len) {
      src->runs[r.start_page + r.len] = run_start + run_len - (r.start_page + r.len);
    }
  }

  const uint64_t root_off = static_cast<uint64_t>(new_id) * nvm::kPageSize;
  CofferRoot nr{};
  nr.magic = kCofferMagic;
  nr.coffer_id = new_id;
  nr.type = type;
  nr.uid = uid;
  nr.gid = gid;
  nr.mode = mode;
  nr.num_pages = 1 + moved;
  nr.root_inode_off = new_root_inode_off;
  nr.custom_off = new_custom_off;
  nr.path_len = static_cast<uint16_t>(new_path.size());
  memcpy(nr.path, new_path.c_str(), new_path.size() + 1);
  dev_->StoreBytes(root_off, &nr, sizeof(nr));
  dev_->PersistRange(root_off, sizeof(nr));
  RETURN_IF_ERROR(PathMapInsert(new_path, root_off));

  CofferInfo info;
  info.id = new_id;
  info.root_page = new_id;
  info.runs[new_id] = 1;
  for (const PageRun& r : pages) {
    info.runs[r.start_page] = r.len;
  }
  // Update src bookkeeping.
  CofferRoot* sroot = RootOf(*src);
  uint64_t sroot_off = dev_->OffsetOf(sroot);
  dev_->Store64(sroot_off + offsetof(CofferRoot, num_pages), SumRuns(src->runs));
  dev_->PersistRange(sroot_off + offsetof(CofferRoot, num_pages), 8);

  // Processes mapping src lose access to the moved pages.
  for (Process* p : src->mapped_by) {
    for (const PageRun& r : pages) {
      for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
        SetPageKeyLocked(*p, pg, mpk::kUnmapped);
      }
    }
  }
  coffers_[new_id] = std::move(info);
  return new_id;
}

Status KernFs::CofferMovePages(Process& proc, uint32_t src_id, uint32_t dst_id,
                               const std::vector<PageRun>& pages) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* src = FindCoffer(src_id);
  CofferInfo* dst = FindCoffer(dst_id);
  if (src == nullptr || dst == nullptr || src_id == dst_id) {
    return Err::kInval;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, src_id));
  RETURN_IF_ERROR(CheckMappedWritable(proc, dst_id));
  for (const PageRun& r : pages) {
    if (!RunInBounds(sb_->num_pages, r)) {
      return Err::kInval;
    }
    for (uint64_t p = r.start_page; p < r.start_page + r.len; p++) {
      if (ReadEntry(p).coffer_id != src_id || p == src->root_page) {
        return Err::kInval;
      }
    }
  }
  for (const PageRun& r : pages) {
    SetRunOwner(r, dst_id);
    auto it = src->runs.upper_bound(r.start_page);
    --it;
    uint64_t run_start = it->first, run_len = it->second;
    src->runs.erase(it);
    if (r.start_page > run_start) {
      src->runs[run_start] = r.start_page - run_start;
    }
    if (r.start_page + r.len < run_start + run_len) {
      src->runs[r.start_page + r.len] = run_start + run_len - (r.start_page + r.len);
    }
    dst->runs[r.start_page] = r.len;
    // Page-key updates: src mappers lose the pages, dst mappers gain them.
    for (Process* p : src->mapped_by) {
      for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
        SetPageKeyLocked(*p, pg, mpk::kUnmapped);
      }
    }
    for (Process* p : dst->mapped_by) {
      const Process::Mapping& m = p->mappings_[dst_id];
      const uint8_t key = EffectiveKeyLocked(*p, m);
      uint8_t tag = m.writable ? key : static_cast<uint8_t>(key | mpk::kPageReadOnly);
      for (uint64_t pg = r.start_page; pg < r.start_page + r.len; pg++) {
        SetPageKeyLocked(*p, pg, tag);
      }
    }
  }
  CofferRoot* sroot = RootOf(*src);
  CofferRoot* droot = RootOf(*dst);
  uint64_t soff = dev_->OffsetOf(sroot);
  uint64_t doff = dev_->OffsetOf(droot);
  dev_->Store64(soff + offsetof(CofferRoot, num_pages), SumRuns(src->runs));
  dev_->Store64(doff + offsetof(CofferRoot, num_pages), SumRuns(dst->runs));
  dev_->PersistRange(soff + offsetof(CofferRoot, num_pages), 8);
  dev_->PersistRange(doff + offsetof(CofferRoot, num_pages), 8);
  return common::OkStatus();
}

Result<uint64_t> KernFs::CofferMerge(Process& proc, uint32_t dst_id, uint32_t src_id) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* dst = FindCoffer(dst_id);
  CofferInfo* src = FindCoffer(src_id);
  if (dst == nullptr || src == nullptr || dst_id == src_id) {
    return Err::kInval;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, dst_id));
  RETURN_IF_ERROR(CheckMappedWritable(proc, src_id));
  CofferRoot* droot = RootOf(*dst);
  CofferRoot* sroot = RootOf(*src);
  if (droot->mode != sroot->mode || droot->uid != sroot->uid || droot->gid != sroot->gid ||
      droot->type != sroot->type) {
    return Err::kInval;
  }
  if (src_id == root_coffer_id_) {
    return Err::kBusy;
  }

  uint64_t old_root_off = src->root_page * nvm::kPageSize;
  PathMapErase(sroot->path);
  // Invalidate the old root page's magic before it becomes a data page.
  dev_->Store64(old_root_off, 0);
  dev_->PersistRange(old_root_off, 8);

  // Transfer ownership page-by-page.
  for (const auto& [start, len] : src->runs) {
    SetRunOwner(PageRun{start, len}, dst_id);
    auto [it, inserted] = dst->runs.emplace(start, len);
    if (!inserted) {
      it->second = std::max(it->second, len);
    }
  }

  uint64_t droot_off = dev_->OffsetOf(droot);
  dev_->Store64(droot_off + offsetof(CofferRoot, num_pages), SumRuns(dst->runs));
  dev_->PersistRange(droot_off + offsetof(CofferRoot, num_pages), 8);

  // Fix mappings: everyone who had src mapped loses it; everyone with dst
  // mapped gains the transferred pages under dst's effective key.
  for (Process* p : src->mapped_by) {
    auto it = p->mappings_.find(src_id);
    if (it != p->mappings_.end()) {
      if (it->second.class_slot != mpk::KeyClassTable::kNoSlot) {
        p->key_classes_.Release(it->second.class_slot, src_id);
      } else {
        p->key_classes_.FreeLegacyKey(it->second.key);
      }
      p->mappings_.erase(it);
    }
    for (const auto& [start, len] : src->runs) {
      for (uint64_t pg = start; pg < start + len; pg++) {
        SetPageKeyLocked(*p, pg, mpk::kUnmapped);
      }
    }
  }
  for (Process* p : dst->mapped_by) {
    const Process::Mapping& m = p->mappings_[dst_id];
    const uint8_t key = EffectiveKeyLocked(*p, m);
    uint8_t tag = m.writable ? key : static_cast<uint8_t>(key | mpk::kPageReadOnly);
    for (const auto& [start, len] : src->runs) {
      for (uint64_t pg = start; pg < start + len; pg++) {
        SetPageKeyLocked(*p, pg, tag);
      }
    }
  }
  coffers_.erase(src_id);
  return old_root_off;
}

Status KernFs::CofferRecoverBegin(Process& proc, uint32_t coffer_id, uint64_t lease_ns) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  uint64_t root_off = dev_->OffsetOf(root);
  if ((root->flags & kCofferInRecovery) && root->recovery_lease_ns > common::NowNs()) {
    return Err::kBusy;
  }
  dev_->Store64(root_off + offsetof(CofferRoot, recovery_lease_ns),
                common::NowNs() + lease_ns);
  dev_->Store16(root_off + offsetof(CofferRoot, flags),
                static_cast<uint16_t>(root->flags | kCofferInRecovery));
  dev_->PersistRange(root_off, sizeof(CofferRoot));

  // Unmap from everyone except the initiator.
  std::vector<Process*> others;
  for (Process* p : c->mapped_by) {
    if (p != &proc) {
      others.push_back(p);
    }
  }
  for (Process* p : others) {
    UnmapLocked(*p, coffer_id);
  }
  return common::OkStatus();
}

Result<uint64_t> KernFs::CofferRecoverEnd(Process& proc, uint32_t coffer_id,
                                          const std::vector<uint64_t>& in_use_pages) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  if (!(root->flags & kCofferInRecovery)) {
    return Err::kInval;
  }
  std::set<uint64_t> in_use(in_use_pages.begin(), in_use_pages.end());
  in_use.insert(c->root_page);
  if (root->root_inode_off != 0) {
    in_use.insert(root->root_inode_off / nvm::kPageSize);
  }
  if (root->custom_off != 0) {
    in_use.insert(root->custom_off / nvm::kPageSize);
  }

  // Reclaim owned pages the µFS did not report.
  uint64_t reclaimed = 0;
  std::map<uint64_t, uint64_t> new_runs;
  for (const auto& [start, len] : c->runs) {
    uint64_t p = start;
    while (p < start + len) {
      if (in_use.count(p)) {
        // Extend or start a kept run.
        auto it = new_runs.rbegin();
        if (it != new_runs.rend() && it->first + it->second == p) {
          it->second++;
        } else {
          new_runs[p] = 1;
        }
        p++;
      } else {
        uint64_t free_start = p;
        while (p < start + len && !in_use.count(p)) {
          p++;
        }
        FreeRun(PageRun{free_start, p - free_start});
        for (Process* pr : c->mapped_by) {
          for (uint64_t pg = free_start; pg < p; pg++) {
            SetPageKeyLocked(*pr, pg, mpk::kUnmapped);
          }
        }
        reclaimed += p - free_start;
      }
    }
  }
  c->runs = std::move(new_runs);

  uint64_t root_off = dev_->OffsetOf(root);
  dev_->Store64(root_off + offsetof(CofferRoot, num_pages), SumRuns(c->runs));
  dev_->Store16(root_off + offsetof(CofferRoot, flags),
                static_cast<uint16_t>(root->flags & ~kCofferInRecovery));
  dev_->PersistRange(root_off, sizeof(CofferRoot));
  return reclaimed;
}

Status KernFs::CofferRename(Process& proc, uint32_t coffer_id, const std::string& new_path) {
  KernelEntry enter(crossing_ns_);
  if (new_path.empty() || new_path[0] != '/' || new_path.size() >= kMaxCofferPath) {
    return Err::kInval;
  }
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  RETURN_IF_ERROR(CheckMappedWritable(proc, coffer_id));
  if (PathMapLookup(new_path).ok()) {
    return Err::kExist;
  }
  CofferRoot* root = RootOf(*c);
  std::string old_path = root->path;

  PathMapErase(old_path);
  PersistRootPath(root, new_path);
  RETURN_IF_ERROR(PathMapInsert(new_path, dev_->OffsetOf(root)));

  // Rewrite descendants' stored paths (their coffer paths embed the prefix).
  std::string old_prefix = old_path == "/" ? "/" : old_path + "/";
  std::string new_prefix = new_path == "/" ? "/" : new_path + "/";
  for (auto& [id, info] : coffers_) {
    if (id == coffer_id) {
      continue;
    }
    CofferRoot* r = RootOf(info);
    std::string p = r->path;
    if (p.size() > old_prefix.size() && p.compare(0, old_prefix.size(), old_prefix) == 0) {
      std::string np = new_prefix + p.substr(old_prefix.size());
      PathMapErase(p);
      PersistRootPath(r, np);
      RETURN_IF_ERROR(PathMapInsert(np, dev_->OffsetOf(r)));
    }
  }
  return common::OkStatus();
}

Status KernFs::CofferFixupPaths(Process& proc, const std::string& old_prefix,
                                const std::string& new_prefix) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  std::string op = old_prefix.back() == '/' ? old_prefix : old_prefix + "/";
  std::string np = new_prefix.back() == '/' ? new_prefix : new_prefix + "/";
  for (auto& [id, info] : coffers_) {
    CofferRoot* r = RootOf(info);
    std::string p = r->path;
    if (p.size() > op.size() && p.compare(0, op.size(), op) == 0) {
      std::string fixed = np + p.substr(op.size());
      PathMapErase(p);
      PersistRootPath(r, fixed);
      RETURN_IF_ERROR(PathMapInsert(fixed, dev_->OffsetOf(r)));
    }
  }
  return common::OkStatus();
}

Status KernFs::CofferChmod(Process& proc, uint32_t coffer_id, uint16_t mode) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  if (!proc.cred().IsRoot() && proc.cred().uid != root->uid) {
    return Err::kPerm;
  }
  uint64_t root_off = dev_->OffsetOf(root);
  dev_->Store16(root_off + offsetof(CofferRoot, mode), mode);
  dev_->PersistRange(root_off + offsetof(CofferRoot, mode), 2);
  // The permission triple IS the protection class: every process with the
  // coffer mapped re-homes it into the new class.
  if (key_virtualization_) {
    const mpk::ProtClass cls{root->uid, root->gid, mode};
    for (Process* p : c->mapped_by) {
      MigrateClassLocked(*p, *c, cls);
    }
  }
  return common::OkStatus();
}

Status KernFs::CofferChown(Process& proc, uint32_t coffer_id, uint32_t uid, uint32_t gid) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  CofferRoot* root = RootOf(*c);
  if (!proc.cred().IsRoot()) {
    return Err::kPerm;
  }
  uint64_t root_off = dev_->OffsetOf(root);
  dev_->Store32(root_off + offsetof(CofferRoot, uid), uid);
  dev_->Store32(root_off + offsetof(CofferRoot, gid), gid);
  dev_->PersistRange(root_off + offsetof(CofferRoot, uid), 8);
  if (key_virtualization_) {
    const mpk::ProtClass cls{uid, gid, root->mode};
    for (Process* p : c->mapped_by) {
      MigrateClassLocked(*p, *c, cls);
    }
  }
  return common::OkStatus();
}

Status KernFs::FileMmap(Process& proc, uint32_t coffer_id, const std::vector<uint64_t>& pages,
                        bool writable) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  auto it = proc.mappings_.find(coffer_id);
  if (it == proc.mappings_.end() || (writable && !it->second.writable)) {
    return Err::kAcces;
  }
  for (uint64_t pg : pages) {
    if (pg >= sb_->num_pages || ReadEntry(pg).coffer_id != coffer_id || pg == c->root_page) {
      return Err::kInval;
    }
  }
  // Retag under the default key: application code may now access the pages
  // without a µFS window (this is what mmap(2) of a DAX file gives you).
  const uint8_t tag = writable ? mpk::kDefaultKey
                               : static_cast<uint8_t>(mpk::kDefaultKey | mpk::kPageReadOnly);
  for (uint64_t pg : pages) {
    SetPageKeyLocked(proc, pg, tag);
  }
  return common::OkStatus();
}

Status KernFs::FileMunmap(Process& proc, uint32_t coffer_id,
                          const std::vector<uint64_t>& pages) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  auto it = proc.mappings_.find(coffer_id);
  if (it == proc.mappings_.end()) {
    return Err::kInval;
  }
  // Effective key: kUnmapped while the class is evicted (the pages rejoin
  // the coffer dark; the next fault-in walks the full run map anyway).
  const uint8_t key = EffectiveKeyLocked(proc, it->second);
  const uint8_t tag =
      it->second.writable ? key : static_cast<uint8_t>(key | mpk::kPageReadOnly);
  for (uint64_t pg : pages) {
    if (pg >= sb_->num_pages || ReadEntry(pg).coffer_id != coffer_id) {
      return Err::kInval;
    }
    SetPageKeyLocked(proc, pg, tag);
  }
  return common::OkStatus();
}

Result<uint64_t> KernFs::FileExecve(Process& proc, uint32_t coffer_id, uint16_t file_mode,
                                    const std::vector<uint64_t>& pages, uint64_t image_size) {
  KernelEntry enter(crossing_ns_);
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  // Execution permission is µFS-maintained (coffers are mapped
  // non-executable, §4.3); the kernel checks it at execve time.
  uint16_t bits = proc.cred().uid == RootOf(*c)->uid ? (file_mode >> 6)
                  : proc.cred().gid == RootOf(*c)->gid ? (file_mode >> 3)
                                                       : file_mode;
  if (!proc.cred().IsRoot() && !(bits & 1)) {
    return Err::kAcces;
  }
  // "Load" the image: hash it page by page (validating ownership), the
  // stand-in for setting up a new address space from the file.
  uint64_t digest = 0xcbf29ce484222325ULL;
  uint64_t remaining = image_size;
  for (uint64_t pg : pages) {
    if (pg >= sb_->num_pages || ReadEntry(pg).coffer_id != coffer_id) {
      return Err::kInval;
    }
    // zofs-lint: allow(raw-nvm-deref) — kernel-side execve hash over pages just ownership-checked above
    const uint8_t* bytes = dev_->base() + pg * nvm::kPageSize;
    const uint64_t n = std::min<uint64_t>(remaining, nvm::kPageSize);
    for (uint64_t i = 0; i < n; i++) {
      digest = (digest ^ bytes[i]) * 0x100000001b3ULL;
    }
    remaining -= n;
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Introspection

const CofferRoot* KernFs::RootPageOf(uint32_t coffer_id) const {
  return dev_->As<CofferRoot>(static_cast<uint64_t>(coffer_id) * nvm::kPageSize);
}

Result<std::vector<PageRun>> KernFs::PagesOf(uint32_t coffer_id) {
  common::MutexLock lk(&mu_);
  CofferInfo* c = FindCoffer(coffer_id);
  if (c == nullptr) {
    return Err::kNoEnt;
  }
  std::vector<PageRun> out;
  for (const auto& [start, len] : c->runs) {
    out.push_back(PageRun{start, len});
  }
  return out;
}

uint64_t KernFs::FreePages() {
  common::MutexLock lk(&mu_);
  uint64_t n = 0;
  for (const auto& [start, len] : free_by_addr_) {
    n += len;
  }
  return n;
}

std::vector<uint32_t> KernFs::AllCofferIds() {
  common::MutexLock lk(&mu_);
  std::vector<uint32_t> out;
  for (const auto& [id, info] : coffers_) {
    out.push_back(id);
  }
  return out;
}

std::string KernFs::CheckAllocTableForTest() {
  common::MutexLock lk(&mu_);
  const uint64_t num_pages = sb_->num_pages;
  // 1. free maps consistent with the table.
  for (const auto& [start, len] : free_by_addr_) {
    for (uint64_t p = start; p < start + len; p++) {
      if (table_[p].coffer_id != 0) {
        return "free map covers allocated page " + std::to_string(p);
      }
    }
  }
  // 2. coffer runs consistent with the table.
  uint64_t owned = 0;
  for (const auto& [id, info] : coffers_) {
    for (const auto& [start, len] : info.runs) {
      owned += len;
      for (uint64_t p = start; p < start + len; p++) {
        if (table_[p].coffer_id != id) {
          return "coffer " + std::to_string(id) + " run covers foreign page " +
                 std::to_string(p);
        }
      }
    }
  }
  // 3. every pool page accounted for exactly once.
  uint64_t free_total = 0;
  for (const auto& [start, len] : free_by_addr_) {
    free_total += len;
  }
  if (owned + free_total != num_pages - sb_->pool_start_page) {
    return "page accounting mismatch";
  }
  return "";
}

}  // namespace kernfs
