// Per-thread submission/completion channels into KernFS (ZUFS-style).
//
// Every KernFS entry point charges a full user->kernel crossing. The channel
// amortizes that cost two ways, mirroring ZUFS's per-thread channel design
// ("low latency, CPU locality, lock-less parallelism") and KucoFS's
// kernel/user collaboration split:
//
//   * Batching — a synchronous call (Map/Unmap/Enlarge) does not enter the
//     kernel alone: it drains every request queued on this thread's
//     submission ring in the SAME KernelEntry, so N requests pay one
//     crossing (KernFs::ExecuteBatch).
//   * Async ring — background work (allocator refill prefetch, deferred
//     unmaps) is submitted without entering the kernel at all. It executes
//     piggybacked on the next synchronous drain, at an explicit Flush(), or
//     when its completion is first needed (TakeEnlarge); crossings charged
//     by an all-background drain are attributed to the background counter,
//     so foreground kernel_crossings_per_op measures only what an op truly
//     waited on.
//
// One Channel belongs to one submitting thread (CPU locality); a light
// SpinLock still guards the rings because ChannelSet::DrainAll (unmount) and
// stats aggregation may run from another thread. Completions for enlarge
// grants park in the done ring until the allocator harvests them inside its
// coffer window; grants never harvested are returned to the kernel
// (CofferShrink) at drain time so clean shutdowns strand no pages.
//
// Durability interaction (see DESIGN.md): a channel drain may execute
// CofferEnlarge, whose allocation-table update fences. That fence can occur
// mid-epoch of the write-path batcher; it is safe for the same reason the
// synchronous refill always was — staged data is unreachable until its
// intent publishes, so the kernel's fence exposes only kernel state.

#ifndef SRC_KERNFS_CHANNEL_H_
#define SRC_KERNFS_CHANNEL_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/kernfs/kernfs.h"

namespace kernfs {

// Per-channel accounting (the per-thread crossing counters of the
// CrossingCount() attribution bugfix; aggregated by ChannelSet).
struct ChannelStats {
  uint64_t crossings = 0;          // KernelEntry constructions via this channel
  uint64_t foreground_crossings = 0;
  uint64_t background_crossings = 0;
  uint64_t requests = 0;           // requests executed (sync + async)
  uint64_t batched_requests = 0;   // requests that shared a crossing with others
  uint64_t async_submitted = 0;    // requests queued on the async ring
  uint64_t harvested = 0;          // completions consumed (TakeEnlarge/Harvest)
};

class Channel {
 public:
  // Registers with the KernFs channel registry so the dead-process reaper can
  // find this ring if the owning process is killed; the dtor unregisters.
  Channel(KernFs* kfs, Process* proc);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // ---- synchronous ops: queue-drain + self in ONE KernelEntry -------------
  Result<MapInfo> Map(uint32_t coffer_id, bool writable);
  Status Unmap(uint32_t coffer_id);
  Result<std::vector<PageRun>> Enlarge(uint32_t coffer_id, uint64_t n_pages);
  // Key-window fault-in (ChanOp::kRetag, ISSUE 10): restores a physical key
  // to the coffer's protection class and retags its pages, batched with
  // whatever else is queued — one crossing, no unmap.
  Result<MapInfo> Retag(uint32_t coffer_id);

  // ---- async ring ---------------------------------------------------------
  // Queues a refill request; no crossing now. At most one enlarge is kept
  // pending per coffer (returns 0 when one is already pending or completed-
  // unharvested, else the submission seq).
  uint64_t SubmitEnlarge(uint32_t coffer_id, uint64_t n_pages);
  // Queues a deferred unmap; executes at the next drain point.
  uint64_t SubmitUnmap(uint32_t coffer_id);
  // True while an enlarge for `coffer_id` is queued or completed-unharvested.
  bool HasPendingEnlarge(uint32_t coffer_id);

  // Executes everything queued on the async ring now (one background-
  // attributed crossing if the ring is non-empty). Completions move to the
  // done ring.
  void Flush();

  // Claims the completed enlarge grant for `coffer_id`, executing the queued
  // request first if it has not run yet. Returns false when none is pending.
  // The caller links the granted runs while it holds the coffer's window.
  bool TakeEnlarge(uint32_t coffer_id, ChanCompletion* out);

  // Drains non-enlarge completions (deferred unmaps etc.). No crossing.
  std::vector<ChanCompletion> Harvest();

  // ---- drain support / introspection --------------------------------------
  // Unexecuted enlarge requests are dropped (nothing happened in the kernel);
  // queued unmaps execute; completed-unharvested enlarge grants are returned
  // via CofferShrink in the same batch. Called by ChannelSet::DrainAll.
  void Drain();

  // Reaper-side reclamation for a DEAD owner (KernFs::ReapDeadProcesses /
  // KillProcess / FsUmount). Unlike Drain, nothing re-enters the kernel on
  // the corpse's behalf: unexecuted submissions are dropped (they never
  // reached the kernel; deferred unmaps are moot — the whole process is being
  // unmapped), and completed-unharvested enlarge grants are RETURNED to the
  // caller as (coffer_id, runs) pairs so KernFs can shrink them back under
  // its own lock. Rings are left empty.
  std::vector<std::pair<uint32_t, std::vector<PageRun>>> ReapForKernel();

  ChannelStats stats();
  size_t QueuedForTest();
  size_t DoneForTest();
  // Scribbles the i-th queued request in place (fault-injection: a corrupted
  // in-flight entry must complete kInval, not dispatch).
  bool CorruptQueuedForTest(size_t idx);

 private:
  // Appends `fg` (optional) to the queued requests and executes the whole
  // batch in one KernelEntry. The fg completion (matched by seq) is returned
  // through *fg_done; async completions go to the done ring.
  void RunBatch(const ChanRequest* fg, ChanCompletion* fg_done) EXCLUDES(mu_);
  void RunBatchLocked(const ChanRequest* fg, ChanCompletion* fg_done) REQUIRES(mu_);

  KernFs* kfs_;
  Process* proc_;
  // Cached so the destructor can unregister after the reaper has already
  // freed a dead owner's Process (an abandoned FsLib outlives the corpse).
  uint32_t pid_;

  common::SpinLock mu_;
  std::vector<ChanRequest> sub_ GUARDED_BY(mu_);    // submission ring (async)
  std::vector<ChanCompletion> done_ GUARDED_BY(mu_);  // completion ring
  // coffer -> true while an enlarge is queued or completed-unharvested.
  std::unordered_map<uint32_t, bool> pending_enlarge_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  ChannelStats stats_ GUARDED_BY(mu_);
};

// Registry of per-thread channels for one (KernFs, Process) pair — owned by
// the µFS instance. Thread-local caching mirrors the ZoFs session cache:
// steady state resolves Current() without touching the registry lock.
class ChannelSet {
 public:
  // `enabled == false` (Options::sync_crossings) disables channels entirely:
  // Current() returns nullptr and callers take the legacy synchronous path.
  ChannelSet(KernFs* kfs, Process* proc, bool enabled);
  ~ChannelSet();

  ChannelSet(const ChannelSet&) = delete;
  ChannelSet& operator=(const ChannelSet&) = delete;

  bool enabled() const { return enabled_; }

  // The calling thread's channel (created on demand); nullptr when disabled.
  Channel* Current();

  // Drains every channel (unmount / destruction): queued unmaps execute,
  // unharvested enlarge grants return to the kernel, pending refill requests
  // are dropped unexecuted.
  void DrainAll();

  // Marks the owning process dead: the destructor's DrainAll becomes a no-op
  // (a corpse must not re-enter the kernel). Channel dtors still run and
  // unregister from the KernFs registry — that is volatile-only cleanup.
  void Abandon();

  ChannelStats Aggregate();

 private:
  KernFs* kfs_;
  Process* proc_;
  const bool enabled_;
  bool abandoned_ = false;
  // Never-reused id for the thread-local cache (a ChannelSet constructed at
  // a recycled address must not match stale TLS).
  const uint64_t set_id_;

  common::Mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Channel>> by_tid_ GUARDED_BY(mu_);
};

}  // namespace kernfs

#endif  // SRC_KERNFS_CHANNEL_H_
