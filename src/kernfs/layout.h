// On-NVM layout of the kernel-managed structures (paper §4.1, Figure 3).
//
//   page 0                : superblock
//   pages [1, A]          : allocation table (one 8-byte entry per NVM page)
//   pages (A, A+P]        : path-coffer hash table (8-byte buckets)
//   remaining pages       : allocatable pool (coffers)
//
// All cross-page references are stored as byte offsets from the NVM base;
// coffer IDs are the page index of the coffer's root page (page 0 can never
// be a coffer root, so 0 doubles as "free" in the allocation table).

#ifndef SRC_KERNFS_LAYOUT_H_
#define SRC_KERNFS_LAYOUT_H_

#include <cstdint>

#include "src/nvm/nvm.h"

namespace kernfs {

inline constexpr uint64_t kSuperMagic = 0x5a6f46535f545259ULL;   // "ZoFS_TRY"
inline constexpr uint64_t kCofferMagic = 0x434f464645525f30ULL;  // "COFFER_0"
inline constexpr uint32_t kKernelOwner = 0xffffffffu;  // alloc-table owner of kernel pages
inline constexpr size_t kMaxCofferPath = 1920;

// Coffer types (the path-coffer map records one per coffer; FSLibs dispatches
// to the µFS registered for the type).
inline constexpr uint32_t kCofferTypeZofs = 1;
inline constexpr uint32_t kCofferTypeLogFs = 2;

struct Superblock {
  uint64_t magic;
  uint32_t version;
  uint32_t _pad0;
  uint64_t num_pages;
  uint64_t alloc_table_off;    // byte offset of the allocation table
  uint64_t alloc_table_pages;
  uint64_t path_map_off;       // byte offset of the bucket array
  uint64_t path_map_buckets;
  uint64_t pool_start_page;    // first allocatable page
  uint32_t root_coffer_id;     // coffer of "/"
  uint32_t _pad1;
};
static_assert(sizeof(Superblock) <= nvm::kPageSize);

// Allocation table entry (Figure 3): owner coffer-ID (0 = free) and the
// number of consecutive pages from this slot sharing that owner. `run_len`
// is authoritative at the head slot of each run.
struct AllocEntry {
  uint32_t coffer_id;
  uint32_t run_len;
};
static_assert(sizeof(AllocEntry) == 8);

// Path-coffer hash table bucket values.
inline constexpr uint64_t kBucketEmpty = 0;
inline constexpr uint64_t kBucketTombstone = 1;

// Flags in CofferRoot::flags.
inline constexpr uint16_t kCofferInRecovery = 1u << 0;

// The coffer root page: kernel-owned metadata about one coffer. Mapped
// read-only into user space (the µFS may read it, never write it).
struct CofferRoot {
  uint64_t magic;
  uint32_t coffer_id;
  uint32_t type;
  uint32_t uid;
  uint32_t gid;
  uint16_t mode;
  uint16_t flags;
  uint32_t _pad0;
  uint64_t recovery_lease_ns;  // absolute deadline while kCofferInRecovery is set
  uint64_t root_inode_off;     // µFS root-file inode page (byte offset)
  uint64_t custom_off;         // µFS per-coffer custom page (byte offset)
  uint64_t num_pages;          // pages currently owned by the coffer
  uint16_t path_len;
  char path[kMaxCofferPath];   // NUL-terminated absolute path of the coffer root file
};
static_assert(sizeof(CofferRoot) <= nvm::kPageSize);

// A run of consecutive pages, the unit of space handed between KernFS and
// coffers.
struct PageRun {
  uint64_t start_page;
  uint64_t len;

  bool operator==(const PageRun&) const = default;
};

}  // namespace kernfs

#endif  // SRC_KERNFS_LAYOUT_H_
