// KernFS — the kernel half of Treasury (paper §3.2, §4.1), simulated as a
// library object shared by all simulated processes.
//
// KernFS owns global space management (the persistent allocation table of
// Figure 3 plus volatile free/owner indexes) and the persistent path-coffer
// hash table. It treats coffers as black boxes: it knows their path, type,
// permission and page set, never their internal structure.
//
// Every public entry point models a user->kernel crossing: it charges a
// configurable crossing cost (`kernel_crossing_ns`) and runs with MPK
// enforcement suspended (the kernel is not subject to the user PKRU).
//
// Processes are simulated by `Process` objects: each carries credentials, a
// page-key table (its "page table" key bits), its MPK key budget and its
// coffer mappings. Threads bind to a process via `Process::BindCurrentThread`.

#ifndef SRC_KERNFS_KERNFS_H_
#define SRC_KERNFS_KERNFS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/kernfs/layout.h"
#include "src/mpk/keyclass.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"
#include "src/vfs/vfs.h"

namespace kernfs {

using common::Err;
using common::Result;
using common::Status;

class KernFs;
class Channel;

// A simulated OS process: credentials + per-process MPK state.
class Process {
 public:
  uint32_t pid() const { return pid_; }
  const vfs::Cred& cred() const { return cred_; }
  void SetCred(const vfs::Cred& c) { cred_ = c; }

  // Binds the calling thread to this process's address space (installs the
  // page-key table for MPK checks). A thread acts for one process at a time.
  void BindCurrentThread() { mpk::BindThreadToProcess(&page_keys_); }

  // True if the process currently has `coffer_id` mapped.
  bool HasMapped(uint32_t coffer_id) const;
  // MPK key assigned to a mapped coffer (0xff if not mapped, or if the
  // coffer's protection class is currently key-window evicted).
  uint8_t KeyFor(uint32_t coffer_id) const;

  // Lock-free read of the published class→key assignment (the user-visible
  // key table; see src/mpk/keyclass.h). The µFS validates its cached
  // MapInfo.key against this with no crossing; kUnmapped means the class is
  // key-window evicted and must be faulted back in via CofferRetag.
  uint8_t PublishedClassKey(uint16_t slot) const { return key_classes_.PublishedKey(slot); }

  // Lock-free LRU bump for a class the µFS just revalidated: keeps an
  // in-flight op's working-set classes off the key window's victim list
  // (see mpk::KeyClassTable::Touch).
  void TouchClassKey(uint16_t slot) { key_classes_.Touch(slot); }

  // Distinct protection classes currently holding a mapped coffer (the v5
  // key_class_count bench counter).
  size_t LiveProtClassCount() const { return key_classes_.LiveClassCount(); }

 private:
  friend class KernFs;
  Process(uint32_t pid, vfs::Cred cred, size_t num_pages)
      : pid_(pid), cred_(cred), page_keys_(num_pages, 0xff) {}

  struct Mapping {
    uint8_t key;        // class path: key at map/fault-in time (may go stale)
    bool writable;
    uint16_t class_slot = mpk::KeyClassTable::kNoSlot;  // kNoSlot = legacy key
  };

  uint32_t pid_;
  vfs::Cred cred_;
  mpk::PageKeyTable page_keys_;  // 0xff = unmapped
  // Physical keys 1..15 and the class→key window both live here; KernFS is
  // the only mutator (under its lock). See src/mpk/keyclass.h.
  mpk::KeyClassTable key_classes_;
  std::unordered_map<uint32_t, Mapping> mappings_;  // coffer-id -> mapping
  bool fslib_mounted_ = false;
};

// Result of coffer_map: everything the µFS needs to start managing the
// coffer in user space.
struct MapInfo {
  uint8_t key = 0;
  bool writable = false;
  uint32_t type = 0;
  uint64_t root_page_off = 0;   // CofferRoot page (read-only to the µFS)
  uint64_t root_inode_off = 0;
  uint64_t custom_off = 0;
  // Protection-class slot of the coffer (kNoSlot on the legacy per-coffer
  // path). The µFS revalidates `key` against PublishedClassKey(class_slot)
  // on every cache hit: key-window eviction invalidates nothing globally.
  uint16_t class_slot = mpk::KeyClassTable::kNoSlot;
};

// ---- Batched submission/completion interface (ZUFS-style channels) --------
//
// A ChanRequest is one queued kernel operation; ExecuteBatch runs a whole
// vector of them under ONE KernelEntry, so N queued requests pay one
// crossing. The per-thread `Channel` (src/kernfs/channel.h) is the producer;
// KernFs validates each entry before dispatch (a scribbled in-flight request
// must fail that request, not the kernel).

enum class ChanOp : uint8_t {
  kNop = 0,
  kMap,      // CofferMap(coffer_id, writable)
  kUnmap,    // CofferUnmap(coffer_id)
  kEnlarge,  // CofferEnlarge(coffer_id, n_pages)
  kShrink,   // CofferShrink(coffer_id, runs) — drain-time grant return
  kRetag,    // CofferRetag(coffer_id) — key-window fault-in (ISSUE 10)
};

// Integrity tag checked at drain: in-flight entries live in DRAM and a stray
// write (fault-injection) must be detected, not dispatched.
inline constexpr uint32_t kChanReqMagic = 0x43524551;  // "CREQ"

struct ChanRequest {
  ChanOp op = ChanOp::kNop;
  uint32_t coffer_id = 0;
  bool writable = false;
  bool background = false;  // submitted from the async ring
  uint64_t n_pages = 0;
  std::vector<PageRun> runs;  // kShrink payload
  uint64_t seq = 0;           // channel-local submission sequence
  uint32_t magic = kChanReqMagic;
};

struct ChanCompletion {
  ChanOp op = ChanOp::kNop;
  uint32_t coffer_id = 0;
  uint64_t seq = 0;
  bool background = false;
  Status status = common::OkStatus();
  MapInfo map_info;           // kMap result
  std::vector<PageRun> runs;  // kEnlarge grant
};

// ---- process death (paper §5 availability; the procmon campaign) ----------
//
// KillProcess abandons a process with NO cleanup — the simulation of a
// tenant dying mid-operation. Its mappings, MPK keys, channel rings and
// unharvested grants stay allocated until ReapDeadProcesses reclaims them;
// its leased locks and free lists stay claimed on NVM until survivors steal
// the expired leases (zofs::InodeLock / CofferAllocator) or the janitor
// sweeps them (zofs::ZoFs::ReclaimExpiredLists).

struct KillOptions {
  // Stray stores the dying process attempts per writable mapping — the MPK
  // containment oracle: every store must land inside a coffer the victim had
  // mapped writable, never outside (paper §3.4 Table 4).
  uint64_t stray_writes = 0;
  uint64_t seed = 1;
  // Writable coffers to spare from the burst. The soak spares shared coffers
  // whose contents the cross-tenant durability oracle checks: a victim CAN
  // legally corrupt a shared writable coffer (the paper accepts this), so
  // sparing it keeps that oracle sharp while the page-diff oracle still
  // proves containment on the rest.
  std::vector<uint32_t> spare_coffers;
};

struct KillStats {
  uint64_t stray_attempted = 0;
  uint64_t stray_landed = 0;   // inside a writable mapping (legal damage)
  uint64_t stray_blocked = 0;  // refused by MPK (containment held)
};

struct FormatOptions {
  uint64_t path_map_buckets = 1 << 14;
  uint16_t root_mode = 0755;
  uint32_t root_uid = 0;
  uint32_t root_gid = 0;
  uint32_t root_type = kCofferTypeZofs;
  // Pages beyond the root page handed to the root coffer at format time
  // (root inode page + custom page).
  uint64_t initial_coffer_pages = 2;
};

class KernFs {
 public:
  // Formats the device and mounts. The device must be zeroed or disposable.
  KernFs(nvm::NvmDevice* dev, const FormatOptions& opts);
  // Opens (re-mounts) an already-formatted device, rebuilding the volatile
  // indexes from the persistent allocation table — the post-crash path.
  explicit KernFs(nvm::NvmDevice* dev);
  ~KernFs();

  KernFs(const KernFs&) = delete;
  KernFs& operator=(const KernFs&) = delete;

  nvm::NvmDevice* dev() { return dev_; }
  uint32_t root_coffer_id() const { return root_coffer_id_; }

  // Cost of one user->kernel crossing, charged by every entry point.
  void set_kernel_crossing_ns(uint64_t ns) { crossing_ns_ = ns; }
  uint64_t kernel_crossing_ns() const { return crossing_ns_; }

  // MPK key virtualization (ISSUE 10): on (the default), same-(uid,gid,perm)
  // coffers share one physical key per process and key exhaustion runs the
  // LRU key window instead of returning kNoKeys. Off preserves the legacy
  // one-key-per-coffer path (bench_json's pre-virtualization baseline; the
  // µFS victim-evicts whole mappings on kNoKeys). Set before any CofferMap.
  void set_key_virtualization(bool on) { key_virtualization_ = on; }
  bool key_virtualization() const { return key_virtualization_; }

  // ---- Process management (simulation scaffolding, not a Table 5 op).
  Process* CreateProcess(vfs::Cred cred);
  void DestroyProcess(Process* proc);

  // Abandons `proc` as of a sudden death: optional stray-write burst in the
  // victim's user context (MPK enforced — the containment oracle), then the
  // process moves to the dead-process morgue with NO unmap, NO key release,
  // NO channel drain. Only ReapDeadProcesses reclaims it. The caller must
  // not touch `proc` afterwards (the FsLib above it must be Abandon()ed).
  KillStats KillProcess(Process* proc, const KillOptions& opts);

  // Reaps every morgue entry whose backoff deadline has passed: drains the
  // corpse's channel rings (returning unharvested enlarge grants to the free
  // pool), unmaps its coffers (freeing MPK keys) and erases it. A failed
  // reclaim re-arms with exponential backoff (the sick-coffer discipline);
  // after the backoff ladder is exhausted the mappings are torn down anyway
  // and any stranded pages are left to fsck. Returns processes reaped.
  uint64_t ReapDeadProcesses();
  size_t DeadProcessCountForTest();

  // ---- channel registry (dead-process reclamation + the DestroyProcess /
  // FsUmount leak fix). Channels self-register so the kernel can find and
  // drain a process's rings when the owning µFS is gone or never got to run
  // its own DrainAll.
  void RegisterChannel(uint32_t pid, Channel* ch);
  void UnregisterChannel(uint32_t pid, Channel* ch);

  // An empty system call (used by the ZoFS-sysempty variant of Figure 8).
  void Nop();

  // Executes a batch of channel requests under a single KernelEntry: the
  // whole point of the submission ring — N queued requests, one crossing.
  // Every request is validated (magic tag, known op) before dispatch; a
  // corrupted entry completes with kInval without touching kernel state.
  // The crossing is attributed background iff every request is background.
  void ExecuteBatch(Process& proc, const std::vector<ChanRequest>& reqs,
                    std::vector<ChanCompletion>* out);

  // ---- FS operations (Table 5).
  Status FsMount(Process& proc);
  Status FsUmount(Process& proc);

  // ---- Coffer operations (Table 5).
  // Creates a coffer: allocates its root page plus `extra_pages` data pages,
  // writes the root page (path/type/permission, root-inode and custom page
  // offsets pointing at the first two extra pages), installs it in the
  // path-coffer map. The caller must have the coffer's parent mapped
  // writable, or be creating the filesystem root.
  Result<uint32_t> CofferNew(Process& proc, const std::string& path, uint32_t type, uint16_t mode,
                             uint32_t uid, uint32_t gid, uint64_t extra_pages = 2);

  // Deletes a coffer, returning all its pages to the free pool.
  Status CofferDelete(Process& proc, uint32_t coffer_id);

  // Allocates `n_pages` more pages to the coffer. Returns the runs granted.
  // Serialised by the global kernel lock — the contention the paper measures
  // in MWCL/DWAL (§6.1).
  Result<std::vector<PageRun>> CofferEnlarge(Process& proc, uint32_t coffer_id, uint64_t n_pages);

  // Returns free pages from the coffer to the global pool.
  Status CofferShrink(Process& proc, uint32_t coffer_id, const std::vector<PageRun>& runs);

  // Permission-checks and maps a coffer into the process: assigns the MPK
  // key of the coffer's protection class — same-(uid,gid,perm) coffers share
  // one key, and class-count overflow runs the LRU key window — and tags the
  // coffer's pages in the process's page-key table. Only the legacy path
  // (key virtualization off) returns Err::kNoKeys on budget exhaustion.
  Result<MapInfo> CofferMap(Process& proc, uint32_t coffer_id, bool writable);
  Status CofferUnmap(Process& proc, uint32_t coffer_id);

  // Key-window fault-in: ensures the protection class of a *mapped* coffer
  // holds a physical key again (LRU-evicting another class if the budget is
  // full) and retags every member coffer's pages. One crossing, no unmap, no
  // session-epoch invalidation; usually reached batched via ChanOp::kRetag.
  // Returns the refreshed MapInfo. No-op returning current state on the
  // legacy path.
  Result<MapInfo> CofferRetag(Process& proc, uint32_t coffer_id);

  // Path-coffer map lookup (exact coffer path).
  Result<uint32_t> CofferFind(const std::string& path);

  // Splits `pages` out of `src` into a new coffer rooted at `new_path` with
  // the given permission. The first two moved pages become the new coffer's
  // root-inode and custom pages. Ownership is rewritten page-by-page in the
  // allocation table (deliberately expensive: Table 9). Returns the new
  // coffer's id.
  Result<uint32_t> CofferSplit(Process& proc, uint32_t src_id, const std::vector<PageRun>& pages,
                               const std::string& new_path, uint32_t type, uint16_t mode,
                               uint32_t uid, uint32_t gid, uint64_t new_root_inode_off,
                               uint64_t new_custom_off);

  // Moves page runs from coffer `src` to coffer `dst` (both mapped writable
  // by the caller). Ownership is rewritten page-by-page; this is the kernel
  // half of a cross-coffer rename (Table 9's second microbenchmark).
  Status CofferMovePages(Process& proc, uint32_t src_id, uint32_t dst_id,
                         const std::vector<PageRun>& pages);

  // Merges coffer `src` into `dst` (same permission required): all of src's
  // pages change owner, src leaves the path map. src's old root page is
  // handed to dst as a data page; its byte offset is returned so the µFS can
  // reclaim it.
  Result<uint64_t> CofferMerge(Process& proc, uint32_t dst_id, uint32_t src_id);

  // Marks the coffer in-recovery with a lease and unmaps it from every
  // process except the initiator (paper §3.5).
  Status CofferRecoverBegin(Process& proc, uint32_t coffer_id, uint64_t lease_ns);
  // The initiator reports in-use pages; the kernel reclaims the rest.
  // Returns the number of pages reclaimed.
  Result<uint64_t> CofferRecoverEnd(Process& proc, uint32_t coffer_id,
                                    const std::vector<uint64_t>& in_use_pages);

  // Updates the coffer path stored in the root page and the path map (used
  // by rename of a coffer root). Also rewrites the stored paths of child
  // coffers whose path has `old_path` as prefix.
  Status CofferRename(Process& proc, uint32_t coffer_id, const std::string& new_path);

  // Rewrites the stored path of every coffer under `old_prefix` to live
  // under `new_prefix` (used after a directory subtree moves between
  // coffers, so descendants' coffer paths stay consistent).
  Status CofferFixupPaths(Process& proc, const std::string& old_prefix,
                          const std::string& new_prefix);

  // Changes a coffer's permission (kernel-checked; owner or root only).
  Status CofferChmod(Process& proc, uint32_t coffer_id, uint16_t mode);
  Status CofferChown(Process& proc, uint32_t coffer_id, uint32_t uid, uint32_t gid);

  // ---- File operations (Table 5): mmap and execve need the kernel because
  // they change the page table / privilege state (paper §3.3).
  // Maps the given file pages directly into the process: the pages become
  // accessible to *application* code (default protection key) rather than
  // only inside µFS windows. The µFS supplies the page list (it knows the
  // file layout; the kernel only validates ownership).
  Status FileMmap(Process& proc, uint32_t coffer_id, const std::vector<uint64_t>& pages,
                  bool writable);
  // Restores the coffer-key tagging for previously mmapped pages.
  Status FileMunmap(Process& proc, uint32_t coffer_id, const std::vector<uint64_t>& pages);
  // Validates and "loads" an executable image from the given pages (the
  // paper's file_execve). The simulation checks the exec permission and
  // returns a digest of the image in lieu of transferring control.
  Result<uint64_t> FileExecve(Process& proc, uint32_t coffer_id, uint16_t file_mode,
                              const std::vector<uint64_t>& pages, uint64_t image_size);

  // ---- Introspection (used by tests, fsck and the benchmarks).
  const CofferRoot* RootPageOf(uint32_t coffer_id) const;
  Result<std::vector<PageRun>> PagesOf(uint32_t coffer_id);
  uint64_t FreePages();
  std::vector<uint32_t> AllCofferIds();
  // Validates allocation-table invariants (run-length consistency, no
  // overlaps); returns an error description or empty string.
  std::string CheckAllocTableForTest();

 private:
  struct CofferInfo {
    uint32_t id = 0;
    uint64_t root_page = 0;
    std::map<uint64_t, uint64_t> runs;  // start_page -> len (includes root page)
    std::set<Process*> mapped_by;
  };

  // --- unmetered implementations -------------------------------------------
  // Each public Table-5 entry point is KernelEntry + DoX; internal callers
  // (the format constructor, ExecuteBatch) invoke DoX directly so kernel-
  // internal work never charges a second crossing or trips the non-reentrance
  // audit. Each DoX takes mu_ itself.
  Result<uint32_t> DoCofferNew(Process& proc, const std::string& path, uint32_t type,
                               uint16_t mode, uint32_t uid, uint32_t gid, uint64_t extra_pages);
  Result<std::vector<PageRun>> DoCofferEnlarge(Process& proc, uint32_t coffer_id,
                                               uint64_t n_pages);
  Status DoCofferShrink(Process& proc, uint32_t coffer_id, const std::vector<PageRun>& runs);
  Result<MapInfo> DoCofferMap(Process& proc, uint32_t coffer_id, bool writable);
  Status DoCofferUnmap(Process& proc, uint32_t coffer_id);
  Result<MapInfo> DoCofferRetag(Process& proc, uint32_t coffer_id);

  // Ownership-validated run return (the body of DoCofferShrink, shared with
  // the reaper's grant reclamation, which validates ownership the same way
  // but skips the caller-mapped-writable check — the corpse obviously cannot
  // hold a mapping requirement).
  Status ShrinkRunLocked(CofferInfo* c, const PageRun& r) REQUIRES(mu_);
  void PersistCofferSizeLocked(CofferInfo* c) REQUIRES(mu_);

  // Drains every channel registered for `pid` (kernel-side): unharvested
  // enlarge grants return to the free pool, queued-but-unexecuted requests
  // are dropped. Takes each channel's own lock, then mu_ — never the
  // reverse. Returns pages reclaimed from grants; `*all_ok` reports whether
  // every grant validated (the reaper's backoff trigger).
  uint64_t ReclaimProcessChannels(uint32_t pid, bool* all_ok = nullptr);

  // --- allocation table (callers hold mu_) ---
  AllocEntry ReadEntry(uint64_t page) const REQUIRES(mu_);
  void WriteEntry(uint64_t page, uint32_t owner, uint32_t run_len) REQUIRES(mu_);
  Result<std::vector<PageRun>> AllocPages(uint64_t n, uint32_t owner) REQUIRES(mu_);
  void FreeRun(PageRun run) REQUIRES(mu_);
  void EraseSizeEntry(uint64_t len, uint64_t start) REQUIRES(mu_);
  // per-page rewrite (split/merge path)
  void SetRunOwner(PageRun run, uint32_t owner) REQUIRES(mu_);

  // --- path map (callers hold mu_) ---
  Result<uint64_t> PathMapLookup(const std::string& path) const REQUIRES(mu_);  // -> root page
  Status PathMapInsert(const std::string& path, uint64_t root_page) REQUIRES(mu_);
  Status PathMapErase(const std::string& path) REQUIRES(mu_);

  CofferInfo* FindCoffer(uint32_t id) REQUIRES(mu_);
  CofferRoot* RootOf(CofferInfo& c) REQUIRES(mu_);
  Status CheckMappedWritable(Process& proc, uint32_t coffer_id) REQUIRES(mu_);
  // The single sanctioned page-key store in the kernel (the direct-key-assign
  // lint funnel; see src/mpk/keyclass.h).
  void SetPageKeyLocked(Process& proc, uint64_t page, uint8_t tag) REQUIRES(mu_);
  void TagPagesForProcess(Process& proc, const CofferInfo& c, uint8_t key) REQUIRES(mu_);
  void UntagPagesForProcess(Process& proc, const CofferInfo& c) REQUIRES(mu_);
  void UnmapLocked(Process& proc, uint32_t coffer_id) REQUIRES(mu_);

  // --- protection classes (ISSUE 10; callers hold mu_) ---
  // The (uid, gid, perm) triple of the coffer root.
  mpk::ProtClass ClassOfLocked(CofferInfo& c) REQUIRES(mu_);
  // Tags every page of `c` for `proc`: writable mappings keep the root page
  // read-only; read-only mappings carry kPageReadOnly on every page.
  void TagCofferLocked(Process& proc, const CofferInfo& c, uint8_t key,
                       bool writable) REQUIRES(mu_);
  // Ensures the class behind `slot` holds a key; applies the LRU key-window
  // eviction (retag the victim class's pages to kUnmapped) and, on a fresh
  // assignment, retags this class's member pages. Returns kUnmapped only
  // when every key is pinned by legacy mappings.
  uint8_t EnsureClassKeyLocked(Process& proc, uint16_t slot) REQUIRES(mu_);
  // Re-homes a mapped coffer whose root triple changed (chmod/chown): drops
  // the old class membership, joins the new class and retags.
  void MigrateClassLocked(Process& proc, CofferInfo& c,
                          const mpk::ProtClass& cls) REQUIRES(mu_);
  // Current effective tag base for a mapping: the class/legacy key, or
  // kUnmapped while the class is key-window evicted.
  uint8_t EffectiveKeyLocked(const Process& proc, const Process::Mapping& m) REQUIRES(mu_);
  uint64_t PersistRootPath(CofferRoot* root, const std::string& path) REQUIRES(mu_);

  nvm::NvmDevice* dev_;
  Superblock* sb_;
  AllocEntry* table_;  // volatile pointer into NVM
  uint64_t* buckets_;  // volatile pointer into NVM

  uint64_t crossing_ns_ = 300;
  uint32_t root_coffer_id_ = 0;
  uint32_t next_pid_ = 1;
  bool key_virtualization_ = true;

  mutable common::Mutex mu_;  // the global kernel lock
  std::map<uint64_t, uint64_t> free_by_addr_ GUARDED_BY(mu_);       // start -> len
  std::multimap<uint64_t, uint64_t> free_by_size_ GUARDED_BY(mu_);  // len -> start
  std::unordered_map<uint32_t, CofferInfo> coffers_ GUARDED_BY(mu_);
  std::unordered_map<uint32_t, std::unique_ptr<Process>> procs_ GUARDED_BY(mu_);

  // The dead-process morgue: killed processes awaiting the reaper. Backoff
  // state mirrors the sick-coffer discipline (base 10 ms, doubling to 64x).
  struct DeadProc {
    std::unique_ptr<Process> proc;
    uint32_t fails = 0;
    uint64_t next_attempt_ns = 0;
  };
  std::unordered_map<uint32_t, DeadProc> dead_procs_ GUARDED_BY(mu_);

  // Channel registry. Its own mutex: registration happens at channel
  // construction (user context, no crossing) and the reaper walks it
  // WITHOUT holding mu_ (channel locks nest outside mu_, matching the
  // ExecuteBatch path where a channel holds its spinlock across the batch).
  common::Mutex chan_mu_;
  std::unordered_map<uint32_t, std::vector<Channel*>> channels_by_pid_ GUARDED_BY(chan_mu_);
};

// Process-wide count of simulated user->kernel crossings (KernelEntry
// constructions) since program start. Global across KernFs instances;
// benchmarks sample deltas around a measured phase to report crossings/op.
uint64_t CrossingCount();

// Foreground / background split of CrossingCount(). A crossing is background
// when it executes under a BackgroundCrossingScope — async-ring drains, lease
// housekeeping, backoff-driven recovery. Delta-sampling ForegroundCrossingCount
// around a measured phase no longer attributes background work to the
// foreground ops (the CrossingCount() mis-attribution bugfix).
// Invariant: CrossingCount() == Foreground + Background.
uint64_t ForegroundCrossingCount();
uint64_t BackgroundCrossingCount();

// Reaper accounting (process-wide, like the crossing counters): mappings
// unmapped and grant pages reclaimed from dead processes. bench_json samples
// deltas; the soak report totals them.
uint64_t ReapedMappingCount();
uint64_t ReapedGrantPageCount();

// Crossings charged by the calling thread since it first crossed (a
// per-thread counter; per-channel counts live in kernfs::Channel).
uint64_t ThreadCrossingCount();

// RAII: while alive on this thread, every KernelEntry is attributed to the
// background counter instead of the foreground one. Nestable.
class BackgroundCrossingScope {
 public:
  BackgroundCrossingScope();
  ~BackgroundCrossingScope();
  BackgroundCrossingScope(const BackgroundCrossingScope&) = delete;
  BackgroundCrossingScope& operator=(const BackgroundCrossingScope&) = delete;
};

// RAII: models entering the kernel — charges the crossing cost and suspends
// MPK enforcement for the scope (kernel accesses are not subject to the
// user-mode PKRU). Under ZOFS_AUDIT=1 a nested construction aborts: an entry
// point calling another public entry point would double-charge the crossing
// (kernel-internal work must go through the unmetered Do* helpers).
class KernelEntry {
 public:
  explicit KernelEntry(uint64_t crossing_ns);
  ~KernelEntry();
  KernelEntry(const KernelEntry&) = delete;
  KernelEntry& operator=(const KernelEntry&) = delete;

 private:
  const mpk::PageKeyTable* saved_table_;
  uint32_t saved_pkru_;
};

}  // namespace kernfs

#endif  // SRC_KERNFS_KERNFS_H_
