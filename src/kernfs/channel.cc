#include "src/kernfs/channel.h"

#include <atomic>
#include <utility>

#include "src/common/killpoint.h"

namespace kernfs {
namespace {

// Channel-local thread ids (kernfs cannot depend on zofs::CurrentTid).
// Never 0, never reused.
uint64_t ChanTid() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Channel::Channel(KernFs* kfs, Process* proc) : kfs_(kfs), proc_(proc), pid_(proc->pid()) {
  kfs_->RegisterChannel(pid_, this);
}

Channel::~Channel() { kfs_->UnregisterChannel(pid_, this); }

void Channel::RunBatch(const ChanRequest* fg, ChanCompletion* fg_done) {
  common::SpinLockGuard lk(&mu_);
  RunBatchLocked(fg, fg_done);
}

// The lock is held across ExecuteBatch. That is deliberate: the channel
// belongs to one thread, so contention is limited to DrainAll/stats from a
// second thread, and holding mu_ keeps the sub_/done_/pending_enlarge_ state
// transition atomic with respect to them. KernFs::mu_ nests inside channel
// mu_ and KernFs never calls into a channel while holding its own mu_
// (KillProcess/ReapDeadProcesses/FsUmount reclaim rings via
// Channel::ReapForKernel *before* taking KernFs::mu_), so there is no cycle.
void Channel::RunBatchLocked(const ChanRequest* fg, ChanCompletion* fg_done) {
  std::vector<ChanRequest> batch;
  batch.swap(sub_);
  if (fg != nullptr) {
    batch.push_back(*fg);
    batch.back().seq = next_seq_++;
  }
  if (batch.empty()) return;

  // Tenant death mid-batch: the batch vector (DRAM) evaporates with the
  // process; nothing reached the kernel. The spinlock guard unwinds.
  common::KillPoint(common::kKillMidChannelBatch);

  std::vector<ChanCompletion> comps;
  kfs_->ExecuteBatch(*proc_, batch, &comps);

  bool all_background = true;
  for (const ChanRequest& r : batch) {
    if (!r.background) all_background = false;
  }
  stats_.crossings++;
  if (all_background) {
    stats_.background_crossings++;
  } else {
    stats_.foreground_crossings++;
  }
  stats_.requests += batch.size();
  if (batch.size() > 1) stats_.batched_requests += batch.size();

  for (ChanCompletion& c : comps) {
    if (fg != nullptr && fg_done != nullptr && c.seq == batch.back().seq) {
      *fg_done = std::move(c);
      continue;
    }
    done_.push_back(std::move(c));
  }
}

Result<MapInfo> Channel::Map(uint32_t coffer_id, bool writable) {
  ChanRequest req;
  req.op = ChanOp::kMap;
  req.coffer_id = coffer_id;
  req.writable = writable;
  ChanCompletion done;
  RunBatch(&req, &done);
  if (!done.status.ok()) return done.status.error();
  return done.map_info;
}

Status Channel::Unmap(uint32_t coffer_id) {
  ChanRequest req;
  req.op = ChanOp::kUnmap;
  req.coffer_id = coffer_id;
  ChanCompletion done;
  RunBatch(&req, &done);
  return done.status;
}

Result<std::vector<PageRun>> Channel::Enlarge(uint32_t coffer_id,
                                              uint64_t n_pages) {
  ChanRequest req;
  req.op = ChanOp::kEnlarge;
  req.coffer_id = coffer_id;
  req.n_pages = n_pages;
  ChanCompletion done;
  RunBatch(&req, &done);
  if (!done.status.ok()) return done.status.error();
  return std::move(done.runs);
}

Result<MapInfo> Channel::Retag(uint32_t coffer_id) {
  ChanRequest req;
  req.op = ChanOp::kRetag;
  req.coffer_id = coffer_id;
  ChanCompletion done;
  RunBatch(&req, &done);
  if (!done.status.ok()) return done.status.error();
  return done.map_info;
}

uint64_t Channel::SubmitEnlarge(uint32_t coffer_id, uint64_t n_pages) {
  common::SpinLockGuard lk(&mu_);
  auto it = pending_enlarge_.find(coffer_id);
  if (it != pending_enlarge_.end() && it->second) return 0;
  pending_enlarge_[coffer_id] = true;
  ChanRequest req;
  req.op = ChanOp::kEnlarge;
  req.coffer_id = coffer_id;
  req.n_pages = n_pages;
  req.background = true;
  req.seq = next_seq_++;
  uint64_t seq = req.seq;
  sub_.push_back(std::move(req));
  stats_.async_submitted++;
  return seq;
}

uint64_t Channel::SubmitUnmap(uint32_t coffer_id) {
  common::SpinLockGuard lk(&mu_);
  ChanRequest req;
  req.op = ChanOp::kUnmap;
  req.coffer_id = coffer_id;
  req.background = true;
  req.seq = next_seq_++;
  uint64_t seq = req.seq;
  sub_.push_back(std::move(req));
  stats_.async_submitted++;
  return seq;
}

bool Channel::HasPendingEnlarge(uint32_t coffer_id) {
  common::SpinLockGuard lk(&mu_);
  auto it = pending_enlarge_.find(coffer_id);
  return it != pending_enlarge_.end() && it->second;
}

void Channel::Flush() {
  common::SpinLockGuard lk(&mu_);
  RunBatchLocked(nullptr, nullptr);
}

bool Channel::TakeEnlarge(uint32_t coffer_id, ChanCompletion* out) {
  common::SpinLockGuard lk(&mu_);
  auto it = pending_enlarge_.find(coffer_id);
  if (it == pending_enlarge_.end() || !it->second) return false;

  auto claim = [&]() -> bool {
    for (size_t i = 0; i < done_.size(); i++) {
      if (done_[i].op == ChanOp::kEnlarge && done_[i].coffer_id == coffer_id) {
        *out = std::move(done_[i]);
        done_.erase(done_.begin() + static_cast<ptrdiff_t>(i));
        pending_enlarge_[coffer_id] = false;
        stats_.harvested++;
        return true;
      }
    }
    return false;
  };

  if (claim()) return true;
  // The request is still queued on the submission ring: execute it now
  // (piggybacking whatever else is queued), then claim the completion.
  RunBatchLocked(nullptr, nullptr);
  if (claim()) return true;
  // Should not happen (pending flag without a queued request or completion),
  // but fail soft: clear the flag so the caller falls back to a sync refill.
  pending_enlarge_[coffer_id] = false;
  return false;
}

std::vector<ChanCompletion> Channel::Harvest() {
  common::SpinLockGuard lk(&mu_);
  std::vector<ChanCompletion> out;
  for (size_t i = 0; i < done_.size();) {
    if (done_[i].op != ChanOp::kEnlarge) {
      out.push_back(std::move(done_[i]));
      done_.erase(done_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      i++;
    }
  }
  stats_.harvested += out.size();
  return out;
}

void Channel::Drain() {
  common::SpinLockGuard lk(&mu_);
  // Unexecuted enlarge requests are dropped: nothing happened in the kernel,
  // so there is nothing to undo. Everything else (deferred unmaps) stays.
  for (size_t i = 0; i < sub_.size();) {
    if (sub_[i].op == ChanOp::kEnlarge) {
      pending_enlarge_[sub_[i].coffer_id] = false;
      sub_.erase(sub_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      i++;
    }
  }
  // Completed-but-unharvested enlarge grants hold pages the allocator never
  // linked into a free list; return them via CofferShrink so a clean drain
  // strands nothing.
  for (size_t i = 0; i < done_.size();) {
    ChanCompletion& c = done_[i];
    if (c.op == ChanOp::kEnlarge) {
      if (c.status.ok() && !c.runs.empty()) {
        ChanRequest req;
        req.op = ChanOp::kShrink;
        req.coffer_id = c.coffer_id;
        req.background = true;
        req.runs = std::move(c.runs);
        req.seq = next_seq_++;
        sub_.push_back(std::move(req));
      }
      pending_enlarge_[c.coffer_id] = false;
      done_.erase(done_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      i++;
    }
  }
  RunBatchLocked(nullptr, nullptr);
  // Drop the drain's own completions (shrinks/unmaps); nobody harvests after
  // a drain.
  done_.clear();
}

std::vector<std::pair<uint32_t, std::vector<PageRun>>> Channel::ReapForKernel() {
  common::SpinLockGuard lk(&mu_);
  std::vector<std::pair<uint32_t, std::vector<PageRun>>> grants;
  // Unexecuted submissions never reached the kernel: nothing to undo, and a
  // dead process's deferred unmaps are moot (the reaper unmaps everything).
  sub_.clear();
  for (ChanCompletion& c : done_) {
    if (c.op == ChanOp::kEnlarge && c.status.ok() && !c.runs.empty()) {
      grants.emplace_back(c.coffer_id, std::move(c.runs));
    }
  }
  done_.clear();
  pending_enlarge_.clear();
  return grants;
}

ChannelStats Channel::stats() {
  common::SpinLockGuard lk(&mu_);
  return stats_;
}

size_t Channel::QueuedForTest() {
  common::SpinLockGuard lk(&mu_);
  return sub_.size();
}

size_t Channel::DoneForTest() {
  common::SpinLockGuard lk(&mu_);
  return done_.size();
}

bool Channel::CorruptQueuedForTest(size_t idx) {
  common::SpinLockGuard lk(&mu_);
  if (idx >= sub_.size()) return false;
  sub_[idx].magic ^= 0xdeadbeef;
  sub_[idx].op = static_cast<ChanOp>(0x7f);
  return true;
}

ChannelSet::ChannelSet(KernFs* kfs, Process* proc, bool enabled)
    : kfs_(kfs),
      proc_(proc),
      enabled_(enabled),
      set_id_([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()) {}

ChannelSet::~ChannelSet() {
  if (!abandoned_) DrainAll();
}

void ChannelSet::Abandon() {
  common::MutexLock lk(&mu_);
  abandoned_ = true;
}

Channel* ChannelSet::Current() {
  if (!enabled_) return nullptr;
  // Thread-local cache: steady state resolves without the registry lock.
  // Keyed by the never-reused set_id_ so a ChannelSet constructed at a
  // recycled address cannot match stale TLS.
  struct CacheSlot {
    uint64_t set_id = 0;
    Channel* ch = nullptr;
  };
  constexpr size_t kCacheSlots = 8;
  thread_local CacheSlot cache[kCacheSlots];
  const size_t slot = static_cast<size_t>(set_id_ % kCacheSlots);
  if (cache[slot].set_id == set_id_) return cache[slot].ch;

  const uint64_t tid = ChanTid();
  Channel* ch = nullptr;
  {
    common::MutexLock lk(&mu_);
    std::unique_ptr<Channel>& entry = by_tid_[tid];
    if (entry == nullptr) entry = std::make_unique<Channel>(kfs_, proc_);
    ch = entry.get();
  }
  cache[slot].set_id = set_id_;
  cache[slot].ch = ch;
  return ch;
}

void ChannelSet::DrainAll() {
  common::MutexLock lk(&mu_);
  for (auto& [tid, ch] : by_tid_) {
    (void)tid;
    ch->Drain();
  }
}

ChannelStats ChannelSet::Aggregate() {
  common::MutexLock lk(&mu_);
  ChannelStats total;
  for (auto& [tid, ch] : by_tid_) {
    (void)tid;
    ChannelStats s = ch->stats();
    total.crossings += s.crossings;
    total.foreground_crossings += s.foreground_crossings;
    total.background_crossings += s.background_crossings;
    total.requests += s.requests;
    total.batched_requests += s.batched_requests;
    total.async_submitted += s.async_submitted;
    total.harvested += s.harvested;
  }
  return total;
}

}  // namespace kernfs
