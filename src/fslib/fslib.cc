#include "src/fslib/fslib.h"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "src/mpk/mpk.h"

namespace fslib {

using common::Err;
using common::OkStatus;

namespace {

// Converts an in-flight MPK violation (the simulated SIGSEGV) into a
// graceful file-system error — paper §3.4.2. Every FSLibs entry point runs
// its body under this guard. The audit::ApiGuard checks guideline G1 on the
// way out: the call must not return with a PKRU window still open.
template <typename F>
auto Guarded(const char* api, F&& body) -> decltype(body()) {
  audit::ApiGuard api_guard(api);
  try {
    return body();
  } catch (const mpk::ViolationError& v) {
    if (getenv("ZR_DEBUG_FAULT") != nullptr) {
      fprintf(stderr, "fslib: MPK violation at off=0x%lx key=0x%x write=%d\n",
              (unsigned long)v.off, v.key, v.is_write);
    }
    return Err::kFault;
  }
}

}  // namespace

FsLib::FsLib(kernfs::KernFs* kfs, vfs::Cred cred, zofs::Options zopts) : kfs_(kfs) {
  proc_ = kfs_->CreateProcess(cred);
  proc_->BindCurrentThread();
  // Dispatch on the root coffer's type (paper Figure 4: the dispatcher
  // routes to the µFS registered for the coffer type).
  const uint32_t type = kfs_->RootPageOf(kfs_->root_coffer_id())->type;
  if (type == kernfs::kCofferTypeLogFs) {
    fs_ = std::make_unique<logfs::LogFs>(kfs_, proc_);
  } else {
    auto z = std::make_unique<zofs::ZoFs>(kfs_, proc_, zopts);
    zofs_ = z.get();
    fs_ = std::move(z);
  }
}

FsLib::~FsLib() {
  fs_.reset();  // an abandoned µFS skips its own kernel-touching teardown
  if (!abandoned_) {
    kfs_->DestroyProcess(proc_);
  }
  mpk::BindThreadToProcess(nullptr);
  for (auto& c : fd_chunks_) {
    delete c.load(std::memory_order_relaxed);
  }
}

void FsLib::Abandon() {
  abandoned_ = true;
  fs_->Abandon();
}

FsLib::FdChunk* FsLib::ChunkFor(uint32_t chunk, bool create) {
  FdChunk* ch = fd_chunks_[chunk].load(std::memory_order_acquire);
  if (ch != nullptr || !create) {
    return ch;
  }
  // Creation only happens under fd_alloc_mu_, but a CAS keeps this correct
  // even if that invariant ever changes.
  auto fresh = std::make_unique<FdChunk>();
  FdChunk* expected = nullptr;
  if (fd_chunks_[chunk].compare_exchange_strong(expected, fresh.get(),
                                                std::memory_order_acq_rel)) {
    return fresh.release();
  }
  return expected;
}

vfs::Result<vfs::Fd> FsLib::InstallLowestFd(std::shared_ptr<Description> desc) {
  common::MutexLock lk(&fd_alloc_mu_);
  fd_alloc_locks_.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t w = 0; w < fd_bitmap_.size(); w++) {
    if (fd_bitmap_[w] == ~0ull) {
      continue;
    }
    const uint32_t bit = static_cast<uint32_t>(std::countr_one(fd_bitmap_[w]));
    const uint32_t fd = w * 64 + bit;
    FdSlot& slot = ChunkFor(fd / kFdsPerChunk, /*create=*/true)->slots[fd % kFdsPerChunk];
    {
      common::SpinLockGuard g(&slot.busy);
      slot.desc = std::move(desc);
    }
    // Publish the slot before marking the FD allocated: once the bit is set
    // a concurrent Close may legally free this FD again.
    fd_bitmap_[w] |= (1ull << bit);
    return static_cast<vfs::Fd>(fd);
  }
  return Err::kMFile;
}

vfs::Result<std::shared_ptr<FsLib::Description>> FsLib::Get(vfs::Fd fd) {
  if (fd < 0 || static_cast<uint32_t>(fd) >= kFdCapacity) {
    return Err::kBadF;
  }
  FdChunk* ch = ChunkFor(static_cast<uint32_t>(fd) / kFdsPerChunk, /*create=*/false);
  if (ch == nullptr) {
    return Err::kBadF;
  }
  FdSlot& slot = ch->slots[static_cast<uint32_t>(fd) % kFdsPerChunk];
  std::shared_ptr<Description> d;
  {
    common::SpinLockGuard g(&slot.busy);
    d = slot.desc;
  }
  if (d == nullptr) {
    return Err::kBadF;
  }
  return d;
}

vfs::Result<vfs::Fd> FsLib::Open(const vfs::Cred& cred, const std::string& path, uint32_t flags,
                                 uint16_t mode) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<vfs::Fd> {
    common::Result<ufs::NodeRef> node = Err::kNoEnt;
    if ((flags & vfs::kCreate) && !(flags & vfs::kExcl)) {
      // Single-walk open-or-create fast path.
      bool created = false;
      node = fs_->OpenOrCreate(path, mode, &created);
      if (!node.ok()) {
        return node.error();
      }
    } else {
      node = fs_->Lookup(path, /*follow_last_symlink=*/true);
      if (!node.ok()) {
        if (node.error() != Err::kNoEnt || !(flags & vfs::kCreate)) {
          return node.error();
        }
        node = fs_->Create(path, mode);
        if (!node.ok()) {
          return node.error();
        }
      } else if ((flags & vfs::kCreate) && (flags & vfs::kExcl)) {
        return Err::kExist;
      }
    }

    const bool want_write = (flags & vfs::kWrite) != 0;
    RETURN_IF_ERROR(fs_->EnsureAccess(*node, want_write));
    // O_TRUNC without write access is undefined per POSIX; truncating on a
    // read-only open would destroy data the caller had no right to modify,
    // so ignore the flag unless the open requested write access.
    if ((flags & vfs::kTrunc) && want_write) {
      RETURN_IF_ERROR(fs_->TruncateNode(*node, 0));
    }
    auto desc = std::make_shared<Description>();
    desc->node = *node;
    desc->flags = flags;
    return InstallLowestFd(std::move(desc));
  });
}

vfs::Status FsLib::Close(vfs::Fd fd) {
  if (fd < 0 || static_cast<uint32_t>(fd) >= kFdCapacity) {
    return Err::kBadF;
  }
  FdChunk* ch = ChunkFor(static_cast<uint32_t>(fd) / kFdsPerChunk, /*create=*/false);
  if (ch == nullptr) {
    return Err::kBadF;
  }
  FdSlot& slot = ch->slots[static_cast<uint32_t>(fd) % kFdsPerChunk];
  std::shared_ptr<Description> dead;
  {
    common::SpinLockGuard g(&slot.busy);
    if (slot.desc == nullptr) {
      return Err::kBadF;  // double-close; the bitmap bit was already freed
    }
    dead = std::move(slot.desc);
  }
  {
    // Clear the slot before freeing the FD number so the next open that
    // reuses it can never observe the dead description.
    common::MutexLock lk(&fd_alloc_mu_);
    fd_alloc_locks_.fetch_add(1, std::memory_order_relaxed);
    fd_bitmap_[static_cast<uint32_t>(fd) / 64] &= ~(1ull << (fd % 64));
  }
  if (dead->flags & vfs::kWrite) {
    // Close with possibly-dirty metadata is a durability point: drain the
    // µFS's deferred state for this node (the ZoFS staged-append epoch) so a
    // write-then-close without fsync still lands durably, matching the
    // synchronous semantics this library had before the epoch batcher.
    BindThread();
    return Guarded(__func__, [&]() -> vfs::Status {
      fs_->FixNode(&dead->node);
      vfs::Status st = fs_->SyncNode(dead->node);
      // Close is also a channel completion point: execute this thread's
      // queued async kernel work and harvest completions off the hot path.
      if (zofs_ != nullptr) {
        zofs_->HarvestCompletions();
      }
      return st;
    });
  }
  return OkStatus();  // `dead` drops the description outside both locks
}

vfs::Result<size_t> FsLib::Read(vfs::Fd fd, void* buf, size_t n) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<size_t> {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    common::MutexLock lk(&d->pos_mu);
    uint64_t pos = d->pos.load(std::memory_order_relaxed);
    ASSIGN_OR_RETURN(done, fs_->ReadAt(d->node, buf, n, pos));
    d->pos.store(pos + done, std::memory_order_relaxed);
    return done;
  });
}

vfs::Result<size_t> FsLib::Write(vfs::Fd fd, const void* buf, size_t n) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<size_t> {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    if (d->flags & vfs::kAppend) {
      ASSIGN_OR_RETURN(at, fs_->Append(d->node, buf, n));
      if (d->flags & vfs::kSync) {
        RETURN_IF_ERROR(fs_->SyncNode(d->node));  // O_SYNC: durable on return
      }
      common::MutexLock lk(&d->pos_mu);
      d->pos.store(at + n, std::memory_order_relaxed);
      return n;
    }
    common::MutexLock lk(&d->pos_mu);
    uint64_t pos = d->pos.load(std::memory_order_relaxed);
    ASSIGN_OR_RETURN(done, fs_->WriteAt(d->node, buf, n, pos));
    if (d->flags & vfs::kSync) {
      RETURN_IF_ERROR(fs_->SyncNode(d->node));  // O_SYNC: durable on return
    }
    d->pos.store(pos + done, std::memory_order_relaxed);
    return done;
  });
}

vfs::Result<size_t> FsLib::Pread(vfs::Fd fd, void* buf, size_t n, uint64_t off) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<size_t> {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    return fs_->ReadAt(d->node, buf, n, off);
  });
}

vfs::Result<size_t> FsLib::Pwrite(vfs::Fd fd, const void* buf, size_t n, uint64_t off) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<size_t> {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    return fs_->WriteAt(d->node, buf, n, off);
  });
}

vfs::Result<uint64_t> FsLib::Lseek(vfs::Fd fd, int64_t off, int whence) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<uint64_t> {
    ASSIGN_OR_RETURN(d, Get(fd));
    common::MutexLock lk(&d->pos_mu);
    int64_t base = 0;
    switch (whence) {
      case 0:
        base = 0;
        break;
      case 1:
        base = static_cast<int64_t>(d->pos.load(std::memory_order_relaxed));
        break;
      case 2: {
        ASSIGN_OR_RETURN(st, fs_->StatNode(d->node));
        base = static_cast<int64_t>(st.size);
        break;
      }
      default:
        return Err::kInval;
    }
    int64_t target = base + off;
    if (target < 0) {
      return Err::kInval;
    }
    d->pos.store(static_cast<uint64_t>(target), std::memory_order_relaxed);
    return static_cast<uint64_t>(target);
  });
}

vfs::Status FsLib::Fsync(vfs::Fd fd) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Status {
    // Most µFS operations persist before returning; what fsync drains is the
    // deferred state of the epoch batcher (ZoFS staged appends).
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    vfs::Status st = fs_->SyncNode(d->node);
    // fsync is a channel completion point (see Close).
    if (zofs_ != nullptr) {
      zofs_->HarvestCompletions();
    }
    return st;
  });
}

vfs::Result<vfs::StatBuf> FsLib::Fstat(vfs::Fd fd) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<vfs::StatBuf> {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    return fs_->StatNode(d->node);
  });
}

vfs::Status FsLib::Ftruncate(vfs::Fd fd, uint64_t len) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Status {
    ASSIGN_OR_RETURN(d, Get(fd));
    fs_->FixNode(&d->node);
    return fs_->TruncateNode(d->node, len);
  });
}

vfs::Result<vfs::Fd> FsLib::Dup(vfs::Fd fd) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<vfs::Fd> {
    // dup returns the lowest available FD and shares the open file
    // description (offset included) — the behaviour the FD mapping table
    // exists to provide (paper §4.2).
    ASSIGN_OR_RETURN(d, Get(fd));
    return InstallLowestFd(d);
  });
}

vfs::Status FsLib::Mkdir(const vfs::Cred& cred, const std::string& path, uint16_t mode) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Mkdir(path, mode); });
}

vfs::Status FsLib::Rmdir(const vfs::Cred& cred, const std::string& path) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Rmdir(path); });
}

vfs::Status FsLib::Unlink(const vfs::Cred& cred, const std::string& path) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Unlink(path); });
}

vfs::Result<vfs::StatBuf> FsLib::Stat(const vfs::Cred& cred, const std::string& path) {
  BindThread();
  return Guarded(__func__, [&]() -> vfs::Result<vfs::StatBuf> {
    ASSIGN_OR_RETURN(node, fs_->Lookup(path, true));
    return fs_->StatNode(node);
  });
}

vfs::Result<std::vector<vfs::DirEntry>> FsLib::ReadDir(const vfs::Cred& cred,
                                                       const std::string& path) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->ReadDir(path); });
}

vfs::Status FsLib::Rename(const vfs::Cred& cred, const std::string& from, const std::string& to) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Rename(from, to); });
}

vfs::Status FsLib::Chmod(const vfs::Cred& cred, const std::string& path, uint16_t mode) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Chmod(path, mode); });
}

vfs::Status FsLib::Chown(const vfs::Cred& cred, const std::string& path, uint32_t uid,
                         uint32_t gid) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Chown(path, uid, gid); });
}

vfs::Status FsLib::Symlink(const vfs::Cred& cred, const std::string& target,
                           const std::string& linkpath) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->Symlink(target, linkpath); });
}

vfs::Result<std::string> FsLib::ReadLink(const vfs::Cred& cred, const std::string& path) {
  BindThread();
  return Guarded(__func__, [&]() { return fs_->ReadLink(path); });
}

}  // namespace fslib
