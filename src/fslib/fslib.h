// FSLibs — the user-space half of Treasury (paper §4.2), one instance per
// simulated process.
//
// FsLib plays the role of the preloaded libfs.so: it exposes a POSIX-shaped
// surface (the vfs::FileSystem interface stands in for intercepted system
// calls), maintains the user-space FD mapping table with lowest-available-FD
// semantics (dup included), dispatches into the µFS (ZoFS), and converts MPK
// violations raised mid-operation into graceful file-system errors — the
// moral equivalent of the paper's sigsetjmp/siglongjmp SIGSEGV handling
// (§3.4.2).

#ifndef SRC_FSLIB_FSLIB_H_
#define SRC_FSLIB_FSLIB_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/kernfs/kernfs.h"
#include "src/logfs/logfs.h"
#include "src/ufs/microfs.h"
#include "src/vfs/vfs.h"
#include "src/zofs/zofs.h"

namespace fslib {

class FsLib final : public vfs::FileSystem {
 public:
  // Creates a simulated process with credentials `cred` and mounts FSLibs in
  // it. The kernel crossing and µFS behaviour come from `zopts`.
  FsLib(kernfs::KernFs* kfs, vfs::Cred cred, zofs::Options zopts = {});
  ~FsLib() override;

  const char* Name() const override { return fs_ == nullptr ? "FSLibs" : fs_->Name(); }

  kernfs::Process* proc() { return proc_; }
  // The µFS serving this process (dispatched on the root coffer's type).
  ufs::MicroFs& ufs() { return *fs_; }
  // ZoFS-specific access (tests/benches); only valid when the root coffer is
  // a ZoFS coffer.
  zofs::ZoFs& zofs() { return *zofs_; }

  // Binds the calling thread to this process's address space. Worker threads
  // of a simulated process call this once; every FS entry point also rebinds
  // defensively (a cheap TLS store).
  void BindThread() { proc_->BindCurrentThread(); }

  // Marks this process as killed: the destructor skips every graceful-exit
  // step that touches the kernel or the coffers (staged-append flush,
  // channel drain, FsUmount/DestroyProcess). Call after KernFs::KillProcess
  // has moved the Process into the morgue — the reaper owns the cleanup.
  void Abandon();

  // ---- vfs::FileSystem ----
  vfs::Result<vfs::Fd> Open(const vfs::Cred& cred, const std::string& path, uint32_t flags,
                            uint16_t mode) override;
  vfs::Status Close(vfs::Fd fd) override;
  vfs::Result<size_t> Read(vfs::Fd fd, void* buf, size_t n) override;
  vfs::Result<size_t> Write(vfs::Fd fd, const void* buf, size_t n) override;
  vfs::Result<size_t> Pread(vfs::Fd fd, void* buf, size_t n, uint64_t off) override;
  vfs::Result<size_t> Pwrite(vfs::Fd fd, const void* buf, size_t n, uint64_t off) override;
  vfs::Result<uint64_t> Lseek(vfs::Fd fd, int64_t off, int whence) override;
  vfs::Status Fsync(vfs::Fd fd) override;
  vfs::Result<vfs::StatBuf> Fstat(vfs::Fd fd) override;
  vfs::Status Ftruncate(vfs::Fd fd, uint64_t len) override;
  vfs::Result<vfs::Fd> Dup(vfs::Fd fd) override;

  vfs::Status Mkdir(const vfs::Cred& cred, const std::string& path, uint16_t mode) override;
  vfs::Status Rmdir(const vfs::Cred& cred, const std::string& path) override;
  vfs::Status Unlink(const vfs::Cred& cred, const std::string& path) override;
  vfs::Result<vfs::StatBuf> Stat(const vfs::Cred& cred, const std::string& path) override;
  vfs::Result<std::vector<vfs::DirEntry>> ReadDir(const vfs::Cred& cred,
                                                  const std::string& path) override;
  vfs::Status Rename(const vfs::Cred& cred, const std::string& from,
                     const std::string& to) override;
  vfs::Status Chmod(const vfs::Cred& cred, const std::string& path, uint16_t mode) override;
  vfs::Status Chown(const vfs::Cred& cred, const std::string& path, uint32_t uid,
                    uint32_t gid) override;
  vfs::Status Symlink(const vfs::Cred& cred, const std::string& target,
                      const std::string& linkpath) override;
  vfs::Result<std::string> ReadLink(const vfs::Cred& cred, const std::string& path) override;

  // How many times the FD-allocation mutex was taken. FD lookup (Get) never
  // touches it, so steady-state read/write leaves this counter unchanged —
  // the scalability tests assert exactly that.
  uint64_t FdAllocLockAcquisitionsForTest() const {
    return fd_alloc_locks_.load(std::memory_order_relaxed);
  }

 private:
  // An open file description (shared between dup'd FDs, as in POSIX).
  // `pos_mu` serializes the read-modify-write of the shared offset across
  // Read/Write/Lseek — two threads sharing the description via dup must each
  // advance the offset by exactly what they transferred (POSIX shared f_pos).
  struct Description {
    ufs::NodeRef node;
    common::Mutex pos_mu;
    // Atomic so a torn read is impossible even for diagnostics, but every
    // read-modify-write runs under pos_mu (the POSIX shared-offset contract).
    std::atomic<uint64_t> pos GUARDED_BY(pos_mu){0};
    uint32_t flags = 0;
  };

  // ---- sharded FD table ----
  // The old table was one vector behind one mutex: every Read/Write/Close on
  // any FD serialized on it. It is now a fixed-capacity two-level slot array:
  //   * chunks are installed lazily (std::atomic<FdChunk*>, 256 FDs each) and
  //     never removed until ~FsLib, so lookup dereferences them lock-free;
  //   * each slot carries its own one-word spinlock guarding the shared_ptr
  //     copy (shared_ptr loads are not atomic); two threads contend only when
  //     they touch the *same* FD;
  //   * lowest-available-FD allocation (POSIX, dup included) runs over a
  //     bitmap under fd_alloc_mu_ — open/close only, never lookup.
  static constexpr uint32_t kFdCapacity = 65536;
  static constexpr uint32_t kFdsPerChunk = 256;
  static constexpr uint32_t kFdChunks = kFdCapacity / kFdsPerChunk;

  struct FdSlot {
    common::SpinLock busy;
    std::shared_ptr<Description> desc GUARDED_BY(busy);
  };
  struct FdChunk {
    std::array<FdSlot, kFdsPerChunk> slots;
  };

  FdChunk* ChunkFor(uint32_t chunk, bool create);
  vfs::Result<vfs::Fd> InstallLowestFd(std::shared_ptr<Description> desc);
  vfs::Result<std::shared_ptr<Description>> Get(vfs::Fd fd);

  kernfs::KernFs* kfs_;
  kernfs::Process* proc_;
  std::unique_ptr<ufs::MicroFs> fs_;
  zofs::ZoFs* zofs_ = nullptr;  // set when fs_ is a ZoFs
  bool abandoned_ = false;      // process was killed; the reaper owns cleanup

  std::array<std::atomic<FdChunk*>, kFdChunks> fd_chunks_{};
  common::Mutex fd_alloc_mu_;
  // 1 = FD in use
  std::array<uint64_t, kFdCapacity / 64> fd_bitmap_ GUARDED_BY(fd_alloc_mu_){};
  std::atomic<uint64_t> fd_alloc_locks_{0};
};

}  // namespace fslib

#endif  // SRC_FSLIB_FSLIB_H_
