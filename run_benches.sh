#!/bin/bash
# Full benchmark suite -> build/bench_output.txt, plus the machine-readable
# scalability sweep -> build/BENCH_10.json. Outputs live under build/ so a
# bench run never dirties the source tree.
set -euo pipefail

cd /root/repo

if [ "$(nproc)" -eq 1 ]; then
  cat >&2 <<'EOF'
################################################################################
# WARNING: this host has ONE CPU core.                                         #
#                                                                              #
# Multi-threaded sweep points time-slice on a single core, so the wall-clock  #
# fields (ops_per_sec, mean_ns, p50/p99) do NOT measure parallel scaling and  #
# must not be compared across thread counts. Trust only the deterministic     #
# structural counters: kernel_crossings, clwb/sfence (and their _per_op       #
# rates), staged_append_hits, and lock_acquisitions_per_op.                   #
################################################################################
EOF
fi

BENCHES=(bench_table1_media bench_table2_sharing bench_table3_appperms
         bench_table4_fslhomes bench_trace_mobigen bench_fig7_fxmark
         bench_fig8_breakdown bench_fig9_filebench bench_fig10_filebench_custom
         bench_table7_leveldb bench_fig11_tpcc bench_table9_worstcase
         bench_sec65_safety_recovery bench_ablations)

# Fail loudly before spending an hour on a half-built tree.
for b in "${BENCHES[@]}"; do
  if [ ! -x "./build/bench/$b" ]; then
    echo "run_benches.sh: missing bench binary ./build/bench/$b (build first)" >&2
    exit 1
  fi
done
if [ ! -x ./build/tools/bench_json ]; then
  echo "run_benches.sh: missing ./build/tools/bench_json (build first)" >&2
  exit 1
fi

{
  echo "=== ZoFS/Treasury reproduction: full benchmark run ==="
  echo "date: $(date -u)"
  echo "host: single-core Xeon @2.1GHz VM, 16GB RAM, DRAM-backed simulated NVM"
  echo "cost model: kernel_crossing=300ns clwb=30ns/line sfence=100ns nova_index=250ns"
  echo
  for b in "${BENCHES[@]}"; do
    echo "=============================================================="
    echo "### $b"
    echo "=============================================================="
    ./build/bench/$b
    echo
  done
  echo "=== benchmark run complete: $(date -u) ==="
} > /root/repo/build/bench_output.txt 2>&1

# Machine-readable multicore scalability sweep (sharded vs global-lock).
./build/tools/bench_json /root/repo/build/BENCH_10.json > /dev/null
echo "run_benches.sh: wrote build/bench_output.txt and build/BENCH_10.json"
