// Negative-compilation fixture for the ZOFS_THREAD_SAFETY gate.
//
// This TU contains a deliberate GUARDED_BY violation: a guarded member is
// written with no lock held. Under Clang with -Wthread-safety
// -Werror=thread-safety it MUST fail to compile; the CMake try_compile in
// the top-level CMakeLists asserts exactly that, proving the annotations in
// src/common/thread_annotations.h are active rather than silently expanding
// to nothing.

#include "src/common/mutex.h"

namespace {

struct Counter {
  common::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.value = 1;  // the violation: no MutexLock in scope
  return c.value;
}
