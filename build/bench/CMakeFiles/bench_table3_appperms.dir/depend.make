# Empty dependencies file for bench_table3_appperms.
# This may be replaced when dependencies are built.
