file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_appperms.dir/bench_table3_appperms.cc.o"
  "CMakeFiles/bench_table3_appperms.dir/bench_table3_appperms.cc.o.d"
  "bench_table3_appperms"
  "bench_table3_appperms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_appperms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
