file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tpcc.dir/bench_fig11_tpcc.cc.o"
  "CMakeFiles/bench_fig11_tpcc.dir/bench_fig11_tpcc.cc.o.d"
  "bench_fig11_tpcc"
  "bench_fig11_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
