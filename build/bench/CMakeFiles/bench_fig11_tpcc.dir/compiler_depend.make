# Empty compiler generated dependencies file for bench_fig11_tpcc.
# This may be replaced when dependencies are built.
