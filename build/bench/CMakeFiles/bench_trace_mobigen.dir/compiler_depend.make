# Empty compiler generated dependencies file for bench_trace_mobigen.
# This may be replaced when dependencies are built.
