file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_mobigen.dir/bench_trace_mobigen.cc.o"
  "CMakeFiles/bench_trace_mobigen.dir/bench_trace_mobigen.cc.o.d"
  "bench_trace_mobigen"
  "bench_trace_mobigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_mobigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
