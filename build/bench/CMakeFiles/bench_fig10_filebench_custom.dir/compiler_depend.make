# Empty compiler generated dependencies file for bench_fig10_filebench_custom.
# This may be replaced when dependencies are built.
