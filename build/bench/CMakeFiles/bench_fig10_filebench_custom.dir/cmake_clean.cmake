file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_filebench_custom.dir/bench_fig10_filebench_custom.cc.o"
  "CMakeFiles/bench_fig10_filebench_custom.dir/bench_fig10_filebench_custom.cc.o.d"
  "bench_fig10_filebench_custom"
  "bench_fig10_filebench_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_filebench_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
