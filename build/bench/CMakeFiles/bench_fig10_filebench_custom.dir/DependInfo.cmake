
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_filebench_custom.cc" "bench/CMakeFiles/bench_fig10_filebench_custom.dir/bench_fig10_filebench_custom.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_filebench_custom.dir/bench_fig10_filebench_custom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/zr_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/logfs/CMakeFiles/zr_logfs.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/zr_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/zr_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/zr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fslib/CMakeFiles/zr_fslib.dir/DependInfo.cmake"
  "/root/repo/build/src/zofs/CMakeFiles/zr_zofs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernfs/CMakeFiles/zr_kernfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpk/CMakeFiles/zr_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/zr_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/zr_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
