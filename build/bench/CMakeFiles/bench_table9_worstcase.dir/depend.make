# Empty dependencies file for bench_table9_worstcase.
# This may be replaced when dependencies are built.
