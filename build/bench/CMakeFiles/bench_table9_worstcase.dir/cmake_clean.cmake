file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_worstcase.dir/bench_table9_worstcase.cc.o"
  "CMakeFiles/bench_table9_worstcase.dir/bench_table9_worstcase.cc.o.d"
  "bench_table9_worstcase"
  "bench_table9_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
