file(REMOVE_RECURSE
  "CMakeFiles/bench_sec65_safety_recovery.dir/bench_sec65_safety_recovery.cc.o"
  "CMakeFiles/bench_sec65_safety_recovery.dir/bench_sec65_safety_recovery.cc.o.d"
  "bench_sec65_safety_recovery"
  "bench_sec65_safety_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_safety_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
