# Empty dependencies file for bench_sec65_safety_recovery.
# This may be replaced when dependencies are built.
