# Empty dependencies file for bench_fig9_filebench.
# This may be replaced when dependencies are built.
