# Empty dependencies file for bench_table4_fslhomes.
# This may be replaced when dependencies are built.
