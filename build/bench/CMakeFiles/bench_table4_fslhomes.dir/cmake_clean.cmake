file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fslhomes.dir/bench_table4_fslhomes.cc.o"
  "CMakeFiles/bench_table4_fslhomes.dir/bench_table4_fslhomes.cc.o.d"
  "bench_table4_fslhomes"
  "bench_table4_fslhomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fslhomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
