file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_leveldb.dir/bench_table7_leveldb.cc.o"
  "CMakeFiles/bench_table7_leveldb.dir/bench_table7_leveldb.cc.o.d"
  "bench_table7_leveldb"
  "bench_table7_leveldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_leveldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
