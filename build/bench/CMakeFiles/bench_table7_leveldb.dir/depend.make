# Empty dependencies file for bench_table7_leveldb.
# This may be replaced when dependencies are built.
