file(REMOVE_RECURSE
  "libzr_logfs.a"
)
