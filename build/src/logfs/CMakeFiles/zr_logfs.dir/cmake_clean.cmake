file(REMOVE_RECURSE
  "CMakeFiles/zr_logfs.dir/logfs.cc.o"
  "CMakeFiles/zr_logfs.dir/logfs.cc.o.d"
  "libzr_logfs.a"
  "libzr_logfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_logfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
