# Empty compiler generated dependencies file for zr_logfs.
# This may be replaced when dependencies are built.
