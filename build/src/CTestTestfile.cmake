# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nvm")
subdirs("mpk")
subdirs("vfs")
subdirs("ufs")
subdirs("kernfs")
subdirs("fslib")
subdirs("zofs")
subdirs("logfs")
subdirs("baselines")
subdirs("harness")
subdirs("apps")
subdirs("analysis")
