file(REMOVE_RECURSE
  "CMakeFiles/zr_nvm.dir/nvm.cc.o"
  "CMakeFiles/zr_nvm.dir/nvm.cc.o.d"
  "libzr_nvm.a"
  "libzr_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
