# Empty dependencies file for zr_nvm.
# This may be replaced when dependencies are built.
