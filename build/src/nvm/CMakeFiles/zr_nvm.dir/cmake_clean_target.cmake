file(REMOVE_RECURSE
  "libzr_nvm.a"
)
