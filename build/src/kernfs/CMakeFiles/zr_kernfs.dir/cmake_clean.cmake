file(REMOVE_RECURSE
  "CMakeFiles/zr_kernfs.dir/kernfs.cc.o"
  "CMakeFiles/zr_kernfs.dir/kernfs.cc.o.d"
  "libzr_kernfs.a"
  "libzr_kernfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_kernfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
