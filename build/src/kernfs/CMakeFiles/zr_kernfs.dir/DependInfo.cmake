
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernfs/kernfs.cc" "src/kernfs/CMakeFiles/zr_kernfs.dir/kernfs.cc.o" "gcc" "src/kernfs/CMakeFiles/zr_kernfs.dir/kernfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/zr_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpk/CMakeFiles/zr_mpk.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/zr_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
