# Empty dependencies file for zr_kernfs.
# This may be replaced when dependencies are built.
