file(REMOVE_RECURSE
  "libzr_kernfs.a"
)
