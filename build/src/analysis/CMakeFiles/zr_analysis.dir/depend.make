# Empty dependencies file for zr_analysis.
# This may be replaced when dependencies are built.
