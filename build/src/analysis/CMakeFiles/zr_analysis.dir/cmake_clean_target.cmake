file(REMOVE_RECURSE
  "libzr_analysis.a"
)
