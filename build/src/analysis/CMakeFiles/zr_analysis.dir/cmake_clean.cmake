file(REMOVE_RECURSE
  "CMakeFiles/zr_analysis.dir/survey.cc.o"
  "CMakeFiles/zr_analysis.dir/survey.cc.o.d"
  "libzr_analysis.a"
  "libzr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
