file(REMOVE_RECURSE
  "libzr_harness.a"
)
