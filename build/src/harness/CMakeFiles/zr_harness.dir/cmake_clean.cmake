file(REMOVE_RECURSE
  "CMakeFiles/zr_harness.dir/filebench.cc.o"
  "CMakeFiles/zr_harness.dir/filebench.cc.o.d"
  "CMakeFiles/zr_harness.dir/fslab.cc.o"
  "CMakeFiles/zr_harness.dir/fslab.cc.o.d"
  "CMakeFiles/zr_harness.dir/fxmark.cc.o"
  "CMakeFiles/zr_harness.dir/fxmark.cc.o.d"
  "CMakeFiles/zr_harness.dir/runner.cc.o"
  "CMakeFiles/zr_harness.dir/runner.cc.o.d"
  "libzr_harness.a"
  "libzr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
