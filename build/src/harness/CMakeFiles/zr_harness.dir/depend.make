# Empty dependencies file for zr_harness.
# This may be replaced when dependencies are built.
