file(REMOVE_RECURSE
  "CMakeFiles/zr_vfs.dir/vfs.cc.o"
  "CMakeFiles/zr_vfs.dir/vfs.cc.o.d"
  "libzr_vfs.a"
  "libzr_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
