# Empty compiler generated dependencies file for zr_vfs.
# This may be replaced when dependencies are built.
