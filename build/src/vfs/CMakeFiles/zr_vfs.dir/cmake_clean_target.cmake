file(REMOVE_RECURSE
  "libzr_vfs.a"
)
