file(REMOVE_RECURSE
  "CMakeFiles/zr_zofs.dir/alloc.cc.o"
  "CMakeFiles/zr_zofs.dir/alloc.cc.o.d"
  "CMakeFiles/zr_zofs.dir/zofs.cc.o"
  "CMakeFiles/zr_zofs.dir/zofs.cc.o.d"
  "CMakeFiles/zr_zofs.dir/zofs_recovery.cc.o"
  "CMakeFiles/zr_zofs.dir/zofs_recovery.cc.o.d"
  "libzr_zofs.a"
  "libzr_zofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_zofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
