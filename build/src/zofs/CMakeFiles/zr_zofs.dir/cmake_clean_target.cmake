file(REMOVE_RECURSE
  "libzr_zofs.a"
)
