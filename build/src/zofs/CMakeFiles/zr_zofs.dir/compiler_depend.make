# Empty compiler generated dependencies file for zr_zofs.
# This may be replaced when dependencies are built.
