# Empty compiler generated dependencies file for zr_common.
# This may be replaced when dependencies are built.
