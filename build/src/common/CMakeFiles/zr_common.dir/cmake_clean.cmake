file(REMOVE_RECURSE
  "CMakeFiles/zr_common.dir/common.cc.o"
  "CMakeFiles/zr_common.dir/common.cc.o.d"
  "libzr_common.a"
  "libzr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
