file(REMOVE_RECURSE
  "libzr_common.a"
)
