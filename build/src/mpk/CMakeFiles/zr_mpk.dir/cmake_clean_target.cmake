file(REMOVE_RECURSE
  "libzr_mpk.a"
)
