file(REMOVE_RECURSE
  "CMakeFiles/zr_mpk.dir/mpk.cc.o"
  "CMakeFiles/zr_mpk.dir/mpk.cc.o.d"
  "libzr_mpk.a"
  "libzr_mpk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
