# Empty dependencies file for zr_mpk.
# This may be replaced when dependencies are built.
