file(REMOVE_RECURSE
  "CMakeFiles/zr_fslib.dir/fslib.cc.o"
  "CMakeFiles/zr_fslib.dir/fslib.cc.o.d"
  "libzr_fslib.a"
  "libzr_fslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_fslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
