file(REMOVE_RECURSE
  "libzr_fslib.a"
)
