# Empty dependencies file for zr_fslib.
# This may be replaced when dependencies are built.
