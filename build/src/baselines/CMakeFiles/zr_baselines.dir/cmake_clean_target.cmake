file(REMOVE_RECURSE
  "libzr_baselines.a"
)
