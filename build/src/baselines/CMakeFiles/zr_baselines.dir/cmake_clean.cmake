file(REMOVE_RECURSE
  "CMakeFiles/zr_baselines.dir/basefs.cc.o"
  "CMakeFiles/zr_baselines.dir/basefs.cc.o.d"
  "CMakeFiles/zr_baselines.dir/baselines.cc.o"
  "CMakeFiles/zr_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/zr_baselines.dir/strata.cc.o"
  "CMakeFiles/zr_baselines.dir/strata.cc.o.d"
  "libzr_baselines.a"
  "libzr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
