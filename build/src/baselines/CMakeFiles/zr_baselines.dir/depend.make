# Empty dependencies file for zr_baselines.
# This may be replaced when dependencies are built.
