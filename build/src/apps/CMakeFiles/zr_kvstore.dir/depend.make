# Empty dependencies file for zr_kvstore.
# This may be replaced when dependencies are built.
