file(REMOVE_RECURSE
  "CMakeFiles/zr_kvstore.dir/kvstore/kvstore.cc.o"
  "CMakeFiles/zr_kvstore.dir/kvstore/kvstore.cc.o.d"
  "libzr_kvstore.a"
  "libzr_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
