file(REMOVE_RECURSE
  "libzr_kvstore.a"
)
