# Empty dependencies file for zr_minidb.
# This may be replaced when dependencies are built.
