file(REMOVE_RECURSE
  "CMakeFiles/zr_minidb.dir/minidb/btree.cc.o"
  "CMakeFiles/zr_minidb.dir/minidb/btree.cc.o.d"
  "CMakeFiles/zr_minidb.dir/minidb/minidb.cc.o"
  "CMakeFiles/zr_minidb.dir/minidb/minidb.cc.o.d"
  "CMakeFiles/zr_minidb.dir/minidb/pager.cc.o"
  "CMakeFiles/zr_minidb.dir/minidb/pager.cc.o.d"
  "CMakeFiles/zr_minidb.dir/minidb/tpcc.cc.o"
  "CMakeFiles/zr_minidb.dir/minidb/tpcc.cc.o.d"
  "libzr_minidb.a"
  "libzr_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zr_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
