
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/minidb/btree.cc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/btree.cc.o" "gcc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/btree.cc.o.d"
  "/root/repo/src/apps/minidb/minidb.cc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/minidb.cc.o" "gcc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/minidb.cc.o.d"
  "/root/repo/src/apps/minidb/pager.cc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/pager.cc.o" "gcc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/pager.cc.o.d"
  "/root/repo/src/apps/minidb/tpcc.cc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/tpcc.cc.o" "gcc" "src/apps/CMakeFiles/zr_minidb.dir/minidb/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vfs/CMakeFiles/zr_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
