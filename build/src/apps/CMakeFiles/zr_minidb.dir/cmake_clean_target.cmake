file(REMOVE_RECURSE
  "libzr_minidb.a"
)
