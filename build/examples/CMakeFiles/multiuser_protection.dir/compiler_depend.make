# Empty compiler generated dependencies file for multiuser_protection.
# This may be replaced when dependencies are built.
