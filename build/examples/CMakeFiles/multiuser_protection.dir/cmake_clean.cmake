file(REMOVE_RECURSE
  "CMakeFiles/multiuser_protection.dir/multiuser_protection.cpp.o"
  "CMakeFiles/multiuser_protection.dir/multiuser_protection.cpp.o.d"
  "multiuser_protection"
  "multiuser_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
