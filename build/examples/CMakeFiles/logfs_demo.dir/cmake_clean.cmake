file(REMOVE_RECURSE
  "CMakeFiles/logfs_demo.dir/logfs_demo.cpp.o"
  "CMakeFiles/logfs_demo.dir/logfs_demo.cpp.o.d"
  "logfs_demo"
  "logfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
