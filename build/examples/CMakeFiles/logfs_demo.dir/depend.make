# Empty dependencies file for logfs_demo.
# This may be replaced when dependencies are built.
