# Empty dependencies file for mmap_exec_test.
# This may be replaced when dependencies are built.
