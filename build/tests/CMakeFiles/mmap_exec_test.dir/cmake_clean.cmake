file(REMOVE_RECURSE
  "CMakeFiles/mmap_exec_test.dir/mmap_exec_test.cc.o"
  "CMakeFiles/mmap_exec_test.dir/mmap_exec_test.cc.o.d"
  "mmap_exec_test"
  "mmap_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
