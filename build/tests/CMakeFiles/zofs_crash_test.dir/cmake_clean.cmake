file(REMOVE_RECURSE
  "CMakeFiles/zofs_crash_test.dir/zofs_crash_test.cc.o"
  "CMakeFiles/zofs_crash_test.dir/zofs_crash_test.cc.o.d"
  "zofs_crash_test"
  "zofs_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
