# Empty dependencies file for zofs_crash_test.
# This may be replaced when dependencies are built.
