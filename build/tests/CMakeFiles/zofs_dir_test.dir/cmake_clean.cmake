file(REMOVE_RECURSE
  "CMakeFiles/zofs_dir_test.dir/zofs_dir_test.cc.o"
  "CMakeFiles/zofs_dir_test.dir/zofs_dir_test.cc.o.d"
  "zofs_dir_test"
  "zofs_dir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_dir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
