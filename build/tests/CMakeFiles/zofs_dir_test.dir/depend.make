# Empty dependencies file for zofs_dir_test.
# This may be replaced when dependencies are built.
