# Empty dependencies file for fslib_test.
# This may be replaced when dependencies are built.
