file(REMOVE_RECURSE
  "CMakeFiles/fslib_test.dir/fslib_test.cc.o"
  "CMakeFiles/fslib_test.dir/fslib_test.cc.o.d"
  "fslib_test"
  "fslib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fslib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
