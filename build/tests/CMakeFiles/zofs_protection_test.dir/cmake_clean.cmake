file(REMOVE_RECURSE
  "CMakeFiles/zofs_protection_test.dir/zofs_protection_test.cc.o"
  "CMakeFiles/zofs_protection_test.dir/zofs_protection_test.cc.o.d"
  "zofs_protection_test"
  "zofs_protection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_protection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
