# Empty compiler generated dependencies file for zofs_protection_test.
# This may be replaced when dependencies are built.
