# Empty dependencies file for logfs_test.
# This may be replaced when dependencies are built.
