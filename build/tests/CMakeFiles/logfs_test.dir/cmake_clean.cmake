file(REMOVE_RECURSE
  "CMakeFiles/logfs_test.dir/logfs_test.cc.o"
  "CMakeFiles/logfs_test.dir/logfs_test.cc.o.d"
  "logfs_test"
  "logfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
