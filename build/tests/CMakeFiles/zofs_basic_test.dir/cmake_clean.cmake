file(REMOVE_RECURSE
  "CMakeFiles/zofs_basic_test.dir/zofs_basic_test.cc.o"
  "CMakeFiles/zofs_basic_test.dir/zofs_basic_test.cc.o.d"
  "zofs_basic_test"
  "zofs_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
