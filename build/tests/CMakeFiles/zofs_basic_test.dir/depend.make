# Empty dependencies file for zofs_basic_test.
# This may be replaced when dependencies are built.
