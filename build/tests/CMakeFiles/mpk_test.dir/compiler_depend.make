# Empty compiler generated dependencies file for mpk_test.
# This may be replaced when dependencies are built.
