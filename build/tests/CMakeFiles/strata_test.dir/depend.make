# Empty dependencies file for strata_test.
# This may be replaced when dependencies are built.
