file(REMOVE_RECURSE
  "CMakeFiles/kernfs_test.dir/kernfs_test.cc.o"
  "CMakeFiles/kernfs_test.dir/kernfs_test.cc.o.d"
  "kernfs_test"
  "kernfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
