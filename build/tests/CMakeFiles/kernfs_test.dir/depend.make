# Empty dependencies file for kernfs_test.
# This may be replaced when dependencies are built.
