# Empty compiler generated dependencies file for zofs_split_test.
# This may be replaced when dependencies are built.
