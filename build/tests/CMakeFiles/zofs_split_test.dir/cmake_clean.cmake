file(REMOVE_RECURSE
  "CMakeFiles/zofs_split_test.dir/zofs_split_test.cc.o"
  "CMakeFiles/zofs_split_test.dir/zofs_split_test.cc.o.d"
  "zofs_split_test"
  "zofs_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
