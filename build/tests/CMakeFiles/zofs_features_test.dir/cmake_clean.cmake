file(REMOVE_RECURSE
  "CMakeFiles/zofs_features_test.dir/zofs_features_test.cc.o"
  "CMakeFiles/zofs_features_test.dir/zofs_features_test.cc.o.d"
  "zofs_features_test"
  "zofs_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zofs_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
