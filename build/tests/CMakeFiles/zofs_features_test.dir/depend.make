# Empty dependencies file for zofs_features_test.
# This may be replaced when dependencies are built.
