// Tests for the persistence-ordering and protection auditor: plants each of
// the four bug classes the auditor detects (missing flush at a durability
// point, commit-before-payload ordering violation, redundant flushes, and
// protection-window misuse) and asserts the corresponding finding appears;
// clean sequences and the full ZoFS stack must audit without errors.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/audit/audit.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"

namespace {

using audit::Auditor;
using audit::FindingKind;
using audit::Report;

nvm::Options SmallOpts() {
  nvm::Options o;
  o.size_bytes = 1 << 20;
  o.crash_tracking = true;
  return o;
}

uint64_t CountOf(const Report& r, FindingKind kind) {
  uint64_t n = 0;
  for (const auto& f : r.findings) {
    if (f.kind == kind) {
      n += f.count;
    }
  }
  return n;
}

const audit::Finding* FindKind(const Report& r, FindingKind kind) {
  for (const auto& f : r.findings) {
    if (f.kind == kind) {
      return &f;
    }
  }
  return nullptr;
}

// RAII attach/detach so a planted bug never leaks into the process-wide env
// auditor when the suite itself runs under ZOFS_AUDIT=1.
class ScopedAudit {
 public:
  ScopedAudit(Auditor* a, nvm::NvmDevice* dev) : a_(a) { a_->Attach(dev); }
  ~ScopedAudit() { a_->Detach(); }

 private:
  Auditor* a_;
};

TEST(AuditTest, CleanSequenceHasNoFindings) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  dev.Store64(64, 1);
  dev.Clwb(64, 8);
  dev.Sfence();
  AUDIT_DURABILITY_POINT(&dev, 64, 8);
  Report r = a.Snapshot();
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.perf_lints, 0u);
  EXPECT_TRUE(r.findings.empty());
}

// Bug class 1: a store left dirty (no clwb/sfence) when the code declares the
// range durable.
TEST(AuditTest, DetectsMissingFlushAtDurabilityPoint) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  dev.Store64(128, 0xdead);
  AUDIT_DURABILITY_POINT(&dev, 128, 8);  // planted: nothing was flushed
  Report r = a.Snapshot();
  EXPECT_EQ(CountOf(r, FindingKind::kUnflushedAtDurability), 1u);
  EXPECT_GE(r.errors, 1u);
  const audit::Finding* f = FindKind(r, FindingKind::kUnflushedAtDurability);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->site.find("audit_test.cc"), std::string::npos);  // call-site tag
}

// Written back but not fenced is still volatile under the strict fence model,
// so a durability point before the sfence must also fire.
TEST(AuditTest, DetectsUnfencedWritebackAtDurabilityPoint) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  dev.Store64(128, 7);
  dev.Clwb(128, 8);
  AUDIT_DURABILITY_POINT(&dev, 128, 8);  // planted: clwb'd but no fence yet
  EXPECT_EQ(CountOf(a.Snapshot(), FindingKind::kUnflushedAtDurability), 1u);
  dev.Sfence();
  a.ResetFindings();
  AUDIT_DURABILITY_POINT(&dev, 128, 8);  // now durable: clean
  EXPECT_EQ(a.ErrorCount(), 0u);
}

// Bug class 2: the commit record becomes persistent at a fence while the
// payload it covers is still sitting dirty in the cache.
TEST(AuditTest, DetectsCommitBeforePayloadOrdering) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  uint64_t payload = 42;
  dev.StoreBytes(0, &payload, 8);  // cached store: dirty, never flushed
  uint64_t commit = 1;
  dev.NtStoreBytes(512, &commit, 8);  // NT store: persistent at next fence
  AUDIT_ORDER_AFTER(&dev, /*commit=*/512, 8, /*payload=*/0, 8);
  dev.Sfence();  // planted: persists the commit, payload still volatile
  Report r = a.Snapshot();
  EXPECT_EQ(CountOf(r, FindingKind::kOrderingViolation), 1u);
  EXPECT_GE(r.errors, 1u);
}

TEST(AuditTest, CorrectCommitOrderingIsClean) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  uint64_t payload = 42;
  dev.StoreBytes(0, &payload, 8);
  dev.Clwb(0, 8);
  dev.Sfence();  // payload durable first
  uint64_t commit = 1;
  dev.NtStoreBytes(512, &commit, 8);
  AUDIT_ORDER_AFTER(&dev, 512, 8, 0, 8);
  dev.Sfence();
  EXPECT_EQ(a.ErrorCount(), 0u);
}

// Bug class 3: flushes that do no work — clwb over clean lines and fences
// with no write-backs pending — reported as perf lints with per-site counts.
TEST(AuditTest, FlagsRedundantFlushesWithSiteAttribution) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  {
    AUDIT_SCOPE("PlantedFlushLoop");
    dev.Store64(0, 1);
    dev.Clwb(0, 8);
    dev.Clwb(0, 8);  // planted: line already written back
    dev.Sfence();
    dev.Sfence();  // planted: nothing pending
  }
  Report r = a.Snapshot();
  EXPECT_EQ(r.errors, 0u);  // perf lints are not errors
  const audit::Finding* clwb = FindKind(r, FindingKind::kRedundantClwb);
  const audit::Finding* sfence = FindKind(r, FindingKind::kRedundantSfence);
  ASSERT_NE(clwb, nullptr);
  ASSERT_NE(sfence, nullptr);
  EXPECT_EQ(clwb->count, 1u);
  EXPECT_EQ(sfence->count, 1u);
  // Attributed to the enclosing AUDIT_SCOPE tag, not "(untagged)".
  EXPECT_NE(clwb->site.find("PlantedFlushLoop"), std::string::npos);
  EXPECT_NE(sfence->site.find("PlantedFlushLoop"), std::string::npos);
  EXPECT_EQ(r.redundant_sfences, 1u);
  EXPECT_EQ(r.redundant_clwb_lines, 1u);
}

// Bug class 3b: the same cacheline written back twice inside one fence epoch.
// The second clwb is NOT redundant (the line was re-dirtied), but it is still
// wasted traffic an epoch batcher would coalesce into a single write-back.
TEST(AuditTest, FlagsDuplicateWritebacksWithinOneEpoch) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  {
    AUDIT_SCOPE("PlantedEagerFlush");
    dev.Store64(0, 1);
    dev.Clwb(0, 8);
    dev.Store64(8, 2);  // same cacheline, re-dirtied
    dev.Clwb(8, 8);     // planted: second write-back of line 0 in this epoch
    dev.Sfence();
  }
  Report r = a.Snapshot();
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.redundant_clwb_lines, 0u);  // both clwbs did real work
  EXPECT_EQ(r.duplicate_epoch_clwb_lines, 1u);
  const audit::Finding* dup = FindKind(r, FindingKind::kDuplicateEpochClwb);
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->count, 1u);
  EXPECT_NE(dup->site.find("PlantedEagerFlush"), std::string::npos);

  // Once a fence closes the epoch, flushing the line again is a fresh epoch:
  // no new duplicate.
  a.ResetFindings();
  dev.Store64(0, 3);
  dev.Clwb(0, 8);
  dev.Sfence();
  EXPECT_EQ(a.Snapshot().duplicate_epoch_clwb_lines, 0u);
}

// Bug class 4a: an API returns with an AccessWindow still open / PKRU
// changed across the call (guideline G1).
TEST(AuditTest, DetectsWindowLeakAcrossApiBoundary) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  std::unique_ptr<mpk::AccessWindow> leaked;
  {
    audit::ApiGuard guard("LeakyApi");
    leaked = std::make_unique<mpk::AccessWindow>(3, true);
  }  // planted: guard exits while the window is still open
  leaked.reset();
  Report r = a.Snapshot();
  EXPECT_EQ(CountOf(r, FindingKind::kWindowLeak), 1u);
  EXPECT_GE(r.errors, 1u);
  const audit::Finding* f = FindKind(r, FindingKind::kWindowLeak);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->site.find("LeakyApi"), std::string::npos);
}

TEST(AuditTest, BalancedWindowDoesNotLeak) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  {
    audit::ApiGuard guard("TidyApi");
    mpk::AccessWindow w(3, false);
  }
  EXPECT_EQ(CountOf(a.Snapshot(), FindingKind::kWindowLeak), 0u);
}

// Bug class 4b: a writable window that never writes (guideline G2 lint).
TEST(AuditTest, WarnsOnWritableWindowThatOnlyReads) {
  nvm::NvmDevice dev(SmallOpts());
  mpk::PageKeyTable table(dev.size() / nvm::kPageSize, uint8_t{1});
  mpk::BindThreadToProcess(&table);
  Auditor a;
  a.Attach(&dev);
  {
    AUDIT_SCOPE("ReadOnlyUser");
    mpk::AccessWindow w(1, /*writable=*/true);  // planted: asks for write
    mpk::CheckAccess(0, 8, /*is_write=*/false);  // ...but only reads
  }
  Report r = a.Snapshot();
  a.Detach();
  mpk::BindThreadToProcess(nullptr);
  EXPECT_EQ(CountOf(r, FindingKind::kWindowOverWritable), 1u);
  EXPECT_EQ(r.errors, 0u);  // a lint, not an error
  EXPECT_GE(r.warnings, 1u);
  const audit::Finding* f = FindKind(r, FindingKind::kWindowOverWritable);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->site.find("ReadOnlyUser"), std::string::npos);
}

TEST(AuditTest, WritableWindowThatWritesIsClean) {
  nvm::NvmDevice dev(SmallOpts());
  mpk::PageKeyTable table(dev.size() / nvm::kPageSize, uint8_t{1});
  mpk::BindThreadToProcess(&table);
  Auditor a;
  a.Attach(&dev);
  {
    mpk::AccessWindow w(1, true);
    mpk::CheckAccess(0, 8, /*is_write=*/true);
  }
  Report r = a.Snapshot();
  a.Detach();
  mpk::BindThreadToProcess(nullptr);
  EXPECT_EQ(CountOf(r, FindingKind::kWindowOverWritable), 0u);
}

TEST(AuditTest, ReportJsonIsDeterministic) {
  nvm::NvmDevice dev(SmallOpts());
  Auditor a;
  ScopedAudit attach(&a, &dev);
  dev.Store64(128, 1);
  AUDIT_DURABILITY_POINT(&dev, 128, 8);
  dev.Store64(256, 2);
  dev.Clwb(256, 8);
  dev.Clwb(256, 8);
  dev.Sfence();
  Report r = a.Snapshot();
  std::string j1 = r.ToJson();
  std::string j2 = a.Snapshot().ToJson();
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"unflushed_at_durability_point\""), std::string::npos);
  EXPECT_NE(j1.find("\"errors\": 1"), std::string::npos);
  EXPECT_FALSE(r.ToText().empty());
}

// The real stack, end to end: a ZoFS workload (create/write/read/rename/
// unlink across the inline and block paths) must audit with zero errors and
// zero warnings — the annotations in src/zofs describe what the code does.
TEST(AuditTest, ZofsStackAuditsClean) {
  nvm::Options o;
  o.size_bytes = 128ull << 20;
  auto dev = std::make_unique<nvm::NvmDevice>(o);
  Auditor a;
  a.Attach(dev.get());
  mpk::InstallDeviceHook(dev.get());
  kernfs::FormatOptions f;
  f.root_mode = 0755;
  auto kfs = std::make_unique<kernfs::KernFs>(dev.get(), f);
  kfs->set_kernel_crossing_ns(0);
  vfs::Cred cred{0, 0};
  {
    fslib::FsLib fs(kfs.get(), cred);
    ASSERT_TRUE(fs.Mkdir(cred, "/dir", 0755).ok());
    auto fd = fs.Open(cred, "/dir/file", vfs::kCreate | vfs::kRdWr, 0644);
    ASSERT_TRUE(fd.ok());
    char small[100];
    memset(small, 'a', sizeof(small));
    ASSERT_TRUE(fs.Write(*fd, small, sizeof(small)).ok());  // inline path
    std::vector<char> big(3 * nvm::kPageSize, 'b');
    ASSERT_TRUE(fs.Write(*fd, big.data(), big.size()).ok());  // spill + blocks
    char back[100];
    ASSERT_TRUE(fs.Pread(*fd, back, sizeof(back), 0).ok());
    ASSERT_TRUE(fs.Close(*fd).ok());
    ASSERT_TRUE(fs.Rename(cred, "/dir/file", "/dir/file2").ok());
    ASSERT_TRUE(fs.Unlink(cred, "/dir/file2").ok());
    ASSERT_TRUE(fs.Rmdir(cred, "/dir").ok());
  }
  Report r = a.Snapshot();
  a.Detach();
  kfs.reset();
  mpk::BindThreadToProcess(nullptr);
  if (r.errors != 0 || r.warnings != 0) {
    fprintf(stderr, "%s", r.ToText().c_str());
  }
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_GT(r.stores, 0u);  // the auditor actually observed the traffic
}

}  // namespace
