// Crash-consistency tests for ZoFS: crash injection at the NVM layer,
// "reboot" (re-open the device, rebuilding volatile state), fsck, then
// invariant checks.
//
// ZoFS is a synchronous file system with ordered metadata updates: any
// operation that returned before the crash must be visible afterwards, and
// recovery must always produce a consistent tree + allocation table
// (pages leaked into allocator free lists are reclaimed).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/audit/audit.h"
#include "src/common/rand.h"
#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"

namespace {

using common::Err;

class ZofsCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::Options o;
    o.size_bytes = 128ull << 20;
    o.crash_tracking = true;
    dev_ = std::make_unique<nvm::NvmDevice>(o);
    mpk::InstallDeviceHook(dev_.get());
    Boot(/*format=*/true);
  }
  void TearDown() override {
    fs_.reset();
    kfs_.reset();
    mpk::BindThreadToProcess(nullptr);
  }

  void Boot(bool format) {
    fs_.reset();
    kfs_.reset();
    if (format) {
      kernfs::FormatOptions f;
      f.root_mode = 0755;
      kfs_ = std::make_unique<kernfs::KernFs>(dev_.get(), f);
    } else {
      kfs_ = std::make_unique<kernfs::KernFs>(dev_.get());
    }
    kfs_->set_kernel_crossing_ns(0);
    fs_ = std::make_unique<fslib::FsLib>(kfs_.get(), vfs::Cred{0, 0});
    dev_->MarkAllPersistent();  // mount state is durable by definition
  }

  void CrashAndReboot() {
    dev_->SimulateCrash();
    Boot(/*format=*/false);
    auto stats = fs_->zofs().RecoverAll();
    ASSERT_TRUE(stats.ok()) << common::ErrName(stats.error());
    EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty()) << kfs_->CheckAllocTableForTest();
  }

  vfs::Cred cred{0, 0};
  std::unique_ptr<nvm::NvmDevice> dev_;
  std::unique_ptr<kernfs::KernFs> kfs_;
  std::unique_ptr<fslib::FsLib> fs_;
};

TEST_F(ZofsCrashTest, CompletedWriteSurvivesCrash) {
  auto fd = fs_->Open(cred, "/a", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(10000, 'k');
  ASSERT_TRUE(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());

  CrashAndReboot();

  auto fd2 = fs_->Open(cred, "/a", vfs::kRead, 0);
  ASSERT_TRUE(fd2.ok());
  std::string buf(10000, 0);
  auto r = fs_->Pread(*fd2, buf.data(), buf.size(), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(buf, data);
}

TEST_F(ZofsCrashTest, CompletedCreateSurvivesCrash) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        fs_->Open(cred, "/f" + std::to_string(i), vfs::kCreate | vfs::kWrite, 0644).ok());
  }
  CrashAndReboot();
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(fs_->Stat(cred, "/f" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(ZofsCrashTest, CompletedUnlinkSurvivesCrash) {
  ASSERT_TRUE(fs_->Open(cred, "/gone", vfs::kCreate | vfs::kWrite, 0644).ok());
  ASSERT_TRUE(fs_->Unlink(cred, "/gone").ok());
  CrashAndReboot();
  EXPECT_EQ(fs_->Stat(cred, "/gone").error(), Err::kNoEnt);
}

TEST_F(ZofsCrashTest, CompletedRenameSurvivesCrash) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/d1", 0755).ok());
  ASSERT_TRUE(fs_->Mkdir(cred, "/d2", 0755).ok());
  auto fd = fs_->Open(cred, "/d1/f", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fs_->Write(*fd, "abc", 3).ok());
  ASSERT_TRUE(fs_->Rename(cred, "/d1/f", "/d2/g").ok());
  CrashAndReboot();
  EXPECT_TRUE(fs_->Stat(cred, "/d2/g").ok());
  EXPECT_EQ(fs_->Stat(cred, "/d1/f").error(), Err::kNoEnt);
}

TEST_F(ZofsCrashTest, CrossCofferFileSurvivesCrash) {
  auto fd = fs_->Open(cred, "/secret", vfs::kCreate | vfs::kWrite, 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "sh", 2).ok());
  CrashAndReboot();
  auto st = fs_->Stat(cred, "/secret");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 2u);
  EXPECT_EQ(st->mode, 0600);
}

TEST_F(ZofsCrashTest, RecoveryReclaimsAllocatorFreeLists) {
  // Grow and shrink a file, leaving pages parked in leased free lists; after
  // a crash + recovery those pages return to the kernel.
  auto fd = fs_->Open(cred, "/grow", vfs::kCreate | vfs::kRdWr, 0644);
  std::vector<uint8_t> chunk(1 << 20, 0xaa);
  ASSERT_TRUE(fs_->Pwrite(*fd, chunk.data(), chunk.size(), 0).ok());
  ASSERT_TRUE(fs_->Ftruncate(*fd, 4096).ok());  // 255 data pages into free lists

  uint64_t free_before = kfs_->FreePages();
  dev_->SimulateCrash();
  Boot(false);
  auto stats = fs_->zofs().RecoverAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->pages_reclaimed, 200u);
  EXPECT_GT(kfs_->FreePages(), free_before);
  EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty());
  // The file itself survives at its truncated size.
  auto st = fs_->Stat(cred, "/grow");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 4096u);
}

TEST_F(ZofsCrashTest, RandomOpsWithCrashKeepInvariants) {
  // Property test: random operations, crash at a random point, reboot +
  // fsck, then (a) every file that was fully created before the crash and
  // never removed must resolve, (b) the allocation table must be
  // consistent, (c) a full tree walk must not fault.
  common::Rng rng(2024);
  std::set<std::string> live;
  ASSERT_TRUE(fs_->Mkdir(cred, "/w", 0755).ok());

  for (int round = 0; round < 5; round++) {
    const int ops = 120;
    for (int i = 0; i < ops; i++) {
      std::string name = "/w/f" + std::to_string(rng.Below(60));
      switch (rng.Below(4)) {
        case 0: {
          auto fd = fs_->Open(cred, name, vfs::kCreate | vfs::kWrite, 0644);
          if (fd.ok()) {
            std::vector<uint8_t> data(rng.Below(20000));
            rng.Fill(data.data(), data.size());
            fs_->Pwrite(*fd, data.data(), data.size(), 0);
            fs_->Close(*fd);
            live.insert(name);
          }
          break;
        }
        case 1:
          if (fs_->Unlink(cred, name).ok()) {
            live.erase(name);
          }
          break;
        case 2: {
          auto fd = fs_->Open(cred, name, vfs::kWrite, 0);
          if (fd.ok()) {
            std::vector<uint8_t> data(4096);
            fs_->Pwrite(*fd, data.data(), data.size(), rng.Below(8) * 4096);
            fs_->Close(*fd);
          }
          break;
        }
        case 3:
          fs_->Stat(cred, name);
          break;
      }
    }
    CrashAndReboot();
    // (a) completed creations survive.
    for (const std::string& name : live) {
      EXPECT_TRUE(fs_->Stat(cred, name).ok()) << name << " lost after crash";
    }
    // (c) full-tree walk with no faults.
    auto entries = fs_->ReadDir(cred, "/w");
    ASSERT_TRUE(entries.ok());
    EXPECT_GE(entries->size(), live.size());
  }
}

TEST_F(ZofsCrashTest, AuditedRecoveryHasNoOrderingViolations) {
  // Run a full crash/recover cycle with the persistence auditor watching the
  // device: neither the pre-crash workload, nor recovery, nor post-recovery
  // operations may trip an ordering or durability annotation.
  audit::Auditor a;
  a.Attach(dev_.get());

  ASSERT_TRUE(fs_->Mkdir(cred, "/d", 0755).ok());
  auto fd = fs_->Open(cred, "/d/f", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(30000, 'z');
  ASSERT_TRUE(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(fs_->Rename(cred, "/d/f", "/d/g").ok());

  CrashAndReboot();

  // Post-recovery, the completed operations are visible and new ones work.
  EXPECT_TRUE(fs_->Stat(cred, "/d/g").ok());
  ASSERT_TRUE(fs_->Unlink(cred, "/d/g").ok());
  ASSERT_TRUE(fs_->Rmdir(cred, "/d").ok());

  audit::Report r = a.Snapshot();
  a.Detach();
  if (r.errors != 0) {
    fprintf(stderr, "%s", r.ToText().c_str());
  }
  for (const auto& f : r.findings) {
    EXPECT_NE(f.kind, audit::FindingKind::kOrderingViolation) << f.site;
    EXPECT_NE(f.kind, audit::FindingKind::kUnflushedAtDurability) << f.site;
  }
  EXPECT_EQ(r.errors, 0u);
}

TEST_F(ZofsCrashTest, TornDentryIsRepairedByFsck) {
  // Hand-craft a torn create: write a dentry body without its commit flag
  // persisted, crash, and verify recovery clears it.
  ASSERT_TRUE(fs_->Open(cred, "/ok", vfs::kCreate | vfs::kWrite, 0644).ok());
  dev_->MarkAllPersistent();

  // A create whose final flag-store never persisted: emulate by creating a
  // file and then crashing *without* the persist of the last operation...
  // Simplest honest torn state: corrupt a dentry name so hash mismatches.
  fs_->BindThread();
  auto node = fs_->zofs().Lookup("/ok", true);
  ASSERT_TRUE(node.ok());
  auto root_info = fs_->zofs().EnsureMappedForTest(kfs_->root_coffer_id(), true);
  {
    mpk::AccessWindow w(root_info->key, true);
    zofs::Inode* root_ino = fs_->zofs().InodeForTest(
        zofs::NodeRef{kfs_->root_coffer_id(), root_info->root_inode_off});
    uint64_t* l1 = dev_->As<uint64_t>(root_ino->l1_dir);
    for (uint64_t s = 0; s < zofs::kL1Slots; s++) {
      if (l1[s] == 0) {
        continue;
      }
      auto* l2 = dev_->As<zofs::L2Page>(l1[s]);
      for (zofs::Dentry& d : l2->embedded) {
        if (d.in_use() && std::string_view(d.name, d.name_len) == "ok") {
          dev_->Store8(dev_->OffsetOf(&d) + offsetof(zofs::Dentry, name), 'X');
          dev_->PersistRange(dev_->OffsetOf(&d), sizeof(zofs::Dentry));
        }
      }
    }
  }
  CrashAndReboot();
  // fsck must have cleared the corrupted dentry; lookups fail cleanly.
  EXPECT_EQ(fs_->Stat(cred, "/ok").error(), Err::kNoEnt);
  EXPECT_EQ(fs_->Stat(cred, "/Xk").error(), Err::kNoEnt);
  auto entries = fs_->ReadDir(cred, "/");
  ASSERT_TRUE(entries.ok());
}

TEST_F(ZofsCrashTest, FailedRenameLeavesDestinationIntact) {
  // Rename validates before touching anything: a rename that fails (here,
  // onto a non-empty directory) must leave the existing destination — and its
  // contents — untouched, both immediately and across a crash.
  ASSERT_TRUE(fs_->Mkdir(cred, "/dir", 0755).ok());
  ASSERT_TRUE(fs_->Open(cred, "/dir/child", vfs::kCreate | vfs::kWrite, 0644).ok());
  auto fd = fs_->Open(cred, "/f", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Pwrite(*fd, "keep", 4, 0).ok());
  ASSERT_TRUE(fs_->Close(*fd).ok());

  EXPECT_FALSE(fs_->Rename(cred, "/f", "/dir").ok());      // file over dir
  EXPECT_FALSE(fs_->Rename(cred, "/dir", "/f").ok());      // dir over file
  EXPECT_FALSE(fs_->Rename(cred, "/nosuch", "/f").ok());   // missing source

  CrashAndReboot();

  EXPECT_TRUE(fs_->Stat(cred, "/dir/child").ok());
  auto fd2 = fs_->Open(cred, "/f", vfs::kRead, 0);
  ASSERT_TRUE(fd2.ok());
  char buf[8] = {};
  auto r = fs_->Pread(*fd2, buf, sizeof(buf), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(buf, *r), "keep");
}

TEST_F(ZofsCrashTest, RenameOverwriteIsCrashAtomicAtEveryEpoch) {
  // Walk every persistence epoch of one rename over an existing destination
  // (a 0600 file in its own coffer — the displaced-coffer case). At every
  // crash point the destination must read as exactly the old or exactly the
  // new content; if new, the source name must be gone.
  const std::string old_data(2000, 'd');
  const std::string new_data(3000, 's');
  auto mk = [&](const char* path, uint16_t mode, const std::string& data) {
    auto fd = fs_->Open(cred, path, vfs::kCreate | vfs::kWrite, mode);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());
    ASSERT_TRUE(fs_->Close(*fd).ok());
  };
  mk("/src", 0644, new_data);
  mk("/dst", 0600, old_data);

  dev_->StartCrashCapture();
  std::vector<uint8_t> snapshot;
  dev_->SnapshotTo(&snapshot);
  ASSERT_TRUE(fs_->Rename(cred, "/src", "/dst").ok());
  std::vector<nvm::CrashEpoch> journal = dev_->crash_journal();
  dev_->StopCrashCapture();
  ASSERT_GT(journal.size(), 1u);

  auto read_file = [&](const char* path, std::string* out) -> int {
    auto fd = fs_->Open(cred, path, vfs::kRead, 0);
    if (!fd.ok()) {
      return fd.error() == Err::kNoEnt ? 0 : -1;
    }
    auto st = fs_->Fstat(*fd);
    if (!st.ok()) {
      return -1;
    }
    out->assign(st->size, 0);
    auto r = fs_->Pread(*fd, out->data(), out->size(), 0);
    return (r.ok() && *r == out->size()) ? 1 : -1;
  };

  nvm::CrashImageBuilder builder(snapshot, &journal);
  for (int64_t e = -1; e < static_cast<int64_t>(journal.size()); e++) {
    builder.AdvanceTo(e);
    dev_->RestoreFrom(builder.image().data(), builder.image().size());
    Boot(/*format=*/false);
    auto stats = fs_->zofs().RecoverAll();
    ASSERT_TRUE(stats.ok()) << "epoch " << e << ": " << common::ErrName(stats.error());
    EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty())
        << "epoch " << e << ": " << kfs_->CheckAllocTableForTest();

    std::string dst;
    ASSERT_EQ(read_file("/dst", &dst), 1) << "epoch " << e << ": destination lost";
    std::string src;
    int src_state = read_file("/src", &src);
    if (dst == new_data) {
      EXPECT_EQ(src_state, 0) << "epoch " << e << ": rename committed but source remains";
    } else {
      ASSERT_EQ(dst, old_data) << "epoch " << e << ": destination torn";
      ASSERT_EQ(src_state, 1) << "epoch " << e;
      EXPECT_EQ(src, new_data) << "epoch " << e;
    }
  }
}

TEST_F(ZofsCrashTest, StagedAppendIsCrashSafeAtEveryEpochAndMidEpoch) {
  // Sweep every persistence epoch of a staged-append run, plus deterministic
  // mid-epoch cacheline subsets of each following epoch, and hold recovery
  // to the fast path's contract:
  //
  //   fsck oracle        recovery succeeds and the allocation table stays
  //                      consistent on every image — staged pages reachable
  //                      through mid-epoch-persisted pointer slots must not
  //                      leak or double-own;
  //   durability oracle  the fsync watermark is always intact, and the file
  //                      size lands between the watermark and everything
  //                      written (un-synced staged tails may be wholly or
  //                      partially absent — the POSIX-weak contract the
  //                      epoch batcher trades per-append fences for).
  //
  // Mid-relink images are covered because each fence of the relink protocol
  // (intent body, intent commit, epoch drain, intent clear) journals its own
  // epoch, and the appends cross the per-epoch page budget so an overflow
  // drain also happens mid-run.
  const std::string base(100, 'b');
  {
    auto fd = fs_->Open(cred, "/log", vfs::kCreate | vfs::kWrite, 0644);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Pwrite(*fd, base.data(), base.size(), 0).ok());
    ASSERT_TRUE(fs_->Close(*fd).ok());
  }

  dev_->StartCrashCapture();
  std::vector<uint8_t> snapshot;
  dev_->SnapshotTo(&snapshot);

  auto fd = fs_->Open(cred, "/log", vfs::kWrite | vfs::kAppend, 0);
  ASSERT_TRUE(fd.ok());
  std::string full = base;
  std::string synced = base;  // durable watermark
  uint64_t fsync_end_fence = 0;
  common::Rng rng(1234);
  for (int i = 0; i < 60; i++) {
    std::string chunk(1500 + 700 * rng.Below(7), static_cast<char>('a' + i % 26));
    auto r = fs_->Write(*fd, chunk.data(), chunk.size());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, chunk.size()) << i;
    full += chunk;
    if (i == 29) {
      ASSERT_TRUE(fs_->Fsync(*fd).ok());
      synced = full;
      fsync_end_fence = dev_->sfence_count();
    }
  }
  ASSERT_TRUE(fs_->Close(*fd).ok());  // durability point: drains the stage

  std::vector<nvm::CrashEpoch> journal = dev_->crash_journal();
  dev_->StopCrashCapture();
  ASSERT_GT(journal.size(), 4u);

  auto check_image = [&](int64_t e, int variant, uint64_t f) {
    Boot(/*format=*/false);
    auto stats = fs_->zofs().RecoverAll();
    ASSERT_TRUE(stats.ok()) << "epoch " << e << " mid#" << variant << ": "
                            << common::ErrName(stats.error());
    EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty())
        << "epoch " << e << " mid#" << variant << ": " << kfs_->CheckAllocTableForTest();

    const std::string& floor = (fsync_end_fence != 0 && f >= fsync_end_fence) ? synced : base;
    auto rfd = fs_->Open(cred, "/log", vfs::kRead, 0);
    ASSERT_TRUE(rfd.ok()) << "epoch " << e << " mid#" << variant << ": file lost";
    auto st = fs_->Fstat(*rfd);
    ASSERT_TRUE(st.ok());
    EXPECT_GE(st->size, floor.size()) << "epoch " << e << " mid#" << variant
                                      << ": durable watermark lost";
    EXPECT_LE(st->size, full.size()) << "epoch " << e << " mid#" << variant
                                     << ": size beyond everything written";
    std::string got(floor.size(), 0);
    auto r = fs_->Pread(*rfd, got.data(), got.size(), 0);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, got.size());
    EXPECT_EQ(got, floor) << "epoch " << e << " mid#" << variant << ": durable prefix torn";
  };

  nvm::CrashImageBuilder builder(snapshot, &journal);
  std::vector<uint8_t> scratch;
  for (int64_t e = -1; e < static_cast<int64_t>(journal.size()); e++) {
    builder.AdvanceTo(e);
    const uint64_t f = e < 0 ? 0 : journal[e].fence_seq;
    dev_->RestoreFrom(builder.image().data(), builder.image().size());
    check_image(e, -1, f);
    for (int k = 0; k < 2; k++) {
      std::vector<bool> pick(builder.NextEpochLineCount());
      if (pick.empty()) {
        continue;
      }
      common::Rng prng(0x5eed + 31 * static_cast<uint64_t>(e + 2) + k);
      bool any = false;
      for (size_t i = 0; i < pick.size(); i++) {
        pick[i] = (prng.Next() & 1) != 0;
        any = any || pick[i];
      }
      if (!any) {
        pick[0] = true;
      }
      if (!builder.MaterializeMidEpoch(pick, &scratch)) {
        continue;
      }
      dev_->RestoreFrom(scratch.data(), scratch.size());
      check_image(e, k, f);
    }
  }
}

}  // namespace
