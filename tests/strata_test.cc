// Direct tests of the Strata baseline's defining mechanisms (paper §2.2):
// user-space log appends, the double write at digestion, and the lease
// handoff that makes shared access collapse in Table 2.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/strata.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"

namespace {

class StrataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::Options o;
    o.size_bytes = 512ull << 20;
    dev_ = std::make_unique<nvm::NvmDevice>(o);
    baselines::StrataConfig cfg;
    cfg.crossing_ns = 0;
    cfg.lease_handoff_ns = 0;
    cfg.log_bytes_per_process = 4 << 20;
    core_ = std::make_unique<baselines::StrataCore>(dev_.get(), cfg);
  }
  void TearDown() override { mpk::BindThreadToProcess(nullptr); }

  vfs::Cred cred{0, 0};
  std::unique_ptr<nvm::NvmDevice> dev_;
  std::unique_ptr<baselines::StrataCore> core_;
};

TEST_F(StrataTest, ProcessViewsShareOneNamespace) {
  auto p1 = core_->CreateProcessView();
  auto p2 = core_->CreateProcessView();
  auto fd = p1->Open(cred, "/shared", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(p1->Write(*fd, "one", 3).ok());
  // The second LibFS sees the file immediately (shared namespace).
  auto st = p2->Stat(cred, "/shared");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u);
}

TEST_F(StrataTest, WritesLandInLogThenDigestMovesThem) {
  auto p1 = core_->CreateProcessView();
  auto fd = p1->Open(cred, "/f", vfs::kCreate | vfs::kRdWr, 0644);
  std::string data(4096, 'd');
  ASSERT_TRUE(p1->Pwrite(*fd, data.data(), data.size(), 0).ok());
  EXPECT_EQ(core_->digests_performed(), 0u);

  // A second process touching the file forces the holder's log to digest
  // (the lease handoff): the data must still read identically afterwards.
  auto p2 = core_->CreateProcessView();
  char buf[4096];
  auto r = p2->Open(cred, "/f", vfs::kRead, 0);
  ASSERT_TRUE(r.ok());
  auto n = p2->Pread(*r, buf, sizeof(buf), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, sizeof(buf));
  EXPECT_EQ(memcmp(buf, data.data(), sizeof(buf)), 0);
  EXPECT_GE(core_->digests_performed(), 1u) << "lease handoff did not digest";
}

TEST_F(StrataTest, AlternatingProcessesDigestRepeatedly) {
  auto p1 = core_->CreateProcessView();
  auto p2 = core_->CreateProcessView();
  auto f1 = p1->Open(cred, "/pp", vfs::kCreate | vfs::kWrite | vfs::kAppend, 0644);
  auto f2 = p2->Open(cred, "/pp", vfs::kWrite | vfs::kAppend, 0644);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  std::string blk(1024, 'x');
  uint64_t digests_before = core_->digests_performed();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(p1->Write(*f1, blk.data(), blk.size()).ok());
    ASSERT_TRUE(p2->Write(*f2, blk.data(), blk.size()).ok());
  }
  // Every alternation ping-pongs the lease: ~2 digests per round trip.
  EXPECT_GE(core_->digests_performed() - digests_before, 30u);
  auto st = p1->Stat(cred, "/pp");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 40u * 1024);  // no lost appends across handoffs
}

TEST_F(StrataTest, SingleProcessAvoidsDigestUntilLogFills) {
  auto p1 = core_->CreateProcessView();
  auto fd = p1->Open(cred, "/solo", vfs::kCreate | vfs::kWrite | vfs::kAppend, 0644);
  std::string blk(4096, 's');
  // 4 MB log, digest threshold 75%: ~700 appends of (64+4096) trigger one.
  uint64_t before = core_->digests_performed();
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(p1->Write(*fd, blk.data(), blk.size()).ok());
  }
  EXPECT_EQ(core_->digests_performed(), before) << "digested too eagerly";
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(p1->Write(*fd, blk.data(), blk.size()).ok());
  }
  EXPECT_GT(core_->digests_performed(), before) << "log never digested";
  // All data intact across the digest boundary.
  auto st = p1->Stat(cred, "/solo");
  EXPECT_EQ(st->size, 1000u * 4096);
}

TEST_F(StrataTest, OverwritesInLogSupersedeCleanly) {
  auto p1 = core_->CreateProcessView();
  auto fd = p1->Open(cred, "/over", vfs::kCreate | vfs::kRdWr, 0644);
  for (int i = 0; i < 10; i++) {
    std::string v(4096, static_cast<char>('a' + i));
    ASSERT_TRUE(p1->Pwrite(*fd, v.data(), v.size(), 0).ok());
  }
  // Force digest via a second process; only the newest version survives.
  auto p2 = core_->CreateProcessView();
  auto r = p2->Open(cred, "/over", vfs::kRead, 0);
  char buf[4096];
  ASSERT_TRUE(p2->Pread(*r, buf, sizeof(buf), 0).ok());
  for (char c : buf) {
    ASSERT_EQ(c, 'j');
  }
}

}  // namespace
