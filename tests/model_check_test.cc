// Model-checking property test: a long random sequence of namespace + data
// operations executed in lock-step against ZoFS (and LogFS) and a trivial
// in-memory reference model. Every operation's result code and every read's
// bytes must match the model exactly.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/common/rand.h"
#include "src/harness/fslab.h"
#include "src/mpk/mpk.h"

namespace {

using common::Err;
using harness::FsKind;

// The reference: paths -> file contents; directories as a path set.
class RefModel {
 public:
  RefModel() { dirs_.insert("/"); }

  bool DirExists(const std::string& p) const { return dirs_.count(p) > 0; }
  bool FileExists(const std::string& p) const { return files_.count(p) > 0; }

  Err Mkdir(const std::string& p) {
    if (DirExists(p) || FileExists(p)) {
      return Err::kExist;
    }
    if (!DirExists(Parent(p))) {
      return Err::kNoEnt;
    }
    dirs_.insert(p);
    return Err::kOk;
  }

  Err Create(const std::string& p) {
    if (!DirExists(Parent(p))) {
      return Err::kNoEnt;
    }
    if (DirExists(p)) {
      return Err::kIsDir;
    }
    files_.try_emplace(p);  // open(O_CREAT) on existing file succeeds
    return Err::kOk;
  }

  Err Write(const std::string& p, uint64_t off, const std::string& data) {
    auto it = files_.find(p);
    if (it == files_.end()) {
      return Err::kNoEnt;
    }
    std::string& content = it->second;
    if (content.size() < off + data.size()) {
      content.resize(off + data.size(), '\0');
    }
    content.replace(off, data.size(), data);
    return Err::kOk;
  }

  Err Unlink(const std::string& p) {
    if (DirExists(p)) {
      return Err::kIsDir;
    }
    return files_.erase(p) > 0 ? Err::kOk : Err::kNoEnt;
  }

  Err Rmdir(const std::string& p) {
    if (!DirExists(p)) {
      return FileExists(p) ? Err::kNotDir : Err::kNoEnt;
    }
    for (const auto& d : dirs_) {
      if (d != p && d.compare(0, p.size() + 1, p + "/") == 0) {
        return Err::kNotEmpty;
      }
    }
    for (const auto& [f, c] : files_) {
      if (f.compare(0, p.size() + 1, p + "/") == 0) {
        return Err::kNotEmpty;
      }
    }
    dirs_.erase(p);
    return Err::kOk;
  }

  Err Rename(const std::string& from, const std::string& to) {
    // Only file renames in this model (directory moves excluded from the
    // random mix to keep the reference simple).
    auto it = files_.find(from);
    if (it == files_.end()) {
      return Err::kNoEnt;
    }
    if (!DirExists(Parent(to)) || DirExists(to)) {
      return Err::kNoEnt;  // treated as failure; generator avoids dir targets
    }
    std::string content = std::move(it->second);
    files_.erase(it);
    files_[to] = std::move(content);
    return Err::kOk;
  }

  const std::string* Content(const std::string& p) const {
    auto it = files_.find(p);
    return it == files_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, std::string>& files() const { return files_; }

 private:
  static std::string Parent(const std::string& p) {
    size_t pos = p.rfind('/');
    return pos == 0 ? "/" : p.substr(0, pos);
  }

  std::set<std::string> dirs_;
  std::map<std::string, std::string> files_;
};

class ModelCheckTest : public ::testing::TestWithParam<FsKind> {
 protected:
  void TearDown() override { mpk::BindThreadToProcess(nullptr); }
};

TEST_P(ModelCheckTest, RandomOpsMatchReference) {
  harness::LabOptions lo;
  lo.dev_bytes = 512ull << 20;
  lo.kernel_crossing_ns = 0;
  lo.clwb_ns = 0;
  lo.sfence_ns = 0;
  harness::FsLab lab(GetParam(), lo);
  vfs::FileSystem* fs = lab.View(0);
  const vfs::Cred cred{0, 0};
  RefModel model;
  common::Rng rng(GetParam() == FsKind::kZofs ? 71 : 72);

  auto rand_dir = [&]() {
    int d = rng.Below(4);
    return d == 0 ? std::string("/") : "/d" + std::to_string(d);
  };
  auto rand_path = [&]() {
    std::string dir = rand_dir();
    return (dir == "/" ? "" : dir) + "/f" + std::to_string(rng.Below(25));
  };

  for (int d = 1; d <= 3; d++) {
    std::string p = "/d" + std::to_string(d);
    EXPECT_EQ(model.Mkdir(p), Err::kOk);
    EXPECT_TRUE(fs->Mkdir(cred, p, 0755).ok());
  }

  const int kOps = 2500;
  for (int i = 0; i < kOps; i++) {
    switch (rng.Below(6)) {
      case 0: {  // create (possibly existing)
        std::string p = rand_path();
        Err want = model.Create(p);
        auto fd = fs->Open(cred, p, vfs::kCreate | vfs::kWrite, 0644);
        EXPECT_EQ(fd.ok(), want == Err::kOk) << i << " create " << p;
        if (fd.ok()) {
          fs->Close(*fd);
        }
        break;
      }
      case 1: {  // write a random extent
        std::string p = rand_path();
        uint64_t off = rng.Below(30000);
        std::string data = rng.AlnumString(1 + rng.Below(8000));
        Err want = model.Write(p, off, data);
        auto fd = fs->Open(cred, p, vfs::kWrite, 0);
        if (want == Err::kOk) {
          ASSERT_TRUE(fd.ok()) << i << " open-for-write " << p;
          auto w = fs->Pwrite(*fd, data.data(), data.size(), off);
          ASSERT_TRUE(w.ok()) << i;
          fs->Close(*fd);
        } else {
          EXPECT_FALSE(fd.ok()) << i << " phantom file " << p;
        }
        break;
      }
      case 2: {  // read-and-compare a random window
        std::string p = rand_path();
        const std::string* want = model.Content(p);
        auto fd = fs->Open(cred, p, vfs::kRead, 0);
        EXPECT_EQ(fd.ok(), want != nullptr) << i << " open " << p;
        if (fd.ok() && want != nullptr) {
          uint64_t off = rng.Below(want->size() + 100);
          std::string buf(4000, '\1');
          auto r = fs->Pread(*fd, buf.data(), buf.size(), off);
          ASSERT_TRUE(r.ok());
          std::string expect =
              off >= want->size()
                  ? ""
                  : want->substr(off, std::min<uint64_t>(buf.size(), want->size() - off));
          EXPECT_EQ(std::string(buf.data(), *r), expect) << i << " read " << p << "@" << off;
          fs->Close(*fd);
        }
        break;
      }
      case 3: {  // unlink
        std::string p = rand_path();
        Err want = model.Unlink(p);
        auto st = fs->Unlink(cred, p);
        EXPECT_EQ(st.ok(), want == Err::kOk) << i << " unlink " << p;
        break;
      }
      case 4: {  // rename file -> file
        std::string from = rand_path();
        std::string to = rand_path();
        if (from == to) {
          break;
        }
        // Skip cases the simple model doesn't capture (overwrite targets).
        if (model.Content(to) != nullptr) {
          break;
        }
        Err want = model.Rename(from, to);
        auto st = fs->Rename(cred, from, to);
        EXPECT_EQ(st.ok(), want == Err::kOk) << i << " rename " << from << "->" << to;
        break;
      }
      case 5: {  // stat agrees on size
        std::string p = rand_path();
        const std::string* want = model.Content(p);
        auto st = fs->Stat(cred, p);
        EXPECT_EQ(st.ok(), want != nullptr) << i << " stat " << p;
        if (st.ok() && want != nullptr) {
          EXPECT_EQ(st->size, want->size()) << i << " size of " << p;
        }
        break;
      }
    }
  }

  // Final sweep: every model file readable with exact contents.
  for (const auto& [path, content] : model.files()) {
    auto fd = fs->Open(cred, path, vfs::kRead, 0);
    ASSERT_TRUE(fd.ok()) << path;
    std::string buf(content.size(), '\0');
    auto r = fs->Pread(*fd, buf.data(), buf.size(), 0);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, content.size()) << path;
    EXPECT_EQ(buf, content) << path;
    fs->Close(*fd);
  }
  if (lab.kernfs() != nullptr) {
    EXPECT_TRUE(lab.kernfs()->CheckAllocTableForTest().empty())
        << lab.kernfs()->CheckAllocTableForTest();
  }
}

INSTANTIATE_TEST_SUITE_P(UserSpaceFs, ModelCheckTest,
                         ::testing::Values(FsKind::kZofs, FsKind::kLogFs, FsKind::kNova),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           std::string n = FsKindName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
