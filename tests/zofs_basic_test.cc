// End-to-end tests of ZoFS through the FSLibs surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fslib/fslib.h"
#include "src/kernfs/kernfs.h"
#include "src/mpk/mpk.h"
#include "src/nvm/nvm.h"

namespace {

using common::Err;
using vfs::Cred;

class ZofsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::Options nopts;
    nopts.size_bytes = 64ull << 20;
    dev_ = std::make_unique<nvm::NvmDevice>(nopts);
    mpk::InstallDeviceHook(dev_.get());
    kernfs::FormatOptions fopts;
    fopts.root_mode = 0777;
    fopts.root_uid = 1000;
    fopts.root_gid = 1000;
    kfs_ = std::make_unique<kernfs::KernFs>(dev_.get(), fopts);
    kfs_->set_kernel_crossing_ns(0);  // tests don't need the cost model
    fs_ = std::make_unique<fslib::FsLib>(kfs_.get(), Cred{1000, 1000});
  }

  void TearDown() override {
    fs_.reset();
    kfs_.reset();
    mpk::BindThreadToProcess(nullptr);
  }

  Cred cred{1000, 1000};
  std::unique_ptr<nvm::NvmDevice> dev_;
  std::unique_ptr<kernfs::KernFs> kfs_;
  std::unique_ptr<fslib::FsLib> fs_;
};

TEST_F(ZofsTest, CreateWriteReadRoundtrip) {
  auto fd = fs_->Open(cred, "/hello.txt", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok()) << common::ErrName(fd.error());
  std::string msg = "hello, coffer world";
  auto w = fs_->Write(*fd, msg.data(), msg.size());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, msg.size());

  char buf[64] = {};
  auto r = fs_->Pread(*fd, buf, sizeof(buf), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, msg.size());
  EXPECT_EQ(std::string(buf, *r), msg);
  EXPECT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(ZofsTest, OpenMissingFileFails) {
  auto fd = fs_->Open(cred, "/nope", vfs::kRead, 0);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error(), Err::kNoEnt);
}

TEST_F(ZofsTest, ExclusiveCreateFailsOnExisting) {
  ASSERT_TRUE(fs_->Open(cred, "/f", vfs::kCreate | vfs::kWrite, 0644).ok());
  auto fd = fs_->Open(cred, "/f", vfs::kCreate | vfs::kExcl | vfs::kWrite, 0644);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error(), Err::kExist);
}

TEST_F(ZofsTest, MkdirAndNestedCreate) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/a", 0755).ok());
  ASSERT_TRUE(fs_->Mkdir(cred, "/a/b", 0755).ok());
  auto fd = fs_->Open(cred, "/a/b/c.txt", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  auto st = fs_->Stat(cred, "/a/b/c.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, vfs::FileType::kRegular);
  auto std_ = fs_->Stat(cred, "/a/b");
  ASSERT_TRUE(std_.ok());
  EXPECT_EQ(std_->type, vfs::FileType::kDirectory);
}

TEST_F(ZofsTest, MkdirExistingFails) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/d", 0755).ok());
  EXPECT_EQ(fs_->Mkdir(cred, "/d", 0755).error(), Err::kExist);
}

TEST_F(ZofsTest, ReadDirListsEntries) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/dir", 0755).ok());
  for (int i = 0; i < 100; i++) {
    std::string p = "/dir/f" + std::to_string(i);
    ASSERT_TRUE(fs_->Open(cred, p, vfs::kCreate | vfs::kWrite, 0644).ok());
  }
  auto entries = fs_->ReadDir(cred, "/dir");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 100u);
}

TEST_F(ZofsTest, UnlinkRemovesFile) {
  ASSERT_TRUE(fs_->Open(cred, "/gone", vfs::kCreate | vfs::kWrite, 0644).ok());
  ASSERT_TRUE(fs_->Unlink(cred, "/gone").ok());
  EXPECT_EQ(fs_->Stat(cred, "/gone").error(), Err::kNoEnt);
}

TEST_F(ZofsTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/d", 0755).ok());
  EXPECT_EQ(fs_->Unlink(cred, "/d").error(), Err::kIsDir);
}

TEST_F(ZofsTest, RmdirRequiresEmpty) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/d", 0755).ok());
  ASSERT_TRUE(fs_->Open(cred, "/d/f", vfs::kCreate | vfs::kWrite, 0644).ok());
  EXPECT_EQ(fs_->Rmdir(cred, "/d").error(), Err::kNotEmpty);
  ASSERT_TRUE(fs_->Unlink(cred, "/d/f").ok());
  EXPECT_TRUE(fs_->Rmdir(cred, "/d").ok());
  EXPECT_EQ(fs_->Stat(cred, "/d").error(), Err::kNoEnt);
}

TEST_F(ZofsTest, LargeFileSpansIndirectBlocks) {
  auto fd = fs_->Open(cred, "/big", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  // 3 MB crosses the direct (48 KB) and indirect (2 MB) boundaries.
  const size_t total = 3ull << 20;
  std::string chunk(8192, 'x');
  for (size_t off = 0; off < total; off += chunk.size()) {
    for (size_t i = 0; i < chunk.size(); i++) {
      chunk[i] = static_cast<char>('a' + ((off + i) % 26));
    }
    auto w = fs_->Pwrite(*fd, chunk.data(), chunk.size(), off);
    ASSERT_TRUE(w.ok()) << common::ErrName(w.error());
  }
  auto st = fs_->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, total);
  // Spot-check several offsets, including boundary crossings.
  const uint64_t offsets[] = {0, 48ull * 1024 - 1, 48ull * 1024, (2ull << 20) + 48 * 1024,
                              total - 1};
  for (uint64_t off : offsets) {
    char c;
    auto r = fs_->Pread(*fd, &c, 1, off);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, 1u);
    EXPECT_EQ(c, static_cast<char>('a' + (off % 26))) << "off=" << off;
  }
}

TEST_F(ZofsTest, SparseHolesReadZero) {
  auto fd = fs_->Open(cred, "/sparse", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  char x = 'x';
  ASSERT_TRUE(fs_->Pwrite(*fd, &x, 1, 100 * 4096).ok());
  char buf[16];
  auto r = fs_->Pread(*fd, buf, sizeof(buf), 50 * 4096);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(*r, sizeof(buf));
  for (char c : buf) {
    EXPECT_EQ(c, 0);
  }
}

TEST_F(ZofsTest, TruncateShrinkAndRegrow) {
  auto fd = fs_->Open(cred, "/t", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(10000, 'q');
  ASSERT_TRUE(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());
  ASSERT_TRUE(fs_->Ftruncate(*fd, 5000).ok());
  auto st = fs_->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5000u);
  // Regrow: bytes past 5000 must read as zero.
  ASSERT_TRUE(fs_->Ftruncate(*fd, 10000).ok());
  char buf[16];
  auto r = fs_->Pread(*fd, buf, sizeof(buf), 6000);
  ASSERT_TRUE(r.ok());
  for (char c : buf) {
    EXPECT_EQ(c, 0);
  }
}

TEST_F(ZofsTest, AppendModeWritesAtEnd) {
  auto fd = fs_->Open(cred, "/log", vfs::kCreate | vfs::kWrite | vfs::kAppend, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "aaa", 3).ok());
  ASSERT_TRUE(fs_->Write(*fd, "bbb", 3).ok());
  char buf[8] = {};
  auto r = fs_->Pread(*fd, buf, sizeof(buf), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(buf, *r), "aaabbb");
}

TEST_F(ZofsTest, LseekSetCurEnd) {
  auto fd = fs_->Open(cred, "/s", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "0123456789", 10).ok());
  EXPECT_EQ(*fs_->Lseek(*fd, 2, 0), 2u);
  EXPECT_EQ(*fs_->Lseek(*fd, 3, 1), 5u);
  EXPECT_EQ(*fs_->Lseek(*fd, -1, 2), 9u);
  char c;
  ASSERT_TRUE(fs_->Read(*fd, &c, 1).ok());
  EXPECT_EQ(c, '9');
}

TEST_F(ZofsTest, DupSharesOffsetAndUsesLowestFd) {
  auto fd = fs_->Open(cred, "/dup", vfs::kCreate | vfs::kRdWr, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "abcdef", 6).ok());
  ASSERT_TRUE(fs_->Lseek(*fd, 0, 0).ok());
  auto fd2 = fs_->Dup(*fd);
  ASSERT_TRUE(fd2.ok());
  char c;
  ASSERT_TRUE(fs_->Read(*fd, &c, 1).ok());
  EXPECT_EQ(c, 'a');
  ASSERT_TRUE(fs_->Read(*fd2, &c, 1).ok());
  EXPECT_EQ(c, 'b');  // shared offset

  // Lowest-FD rule: close fd, dup again, get fd's number back.
  vfs::Fd closed = *fd;
  ASSERT_TRUE(fs_->Close(*fd).ok());
  auto fd3 = fs_->Dup(*fd2);
  ASSERT_TRUE(fd3.ok());
  EXPECT_EQ(*fd3, closed);
}

TEST_F(ZofsTest, RenameSameDirectory) {
  ASSERT_TRUE(fs_->Open(cred, "/old", vfs::kCreate | vfs::kWrite, 0644).ok());
  ASSERT_TRUE(fs_->Rename(cred, "/old", "/new").ok());
  EXPECT_EQ(fs_->Stat(cred, "/old").error(), Err::kNoEnt);
  EXPECT_TRUE(fs_->Stat(cred, "/new").ok());
}

TEST_F(ZofsTest, RenameAcrossDirectoriesSameCoffer) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/a", 0777).ok());
  ASSERT_TRUE(fs_->Mkdir(cred, "/b", 0777).ok());
  auto fd = fs_->Open(cred, "/a/f", vfs::kCreate | vfs::kWrite, 0777);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "data", 4).ok());
  ASSERT_TRUE(fs_->Rename(cred, "/a/f", "/b/g").ok());
  auto st = fs_->Stat(cred, "/b/g");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 4u);
}

TEST_F(ZofsTest, RenameOverwritesExistingFile) {
  auto f1 = fs_->Open(cred, "/src", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(fs_->Write(*f1, "SRC", 3).ok());
  auto f2 = fs_->Open(cred, "/dst", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(fs_->Write(*f2, "DSTDST", 6).ok());
  ASSERT_TRUE(fs_->Rename(cred, "/src", "/dst").ok());
  auto st = fs_->Stat(cred, "/dst");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u);
  EXPECT_EQ(fs_->Stat(cred, "/src").error(), Err::kNoEnt);
}

TEST_F(ZofsTest, SymlinkResolvesOnOpen) {
  auto fd = fs_->Open(cred, "/target", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "via-link", 8).ok());
  ASSERT_TRUE(fs_->Symlink(cred, "/target", "/link").ok());

  auto rl = fs_->ReadLink(cred, "/link");
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(*rl, "/target");

  auto lfd = fs_->Open(cred, "/link", vfs::kRead, 0);
  ASSERT_TRUE(lfd.ok());
  char buf[16] = {};
  auto r = fs_->Read(*lfd, buf, sizeof(buf));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(buf, *r), "via-link");
}

TEST_F(ZofsTest, RelativeSymlinkInDirectory) {
  ASSERT_TRUE(fs_->Mkdir(cred, "/d", 0755).ok());
  auto fd = fs_->Open(cred, "/d/real", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Symlink(cred, "real", "/d/alias").ok());
  EXPECT_TRUE(fs_->Stat(cred, "/d/alias").ok());
}

TEST_F(ZofsTest, SymlinkLoopReturnsELOOP) {
  ASSERT_TRUE(fs_->Symlink(cred, "/l2", "/l1").ok());
  ASSERT_TRUE(fs_->Symlink(cred, "/l1", "/l2").ok());
  auto st = fs_->Stat(cred, "/l1");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error(), Err::kLoop);
}

TEST_F(ZofsTest, DifferentPermissionCreatesNewCoffer) {
  // Root coffer perm is 0777/1000/1000-effective; creating a 0600 file must
  // place it in its own coffer, referenced cross-coffer from the parent dir.
  size_t coffers_before = kfs_->AllCofferIds().size();
  auto fd = fs_->Open(cred, "/secret", vfs::kCreate | vfs::kWrite, 0600);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(kfs_->AllCofferIds().size(), coffers_before + 1);
  ASSERT_TRUE(fs_->Write(*fd, "top", 3).ok());
  auto st = fs_->Stat(cred, "/secret");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0600);
  EXPECT_EQ(st->size, 3u);
}

TEST_F(ZofsTest, SamePermissionSharesCoffer) {
  size_t coffers_before = kfs_->AllCofferIds().size();
  // Root coffer was created 0777 by the fixture; 0777-effective == 0666.
  ASSERT_TRUE(fs_->Open(cred, "/same1", vfs::kCreate | vfs::kWrite, 0777).ok());
  ASSERT_TRUE(fs_->Open(cred, "/same2", vfs::kCreate | vfs::kWrite, 0666).ok());
  EXPECT_EQ(kfs_->AllCofferIds().size(), coffers_before);  // no new coffers
}

TEST_F(ZofsTest, PermissionDeniedForOtherUser) {
  auto fd = fs_->Open(cred, "/private", vfs::kCreate | vfs::kWrite, 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(*fd, "secret", 6).ok());

  // A second process with a different uid cannot map the 0600 coffer.
  fslib::FsLib other(kfs_.get(), Cred{2000, 2000});
  auto ofd = other.Open(Cred{2000, 2000}, "/private", vfs::kRead, 0);
  ASSERT_FALSE(ofd.ok());
  EXPECT_EQ(ofd.error(), Err::kAcces);
  fs_->BindThread();
}

TEST_F(ZofsTest, ChmodSameGroupStaysUserSpace) {
  ASSERT_TRUE(fs_->Open(cred, "/x", vfs::kCreate | vfs::kWrite, 0644).ok());
  size_t coffers_before = kfs_->AllCofferIds().size();
  ASSERT_TRUE(fs_->Chmod(cred, "/x", 0744).ok());  // only exec bit changes
  EXPECT_EQ(kfs_->AllCofferIds().size(), coffers_before);
  auto st = fs_->Stat(cred, "/x");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0744);
}

TEST_F(ZofsTest, ChmodDifferentGroupSplitsCoffer) {
  auto fd = fs_->Open(cred, "/y", vfs::kCreate | vfs::kWrite, 0666);
  ASSERT_TRUE(fd.ok());
  std::string data(20000, 'z');
  ASSERT_TRUE(fs_->Write(*fd, data.data(), data.size()).ok());
  size_t coffers_before = kfs_->AllCofferIds().size();
  ASSERT_TRUE(fs_->Chmod(cred, "/y", 0600).ok());
  EXPECT_EQ(kfs_->AllCofferIds().size(), coffers_before + 1);
  // Data still intact after the split.
  auto st = fs_->Stat(cred, "/y");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0600);
  char buf[16];
  auto r = fs_->Pread(*fd, buf, sizeof(buf), 10000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(buf[0], 'z');
  EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty()) << kfs_->CheckAllocTableForTest();
}

TEST_F(ZofsTest, UnlinkCrossCofferFileDeletesCoffer) {
  ASSERT_TRUE(fs_->Open(cred, "/own", vfs::kCreate | vfs::kWrite, 0600).ok());
  size_t with_coffer = kfs_->AllCofferIds().size();
  ASSERT_TRUE(fs_->Unlink(cred, "/own").ok());
  EXPECT_EQ(kfs_->AllCofferIds().size(), with_coffer - 1);
  EXPECT_TRUE(kfs_->CheckAllocTableForTest().empty());
}

TEST_F(ZofsTest, ManyFilesInOneDirectory) {
  // Stress the two-level hash: enough entries to overflow embedded slots and
  // chain dentry-run pages.
  ASSERT_TRUE(fs_->Mkdir(cred, "/wide", 0755).ok());
  const int kN = 3000;
  for (int i = 0; i < kN; i++) {
    std::string p = "/wide/file_" + std::to_string(i);
    auto fd = fs_->Open(cred, p, vfs::kCreate | vfs::kWrite, 0644);
    ASSERT_TRUE(fd.ok()) << p;
    ASSERT_TRUE(fs_->Close(*fd).ok());
  }
  auto entries = fs_->ReadDir(cred, "/wide");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kN));
  // Every file individually resolvable.
  for (int i = 0; i < kN; i += 97) {
    EXPECT_TRUE(fs_->Stat(cred, "/wide/file_" + std::to_string(i)).ok());
  }
  // Delete half, verify the rest.
  for (int i = 0; i < kN; i += 2) {
    ASSERT_TRUE(fs_->Unlink(cred, "/wide/file_" + std::to_string(i)).ok());
  }
  entries = fs_->ReadDir(cred, "/wide");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kN / 2));
}

TEST_F(ZofsTest, StatReportsMetadata) {
  auto fd = fs_->Open(cred, "/meta", vfs::kCreate | vfs::kWrite, 0640);
  ASSERT_TRUE(fd.ok());
  auto st = fs_->Stat(cred, "/meta");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->uid, 1000u);
  EXPECT_EQ(st->gid, 1000u);
  EXPECT_EQ(st->mode, 0640);
  EXPECT_GT(st->mtime_ns, 0u);
}

TEST_F(ZofsTest, WriteToClosedFdFails) {
  auto fd = fs_->Open(cred, "/c", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Close(*fd).ok());
  char b = 'b';
  EXPECT_EQ(fs_->Write(*fd, &b, 1).error(), Err::kBadF);
  EXPECT_EQ(fs_->Close(*fd).error(), Err::kBadF);
}

TEST_F(ZofsTest, DeepPathResolution) {
  std::string path;
  for (int i = 0; i < 20; i++) {
    path += "/d" + std::to_string(i);
    ASSERT_TRUE(fs_->Mkdir(cred, path, 0755).ok()) << path;
  }
  auto fd = fs_->Open(cred, path + "/leaf", vfs::kCreate | vfs::kWrite, 0644);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fs_->Stat(cred, path + "/leaf").ok());
}

}  // namespace
